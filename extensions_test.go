package remi

import (
	"strings"
	"testing"
)

func TestMineWithExceptions(t *testing.T) {
	// a, b, c share p→v; only a and b share q→w. {a,b,c} group: exact RE is
	// p(x,v)... wait, p(x,v) matches all three. For targets {a,b} the exact
	// RE needs q; with 1 exception allowed, the cheaper p(x,v) qualifies.
	sys, err := FromNTriples(`
<http://e/a> <http://e/p> <http://e/v> .
<http://e/b> <http://e/p> <http://e/v> .
<http://e/c> <http://e/p> <http://e/v> .
<http://e/a> <http://e/q> <http://e/w> .
<http://e/b> <http://e/q> <http://e/w> .
<http://e/a> <http://e/q2> <http://e/w2> .
<http://e/b> <http://e/q2> <http://e/w2> .
`)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sys.Mine([]string{"http://e/a", "http://e/b"})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Found || len(exact.Exceptions) != 0 {
		t.Fatalf("exact mining: %+v", exact)
	}
	if !strings.Contains(exact.Expression, "q") {
		t.Fatalf("exact RE should use q: %s", exact.Expression)
	}

	relaxed, err := sys.Mine([]string{"http://e/a", "http://e/b"}, WithExceptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if !relaxed.Found {
		t.Fatal("relaxed mining found nothing")
	}
	if relaxed.Bits > exact.Bits {
		t.Fatalf("relaxing cannot cost more: %f > %f", relaxed.Bits, exact.Bits)
	}
	// The cheapest relaxed description is p(x, v) with exception c.
	if len(relaxed.Exceptions) == 1 && relaxed.Exceptions[0] != "http://e/c" {
		t.Fatalf("unexpected exception set %v", relaxed.Exceptions)
	}
}

func TestMineWithExceptionsMakesImpossiblePossible(t *testing.T) {
	// Indistinguishable targets: no strict RE for {a,b} exists, but with one
	// exception the shared description works.
	sys, err := FromNTriples(`
<http://e/a> <http://e/p> <http://e/v> .
<http://e/b> <http://e/p> <http://e/v> .
<http://e/c> <http://e/p> <http://e/v> .
`)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := sys.Mine([]string{"http://e/a", "http://e/b"})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Found {
		t.Fatal("strict RE should not exist")
	}
	relaxed, err := sys.Mine([]string{"http://e/a", "http://e/b"}, WithExceptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if !relaxed.Found {
		t.Fatal("relaxed RE should exist")
	}
	if len(relaxed.Exceptions) != 1 || relaxed.Exceptions[0] != "http://e/c" {
		t.Fatalf("exceptions = %v", relaxed.Exceptions)
	}
}

func TestMineDisjunctive(t *testing.T) {
	// Paris and Georgetown share no conjunctive RE in TinyGeo (different
	// countries, languages, continents); the disjunctive miner must split
	// them into two singleton branches.
	sys := tinySystem(t)
	res, err := sys.MineDisjunctive([]string{tinyNS + "Paris", tinyNS + "Georgetown"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no disjunctive RE found")
	}
	covered := map[string]bool{}
	for _, b := range res.Branches {
		for _, iri := range b.Targets {
			if covered[iri] {
				t.Fatalf("target %s covered twice", iri)
			}
			covered[iri] = true
		}
	}
	if len(covered) != 2 {
		t.Fatalf("partition covers %d targets", len(covered))
	}
	if s := res.Format(); !strings.Contains(s, "∨") && len(res.Branches) > 1 {
		t.Fatalf("format missing disjunction: %s", s)
	}
}

func TestMineDisjunctiveDegeneratesToConjunctive(t *testing.T) {
	// When a cheap conjunctive RE exists, the single-block partition must
	// win (total bits never exceed the conjunctive result).
	sys := tinySystem(t)
	conj, err := sys.Mine([]string{tinyNS + "Guyana", tinyNS + "Suriname"})
	if err != nil {
		t.Fatal(err)
	}
	disj, err := sys.MineDisjunctive([]string{tinyNS + "Guyana", tinyNS + "Suriname"})
	if err != nil {
		t.Fatal(err)
	}
	if !disj.Found {
		t.Fatal("disjunctive mining failed")
	}
	if disj.Bits > conj.Bits+1e-9 {
		t.Fatalf("disjunctive result (%f bits) worse than conjunctive (%f)", disj.Bits, conj.Bits)
	}
}

func TestMineDisjunctiveLimits(t *testing.T) {
	sys := tinySystem(t)
	if _, err := sys.MineDisjunctive(nil); err == nil {
		t.Fatal("empty targets accepted")
	}
	many := make([]string, 7)
	for i := range many {
		many[i] = tinyNS + "Paris"
	}
	if _, err := sys.MineDisjunctive(many); err == nil {
		t.Fatal("7 targets accepted")
	}
}

func TestSetProminenceChangesResult(t *testing.T) {
	// Boost Epitech massively: describing Rennes+Nantes should now prefer
	// placeOf(x, Epitech)... except Paris also hosts Epitech in TinyGeo, so
	// the boosted metric at least changes the ranking; assert the call works
	// and mining under MetricCustom succeeds.
	sys := tinySystem(t)
	err := sys.SetProminence(map[string]float64{
		tinyNS + "Epitech":  1000,
		tinyNS + "Brittany": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Mine([]string{tinyNS + "Rennes", tinyNS + "Nantes"}, WithMetric(MetricCustom))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("custom-metric mining found nothing")
	}
}

func TestSetProminenceValidation(t *testing.T) {
	sys := tinySystem(t)
	if err := sys.SetProminence(nil); err == nil {
		t.Fatal("empty map accepted")
	}
	if err := sys.SetProminence(map[string]float64{"http://nowhere/x": 1}); err == nil {
		t.Fatal("unmatched scores accepted")
	}
}

func TestSPARQLRendering(t *testing.T) {
	sys := tinySystem(t)
	res, err := sys.Mine([]string{tinyNS + "Guyana", tinyNS + "Suriname"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no RE")
	}
	q := res.SPARQL
	if !strings.HasPrefix(q, "SELECT DISTINCT ?x WHERE {") || !strings.HasSuffix(q, "}") {
		t.Fatalf("malformed query:\n%s", q)
	}
	if !strings.Contains(q, "?x <http://tiny.demo/ontology/in> <http://tiny.demo/resource/SouthAmerica>") {
		t.Fatalf("missing atom pattern:\n%s", q)
	}
	if !strings.Contains(q, "?y") {
		t.Fatalf("missing existential variable:\n%s", q)
	}
}

func TestSPARQLInverseFolding(t *testing.T) {
	sys := tinySystem(t)
	res, err := sys.Mine([]string{tinyNS + "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !strings.Contains(res.Expression, "⁻¹") {
		t.Skipf("Paris RE does not use an inverse predicate: %s", res.Expression)
	}
	// The query must use the BASE predicate with swapped positions, never
	// the synthetic inverse IRI.
	if strings.Contains(res.SPARQL, "⁻¹") {
		t.Fatalf("inverse predicate leaked into SPARQL:\n%s", res.SPARQL)
	}
	if !strings.Contains(res.SPARQL, "<http://tiny.demo/resource/France> <http://tiny.demo/ontology/capital> ?x") {
		t.Fatalf("expected folded inverse pattern:\n%s", res.SPARQL)
	}
}
