// Command hdtconv converts RDF graphs between N-Triples and the binary
// HDT-style format of internal/hdt (Section 3.5.1 of the paper).
//
// Usage:
//
//	hdtconv -in data.nt -out data.hdt      # compress
//	hdtconv -in data.hdt -out data.nt      # decompress
//	hdtconv -in data.hdt -stats            # print layout statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/remi-kb/remi/internal/hdt"
	"github.com/remi-kb/remi/internal/rdf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hdtconv: ")

	var (
		in    = flag.String("in", "", "input file (.nt or .hdt; required)")
		out   = flag.String("out", "", "output file (.nt or .hdt)")
		stats = flag.Bool("stats", false, "print layout statistics of the input")
	)
	flag.Parse()
	if *in == "" || (*out == "" && !*stats) {
		flag.Usage()
		os.Exit(2)
	}

	var h *hdt.HDT
	var err error
	if strings.ToLower(filepath.Ext(*in)) == ".hdt" {
		h, err = hdt.LoadFile(*in)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		var triples []rdf.Triple
		triples, err = rdf.ReadAll(f)
		f.Close()
		if err == nil {
			h, err = hdt.Build(triples)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	if *stats {
		fmt.Printf("triples:    %d\n", h.NumTriples())
		fmt.Printf("shared:     %d (subject∩object terms)\n", h.NumShared())
		fmt.Printf("subjects:   %d\n", h.NumSubjects())
		fmt.Printf("objects:    %d\n", h.NumObjects())
		fmt.Printf("predicates: %d\n", h.NumPredicates())
	}
	if *out == "" {
		return
	}

	if strings.ToLower(filepath.Ext(*out)) == ".hdt" {
		if err := h.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteAll(f, h.Triples()); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s → %s (%d triples)\n", *in, *out, h.NumTriples())
}
