//go:build unix

package main

import (
	"os"
	"runtime"
	"syscall"
)

// peakRSSBytes reads the kernel's peak-resident-set accounting for a waited
// child. Linux reports ru_maxrss in kilobytes, the BSDs (macOS included)
// in bytes.
func peakRSSBytes(ps *os.ProcessState) int64 {
	ru, ok := ps.SysUsage().(*syscall.Rusage)
	if !ok || ru == nil {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return int64(ru.Maxrss)
	}
	return int64(ru.Maxrss) * 1024
}
