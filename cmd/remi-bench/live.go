package main

// The live_kb phase drives the crash-safe mutable layer end to end: a live
// KB (snapshot base + WAL + delta overlay) is mutated with retract and
// upsert batches, and the mutated KB must mine byte-identical expressions
// to a flat rebuild of the same triple set (mutated_golden_match). The
// durability contract is then proven the way the chaos suite does in-tests:
// the live directory is reopened as if the process had crashed without a
// clean shutdown — every acked batch must replay from the WAL and the
// goldens must still match (recovery_golden_match) — and once more after a
// compaction folds the delta into a fresh snapshot (compacted_golden_match,
// with nothing left to replay). The phase also times the read path: mining
// the same workload from the delta-patched KB versus the flat rebuild, with
// every fault point disarmed, bounds the standing cost of the live layer's
// copy-on-write indexes at the same 1.02x budget the resilience phase uses.
// CI gates on mutated_golden_match and recovery_golden_match.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/kb/delta"
	"github.com/remi-kb/remi/internal/rdf"
)

// LiveKBStats records the live_kb phase. FlatMineNsPerOp and LiveMineNsPerOp
// time one full pass over the workload sets against the flat rebuild and the
// delta-patched live KB (per-side minima over interleaved pairs, see
// resilienceReps); ReadOverhead is their ratio and the acceptance bound is
// the shared overheadBudget. ApplyNsPerOp is the durable ack path measured
// end to end — encode, append, fsync — per idempotent re-sent batch.
type LiveKBStats struct {
	// Facts counts the base KB's facts before any mutation; MutationOps the
	// acked ops across MutationBatches (Retracts + Upserts).
	Facts           int   `json:"facts"`
	MutationBatches int   `json:"mutation_batches"`
	MutationOps     int64 `json:"mutation_ops"`
	Retracts        int   `json:"retracts"`
	Upserts         int   `json:"upserts"`
	// WAL shape after the mutation batches (before the crash-reopen).
	WalRecords int64 `json:"wal_records"`
	WalBytes   int64 `json:"wal_bytes"`
	// RecoveryReplayed/RecoveryDroppedBytes come from the crash-reopen: every
	// acked batch must replay (no torn tail is expected in a clean run).
	RecoveryReplayed     int64 `json:"recovery_replayed"`
	RecoveryDroppedBytes int64 `json:"recovery_dropped_bytes"`
	Compactions          int64 `json:"compactions"`
	// The golden cross-checks, each over GoldenSets workload sets: the
	// mutated live KB versus a flat rebuild of the same triples, the
	// crash-reopened KB, and the post-compaction reboot (which must have an
	// empty WAL and replay nothing).
	GoldenSets           int  `json:"golden_sets"`
	MutatedGoldenMatch   bool `json:"mutated_golden_match"`
	RecoveryGoldenMatch  bool `json:"recovery_golden_match"`
	CompactedGoldenMatch bool `json:"compacted_golden_match"`
	// Read-path standing cost of the delta-patched indexes.
	FlatMineNsPerOp float64 `json:"flat_mine_ns_per_op"`
	LiveMineNsPerOp float64 `json:"live_mine_ns_per_op"`
	ReadOverhead    float64 `json:"read_overhead"`
	OverheadBudget  float64 `json:"overhead_budget"`
	WithinBudget    bool    `json:"within_budget"`
	// Durable ack latency per re-sent mutation batch (fsync included).
	ApplyNsPerOp float64 `json:"apply_ns_per_op"`
}

// liveBenchOpts are the build options of both sides of the live_kb goldens.
// Inverse materialization is off: the overlay mirrors mutations into the
// inverse indexes chosen when the base was built (prominence frozen at the
// snapshot), while a flat rebuild re-ranks prominence over the mutated
// triples and may choose a different inverse set — a representation
// difference, not a correctness one, that would make byte-golden comparison
// meaningless. With no inverses both sides search the same language.
func liveBenchOpts() kb.Options {
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0
	return opts
}

// liveMutations builds the phase's mutation batches from the generated
// triples: one batch retracting facts whose subject and object both stay
// reachable through other facts (and are not workload targets), then two
// batches linking brand-new entities into the graph through existing
// predicates and objects — two facts per new entity, exercising the
// dictionary-extension path. Returned alongside is the mutated triple set
// the flat reference KB is rebuilt from.
func liveMutations(triples []rdf.Triple, iriSets [][]string) (batches [][]delta.Op, mutated []rdf.Triple) {
	protected := make(map[string]bool)
	for _, iris := range iriSets {
		for _, iri := range iris {
			protected[rdf.NewIRI(iri).String()] = true
		}
	}
	occ := make(map[string]int)
	for _, t := range triples {
		occ[t.S.String()]++
		if t.O.Kind == rdf.IRI {
			occ[t.O.String()]++
		}
	}

	const wantRetracts, wantNewEnts = 6, 4
	var retracts []delta.Op
	seen := make(map[string]bool)
	for _, t := range triples {
		if len(retracts) == wantRetracts {
			break
		}
		k := t.S.String() + "\x00" + t.P.String() + "\x00" + t.O.String()
		if seen[k] || protected[t.S.String()] || protected[t.O.String()] {
			continue
		}
		// Both endpoints must survive the retraction, or the flat rebuild
		// would drop an entity the workload (or another golden) may touch.
		if occ[t.S.String()] < 3 || (t.O.Kind == rdf.IRI && occ[t.O.String()] < 3) {
			continue
		}
		seen[k] = true
		retracts = append(retracts, delta.Op{Retract: true, S: t.S, P: t.P, O: t.O})
	}

	// Attachment points for the new entities: existing predicate/object
	// pairs with IRI objects, strided through the triple set for diversity.
	var anchors []rdf.Triple
	for i := 0; i < len(triples) && len(anchors) < 2*wantNewEnts; i += 37 {
		t := triples[i]
		if t.O.Kind == rdf.IRI && !protected[t.O.String()] {
			anchors = append(anchors, t)
		}
	}
	var first, second []delta.Op
	for i := 0; i < wantNewEnts && 2*i+1 < len(anchors); i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://bench.remi.local/live/E%d", i))
		first = append(first, delta.Op{S: s, P: anchors[2*i].P, O: anchors[2*i].O})
		second = append(second, delta.Op{S: s, P: anchors[2*i+1].P, O: anchors[2*i+1].O})
	}
	batches = [][]delta.Op{retracts, first, second}

	// Fold the batches over the triple set the same way the overlay does:
	// retracts filter, upserts append, the builder dedupes.
	dels := make(map[string]bool, len(retracts))
	for _, op := range retracts {
		dels[op.S.String()+"\x00"+op.P.String()+"\x00"+op.O.String()] = true
	}
	mutated = make([]rdf.Triple, 0, len(triples)+len(first)+len(second))
	for _, t := range triples {
		if !dels[t.S.String()+"\x00"+t.P.String()+"\x00"+t.O.String()] {
			mutated = append(mutated, t)
		}
	}
	for _, ops := range batches[1:] {
		for _, op := range ops {
			mutated = append(mutated, rdf.Triple{S: op.S, P: op.P, O: op.O})
		}
	}
	return batches, mutated
}

// runLiveKB measures the live mutable layer: mutated/recovered/compacted
// mining goldens against a flat rebuild, the delta-patched read path against
// the overhead budget, and the durable (fsynced) ack latency per batch.
func runLiveKB(seed int64, scale float64, timeout time.Duration, iriSets [][]string) (*LiveKBStats, []BenchEntry, error) {
	ctx := context.Background()
	d := datagen.DBpediaLike(datagen.Config{Seed: seed, Scale: scale})
	dir, err := os.MkdirTemp("", "remi-bench-livekb")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	writeNT := func(name string, triples []rdf.Triple) (string, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		if err := rdf.WriteAll(f, triples); err != nil {
			f.Close()
			return "", err
		}
		return path, f.Close()
	}
	srcPath, err := writeNT("source.nt", d.Triples)
	if err != nil {
		return nil, nil, err
	}

	buildOpts := liveBenchOpts()
	live, err := remi.OpenLive(dir, "bench", remi.LiveOptions{Source: srcPath, Build: &buildOpts})
	if err != nil {
		return nil, nil, err
	}
	defer live.Close()

	st := &LiveKBStats{
		Facts:          live.System().NumFacts(),
		OverheadBudget: overheadBudget,
		GoldenSets:     len(iriSets),
	}

	batches, mutatedTriples := liveMutations(d.Triples, iriSets)
	liveSys := live.System()
	for i, ops := range batches {
		if len(ops) == 0 {
			continue
		}
		sys, _, err := live.Apply(ctx, ops, fmt.Sprintf("bench-live-%d", i))
		if err != nil {
			return nil, nil, fmt.Errorf("live_kb: applying batch %d: %w", i, err)
		}
		liveSys = sys
		st.MutationBatches++
		for _, op := range ops {
			if op.Retract {
				st.Retracts++
			} else {
				st.Upserts++
			}
		}
	}
	lst := live.Stats()
	st.MutationOps = lst.FactsApplied
	st.WalRecords = lst.WalRecords
	st.WalBytes = lst.WalBytes

	// The flat reference: the mutated triple set rebuilt from scratch. It is
	// opened through the live machinery (zero mutations, so its System is
	// just the base) because that is the public path carrying custom build
	// options; its own WAL stays empty.
	refPath, err := writeNT("reference.nt", mutatedTriples)
	if err != nil {
		return nil, nil, err
	}
	ref, err := remi.OpenLive(filepath.Join(dir, "ref"), "ref", remi.LiveOptions{Source: refPath, Build: &buildOpts})
	if err != nil {
		return nil, nil, err
	}
	defer ref.Close()
	refSys := ref.System()

	mineKeys := func(sys *remi.System) ([]string, error) {
		keys := make([]string, len(iriSets))
		for i, iris := range iriSets {
			res, err := sys.Mine(iris, remi.WithTimeout(timeout))
			if err != nil {
				return nil, err
			}
			if !res.Found {
				keys[i] = "<none>"
				continue
			}
			keys[i] = fmt.Sprintf("%s @ %.6f", res.Expression, res.Bits)
		}
		return keys, nil
	}
	matchGolden := func(sys *remi.System, want []string, label string) (bool, error) {
		got, err := mineKeys(sys)
		if err != nil {
			return false, err
		}
		for i := range want {
			if got[i] != want[i] {
				fmt.Printf("live_kb: %s mismatch on set %d: %q vs flat %q\n", label, i, got[i], want[i])
				return false, nil
			}
		}
		return true, nil
	}

	flatKeys, err := mineKeys(refSys)
	if err != nil {
		return nil, nil, err
	}
	if st.MutatedGoldenMatch, err = matchGolden(liveSys, flatKeys, "mutated"); err != nil {
		return nil, nil, err
	}

	// Read path: interleaved flat/live pairs, per-side minima — the same
	// discipline that makes the resilience phase's ~2% bound measurable.
	mineAll := func(sys *remi.System) error {
		for _, iris := range iriSets {
			if _, err := sys.Mine(iris, remi.WithTimeout(timeout)); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Printf("benchmarking LiveKBMine (flat vs live)...\n")
	var rFlat, rLive testing.BenchmarkResult
	for rep := 0; rep < resilienceReps; rep++ {
		f := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := mineAll(refSys); err != nil {
					b.Fatal(err)
				}
			}
		})
		l := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := mineAll(liveSys); err != nil {
					b.Fatal(err)
				}
			}
		})
		fNs := float64(f.T.Nanoseconds()) / float64(f.N)
		lNs := float64(l.T.Nanoseconds()) / float64(l.N)
		if rep == 0 || fNs < st.FlatMineNsPerOp {
			st.FlatMineNsPerOp, rFlat = fNs, f
		}
		if rep == 0 || lNs < st.LiveMineNsPerOp {
			st.LiveMineNsPerOp, rLive = lNs, l
		}
	}
	if st.FlatMineNsPerOp > 0 {
		st.ReadOverhead = st.LiveMineNsPerOp / st.FlatMineNsPerOp
	}
	st.WithinBudget = st.ReadOverhead <= overheadBudget

	// Crash recovery: reopen the live directory while the first handle is
	// still open — the moral equivalent of a kill -9, no clean shutdown —
	// and every acked batch must come back from the WAL.
	crashed, err := remi.OpenLive(dir, "bench", remi.LiveOptions{Source: srcPath, Build: &buildOpts})
	if err != nil {
		return nil, nil, fmt.Errorf("live_kb: crash reopen: %w", err)
	}
	defer crashed.Close()
	cst := crashed.Stats()
	st.RecoveryReplayed = cst.RecoveryReplayed
	st.RecoveryDroppedBytes = cst.RecoveryDroppedBytes
	if st.RecoveryGoldenMatch, err = matchGolden(crashed.System(), flatKeys, "recovery"); err != nil {
		return nil, nil, err
	}
	if st.RecoveryReplayed != int64(st.MutationBatches) {
		fmt.Printf("live_kb: recovery replayed %d records, want %d\n", st.RecoveryReplayed, st.MutationBatches)
		st.RecoveryGoldenMatch = false
	}

	// Compact on the recovered handle, then boot once more: the base must
	// now come from the folded snapshot with an empty WAL.
	if _, err := crashed.Compact(ctx); err != nil {
		return nil, nil, fmt.Errorf("live_kb: compacting: %w", err)
	}
	st.Compactions = crashed.Stats().Compactions
	compacted, err := remi.OpenLive(dir, "bench", remi.LiveOptions{Source: srcPath, Build: &buildOpts})
	if err != nil {
		return nil, nil, fmt.Errorf("live_kb: post-compaction reopen: %w", err)
	}
	defer compacted.Close()
	if st.CompactedGoldenMatch, err = matchGolden(compacted.System(), flatKeys, "compacted"); err != nil {
		return nil, nil, err
	}
	if replayed := compacted.Stats().RecoveryReplayed; replayed != 0 {
		fmt.Printf("live_kb: post-compaction boot replayed %d records, want 0\n", replayed)
		st.CompactedGoldenMatch = false
	}

	// Durable ack latency: re-send one already-applied upsert batch in a
	// loop. Each ack is a full encode+append+fsync round (changed=0 — the
	// overlay absorbs the no-op), so ns/op is the write-path floor. The
	// records land in the post-compaction WAL of a throwaway directory.
	resend := batches[len(batches)-1]
	fmt.Printf("benchmarking LiveKBApply...\n")
	rApply := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := compacted.Apply(ctx, resend, "bench-resend"); err != nil {
				b.Fatal(err)
			}
		}
	})
	st.ApplyNsPerOp = float64(rApply.T.Nanoseconds()) / float64(rApply.N)

	// The apply timing lives in the phase stats only, not in Results: it is
	// fsync-bound, and fsync latency on shared storage swings far past the
	// trajectory guard's 15% gate — recording it as a gated entry would make
	// every future pair a coin flip on disk weather.
	entries := []BenchEntry{
		entryOf("LiveKBMineFlat", rFlat, nil),
		entryOf("LiveKBMineLive", rLive, nil),
	}
	return st, entries, nil
}
