package main

// The cluster phase drives the fault-tolerant routing tier end to end: a
// fleet of three in-process replicas (real remi-serve servers over one
// shared generated KB, behind real HTTP listeners) fronted by the
// remi-router consistent-hash Router. It measures how mining throughput
// scales from one replica to three under concurrent clients, then arms the
// replica.down fault on every request's ring primary and proves the
// failover guarantee the chaos suite asserts in-process: every retried
// answer must match, set for set, the golden a plain single-node server
// mines. CI gates on failover_golden_match.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/cluster"
	"github.com/remi-kb/remi/internal/server"
	"github.com/remi-kb/remi/internal/server/faults"
)

// clusterReplicas is the fleet size of the cluster phase, matching the
// docker-compose demo topology (one router, three replicas).
const clusterReplicas = 3

// ClusterStats records the cluster phase. SingleNsPerOp and FleetNsPerOp
// time one full concurrent pass over the workload sets through a one- and a
// three-replica fleet; ScalingSpeedup is their ratio and ScalingEfficiency
// divides it by the replica count (in-process replicas share the host's
// cores, so efficiency well below 1.0 is expected — the number tracks the
// routing tier's overhead trend, not real multi-host scaling).
// FailoverLatencyMS is the mean per-request latency with the ring primary
// down on every request, against HealthyLatencyMS for the same workload
// unfaulted; FailoverGoldenMatch is the acceptance condition — every
// failed-over answer byte-matches the single-node golden.
type ClusterStats struct {
	Replicas int `json:"replicas"`
	Sets     int `json:"sets"`
	Clients  int `json:"clients"`

	SingleNsPerOp     float64 `json:"single_ns_per_op"`
	FleetNsPerOp      float64 `json:"fleet_ns_per_op"`
	ScalingSpeedup    float64 `json:"scaling_speedup"`
	ScalingEfficiency float64 `json:"scaling_efficiency"`

	HealthyLatencyMS  float64 `json:"healthy_latency_ms"`
	FailoverLatencyMS float64 `json:"failover_latency_ms"`
	// Failovers and Retries are the router's counters over the faulted
	// pass: every request must have abandoned its primary.
	Failovers int64 `json:"failovers"`
	Retries   int64 `json:"retries"`

	FailoverGoldenSets  int  `json:"failover_golden_sets"`
	FailoverGoldenMatch bool `json:"failover_golden_match"`
}

// clusterFleet is one router over n live replica servers.
type clusterFleet struct {
	router *cluster.Router
	close  func()
}

// newClusterFleet starts n remi-serve servers over the shared system behind
// real listeners and fronts them with a Router tuned for tight in-process
// failover (millisecond backoff, hedging off so every measured answer is a
// deterministic retry, not a race).
func newClusterFleet(sys *remi.System, timeout time.Duration, n int) *clusterFleet {
	reps := make([]cluster.Replica, n)
	var closers []func()
	for i := 0; i < n; i++ {
		srv := server.New(sys, server.Options{DefaultTimeout: timeout, ResultCache: -1})
		ts := httptest.NewServer(srv.Handler())
		closers = append(closers, ts.Close, srv.Close)
		reps[i] = cluster.Replica{Name: fmt.Sprintf("r%d", i+1), URL: ts.URL}
	}
	rt, err := cluster.New(reps, cluster.Options{
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
		HedgeDisabled:  true,
		// The faulted pass kills every request's ring primary, so each
		// replica accrues breaker failures whenever it is primary; with the
		// default threshold the fleet's breakers would all open mid-pass and
		// starve the retry candidates. The breaker lifecycle has its own
		// tests in internal/cluster — here it is effectively disabled so the
		// phase measures pure failover latency.
		BreakerThreshold: 1 << 20,
	})
	if err != nil {
		for _, c := range closers {
			c()
		}
		panic(err) // replica specs are built above; New only rejects bad input
	}
	return &clusterFleet{
		router: rt,
		close: func() {
			for _, c := range closers {
				c()
			}
		},
	}
}

// mineKey flattens one routed /v1/mine body to the comparable
// expression-and-bits form every golden cross-check in this harness uses.
func clusterMineKey(body []byte) (string, error) {
	var r server.MineResponse
	if err := json.Unmarshal(body, &r); err != nil {
		return "", err
	}
	if !r.Found {
		return "<none>", nil
	}
	parts := []string{fmt.Sprintf("%s @ %.6f", r.Solution.Expression, r.Solution.Bits)}
	for _, alt := range r.Alternatives {
		parts = append(parts, fmt.Sprintf("%s @ %.6f", alt.Expression, alt.Bits))
	}
	return strings.Join(parts, " | "), nil
}

// runCluster executes the cluster phase over the sampled workload sets.
func runCluster(seed int64, scale float64, timeout time.Duration, iriSets [][]string) (*ClusterStats, []BenchEntry, error) {
	sys, err := remi.GenerateDemo("dbpedia", seed, scale)
	if err != nil {
		return nil, nil, err
	}

	bodies := make([][]byte, len(iriSets))
	for i, iris := range iriSets {
		b, err := json.Marshal(server.MineRequest{Targets: iris})
		if err != nil {
			return nil, nil, err
		}
		bodies[i] = b
	}

	// Golden: a plain single-node server, no router, no faults.
	goldSrv := server.New(sys, server.Options{DefaultTimeout: timeout, ResultCache: -1})
	defer goldSrv.Close()
	goldH := goldSrv.Handler()
	goldenKeys := make([]string, len(bodies))
	for i, body := range bodies {
		rec := httptest.NewRecorder()
		goldH.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/mine", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			return nil, nil, fmt.Errorf("cluster: golden mine %d: %d %s", i, rec.Code, rec.Body.String())
		}
		key, err := clusterMineKey(rec.Body.Bytes())
		if err != nil {
			return nil, nil, err
		}
		goldenKeys[i] = key
	}

	st := &ClusterStats{
		Replicas: clusterReplicas,
		Sets:     len(bodies),
		Clients:  clusterReplicas,
	}

	// mineVia posts one set through a router over the wire and returns the
	// comparable key.
	mineVia := func(c *http.Client, url string, body []byte) (string, error) {
		resp, err := c.Post(url+"/v1/mine", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("cluster: mine status %d: %s", resp.StatusCode, buf.String())
		}
		return clusterMineKey(buf.Bytes())
	}

	// passOnce issues the whole workload through the router with Clients
	// concurrent clients — the fleet only helps when requests overlap.
	passOnce := func(c *http.Client, url string) error {
		sem := make(chan struct{}, st.Clients)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for _, body := range bodies {
			wg.Add(1)
			sem <- struct{}{}
			go func(body []byte) {
				defer wg.Done()
				defer func() { <-sem }()
				if _, err := mineVia(c, url, body); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(body)
		}
		wg.Wait()
		return firstErr
	}

	// Scaling: the identical concurrent workload through a one-replica and
	// a three-replica fleet, each behind its own router listener.
	benchFleet := func(name string, n int) (testing.BenchmarkResult, error) {
		fleet := newClusterFleet(sys, timeout, n)
		defer fleet.close()
		ts := httptest.NewServer(fleet.router)
		defer ts.Close()
		client := ts.Client()
		if err := passOnce(client, ts.URL); err != nil { // warm up, surface errors outside the benchmark
			return testing.BenchmarkResult{}, err
		}
		fmt.Printf("benchmarking %s...\n", name)
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := passOnce(client, ts.URL); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		return r, benchErr
	}
	rSingle, err := benchFleet(fmt.Sprintf("ClusterMineSingle%d", len(bodies)), 1)
	if err != nil {
		return nil, nil, err
	}
	rFleet, err := benchFleet(fmt.Sprintf("ClusterMineFleet%d", clusterReplicas), clusterReplicas)
	if err != nil {
		return nil, nil, err
	}
	st.SingleNsPerOp = float64(rSingle.T.Nanoseconds()) / float64(rSingle.N)
	st.FleetNsPerOp = float64(rFleet.T.Nanoseconds()) / float64(rFleet.N)
	if st.FleetNsPerOp > 0 {
		st.ScalingSpeedup = st.SingleNsPerOp / st.FleetNsPerOp
		st.ScalingEfficiency = st.ScalingSpeedup / float64(clusterReplicas)
	}

	// Failover: one three-replica fleet; every request's ring primary is
	// killed via the replica.down fault, so every answer below is a retried
	// one. Latencies are sequential per-request means — healthy first, then
	// faulted — and the faulted answers must match the golden set for set.
	fleet := newClusterFleet(sys, timeout, clusterReplicas)
	defer fleet.close()
	ts := httptest.NewServer(fleet.router)
	defer ts.Close()
	client := ts.Client()

	latencyPass := func() (float64, []string, error) {
		keys := make([]string, len(bodies))
		start := time.Now()
		for i, body := range bodies {
			key, err := mineVia(client, ts.URL, body)
			if err != nil {
				return 0, nil, err
			}
			keys[i] = key
		}
		elapsed := time.Since(start)
		return float64(elapsed.Milliseconds()) / float64(len(bodies)), keys, nil
	}
	healthyMS, healthyKeys, err := latencyPass()
	if err != nil {
		return nil, nil, err
	}
	st.HealthyLatencyMS = healthyMS

	before := fleet.router.Stats()
	disarm := faults.Arm(faults.ReplicaDown, faults.Injection{Err: errors.New("bench: injected replica down")})
	failoverMS, failoverKeys, err := latencyPass()
	disarm()
	if err != nil {
		return nil, nil, err
	}
	st.FailoverLatencyMS = failoverMS
	after := fleet.router.Stats()
	st.Failovers = after.Failovers - before.Failovers
	st.Retries = after.Retries - before.Retries

	st.FailoverGoldenSets = len(goldenKeys)
	st.FailoverGoldenMatch = st.Failovers >= int64(len(bodies))
	if !st.FailoverGoldenMatch {
		fmt.Printf("cluster: %d failovers over %d faulted requests; the primary was not always abandoned\n",
			st.Failovers, len(bodies))
	}
	for i := range goldenKeys {
		if healthyKeys[i] != goldenKeys[i] {
			st.FailoverGoldenMatch = false
			fmt.Printf("cluster: healthy mismatch on set %d: %q vs golden %q\n", i, healthyKeys[i], goldenKeys[i])
			break
		}
		if failoverKeys[i] != goldenKeys[i] {
			st.FailoverGoldenMatch = false
			fmt.Printf("cluster: failover mismatch on set %d: %q vs golden %q\n", i, failoverKeys[i], goldenKeys[i])
			break
		}
	}

	entries := []BenchEntry{
		entryOf(fmt.Sprintf("ClusterMineSingle%d", len(bodies)), rSingle, nil),
		entryOf(fmt.Sprintf("ClusterMineFleet%d", clusterReplicas), rFleet, nil),
	}
	return st, entries, nil
}
