//go:build !unix

package main

import "os"

// peakRSSBytes has no portable source on non-unix platforms; the kb_scale
// phase records zero and skips the RSS-ratio assertion there.
func peakRSSBytes(ps *os.ProcessState) int64 { return 0 }
