// Command remi-bench regenerates the paper's tables and in-text findings on
// the synthetic datasets (see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured values).
//
// Usage:
//
//	remi-bench table2                 # Table 2: precision@k of Ĉ vs users
//	remi-bench map                    # §4.1.2: MAP + fr/pr preference
//	remi-bench scores                 # §4.1.3: 1–5 perceived quality
//	remi-bench table3                 # Table 3: entity summarization
//	remi-bench table4                 # Table 4: AMIE+ vs REMI vs P-REMI
//	remi-bench fit                    # Eq. 1 power-law fit quality (R²)
//	remi-bench searchspace            # §3.2 language-bias census
//	remi-bench all                    # everything above
//	remi-bench bench -label after     # perf trajectory snapshot (BENCH_<date>.json)
//
// Common flags: -seed, -scale (dataset size multiplier), -sets, -timeout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/remi-kb/remi/internal/experiments"
)

func main() {
	// Hidden re-exec entry point for the kb_scale phase: build one KB in a
	// child process so the parent can read its peak RSS from the kernel.
	if len(os.Args) > 1 && os.Args[1] == "_build" {
		kbScaleChildMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "_spawn" {
		kbScaleSpawnMain(os.Args[2:])
		return
	}
	var (
		seed    = flag.Int64("seed", 42, "experiment seed")
		scale   = flag.Float64("scale", 0.25, "dataset scale multiplier")
		sets    = flag.Int("sets", 0, "entity sets for table2/map/table4 (0 = experiment default)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-set timeout for table4")
		workers = flag.Int("workers", 0, "P-REMI/AMIE workers for table4 (0 = NumCPU)")
		kbscale = flag.Float64("kbscale", 1.0, "bench: dataset scale for the kb_scale streaming-ingestion phase (0 disables; RSS bound meaningful from 1.0 up)")
		jsonOut = flag.String("json", "", "bench: output file (default BENCH_<date>.json; appended when present)")
		label   = flag.String("label", "run", "bench: snapshot label recorded in the JSON output")
		compare = flag.String("compare", "", "bench: diff two snapshot labels (\"base,after\" or \"latest\") instead of running; non-zero exit on >15% ns/op regression")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\nsubcommands: table2 map scores table3 table4 fit searchspace all")
		os.Exit(2)
	}

	lab := experiments.NewLab(*seed, *scale)
	run := func(name string, fn func()) {
		fmt.Printf("\n════════ %s ════════\n", name)
		start := time.Now()
		fn()
		fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	}

	table2 := func() {
		cfg := experiments.DefaultTable2Config()
		if *sets > 0 {
			cfg.Sets = *sets
		}
		rows := experiments.Table2With(lab, cfg)
		fmt.Println("Table 2 — precision@k of Ĉ's subgraph-expression ranking vs simulated users")
		fmt.Printf("%-6s %10s %14s %14s %14s\n", "metric", "#responses", "p@1", "p@2", "p@3")
		for _, r := range rows {
			fmt.Printf("%-6s %10d %8.2f±%.2f %8.2f±%.2f %8.2f±%.2f\n",
				r.Metric, r.Responses, r.P1, r.P1Std, r.P2, r.P2Std, r.P3, r.P3Std)
		}
		fmt.Println("paper:  Ĉfr 44 responses  0.38±0.42  0.66±0.18  0.88±0.09")
		fmt.Println("        Ĉpr 48 responses  0.43±0.42  0.53±0.25  0.72±0.16")
	}

	mapStudy := func() {
		cfg := experiments.DefaultMAPConfig()
		if *sets > 0 {
			cfg.Sets = *sets
		}
		res := experiments.Section412With(lab, cfg)
		fmt.Println("§4.1.2 — users rank REMI's answer among alternative REs (MAP, single relevant)")
		fmt.Printf("MAP = %.2f±%.2f over %d answers on %d sets (paper: 0.64±0.17 on 51 answers)\n",
			res.MAP, res.Std, res.Answers, res.SetsUsed)
		fmt.Printf("fr-vs-pr: same RE on %d sets; %.0f%% of users prefer the Ĉfr solution (paper: 6 sets; 59%%)\n",
			res.AgreeSets, res.PreferFrPct)
	}

	scores := func() {
		res := experiments.Section413With(lab, experiments.DefaultScoreConfig())
		fmt.Println("§4.1.3 — perceived quality of Wikidata REs (1–5 scale)")
		fmt.Printf("mean score %.2f±%.2f over %d answers on %d REs; %d REs scored ≥3\n",
			res.Mean, res.Std, res.Answers, res.REs, res.ScoredAtLeast3)
		fmt.Println("paper: 2.65±0.71 over 86 answers on 35 REs; 11 REs scored ≥3")
	}

	table3 := func() {
		rows, merged := experiments.Table3With(lab, experiments.DefaultTable3Config())
		fmt.Println("Table 3 — entity summarization vs simulated 7-expert gold standard")
		fmt.Printf("%-10s %13s %13s %13s %13s\n", "method", "top5 PO", "top5 O", "top10 PO", "top10 O")
		for _, r := range rows {
			fmt.Printf("%-10s %7.2f±%.2f %7.2f±%.2f %7.2f±%.2f %7.2f±%.2f\n",
				r.Method, r.Top5PO, r.Top5POStd, r.Top5O, r.Top5OStd, r.Top10PO, r.Top10POStd, r.Top10O, r.Top10OStd)
		}
		fmt.Println("paper:  FACES    0.93±0.54 1.66±0.57 2.92±0.94 4.33±1.01")
		fmt.Println("        LinkSUM  1.20±0.60 1.89±0.55 3.20±0.87 4.82±1.06")
		fmt.Println("        REMI fr  0.68±0.18 1.31±0.27 2.26±0.34 3.70±0.46")
		fmt.Println("        REMI pr  0.73±0.13 1.21±0.29 2.24±0.46 3.75±0.23")
		fmt.Println("\nMerged top-10 gold precision (paper Ĉfr: P=0.53 O=0.62 PO=0.31; Ĉpr PO=0.38):")
		for _, m := range merged {
			fmt.Printf("  %s: P=%.2f O=%.2f PO=%.2f\n", m.Metric, m.P, m.O, m.PO)
		}
	}

	table4 := func() {
		cfg := experiments.DefaultTable4Config()
		if *sets > 0 {
			cfg.Sets = *sets
		}
		cfg.Timeout = *timeout
		cfg.Workers = *workers
		rows := experiments.Table4With(lab, cfg)
		fmt.Printf("Table 4 — runtimes over %d sets/KB, timeout %v (superscripts = timeouts)\n", cfg.Sets, cfg.Timeout)
		fmt.Printf("%-14s %-9s %5s %14s %14s %14s %22s %8s\n",
			"dataset", "language", "#sol", "amie+ (s)", "remi (s)", "p-remi (s)", "speedup amie/remi", "queue%")
		for _, r := range rows {
			fmt.Printf("%-14s %-9s %5d %11.2f^%-2d %11.3f^%-2d %11.3f^%-2d %9.0fx %7.2fx %7.1f%%\n",
				r.Dataset, r.Language, r.Solutions,
				r.AmieSec, r.AmieTimeouts, r.RemiSec, r.RemiTimeouts, r.PRemiSec, r.PRemiTimeouts,
				r.SpeedupVsAmie, r.SpeedupVsRemi, 100*r.QueueShare)
		}
		fmt.Println("paper (100 sets, 2h timeout, 48 cores):")
		fmt.Println("  DBpedia  standard #63: amie 97.4k^8  remi 10.3k^1  p-remi 576      (13.5kx, 2.44x)")
		fmt.Println("  DBpedia  remi     #65: amie 508.2k^68 remi 66.5k^8 p-remi 28.9k    (5218x, 21.4x)")
		fmt.Println("  Wikidata standard #44: amie 115.5k^15 remi 1.06k   p-remi 76.2     (142kx, 4.7x)")
		fmt.Println("  Wikidata remi     #44: amie 608.3k^60 remi 21.7k   p-remi 33.8k    (6476x, 7.1x)")
	}

	fit := func() {
		rows := experiments.Eq1Fits(lab, 20)
		fmt.Println("Eq. 1 — power-law fit of conditional rank vs frequency (per-predicate R²)")
		for _, r := range rows {
			fmt.Printf("  %-14s %-3s avg R² = %.2f over %d predicates\n", r.Dataset, r.Metric, r.AvgR2, r.Predicates)
		}
		fmt.Println("paper: DBpedia fr 0.85, Wikidata fr 0.88, DBpedia pr 0.91")
	}

	searchspace := func() {
		n := 20
		if *sets > 0 {
			n = *sets
		}
		rows := experiments.SearchSpaceCensus(lab, n, *seed+5)
		fmt.Println("§3.2 — language-bias census (subgraph expressions over sampled entities)")
		for _, r := range rows {
			growth := ""
			if r.GrowthPct != 0 {
				growth = fmt.Sprintf("  (+%.0f%%)", r.GrowthPct)
			}
			fmt.Printf("  %-24s %8d%s\n", r.Label, r.Subgraphs, growth)
		}
		fmt.Println("paper: 3rd atom → +40%; 2nd variable → +270%")
	}

	switch cmd {
	case "bench":
		if *compare != "" {
			if err := runCompare(*jsonOut, *compare); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		run("bench snapshot", func() {
			if err := runBench(*seed, *scale, *kbscale, 5*time.Second, *label, *jsonOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		})
	case "table2":
		run("Table 2", table2)
	case "map":
		run("§4.1.2 MAP", mapStudy)
	case "scores":
		run("§4.1.3 scores", scores)
	case "table3":
		run("Table 3", table3)
	case "table4":
		run("Table 4", table4)
	case "fit":
		run("Eq. 1 fits", fit)
	case "searchspace":
		run("§3.2 census", searchspace)
	case "all":
		run("Eq. 1 fits", fit)
		run("§3.2 census", searchspace)
		run("Table 2", table2)
		run("§4.1.2 MAP", mapStudy)
		run("§4.1.3 scores", scores)
		run("Table 3", table3)
		run("Table 4", table4)
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", cmd)
		os.Exit(2)
	}
}
