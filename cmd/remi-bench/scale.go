// kb_scale phase: the web-scale ingestion gate. The same DBpedia-like
// dataset is compiled twice in child processes — once through the
// in-memory builder (rdf.ReadAll + kb.FromTriples), once through the
// bounded-memory streaming builder (kb.BuildStreaming) — and the children's
// peak RSS, measured by the kernel via wait4 rusage, is the number the
// acceptance bound is about: the streamed build must peak below half the
// in-memory build on the scale-1.0 dataset. Child processes are the only
// honest way to measure this; two builds in one Go process share a heap
// and the second inherits whatever the first grew it to.
//
// The builders are launched through a "_spawn" trampoline rather than
// forked from the bench process directly: fork-inherited copy-on-write
// pages count toward a child's RSS before exec, and Linux folds that
// pre-exec high-water into the rusage the parent later reads — so a child
// forked from a 30MB bench parent can never report a peak below 30MB. The
// trampoline's own maxrss is poisoned the same way, but its current RSS
// after exec is just the binary's footprint, so the builder it forks in
// turn starts from an honest floor (which the empty-input baseline runs
// then tare out).
//
// The phase also gates the format work: the streamed and in-memory builds
// must produce byte-identical v2 snapshots, the v2 snapshot must beat the
// legacy v1 format by the expected front-coding margin, opening the v2
// snapshot must not allocate an O(entities) term table, and mining goldens
// must agree across every build and format combination.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/experiments"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// kbScaleRSSBudget is the acceptance bound: streamed peak RSS must stay
// below this fraction of the in-memory builder's peak.
const kbScaleRSSBudget = 0.5

// KBScaleStats records the kb_scale phase.
type KBScaleStats struct {
	// Scale is the dataset scale this phase ran at (independent of the main
	// bench -scale; the RSS bound is meaningful from 1.0 up, CI smokes it
	// smaller for the golden checks only).
	Scale   float64 `json:"scale"`
	Triples int     `json:"triples"`
	// PeakRSSBytes is the streaming build child's kernel-reported peak
	// resident set; InMemPeakRSSBytes the in-memory build child's. Both are
	// raw process peaks (minimum over reps), which include the fixed cost
	// of a Go process — binary text, runtime, GC metadata — measured by the
	// matching *BaselineRSSBytes calibration runs on empty input. RSSRatio
	// compares the build-attributable memory (peak minus own baseline), the
	// number that actually scales with the dataset.
	PeakRSSBytes           int64   `json:"peak_rss_bytes"`
	InMemPeakRSSBytes      int64   `json:"in_mem_peak_rss_bytes"`
	StreamBaselineRSSBytes int64   `json:"stream_baseline_rss_bytes"`
	InMemBaselineRSSBytes  int64   `json:"in_mem_baseline_rss_bytes"`
	RSSRatio               float64 `json:"rss_ratio"`
	RSSBudget              float64 `json:"rss_budget"`
	RSSWithinBudget        bool    `json:"rss_within_budget"`
	// SnapshotBytes is the v2 (front-coded, lazy-derivable) snapshot size;
	// LegacySnapshotBytes the v1 image of the same KB; CompressionRatio is
	// legacy/new (the PR acceptance asks ≥ 1.5).
	SnapshotBytes       int64   `json:"snapshot_bytes"`
	LegacySnapshotBytes int64   `json:"legacy_snapshot_bytes"`
	CompressionRatio    float64 `json:"compression_ratio"`
	// OpenAllocBytes is the heap allocated by one OpenSnapshot of the v2
	// file — with the lazy term table it must not scale with entities.
	OpenAllocBytes      int64 `json:"open_alloc_bytes"`
	BuildsByteIdentical bool  `json:"builds_byte_identical"`
	GoldenSets          int   `json:"golden_sets"`
	// StreamedGoldenMatch: mining from the streamed build's snapshot equals
	// mining from a direct in-memory build. FormatGoldenMatch: mining from
	// the legacy v1 snapshot equals the same golden.
	StreamedGoldenMatch bool `json:"streamed_golden_match"`
	FormatGoldenMatch   bool `json:"format_golden_match"`
}

// kbScaleChildMain is the re-exec entry point (argv[1] == "_build"): compile
// an N-Triples file with the selected builder and write the requested
// snapshot forms. It runs in its own process so the parent can read the
// kernel's peak-RSS accounting for exactly one build.
func kbScaleChildMain(args []string) {
	fs := flag.NewFlagSet("_build", flag.ExitOnError)
	var (
		in     = fs.String("in", "", "N-Triples input")
		mode   = fs.String("mode", "mem", "builder: mem | stream")
		snap   = fs.String("snap", "", "v2 snapshot output")
		legacy = fs.String("legacy", "", "legacy v1 snapshot output")
	)
	fs.Parse(args)
	log.SetFlags(0)
	log.SetPrefix("remi-bench _build: ")

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	var k *kb.KB
	switch *mode {
	case "mem":
		triples, err := rdf.ReadAll(f)
		if err != nil {
			log.Fatal(err)
		}
		if k, err = kb.FromTriples(triples, kb.DefaultOptions()); err != nil {
			log.Fatal(err)
		}
	case "stream":
		if k, err = kb.BuildStreaming(rdf.NewReader(f), kb.DefaultOptions()); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
	f.Close()

	if *snap != "" {
		if err := k.WriteSnapshotFile(*snap); err != nil {
			log.Fatal(err)
		}
	}
	if *legacy != "" {
		lf, err := os.Create(*legacy)
		if err != nil {
			log.Fatal(err)
		}
		if err := k.WriteSnapshotLegacy(lf); err != nil {
			log.Fatal(err)
		}
		if err := lf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if os.Getenv("REMI_BUILD_MEMSTATS") != "" {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Printf("sys=%d heapsys=%d stacksys=%d mspan=%d mcache=%d gcsys=%d other=%d buckhash=%d heapinuse=%d\n",
			ms.Sys, ms.HeapSys, ms.StackSys, ms.MSpanSys, ms.MCacheSys, ms.GCSys, ms.OtherSys, ms.BuckHashSys, ms.HeapInuse)
	}
}

// kbScaleSpawnMain is the "_spawn" trampoline (see the package comment):
// re-exec the _build child from this freshly-exec'd, small-RSS process and
// report the builder's kernel peak RSS as the only stdout output.
func kbScaleSpawnMain(args []string) {
	log.SetFlags(0)
	log.SetPrefix("remi-bench _spawn: ")
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stderr // keep builder chatter off the report channel
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("child_maxrss_bytes=%d\n", peakRSSBytes(cmd.ProcessState))
}

// buildInChild runs one _build via the _spawn trampoline and returns the
// builder's wall time (including ~ms of double-spawn overhead, paid equally
// by every mode) and its kernel-reported peak RSS.
func buildInChild(exe, ntPath, mode, snapPath, legacyPath string) (time.Duration, int64, error) {
	args := []string{"_spawn", "_build", "-in", ntPath, "-mode", mode}
	if snapPath != "" {
		args = append(args, "-snap", snapPath)
	}
	if legacyPath != "" {
		args = append(args, "-legacy", legacyPath)
	}
	var report bytes.Buffer
	cmd := exec.Command(exe, args...)
	cmd.Stdout = &report
	cmd.Stderr = os.Stderr
	start := time.Now()
	err := cmd.Run()
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, fmt.Errorf("kb_scale: %s build child: %w", mode, err)
	}
	var rss int64
	if _, err := fmt.Sscanf(report.String(), "child_maxrss_bytes=%d", &rss); err != nil {
		return 0, 0, fmt.Errorf("kb_scale: %s build child: parsing trampoline report %q: %w", mode, report.String(), err)
	}
	return elapsed, rss, nil
}

// runKBScale drives the phase at its own dataset scale. The golden
// reference is a direct in-memory build in this process; the streamed
// build's correctness is checked both at the byte level (its v2 snapshot
// must equal the in-memory build's) and at the mining level (snapshots of
// both formats must reproduce the reference expressions).
func runKBScale(seed int64, kbScale float64, timeout time.Duration) (*KBScaleStats, []BenchEntry, error) {
	d := datagen.DBpediaLike(datagen.Config{Seed: seed, Scale: kbScale})
	dir, err := os.MkdirTemp("", "remi-bench-kbscale")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	ntPath := filepath.Join(dir, "kb.nt")
	f, err := os.Create(ntPath)
	if err != nil {
		return nil, nil, err
	}
	if err := rdf.WriteAll(f, d.Triples); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Close(); err != nil {
		return nil, nil, err
	}

	st := &KBScaleStats{Scale: kbScale, Triples: len(d.Triples), RSSBudget: kbScaleRSSBudget}

	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("kb_scale: resolving own binary: %w", err)
	}
	memSnap := filepath.Join(dir, "mem.snap")
	legacySnap := filepath.Join(dir, "mem-legacy.snap")
	streamSnap := filepath.Join(dir, "stream.snap")
	emptyPath := filepath.Join(dir, "empty.nt")
	if err := os.WriteFile(emptyPath, nil, 0o644); err != nil {
		return nil, nil, err
	}

	// Each builder runs rssReps times; peaks keep the minimum (GC timing
	// jitters the high-water mark up, never down). The empty-input runs
	// tare out the fixed per-process cost so the ratio compares the memory
	// the builds themselves are responsible for.
	const rssReps = 3
	measure := func(label, nt, mode, snap, legacy string) (time.Duration, int64, error) {
		fmt.Printf("benchmarking %s...\n", label)
		var bestT time.Duration
		var bestRSS int64
		for i := 0; i < rssReps; i++ {
			elapsed, rss, err := buildInChild(exe, nt, mode, snap, legacy)
			if err != nil {
				return 0, 0, err
			}
			if i == 0 || elapsed < bestT {
				bestT = elapsed
			}
			if i == 0 || rss < bestRSS {
				bestRSS = rss
			}
		}
		return bestT, bestRSS, nil
	}
	memElapsed, memRSS, err := measure("KBScaleMemBuild", ntPath, "mem", memSnap, legacySnap)
	if err != nil {
		return nil, nil, err
	}
	streamElapsed, streamRSS, err := measure("KBScaleStreamBuild", ntPath, "stream", streamSnap, "")
	if err != nil {
		return nil, nil, err
	}
	_, memBase, err := measure("KBScaleMemBaseline", emptyPath, "mem", "", "")
	if err != nil {
		return nil, nil, err
	}
	_, streamBase, err := measure("KBScaleStreamBaseline", emptyPath, "stream", "", "")
	if err != nil {
		return nil, nil, err
	}
	st.InMemPeakRSSBytes = memRSS
	st.PeakRSSBytes = streamRSS
	st.InMemBaselineRSSBytes = memBase
	st.StreamBaselineRSSBytes = streamBase
	if net := memRSS - memBase; net > 0 {
		st.RSSRatio = float64(streamRSS-streamBase) / float64(net)
		st.RSSWithinBudget = st.RSSRatio < kbScaleRSSBudget
	}

	memImage, err := os.ReadFile(memSnap)
	if err != nil {
		return nil, nil, err
	}
	streamImage, err := os.ReadFile(streamSnap)
	if err != nil {
		return nil, nil, err
	}
	st.BuildsByteIdentical = bytes.Equal(memImage, streamImage)
	st.SnapshotBytes = int64(len(streamImage))
	if fi, err := os.Stat(legacySnap); err == nil {
		st.LegacySnapshotBytes = fi.Size()
	}
	if st.SnapshotBytes > 0 {
		st.CompressionRatio = float64(st.LegacySnapshotBytes) / float64(st.SnapshotBytes)
	}

	// One OpenSnapshot's allocation bill: the lazy term table means this
	// stays flat as entities grow (the v1 path allocated an O(entities)
	// offset slice plus a term table here).
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	v2KB, err := kb.OpenSnapshot(streamSnap)
	if err != nil {
		return nil, nil, err
	}
	runtime.ReadMemStats(&m1)
	st.OpenAllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	defer v2KB.Close()

	legacyKB, err := kb.OpenSnapshot(legacySnap)
	if err != nil {
		return nil, nil, err
	}
	defer legacyKB.Close()

	// Golden reference: a direct in-memory build of the same triples.
	ref, err := kb.FromTriples(d.Triples, kb.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	sets := experiments.SampleSets(&experiments.Env{Data: d, KB: ref}, 6, seed+77, 0)
	cfg := core.DefaultConfig()
	cfg.Timeout = timeout
	mineAll := func(k *kb.KB) ([]string, error) {
		est := complexity.New(k, prominence.Build(k, prominence.Fr), complexity.Compressed)
		var out []string
		for _, set := range sets {
			ids := make([]kb.EntID, 0, len(set.IRIs))
			for _, iri := range set.IRIs {
				id, ok := k.EntityID(rdf.NewIRI(iri))
				if !ok {
					return nil, fmt.Errorf("kb_scale: entity %s missing after reload", iri)
				}
				ids = append(ids, id)
			}
			m := core.NewMiner(k, est, cfg)
			res, err := m.Mine(ids)
			if err != nil {
				return nil, err
			}
			out = append(out, fmt.Sprintf("%s @ %.6f", res.Expression.Format(k), res.Bits))
		}
		return out, nil
	}
	golden, err := mineAll(ref)
	if err != nil {
		return nil, nil, err
	}
	fromStream, err := mineAll(v2KB)
	if err != nil {
		return nil, nil, err
	}
	fromLegacy, err := mineAll(legacyKB)
	if err != nil {
		return nil, nil, err
	}
	st.GoldenSets = len(golden)
	equal := func(got []string) bool {
		if len(got) != len(golden) {
			return false
		}
		for i := range golden {
			if got[i] != golden[i] {
				return false
			}
		}
		return true
	}
	st.StreamedGoldenMatch = equal(fromStream)
	st.FormatGoldenMatch = equal(fromLegacy)
	if !st.StreamedGoldenMatch {
		fmt.Printf("kb_scale: streamed-build mining diverges from in-memory golden\n")
	}
	if !st.FormatGoldenMatch {
		fmt.Printf("kb_scale: legacy-format mining diverges from in-memory golden\n")
	}

	entries := []BenchEntry{
		entryOf("KBScaleMemBuild", testing.BenchmarkResult{N: 1, T: memElapsed}, nil),
		entryOf("KBScaleStreamBuild", testing.BenchmarkResult{N: 1, T: streamElapsed}, nil),
	}
	return st, entries, nil
}
