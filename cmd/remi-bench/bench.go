package main

// The `bench` subcommand is the perf trajectory harness: it reruns the
// mining benchmarks that matter for the hot path (the Figure 1 DFS and the
// Table 4 suite) under testing.Benchmark and appends a machine-readable
// snapshot — ns/op, bytes/op, allocs/op plus the miner's own Stats — to a
// BENCH_<date>.json file. Successive PRs append snapshots with different
// labels to the same file (or new dated files), so the performance history
// of the engine is checked in next to the code it measures.
//
//	remi-bench -scale 0.1 -label baseline bench
//	remi-bench -scale 0.1 -label after -json BENCH_2026-07-28.json bench
//
// With -compare it runs nothing and instead diffs two labelled snapshots of
// an existing trajectory file, failing (non-zero exit) on a >15% ns/op
// regression — the CI guard over the baseline→after pair checked in with a
// PR:
//
//	remi-bench -compare baseline,after -json BENCH_2026-07-28.json bench
//	remi-bench -compare latest bench    # last two snapshots, newest file

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/experiments"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/kb/snapshot"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/server"
)

// BenchSnapshot is one labelled run of the benchmark suite.
type BenchSnapshot struct {
	Label   string       `json:"label"`
	Date    string       `json:"date"`
	Go      string       `json:"go"`
	Seed    int64        `json:"seed"`
	Scale   float64      `json:"scale"`
	Results []BenchEntry `json:"results"`
	// KBLoad summarizes the cold-start phase: N-Triples parse+build versus
	// zero-copy snapshot open on the same dataset (absent in snapshots
	// recorded before the phase existed).
	KBLoad *KBLoadStats `json:"kb_load,omitempty"`
	// MineBatch summarizes the batch-mining phase: one MineBatch pass over
	// overlapping target sets against the equivalent sequential Mine calls
	// (absent in snapshots recorded before the phase existed).
	MineBatch *MineBatchStats `json:"mine_batch,omitempty"`
	// MineAsync summarizes the async job-subsystem phase: the same batch
	// mined blocking, streamed and async+polled over HTTP (absent in
	// snapshots recorded before the phase existed).
	MineAsync *MineAsyncStats `json:"mine_async,omitempty"`
	// Resilience summarizes the fault-tolerance phase: disarmed-overhead of
	// the watchdog+quota admission checks on the mine/mine:batch hot path,
	// plus the golden cross-checks that a guarded server — and a guarded
	// server degraded by a failed reload — serves byte-identical results
	// (absent in snapshots recorded before the phase existed).
	Resilience *ResilienceStats `json:"resilience,omitempty"`
	// Cluster summarizes the replica-fleet phase: mining throughput scaling
	// from one to three routed replicas plus the failover golden — every
	// answer retried past a killed ring primary must match single-node
	// mining (absent in snapshots recorded before the phase existed).
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// LiveKB summarizes the live mutable-KB phase: mutated, crash-recovered
	// and compacted mining goldens against a flat rebuild of the same
	// triples, plus the delta-patched read path against the overhead budget
	// (absent in snapshots recorded before the phase existed).
	LiveKB *LiveKBStats `json:"live_kb,omitempty"`
	// KBScale summarizes the web-scale ingestion phase: child-process peak
	// RSS of the streaming versus in-memory builder, v2-vs-legacy snapshot
	// compression, open-time allocation of the lazy term table, and the
	// mining goldens across builds and formats (absent in snapshots
	// recorded before the phase existed).
	KBScale *KBScaleStats `json:"kb_scale,omitempty"`
}

// ResilienceStats records the resilience phase. The guarded server runs the
// full failure-containment configuration — watchdog grace, per-client quota,
// interactive queue reserve — with every fault point disarmed, so the
// ns/op deltas against an unguarded baseline are the standing cost of the
// checks themselves; the PR 7 acceptance bound is guarded/base ≤ 1.02x.
// DegradedGoldenMatch is the last-known-good guarantee measured end to end:
// after an injected reload failure the guarded server must keep serving the
// old generation's batch results byte for byte.
type ResilienceStats struct {
	Sets int `json:"sets"`
	// Single-set /v1/mine and full-batch /v1/mine:batch timings, each the
	// minimum over interleaved base/guarded benchmark pairs.
	BaseMineNsPerOp     float64 `json:"base_mine_ns_per_op"`
	GuardedMineNsPerOp  float64 `json:"guarded_mine_ns_per_op"`
	MineOverhead        float64 `json:"mine_overhead"`
	BaseBatchNsPerOp    float64 `json:"base_batch_ns_per_op"`
	GuardedBatchNsPerOp float64 `json:"guarded_batch_ns_per_op"`
	BatchOverhead       float64 `json:"batch_overhead"`
	OverheadBudget      float64 `json:"overhead_budget"`
	WithinBudget        bool    `json:"within_budget"`
	// GuardedGoldenMatch: quota+watchdog enabled changes no mining result.
	GuardedGoldenMatch bool `json:"guarded_golden_match"`
	// ReloadFailures is the guarded server's /v1/stats reload-failure count
	// after the injected failure (must be 1); DegradedGoldenMatch asserts
	// the degraded server still answers from the last good generation.
	ReloadFailures      int64 `json:"reload_failures"`
	DegradedGoldenMatch bool  `json:"degraded_golden_match"`
}

// MineAsyncStats records the mine_async phase: the HTTP job subsystem
// driven end to end — one batch of sampled sets mined via the blocking
// /v1/mine:batch endpoint (the golden), re-mined as an NDJSON
// /v1/mine:stream (entry events) and as a /v1/mine:async job that is
// polled to completion. All three must carry byte-identical expressions
// in the same per-set order; GoldenMatch is the conjunction CI gates on.
type MineAsyncStats struct {
	Sets       int `json:"sets"`
	GoldenSets int `json:"golden_sets"`
	// StreamedMatch covers the batch stream entries and the single-set
	// stream's final result; PolledMatch covers the polled job document.
	StreamedMatch bool `json:"streamed_match"`
	PolledMatch   bool `json:"polled_match"`
	GoldenMatch   bool `json:"golden_match"`
	// EntryEvents counts streamed batch entries (one per input set);
	// ProgressEvents counts the new-best trace events of the single-set
	// stream.
	EntryEvents    int `json:"entry_events"`
	ProgressEvents int `json:"progress_events"`
	// BlockingNsPerOp and StreamNsPerOp time one full batch through the
	// blocking and streaming endpoints; StreamOverhead is their ratio —
	// the end-to-end cost of event framing over the same job pool.
	BlockingNsPerOp float64 `json:"blocking_ns_per_op"`
	StreamNsPerOp   float64 `json:"stream_ns_per_op"`
	StreamOverhead  float64 `json:"stream_overhead"`
}

// MineBatchStats records the mine_batch phase: queue-prep work shared by
// one batch pass versus repeated per-set sequential builds, plus the golden
// cross-check that batch mining yields byte-identical expressions.
type MineBatchStats struct {
	Sets       int `json:"sets"`
	UniqueSets int `json:"unique_sets"`
	// BatchQueueBuildMS sums the queue-build time of the searches one
	// MineBatch call executed; SequentialQueueBuildMS sums the per-set
	// builds of independent Mine calls over the same sets. Both are minima
	// over statReps passes.
	BatchQueueBuildMS      float64 `json:"batch_queue_build_ms"`
	SequentialQueueBuildMS float64 `json:"sequential_queue_build_ms"`
	// QueueBuildRatio is batch/sequential; SharedQueueWork records the
	// acceptance condition batch < sequential.
	QueueBuildRatio float64 `json:"queue_build_ratio"`
	SharedQueueWork bool    `json:"shared_queue_work"`
	GoldenSets      int     `json:"golden_sets"`
	GoldenMatch     bool    `json:"golden_match"`
}

// KBLoadStats records the kb_load phase: the timings behind the
// KBLoadParse/KBLoadSnapshot entries plus file sizes, allocation footprints
// and the golden cross-check that mining from a snapshot-opened KB yields
// byte-identical expressions.
type KBLoadStats struct {
	NTriplesBytes   int64   `json:"ntriples_bytes"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	ParseNsPerOp    float64 `json:"parse_ns_per_op"`
	SnapshotNsPerOp float64 `json:"snapshot_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	ParseAllocBytes int64   `json:"parse_alloc_bytes_per_op"`
	SnapshotAllocs  int64   `json:"snapshot_alloc_bytes_per_op"`
	SnapshotMapped  bool    `json:"snapshot_mapped"`
	GoldenSets      int     `json:"golden_sets"`
	GoldenMatch     bool    `json:"golden_match"`
}

// BenchEntry is one benchmark's timing plus the mining stats of a
// representative pass over its workload.
type BenchEntry struct {
	Name        string      `json:"name"`
	Iterations  int         `json:"iterations"`
	NsPerOp     float64     `json:"ns_per_op"`
	BytesPerOp  int64       `json:"bytes_per_op"`
	AllocsPerOp int64       `json:"allocs_per_op"`
	Stats       *BenchStats `json:"stats,omitempty"`
}

// BenchStats is the wire form of core.Stats, aggregated over the workload.
type BenchStats struct {
	Sets         int     `json:"sets"`
	Solutions    int     `json:"solutions"`
	Candidates   int     `json:"candidates"`
	QueueBuildMS float64 `json:"queue_build_ms"`
	SearchMS     float64 `json:"search_ms"`
	Visited      uint64  `json:"visited"`
	RETests      uint64  `json:"re_tests"`
	PrunedDepth  uint64  `json:"pruned_depth"`
	PrunedSide   uint64  `json:"pruned_side"`
	PrunedCost   uint64  `json:"pruned_cost"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	TimedOut     int     `json:"timed_out"`
}

// statReps is how many times the stats pass mines each set: the search is
// deterministic, so the counters are identical across runs, and the phase
// timings keep the per-phase minimum — single-shot microsecond timings are
// dominated by scheduler and GC noise, the minimum is the stable estimate
// of the actual work.
const statReps = 15

// mineForStats runs one workload set statReps times and returns the result
// of the final run with QueueBuild/Search replaced by the per-phase minima.
func mineForStats(m *core.Miner, ids []kb.EntID) (*core.Result, error) {
	var best *core.Result
	for r := 0; r < statReps; r++ {
		res, err := m.Mine(ids)
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = res
			continue
		}
		if res.Stats.QueueBuild < best.Stats.QueueBuild {
			best.Stats.QueueBuild = res.Stats.QueueBuild
		}
		if res.Stats.Search < best.Stats.Search {
			best.Stats.Search = res.Stats.Search
		}
	}
	return best, nil
}

func (bs *BenchStats) add(st *core.Stats, found bool) {
	bs.Sets++
	if found {
		bs.Solutions++
	}
	bs.Candidates += st.Candidates
	bs.QueueBuildMS += float64(st.QueueBuild) / float64(time.Millisecond)
	bs.SearchMS += float64(st.Search) / float64(time.Millisecond)
	bs.Visited += st.Visited
	bs.RETests += st.RETests
	bs.PrunedDepth += st.PrunedDepth
	bs.PrunedSide += st.PrunedSide
	bs.PrunedCost += st.PrunedCost
	// Each measured run uses its own Miner (fresh Evaluator), so the cache
	// counters are per-run and sum cleanly across the workload's sets.
	bs.CacheHits += st.CacheHits
	bs.CacheMisses += st.CacheMisses
	if st.TimedOut {
		bs.TimedOut++
	}
}

// benchTinyMiner mirrors the tiny-KB setup of BenchmarkFigure1DFS.
func benchTinyMiner(cfg core.Config) (*core.Miner, *kb.KB, error) {
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0.10
	k, err := d.BuildKB(opts)
	if err != nil {
		return nil, nil, err
	}
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)
	return core.NewMiner(k, est, cfg), k, nil
}

// runBench executes the benchmark suite and appends a snapshot to jsonPath
// (creating the file when absent; an existing file must hold a JSON array of
// snapshots, which is preserved).
func runBench(seed int64, scale, kbScale float64, timeout time.Duration, label, jsonPath string) error {
	if label == "" {
		label = "run"
	}
	if jsonPath == "" {
		jsonPath = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}

	snap := BenchSnapshot{
		Label: label,
		Date:  time.Now().Format(time.RFC3339),
		Go:    runtime.Version(),
		Seed:  seed,
		Scale: scale,
	}

	// Figure 1: the tiny-KB DFS (miner built once, mirroring the go-test
	// benchmark of the same name).
	m, k, err := benchTinyMiner(core.DefaultConfig())
	if err != nil {
		return err
	}
	var tinyTargets []kb.EntID
	for _, n := range []string{"Rennes", "Nantes"} {
		id, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + n))
		if !ok {
			return fmt.Errorf("bench: missing tiny entity %s", n)
		}
		tinyTargets = append(tinyTargets, id)
	}
	fmt.Printf("benchmarking Figure1DFS...\n")
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Mine(tinyTargets); err != nil {
				b.Fatal(err)
			}
		}
	})
	figStats := &BenchStats{}
	if res, err := mineForStats(m, tinyTargets); err == nil {
		figStats.add(&res.Stats, res.Found())
	}
	snap.Results = append(snap.Results, entryOf("Figure1DFS", r, figStats))

	// Table 4 suite: both language biases, sequential and parallel, over the
	// same sampled DBpedia-like sets as the go-test benchmarks.
	lab := experiments.NewLab(seed, scale)
	env := lab.DBpedia()
	sets := experiments.SampleSets(env, 8, 404, 0)
	table4 := []struct {
		name    string
		lang    core.Language
		workers int
	}{
		{"Table4StandardREMI", core.StandardLanguage, 1},
		{"Table4StandardPREMI", core.StandardLanguage, 8},
		{"Table4ExtendedREMI", core.ExtendedLanguage, 1},
		{"Table4ExtendedPREMI", core.ExtendedLanguage, 8},
	}
	for _, t4 := range table4 {
		cfg := core.DefaultConfig()
		cfg.Language = t4.lang
		cfg.Workers = t4.workers
		cfg.Timeout = timeout
		fmt.Printf("benchmarking %s...\n", t4.name)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set := sets[i%len(sets)]
				mm := core.NewMiner(env.KB, env.EstFr, cfg)
				if _, err := mm.Mine(set.IDs); err != nil {
					b.Fatal(err)
				}
			}
		})
		st := &BenchStats{}
		for _, set := range sets {
			mm := core.NewMiner(env.KB, env.EstFr, cfg)
			res, err := mineForStats(mm, set.IDs)
			if err != nil {
				return err
			}
			st.add(&res.Stats, res.Found())
		}
		snap.Results = append(snap.Results, entryOf(t4.name, r, st))
	}

	// kb_load phase: cold-start cost of the same DBpedia-like dataset as
	// N-Triples parse+build versus zero-copy snapshot open, cross-checked by
	// mining the sampled sets from both KBs.
	iriSets := make([][]string, 0, len(sets))
	for _, set := range sets {
		iriSets = append(iriSets, set.IRIs)
	}
	kbl, loadEntries, err := runKBLoad(seed, scale, iriSets)
	if err != nil {
		return err
	}
	snap.Results = append(snap.Results, loadEntries...)
	snap.KBLoad = kbl

	// mine_batch phase: one shared batch pass over overlapping target sets
	// versus the equivalent independent Mine calls.
	mbs, mbEntries, err := runMineBatch(env, seed+63)
	if err != nil {
		return err
	}
	snap.Results = append(snap.Results, mbEntries...)
	snap.MineBatch = mbs

	// mine_async phase: the HTTP job subsystem — the same batch mined
	// blocking, streamed and async+polled must agree byte for byte.
	mas, maEntries, err := runMineAsync(seed, scale, timeout, iriSets)
	if err != nil {
		return err
	}
	snap.Results = append(snap.Results, maEntries...)
	snap.MineAsync = mas

	// resilience phase: standing cost of the failure-containment layer on
	// the mine hot path, plus the last-known-good golden after a failed
	// reload.
	rs, rsEntries, err := runResilience(seed, scale, timeout, iriSets)
	if err != nil {
		return err
	}
	snap.Results = append(snap.Results, rsEntries...)
	snap.Resilience = rs

	// cluster phase: the routing tier — throughput scaling over an
	// in-process replica fleet and the failed-over golden cross-check.
	cs, csEntries, err := runCluster(seed, scale, timeout, iriSets)
	if err != nil {
		return err
	}
	snap.Results = append(snap.Results, csEntries...)
	snap.Cluster = cs

	// live_kb phase: the crash-safe mutable layer — mutated, recovered and
	// compacted mining goldens against a flat rebuild, the delta-patched
	// read path against the overhead budget, and the fsynced ack latency.
	lks, lkEntries, err := runLiveKB(seed, scale, timeout, iriSets)
	if err != nil {
		return err
	}
	snap.Results = append(snap.Results, lkEntries...)
	snap.LiveKB = lks

	// kb_scale phase: the web-scale ingestion gate — streamed-vs-in-memory
	// peak RSS in child processes, snapshot format compression, lazy-open
	// allocation and the cross-build/cross-format mining goldens. Runs at
	// its own dataset scale (-kbscale; 0 disables).
	var kss *KBScaleStats
	if kbScale > 0 {
		var ksEntries []BenchEntry
		kss, ksEntries, err = runKBScale(seed, kbScale, timeout)
		if err != nil {
			return err
		}
		snap.Results = append(snap.Results, ksEntries...)
		snap.KBScale = kss
	}

	var snaps []BenchSnapshot
	if data, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(data, &snaps); err != nil {
			return fmt.Errorf("bench: %s exists but is not a snapshot array: %w", jsonPath, err)
		}
	}
	snaps = append(snaps, snap)
	out, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("\n%-22s %12s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, e := range snap.Results {
		fmt.Printf("%-22s %12.0f %12d %12d\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	if kbl != nil {
		fmt.Printf("\nkb_load: parse %.2fms vs snapshot open %.2fms → %.1fx (mmap=%v, golden match=%v over %d sets)\n",
			kbl.ParseNsPerOp/1e6, kbl.SnapshotNsPerOp/1e6, kbl.Speedup, kbl.SnapshotMapped, kbl.GoldenMatch, kbl.GoldenSets)
	}
	if mbs != nil {
		fmt.Printf("mine_batch: queue build %.3fms batched vs %.3fms sequential over %d sets (%d unique) → ratio %.2f, shared=%v, golden match=%v\n",
			mbs.BatchQueueBuildMS, mbs.SequentialQueueBuildMS, mbs.Sets, mbs.UniqueSets,
			mbs.QueueBuildRatio, mbs.SharedQueueWork, mbs.GoldenMatch)
	}
	if mas != nil {
		fmt.Printf("mine_async: %d sets streamed (%d entry + %d progress events) and polled against blocking → stream/blocking %.2fx, golden match=%v\n",
			mas.Sets, mas.EntryEvents, mas.ProgressEvents, mas.StreamOverhead, mas.GoldenMatch)
	}
	if rs != nil {
		fmt.Printf("resilience: guarded/base mine %.3fx, batch %.3fx (budget %.2fx, within=%v); guarded golden=%v, degraded-after-failed-reload golden=%v (%d reload failure)\n",
			rs.MineOverhead, rs.BatchOverhead, rs.OverheadBudget, rs.WithinBudget,
			rs.GuardedGoldenMatch, rs.DegradedGoldenMatch, rs.ReloadFailures)
	}
	if cs != nil {
		fmt.Printf("cluster: %d replicas, fleet/single %.2fx (efficiency %.2f); failover %.1fms vs %.1fms healthy (%d failovers, %d retries); failover golden match=%v over %d sets\n",
			cs.Replicas, cs.ScalingSpeedup, cs.ScalingEfficiency,
			cs.FailoverLatencyMS, cs.HealthyLatencyMS, cs.Failovers, cs.Retries,
			cs.FailoverGoldenMatch, cs.FailoverGoldenSets)
	}
	if lks != nil {
		fmt.Printf("live_kb: %d ops in %d batches (%d WAL records, %d B); mine live/flat %.3fx (budget %.2fx, within=%v); goldens mutated=%v recovery=%v compacted=%v (%d replayed); durable apply %.3fms/batch\n",
			lks.MutationOps, lks.MutationBatches, lks.WalRecords, lks.WalBytes,
			lks.ReadOverhead, lks.OverheadBudget, lks.WithinBudget,
			lks.MutatedGoldenMatch, lks.RecoveryGoldenMatch, lks.CompactedGoldenMatch,
			lks.RecoveryReplayed, lks.ApplyNsPerOp/1e6)
	}
	if kss != nil {
		fmt.Printf("kb_scale: scale %.2f (%d triples); peak RSS stream %.1fMB vs mem %.1fMB → %.2fx net of process baseline (budget %.2f, within=%v); snapshot %dB vs legacy %dB → %.2fx smaller; open alloc %dB; builds identical=%v, goldens streamed=%v format=%v over %d sets\n",
			kss.Scale, kss.Triples,
			float64(kss.PeakRSSBytes)/(1<<20), float64(kss.InMemPeakRSSBytes)/(1<<20),
			kss.RSSRatio, kss.RSSBudget, kss.RSSWithinBudget,
			kss.SnapshotBytes, kss.LegacySnapshotBytes, kss.CompressionRatio,
			kss.OpenAllocBytes, kss.BuildsByteIdentical,
			kss.StreamedGoldenMatch, kss.FormatGoldenMatch, kss.GoldenSets)
	}
	fmt.Printf("\nsnapshot %q appended to %s (%d snapshots)\n", label, jsonPath, len(snaps))
	return nil
}

// runKBLoad measures cold start: the N-Triples parse+dedup+sort+index path
// against opening the equivalent compiled snapshot (pack once, open many).
// Both paths produce a fully usable KB; to prove it, the sampled workload
// sets are mined from a parse-built and a snapshot-opened KB and the
// resulting expressions must be byte-identical.
func runKBLoad(seed int64, scale float64, iriSets [][]string) (*KBLoadStats, []BenchEntry, error) {
	d := datagen.DBpediaLike(datagen.Config{Seed: seed, Scale: scale})
	dir, err := os.MkdirTemp("", "remi-bench-kbload")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	ntPath := filepath.Join(dir, "kb.nt")
	f, err := os.Create(ntPath)
	if err != nil {
		return nil, nil, err
	}
	if err := rdf.WriteAll(f, d.Triples); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Close(); err != nil {
		return nil, nil, err
	}

	// Pack once: build the reference KB and compile it to a snapshot.
	ref, err := kb.FromTriples(d.Triples, kb.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	snapPath := filepath.Join(dir, "kb.snap")
	if err := ref.WriteSnapshotFile(snapPath); err != nil {
		return nil, nil, err
	}

	st := &KBLoadStats{}
	if fi, err := os.Stat(ntPath); err == nil {
		st.NTriplesBytes = fi.Size()
	}
	if fi, err := os.Stat(snapPath); err == nil {
		st.SnapshotBytes = fi.Size()
	}
	if r, err := snapshot.Open(snapPath, snapshot.Options{}); err == nil {
		st.SnapshotMapped = r.Mapped()
		r.Close()
	}

	loadParse := func() (*kb.KB, error) {
		fh, err := os.Open(ntPath)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		triples, err := rdf.ReadAll(fh)
		if err != nil {
			return nil, err
		}
		return kb.FromTriples(triples, kb.DefaultOptions())
	}

	fmt.Printf("benchmarking KBLoadParse...\n")
	rParse := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := loadParse(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The snapshot loop is hand-timed over a fixed iteration count instead
	// of testing.Benchmark so one MemStats window can attribute the heap
	// cost of all iterations. Mappings are refcounted, so each iteration
	// closes its KB and releases the mmap — the measured op is the full
	// open+close cycle a short-lived consumer pays, and the loop no longer
	// accumulates VMAs the way it had to when mappings were process-pinned.
	const snapReps = 100
	fmt.Printf("benchmarking KBLoadSnapshot...\n")
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < snapReps; i++ {
		k, err := kb.OpenSnapshot(snapPath)
		if err != nil {
			return nil, nil, err
		}
		if err := k.Close(); err != nil {
			return nil, nil, err
		}
	}
	snapElapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	// MemAllocs/MemBytes are totals over all N iterations, matching what
	// testing.Benchmark records (the *PerOp accessors divide by N).
	rSnap := testing.BenchmarkResult{
		N: snapReps, T: snapElapsed,
		MemAllocs: m1.Mallocs - m0.Mallocs,
		MemBytes:  m1.TotalAlloc - m0.TotalAlloc,
	}

	st.ParseNsPerOp = float64(rParse.T.Nanoseconds()) / float64(rParse.N)
	st.SnapshotNsPerOp = float64(rSnap.T.Nanoseconds()) / float64(rSnap.N)
	if st.SnapshotNsPerOp > 0 {
		st.Speedup = st.ParseNsPerOp / st.SnapshotNsPerOp
	}
	st.ParseAllocBytes = rParse.AllocedBytesPerOp()
	st.SnapshotAllocs = rSnap.AllocedBytesPerOp()

	// Golden cross-check: identical mined expressions from both load paths.
	snapKB, err := kb.OpenSnapshot(snapPath)
	if err != nil {
		return nil, nil, err
	}
	mineAll := func(k *kb.KB) ([]string, error) {
		est := complexity.New(k, prominence.Build(k, prominence.Fr), complexity.Compressed)
		var out []string
		for _, iris := range iriSets {
			ids := make([]kb.EntID, 0, len(iris))
			for _, iri := range iris {
				id, ok := k.EntityID(rdf.NewIRI(iri))
				if !ok {
					return nil, fmt.Errorf("kb_load: entity %s missing after reload", iri)
				}
				ids = append(ids, id)
			}
			m := core.NewMiner(k, est, core.DefaultConfig())
			res, err := m.Mine(ids)
			if err != nil {
				return nil, err
			}
			out = append(out, fmt.Sprintf("%s @ %.6f", res.Expression.Format(k), res.Bits))
		}
		return out, nil
	}
	wantExprs, err := mineAll(ref)
	if err != nil {
		return nil, nil, err
	}
	gotExprs, err := mineAll(snapKB)
	if err != nil {
		return nil, nil, err
	}
	st.GoldenSets = len(wantExprs)
	st.GoldenMatch = len(wantExprs) == len(gotExprs)
	for i := range wantExprs {
		if !st.GoldenMatch || wantExprs[i] != gotExprs[i] {
			st.GoldenMatch = false
			fmt.Printf("kb_load: golden mismatch on set %d: parse %q vs snapshot %q\n", i, wantExprs[i], gotExprs[i])
			break
		}
	}

	entries := []BenchEntry{
		entryOf("KBLoadParse", rParse, nil),
		entryOf("KBLoadSnapshot", rSnap, nil),
	}
	return st, entries, nil
}

// batchWorkloadSets builds the mine_batch workload: 8 candidate subsets of
// one small entity pool, the shape of the batch use case — an
// entity-selection caller (cf. indirect-RE resolution) disambiguating one
// mention whose candidate sets draw from the same handful of same-class
// entities and differ in the tail. Subsets of a small pool naturally repeat
// their minimum-id member — the enumeration anchor of the queue build — and
// occasionally repeat outright, which is exactly the sharing MineBatch
// exploits. The pool comes from a class's most popular entities (the
// paper's Table 2 popularity bias).
func batchWorkloadSets(env *experiments.Env, seed int64) [][]kb.EntID {
	classes := experiments.EvalClasses(env.Data.Name)
	idx := int(seed % int64(len(classes)))
	if idx < 0 {
		idx += len(classes)
	}
	class := classes[idx]
	pool := experiments.SortedCopy(experiments.TopOfClass(env, class, 8))
	if len(pool) < 4 {
		// Degenerate dataset: fall back to sampled sets (no sharing).
		var sets [][]kb.EntID
		for _, bs := range experiments.SampleSets(env, 8, seed, 0) {
			sets = append(sets, experiments.SortedCopy(bs.IDs))
		}
		return sets
	}
	c := pool
	sets := [][]kb.EntID{
		{c[0]},
		{c[0], c[1]},
		{c[0], c[2]},
		{c[0], c[1], c[2]},
		{c[1]},
		{c[1], c[3]},
		{c[1], c[2]},
		{c[0], c[1]}, // repeat: the batch dedups it, a naive caller re-mines
	}
	return sets
}

// runMineBatch measures the batch mining phase: one core.MineBatch pass
// over the workload versus independent per-set Mine calls on fresh miners
// (what a caller without the batch API runs). The headline number is the
// queue-prep total — the per-KB work the batch is designed to share — and a
// golden cross-check asserts the batch changes nothing about the results.
func runMineBatch(env *experiments.Env, seed int64) (*MineBatchStats, []BenchEntry, error) {
	sets := batchWorkloadSets(env, seed)
	cfg := core.DefaultConfig()

	formatOf := func(res *core.Result) string {
		return fmt.Sprintf("%s @ %.6f", res.Expression.Format(env.KB), res.Bits)
	}
	mineBatchOnce := func() ([]*core.Result, error) {
		m := core.NewMiner(env.KB, env.EstFr, cfg)
		outs := m.MineBatch(context.Background(), sets, 1)
		results := make([]*core.Result, len(outs))
		for i, o := range outs {
			if o.Err != nil {
				return nil, fmt.Errorf("mine_batch: set %d: %w", i, o.Err)
			}
			results[i] = o.Result
		}
		return results, nil
	}
	mineSeqOnce := func() ([]*core.Result, error) {
		results := make([]*core.Result, len(sets))
		for i, set := range sets {
			m := core.NewMiner(env.KB, env.EstFr, cfg)
			res, err := m.Mine(set)
			if err != nil {
				return nil, fmt.Errorf("mine_batch: sequential set %d: %w", i, err)
			}
			results[i] = res
		}
		return results, nil
	}

	fmt.Printf("benchmarking MineBatch%d...\n", len(sets))
	rBatch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mineBatchOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
	fmt.Printf("benchmarking MineSequential%d...\n", len(sets))
	rSeq := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mineSeqOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Queue-prep totals: per pass, the batch side sums the builds its one
	// MineBatch call executed (an in-batch repeat costs it nothing — the
	// dedup is part of the batch design) while the sequential side sums all
	// N independent per-set builds, exactly what a caller without the batch
	// API pays. Minima over statReps passes, like every phase timing in
	// this harness.
	st := &MineBatchStats{Sets: len(sets)}
	unique := make(map[string]bool, len(sets))
	for _, set := range sets {
		ids := experiments.SortedCopy(set)
		key := fmt.Sprint(ids)
		unique[key] = true
	}
	st.UniqueSets = len(unique)
	var goldenBatch, goldenSeq []string
	for rep := 0; rep < statReps; rep++ {
		bres, err := mineBatchOnce()
		if err != nil {
			return nil, nil, err
		}
		sres, err := mineSeqOnce()
		if err != nil {
			return nil, nil, err
		}
		var batchQB, seqQB time.Duration
		seen := make(map[*core.Result]bool, len(bres))
		for i, res := range bres {
			seqQB += sres[i].Stats.QueueBuild
			if seen[res] {
				continue // in-batch repeat: one search served both slots
			}
			seen[res] = true
			batchQB += res.Stats.QueueBuild
		}
		if rep == 0 || float64(batchQB)/1e6 < st.BatchQueueBuildMS {
			st.BatchQueueBuildMS = float64(batchQB) / 1e6
		}
		if rep == 0 || float64(seqQB)/1e6 < st.SequentialQueueBuildMS {
			st.SequentialQueueBuildMS = float64(seqQB) / 1e6
		}
		if rep == 0 {
			for i := range bres {
				goldenBatch = append(goldenBatch, formatOf(bres[i]))
				goldenSeq = append(goldenSeq, formatOf(sres[i]))
			}
		}
	}
	if st.SequentialQueueBuildMS > 0 {
		st.QueueBuildRatio = st.BatchQueueBuildMS / st.SequentialQueueBuildMS
	}
	st.SharedQueueWork = st.BatchQueueBuildMS < st.SequentialQueueBuildMS

	st.GoldenSets = len(goldenBatch)
	st.GoldenMatch = true
	for i := range goldenBatch {
		if goldenBatch[i] != goldenSeq[i] {
			st.GoldenMatch = false
			fmt.Printf("mine_batch: golden mismatch on set %d: batch %q vs sequential %q\n",
				i, goldenBatch[i], goldenSeq[i])
			break
		}
	}

	entries := []BenchEntry{
		entryOf(fmt.Sprintf("MineBatch%d", len(sets)), rBatch, nil),
		entryOf(fmt.Sprintf("MineSequential%d", len(sets)), rSeq, nil),
	}
	return st, entries, nil
}

// runMineAsync drives the HTTP job subsystem end to end over the sampled
// workload sets: the blocking /v1/mine:batch response is the golden, then
// the identical batch flows through /v1/mine:stream (NDJSON entry events)
// and through /v1/mine:async plus GET /v1/jobs/{id} polling. Every path
// runs on the same admission-controlled worker pool, so agreement here is
// the end-to-end form of the job subsystem's equivalence guarantee. The
// result cache is disabled so each pass re-mines rather than replaying.
func runMineAsync(seed int64, scale float64, timeout time.Duration, iriSets [][]string) (*MineAsyncStats, []BenchEntry, error) {
	sys, err := remi.GenerateDemo("dbpedia", seed, scale)
	if err != nil {
		return nil, nil, err
	}
	srv := server.New(sys, server.Options{DefaultTimeout: timeout, ResultCache: -1})
	defer srv.Close()
	h := srv.Handler()

	do := func(method, path, accept string, body any) (*httptest.ResponseRecorder, error) {
		var rd *bytes.Reader
		if body != nil {
			buf, err := json.Marshal(body)
			if err != nil {
				return nil, err
			}
			rd = bytes.NewReader(buf)
		} else {
			rd = bytes.NewReader(nil)
		}
		req := httptest.NewRequest(method, path, rd)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec, nil
	}
	decode := func(rec *httptest.ResponseRecorder, want int, into any) error {
		if rec.Code != want {
			return fmt.Errorf("mine_async: status %d (want %d): %s", rec.Code, want, rec.Body.String())
		}
		return json.Unmarshal(rec.Body.Bytes(), into)
	}

	// keyOf flattens one mining outcome to a comparable string: the ranked
	// expressions with their bit costs, or the error the set produced.
	keyOf := func(r *server.MineResponse) string {
		if r == nil {
			return "<nil>"
		}
		if !r.Found {
			return "<none>"
		}
		parts := []string{fmt.Sprintf("%s @ %.6f", r.Solution.Expression, r.Solution.Bits)}
		for _, alt := range r.Alternatives {
			parts = append(parts, fmt.Sprintf("%s @ %.6f", alt.Expression, alt.Bits))
		}
		return strings.Join(parts, " | ")
	}
	itemKey := func(it server.BatchMineItem) string {
		if it.Error != "" {
			return fmt.Sprintf("error %d: %s", it.Status, it.Error)
		}
		return keyOf(it.Response)
	}

	// Blocking golden: one /v1/mine:batch pass over the workload.
	rec, err := do("POST", "/v1/mine:batch", "", server.BatchMineRequest{Sets: iriSets})
	if err != nil {
		return nil, nil, err
	}
	var golden server.BatchMineResponse
	if err := decode(rec, 200, &golden); err != nil {
		return nil, nil, err
	}
	goldenKeys := make([]string, len(golden.Results))
	for i, it := range golden.Results {
		goldenKeys[i] = itemKey(it)
	}

	st := &MineAsyncStats{Sets: len(iriSets), GoldenSets: len(goldenKeys)}

	// Streamed batch: same sets through /v1/mine:stream; entry events must
	// cover every index with the golden outcome.
	parseNDJSON := func(rec *httptest.ResponseRecorder) ([]server.StreamEvent, error) {
		if rec.Code != 200 {
			return nil, fmt.Errorf("mine_async: stream status %d: %s", rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
			return nil, fmt.Errorf("mine_async: stream content type %q", ct)
		}
		var events []server.StreamEvent
		sc := bufio.NewScanner(rec.Body)
		// Match rdf.NewReader's 16 MB line cap: a result event carrying a
		// DBpedia-sized literal overflows the scanner default and would
		// silently truncate the batch at the old 1 MB cap.
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var ev server.StreamEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("mine_async: bad stream line %q: %w", line, err)
			}
			events = append(events, ev)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("mine_async: stream read after %d events: %w", len(events), err)
		}
		return events, nil
	}
	streamBatch := func() ([]string, int, error) {
		rec, err := do("POST", "/v1/mine:stream", "", server.AsyncMineRequest{Sets: iriSets})
		if err != nil {
			return nil, 0, err
		}
		events, err := parseNDJSON(rec)
		if err != nil {
			return nil, 0, err
		}
		keys := make([]string, len(iriSets))
		entries := 0
		for _, ev := range events {
			if ev.Event != "entry" || ev.Index == nil {
				continue
			}
			entries++
			keys[*ev.Index] = itemKey(server.BatchMineItem{Response: ev.Response, Error: ev.Error, Status: ev.Status})
		}
		return keys, entries, nil
	}
	streamKeys, entries, err := streamBatch()
	if err != nil {
		return nil, nil, err
	}
	st.EntryEvents = entries
	st.StreamedMatch = entries == len(goldenKeys)
	for i := range goldenKeys {
		if st.StreamedMatch && streamKeys[i] != goldenKeys[i] {
			st.StreamedMatch = false
			fmt.Printf("mine_async: stream mismatch on set %d: %q vs blocking %q\n", i, streamKeys[i], goldenKeys[i])
		}
	}

	// Single-set stream: live search progress plus a final result event that
	// must match the blocking /v1/mine answer for the same targets.
	rec, err = do("POST", "/v1/mine", "", server.MineRequest{Targets: iriSets[0]})
	if err != nil {
		return nil, nil, err
	}
	var single server.MineResponse
	if err := decode(rec, 200, &single); err != nil {
		return nil, nil, err
	}
	rec, err = do("POST", "/v1/mine:stream", "", server.AsyncMineRequest{Targets: iriSets[0]})
	if err != nil {
		return nil, nil, err
	}
	events, err := parseNDJSON(rec)
	if err != nil {
		return nil, nil, err
	}
	var finalKey string
	for _, ev := range events {
		switch ev.Event {
		case "progress":
			st.ProgressEvents++
		case "result":
			finalKey = keyOf(ev.Response)
		}
	}
	if finalKey != keyOf(&single) {
		st.StreamedMatch = false
		fmt.Printf("mine_async: single stream result %q vs blocking %q\n", finalKey, keyOf(&single))
	}

	// Async + poll: submit the batch as a job, poll it to completion, and
	// compare the final job document's batch against the golden.
	rec, err = do("POST", "/v1/mine:async", "", server.AsyncMineRequest{Sets: iriSets})
	if err != nil {
		return nil, nil, err
	}
	var jr server.JobResponse
	if err := decode(rec, 202, &jr); err != nil {
		return nil, nil, err
	}
	deadline := time.Now().Add(60 * time.Second)
	for jr.State != "done" && jr.State != "failed" && jr.State != "cancelled" {
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("mine_async: job %s still %q after 60s", jr.ID, jr.State)
		}
		time.Sleep(2 * time.Millisecond)
		rec, err = do("GET", "/v1/jobs/"+jr.ID, "", nil)
		if err != nil {
			return nil, nil, err
		}
		if err := decode(rec, 200, &jr); err != nil {
			return nil, nil, err
		}
	}
	st.PolledMatch = jr.State == "done" && jr.Batch != nil && len(jr.Batch.Results) == len(goldenKeys)
	if !st.PolledMatch {
		fmt.Printf("mine_async: polled job ended %q (error %q)\n", jr.State, jr.Error)
	}
	for i := range goldenKeys {
		if st.PolledMatch && itemKey(jr.Batch.Results[i]) != goldenKeys[i] {
			st.PolledMatch = false
			fmt.Printf("mine_async: polled mismatch on set %d: %q vs blocking %q\n", i, itemKey(jr.Batch.Results[i]), goldenKeys[i])
		}
	}
	st.GoldenMatch = st.StreamedMatch && st.PolledMatch

	// Timings: one full batch per op through each endpoint — same job pool,
	// same sets, so the delta is the streaming surface itself.
	fmt.Printf("benchmarking MineHTTPBatch%d...\n", len(iriSets))
	rBlock := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := do("POST", "/v1/mine:batch", "", server.BatchMineRequest{Sets: iriSets})
			if err != nil {
				b.Fatal(err)
			}
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
	fmt.Printf("benchmarking MineHTTPStream%d...\n", len(iriSets))
	rStream := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := do("POST", "/v1/mine:stream", "", server.AsyncMineRequest{Sets: iriSets})
			if err != nil {
				b.Fatal(err)
			}
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
	st.BlockingNsPerOp = float64(rBlock.T.Nanoseconds()) / float64(rBlock.N)
	st.StreamNsPerOp = float64(rStream.T.Nanoseconds()) / float64(rStream.N)
	if st.BlockingNsPerOp > 0 {
		st.StreamOverhead = st.StreamNsPerOp / st.BlockingNsPerOp
	}

	entries2 := []BenchEntry{
		entryOf(fmt.Sprintf("MineHTTPBatch%d", len(iriSets)), rBlock, nil),
		entryOf(fmt.Sprintf("MineHTTPStream%d", len(iriSets)), rStream, nil),
	}
	return st, entries2, nil
}

// overheadBudget is the resilience-phase acceptance bound: the guarded
// server (watchdog + quota + interactive reserve enabled, faults disarmed)
// may cost at most 2% over the unguarded baseline on the mine hot path.
const overheadBudget = 1.02

// resilienceReps is how many interleaved base/guarded benchmark pairs the
// resilience phase runs per endpoint; keeping the per-side minimum over
// alternating runs is what makes a ~2% bound measurable at all — two
// independent single-shot testing.Benchmark calls drift more than that on
// scheduler noise alone.
const resilienceReps = 5

// runResilience measures the standing cost of the failure-containment layer
// and proves its last-known-good guarantee end to end. Two servers over
// byte-identical generated KBs: a baseline with no guards and a guarded one
// running watchdog grace, a (non-binding) per-client quota and an
// interactive queue reserve — every fault point disarmed, so the hooks on
// the hot path are pure overhead. The phase times /v1/mine and
// /v1/mine:batch on both, cross-checks the guarded batch against the
// baseline golden, then injects a failing reload into the guarded server
// and asserts it keeps serving the old generation's results byte for byte
// with the failure surfaced in /v1/stats.
func runResilience(seed int64, scale float64, timeout time.Duration, iriSets [][]string) (*ResilienceStats, []BenchEntry, error) {
	newServer := func(guarded bool) (*server.Server, error) {
		sys, err := remi.GenerateDemo("dbpedia", seed, scale)
		if err != nil {
			return nil, err
		}
		opts := server.Options{DefaultTimeout: timeout, ResultCache: -1}
		if guarded {
			// Guards configured to be present but never binding on this
			// workload: the watchdog arms per-job deadlines it will not hit,
			// the quota bucket refills far faster than the bench submits,
			// and one reserved slot never fills the queue.
			opts.WatchdogGrace = 30 * time.Second
			opts.QuotaRate = 1e6
			opts.QuotaBurst = 1 << 20
			opts.InteractiveReserve = 1
		}
		return server.New(sys, opts), nil
	}
	baseSrv, err := newServer(false)
	if err != nil {
		return nil, nil, err
	}
	defer baseSrv.Close()
	guardSrv, err := newServer(true)
	if err != nil {
		return nil, nil, err
	}
	defer guardSrv.Close()

	post := func(h http.Handler, path string, body any) (*httptest.ResponseRecorder, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		req := httptest.NewRequest("POST", path, bytes.NewReader(buf))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			return nil, fmt.Errorf("resilience: %s status %d: %s", path, rec.Code, rec.Body.String())
		}
		return rec, nil
	}
	// batchKeys flattens one /v1/mine:batch pass to comparable per-set
	// strings (expression @ bits, or the error), the same golden form the
	// mine_async phase compares across endpoints.
	batchKeys := func(h http.Handler) ([]string, error) {
		rec, err := post(h, "/v1/mine:batch", server.BatchMineRequest{Sets: iriSets})
		if err != nil {
			return nil, err
		}
		var resp server.BatchMineResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			return nil, err
		}
		keys := make([]string, len(resp.Results))
		for i, it := range resp.Results {
			switch {
			case it.Error != "":
				keys[i] = fmt.Sprintf("error %d: %s", it.Status, it.Error)
			case it.Response == nil || !it.Response.Found:
				keys[i] = "<none>"
			default:
				parts := []string{fmt.Sprintf("%s @ %.6f", it.Response.Solution.Expression, it.Response.Solution.Bits)}
				for _, alt := range it.Response.Alternatives {
					parts = append(parts, fmt.Sprintf("%s @ %.6f", alt.Expression, alt.Bits))
				}
				keys[i] = strings.Join(parts, " | ")
			}
		}
		return keys, nil
	}
	matchKeys := func(got, want []string, label string) bool {
		if len(got) != len(want) {
			fmt.Printf("resilience: %s returned %d sets, baseline %d\n", label, len(got), len(want))
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				fmt.Printf("resilience: %s mismatch on set %d: %q vs baseline %q\n", label, i, got[i], want[i])
				return false
			}
		}
		return true
	}

	baseH, guardH := baseSrv.Handler(), guardSrv.Handler()
	st := &ResilienceStats{Sets: len(iriSets), OverheadBudget: overheadBudget}

	// Golden first: the guarded configuration must change no result.
	baseKeys, err := batchKeys(baseH)
	if err != nil {
		return nil, nil, err
	}
	guardKeys, err := batchKeys(guardH)
	if err != nil {
		return nil, nil, err
	}
	st.GuardedGoldenMatch = matchKeys(guardKeys, baseKeys, "guarded batch")

	// Interleaved timing pairs, per-side minima (see resilienceReps).
	benchPair := func(name string, req func(h http.Handler) error) (baseNs, guardNs float64, rb, rg testing.BenchmarkResult) {
		fmt.Printf("benchmarking %s (base vs guarded)...\n", name)
		for rep := 0; rep < resilienceReps; rep++ {
			b := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := req(baseH); err != nil {
						b.Fatal(err)
					}
				}
			})
			g := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := req(guardH); err != nil {
						b.Fatal(err)
					}
				}
			})
			bNs := float64(b.T.Nanoseconds()) / float64(b.N)
			gNs := float64(g.T.Nanoseconds()) / float64(g.N)
			if rep == 0 || bNs < baseNs {
				baseNs, rb = bNs, b
			}
			if rep == 0 || gNs < guardNs {
				guardNs, rg = gNs, g
			}
		}
		return baseNs, guardNs, rb, rg
	}
	mineReq := func(h http.Handler) error {
		_, err := post(h, "/v1/mine", server.MineRequest{Targets: iriSets[0]})
		return err
	}
	batchReq := func(h http.Handler) error {
		_, err := post(h, "/v1/mine:batch", server.BatchMineRequest{Sets: iriSets})
		return err
	}
	var rMineB, rMineG, rBatchB, rBatchG testing.BenchmarkResult
	st.BaseMineNsPerOp, st.GuardedMineNsPerOp, rMineB, rMineG = benchPair("ResilienceMine", mineReq)
	st.BaseBatchNsPerOp, st.GuardedBatchNsPerOp, rBatchB, rBatchG = benchPair("ResilienceBatch", batchReq)
	if st.BaseMineNsPerOp > 0 {
		st.MineOverhead = st.GuardedMineNsPerOp / st.BaseMineNsPerOp
	}
	if st.BaseBatchNsPerOp > 0 {
		st.BatchOverhead = st.GuardedBatchNsPerOp / st.BaseBatchNsPerOp
	}
	st.WithinBudget = st.MineOverhead <= overheadBudget && st.BatchOverhead <= overheadBudget

	// Degrade the guarded server: a reload whose loader fails must be
	// contained — error surfaced, generation kept, results unchanged.
	if err := guardSrv.ReloadKB(server.DefaultKBName, func() (*remi.System, error) {
		return nil, fmt.Errorf("resilience: injected reload failure")
	}); err == nil {
		fmt.Printf("resilience: injected reload failure was not reported\n")
	} else {
		degradedKeys, err := batchKeys(guardH)
		if err != nil {
			return nil, nil, err
		}
		st.DegradedGoldenMatch = matchKeys(degradedKeys, baseKeys, "degraded batch")
	}
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec := httptest.NewRecorder()
	guardH.ServeHTTP(rec, req)
	var stats server.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		return nil, nil, err
	}
	st.ReloadFailures = stats.KBs[server.DefaultKBName].ReloadFailures
	if st.ReloadFailures != 1 {
		fmt.Printf("resilience: stats report %d reload failures, want 1\n", st.ReloadFailures)
		st.DegradedGoldenMatch = false
	}

	entries := []BenchEntry{
		entryOf("ResilienceMineBase", rMineB, nil),
		entryOf("ResilienceMineGuarded", rMineG, nil),
		entryOf("ResilienceBatchBase", rBatchB, nil),
		entryOf("ResilienceBatchGuarded", rBatchG, nil),
	}
	return st, entries, nil
}

// maxNsRegression is the ns/op ratio beyond which runCompare fails: a
// benchmark may not get more than 15% slower between the two snapshots.
const maxNsRegression = 1.15

// runCompare diffs two labelled snapshots of a BENCH_<date>.json trajectory
// file and returns an error when any benchmark present in both regresses by
// more than 15% ns/op. spec is either "labelA,labelB" (the later snapshot
// wins when a label repeats) or "latest" (the last two snapshots in file
// order). It runs no benchmarks — CI uses it as a guard over the pair
// checked in with a PR.
func runCompare(jsonPath, spec string) error {
	if jsonPath == "" {
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(matches) == 0 {
			return fmt.Errorf("bench: -compare needs a snapshot file (no BENCH_*.json found)")
		}
		sort.Strings(matches)
		jsonPath = matches[len(matches)-1]
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		return err
	}
	var snaps []BenchSnapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		return fmt.Errorf("bench: %s is not a snapshot array: %w", jsonPath, err)
	}
	var base, after *BenchSnapshot
	if spec == "latest" {
		if len(snaps) < 2 {
			return fmt.Errorf("bench: %s holds %d snapshots, need 2", jsonPath, len(snaps))
		}
		base, after = &snaps[len(snaps)-2], &snaps[len(snaps)-1]
	} else {
		labels := strings.SplitN(spec, ",", 2)
		if len(labels) != 2 || labels[0] == "" || labels[1] == "" {
			return fmt.Errorf("bench: -compare wants \"labelA,labelB\" or \"latest\", got %q", spec)
		}
		for i := range snaps {
			switch snaps[i].Label {
			case labels[0]:
				base = &snaps[i]
			case labels[1]:
				after = &snaps[i]
			}
		}
		if base == nil || after == nil {
			return fmt.Errorf("bench: labels %q not both present in %s", spec, jsonPath)
		}
	}

	baseBy := make(map[string]BenchEntry, len(base.Results))
	for _, e := range base.Results {
		baseBy[e.Name] = e
	}
	fmt.Printf("comparing %q → %q in %s (fail threshold: +%.0f%% ns/op)\n\n",
		base.Label, after.Label, jsonPath, 100*(maxNsRegression-1))
	fmt.Printf("%-22s %12s %12s %8s %10s %10s\n",
		"benchmark", "base ns/op", "after ns/op", "Δ%", "allocs", "qb_ms Δ%")
	regressed := []string{}
	for _, e := range after.Results {
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Printf("%-22s %12s %12.0f %8s (new)\n", e.Name, "-", e.NsPerOp, "-")
			continue
		}
		delta := 100 * (e.NsPerOp/b.NsPerOp - 1)
		qb := "-"
		if b.Stats != nil && e.Stats != nil && b.Stats.QueueBuildMS > 0 {
			qb = fmt.Sprintf("%+.1f", 100*(e.Stats.QueueBuildMS/b.Stats.QueueBuildMS-1))
		}
		fmt.Printf("%-22s %12.0f %12.0f %+7.1f%% %4d→%-4d %10s\n",
			e.Name, b.NsPerOp, e.NsPerOp, delta, b.AllocsPerOp, e.AllocsPerOp, qb)
		if e.NsPerOp > b.NsPerOp*maxNsRegression {
			regressed = append(regressed, fmt.Sprintf("%s (+%.1f%%)", e.Name, delta))
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("bench: ns/op regression over %.0f%%: %s",
			100*(maxNsRegression-1), strings.Join(regressed, ", "))
	}
	fmt.Printf("\nno ns/op regression over %.0f%%\n", 100*(maxNsRegression-1))
	return nil
}

func entryOf(name string, r testing.BenchmarkResult, st *BenchStats) BenchEntry {
	return BenchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Stats:       st,
	}
}
