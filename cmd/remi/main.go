// Command remi mines intuitive referring expressions for a set of target
// entities on an RDF knowledge base.
//
// Usage:
//
//	remi -kb data.nt -targets http://e/Paris
//	remi -kb data.hdt -targets http://e/Guyana,http://e/Suriname -workers 8
//	remi -demo tiny -targets http://tiny.demo/resource/Rennes,http://tiny.demo/resource/Nantes
//
// Flags select the prominence metric (fr|pr), the language bias
// (standard|remi), P-REMI parallelism, a timeout and the number of
// alternative solutions to report.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	remi "github.com/remi-kb/remi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remi: ")

	var (
		kbPath   = flag.String("kb", "", "knowledge base file (.nt or .hdt)")
		demo     = flag.String("demo", "", "use a bundled demo dataset instead of -kb (tiny|dbpedia|wikidata)")
		seed     = flag.Int64("seed", 42, "seed for -demo datasets")
		scale    = flag.Float64("scale", 0, "scale for -demo datasets (0 = default)")
		targets  = flag.String("targets", "", "comma-separated entity IRIs to describe (required)")
		metric   = flag.String("metric", "fr", "prominence metric: fr | pr")
		language = flag.String("language", "remi", "language bias: remi | standard")
		workers  = flag.Int("workers", 1, "P-REMI workers (1 = sequential REMI)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "mining timeout (0 = none)")
		topK     = flag.Int("top", 1, "number of solutions to report")
		exact    = flag.Bool("exact", false, "use exact conditional rankings instead of the Eq. 1 compression")
		verbose  = flag.Bool("v", false, "print search statistics")
	)
	flag.Parse()

	if *targets == "" {
		flag.Usage()
		os.Exit(2)
	}

	var sys *remi.System
	var err error
	switch {
	case *demo != "":
		sys, err = remi.GenerateDemo(*demo, *seed, *scale)
	case *kbPath != "":
		sys, err = remi.Load(*kbPath)
	default:
		log.Fatal("one of -kb or -demo is required")
	}
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "KB: %d facts, %d entities, %d predicates\n",
			sys.NumFacts(), sys.NumEntities(), sys.NumPredicates())
	}

	opts := []remi.MineOption{
		remi.WithWorkers(*workers),
		remi.WithTimeout(*timeout),
		remi.WithTopK(*topK),
	}
	if *metric == "pr" {
		opts = append(opts, remi.WithMetric(remi.MetricPr))
	}
	if *language == "standard" {
		opts = append(opts, remi.WithLanguage(remi.LanguageStandard))
	}
	if *exact {
		opts = append(opts, remi.WithExactRanks())
	}

	res, err := sys.Mine(strings.Split(*targets, ","), opts...)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		if res.Stats.TimedOut {
			fmt.Println("timeout: no referring expression found within the limit")
			os.Exit(3)
		}
		fmt.Println("no referring expression exists for the target set")
		os.Exit(1)
	}
	fmt.Printf("RE : %s\n", res.Expression)
	fmt.Printf("NL : %s\n", res.NL)
	fmt.Printf("Ĉ  : %.2f bits\n", res.Bits)
	for i, alt := range res.Alternatives {
		fmt.Printf("alt %d: %s  (%.2f bits)\n", i+1, alt.Expression, alt.Bits)
	}
	if *verbose {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "queue: %d candidates in %v; search: %v, %d nodes, %d RE tests, cache %d/%d hits\n",
			st.Candidates, st.QueueBuild, st.Search, st.Visited, st.RETests, st.CacheHits, st.CacheHits+st.CacheMisses)
	}
}
