// Command kbgen generates the synthetic datasets used by the reproduction
// (see DESIGN.md, substitution 1) and writes them as N-Triples, binary HDT,
// or a compiled KB snapshot.
//
// Usage:
//
//	kbgen -dataset dbpedia -scale 0.5 -seed 42 -out dbpedia.nt
//	kbgen -dataset wikidata -out wikidata.hdt
//	kbgen -dataset tiny -out tiny.nt
//	kbgen -dataset dbpedia -snapshot dbpedia.snap        # compiled, mmap-able
//	kbgen -dataset tiny -out tiny.nt -snapshot tiny.snap # both forms
//
// -out writes raw triples (indexes are rebuilt at every load); -snapshot
// compiles the dataset once — dictionary, CSR indexes, inverse
// materializations — into the zero-copy snapshot that remi.Load,
// remi-serve -kb and remi-bench reopen in O(page-in) time.
//
// Note on tiny: the snapshot is compiled with the demo's inverse fraction
// (top 10%, matching `remi.GenerateDemo("tiny", ...)` and `remi-serve
// -demo tiny`), while a tiny .nt reloaded through remi.Load gets the
// paper's top-1% default — on ~100 entities that materializes no inverses,
// so the two forms are deliberately NOT equivalent for this dataset. The
// dbpedia/wikidata datasets use the default fraction in both forms.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/hdt"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbgen: ")

	var (
		dataset  = flag.String("dataset", "dbpedia", "dataset to generate: dbpedia | wikidata | tiny")
		seed     = flag.Int64("seed", 42, "generator seed")
		scale    = flag.Float64("scale", 1.0, "class-population multiplier")
		out      = flag.String("out", "", "triple output file (.nt or .hdt)")
		snapPath = flag.String("snapshot", "", "compiled KB snapshot output file (indexes packed once, opened zero-copy)")
		in       = flag.String("in", "", "compile an existing N-Triples file instead of generating a dataset (requires -snapshot; always streamed)")
		stream   = flag.Bool("stream", false, "compile the snapshot with the bounded-memory streaming builder (external sort) instead of the in-memory builder")
		legacy   = flag.Bool("legacy-snapshot", false, "write the snapshot in the larger version-1 format for deployments on a v1-only reader")
	)
	flag.Parse()
	if *out == "" && *snapPath == "" {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\none of -out or -snapshot is required")
		os.Exit(2)
	}
	if *in != "" && (*snapPath == "" || *out != "") {
		log.Fatal("-in compiles an N-Triples file to a snapshot: it requires -snapshot and excludes -out")
	}

	var d *datagen.Dataset
	opts := kb.DefaultOptions()
	if *in == "" {
		switch strings.ToLower(*dataset) {
		case "dbpedia":
			d = datagen.DBpediaLike(datagen.Config{Seed: *seed, Scale: *scale})
		case "wikidata":
			d = datagen.WikidataLike(datagen.Config{Seed: *seed, Scale: *scale})
		case "tiny":
			d = datagen.TinyGeo()
			// Mirror remi.GenerateDemo: on the ~100-entity demo the equivalent
			// of the paper's top-1% inverse materialization is the top 10%.
			opts.InverseTopFraction = 0.10
		default:
			log.Fatalf("unknown dataset %q", *dataset)
		}
	}

	if *out != "" {
		switch ext := strings.ToLower(filepath.Ext(*out)); ext {
		case ".hdt":
			h, err := hdt.Build(d.Triples)
			if err != nil {
				log.Fatal(err)
			}
			if err := h.SaveFile(*out); err != nil {
				log.Fatal(err)
			}
		default:
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			if err := rdf.WriteAll(f, d.Triples); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s: %d triples → %s\n", d.Name, len(d.Triples), *out)
	}

	if *snapPath != "" {
		var k *kb.KB
		var err error
		name := ""
		switch {
		case *in != "":
			name = *in
			k, err = compileFile(*in, opts)
		case *stream:
			name = d.Name
			k, err = kb.BuildStreaming(&sliceSource{trs: d.Triples}, opts)
		default:
			name = d.Name
			k, err = d.BuildKB(opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *legacy {
			err = writeLegacySnapshot(k, *snapPath)
		} else {
			err = k.WriteSnapshotFile(*snapPath)
		}
		if err != nil {
			log.Fatal(err)
		}
		st, err := os.Stat(*snapPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d facts (%d entities, %d predicates) compiled → %s (%d bytes)\n",
			name, k.NumFacts(), k.NumEntities(), k.NumPredicates(), *snapPath, st.Size())
	}
}

// compileFile streams an N-Triples file through the bounded-memory builder.
func compileFile(path string, opts kb.Options) (*kb.KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kb.BuildStreaming(rdf.NewReader(f), opts)
}

// writeLegacySnapshot writes the v1-format image with the same tmp+rename
// crash safety as WriteSnapshotFile.
func writeLegacySnapshot(k *kb.KB, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".kbgen-legacy-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := k.WriteSnapshotLegacy(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// sliceSource adapts a generated triple slice to kb.TripleSource.
type sliceSource struct {
	trs []rdf.Triple
	i   int
}

func (s *sliceSource) Read() (rdf.Triple, error) {
	if s.i >= len(s.trs) {
		return rdf.Triple{}, io.EOF
	}
	tr := s.trs[s.i]
	s.i++
	return tr, nil
}
