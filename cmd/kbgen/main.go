// Command kbgen generates the synthetic datasets used by the reproduction
// (see DESIGN.md, substitution 1) and writes them as N-Triples or binary
// HDT.
//
// Usage:
//
//	kbgen -dataset dbpedia -scale 0.5 -seed 42 -out dbpedia.nt
//	kbgen -dataset wikidata -out wikidata.hdt
//	kbgen -dataset tiny -out tiny.nt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/hdt"
	"github.com/remi-kb/remi/internal/rdf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbgen: ")

	var (
		dataset = flag.String("dataset", "dbpedia", "dataset to generate: dbpedia | wikidata | tiny")
		seed    = flag.Int64("seed", 42, "generator seed")
		scale   = flag.Float64("scale", 1.0, "class-population multiplier")
		out     = flag.String("out", "", "output file (.nt or .hdt; required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var d *datagen.Dataset
	switch strings.ToLower(*dataset) {
	case "dbpedia":
		d = datagen.DBpediaLike(datagen.Config{Seed: *seed, Scale: *scale})
	case "wikidata":
		d = datagen.WikidataLike(datagen.Config{Seed: *seed, Scale: *scale})
	case "tiny":
		d = datagen.TinyGeo()
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	switch ext := strings.ToLower(filepath.Ext(*out)); ext {
	case ".hdt":
		h, err := hdt.Build(d.Triples)
		if err != nil {
			log.Fatal(err)
		}
		if err := h.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
	default:
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteAll(f, d.Triples); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s: %d triples → %s\n", d.Name, len(d.Triples), *out)
}
