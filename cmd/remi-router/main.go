// Command remi-router is the fault-tolerant routing tier in front of a
// fleet of remi-serve replicas. It consistent-hashes each request's dedup
// key onto the fleet — identical queries hit the same replica's result
// cache — and wraps every forward in a robustness envelope:
//
//   - active /readyz probes take unhealthy or draining replicas out of
//     routing (and surface "degraded" replicas serving last-known-good);
//   - a per-replica circuit breaker opens after consecutive failures, so a
//     dead replica costs one probe per cooldown instead of one per request;
//   - bounded retries with exponential backoff + jitter walk the ring to
//     the next healthy replica (mining is read-only, hence idempotent);
//   - an optional hedged second request fires when the first is slower
//     than the fleet's EWMA-p99, cutting tail latency;
//   - the client's timeout budget propagates via X-Timeout-Budget-Ms, so
//     retries and replicas never work past the client's deadline;
//   - upstream 429/503 Retry-After hints pass through unchanged (no retry
//     storms against quota-limited or draining replicas).
//
// Only a fully-down fleet answers 503 (with a Retry-After). Every request
// carries an X-Request-Id (accepted or minted) across the tiers, and
// responses name their serving replica in X-Remi-Replica.
//
// Usage:
//
//	remi-router -addr :8090 -replica r1=http://10.0.0.1:8080 \
//	    -replica r2=http://10.0.0.2:8080 -replica r3=http://10.0.0.3:8080
//
// Router-local endpoints: /healthz (liveness), /readyz (ready iff ≥1
// healthy replica), /router/stats (per-replica health, breaker states,
// retry/hedge/failover counters). Everything else forwards to the fleet.
// See README.md next to this file for the runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/remi-kb/remi/internal/cluster"
)

// replicaFlags collects repeated -replica flags ("url" or "name=url").
type replicaFlags []cluster.Replica

func (f *replicaFlags) String() string {
	parts := make([]string, len(*f))
	for i, r := range *f {
		parts[i] = r.Name + "=" + r.URL
	}
	return strings.Join(parts, ",")
}

func (f *replicaFlags) Set(v string) error {
	name, url := "", v
	if i := strings.IndexByte(v, '='); i >= 0 && (strings.Index(v, "://") == -1 || i < strings.Index(v, "://")) {
		name, url = v[:i], v[i+1:]
	}
	if name == "" {
		name = fmt.Sprintf("replica%d", len(*f)+1)
	}
	if url == "" {
		return fmt.Errorf("want url or name=url, got %q", v)
	}
	for _, r := range *f {
		if r.Name == name {
			return fmt.Errorf("replica name %q repeated", name)
		}
	}
	*f = append(*f, cluster.Replica{Name: name, URL: url})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("remi-router: ")

	var replicas replicaFlags
	flag.Var(&replicas, "replica", "replica base URL, optionally name=url; repeat per replica (names must be stable — they fix ring placement)")
	var (
		addr             = flag.String("addr", ":8090", "listen address")
		probeInterval    = flag.Duration("probe-interval", 2*time.Second, "how often each replica's /readyz is probed")
		probeTimeout     = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		breakerThreshold = flag.Int("breaker-threshold", 3, "consecutive failures that open a replica's circuit breaker")
		breakerCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open trial")
		maxAttempts      = flag.Int("max-attempts", 3, "total forward attempts per request, first try included")
		retryBase        = flag.Duration("retry-base", 25*time.Millisecond, "base backoff between attempts (doubles, jittered)")
		retryMax         = flag.Duration("retry-max", 500*time.Millisecond, "backoff ceiling")
		hedgeDelay       = flag.Duration("hedge-delay", 0, "fixed hedge trigger (0 = derive from EWMA p99)")
		hedgeOff         = flag.Bool("hedge-off", false, "disable hedged second requests")
		defaultTimeout   = flag.Duration("default-timeout", 60*time.Second, "budget for requests without X-Timeout-Budget-Ms (streams excluded)")
		vnodes           = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 128)")
	)
	flag.Parse()

	if len(replicas) == 0 {
		log.Fatal(errors.New("at least one -replica is required"))
	}
	rt, err := cluster.New(replicas, cluster.Options{
		Vnodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxAttempts:      *maxAttempts,
		RetryBaseDelay:   *retryBase,
		RetryMaxDelay:    *retryMax,
		HedgeDelay:       *hedgeDelay,
		HedgeDisabled:    *hedgeOff,
		DefaultTimeout:   *defaultTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Ground health in reality before taking traffic, then keep probing.
	rt.ProbeNow(ctx)
	rt.StartProbing(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		log.Printf("routing %d replicas on %s", len(replicas), *addr)
		done <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Fatal(err)
		}
		log.Print("stopped")
	}
}
