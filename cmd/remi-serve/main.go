// Command remi-serve runs the REMI mining service: it loads (or generates)
// a knowledge base once and serves referring-expression mining over
// HTTP/JSON until stopped.
//
// Usage:
//
//	remi-serve -demo tiny
//	remi-serve -kb dbpedia.nt -addr :9090 -workers 8 -timeout 10s
//	remi-serve -kb dbpedia.snap            # compiled snapshot: O(page-in) cold start
//
// -kb accepts N-Triples (.nt), binary HDT (.hdt) or a compiled KB snapshot
// (any extension; detected by magic — produce one with kbgen -snapshot or
// remi.System.SaveSnapshot). Snapshots make cold start and SIGHUP
// reload an mmap-backed open instead of a full parse+index build, which is
// what makes serving many KBs (one process per KB, or frequent reloads
// under traffic) practical. Each snapshot open pins its mapping for the
// process lifetime (see kb.OpenSnapshot), so a deployment that reloads a
// multi-GB snapshot very frequently should recycle the process
// periodically; refcounted release is a tracked follow-up.
//
// Endpoints:
//
//	POST /v1/mine       {"targets": ["<iri>", ...], "metric": "fr|pr", ...}
//	POST /v1/summarize  {"entity": "<iri>", "size": 5}
//	GET  /v1/describe?entity=<iri>
//	GET  /v1/stats
//	GET  /healthz
//
// A client disconnect or timeout cancels the underlying mining run, and
// concurrent identical queries share a single run. See the README next to
// this file for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remi-serve: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		kbPath      = flag.String("kb", "", "knowledge base file (.nt or .hdt)")
		demo        = flag.String("demo", "", "serve a bundled demo dataset instead of -kb (tiny|dbpedia|wikidata)")
		seed        = flag.Int64("seed", 42, "seed for -demo datasets")
		scale       = flag.Float64("scale", 0, "scale for -demo datasets (0 = default)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request mining timeout (0 = none)")
		maxTimeout  = flag.Duration("max-timeout", 2*time.Minute, "ceiling on any mining run, including ones that would otherwise be unbounded (0 = none)")
		workers     = flag.Int("workers", 1, "default P-REMI workers per mining run (1 = sequential)")
		maxWorkers  = flag.Int("max-workers", 32, "upper bound on request-supplied worker counts (0 = none)")
		maxTargets  = flag.Int("max-targets", 64, "maximum targets per mine request")
		resultCache = flag.Int("result-cache", 1024, "completed-result LRU entries (negative = disabled)")
	)
	flag.Parse()

	loadSystem := func() (*remi.System, error) {
		switch {
		case *demo != "":
			return remi.GenerateDemo(*demo, *seed, *scale)
		case *kbPath != "":
			return remi.Load(*kbPath)
		default:
			return nil, errors.New("one of -kb or -demo is required")
		}
	}
	t0 := time.Now()
	sys, err := loadSystem()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("KB ready in %v: %d facts, %d entities, %d predicates",
		time.Since(t0).Round(time.Millisecond), sys.NumFacts(), sys.NumEntities(), sys.NumPredicates())

	srv := server.New(sys, server.Options{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DefaultWorkers: *workers,
		MaxWorkers:     *maxWorkers,
		MaxTargets:     *maxTargets,
		ResultCache:    *resultCache,
	})

	// SIGHUP reloads the knowledge base from its source and swaps it in,
	// invalidating the result cache; in-flight requests finish on the old KB.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Print("SIGHUP: reloading knowledge base")
			t0 := time.Now()
			next, err := loadSystem()
			if err != nil {
				log.Printf("reload failed, keeping current KB: %v", err)
				continue
			}
			srv.SwapSystem(next)
			log.Printf("KB reloaded in %v: %d facts, %d entities, %d predicates",
				time.Since(t0).Round(time.Millisecond), next.NumFacts(), next.NumEntities(), next.NumPredicates())
		}
	}()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests: their
	// contexts stay live during Shutdown, so running mines finish or hit
	// their own timeouts before the listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		done <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Fatal(err)
		}
	}
}
