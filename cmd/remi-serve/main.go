// Command remi-serve runs the REMI mining service: it loads (or generates)
// one or more knowledge bases once and serves referring-expression mining
// over HTTP/JSON until stopped.
//
// Usage:
//
//	remi-serve -demo tiny
//	remi-serve -kb dbpedia.nt -addr :9090 -workers 8 -timeout 10s
//	remi-serve -kb dbpedia.snap            # compiled snapshot: O(page-in) cold start
//	remi-serve -kb db=dbpedia.snap -kb wd=wikidata.snap   # multi-KB routing
//
// -kb accepts N-Triples (.nt), binary HDT (.hdt) or a compiled KB snapshot
// (any extension; detected by magic — produce one with kbgen -snapshot or
// remi.System.SaveSnapshot), optionally prefixed with a registry name
// (name=path) and repeated to serve several KBs from one process. Requests
// route to a KB with a "kb" body field or a /v1/kb/{name}/ path prefix; the
// first -kb flag (or -demo) is the default for requests that name none.
// Snapshots make cold start and SIGHUP reload an mmap-backed open instead
// of a full parse+index build, which is what makes serving many KBs and
// frequent reloads under traffic practical. Each snapshot open pins its
// mapping for the process lifetime (see kb.OpenSnapshot), so a deployment
// that reloads a multi-GB snapshot very frequently should recycle the
// process periodically; refcounted release is a tracked follow-up.
//
// Endpoints (each also available under /v1/kb/{name}/...):
//
//	POST /v1/mine        {"targets": ["<iri>", ...], "metric": "fr|pr", ...}
//	POST /v1/mine:batch  {"sets": [["<iri>", ...], ...], ...}
//	POST /v1/mine:async  single or batch body -> 202 + job document
//	GET  /v1/jobs/{id}   poll a job; DELETE cancels; /stream follows it
//	POST /v1/mine:stream blocking submit, NDJSON or SSE streamed response
//	POST /v1/summarize   {"entity": "<iri>", "size": 5}
//	GET  /v1/describe?entity=<iri>
//	GET  /v1/stats
//	GET  /healthz        liveness: always 200 while the process runs
//	GET  /readyz         readiness: 503 once the server is draining
//
// Every mining request — blocking, batch, async, streaming — runs as a job
// on one admission-controlled worker pool (-job-workers/-job-queue; full
// queues shed load with 429 + Retry-After) and shares one flight-key
// namespace: concurrent identical queries join a single run no matter which
// endpoint carried them. A client disconnect or timeout cancels the
// underlying mining run, and a batch request mines all its target sets in
// one shared pass.
//
// Fault tolerance: SIGHUP reloads every KB through a last-known-good path —
// a failed reload keeps the current generation serving and quarantines the
// KB with exponential backoff. -watchdog-grace arms a watchdog that kills
// jobs wedged past their deadline, -quota-rate enforces per-client
// admission quotas, -interactive-reserve keeps queue headroom for
// interactive work, and SIGTERM drains gracefully (readiness flips first,
// in-flight jobs get -drain-timeout to finish). See the Operations section
// of the README next to this file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/server"
)

// kbFlag is one -kb occurrence: an optional registry name and a path.
type kbFlag struct{ name, path string }

// kbFlags collects repeated -kb flags ("path" or "name=path").
type kbFlags []kbFlag

func (f *kbFlags) String() string {
	parts := make([]string, len(*f))
	for i, kf := range *f {
		parts[i] = kf.name + "=" + kf.path
	}
	return strings.Join(parts, ",")
}

func (f *kbFlags) Set(v string) error {
	name, path := server.DefaultKBName, v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if name == "" || path == "" {
		return fmt.Errorf("want path or name=path, got %q", v)
	}
	if err := server.ValidateKBName(name); err != nil {
		return err
	}
	for _, kf := range *f {
		if kf.name == name {
			return fmt.Errorf("KB name %q repeated", name)
		}
	}
	*f = append(*f, kbFlag{name: name, path: path})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("remi-serve: ")

	var kbs kbFlags
	flag.Var(&kbs, "kb", "knowledge base file (.nt, .hdt or snapshot), optionally name=path; repeat to serve several KBs")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		demo         = flag.String("demo", "", "serve a bundled demo dataset instead of -kb (tiny|dbpedia|wikidata)")
		seed         = flag.Int64("seed", 42, "seed for -demo datasets")
		scale        = flag.Float64("scale", 0, "scale for -demo datasets (0 = default)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request mining timeout (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "ceiling on any mining run, including ones that would otherwise be unbounded (0 = none)")
		workers      = flag.Int("workers", 1, "default P-REMI workers per mining run (1 = sequential)")
		maxWorkers   = flag.Int("max-workers", 32, "upper bound on request-supplied worker counts (0 = none)")
		maxTargets   = flag.Int("max-targets", 64, "maximum targets per mine request (and per batch set)")
		maxBatchSets = flag.Int("batch-sets", 64, "maximum target sets per mine:batch request")
		batchWorkers = flag.Int("batch-workers", 4, "worker pool fanning a batch's target sets")
		resultCache  = flag.Int("result-cache", 1024, "completed-result LRU entries (negative = disabled)")
		jobWorkers   = flag.Int("job-workers", 4, "worker pool executing mining jobs (all request kinds)")
		jobQueue     = flag.Int("job-queue", 64, "admitted jobs that may wait for a worker before 429s")
		jobTTL       = flag.Duration("job-ttl", 5*time.Minute, "how long finished async jobs stay pollable")

		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before closing the listener")
		quotaRate     = flag.Float64("quota-rate", 0, "per-client mining admissions per second (0 = quotas off)")
		quotaBurst    = flag.Float64("quota-burst", 0, "per-client burst bucket (0 = server default)")
		interReserve  = flag.Int("interactive-reserve", 0, "queue slots reserved for interactive (non-batch) jobs")
		watchdogGrace = flag.Duration("watchdog-grace", 0, "grace past a job's deadline before the watchdog kills it (0 = watchdog off)")
	)
	flag.Parse()

	// Assemble the registry of loaders: -demo (as the default KB) plus every
	// -kb flag. The first entry is the default for requests naming no KB.
	type kbSource struct {
		name string
		load func() (*remi.System, error)
	}
	var sources []kbSource
	if *demo != "" {
		sources = append(sources, kbSource{
			name: server.DefaultKBName,
			load: func() (*remi.System, error) { return remi.GenerateDemo(*demo, *seed, *scale) },
		})
	}
	for _, kf := range kbs {
		if *demo != "" && kf.name == server.DefaultKBName {
			log.Fatalf("-demo already serves the %q KB; give -kb %s a name (name=path)", kf.name, kf.path)
		}
		path := kf.path
		sources = append(sources, kbSource{
			name: kf.name,
			load: func() (*remi.System, error) { return remi.Load(path) },
		})
	}
	if len(sources) == 0 {
		log.Fatal(errors.New("one of -kb or -demo is required"))
	}

	systems := make(map[string]*remi.System, len(sources))
	for _, src := range sources {
		t0 := time.Now()
		sys, err := src.load()
		if err != nil {
			log.Fatalf("loading KB %q: %v", src.name, err)
		}
		systems[src.name] = sys
		log.Printf("KB %q ready in %v: %d facts, %d entities, %d predicates",
			src.name, time.Since(t0).Round(time.Millisecond), sys.NumFacts(), sys.NumEntities(), sys.NumPredicates())
	}

	srv := server.NewNamed(sources[0].name, systems[sources[0].name], server.Options{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DefaultWorkers: *workers,
		MaxWorkers:     *maxWorkers,
		MaxTargets:     *maxTargets,
		MaxBatchSets:   *maxBatchSets,
		BatchWorkers:   *batchWorkers,
		ResultCache:    *resultCache,
		JobWorkers:     *jobWorkers,
		JobQueueDepth:  *jobQueue,
		JobTTL:         *jobTTL,

		QuotaRate:          *quotaRate,
		QuotaBurst:         *quotaBurst,
		InteractiveReserve: *interReserve,
		WatchdogGrace:      *watchdogGrace,
	})
	defer srv.Close()
	for _, src := range sources[1:] {
		if err := srv.AddKB(src.name, systems[src.name]); err != nil {
			log.Fatal(err)
		}
	}

	// SIGHUP reloads every knowledge base from its source through the
	// server's last-known-good path: a failed or quarantined reload keeps
	// the current generation serving, and repeated failures back off
	// exponentially before the next attempt is admitted.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Print("SIGHUP: reloading knowledge bases")
			for _, src := range sources {
				t0 := time.Now()
				if err := srv.ReloadKB(src.name, src.load); err != nil {
					log.Printf("reload of %q: %v", src.name, err)
					continue
				}
				log.Printf("KB %q reloaded in %v", src.name, time.Since(t0).Round(time.Millisecond))
			}
		}
	}()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain gracefully: readiness flips to
	// draining first (load balancers stop routing here while /healthz stays
	// green), new mining work is refused with 503, in-flight jobs get up to
	// -drain-timeout to finish, and only then does the listener close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d KBs)", *addr, len(sources))
		done <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("draining: readiness down, waiting for in-flight jobs")
		srv.StartDrain()
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.DrainWait(drainCtx); err != nil {
			log.Printf("drain timeout after %v: closing with jobs still running", *drainTimeout)
		}
		cancelDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Fatal(err)
		}
		log.Print("drained and stopped")
	}
}
