// Command remi-serve runs the REMI mining service: it loads (or generates)
// one or more knowledge bases once and serves referring-expression mining
// over HTTP/JSON until stopped.
//
// Usage:
//
//	remi-serve -demo tiny
//	remi-serve -kb dbpedia.nt -addr :9090 -workers 8 -timeout 10s
//	remi-serve -kb dbpedia.snap            # compiled snapshot: O(page-in) cold start
//	remi-serve -kb db=dbpedia.snap -kb wd=wikidata.snap   # multi-KB routing
//	remi-serve -snapshot-source http://kb-store/dbpedia.snap   # replica mode
//
// -kb accepts N-Triples (.nt), binary HDT (.hdt) or a compiled KB snapshot
// (any extension; detected by magic — produce one with kbgen -snapshot or
// remi.System.SaveSnapshot), optionally prefixed with a registry name
// (name=path) and repeated to serve several KBs from one process. Requests
// route to a KB with a "kb" body field or a /v1/kb/{name}/ path prefix; the
// first -kb flag (or -demo) is the default for requests that name none.
// Snapshots make cold start and SIGHUP reload an mmap-backed open instead
// of a full parse+index build, which is what makes serving many KBs and
// frequent reloads under traffic practical. Snapshot mappings are
// refcounted: by default a swapped-out generation keeps its mapping pinned
// (always safe), and -retire-grace opts into releasing it once no mining
// run can still be reading it (set the grace above -max-timeout plus
// -watchdog-grace).
//
// Live KBs: -live-dir turns every -kb entry into a mutable, WAL-backed
// knowledge base rooted in that directory (<dir>/<name>.snap +
// <dir>/<name>.wal). Facts are then mutable at runtime through
// POST /v1/kb/{name}/facts — each batch is fsynced to the WAL before it is
// acknowledged, so acked facts survive a crash — and
// POST /v1/admin/compile folds base+WAL into a fresh snapshot. On boot a
// live KB prefers its compacted snapshot and replays the WAL tail; the
// -kb path is only parsed on the very first boot. Live KBs are excluded
// from SIGHUP reloads (their state is WAL-owned, not source-owned). See
// the Operations runbook in the README next to this file.
//
// Replica mode: -snapshot-source (repeatable, name=URL|dir|file) turns the
// process into a snapshot-pulling replica behind remi-router. Each source
// is downloaded to -snapshot-cache, verified off to the side (a failed or
// corrupt pull never touches serving) and refreshed every
// -snapshot-refresh through the same last-known-good reload path SIGHUP
// uses. The listener comes up immediately, but /readyz stays 503 until
// every source has loaded once — so a router never routes to a replica
// that has nothing to serve — and an unchanged image refresh is a no-op
// that keeps result caches warm.
//
// Endpoints (each also available under /v1/kb/{name}/...):
//
//	POST /v1/mine        {"targets": ["<iri>", ...], "metric": "fr|pr", ...}
//	POST /v1/mine:batch  {"sets": [["<iri>", ...], ...], ...}
//	POST /v1/mine:async  single or batch body -> 202 + job document
//	GET  /v1/jobs/{id}   poll a job; DELETE cancels; /stream follows it
//	POST /v1/mine:stream blocking submit, NDJSON or SSE streamed response
//	POST /v1/summarize   {"entity": "<iri>", "size": 5}
//	GET  /v1/describe?entity=<iri>
//	POST /v1/kb/{name}/facts    {"ops":[{"op":"upsert|retract","s":"<iri>","p":"<iri>","o":"<iri>|\"lit\""}]}
//	POST /v1/admin/compile      {"kb":"name"}  fold base+WAL into a snapshot
//	GET  /v1/stats
//	GET  /healthz        liveness: always 200 while the process runs
//	GET  /readyz         readiness: 503 while booting or draining
//
// Every mining request — blocking, batch, async, streaming — runs as a job
// on one admission-controlled worker pool (-job-workers/-job-queue; full
// queues shed load with 429 + Retry-After) and shares one flight-key
// namespace: concurrent identical queries join a single run no matter which
// endpoint carried them. A client disconnect or timeout cancels the
// underlying mining run, and a batch request mines all its target sets in
// one shared pass.
//
// Fault tolerance: SIGHUP reloads every KB through a last-known-good path —
// a failed reload keeps the current generation serving and quarantines the
// KB with exponential backoff. -watchdog-grace arms a watchdog that kills
// jobs wedged past their deadline, -quota-rate enforces per-client
// admission quotas, -interactive-reserve keeps queue headroom for
// interactive work, and SIGTERM drains gracefully (readiness flips first,
// in-flight jobs get -drain-timeout to finish). See the Operations section
// of the README next to this file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/cluster"
	"github.com/remi-kb/remi/internal/server"
)

// kbFlag is one -kb occurrence: an optional registry name and a path.
type kbFlag struct{ name, path string }

// kbFlags collects repeated -kb / -snapshot-source flags ("path" or
// "name=path").
type kbFlags []kbFlag

func (f *kbFlags) String() string {
	parts := make([]string, len(*f))
	for i, kf := range *f {
		parts[i] = kf.name + "=" + kf.path
	}
	return strings.Join(parts, ",")
}

func (f *kbFlags) Set(v string) error {
	name, path := server.DefaultKBName, v
	// Split at the first '=' only when it precedes any "://", so a bare
	// URL source with query parameters stays one piece.
	if i := strings.IndexByte(v, '='); i >= 0 && (strings.Index(v, "://") == -1 || i < strings.Index(v, "://")) {
		name, path = v[:i], v[i+1:]
	}
	if name == "" || path == "" {
		return fmt.Errorf("want path or name=path, got %q", v)
	}
	if err := server.ValidateKBName(name); err != nil {
		return err
	}
	for _, kf := range *f {
		if kf.name == name {
			return fmt.Errorf("KB name %q repeated", name)
		}
	}
	*f = append(*f, kbFlag{name: name, path: path})
	return nil
}

// kbSource is one named loader in the registry-assembly order. liveSrc is
// set (to the -kb path) when -live-dir promotes the entry to a mutable
// WAL-backed KB; load is nil then.
type kbSource struct {
	name    string
	load    func() (*remi.System, error)
	liveSrc string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("remi-serve: ")

	var kbs, snaps kbFlags
	flag.Var(&kbs, "kb", "knowledge base file (.nt, .hdt or snapshot), optionally name=path; repeat to serve several KBs")
	flag.Var(&snaps, "snapshot-source", "replica mode: snapshot source (URL, directory or file), optionally name=source; repeat for several KBs")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		demo         = flag.String("demo", "", "serve a bundled demo dataset instead of -kb (tiny|dbpedia|wikidata)")
		seed         = flag.Int64("seed", 42, "seed for -demo datasets")
		scale        = flag.Float64("scale", 0, "scale for -demo datasets (0 = default)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request mining timeout (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "ceiling on any mining run, including ones that would otherwise be unbounded (0 = none)")
		workers      = flag.Int("workers", 1, "default P-REMI workers per mining run (1 = sequential)")
		maxWorkers   = flag.Int("max-workers", 32, "upper bound on request-supplied worker counts (0 = none)")
		maxTargets   = flag.Int("max-targets", 64, "maximum targets per mine request (and per batch set)")
		maxBatchSets = flag.Int("batch-sets", 64, "maximum target sets per mine:batch request")
		batchWorkers = flag.Int("batch-workers", 4, "worker pool fanning a batch's target sets")
		resultCache  = flag.Int("result-cache", 1024, "completed-result LRU entries (negative = disabled)")
		jobWorkers   = flag.Int("job-workers", 4, "worker pool executing mining jobs (all request kinds)")
		jobQueue     = flag.Int("job-queue", 64, "admitted jobs that may wait for a worker before 429s")
		jobTTL       = flag.Duration("job-ttl", 5*time.Minute, "how long finished async jobs stay pollable")

		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before closing the listener")
		quotaRate     = flag.Float64("quota-rate", 0, "per-client mining admissions per second (0 = quotas off)")
		quotaBurst    = flag.Float64("quota-burst", 0, "per-client burst bucket (0 = server default)")
		interReserve  = flag.Int("interactive-reserve", 0, "queue slots reserved for interactive (non-batch) jobs")
		watchdogGrace = flag.Duration("watchdog-grace", 0, "grace past a job's deadline before the watchdog kills it (0 = watchdog off)")

		snapRefresh = flag.Duration("snapshot-refresh", 30*time.Second, "how often replica mode re-pulls each -snapshot-source (0 = never)")
		snapCache   = flag.String("snapshot-cache", filepath.Join(os.TempDir(), "remi-snapshots"), "directory replica mode caches pulled snapshots in")

		liveDir     = flag.String("live-dir", "", "serve every -kb entry as a live (mutable, WAL-backed) KB rooted in this directory")
		retireGrace = flag.Duration("retire-grace", 0, "release a swapped-out generation's snapshot mapping this long after a reload/mutation replaced it; must exceed -max-timeout plus -watchdog-grace (0 = keep mappings pinned)")
	)
	flag.Parse()

	// Assemble the registry of loaders: -demo (as the default KB), every
	// -kb flag, then every -snapshot-source puller. The first entry is the
	// default for requests naming no KB.
	var sources []kbSource
	if *demo != "" {
		sources = append(sources, kbSource{
			name: server.DefaultKBName,
			load: func() (*remi.System, error) { return remi.GenerateDemo(*demo, *seed, *scale) },
		})
	}
	if *retireGrace > 0 && *maxTimeout <= 0 {
		log.Fatal("-retire-grace needs a finite -max-timeout: an unbounded mining run could outlive any grace")
	}
	if *retireGrace > 0 && *retireGrace <= *maxTimeout+*watchdogGrace {
		log.Fatalf("-retire-grace %v must exceed -max-timeout %v + -watchdog-grace %v, or a still-running mine could read a released mapping",
			*retireGrace, *maxTimeout, *watchdogGrace)
	}
	for _, kf := range kbs {
		if *demo != "" && kf.name == server.DefaultKBName {
			log.Fatalf("-demo already serves the %q KB; give -kb %s a name (name=path)", kf.name, kf.path)
		}
		path := kf.path
		if *liveDir != "" {
			sources = append(sources, kbSource{name: kf.name, liveSrc: path})
			continue
		}
		sources = append(sources, kbSource{
			name: kf.name,
			load: func() (*remi.System, error) { return remi.Load(path) },
		})
	}
	var pullers []*cluster.Puller
	for _, sf := range snaps {
		for _, src := range sources {
			if src.name == sf.name {
				log.Fatalf("KB %q is served by both -snapshot-source and another flag", sf.name)
			}
		}
		p := cluster.NewPuller(sf.name, sf.path, *snapCache)
		pullers = append(pullers, p)
		sources = append(sources, kbSource{name: sf.name, load: p.Load})
	}
	if len(sources) == 0 {
		log.Fatal(errors.New("one of -kb, -demo or -snapshot-source is required"))
	}

	// liveKBs holds the WAL-backed KBs of the serving registry; closed on
	// shutdown, after the server stopped accepting mutations.
	var liveKBs map[string]*remi.LiveKB

	// buildServer loads every source and assembles the registry; in replica
	// mode it runs off the serving path and may be retried.
	buildServer := func() (*server.Server, error) {
		systems := make(map[string]*remi.System, len(sources))
		lives := make(map[string]*remi.LiveKB)
		closeLives := func() {
			for _, l := range lives {
				l.Close()
			}
		}
		for _, src := range sources {
			t0 := time.Now()
			if src.liveSrc != "" {
				l, err := remi.OpenLive(*liveDir, src.name, remi.LiveOptions{Source: src.liveSrc})
				if err != nil {
					closeLives()
					return nil, fmt.Errorf("opening live KB %q: %w", src.name, err)
				}
				lives[src.name] = l
				sys := l.System()
				systems[src.name] = sys
				st := l.Stats()
				log.Printf("live KB %q ready in %v: %d facts, %d entities (WAL: %d records replayed, %d bytes torn tail dropped)",
					src.name, time.Since(t0).Round(time.Millisecond), sys.NumFacts(), sys.NumEntities(),
					st.RecoveryReplayed, st.RecoveryDroppedBytes)
				continue
			}
			sys, err := src.load()
			if err != nil {
				closeLives()
				return nil, fmt.Errorf("loading KB %q: %w", src.name, err)
			}
			systems[src.name] = sys
			log.Printf("KB %q ready in %v: %d facts, %d entities, %d predicates",
				src.name, time.Since(t0).Round(time.Millisecond), sys.NumFacts(), sys.NumEntities(), sys.NumPredicates())
		}
		srv := server.NewNamed(sources[0].name, systems[sources[0].name], server.Options{
			DefaultTimeout: *timeout,
			MaxTimeout:     *maxTimeout,
			DefaultWorkers: *workers,
			MaxWorkers:     *maxWorkers,
			MaxTargets:     *maxTargets,
			MaxBatchSets:   *maxBatchSets,
			BatchWorkers:   *batchWorkers,
			ResultCache:    *resultCache,
			JobWorkers:     *jobWorkers,
			JobQueueDepth:  *jobQueue,
			JobTTL:         *jobTTL,

			QuotaRate:          *quotaRate,
			QuotaBurst:         *quotaBurst,
			InteractiveReserve: *interReserve,
			WatchdogGrace:      *watchdogGrace,
			RetireGrace:        *retireGrace,
		})
		for _, src := range sources[1:] {
			if err := srv.AddKB(src.name, systems[src.name]); err != nil {
				srv.Close()
				closeLives()
				return nil, err
			}
		}
		for name, l := range lives {
			if err := srv.BindLive(name, l); err != nil {
				srv.Close()
				closeLives()
				return nil, err
			}
		}
		liveKBs = lives
		return srv, nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The listener serves whatever handler is currently installed: the
	// booting stub until the first successful load (readiness gates on it),
	// then the real server. Swapping an atomic pointer is what lets replica
	// mode bring the port up before its snapshots have arrived.
	var srvPtr atomic.Pointer[server.Server]
	var handler atomic.Pointer[http.Handler] // concrete type differs boot vs ready, so not atomic.Value
	boot := bootingHandler()
	handler.Store(&boot)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { (*handler.Load()).ServeHTTP(w, r) }),
		ReadHeaderTimeout: 10 * time.Second,
	}

	activate := func(srv *server.Server) {
		srvPtr.Store(srv)
		h := srv.Handler()
		handler.Store(&h)
		if len(pullers) > 0 && *snapRefresh > 0 {
			// Periodic refresh through the last-known-good reload path: a
			// corrupt or unreachable source quarantines with backoff while
			// the old generation serves; an unchanged image is a no-op.
			go func() {
				t := time.NewTicker(*snapRefresh)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						for _, p := range pullers {
							p := p
							if err := srv.ReloadKB(p.Name(), p.Load); err != nil {
								log.Printf("snapshot refresh of %q: %v", p.Name(), err)
							}
						}
					}
				}
			}()
		}
	}

	if len(pullers) > 0 {
		// Replica mode boots in the background, retrying with backoff: a
		// replica whose source is briefly down comes up serving 503s and
		// recovers on its own instead of crash-looping.
		go func() {
			backoff := time.Second
			for ctx.Err() == nil {
				srv, err := buildServer()
				if err == nil {
					activate(srv)
					log.Printf("replica ready (%d KBs)", len(sources))
					return
				}
				log.Printf("bootstrap: %v (retrying in %s)", err, backoff)
				select {
				case <-ctx.Done():
					return
				case <-time.After(backoff):
				}
				backoff = min(backoff*2, 30*time.Second)
			}
		}()
	} else {
		srv, err := buildServer()
		if err != nil {
			log.Fatal(err)
		}
		activate(srv)
	}

	// SIGHUP reloads every knowledge base from its source through the
	// server's last-known-good path: a failed or quarantined reload keeps
	// the current generation serving, and repeated failures back off
	// exponentially before the next attempt is admitted.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			srv := srvPtr.Load()
			if srv == nil {
				log.Print("SIGHUP: still booting, nothing to reload")
				continue
			}
			log.Print("SIGHUP: reloading knowledge bases")
			for _, src := range sources {
				if src.liveSrc != "" {
					// A live KB's state is WAL-owned, not source-owned: a
					// source reload would silently drop acknowledged
					// mutations. Compaction is its maintenance operation.
					log.Printf("KB %q is live; skipping reload (use POST /v1/admin/compile)", src.name)
					continue
				}
				t0 := time.Now()
				if err := srv.ReloadKB(src.name, src.load); err != nil {
					log.Printf("reload of %q: %v", src.name, err)
					continue
				}
				log.Printf("KB %q reloaded in %v", src.name, time.Since(t0).Round(time.Millisecond))
			}
		}
	}()

	// Serve until SIGINT/SIGTERM, then drain gracefully: readiness flips to
	// draining first (load balancers stop routing here while /healthz stays
	// green), new mining work is refused with 503, in-flight jobs get up to
	// -drain-timeout to finish, and only then does the listener close.
	done := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d KBs)", *addr, len(sources))
		done <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		srv := srvPtr.Load()
		if srv != nil {
			log.Print("draining: readiness down, waiting for in-flight jobs")
			srv.StartDrain()
			drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
			if err := srv.DrainWait(drainCtx); err != nil {
				log.Printf("drain timeout after %v: closing with jobs still running", *drainTimeout)
			}
			cancelDrain()
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Fatal(err)
		}
		log.Print("drained and stopped")
	}
	if srv := srvPtr.Load(); srv != nil {
		srv.Close()
	}
	// Live KBs close last: the WAL handle outlives the HTTP plane, so a
	// mutation in flight during drain still reaches stable storage.
	for name, l := range liveKBs {
		if err := l.Close(); err != nil {
			log.Printf("closing live KB %q: %v", name, err)
		}
	}
}

// bootingHandler serves while a replica waits for its first successful
// snapshot load: alive (200 /healthz) but not ready (503 /readyz), and
// every other request is refused with a Retry-After so routers and clients
// back off instead of erroring opaquely.
func bootingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeBootJSON(w, http.StatusOK, `{"status":"ok","booting":true}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeBootJSON(w, http.StatusServiceUnavailable, `{"status":"booting"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeBootJSON(w, http.StatusServiceUnavailable, `{"error":"server is booting: knowledge bases not yet loaded"}`)
	})
	return mux
}

func writeBootJSON(w http.ResponseWriter, status int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintln(w, body)
}
