package remi

// Golden regression tests for the mining engine: the exact expressions and
// costs mined on the seed datasets, captured from the slice-based binding-set
// engine before the adaptive bindset conversion. Any representation change in
// the evaluator or the DFS must keep these outputs byte-identical — the set
// algebra may change physically, never logically.

import (
	"math"
	"testing"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/experiments"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// goldenDBpedia are the results for experiments.SampleSets(env, 8, 404, 0)
// on the seed-42, scale-0.1 DBpedia-like lab KB, sequential extended REMI.
var goldenDBpedia = []struct {
	found bool
	bits  float64
	expr  string
}{
	{true, 12.005601, `birthPlace(x, Settlement_12) ∧ birthYear(x, 1890)`},
	{false, math.Inf(1), `⊤`},
	{true, 8.253355, `starring(x, Person_182)`},
	{true, 9.402713, `headquarter(x, Settlement_86)`},
	{false, math.Inf(1), `⊤`},
	{false, math.Inf(1), `⊤`},
	{false, math.Inf(1), `⊤`},
	{true, 10.611025, `populationTotal(x, 16836)`},
}

// goldenTiny are the results on the TinyGeo KB (inverse top fraction 0.10,
// exact ranks, Ĉfr), sequential extended REMI.
var goldenTiny = []struct {
	targets []string
	found   bool
	bits    float64
	expr    string
}{
	{[]string{"Paris"}, true, 4.247928, `type(x, City) ∧ capital⁻¹(x, France)`},
	{[]string{"Rennes", "Nantes"}, true, 3.906891, `type(x, City) ∧ belongedTo(x, Brittany)`},
	{[]string{"Guyana", "Suriname"}, true, 7.491853, `in(x, SouthAmerica) ∧ officialLanguage(x, y) ∧ langFamily(y, Germanic)`},
	{[]string{"Rennes"}, true, 3.584963, `type(x, City) ∧ mayor(x, MayorRennes)`},
	{[]string{"France"}, true, 2.000000, `capital(x, Paris)`},
}

const goldenBitsTol = 1e-6

func TestGoldenDBpediaMining(t *testing.T) {
	env := lab().DBpedia()
	sets := experiments.SampleSets(env, 8, 404, 0)
	if len(sets) != len(goldenDBpedia) {
		t.Fatalf("sampled %d sets, want %d", len(sets), len(goldenDBpedia))
	}
	for i, set := range sets {
		m := core.NewMiner(env.KB, env.EstFr, core.DefaultConfig())
		res, err := m.Mine(set.IDs)
		if err != nil {
			t.Fatal(err)
		}
		want := goldenDBpedia[i]
		if res.Found() != want.found {
			t.Errorf("set %d: found = %v, want %v", i, res.Found(), want.found)
			continue
		}
		if got := res.Expression.Format(env.KB); got != want.expr {
			t.Errorf("set %d: expr = %q, want %q", i, got, want.expr)
		}
		if want.found && math.Abs(res.Bits-want.bits) > goldenBitsTol {
			t.Errorf("set %d: bits = %f, want %f", i, res.Bits, want.bits)
		}
	}
}

func goldenTinyMiner(t *testing.T) (*kb.KB, *complexity.Estimator) {
	t.Helper()
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0.10
	k, err := d.BuildKB(opts)
	if err != nil {
		t.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	return k, complexity.New(k, prom, complexity.Exact)
}

func TestGoldenTinyMining(t *testing.T) {
	k, est := goldenTinyMiner(t)
	for _, want := range goldenTiny {
		var ids []kb.EntID
		for _, n := range want.targets {
			id, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + n))
			if !ok {
				t.Fatalf("missing tiny entity %s", n)
			}
			ids = append(ids, id)
		}
		m := core.NewMiner(k, est, core.DefaultConfig())
		res, err := m.Mine(ids)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found() != want.found {
			t.Errorf("%v: found = %v, want %v", want.targets, res.Found(), want.found)
			continue
		}
		if got := res.Expression.Format(k); got != want.expr {
			t.Errorf("%v: expr = %q, want %q", want.targets, got, want.expr)
		}
		if math.Abs(res.Bits-want.bits) > goldenBitsTol {
			t.Errorf("%v: bits = %f, want %f", want.targets, res.Bits, want.bits)
		}
	}
}

// TestGoldenParallelCost checks P-REMI against the same goldens. Equal-cost
// ties can resolve to different expressions depending on worker timing, so
// only the optimal cost (and solution existence) is asserted.
func TestGoldenParallelCost(t *testing.T) {
	k, est := goldenTinyMiner(t)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	for _, want := range goldenTiny {
		var ids []kb.EntID
		for _, n := range want.targets {
			id, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + n))
			if !ok {
				t.Fatalf("missing tiny entity %s", n)
			}
			ids = append(ids, id)
		}
		m := core.NewMiner(k, est, cfg)
		res, err := m.Mine(ids)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found() != want.found {
			t.Errorf("%v: parallel found = %v, want %v", want.targets, res.Found(), want.found)
			continue
		}
		if math.Abs(res.Bits-want.bits) > goldenBitsTol {
			t.Errorf("%v: parallel bits = %f, want %f", want.targets, res.Bits, want.bits)
		}
	}
}
