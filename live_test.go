package remi

// Crash-recovery golden tests for live KBs: the same mining queries must
// return byte-identical answers whether the facts arrived by parsing a
// file, by live mutation, by WAL replay after a crash, or from a compacted
// snapshot. Fault points (wal.sync, wal.torn, compact.crash, delta.apply)
// inject the crashes; the invariant throughout is zero acknowledged-fact
// loss.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/kb/delta"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/server/faults"
)

// liveBuildOpts disables inverse materialization: a fresh parse recomputes
// entity prominence from its own fact set, while a live KB froze it at base
// build time, so only the inverse-free configuration is exactly comparable.
func liveBuildOpts() *kb.Options {
	o := kb.DefaultOptions()
	o.InverseTopFraction = 0
	return &o
}

// writeTinySource writes the TinyGeo dataset as N-Triples and returns its
// path plus the triples.
func writeTinySource(t *testing.T, dir string) (string, []rdf.Triple) {
	t.Helper()
	d := datagen.TinyGeo()
	path := filepath.Join(dir, "tiny.nt")
	var buf []byte
	for _, tr := range d.Triples {
		buf = append(buf, fmt.Sprintf("%s %s %s .\n", tr.S, tr.P, tr.O)...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, d.Triples
}

const tinyOnt = "http://tiny.demo/ontology/"

func upsertOp(s, p, o string) delta.Op {
	return delta.Op{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func retractOp(s, p, o string) delta.Op {
	op := upsertOp(s, p, o)
	op.Retract = true
	return op
}

// tinyMutations is the scripted batch sequence the golden tests share:
// retract a discriminating fact, add a brand-new entity with facts, and
// re-route an existing relation.
func tinyMutations() [][]delta.Op {
	return [][]delta.Op{
		{
			retractOp(tinyNS+"Rennes", tinyOnt+"mayor", tinyNS+"MayorRennes"),
			upsertOp(tinyNS+"Atlantis", tinyOnt+"in", tinyNS+"SouthAmerica"),
		},
		{
			upsertOp(tinyNS+"Atlantis", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", tinyOnt+"City"),
			upsertOp(tinyNS+"Lyon", tinyOnt+"belongedTo", tinyNS+"Brittany"),
		},
		{
			retractOp(tinyNS+"Lyon", tinyOnt+"belongedTo", tinyNS+"Brittany"),
			upsertOp(tinyNS+"Nantes", tinyOnt+"mayor", tinyNS+"MayorRennes"),
		},
	}
}

// applyToTriples folds a mutation script into a triple list, producing the
// fact set a fresh parse must see to be equivalent.
func applyToTriples(trs []rdf.Triple, batches [][]delta.Op) []rdf.Triple {
	key := func(tr rdf.Triple) string { return tr.S.String() + "\x00" + tr.P.String() + "\x00" + tr.O.String() }
	eff := make(map[string]rdf.Triple, len(trs))
	order := make([]string, 0, len(trs))
	for _, tr := range trs {
		k := key(tr)
		if _, ok := eff[k]; !ok {
			order = append(order, k)
		}
		eff[k] = tr
	}
	for _, batch := range batches {
		for _, op := range batch {
			tr := rdf.Triple{S: op.S, P: op.P, O: op.O}
			k := key(tr)
			if op.Retract {
				delete(eff, k)
				continue
			}
			if _, ok := eff[k]; !ok {
				order = append(order, k)
			}
			eff[k] = tr
		}
	}
	out := make([]rdf.Triple, 0, len(eff))
	for _, k := range order {
		if tr, ok := eff[k]; ok {
			out = append(out, tr)
		}
	}
	return out
}

// goldenTargetSets are the mining queries whose answers must stay
// byte-identical across mutation, recovery and compaction.
func goldenTargetSets() [][]string {
	return [][]string{
		{tinyNS + "Paris"},
		{tinyNS + "Rennes", tinyNS + "Nantes"},
		{tinyNS + "Guyana", tinyNS + "Suriname"},
		{tinyNS + "France"},
		{tinyNS + "Rennes"},
	}
}

// mineGolden renders one comparable line per target set: the expression and
// its exact cost, or ⊥ when no RE exists.
func mineGolden(t *testing.T, sys *System, sets [][]string) []string {
	t.Helper()
	out := make([]string, len(sets))
	for i, set := range sets {
		res, err := sys.Mine(set)
		if err != nil {
			t.Fatalf("mining %v: %v", set, err)
		}
		if !res.Found {
			out[i] = "⊥"
			continue
		}
		out[i] = fmt.Sprintf("%s @ %.9f", res.Expression, res.Bits)
	}
	return out
}

func assertSameGolden(t *testing.T, label string, got, want []string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: set %d mined %q, want %q", label, i, got[i], want[i])
		}
	}
}

func TestLiveKBMutatedMiningGolden(t *testing.T) {
	dir := t.TempDir()
	src, triples := writeTinySource(t, dir)
	live, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	ctx := context.Background()
	batches := tinyMutations()
	var applied int
	for i, batch := range batches {
		sys, changed, err := live.Apply(ctx, batch, fmt.Sprintf("req-%d", i))
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if sys == nil || changed == 0 {
			t.Fatalf("batch %d: no effect (changed=%d)", i, changed)
		}
		applied += len(batch)
	}
	// Idempotent re-send of the last batch: acked, changes nothing.
	if _, changed, err := live.Apply(ctx, batches[len(batches)-1], "req-retry"); err != nil || changed != 0 {
		t.Fatalf("idempotent re-send: changed=%d err=%v", changed, err)
	}
	applied += len(batches[len(batches)-1])

	fresh, err := kb.FromTriples(applyToTriples(triples, batches), *liveBuildOpts())
	if err != nil {
		t.Fatal(err)
	}
	freshSys := fromKB(fresh)
	defer freshSys.Close()

	liveSys := live.System()
	if liveSys.NumFacts() != freshSys.NumFacts() {
		t.Fatalf("facts: live %d vs fresh %d", liveSys.NumFacts(), freshSys.NumFacts())
	}
	sets := goldenTargetSets()
	assertSameGolden(t, "mutated vs fresh", mineGolden(t, liveSys, sets), mineGolden(t, freshSys, sets))

	st := live.Stats()
	if st.FactsApplied != int64(applied) {
		t.Errorf("FactsApplied = %d, want %d", st.FactsApplied, applied)
	}
	if st.WalRecords != int64(len(batches)+1) || st.WalBytes == 0 {
		t.Errorf("WAL sizing off: records=%d bytes=%d", st.WalRecords, st.WalBytes)
	}
}

func TestLiveKBRecoveryGolden(t *testing.T) {
	dir := t.TempDir()
	src, _ := writeTinySource(t, dir)
	live, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	batches := tinyMutations()
	for i, batch := range batches {
		if _, _, err := live.Apply(ctx, batch, fmt.Sprintf("req-%d", i)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	sets := goldenTargetSets()
	want := mineGolden(t, live.System(), sets)
	// Crash: no Close, no compaction — the WAL is all that survives beside
	// the source file.
	reborn, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	defer live.Close()
	st := reborn.Stats()
	if st.RecoveryReplayed != int64(len(batches)) {
		t.Fatalf("RecoveryReplayed = %d, want %d", st.RecoveryReplayed, len(batches))
	}
	assertSameGolden(t, "recovered vs pre-crash", mineGolden(t, reborn.System(), sets), want)
}

func TestLiveKBTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	src, _ := writeTinySource(t, dir)
	live, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	acked := tinyMutations()[0]
	if _, _, err := live.Apply(ctx, acked, "req-acked"); err != nil {
		t.Fatal(err)
	}
	want := mineGolden(t, live.System(), goldenTargetSets())

	disarm := faults.Arm(faults.WalTorn, faults.Injection{Err: errors.New("power loss mid-append")})
	_, _, err = live.Apply(ctx, tinyMutations()[1], "req-torn")
	disarm()
	if err == nil {
		t.Fatal("torn append acknowledged")
	}
	// The handle is bricked, as a crashed process would be.
	if _, _, err := live.Apply(ctx, tinyMutations()[1], "req-after-torn"); err == nil {
		t.Fatal("append accepted on a failed log")
	}
	live.Close()

	reborn, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	st := reborn.Stats()
	if st.RecoveryReplayed != 1 {
		t.Fatalf("RecoveryReplayed = %d, want 1 (the acked batch)", st.RecoveryReplayed)
	}
	if st.RecoveryDroppedBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	// The acked batch survived; the torn one is gone without trace.
	assertSameGolden(t, "post-torn", mineGolden(t, reborn.System(), goldenTargetSets()), want)
	if reborn.System().NumFacts() != live.System().NumFacts() {
		t.Fatalf("fact count diverged: %d vs %d", reborn.System().NumFacts(), live.System().NumFacts())
	}
}

func TestLiveKBSyncFailureNeverAcks(t *testing.T) {
	dir := t.TempDir()
	src, _ := writeTinySource(t, dir)
	live, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	ctx := context.Background()
	before := live.System()

	disarm := faults.Arm(faults.WalSync, faults.Injection{Err: errors.New("disk full")})
	_, _, err = live.Apply(ctx, tinyMutations()[0], "req-nosync")
	disarm()
	if err == nil {
		t.Fatal("unsynced batch acknowledged")
	}
	if live.System() != before {
		t.Fatal("failed batch mutated the serving System")
	}
	if live.Stats().FactsApplied != 0 {
		t.Fatal("failed batch counted as applied")
	}
	// The log stays usable: a client retry of the same batch must succeed
	// (and replay surfacing the unacked record later is harmless — the
	// retry made its contents acknowledged anyway).
	if _, changed, err := live.Apply(ctx, tinyMutations()[0], "req-retry"); err != nil || changed == 0 {
		t.Fatalf("retry after sync failure: changed=%d err=%v", changed, err)
	}
}

func TestLiveKBDeltaApplyFaultLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	src, _ := writeTinySource(t, dir)
	live, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	disarm := faults.Arm(faults.DeltaApply, faults.Injection{Err: errors.New("staging failed")})
	_, _, err = live.Apply(context.Background(), tinyMutations()[0], "req-staged")
	disarm()
	if err == nil {
		t.Fatal("staging failure acknowledged")
	}
	st := live.Stats()
	if st.WalRecords != 0 || st.WalBytes != 0 || st.FactsApplied != 0 {
		t.Fatalf("staging failure left state: %+v", st)
	}
}

func TestLiveKBCompactionAndCrash(t *testing.T) {
	dir := t.TempDir()
	src, _ := writeTinySource(t, dir)
	live, err := OpenLive(dir, "tiny", LiveOptions{Source: src, Build: liveBuildOpts()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, batch := range tinyMutations() {
		if _, _, err := live.Apply(ctx, batch, fmt.Sprintf("req-%d", i)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	sets := goldenTargetSets()
	want := mineGolden(t, live.System(), sets)

	// Crash in compaction's dangerous window: the new snapshot is durable
	// but the WAL was not yet truncated.
	disarm := faults.Arm(faults.CompactCrash, faults.Injection{Err: errors.New("killed between rename and truncate")})
	_, err = live.Compact(ctx)
	disarm()
	if err == nil {
		t.Fatal("interrupted compaction reported success")
	}
	if st := live.Stats(); st.WalRecords != 3 || st.Compactions != 0 {
		t.Fatalf("interrupted compaction mutated state: %+v", st)
	}
	// Pre-crash process keeps serving correctly.
	assertSameGolden(t, "serving across failed compaction", mineGolden(t, live.System(), sets), want)
	live.Close()

	// Reboot: the new snapshot loads (no Source needed) and the stale WAL
	// replays onto it as no-ops.
	reborn, err := OpenLive(dir, "tiny", LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGolden(t, "reboot after compact crash", mineGolden(t, reborn.System(), sets), want)

	// A clean compaction now: WAL empties, answers unchanged, and the next
	// boot replays nothing.
	if _, err := reborn.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st := reborn.Stats()
	if st.WalRecords != 0 || st.WalBytes != 0 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	if st.PendingAdds != 0 || st.PendingDels != 0 {
		t.Fatalf("overlay not reset after compaction: %+v", st)
	}
	assertSameGolden(t, "after clean compaction", mineGolden(t, reborn.System(), sets), want)
	reborn.Close()

	final, err := OpenLive(dir, "tiny", LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if st := final.Stats(); st.RecoveryReplayed != 0 {
		t.Fatalf("RecoveryReplayed = %d after clean compaction", st.RecoveryReplayed)
	}
	assertSameGolden(t, "boot from compacted snapshot", mineGolden(t, final.System(), sets), want)
}
