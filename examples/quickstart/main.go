// Quickstart: load the bundled tiny knowledge base and mine referring
// expressions for the paper's running examples.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	remi "github.com/remi-kb/remi"
)

const ns = "http://tiny.demo/resource/"

func main() {
	sys, err := remi.GenerateDemo("tiny", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Loaded tiny KB: %d facts, %d entities, %d predicates\n\n",
		sys.NumFacts(), sys.NumEntities(), sys.NumPredicates())

	// Section 1 of the paper: "x is the capital of France" identifies Paris.
	show(sys, "Paris")

	// Section 2.2: Guyana and Suriname are the only South American
	// countries with a Germanic official language.
	show(sys, "Guyana", "Suriname")

	// Figure 1: Rennes and Nantes.
	show(sys, "Rennes", "Nantes")
}

func show(sys *remi.System, names ...string) {
	iris := make([]string, len(names))
	for i, n := range names {
		iris[i] = ns + n
	}
	res, err := sys.Mine(iris)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Targets: %v\n", names)
	if !res.Found {
		fmt.Println("  no referring expression exists")
		return
	}
	fmt.Printf("  RE : %s\n", res.Expression)
	fmt.Printf("  NL : %s\n", res.NL)
	fmt.Printf("  Ĉ  : %.2f bits (queue %d candidates, %d nodes visited)\n\n",
		res.Bits, res.Stats.Candidates, res.Stats.Visited)
}
