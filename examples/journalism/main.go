// Journalism: describe sets of entities in a DBpedia-like knowledge base
// the way an algorithmic-journalism pipeline would — generate a compact,
// reader-friendly identification for the subjects of a story (one of the
// applications motivating the paper).
//
//	go run ./examples/journalism
package main

import (
	"fmt"
	"log"
	"time"

	remi "github.com/remi-kb/remi"
)

func main() {
	// A seeded synthetic DBpedia-shaped KB (tens of thousands of facts).
	sys, err := remi.GenerateDemo("dbpedia", 7, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Story KB: %d facts over %d entities\n\n", sys.NumFacts(), sys.NumEntities())

	const ns = "http://dbpedia.demo/resource/"
	stories := [][]string{
		// A profile of one prominent person.
		{ns + "Person_1"},
		// A piece on two settlements.
		{ns + "Settlement_3", ns + "Settlement_7"},
		// Three films in a retrospective.
		{ns + "Film_2", ns + "Film_5", ns + "Film_9"},
		// A company-and-founder story.
		{ns + "Organization_4"},
	}

	for _, story := range stories {
		res, err := sys.Mine(story,
			remi.WithWorkers(4),
			remi.WithTimeout(20*time.Second),
			remi.WithTopK(3),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Subjects: %v\n", shorten(story))
		if !res.Found {
			fmt.Println("  (no unambiguous description exists — fall back to names)")
			continue
		}
		fmt.Printf("  lead:  %s\n", res.NL)
		fmt.Printf("  (formally %s — %.1f bits)\n", res.Expression, res.Bits)
		for _, alt := range res.Alternatives {
			fmt.Printf("  alt :  %s (%.1f bits)\n", alt.NL, alt.Bits)
		}
		fmt.Println()
	}
}

func shorten(iris []string) []string {
	out := make([]string, len(iris))
	for i, iri := range iris {
		out[i] = iri[len("http://dbpedia.demo/resource/"):]
	}
	return out
}
