// Extensions: the paper's Section 6 future-work directions, implemented —
// referring expressions with exceptions, disjunctive referring expressions,
// externally sourced prominence, and SPARQL query generation.
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	remi "github.com/remi-kb/remi"
)

const ns = "http://tiny.demo/resource/"

func main() {
	sys, err := remi.GenerateDemo("tiny", 1, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 1. SPARQL generation: every solution ships with a runnable query.
	res, err := sys.Mine([]string{ns + "Guyana", ns + "Suriname"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("── SPARQL for the Guyana/Suriname RE ──")
	fmt.Println(res.SPARQL)

	// 2. REs with exceptions: relax unambiguity when no crisp RE exists or
	// when a slightly leaky description is much simpler.
	relaxed, err := sys.Mine([]string{ns + "Rennes", ns + "Nantes"}, remi.WithExceptions(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n── {Rennes, Nantes} with ≤1 exception ──")
	fmt.Printf("RE: %s (%.2f bits)\n", relaxed.Expression, relaxed.Bits)
	if len(relaxed.Exceptions) > 0 {
		fmt.Printf("exceptions: %v\n", relaxed.Exceptions)
	} else {
		fmt.Println("(the strict RE was already the cheapest)")
	}

	// 3. Disjunctive REs: entities with nothing in common get split into
	// branches, each described on its own.
	disj, err := sys.MineDisjunctive([]string{ns + "Paris", ns + "Georgetown"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n── Disjunctive RE for {Paris, Georgetown} ──")
	if disj.Found {
		fmt.Printf("%s  (%.2f bits total)\n", disj.Format(), disj.Bits)
		for _, b := range disj.Branches {
			fmt.Printf("  branch %v: %s\n", shorten(b.Targets), b.NL)
		}
	}

	// 4. External prominence: make Epitech world-famous and watch the
	// preferred description change.
	if err := sys.SetProminence(map[string]float64{
		ns + "Epitech": 10000, ns + "France": 100, ns + "Paris": 90,
	}); err != nil {
		log.Fatal(err)
	}
	custom, err := sys.Mine([]string{ns + "Rennes", ns + "Nantes"}, remi.WithMetric(remi.MetricCustom))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n── {Rennes, Nantes} under custom prominence ──")
	fmt.Printf("RE: %s\n", custom.Expression)
}

func shorten(iris []string) []string {
	out := make([]string, len(iris))
	for i, s := range iris {
		out[i] = s[len(ns):]
	}
	return out
}
