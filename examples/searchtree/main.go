// Searchtree: a walk-through of Figure 1 of the paper — the DFS over
// conjunctions of subgraph expressions for {Rennes, Nantes}, with the
// pruning-by-depth and side-pruning events printed as they happen.
//
//	go run ./examples/searchtree
package main

import (
	"fmt"
	"log"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

func main() {
	d := datagen.TinyGeo()
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)

	id := func(name string) kb.EntID {
		e, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + name))
		if !ok {
			log.Fatalf("missing %s", name)
		}
		return e
	}
	targets := []kb.EntID{id("Rennes"), id("Nantes")}

	cfg := core.DefaultConfig()
	cfg.Trace = func(ev core.Event) {
		switch ev.Kind {
		case core.EventVisit:
			fmt.Printf("visit       %-70s Ĉ=%.2f\n", ev.Expression.Format(k), ev.Cost)
		case core.EventRE:
			fmt.Printf("RE!         %-70s Ĉ=%.2f\n", ev.Expression.Format(k), ev.Cost)
		case core.EventPruneSide:
			fmt.Printf("prune side  after %s\n", ev.Expression.Format(k))
		case core.EventPruneCost:
			fmt.Printf("prune cost  at %s (Ĉ=%.2f ≥ incumbent)\n", ev.Expression.Format(k), ev.Cost)
		case core.EventNewBest:
			fmt.Printf("new best    %-70s Ĉ=%.2f\n", ev.Expression.Format(k), ev.Cost)
		}
	}
	m := core.NewMiner(k, est, cfg)

	// Print the priority queue first (line 2 of Algorithm 1), like the
	// ordered ρ1, ρ2, ρ3 of Figure 1.
	cands, costs := m.RankedCandidates(targets)
	fmt.Println("Priority queue of common subgraph expressions (ascending Ĉ):")
	for i, g := range cands {
		fmt.Printf("  ρ%-3d Ĉ=%-7.2f %s\n", i+1, costs[i], g.Format(k))
	}
	fmt.Println("\nDFS exploration:")

	res, err := m.Mine(targets)
	if err != nil {
		log.Fatal(err)
	}
	if res.Found() {
		fmt.Printf("\nMost intuitive RE for {Rennes, Nantes}: %s  (Ĉ=%.2f bits)\n",
			res.Expression.Format(k), res.Bits)
		fmt.Printf("visited %d nodes, %d RE tests, %d side prunings, %d cost prunings\n",
			res.Stats.Visited, res.Stats.RETests, res.Stats.PrunedSide, res.Stats.PrunedCost)
	} else {
		fmt.Println("no RE found")
	}
}
