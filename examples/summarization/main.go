// Summarization: use REMI as an entity summarizer (the Section 4.1.4
// evaluation setting): the top-k most intuitive single-atom features of an
// entity, with both prominence metrics side by side.
//
//	go run ./examples/summarization
package main

import (
	"fmt"
	"log"

	remi "github.com/remi-kb/remi"
)

func main() {
	sys, err := remi.GenerateDemo("wikidata", 11, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KB: %d facts, %d entities\n\n", sys.NumFacts(), sys.NumEntities())

	const ns = "http://wikidata.demo/entity/"
	for _, entity := range []string{ns + "Human_1", ns + "City_1", ns + "Company_2"} {
		fmt.Printf("Summary of %s\n", entity[len(ns):])
		for _, metric := range []remi.Metric{remi.MetricFr, remi.MetricPr} {
			name := "Ĉfr"
			if metric == remi.MetricPr {
				name = "Ĉpr"
			}
			sum, err := sys.Summarize(entity, 5, remi.WithMetric(metric))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s top-5:\n", name)
			for _, e := range sum {
				fmt.Printf("    %-55s %s\n", shortPred(e.Predicate), e.Object)
			}
		}
		fmt.Println()
	}
}

func shortPred(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' || iri[i] == '#' {
			return iri[i+1:]
		}
	}
	return iri
}
