package remi

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus the ablation benchmarks DESIGN.md calls out. The heavyweight
// table regenerators live in internal/experiments (shared with the
// remi-bench command); the benchmarks here run them at a reduced scale so
// `go test -bench=.` completes on a laptop while exercising every code path.
//
//	go test -bench=. -benchmem
//	go run ./cmd/remi-bench all          # full tables with paper comparisons

import (
	"sync"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/amie"
	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/experiments"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// benchLab is shared across benchmarks (building the synthetic KBs once).
var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab() *experiments.Lab {
	benchLabOnce.Do(func() { benchLab = experiments.NewLab(42, 0.1) })
	return benchLab
}

// tinyMiner builds a miner over the TinyGeo KB.
func tinyMiner(b *testing.B, cfg core.Config) (*core.Miner, *kb.KB) {
	b.Helper()
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0.10
	k, err := d.BuildKB(opts)
	if err != nil {
		b.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)
	return core.NewMiner(k, est, cfg), k
}

func tinyIDs(b *testing.B, k *kb.KB, names ...string) []kb.EntID {
	b.Helper()
	out := make([]kb.EntID, len(names))
	for i, n := range names {
		id, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + n))
		if !ok {
			b.Fatalf("missing %s", n)
		}
		out[i] = id
	}
	return out
}

// --- Table 1: the language of subgraph expressions -------------------------

// BenchmarkTable1Enumeration measures the subgraphs-expressions routine
// (line 1 of Algorithm 1) over prominent entities of the DBpedia-like KB;
// the enumerated shapes are exactly the five rows of Table 1.
func BenchmarkTable1Enumeration(b *testing.B) {
	env := lab().DBpedia()
	ids := experiments.TopOfClass(env, "Person", 16)
	prominent := env.KB.ProminentSet(0.05)
	opts := core.EnumerateOptions{Language: core.ExtendedLanguage, Prominent: prominent}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(core.SubgraphsOf(env.KB, ids[i%len(ids)], opts))
	}
	b.ReportMetric(float64(total)/float64(b.N), "subgraphs/op")
}

// --- Figure 1: the DFS over conjunctions ------------------------------------

// BenchmarkFigure1DFS mines the Figure 1 target pair {Rennes, Nantes} on the
// tiny KB, exercising the priority queue, pruning by depth and side pruning.
func BenchmarkFigure1DFS(b *testing.B) {
	m, k := tinyMiner(b, core.DefaultConfig())
	targets := tinyIDs(b, k, "Rennes", "Nantes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mine(targets); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: evaluation of Ĉ ----------------------------------------------

// BenchmarkTable2RankingStudy runs the first user study (precision@k of Ĉ's
// subgraph-expression ranking against simulated users).
func BenchmarkTable2RankingStudy(b *testing.B) {
	l := lab()
	cfg := experiments.Table2Config{Sets: 4, UsersPerSet: 2, Seed: 202, CandidateCap: 2048}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2With(l, cfg)
		if len(rows) != 2 {
			b.Fatal("bad study output")
		}
	}
}

// --- Section 4.1.2: MAP study ------------------------------------------------

// BenchmarkSec412OutputStudy runs the MAP study (REMI's answer ranked among
// alternatives by simulated users).
func BenchmarkSec412OutputStudy(b *testing.B) {
	l := lab()
	cfg := experiments.MAPConfig{Sets: 3, UsersPerSet: 2, Seed: 412, MaxAlts: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Section412With(l, cfg)
		if res.Answers == 0 {
			b.Fatal("no answers")
		}
	}
}

// --- Section 4.1.3: perceived quality ----------------------------------------

// BenchmarkSec413PerceivedQuality runs the 1–5 grading study on the
// Wikidata-like KB.
func BenchmarkSec413PerceivedQuality(b *testing.B) {
	l := lab()
	cfg := experiments.ScoreConfig{PerClass: 2, UsersPerRE: 2, Seed: 413}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Section413With(l, cfg)
		if res.REs == 0 {
			b.Fatal("no REs graded")
		}
	}
}

// --- Table 3: entity summarization -------------------------------------------

// BenchmarkTable3Summarization compares FACES-like, LinkSUM-like and REMI
// against the simulated expert gold standard.
func BenchmarkTable3Summarization(b *testing.B) {
	l := lab()
	cfg := experiments.Table3Config{Entities: 8, Experts: 3, Seed: 303}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table3With(l, cfg)
		if len(rows) != 4 {
			b.Fatal("bad table 3 output")
		}
	}
}

// --- Table 4: runtime comparison ---------------------------------------------

// table4Sets samples the Table 4 workload once per benchmark run.
func table4Sets(b *testing.B, env *experiments.Env, n int) []experiments.EntitySet {
	b.Helper()
	return experiments.SampleSets(env, n, 404, 0)
}

func benchMine(b *testing.B, lang core.Language, workers int) {
	env := lab().DBpedia()
	sets := table4Sets(b, env, 8)
	cfg := core.DefaultConfig()
	cfg.Language = lang
	cfg.Workers = workers
	cfg.Timeout = 5 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := sets[i%len(sets)]
		m := core.NewMiner(env.KB, env.EstFr, cfg)
		if _, err := m.Mine(set.IDs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4StandardREMI times sequential REMI under the standard
// language bias (first row block of Table 4).
func BenchmarkTable4StandardREMI(b *testing.B) { benchMine(b, core.StandardLanguage, 1) }

// BenchmarkTable4StandardPREMI times P-REMI under the standard bias.
func BenchmarkTable4StandardPREMI(b *testing.B) { benchMine(b, core.StandardLanguage, 8) }

// BenchmarkTable4ExtendedREMI times sequential REMI under REMI's bias.
func BenchmarkTable4ExtendedREMI(b *testing.B) { benchMine(b, core.ExtendedLanguage, 1) }

// BenchmarkTable4ExtendedPREMI times P-REMI under REMI's bias.
func BenchmarkTable4ExtendedPREMI(b *testing.B) { benchMine(b, core.ExtendedLanguage, 8) }

// BenchmarkTable4AMIE times the AMIE+ baseline on the same sets (the slow
// column of Table 4; bounded by a tight timeout).
func BenchmarkTable4AMIE(b *testing.B) {
	env := lab().DBpedia()
	sets := table4Sets(b, env, 4)
	cfg := amie.DefaultConfig()
	cfg.Timeout = 2 * time.Second
	cfg.Workers = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := sets[i%len(sets)]
		m := amie.NewMiner(env.KB, env.PromFr, cfg)
		_ = m.Mine(set.IDs)
	}
}

// --- Eq. 1: power-law rank compression ----------------------------------------

// BenchmarkEq1PowerLawFit measures building the full prominence store
// (conditional rankings + per-predicate fits) for the DBpedia-like KB.
func BenchmarkEq1PowerLawFit(b *testing.B) {
	env := lab().DBpedia()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prom := prominence.Build(env.KB, prominence.Fr)
		if avg, n := prom.AverageFitR2(10); n == 0 || avg <= 0 {
			b.Fatal("no fits")
		}
	}
}

// --- Section 3.2: search-space census ------------------------------------------

// BenchmarkSec32SearchSpace runs the language-bias census behind the
// +40% / +270% observations.
func BenchmarkSec32SearchSpace(b *testing.B) {
	l := lab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.SearchSpaceCensus(l, 4, 32)
		if len(rows) != 3 {
			b.Fatal("bad census")
		}
	}
}

// --- Ablations ------------------------------------------------------------------

// BenchmarkAblationPruningProminentOn/Off isolates the Section 3.5.2
// heuristic that refuses to expand atoms with top-5% prominent objects.
func BenchmarkAblationPruningProminentOn(b *testing.B)  { benchProminent(b, 0.05) }
func BenchmarkAblationPruningProminentOff(b *testing.B) { benchProminent(b, 0) }

func benchProminent(b *testing.B, cutoff float64) {
	env := lab().DBpedia()
	ids := experiments.TopOfClass(env, "Settlement", 8)
	cfg := core.DefaultConfig()
	cfg.ProminentCutoff = cutoff
	cfg.Timeout = 10 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMiner(env.KB, env.EstFr, cfg)
		if _, err := m.Mine([]kb.EntID{ids[i%len(ids)]}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCacheOn/Off isolates the LRU query cache (Section 3.5.2).
func BenchmarkAblationCacheOn(b *testing.B)  { benchCache(b, 1<<16) }
func BenchmarkAblationCacheOff(b *testing.B) { benchCache(b, -1) }

func benchCache(b *testing.B, size int) {
	env := lab().DBpedia()
	sets := table4Sets(b, env, 6)
	cfg := core.DefaultConfig()
	cfg.CacheSize = size
	cfg.Timeout = 10 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMiner(env.KB, env.EstFr, cfg)
		if _, err := m.Mine(sets[i%len(sets)].IDs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDFSTree/Literal compares the tree-complete DFS with the
// verbatim Algorithm 2 scan.
func BenchmarkAblationDFSTree(b *testing.B)    { benchDFS(b, false) }
func BenchmarkAblationDFSLiteral(b *testing.B) { benchDFS(b, true) }

func benchDFS(b *testing.B, literal bool) {
	env := lab().DBpedia()
	sets := table4Sets(b, env, 6)
	cfg := core.DefaultConfig()
	cfg.LiteralAlg2 = literal
	cfg.Timeout = 10 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMiner(env.KB, env.EstFr, cfg)
		if _, err := m.Mine(sets[i%len(sets)].IDs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationQueueSorted/Unsorted isolates the ascending-Ĉ queue
// order (line 2 of Algorithm 1) that makes side/cost pruning effective.
func BenchmarkAblationQueueSorted(b *testing.B)   { benchQueueOrder(b, false) }
func BenchmarkAblationQueueUnsorted(b *testing.B) { benchQueueOrder(b, true) }

func benchQueueOrder(b *testing.B, unsorted bool) {
	env := lab().DBpedia()
	sets := table4Sets(b, env, 6)
	cfg := core.DefaultConfig()
	cfg.UnsortedQueue = unsorted
	cfg.Timeout = 10 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMiner(env.KB, env.EstFr, cfg)
		if _, err := m.Mine(sets[i%len(sets)].IDs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRankExact/Compressed compares exact conditional rankings
// with the Eq. 1 power-law compression used to price tail entities.
func BenchmarkAblationRankExact(b *testing.B)      { benchRankMode(b, complexity.Exact) }
func BenchmarkAblationRankCompressed(b *testing.B) { benchRankMode(b, complexity.Compressed) }

func benchRankMode(b *testing.B, mode complexity.Mode) {
	env := lab().DBpedia()
	sets := table4Sets(b, env, 6)
	est := complexity.New(env.KB, env.PromFr, mode)
	cfg := core.DefaultConfig()
	cfg.Timeout = 10 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMiner(env.KB, est, cfg)
		if _, err := m.Mine(sets[i%len(sets)].IDs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPREMIScaling sweeps the worker count (Section 3.4).
func BenchmarkPREMIScaling1(b *testing.B) { benchMine(b, core.ExtendedLanguage, 1) }
func BenchmarkPREMIScaling2(b *testing.B) { benchMine(b, core.ExtendedLanguage, 2) }
func BenchmarkPREMIScaling4(b *testing.B) { benchMine(b, core.ExtendedLanguage, 4) }
func BenchmarkPREMIScaling8(b *testing.B) { benchMine(b, core.ExtendedLanguage, 8) }
