package remi

// Live knowledge bases: the crash-safe mutable layer over the immutable
// snapshot machinery. A LiveKB owns three pieces of state in one directory:
//
//	<dir>/<name>.snap   the immutable base (CSR snapshot, mmap-opened)
//	<dir>/<name>.wal    the write-ahead log of mutations since the snapshot
//	in memory           a delta.Overlay holding the same mutations, applied
//
// The durability contract is ack-after-fsync: a mutation batch is appended
// and fsynced to the WAL before it is applied in memory or acknowledged to
// the caller, so an acknowledged fact survives any crash. Recovery is
// replay: boot opens the snapshot (or the original source when no snapshot
// exists yet), then re-applies every intact WAL record to a fresh overlay.
// Replay is idempotent — mutations are upserts/retracts, so a record that
// was applied before the crash re-applies as a no-op — which makes the
// at-least-once semantics of a torn-tail-truncating log safe.
//
// Compaction (Compact) folds base+delta into a new snapshot: write to a
// temp file, fsync, rename over <name>.snap, and only then truncate the
// WAL. A crash between the rename and the truncate leaves both a complete
// snapshot and a stale WAL; the next boot replays the WAL onto the new
// snapshot and idempotence absorbs the overlap.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/kb/delta"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/server/faults"
	"github.com/remi-kb/remi/internal/wal"
)

// LiveOptions tunes OpenLive.
type LiveOptions struct {
	// Source is the fallback KB source (N-Triples, HDT by extension, or a
	// snapshot sniffed by magic) parsed when <dir>/<name>.snap does not
	// exist yet — the first boot of a live KB. Later boots prefer the
	// snapshot, which already folds every compacted mutation.
	Source string
	// Build are the KB build options used when parsing Source (nil means
	// kb.DefaultOptions(): inverse materialization for the top 1%).
	Build *kb.Options
}

// LiveStats is a point-in-time snapshot of a LiveKB's counters.
type LiveStats struct {
	// FactsApplied counts mutation ops acknowledged since this process
	// opened the KB (each op of each acked batch, no-ops included).
	FactsApplied int64
	// WalBytes and WalRecords size the write-ahead log right now; both drop
	// to zero after a successful compaction.
	WalBytes   int64
	WalRecords int64
	// RecoveryReplayed counts the WAL records replayed at boot;
	// RecoveryDroppedBytes the torn tail truncated by recovery.
	RecoveryDroppedBytes int64
	RecoveryReplayed     int64
	// Compactions counts successful Compact calls since open.
	Compactions int64
	// PendingAdds/PendingDels/NewTerms/NewPreds size the in-memory overlay
	// (what the next compaction will fold into the snapshot).
	PendingAdds int
	PendingDels int
	NewTerms    int
	NewPreds    int
}

// LiveKB is a mutable, WAL-backed knowledge base. All methods are safe for
// concurrent use; mutations and compactions are serialized internally.
// Reads are served from immutable Systems returned by Apply/Compact/System
// — the LiveKB itself is only the mutation plane.
type LiveKB struct {
	mu        sync.Mutex
	dir, name string
	buildOpts kb.Options

	log     *wal.Log
	base    *kb.KB
	overlay *delta.Overlay
	cur     *System

	factsApplied     int64
	recoveryReplayed int64
	recoveryDropped  int64
	compactions      int64
	closed           bool
}

func (l *LiveKB) snapPath() string { return filepath.Join(l.dir, l.name+".snap") }
func (l *LiveKB) walPath() string  { return filepath.Join(l.dir, l.name+".wal") }

// walRecord is the JSON payload of one WAL record: a mutation batch with
// the request id that acked it, terms in N-Triples syntax. JSON+text keeps
// records self-describing across format evolution — the WAL is small and
// short-lived (truncated at every compaction), so wire compactness does
// not matter the way it does for the snapshot.
type walRecord struct {
	RequestID string  `json:"request_id,omitempty"`
	Ops       []walOp `json:"ops"`
}

type walOp struct {
	Op string `json:"op"` // "upsert" | "retract"
	S  string `json:"s"`
	P  string `json:"p"`
	O  string `json:"o"`
}

func encodeRecord(ops []delta.Op, requestID string) ([]byte, error) {
	rec := walRecord{RequestID: requestID, Ops: make([]walOp, len(ops))}
	for i, op := range ops {
		verb := "upsert"
		if op.Retract {
			verb = "retract"
		}
		rec.Ops[i] = walOp{Op: verb, S: op.S.String(), P: op.P.String(), O: op.O.String()}
	}
	return json.Marshal(rec)
}

func decodeRecord(payload []byte) ([]delta.Op, string, error) {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, "", fmt.Errorf("remi: wal record: %w", err)
	}
	ops := make([]delta.Op, len(rec.Ops))
	for i, wo := range rec.Ops {
		op := delta.Op{}
		switch wo.Op {
		case "", "upsert":
		case "retract":
			op.Retract = true
		default:
			return nil, "", fmt.Errorf("remi: wal record: unknown op %q", wo.Op)
		}
		var err error
		if op.S, err = rdf.ParseTerm(wo.S); err != nil {
			return nil, "", fmt.Errorf("remi: wal record subject: %w", err)
		}
		if op.P, err = rdf.ParseTerm(wo.P); err != nil {
			return nil, "", fmt.Errorf("remi: wal record predicate: %w", err)
		}
		if op.O, err = rdf.ParseTerm(wo.O); err != nil {
			return nil, "", fmt.Errorf("remi: wal record object: %w", err)
		}
		ops[i] = op
	}
	return ops, rec.RequestID, nil
}

// OpenLive opens (or creates) the live KB <name> rooted at dir: the base
// loads from <dir>/<name>.snap when present (the product of the last
// compaction), else from opts.Source; then the WAL is opened, its torn
// tail truncated, and every intact record replayed into the overlay.
// Records that no longer validate (written by an older build against a
// different base) are skipped rather than failing the boot — the WAL is a
// redo log, not a schema.
func OpenLive(dir, name string, opts LiveOptions) (*LiveKB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("remi: live dir: %w", err)
	}
	l := &LiveKB{dir: dir, name: name}
	if opts.Build != nil {
		l.buildOpts = *opts.Build
	} else {
		l.buildOpts = kb.DefaultOptions()
	}

	base, err := l.loadBase(opts.Source)
	if err != nil {
		return nil, err
	}
	log, rec, err := wal.Open(l.walPath())
	if err != nil {
		base.Close()
		return nil, fmt.Errorf("remi: live KB %q: %w", name, err)
	}
	l.log, l.base = log, base
	l.overlay = delta.New(base)
	l.recoveryDropped = rec.DroppedBytes
	for _, payload := range rec.Records {
		ops, _, err := decodeRecord(payload)
		if err != nil {
			continue // unreadable but CRC-intact record from an older build
		}
		if _, err := l.overlay.Apply(ops); err != nil {
			continue // no longer valid against this base
		}
		l.recoveryReplayed++
	}
	sys, err := l.materializeLocked()
	if err != nil {
		l.log.Close()
		base.Close()
		return nil, err
	}
	l.cur = sys
	return l, nil
}

// loadBase opens the compacted snapshot when one exists, else the source.
func (l *LiveKB) loadBase(source string) (*kb.KB, error) {
	if _, err := os.Stat(l.snapPath()); err == nil {
		k, err := kb.OpenSnapshot(l.snapPath())
		if err != nil {
			return nil, fmt.Errorf("remi: live KB %q: opening snapshot: %w", l.name, err)
		}
		return k, nil
	}
	if source == "" {
		return nil, fmt.Errorf("remi: live KB %q: no snapshot at %s and no source configured", l.name, l.snapPath())
	}
	if kb.IsSnapshotFile(source) {
		k, err := kb.OpenSnapshot(source)
		if err != nil {
			return nil, fmt.Errorf("remi: live KB %q: opening source snapshot: %w", l.name, err)
		}
		return k, nil
	}
	f, err := os.Open(source)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	k, err := kb.BuildStreaming(rdf.NewReader(f), l.buildOpts)
	if err != nil {
		return nil, fmt.Errorf("remi: live KB %q: parsing %s: %w", l.name, source, err)
	}
	return k, nil
}

// Name returns the KB's registry name; Dir its state directory.
func (l *LiveKB) Name() string { return l.name }

// Dir returns the directory holding the KB's snapshot and WAL.
func (l *LiveKB) Dir() string { return l.dir }

// System returns the current materialized System (base + every applied
// mutation). The returned System is immutable and stays valid after
// further mutations; each mutation batch produces a new one.
func (l *LiveKB) System() *System {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

// materializeLocked folds the overlay into a fresh System. Callers hold
// l.mu. The result always owns its KB (ApplyPatch never returns the base
// itself), so retiring a swapped-out System can Close it unconditionally.
func (l *LiveKB) materializeLocked() (*System, error) {
	k, err := l.overlay.Materialize()
	if err != nil {
		return nil, err
	}
	return fromKB(k), nil
}

// Apply durably applies one mutation batch: validate, fsync to the WAL
// (the ack point), fold into the overlay, materialize. It returns the new
// System serving base+delta and the number of ops that changed state
// (idempotent re-sends ack with changed=0). On error nothing is
// acknowledged: a validation or staging failure writes nothing, and a WAL
// failure may leave an unacked record that replay surfaces later — which
// idempotence makes harmless.
func (l *LiveKB) Apply(ctx context.Context, ops []delta.Op, requestID string) (sys *System, changed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, 0, fmt.Errorf("remi: live KB %q is closed", l.name)
	}
	if len(ops) == 0 {
		return l.cur, 0, nil
	}
	if err := l.overlay.Validate(ops); err != nil {
		return nil, 0, err
	}
	// delta.apply fires before the WAL write: a staging failure must leave
	// no trace on disk.
	if err := faults.Fire(ctx, faults.DeltaApply); err != nil {
		return nil, 0, fmt.Errorf("remi: staging mutation batch: %w", err)
	}
	payload, err := encodeRecord(ops, requestID)
	if err != nil {
		return nil, 0, err
	}
	if err := l.log.Append(ctx, payload); err != nil {
		return nil, 0, fmt.Errorf("remi: wal append: %w", err)
	}
	// The batch is durable: from here on nothing may fail. Validate already
	// passed, so overlay.Apply cannot error.
	changed, err = l.overlay.Apply(ops)
	if err != nil {
		return nil, 0, fmt.Errorf("remi: applying validated batch (invariant violation): %w", err)
	}
	sys, err = l.materializeLocked()
	if err != nil {
		return nil, 0, fmt.Errorf("remi: materializing after apply (invariant violation): %w", err)
	}
	l.factsApplied += int64(len(ops))
	l.cur = sys
	return sys, changed, nil
}

// Compact folds base+delta into a new snapshot and truncates the WAL, in
// that order: the snapshot is written to a temp file and atomically
// renamed over <name>.snap, and only once it is durable does the WAL
// shrink. A crash (or injected fault) after the rename but before the
// truncate loses nothing — the next boot opens the new snapshot and
// replays the stale WAL records as no-ops. On success the returned System
// serves from the new snapshot and the overlay is empty.
func (l *LiveKB) Compact(ctx context.Context) (*System, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("remi: live KB %q is closed", l.name)
	}
	folded, err := l.overlay.Materialize()
	if err != nil {
		return nil, err
	}
	if err := folded.WriteSnapshotFile(l.snapPath()); err != nil {
		folded.Close()
		return nil, fmt.Errorf("remi: writing compacted snapshot: %w", err)
	}
	if err := faults.Fire(ctx, faults.CompactCrash); err != nil {
		folded.Close()
		return nil, fmt.Errorf("remi: compaction interrupted after snapshot publish (WAL intact; reboot replays it idempotently): %w", err)
	}
	if err := l.log.Truncate(); err != nil {
		folded.Close()
		return nil, fmt.Errorf("remi: truncating wal after compaction: %w", err)
	}
	newBase, err := kb.OpenSnapshot(l.snapPath())
	if err != nil {
		folded.Close()
		return nil, fmt.Errorf("remi: reopening compacted snapshot: %w", err)
	}
	folded.Close()
	oldBase := l.base
	l.base = newBase
	l.overlay = delta.New(newBase)
	l.compactions++
	sys, err := l.materializeLocked()
	if err != nil {
		return nil, fmt.Errorf("remi: materializing after compaction: %w", err)
	}
	l.cur = sys
	// Generations derived from the old base hold their own snapshot refs;
	// dropping ours reclaims the old mapping once they retire.
	oldBase.Close()
	return sys, nil
}

// Stats snapshots the KB's live counters.
func (l *LiveKB) Stats() LiveStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LiveStats{
		FactsApplied:         l.factsApplied,
		WalBytes:             l.log.Size(),
		WalRecords:           l.log.Records(),
		RecoveryDroppedBytes: l.recoveryDropped,
		RecoveryReplayed:     l.recoveryReplayed,
		Compactions:          l.compactions,
		PendingAdds:          l.overlay.PendingAdds(),
		PendingDels:          l.overlay.PendingDels(),
		NewTerms:             l.overlay.NewTerms(),
		NewPreds:             l.overlay.NewPreds(),
	}
}

// Close releases the WAL handle and the base KB reference. Systems handed
// out by Apply/Compact/System stay valid (they own their references) but
// no further mutations are accepted.
func (l *LiveKB) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.log.Close()
	if cerr := l.base.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close releases the System's reference on its backing snapshot mapping,
// if any (Systems built from parsed triples hold none and Close is a
// no-op). Callers close a System only once nothing is still mining on it;
// the server retires swapped-out generations after a grace period.
func (s *System) Close() error { return s.kb.Close() }
