package remi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/summarize"
)

// ErrUnknownEntity is wrapped by Mine, Summarize and Describe when a target
// IRI does not name an entity of the loaded KB; test with errors.Is.
var ErrUnknownEntity = errors.New("remi: unknown entity")

// ErrEmptyTargetSet marks a target set with no entities inside a MineBatch
// call (the per-set analogue of the error Mine returns for empty input).
var ErrEmptyTargetSet = errors.New("remi: empty target set")

// ErrMinePanicked marks a per-set mining panic recovered inside MineBatch:
// the failing set carries this error while the rest of the batch completes.
var ErrMinePanicked = errors.New("remi: mining run panicked")

// MineOption customizes one Mine or Summarize call.
type MineOption func(*mineConfig)

type mineConfig struct {
	metric     Metric
	language   Language
	workers    int
	timeout    time.Duration
	topK       int
	exact      bool
	cutoff     float64
	maxCands   int
	exceptions int
	batchConc  int
	progress   func(Progress)
}

func defaultMineConfig() mineConfig {
	return mineConfig{metric: MetricFr, language: LanguageExtended, workers: 1, cutoff: 0.05}
}

// WithMetric selects Ĉfr (default) or Ĉpr.
func WithMetric(m Metric) MineOption { return func(c *mineConfig) { c.metric = m } }

// WithLanguage selects REMI's extended bias (default) or the standard bias.
func WithLanguage(l Language) MineOption { return func(c *mineConfig) { c.language = l } }

// WithWorkers enables P-REMI with n parallel exploration threads.
func WithWorkers(n int) MineOption { return func(c *mineConfig) { c.workers = n } }

// WithTimeout bounds the mining call (0 = unlimited). Inside MineBatch the
// budget applies per target set, not to the batch as a whole.
func WithTimeout(d time.Duration) MineOption { return func(c *mineConfig) { c.timeout = d } }

// WithBatchConcurrency bounds the worker pool MineBatch fans its target sets
// across (0 = GOMAXPROCS, 1 = serial). Ignored by Mine and MineContext.
func WithBatchConcurrency(n int) MineOption { return func(c *mineConfig) { c.batchConc = n } }

// WithTopK also returns the k-1 next-best referring expressions.
func WithTopK(k int) MineOption { return func(c *mineConfig) { c.topK = k } }

// WithExactRanks disables the Eq. 1 power-law rank compression and uses the
// exact conditional rankings (slower to build, slightly sharper Ĉ).
func WithExactRanks() MineOption { return func(c *mineConfig) { c.exact = true } }

// WithProminentCutoff overrides the fraction of top entities whose atoms
// are not expanded (Section 3.5.2; default 0.05, 0 disables the heuristic).
func WithProminentCutoff(f float64) MineOption { return func(c *mineConfig) { c.cutoff = f } }

// WithMaxCandidates caps the priority queue (0 = unlimited).
func WithMaxCandidates(n int) MineOption { return func(c *mineConfig) { c.maxCands = n } }

// Progress is one coarse search-progress notification delivered to a
// WithProgress subscriber while a mine is still running.
type Progress struct {
	// Kind currently is always "new_best": the search's incumbent solution
	// improved. More kinds may be added; subscribers should ignore unknown
	// ones.
	Kind string
	// Expression is the formal rendering of the new incumbent.
	Expression string
	// Bits is its estimated complexity Ĉ.
	Bits float64
}

// WithProgress streams coarse search progress (currently: each improvement
// of the incumbent solution) to fn while the mine runs. Delivery is
// synchronous from the search loop, so fn must be fast; it is driven by the
// sequential miner only (WithWorkers > 1 mines without progress events).
// The subscription is mask-narrowed inside the core, so it adds no per-node
// allocations to the search hot path. Within MineBatch, sets may run
// concurrently and share fn, which must then be safe for concurrent use.
func WithProgress(fn func(Progress)) MineOption { return func(c *mineConfig) { c.progress = fn } }

// Solution is one referring expression with its complexity and renderings.
type Solution struct {
	// Expression is the formal rendering, e.g.
	// "cityIn(x, France) ∧ mayor(x, y) ∧ party(y, Socialist)".
	Expression string
	// Subgraphs lists the component subgraph expressions.
	Subgraphs []string
	// NL is an automatic English verbalization.
	NL string
	// SPARQL is an equivalent SELECT query over the original data (inverse
	// predicates are folded back into base triple patterns).
	SPARQL string
	// Bits is the estimated Kolmogorov complexity Ĉ.
	Bits float64
	// Atoms counts atoms across the expression.
	Atoms int
}

// MineStats summarizes the search effort.
type MineStats struct {
	Candidates  int
	QueueBuild  time.Duration
	Search      time.Duration
	Visited     uint64
	RETests     uint64
	TimedOut    bool
	CacheHits   uint64
	CacheMisses uint64
}

// Result is the outcome of one Mine call.
type Result struct {
	// Found is false when no referring expression exists for the targets.
	Found bool
	// Solution is the least complex RE (zero value when Found is false).
	Solution
	// Alternatives holds the next-best REs when WithTopK was used.
	Alternatives []Solution
	// Exceptions lists the extra entities matched when WithExceptions
	// allowed a relaxed RE (empty for strict REs).
	Exceptions []string
	Stats      MineStats
}

// Mine returns the most intuitive referring expression for the target
// entities, identified by their IRIs.
func (s *System) Mine(targetIRIs []string, opts ...MineOption) (*Result, error) {
	return s.MineContext(context.Background(), targetIRIs, opts...)
}

// MineContext is Mine under a caller-controlled context: cancellation or a
// context deadline stops the underlying search promptly (the partial result
// is returned with Stats.TimedOut set), so servers can tie a mining run to
// the lifetime of an HTTP request. WithTimeout still applies on top of ctx;
// whichever limit fires first ends the run.
func (s *System) MineContext(ctx context.Context, targetIRIs []string, opts ...MineOption) (*Result, error) {
	cfg := defaultMineConfig()
	for _, o := range opts {
		o(&cfg)
	}
	targets := make([]kb.EntID, 0, len(targetIRIs))
	for _, iri := range targetIRIs {
		id, ok := s.kb.EntityID(rdf.NewIRI(iri))
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownEntity, iri)
		}
		targets = append(targets, id)
	}

	est, err := s.estimator(cfg)
	if err != nil {
		return nil, err
	}
	miner := core.NewMiner(s.kb, est, s.coreConfig(cfg))
	res, err := miner.MineContext(ctx, targets)
	if err != nil {
		return nil, err
	}
	return s.resultOf(res, cfg, targets), nil
}

// resultOf converts a core result to the facade form (renderings, SPARQL,
// exceptions) — the single conversion shared by MineContext and MineBatch,
// so batch responses are byte-identical to sequential ones.
func (s *System) resultOf(res *core.Result, cfg mineConfig, targets []kb.EntID) *Result {
	out := &Result{
		Found: res.Found(),
		Stats: MineStats{
			Candidates:  res.Stats.Candidates,
			QueueBuild:  res.Stats.QueueBuild,
			Search:      res.Stats.Search,
			Visited:     res.Stats.Visited,
			RETests:     res.Stats.RETests,
			TimedOut:    res.Stats.TimedOut,
			CacheHits:   res.Stats.CacheHits,
			CacheMisses: res.Stats.CacheMisses,
		},
	}
	if res.Found() {
		out.Solution = s.solution(res.Expression, res.Bits)
		for _, alt := range res.Solutions[1:] {
			out.Alternatives = append(out.Alternatives, s.solution(alt.Expression, alt.Bits))
		}
		if cfg.exceptions > 0 {
			out.Exceptions = s.exceptionsOf(res.Expression, targets)
		}
	}
	return out
}

// BatchEntry is the outcome of one target set of a MineBatch call.
type BatchEntry struct {
	// Result is set when the set was mined (or shared a search with an
	// identical set); nil when Err is set.
	Result *Result
	// Err isolates per-set failures: an unknown target IRI
	// (ErrUnknownEntity) or an empty set (ErrEmptyTargetSet). Other sets of
	// the batch are unaffected.
	Err error
	// Deduplicated marks a set served by an identical earlier set of the
	// same batch.
	Deduplicated bool
}

// BatchResult is the outcome of MineBatch: one entry per input set, in
// input order, plus batch-level aggregates.
type BatchResult struct {
	Entries []BatchEntry
	// Deduped counts entries served by an identical earlier set.
	Deduped int
	// QueueBuild and Search sum the per-set phase times of the searches the
	// batch actually executed (deduplicated sets add nothing).
	QueueBuild time.Duration
	Search     time.Duration
	// CacheHits and CacheMisses are the exact evaluator totals across the
	// whole batch. Per-entry stats carry per-set deltas, which may
	// attribute a concurrent neighbor's lookups; these totals never
	// double-count.
	CacheHits   uint64
	CacheMisses uint64
}

// MineBatch mines a referring expression for every target set in one call.
// A single miner serves the whole batch, so the per-KB work that repeated
// MineContext calls would redo is shared: the evaluator's binding-set cache
// stays warm across sets (striped with miss coalescing when sets run
// concurrently — see WithBatchConcurrency), identical sets collapse onto one
// search, and sets sharing their first target share the candidate
// enumeration behind the queue build. Per-set results are byte-identical to
// sequential MineContext calls.
//
// Failures are isolated per set (BatchEntry.Err); MineBatch itself errors
// only on invalid options. Cancelling ctx stops every set; WithTimeout
// budgets each set separately.
func (s *System) MineBatch(ctx context.Context, targetSets [][]string, opts ...MineOption) (*BatchResult, error) {
	return s.MineBatchEach(ctx, targetSets, nil, opts...)
}

// MineBatchEach is MineBatch with per-set streaming delivery: each is
// invoked once per input set, as soon as that set's entry is known, while
// later sets may still be mining. Invocations are serialized — never
// concurrent with each other — so the callback may write shared state
// without locking; entries for invalid sets (unknown IRI, empty set) are
// delivered before any search starts. The returned BatchResult still holds
// every entry in input order. A nil each makes it exactly MineBatch.
func (s *System) MineBatchEach(ctx context.Context, targetSets [][]string, each func(i int, e BatchEntry), opts ...MineOption) (*BatchResult, error) {
	cfg := defaultMineConfig()
	for _, o := range opts {
		o(&cfg)
	}
	est, err := s.estimator(cfg)
	if err != nil {
		return nil, err
	}
	miner := core.NewMiner(s.kb, est, s.coreConfig(cfg))

	idSets := make([][]kb.EntID, len(targetSets))
	resolveErrs := make([]error, len(targetSets))
	for i, iris := range targetSets {
		ids := make([]kb.EntID, 0, len(iris))
		for _, iri := range iris {
			id, ok := s.kb.EntityID(rdf.NewIRI(iri))
			if !ok {
				resolveErrs[i] = fmt.Errorf("%w %q", ErrUnknownEntity, iri)
				ids = nil
				break
			}
			ids = append(ids, id)
		}
		idSets[i] = ids // nil/empty sets come back as ErrNoTargets outcomes
	}

	// entryOf maps one core outcome to the facade entry. Result conversion
	// is cached per *core.Result (in-batch repeats share it), so calling it
	// twice for a slot — once for streaming, once for the returned slice —
	// does the expensive rendering work only once. The core serializes each
	// callbacks, so convMu only guards against the final assembly loop.
	var convMu sync.Mutex
	conv := make(map[*core.Result]*Result, len(targetSets))
	entryOf := func(i int, o core.BatchOutcome) BatchEntry {
		switch {
		case resolveErrs[i] != nil:
			return BatchEntry{Err: resolveErrs[i]}
		case errors.Is(o.Err, core.ErrNoTargets):
			return BatchEntry{Err: ErrEmptyTargetSet}
		case errors.Is(o.Err, core.ErrMinePanic):
			return BatchEntry{Err: fmt.Errorf("%w: %v", ErrMinePanicked, o.Err)}
		case o.Err != nil:
			return BatchEntry{Err: fmt.Errorf("remi: %w", o.Err)}
		default:
			convMu.Lock()
			res, seen := conv[o.Result]
			if !seen {
				res = s.resultOf(o.Result, cfg, idSets[i])
				conv[o.Result] = res
			}
			convMu.Unlock()
			return BatchEntry{Result: res, Deduplicated: o.Deduplicated}
		}
	}
	var coreEach func(int, core.BatchOutcome)
	if each != nil {
		coreEach = func(slot int, o core.BatchOutcome) { each(slot, entryOf(slot, o)) }
	}

	outs := miner.MineBatchEach(ctx, idSets, cfg.batchConc, coreEach)
	// The miner is exclusive to this call, so the evaluator delta across it
	// is the batch's exact cache traffic.
	_, brHits, brMisses := miner.Ev.Stats()
	br := &BatchResult{Entries: make([]BatchEntry, len(targetSets))}
	br.CacheHits, br.CacheMisses = brHits, brMisses
	aggSeen := make(map[*core.Result]bool, len(outs))
	for i, o := range outs {
		e := entryOf(i, o)
		br.Entries[i] = e
		if e.Err != nil {
			continue
		}
		if !aggSeen[o.Result] {
			aggSeen[o.Result] = true
			br.QueueBuild += e.Result.Stats.QueueBuild
			br.Search += e.Result.Stats.Search
		}
		if e.Deduplicated {
			br.Deduped++
		}
	}
	return br, nil
}

// exceptionsOf lists the entities matched by e beyond the targets.
func (s *System) exceptionsOf(e expr.Expression, targets []kb.EntID) []string {
	bound := expr.NewEvaluator(s.kb, 256).ExpressionBindings(e)
	inT := make(map[kb.EntID]bool, len(targets))
	for _, t := range targets {
		inT[t] = true
	}
	var out []string
	bound.Iterate(func(b kb.EntID) bool {
		if !inT[b] {
			out = append(out, s.kb.Term(b).Value)
		}
		return true
	})
	return out
}

func (s *System) solution(e expr.Expression, bits float64) Solution {
	subs := make([]string, len(e))
	for i, g := range e {
		subs[i] = g.Format(s.kb)
	}
	return Solution{
		Expression: e.Format(s.kb),
		Subgraphs:  subs,
		NL:         s.verb.Expression(e),
		SPARQL:     s.sparqlOf(e),
		Bits:       bits,
		Atoms:      e.Atoms(),
	}
}

func (s *System) estimator(cfg mineConfig) (*complexity.Estimator, error) {
	var est *complexity.Estimator
	switch cfg.metric {
	case MetricPr:
		est = s.prEstimator()
	case MetricCustom:
		if s.estCustom == nil {
			return nil, fmt.Errorf("remi: WithMetric(MetricCustom) requires a prior SetProminence call to install the custom scores")
		}
		est = s.estCustom
	default:
		est = s.estFr
	}
	if cfg.exact {
		est = complexity.New(est.K, est.Prom, complexity.Exact)
	}
	return est, nil
}

func (s *System) coreConfig(cfg mineConfig) core.Config {
	c := core.DefaultConfig()
	if cfg.language == LanguageStandard {
		c.Language = core.StandardLanguage
	}
	c.Workers = cfg.workers
	c.Timeout = cfg.timeout
	c.TopK = cfg.topK
	c.ProminentCutoff = cfg.cutoff
	c.MaxCandidates = cfg.maxCands
	c.MaxExceptions = cfg.exceptions
	if cfg.progress != nil {
		fn := cfg.progress
		// Narrow the mask so the miner skips the per-node expression Clone
		// for every kind the subscriber does not want.
		c.TraceMask = core.MaskOf(core.EventNewBest)
		c.Trace = func(ev core.Event) {
			fn(Progress{Kind: "new_best", Expression: ev.Expression.Format(s.kb), Bits: ev.Cost})
		}
	}
	return c
}

// SummaryEntry is one predicate–object feature in an entity summary.
type SummaryEntry struct {
	Predicate string
	Object    string
}

// Summarize returns the size most intuitive single-atom features of an
// entity — REMI as an entity summarizer, the Section 4.1.4 usage (standard
// bias, rdf:type and inverse predicates excluded).
func (s *System) Summarize(entityIRI string, size int, opts ...MineOption) ([]SummaryEntry, error) {
	return s.SummarizeContext(context.Background(), entityIRI, size, opts...)
}

// SummarizeContext is Summarize under a caller-controlled context. Feature
// ranking is a single pass over the entity's facts, so the context is
// checked once up front (a cancelled request never starts the work) rather
// than threaded through the ranking itself.
func (s *System) SummarizeContext(ctx context.Context, entityIRI string, size int, opts ...MineOption) ([]SummaryEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := defaultMineConfig()
	for _, o := range opts {
		o(&cfg)
	}
	id, ok := s.kb.EntityID(rdf.NewIRI(entityIRI))
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownEntity, entityIRI)
	}
	est, err := s.estimator(cfg)
	if err != nil {
		return nil, err
	}
	sum := summarize.REMITop(s.kb, est, id, size)
	out := make([]SummaryEntry, len(sum))
	for i, pair := range sum {
		out[i] = SummaryEntry{
			Predicate: s.kb.PredicateName(pair.P),
			Object:    s.kb.Term(pair.O).LocalName(),
		}
	}
	return out, nil
}

// Describe verbalizes the facts of an entity (a convenience for examples
// and CLIs).
func (s *System) Describe(entityIRI string) (string, error) {
	id, ok := s.kb.EntityID(rdf.NewIRI(entityIRI))
	if !ok {
		return "", fmt.Errorf("%w %q", ErrUnknownEntity, entityIRI)
	}
	return s.kb.Label(id), nil
}
