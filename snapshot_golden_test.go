package remi

// End-to-end snapshot regression: a System saved to a snapshot and reloaded
// through the facade (format auto-detection included) must mine exactly the
// golden expressions of the original — the on-disk round trip may change
// the physical KB representation, never a mined result.

import (
	"math"
	"path/filepath"
	"testing"

	"github.com/remi-kb/remi/internal/experiments"
	"github.com/remi-kb/remi/internal/kb"
)

func TestSnapshotGoldenTinyMining(t *testing.T) {
	sys, err := GenerateDemo("tiny", 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.kbsnap") // deliberately not .nt/.hdt: magic sniffing must route it
	if err := sys.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if !kb.IsSnapshotFile(path) {
		t.Fatal("saved snapshot not recognized")
	}
	reloaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.NumFacts() != sys.NumFacts() || reloaded.NumEntities() != sys.NumEntities() ||
		reloaded.NumPredicates() != sys.NumPredicates() {
		t.Fatalf("reloaded sizes differ: %d/%d facts, %d/%d entities, %d/%d predicates",
			reloaded.NumFacts(), sys.NumFacts(), reloaded.NumEntities(), sys.NumEntities(),
			reloaded.NumPredicates(), sys.NumPredicates())
	}
	for _, want := range goldenTiny {
		iris := make([]string, len(want.targets))
		for i, n := range want.targets {
			iris[i] = "http://tiny.demo/resource/" + n
		}
		orig, err := sys.Mine(iris)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reloaded.Mine(iris)
		if err != nil {
			t.Fatal(err)
		}
		if got.Expression != orig.Expression {
			t.Errorf("%v: snapshot expression %q, original %q", want.targets, got.Expression, orig.Expression)
		}
		if got.NL != orig.NL {
			t.Errorf("%v: snapshot NL %q, original %q", want.targets, got.NL, orig.NL)
		}
		if math.Abs(got.Bits-orig.Bits) > goldenBitsTol {
			t.Errorf("%v: snapshot bits %f, original %f", want.targets, got.Bits, orig.Bits)
		}
	}
}

// TestSnapshotGoldenDBpediaMining repeats the check on the DBpedia-like lab
// KB against the recorded goldens themselves, via the heap fallback path for
// variety. Targets are resolved by IRI so the check is independent of
// dictionary id assignment.
func TestSnapshotGoldenDBpediaMining(t *testing.T) {
	env := lab().DBpedia()
	sets := experiments.SampleSets(env, 8, 404, 0)
	if len(sets) != len(goldenDBpedia) {
		t.Fatalf("sampled %d sets, want %d", len(sets), len(goldenDBpedia))
	}
	path := filepath.Join(t.TempDir(), "dbp.snap")
	if err := env.KB.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	k, err := kb.OpenSnapshotWith(path, kb.SnapshotOptions{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	sys := fromKB(k)
	for i, set := range sets {
		res, err := sys.Mine(set.IRIs)
		if err != nil {
			t.Fatal(err)
		}
		want := goldenDBpedia[i]
		if res.Found != want.found {
			t.Errorf("set %d: found = %v, want %v", i, res.Found, want.found)
			continue
		}
		if !want.found {
			continue
		}
		if res.Expression != want.expr {
			t.Errorf("set %d: expr = %q, want %q", i, res.Expression, want.expr)
		}
		if math.Abs(res.Bits-want.bits) > goldenBitsTol {
			t.Errorf("set %d: bits = %f, want %f", i, res.Bits, want.bits)
		}
	}
}
