package remi

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const tinyNS = "http://tiny.demo/resource/"

func tinySystem(t *testing.T) *System {
	t.Helper()
	sys, err := GenerateDemo("tiny", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestGenerateDemoVariants(t *testing.T) {
	for _, name := range []string{"tiny", "dbpedia", "wikidata"} {
		sys, err := GenerateDemo(name, 3, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.NumFacts() == 0 || sys.NumEntities() == 0 {
			t.Fatalf("%s: empty KB", name)
		}
	}
	if _, err := GenerateDemo("nope", 1, 0); err == nil {
		t.Fatal("unknown demo accepted")
	}
}

func TestMineParis(t *testing.T) {
	sys := tinySystem(t)
	res, err := sys.Mine([]string{tinyNS + "Paris"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no RE for Paris")
	}
	if !strings.Contains(res.Expression, "capital") {
		t.Errorf("expected the capital RE, got %s", res.Expression)
	}
	if res.NL == "" || res.Bits <= 0 || res.Atoms == 0 {
		t.Fatalf("incomplete solution: %+v", res.Solution)
	}
}

func TestMineUnknownEntity(t *testing.T) {
	sys := tinySystem(t)
	if _, err := sys.Mine([]string{"http://nowhere/x"}); err == nil {
		t.Fatal("unknown entity accepted")
	}
}

func TestMineOptions(t *testing.T) {
	sys := tinySystem(t)
	res, err := sys.Mine([]string{tinyNS + "Guyana", tinyNS + "Suriname"},
		WithWorkers(4),
		WithTimeout(30*time.Second),
		WithTopK(3),
		WithMetric(MetricPr),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no RE found")
	}
	// TopK may or may not yield alternatives on the tiny KB, but must not
	// duplicate the main solution.
	for _, alt := range res.Alternatives {
		if alt.Expression == res.Expression {
			t.Fatal("alternative duplicates the solution")
		}
	}
}

func TestMineStandardLanguage(t *testing.T) {
	sys := tinySystem(t)
	res, err := sys.Mine([]string{tinyNS + "Paris"}, WithLanguage(LanguageStandard))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("standard language found nothing for Paris")
	}
	if strings.Contains(res.Expression, "(x, y)") {
		t.Fatalf("standard language produced an existential variable: %s", res.Expression)
	}
}

func TestMineExactRanks(t *testing.T) {
	sys := tinySystem(t)
	res, err := sys.Mine([]string{tinyNS + "Paris"}, WithExactRanks())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("exact ranks found nothing")
	}
}

func TestSummarize(t *testing.T) {
	sys, err := GenerateDemo("dbpedia", 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sys.Summarize("http://dbpedia.demo/resource/Person_1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) == 0 {
		t.Fatal("empty summary")
	}
	for _, e := range sum {
		if strings.Contains(e.Predicate, "rdf-syntax-ns#type") {
			t.Fatal("summary contains rdf:type")
		}
		if strings.Contains(e.Predicate, "⁻¹") {
			t.Fatal("summary contains an inverse predicate")
		}
	}
}

func TestFromNTriples(t *testing.T) {
	sys, err := FromNTriples(`
<http://e/paris> <http://e/capitalOf> <http://e/france> .
<http://e/lyon> <http://e/cityIn> <http://e/france> .
<http://e/paris> <http://e/cityIn> <http://e/france> .
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Mine([]string{"http://e/paris"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !strings.Contains(res.Expression, "capitalOf") {
		t.Fatalf("got %+v", res)
	}
}

func TestLoadAndSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys := tinySystem(t)

	hdtPath := filepath.Join(dir, "tiny.hdt")
	if err := sys.SaveHDT(hdtPath); err != nil {
		t.Fatal(err)
	}
	sys2, err := Load(hdtPath)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.NumEntities() != sys.NumEntities() {
		t.Fatalf("entity count changed: %d vs %d", sys2.NumEntities(), sys.NumEntities())
	}
	res, err := sys2.Mine([]string{tinyNS + "Guyana", tinyNS + "Suriname"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("mining after HDT round trip failed")
	}
}

func TestLoadNTriplesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.nt")
	content := "<http://e/a> <http://e/p> <http://e/b> .\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumFacts() == 0 {
		t.Fatal("no facts loaded")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/does/not/exist.nt"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMineNoSolutionResult(t *testing.T) {
	sys, err := FromNTriples(`
<http://e/a> <http://e/p> <http://e/v> .
<http://e/b> <http://e/p> <http://e/v> .
<http://e/c> <http://e/p> <http://e/v> .
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Mine([]string{"http://e/a", "http://e/b"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("impossible RE found: %+v", res.Solution)
	}
}

func TestDescribe(t *testing.T) {
	sys := tinySystem(t)
	label, err := sys.Describe(tinyNS + "Paris")
	if err != nil {
		t.Fatal(err)
	}
	if label != "Paris" {
		t.Fatalf("label = %q", label)
	}
}
