package remi

// BenchmarkQueueBuildExtended isolates phase 1 of Algorithm 1 (candidate
// enumeration, common-ness filtering, Ĉ scoring and the cost sort) over the
// Table 4 extended workload — the phase the CSR index relayout targets.
// RankedCandidates is exactly buildQueue plus two result copies, so this
// tracks queue_build_ms in the BENCH_*.json snapshots without the DFS noise.

import (
	"testing"

	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/experiments"
)

func BenchmarkQueueBuildExtended(b *testing.B) {
	env := lab().DBpedia()
	sets := experiments.SampleSets(env, 8, 404, 0)
	m := core.NewMiner(env.KB, env.EstFr, core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := sets[i%len(sets)]
		gs, _ := m.RankedCandidates(set.IDs)
		_ = gs
	}
}
