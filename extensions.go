package remi

// Extensions beyond the paper's core algorithm, implementing its Section 6
// future-work directions: referring expressions with exceptions (relaxed
// unambiguity), disjunctive referring expressions, externally sourced
// prominence, and SPARQL query generation (the query-generation application
// the paper names).

import (
	"fmt"
	"sort"
	"strings"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/sparql"
)

// MetricCustom selects the prominence scores installed with SetProminence.
const MetricCustom Metric = 2

// WithExceptions relaxes the unambiguity constraint: the mined expression
// must still match every target but may match up to n extra entities
// (Section 6: "relax the unambiguity constraint to mine REs with
// exceptions"). The result reports the actual exceptions.
func WithExceptions(n int) MineOption { return func(c *mineConfig) { c.exceptions = n } }

// SetProminence installs caller-supplied prominence scores (IRI → score,
// higher = more prominent), enabling WithMetric(MetricCustom). This is the
// hook for the paper's envisioned external sources — search-engine ranks,
// localized corpora — without retraining anything: the complexity estimator
// is rebuilt over the new ranking.
func (s *System) SetProminence(scores map[string]float64) error {
	if len(scores) == 0 {
		return fmt.Errorf("remi: empty prominence map")
	}
	byID := make(map[kb.EntID]float64, len(scores))
	for iri, v := range scores {
		if id, ok := s.kb.EntityID(rdf.NewIRI(iri)); ok {
			byID[id] = v
		}
	}
	if len(byID) == 0 {
		return fmt.Errorf("remi: no prominence score matches a KB entity")
	}
	store := prominence.BuildWithScores(s.kb, func(e kb.EntID) float64 { return byID[e] })
	s.promCustom = store
	s.estCustom = complexity.New(s.kb, store, complexity.Compressed)
	return nil
}

// sparqlOf renders a mined expression as a SPARQL SELECT query; Mine fills
// Solution.SPARQL with it so every result ships with a runnable query.
func (s *System) sparqlOf(e expr.Expression) string { return sparql.Query(s.kb, e) }

// DisjunctiveResult is the outcome of MineDisjunctive: a union of branch
// REs that together identify exactly the target set.
type DisjunctiveResult struct {
	Found bool
	// Branches are the disjuncts; their target subsets partition the input.
	Branches []DisjunctiveBranch
	// Bits is the total Ĉ across branches (the disjunction is priced as the
	// sum of its parts plus nothing for the ∨ itself, a lower bound that
	// suffices for comparisons).
	Bits float64
}

// DisjunctiveBranch is one disjunct with the targets it covers.
type DisjunctiveBranch struct {
	Targets []string
	Solution
}

// MineDisjunctive mines a disjunctive referring expression e₁ ∨ … ∨ eₘ for
// the targets: it searches over partitions of the target set (at most 6
// targets), mining each block with the conjunctive miner, and returns the
// partition minimizing total Ĉ. A single-block partition degenerates to
// ordinary mining, so the result is never worse than Mine's. This
// implements the disjunction direction the related work discusses ([9])
// with REMI's intuitiveness objective.
func (s *System) MineDisjunctive(targetIRIs []string, opts ...MineOption) (*DisjunctiveResult, error) {
	if len(targetIRIs) == 0 {
		return nil, fmt.Errorf("remi: no targets")
	}
	if len(targetIRIs) > 6 {
		return nil, fmt.Errorf("remi: disjunctive mining supports at most 6 targets (got %d)", len(targetIRIs))
	}
	// Deduplicate, keep deterministic order.
	uniq := append([]string(nil), targetIRIs...)
	sort.Strings(uniq)
	w := 1
	for i := 1; i < len(uniq); i++ {
		if uniq[i] != uniq[i-1] {
			uniq[w] = uniq[i]
			w++
		}
	}
	uniq = uniq[:w]

	// Memoized block mining keyed by the member bitmask.
	type blockRes struct {
		res *Result
		err error
	}
	memo := make(map[uint]blockRes)
	mineBlock := func(mask uint) blockRes {
		if r, ok := memo[mask]; ok {
			return r
		}
		var block []string
		for i := 0; i < len(uniq); i++ {
			if mask&(1<<i) != 0 {
				block = append(block, uniq[i])
			}
		}
		res, err := s.Mine(block, opts...)
		br := blockRes{res, err}
		memo[mask] = br
		return br
	}

	best := &DisjunctiveResult{Bits: inf()}
	var assign func(rest []int, blocks []uint)
	assign = func(rest []int, blocks []uint) {
		if len(rest) == 0 {
			total := 0.0
			var branches []DisjunctiveBranch
			for _, mask := range blocks {
				br := mineBlock(mask)
				if br.err != nil || !br.res.Found {
					return // partition infeasible
				}
				total += br.res.Bits
				var members []string
				for i := 0; i < len(uniq); i++ {
					if mask&(1<<i) != 0 {
						members = append(members, uniq[i])
					}
				}
				branches = append(branches, DisjunctiveBranch{Targets: members, Solution: br.res.Solution})
			}
			if total < best.Bits {
				best.Found = true
				best.Bits = total
				best.Branches = branches
			}
			return
		}
		t, tail := rest[0], rest[1:]
		// Put t into an existing block or start a new one. Restricted
		// growth enumeration yields each set partition exactly once.
		for i := range blocks {
			blocks[i] |= 1 << t
			assign(tail, blocks)
			blocks[i] &^= 1 << t
		}
		assign(tail, append(blocks, 1<<t))
	}
	all := make([]int, len(uniq))
	for i := range all {
		all[i] = i
	}
	assign(all, nil)

	if !best.Found {
		return &DisjunctiveResult{}, nil
	}
	return best, nil
}

// Format renders the disjunction.
func (d *DisjunctiveResult) Format() string {
	if !d.Found {
		return "⊤"
	}
	parts := make([]string, len(d.Branches))
	for i, b := range d.Branches {
		parts[i] = "(" + b.Expression + ")"
	}
	return strings.Join(parts, " ∨ ")
}

func inf() float64 { return complexity.Infinite }
