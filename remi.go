// Package remi is a Go implementation of REMI (Galárraga, Delaunay,
// Dessalles: "REMI: Mining Intuitive Referring Expressions on Knowledge
// Bases", EDBT 2020): given a set of target entities in an RDF knowledge
// base, it mines the most intuitive referring expression — the conjunction
// of subgraph expressions that matches exactly the targets and minimizes an
// estimated Kolmogorov complexity built from prominence rankings.
//
// The package is a facade over the full system (storage, statistics,
// complexity model, sequential and parallel miners); a minimal session looks
// like:
//
//	sys, err := remi.Load("dbpedia.nt")                       // or .hdt
//	res, err := sys.Mine([]string{"http://dbpedia.org/resource/Paris"})
//	fmt.Println(res.Expression, res.NL, res.Bits)
package remi

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/hdt"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/nlg"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// Metric selects the prominence signal behind the complexity estimate Ĉ.
type Metric int

const (
	// MetricFr ranks concepts by their number of occurrences in the KB
	// (Ĉfr in the paper; the default, and the variant users preferred).
	MetricFr Metric = iota
	// MetricPr ranks entities by PageRank over the KB's link graph (Ĉpr).
	MetricPr
)

// Language selects the RE language bias.
type Language int

const (
	// LanguageExtended is REMI's language (Table 1): subgraph expressions
	// with up to 3 atoms and one additional existential variable.
	LanguageExtended Language = iota
	// LanguageStandard is the state-of-the-art bias: bound atoms only.
	LanguageStandard
)

// System is a loaded, indexed knowledge base ready for mining. Create one
// with Load, FromNTriples or GenerateDemo. A System is safe for concurrent
// use.
type System struct {
	kb         *kb.KB
	promFr     *prominence.Store
	promPr     *prominence.Store
	promCustom *prominence.Store
	estFr      *complexity.Estimator
	estPr      *complexity.Estimator
	estCustom  *complexity.Estimator
	verb       *nlg.Verbalizer
}

// Load reads a knowledge base from an N-Triples (.nt, .ntriples), binary
// HDT (.hdt) or KB snapshot file and indexes it with the paper's defaults
// (inverse facts materialized for the top 1% most frequent objects).
// Snapshots are detected by their magic bytes regardless of extension and
// open zero-copy (mmap where available) with the indexes — inverse
// materialization included — exactly as they were packed; see
// System.SaveSnapshot for producing them.
func Load(path string) (*System, error) {
	if kb.IsSnapshotFile(path) {
		k, err := kb.OpenSnapshot(path)
		if err != nil {
			return nil, fmt.Errorf("remi: loading %s: %w", path, err)
		}
		return fromKB(k), nil
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".hdt":
		h, err := hdt.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("remi: loading %s: %w", path, err)
		}
		return FromTriples(h.Triples())
	default:
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// N-Triples go through the streaming builder: the raw triple slice
		// of a web-scale dump is never held in memory (bounded run spills
		// plus a k-way merge), and the result is element-identical to the
		// in-memory build.
		k, err := kb.BuildStreaming(rdf.NewReader(f), kb.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("remi: parsing %s: %w", path, err)
		}
		return fromKB(k), nil
	}
}

// FromTriples indexes an in-memory triple set.
func FromTriples(triples []rdf.Triple) (*System, error) {
	k, err := kb.FromTriples(triples, kb.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return fromKB(k), nil
}

// FromNTriples parses N-Triples text (one statement per line).
func FromNTriples(text string) (*System, error) {
	triples, err := rdf.ReadAll(strings.NewReader(text))
	if err != nil {
		return nil, err
	}
	return FromTriples(triples)
}

// GenerateDemo builds one of the bundled synthetic datasets: "tiny" (the
// paper's running examples), "dbpedia" or "wikidata" (Zipf-shaped KBs used
// by the experiment harness). Scale <= 0 picks a small default.
func GenerateDemo(dataset string, seed int64, scale float64) (*System, error) {
	var d *datagen.Dataset
	opts := kb.DefaultOptions()
	switch strings.ToLower(dataset) {
	case "tiny", "tiny-geo":
		d = datagen.TinyGeo()
		// The paper materializes inverse facts for the top 1% most frequent
		// entities of multi-million-entity KBs; on the ~100-entity demo the
		// equivalent head of the frequency distribution is the top 10%.
		opts.InverseTopFraction = 0.10
	case "dbpedia", "dbpedia-like":
		if scale <= 0 {
			scale = 0.2
		}
		d = datagen.DBpediaLike(datagen.Config{Seed: seed, Scale: scale})
	case "wikidata", "wikidata-like":
		if scale <= 0 {
			scale = 0.2
		}
		d = datagen.WikidataLike(datagen.Config{Seed: seed, Scale: scale})
	default:
		return nil, fmt.Errorf("remi: unknown demo dataset %q (tiny|dbpedia|wikidata)", dataset)
	}
	k, err := d.BuildKB(opts)
	if err != nil {
		return nil, err
	}
	return fromKB(k), nil
}

func fromKB(k *kb.KB) *System {
	promFr := prominence.Build(k, prominence.Fr)
	return &System{
		kb:     k,
		promFr: promFr,
		estFr:  complexity.New(k, promFr, complexity.Compressed),
		verb:   nlg.New(k),
	}
}

// pr structures are built lazily (PageRank costs a pass over the graph).
func (s *System) prEstimator() *complexity.Estimator {
	if s.estPr == nil {
		s.promPr = prominence.Build(s.kb, prominence.Pr)
		s.estPr = complexity.New(s.kb, s.promPr, complexity.Compressed)
	}
	return s.estPr
}

// NumFacts returns the number of stored facts (inverse materializations
// included); NumEntities and NumPredicates size the dictionary.
func (s *System) NumFacts() int      { return s.kb.NumFacts() }
func (s *System) NumEntities() int   { return s.kb.NumEntities() }
func (s *System) NumPredicates() int { return s.kb.NumPredicates() }

// WriteSnapshot serializes the fully built KB — dictionary, CSR indexes,
// adjacency arena, inverse materializations and frequency statistics — into
// the zero-copy snapshot format that Load and kb.OpenSnapshot reopen in
// O(page-in) time. Pack once, open many: snapshot opening skips N-Triples
// parsing, deduplication and index sorting entirely.
func (s *System) WriteSnapshot(w io.Writer) error { return s.kb.WriteSnapshot(w) }

// SaveSnapshot writes the KB snapshot to path (see WriteSnapshot).
func (s *System) SaveSnapshot(path string) error { return s.kb.WriteSnapshotFile(path) }

// SaveHDT writes the KB's base facts to a binary HDT-style file.
func (s *System) SaveHDT(path string) error {
	var triples []rdf.Triple
	for _, p := range s.kb.Predicates() {
		if s.kb.IsInverse(p) {
			continue
		}
		pTerm := rdf.NewIRI(s.kb.PredicateName(p))
		for _, pair := range s.kb.Facts(p) {
			triples = append(triples, rdf.Triple{S: s.kb.Term(pair.S), P: pTerm, O: s.kb.Term(pair.O)})
		}
	}
	h, err := hdt.Build(triples)
	if err != nil {
		return err
	}
	return h.SaveFile(path)
}
