package complexity

import (
	"sync"
	"testing"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
)

// TestEstimatorConcurrentColdCache hammers a cold estimator from many
// goroutines over enough distinct subgraphs to force several snapshot
// promotes, then asserts every value matches the sequential reference and
// that no memoized entry was dropped by a racing promote.
func TestEstimatorConcurrentColdCache(t *testing.T) {
	k, ref := setup(t, Exact)
	var gs []expr.Subgraph
	for p := 1; p <= k.NumPredicates(); p++ {
		for e := 1; e <= k.NumEntities(); e++ {
			gs = append(gs, expr.NewAtom1(kb.PredID(p), kb.EntID(e)))
			gs = append(gs, expr.NewPath(kb.PredID(p), kb.PredID(p), kb.EntID(e)))
		}
	}
	want := make([]float64, len(gs))
	for i, g := range gs {
		want[i] = ref.Subgraph(g)
	}

	_, est := setup(t, Exact)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := range gs {
				j := (i + off*137) % len(gs)
				if got := est.Subgraph(gs[j]); got != want[j] {
					t.Errorf("concurrent cost mismatch for %+v: %f want %f", gs[j], got, want[j])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if est.CacheSize() != len(gs) {
		t.Fatalf("CacheSize = %d, want %d (promote dropped entries?)", est.CacheSize(), len(gs))
	}
	// A warm re-read must hit the promoted snapshot and stay stable.
	for i, g := range gs {
		if got := est.Subgraph(g); got != want[i] {
			t.Fatalf("warm cost changed for %+v", g)
		}
	}
}
