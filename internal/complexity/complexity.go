// Package complexity implements Ĉ, REMI's estimate of the Kolmogorov
// complexity of referring expressions in bits (Section 3.1 of the paper).
// The code length of a concept is the log2 of its position in a prominence
// ranking; the chain rule conditions each component on the context already
// conveyed: predicates after the first are ranked among the join partners of
// the preceding predicate, and tail entities are ranked among the objects
// observed under their predicate.
//
// Two evaluation modes are provided: Exact uses the precomputed conditional
// rankings; Compressed replaces entity ranks with the Eq. 1 power-law
// estimate (Section 3.5.3), which is what the paper's implementation does to
// avoid storing every conditional ranking.
package complexity

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
)

// Mode selects how entity ranks are obtained.
type Mode int

const (
	// Compressed estimates log-ranks with the per-predicate Eq. 1 fits.
	Compressed Mode = iota
	// Exact uses the precomputed conditional rankings.
	Exact
)

// Infinite is the complexity of the empty expression ⊤ (the paper defines
// Ĉ(⊤) = ∞ so that any RE improves on "no solution yet").
var Infinite = math.Inf(1)

// costSlot pairs a subgraph expression with its memoized Ĉ; the zero
// Subgraph (P0 == 0, impossible for a real expression) marks an empty slot.
type costSlot struct {
	g    expr.Subgraph
	cost float64
}

// costTable is an immutable open-addressing map from Subgraph to cost.
// Once published through the Estimator's atomic pointer it is never
// mutated, so readers probe it without any synchronization — and without
// the runtime's generic struct hashing, which profiles show dominating a
// map-based cache on the queue-build hot path (one lookup per candidate).
type costTable struct {
	slots []costSlot
	n     int
}

func (t *costTable) get(g expr.Subgraph) (float64, bool) {
	mask := uint64(len(t.slots) - 1)
	i := g.Hash() & mask
	for {
		s := &t.slots[i]
		if s.g.P0 == 0 {
			return 0, false
		}
		if s.g == g {
			return s.cost, true
		}
		i = (i + 1) & mask
	}
}

// Estimator computes Ĉ for subgraph expressions and expressions. It caches
// per-subgraph costs and is safe for concurrent use.
//
// The cache is a snapshot-plus-overflow scheme tuned for the queue build,
// which scores whole candidate blocks (possibly from several goroutines)
// against a warm cache: reads probe an atomically published immutable
// costTable — lock-free, with the cheap shared subgraph hash — while
// misses compute under a mutex into a small overflow map that is
// periodically rebuilt into a fresh snapshot.
type Estimator struct {
	K    *kb.KB
	Prom *prominence.Store
	Mode Mode

	snap     atomic.Pointer[costTable]
	mu       sync.Mutex
	overflow map[expr.Subgraph]float64
}

// New returns an estimator over the given prominence store.
func New(k *kb.KB, prom *prominence.Store, mode Mode) *Estimator {
	return &Estimator{K: k, Prom: prom, Mode: mode}
}

// Metric returns the prominence metric (fr or pr) behind this estimator.
func (c *Estimator) Metric() prominence.Metric { return c.Prom.Metric }

// Subgraph returns Ĉ(g) in bits.
func (c *Estimator) Subgraph(g expr.Subgraph) float64 {
	if snap := c.snap.Load(); snap != nil {
		if v, ok := snap.get(g); ok {
			return v
		}
	}
	c.mu.Lock()
	if v, ok := c.overflow[g]; ok {
		c.mu.Unlock()
		return v
	}
	// Re-check the snapshot under the lock: a promote may have published
	// this key between our lock-free miss and here.
	if snap := c.snap.Load(); snap != nil {
		if v, ok := snap.get(g); ok {
			c.mu.Unlock()
			return v
		}
	}
	c.mu.Unlock()
	// Compute outside the lock so distinct subgraphs are costed in
	// parallel on a cold cache; a racing duplicate compute of the same
	// subgraph is deterministic, and the first stored value wins.
	v := c.compute(g)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.overflow[g]; ok {
		return cur
	}
	// A promote may have raced with the compute and moved this key from
	// the overflow into a fresh snapshot; storing it again would duplicate
	// the entry across both levels, so probe the current snapshot too.
	if snap := c.snap.Load(); snap != nil {
		if cur, ok := snap.get(g); ok {
			return cur
		}
	}
	if c.overflow == nil {
		c.overflow = make(map[expr.Subgraph]float64)
	}
	c.overflow[g] = v
	// Promote once the overflow is no longer small relative to the
	// snapshot: rebuild both into a fresh immutable table so subsequent
	// hits are lock-free again. Readers that loaded an older snapshot
	// pointer at worst fall through to the mutex and hit the overflow. The
	// snapshot is re-loaded under the lock — promotes only happen with mu
	// held, so this pointer is current and no racing promote's entries can
	// be dropped.
	snap := c.snap.Load()
	snapN := 0
	if snap != nil {
		snapN = snap.n
	}
	if len(c.overflow) >= 64 && len(c.overflow) >= snapN/4 {
		c.promote(snap)
	}
	return v
}

// promote rebuilds the published snapshot from the previous one plus the
// overflow map. Called with mu held; the new table is built at ≤ 0.5 load.
func (c *Estimator) promote(prev *costTable) {
	n := len(c.overflow)
	if prev != nil {
		n += prev.n
	}
	capacity := 64
	for capacity < 2*n {
		capacity *= 2
	}
	t := &costTable{slots: make([]costSlot, capacity), n: n}
	mask := uint64(capacity - 1)
	insert := func(g expr.Subgraph, cost float64) {
		i := g.Hash() & mask
		for t.slots[i].g.P0 != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = costSlot{g: g, cost: cost}
	}
	if prev != nil {
		for _, s := range prev.slots {
			if s.g.P0 != 0 {
				insert(s.g, s.cost)
			}
		}
	}
	for g, cost := range c.overflow {
		insert(g, cost)
	}
	c.snap.Store(t)
	c.overflow = make(map[expr.Subgraph]float64)
}

// Expression returns Ĉ(e) = Σᵢ Ĉ(ρᵢ) (the simplification discussed in
// Section 3.1: common sub-paths are charged once per occurrence, which is
// acceptable because Ĉ is used for comparisons only). The empty expression
// costs Infinite.
func (c *Estimator) Expression(e expr.Expression) float64 {
	if len(e) == 0 {
		return Infinite
	}
	sum := 0.0
	for _, g := range e {
		sum += c.Subgraph(g)
	}
	return sum
}

func (c *Estimator) compute(g expr.Subgraph) float64 {
	switch g.Shape {
	case expr.Atom1:
		// Ĉ(p0(x,I0)) = l(p0) + l(I0|p0).
		return c.predBits(g.P0) + c.entityBits(g.P0, g.I0)
	case expr.Path:
		// l(p0) + l(p1|p0 join) + l(I1|p1 context).
		return c.predBits(g.P0) +
			c.joinBits(prominence.JoinSO, g.P0, g.P1) +
			c.entityBits(g.P1, g.I1)
	case expr.PathStar:
		return c.predBits(g.P0) +
			c.joinBits(prominence.JoinSO, g.P0, g.P1) +
			c.entityBits(g.P1, g.I1) +
			c.joinBits(prominence.JoinSO, g.P0, g.P2) +
			c.entityBits(g.P2, g.I2)
	case expr.Closed2:
		return c.predBits(g.P0) + c.joinBits(prominence.JoinSS, g.P0, g.P1)
	case expr.Closed3:
		return c.predBits(g.P0) +
			c.joinBits(prominence.JoinSS, g.P0, g.P1) +
			c.joinBits(prominence.JoinSS, g.P0, g.P2)
	default:
		return Infinite
	}
}

// predBits is l(p) = log2 k(p) over the global predicate ranking.
func (c *Estimator) predBits(p kb.PredID) float64 {
	return math.Log2(float64(c.Prom.PredicateRank(p)))
}

// joinBits is l(p1 | p0) = log2 of p1's rank among the join partners of p0.
// Predicates that never join p0 (possible only for expressions constructed
// by hand) are priced one past the join domain.
func (c *Estimator) joinBits(kind prominence.JoinKind, p0, p1 kb.PredID) float64 {
	r, domain, ok := c.Prom.JoinRank(kind, p0, p1)
	if !ok {
		r = domain + 1
	}
	if r < 1 {
		r = 1
	}
	return math.Log2(float64(r))
}

// entityBits is l(I | p) = log2 k(I|p), exact or Eq. 1-compressed.
func (c *Estimator) entityBits(p kb.PredID, i kb.EntID) float64 {
	if c.Mode == Compressed {
		return c.Prom.EstimatedLogRank(p, i)
	}
	if r, ok := c.Prom.CondRank(p, i); ok {
		return math.Log2(float64(r))
	}
	return math.Log2(float64(c.Prom.CondDomainSize(p) + 1))
}

// CacheSize reports the number of memoized subgraph costs.
func (c *Estimator) CacheSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.overflow)
	if cur := c.snap.Load(); cur != nil {
		n += cur.n
	}
	return n
}
