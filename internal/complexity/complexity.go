// Package complexity implements Ĉ, REMI's estimate of the Kolmogorov
// complexity of referring expressions in bits (Section 3.1 of the paper).
// The code length of a concept is the log2 of its position in a prominence
// ranking; the chain rule conditions each component on the context already
// conveyed: predicates after the first are ranked among the join partners of
// the preceding predicate, and tail entities are ranked among the objects
// observed under their predicate.
//
// Two evaluation modes are provided: Exact uses the precomputed conditional
// rankings; Compressed replaces entity ranks with the Eq. 1 power-law
// estimate (Section 3.5.3), which is what the paper's implementation does to
// avoid storing every conditional ranking.
package complexity

import (
	"math"
	"sync"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
)

// Mode selects how entity ranks are obtained.
type Mode int

const (
	// Compressed estimates log-ranks with the per-predicate Eq. 1 fits.
	Compressed Mode = iota
	// Exact uses the precomputed conditional rankings.
	Exact
)

// Infinite is the complexity of the empty expression ⊤ (the paper defines
// Ĉ(⊤) = ∞ so that any RE improves on "no solution yet").
var Infinite = math.Inf(1)

// Estimator computes Ĉ for subgraph expressions and expressions. It caches
// per-subgraph costs and is safe for concurrent use.
type Estimator struct {
	K    *kb.KB
	Prom *prominence.Store
	Mode Mode

	mu    sync.Mutex
	cache map[expr.Subgraph]float64
}

// New returns an estimator over the given prominence store.
func New(k *kb.KB, prom *prominence.Store, mode Mode) *Estimator {
	return &Estimator{K: k, Prom: prom, Mode: mode, cache: make(map[expr.Subgraph]float64)}
}

// Metric returns the prominence metric (fr or pr) behind this estimator.
func (c *Estimator) Metric() prominence.Metric { return c.Prom.Metric }

// Subgraph returns Ĉ(g) in bits.
func (c *Estimator) Subgraph(g expr.Subgraph) float64 {
	c.mu.Lock()
	if v, ok := c.cache[g]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := c.compute(g)
	c.mu.Lock()
	c.cache[g] = v
	c.mu.Unlock()
	return v
}

// Expression returns Ĉ(e) = Σᵢ Ĉ(ρᵢ) (the simplification discussed in
// Section 3.1: common sub-paths are charged once per occurrence, which is
// acceptable because Ĉ is used for comparisons only). The empty expression
// costs Infinite.
func (c *Estimator) Expression(e expr.Expression) float64 {
	if len(e) == 0 {
		return Infinite
	}
	sum := 0.0
	for _, g := range e {
		sum += c.Subgraph(g)
	}
	return sum
}

func (c *Estimator) compute(g expr.Subgraph) float64 {
	switch g.Shape {
	case expr.Atom1:
		// Ĉ(p0(x,I0)) = l(p0) + l(I0|p0).
		return c.predBits(g.P0) + c.entityBits(g.P0, g.I0)
	case expr.Path:
		// l(p0) + l(p1|p0 join) + l(I1|p1 context).
		return c.predBits(g.P0) +
			c.joinBits(prominence.JoinSO, g.P0, g.P1) +
			c.entityBits(g.P1, g.I1)
	case expr.PathStar:
		return c.predBits(g.P0) +
			c.joinBits(prominence.JoinSO, g.P0, g.P1) +
			c.entityBits(g.P1, g.I1) +
			c.joinBits(prominence.JoinSO, g.P0, g.P2) +
			c.entityBits(g.P2, g.I2)
	case expr.Closed2:
		return c.predBits(g.P0) + c.joinBits(prominence.JoinSS, g.P0, g.P1)
	case expr.Closed3:
		return c.predBits(g.P0) +
			c.joinBits(prominence.JoinSS, g.P0, g.P1) +
			c.joinBits(prominence.JoinSS, g.P0, g.P2)
	default:
		return Infinite
	}
}

// predBits is l(p) = log2 k(p) over the global predicate ranking.
func (c *Estimator) predBits(p kb.PredID) float64 {
	return math.Log2(float64(c.Prom.PredicateRank(p)))
}

// joinBits is l(p1 | p0) = log2 of p1's rank among the join partners of p0.
// Predicates that never join p0 (possible only for expressions constructed
// by hand) are priced one past the join domain.
func (c *Estimator) joinBits(kind prominence.JoinKind, p0, p1 kb.PredID) float64 {
	r, domain, ok := c.Prom.JoinRank(kind, p0, p1)
	if !ok {
		r = domain + 1
	}
	if r < 1 {
		r = 1
	}
	return math.Log2(float64(r))
}

// entityBits is l(I | p) = log2 k(I|p), exact or Eq. 1-compressed.
func (c *Estimator) entityBits(p kb.PredID, i kb.EntID) float64 {
	if c.Mode == Compressed {
		return c.Prom.EstimatedLogRank(p, i)
	}
	if r, ok := c.Prom.CondRank(p, i); ok {
		return math.Log2(float64(r))
	}
	return math.Log2(float64(c.Prom.CondDomainSize(p) + 1))
}

// CacheSize reports the number of memoized subgraph costs.
func (c *Estimator) CacheSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}
