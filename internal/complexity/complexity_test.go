package complexity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// skewedKB builds a KB where predicate p is far more frequent than q, and
// object "popular" is far more frequent than "obscure".
func skewedKB(t testing.TB) *kb.KB {
	t.Helper()
	b := kb.NewBuilder()
	add := func(s, p, o string) {
		t.Helper()
		err := b.Add(rdf.Triple{
			S: rdf.NewIRI("http://e/" + s), P: rdf.NewIRI("http://e/" + p), O: rdf.NewIRI("http://e/" + o),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		add(name("s", i), "p", "popular")
	}
	add("s0", "p", "obscure")
	add("s1", "q", "rare")
	// join structure: p's objects are subjects of r.
	add("popular", "r", "hub")
	add("obscure", "r", "hub")
	return b.Build(kb.Options{})
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func setup(t testing.TB, mode Mode) (*kb.KB, *Estimator) {
	k := skewedKB(t)
	prom := prominence.Build(k, prominence.Fr)
	return k, New(k, prom, mode)
}

func TestPredicateRankOrdering(t *testing.T) {
	k, est := setup(t, Exact)
	p := k.MustPredicateID("http://e/p")
	q := k.MustPredicateID("http://e/q")
	popular := k.MustEntityID("http://e/popular")
	rare := k.MustEntityID("http://e/rare")
	// p is rank 1 → 0 bits; q is costlier.
	cp := est.Subgraph(expr.NewAtom1(p, popular))
	cq := est.Subgraph(expr.NewAtom1(q, rare))
	if cp >= cq {
		t.Fatalf("frequent predicate+object should cost less: %f vs %f", cp, cq)
	}
}

func TestConditionalObjectRank(t *testing.T) {
	k, est := setup(t, Exact)
	p := k.MustPredicateID("http://e/p")
	popular := k.MustEntityID("http://e/popular")
	obscure := k.MustEntityID("http://e/obscure")
	if est.Subgraph(expr.NewAtom1(p, popular)) >= est.Subgraph(expr.NewAtom1(p, obscure)) {
		t.Fatal("popular object should cost fewer bits under the same predicate")
	}
}

func TestNonNegativeCosts(t *testing.T) {
	k, est := setup(t, Exact)
	_, estC := setup(t, Compressed)
	var gs []expr.Subgraph
	for pi := 1; pi <= k.NumPredicates(); pi++ {
		for ei := 1; ei <= k.NumEntities(); ei++ {
			gs = append(gs, expr.NewAtom1(kb.PredID(pi), kb.EntID(ei)))
			for pj := 1; pj <= k.NumPredicates(); pj++ {
				gs = append(gs, expr.NewPath(kb.PredID(pi), kb.PredID(pj), kb.EntID(ei)))
			}
		}
		for pj := pi + 1; pj <= k.NumPredicates(); pj++ {
			gs = append(gs, expr.NewClosed2(kb.PredID(pi), kb.PredID(pj)))
		}
	}
	for _, g := range gs {
		for _, e := range []*Estimator{est, estC} {
			if c := e.Subgraph(g); c < 0 || math.IsNaN(c) {
				t.Fatalf("negative/NaN cost %f for %+v (mode %v)", c, g, e.Mode)
			}
		}
	}
}

// TestExpressionAdditive is the pruning soundness condition: adding a
// conjunct never decreases Ĉ.
func TestExpressionAdditive(t *testing.T) {
	k, est := setup(t, Exact)
	p := k.MustPredicateID("http://e/p")
	q := k.MustPredicateID("http://e/q")
	popular := k.MustEntityID("http://e/popular")
	rare := k.MustEntityID("http://e/rare")

	e1 := expr.Expression{expr.NewAtom1(p, popular)}
	e2 := expr.Expression{expr.NewAtom1(p, popular), expr.NewAtom1(q, rare)}
	if est.Expression(e2) < est.Expression(e1) {
		t.Fatal("adding a conjunct decreased Ĉ")
	}
	if got := est.Expression(e1) + est.Subgraph(expr.NewAtom1(q, rare)); math.Abs(got-est.Expression(e2)) > 1e-12 {
		t.Fatal("Ĉ(e) must be the sum of its subgraph costs")
	}
}

func TestEmptyExpressionInfinite(t *testing.T) {
	_, est := setup(t, Exact)
	if !math.IsInf(est.Expression(nil), 1) {
		t.Fatal("Ĉ(⊤) must be infinite")
	}
}

func TestChainRuleUsesJoinRanking(t *testing.T) {
	k, est := setup(t, Exact)
	p := k.MustPredicateID("http://e/p")
	r := k.MustPredicateID("http://e/r")
	hub := k.MustEntityID("http://e/hub")
	// path p(x,y) ∧ r(y, hub): r joins p's objects, so the path must be
	// priced finitely and above the bare predicate cost of p.
	c := est.Subgraph(expr.NewPath(p, r, hub))
	if math.IsInf(c, 1) || math.IsNaN(c) {
		t.Fatalf("path cost = %f", c)
	}
	base := est.Subgraph(expr.NewAtom1(p, hub))
	_ = base // the relative order depends on conditional ranks; only sanity here
}

func TestCompressedCloseToExact(t *testing.T) {
	// On a strongly Zipfian predicate the Eq. 1 estimate should order
	// objects the same way as the exact ranking.
	b := kb.NewBuilder()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		obj := 1
		for rng.Float64() < 0.65 && obj < 30 {
			obj++
		}
		b.Add(rdf.Triple{
			S: rdf.NewIRI("http://e/s" + name("x", i)),
			P: rdf.NewIRI("http://e/p"),
			O: rdf.NewIRI("http://e/o" + name("o", obj)),
		})
	}
	k := b.Build(kb.Options{})
	prom := prominence.Build(k, prominence.Fr)
	exact := New(k, prom, Exact)
	comp := New(k, prom, Compressed)
	p := k.MustPredicateID("http://e/p")

	type oc struct {
		e      kb.EntID
		ex, cp float64
	}
	var all []oc
	for ei := 1; ei <= k.NumEntities(); ei++ {
		e := kb.EntID(ei)
		if k.ObjFreq(p, e) == 0 {
			continue
		}
		all = append(all, oc{e, exact.Subgraph(expr.NewAtom1(p, e)), comp.Subgraph(expr.NewAtom1(p, e))})
	}
	// Kendall-style agreement: most pairs ordered identically.
	agree, total := 0, 0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].ex == all[j].ex {
				continue
			}
			total++
			if (all[i].ex < all[j].ex) == (all[i].cp < all[j].cp) {
				agree++
			}
		}
	}
	if total == 0 {
		t.Skip("degenerate sample")
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("compressed ordering agrees on only %.0f%% of pairs", frac*100)
	}
}

func TestCostCaching(t *testing.T) {
	k, est := setup(t, Exact)
	p := k.MustPredicateID("http://e/p")
	popular := k.MustEntityID("http://e/popular")
	g := expr.NewAtom1(p, popular)
	a := est.Subgraph(g)
	if est.CacheSize() == 0 {
		t.Fatal("cost not cached")
	}
	if b := est.Subgraph(g); a != b {
		t.Fatal("cached cost differs")
	}
}

func TestCostDeterminismProperty(t *testing.T) {
	k, est := setup(t, Compressed)
	nP, nE := k.NumPredicates(), k.NumEntities()
	f := func(p0, p1 uint8, i0 uint16) bool {
		g := expr.NewPath(kb.PredID(int(p0)%nP+1), kb.PredID(int(p1)%nP+1), kb.EntID(int(i0)%nE+1))
		return est.Subgraph(g) == est.Subgraph(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
