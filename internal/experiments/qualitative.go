package experiments

import (
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/stats"
	"github.com/remi-kb/remi/internal/study"
)

// MAPConfig parameterizes the second user study (Section 4.1.2).
type MAPConfig struct {
	Sets        int // entity sets (paper: 20)
	UsersPerSet int // respondents per set (paper: ~2.5 → 51 answers)
	Seed        int64
	MaxAlts     int // candidate REs per set, 3–5 in the paper
}

// DefaultMAPConfig mirrors the paper's study size.
func DefaultMAPConfig() MAPConfig {
	return MAPConfig{Sets: 20, UsersPerSet: 3, Seed: 412, MaxAlts: 5}
}

// MAPResult is the outcome of the Section 4.1.2 study.
type MAPResult struct {
	MAP, Std float64
	Answers  int
	SetsUsed int
	// PreferFrPct is the share of users preferring the Ĉfr solution over
	// the Ĉpr one when they differ (the paper reports 59%).
	PreferFrPct float64
	// AgreeSets counts sets where both variants returned the same RE
	// (the paper reports 6 of 20).
	AgreeSets int
}

// Section412 reproduces the MAP study: users rank REMI's answer among other
// REs encountered during search-space traversal; REMI's solution is the only
// relevant answer, so AP = 1/rank.
func Section412(lab *Lab) MAPResult {
	return Section412With(lab, DefaultMAPConfig())
}

// Section412With runs the study with explicit parameters.
func Section412With(lab *Lab, cfg MAPConfig) MAPResult {
	env := lab.DBpedia()
	perc := study.NewPerception(env.KB, env.Data.TruePop)
	cohort := study.NewCohort(perc, cfg.Seed)

	sets := SampleSets(env, cfg.Sets*2, cfg.Seed+3, 0.05) // oversample; some sets lack alternatives
	var aps []float64
	frPrefs, frTotal := 0, 0
	agree, used := 0, 0

	mcfgTop := minerConfig(4096)
	mcfgTop.TopK = cfg.MaxAlts

	for _, set := range sets {
		if used >= cfg.Sets {
			break
		}
		miner := core.NewMiner(env.KB, env.EstFr, mcfgTop)
		res, err := miner.Mine(set.IDs)
		if err != nil || len(res.Solutions) < 2 {
			continue
		}
		used++
		cands := make([]expr.Expression, len(res.Solutions))
		for i, s := range res.Solutions {
			cands[i] = s.Expression
		}
		// REMI's answer is candidate 0.
		for u := 0; u < cfg.UsersPerSet; u++ {
			user := cohort.NewUser()
			order := user.RankExpressions(cands)
			aps = append(aps, stats.AveragePrecisionSingle(order, 0))
		}

		// fr-vs-pr preference on the same set (Section 4.1.2's last finding).
		minerPr := core.NewMiner(env.KB, env.EstPr, minerConfig(4096))
		resPr, err := minerPr.Mine(set.IDs)
		if err != nil || !resPr.Found() {
			continue
		}
		if resPr.Expression.Key() == res.Expression.Key() {
			agree++
			continue
		}
		for u := 0; u < cfg.UsersPerSet; u++ {
			user := cohort.NewUser()
			if user.Prefer(res.Expression, resPr.Expression) {
				frPrefs++
			}
			frTotal++
		}
	}
	out := MAPResult{Answers: len(aps), SetsUsed: used, AgreeSets: agree}
	out.MAP, out.Std = stats.MeanStd(aps)
	if frTotal > 0 {
		out.PreferFrPct = 100 * float64(frPrefs) / float64(frTotal)
	}
	return out
}

// ScoreConfig parameterizes the third study (Section 4.1.3).
type ScoreConfig struct {
	PerClass   int // entities per class (paper: top 7)
	UsersPerRE int // graders per description (paper: ~2.5 → 86 answers on 35 REs)
	Seed       int64
}

// DefaultScoreConfig mirrors the paper's study size.
func DefaultScoreConfig() ScoreConfig {
	return ScoreConfig{PerClass: 7, UsersPerRE: 3, Seed: 413}
}

// ScoreResult is the outcome of the perceived-quality study.
type ScoreResult struct {
	Mean, Std      float64
	REs            int
	Answers        int
	ScoredAtLeast3 int
}

// Section413 grades Wikidata REs on the 1–5 interestingness scale: REs are
// mined for the most frequent entities of the evaluation classes and
// simulated users grade each.
func Section413(lab *Lab) ScoreResult {
	return Section413With(lab, DefaultScoreConfig())
}

// Section413With runs the study with explicit parameters.
func Section413With(lab *Lab, cfg ScoreConfig) ScoreResult {
	env := lab.Wikidata()
	perc := study.NewPerception(env.KB, env.Data.TruePop)
	cohort := study.NewCohort(perc, cfg.Seed)

	var res ScoreResult
	var all []float64
	for _, class := range EvalClasses(env.Data.Name) {
		for _, id := range TopOfClass(env, class, cfg.PerClass) {
			miner := core.NewMiner(env.KB, env.EstFr, minerConfig(4096))
			r, err := miner.Mine([]kb.EntID{id})
			if err != nil || !r.Found() {
				continue
			}
			res.REs++
			var sum float64
			scoreAtLeast3 := false
			for u := 0; u < cfg.UsersPerRE; u++ {
				user := cohort.NewUser()
				g := user.Grade(r.Expression)
				all = append(all, float64(g))
				sum += float64(g)
				res.Answers++
			}
			if sum/float64(cfg.UsersPerRE) >= 3 {
				scoreAtLeast3 = true
			}
			if scoreAtLeast3 {
				res.ScoredAtLeast3++
			}
		}
	}
	res.Mean, res.Std = stats.MeanStd(all)
	return res
}
