package experiments

import (
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/stats"
	"github.com/remi-kb/remi/internal/summarize"
)

// Table3Config parameterizes the entity-summarization benchmark
// (Section 4.1.4).
type Table3Config struct {
	Entities int // prominent entities (paper: 80)
	Experts  int // reference summaries per entity (paper: 7)
	Seed     int64
}

// DefaultTable3Config mirrors the FACES/LinkSUM gold standard size.
func DefaultTable3Config() Table3Config {
	return Table3Config{Entities: 80, Experts: 7, Seed: 303}
}

// Table3Row is one method line of Table 3.
type Table3Row struct {
	Method              string
	Top5PO, Top5POStd   float64
	Top5O, Top5OStd     float64
	Top10PO, Top10POStd float64
	Top10O, Top10OStd   float64
}

// Table3Merged is the Section 4.1.4 in-text merged-gold precision triple.
type Table3Merged struct {
	Metric   string
	P, O, PO float64
}

// Table3 reproduces the entity-summarization comparison: FACES-like,
// LinkSUM-like and REMI (Ĉfr / Ĉpr, standard bias, no rdf:type, no
// inverses) against a simulated 7-expert gold standard over prominent
// entities, with the published average-overlap quality metric.
func Table3(lab *Lab) ([]Table3Row, []Table3Merged) {
	return Table3With(lab, DefaultTable3Config())
}

// Table3With runs the benchmark with explicit parameters.
func Table3With(lab *Lab, cfg Table3Config) ([]Table3Row, []Table3Merged) {
	env := lab.DBpedia()
	k := env.KB
	pagerank := prominence.PageRank(k, 0.85, 30, 1e-9)

	// Prominent entities across the evaluation classes.
	classes := EvalClasses(env.Data.Name)
	perClass := cfg.Entities / len(classes)
	var entities []kb.EntID
	for _, class := range classes {
		for _, id := range TopOfClass(env, class, perClass) {
			entities = append(entities, id)
		}
	}

	methods := []string{"FACES", "LinkSUM", "REMI Ĉfr", "REMI Ĉpr"}
	quality := map[string]map[string][]float64{}
	for _, m := range methods {
		quality[m] = map[string][]float64{"5PO": {}, "5O": {}, "10PO": {}, "10O": {}}
	}
	merged := map[string][]float64{"fr-P": {}, "fr-O": {}, "fr-PO": {}, "pr-P": {}, "pr-O": {}, "pr-PO": {}}

	for i, e := range entities {
		for _, size := range []int{5, 10} {
			gold := summarize.SimulateExperts(k, env.Data.TruePop, e, size, cfg.Experts, cfg.Seed+int64(i))
			sums := map[string]summarize.Summary{
				"FACES":    summarize.FACESLike(k, env.PromFr, e, size),
				"LinkSUM":  summarize.LinkSUMLike(k, pagerank, e, size),
				"REMI Ĉfr": summarize.REMITop(k, env.EstFr, e, size),
				"REMI Ĉpr": summarize.REMITop(k, env.EstPr, e, size),
			}
			tag := "5"
			if size == 10 {
				tag = "10"
			}
			for m, s := range sums {
				quality[m][tag+"PO"] = append(quality[m][tag+"PO"], summarize.QualityPO(s, gold))
				quality[m][tag+"O"] = append(quality[m][tag+"O"], summarize.QualityO(s, gold))
			}
			if size == 10 {
				p, o, po := summarize.MergedPrecision(sums["REMI Ĉfr"], gold)
				merged["fr-P"] = append(merged["fr-P"], p)
				merged["fr-O"] = append(merged["fr-O"], o)
				merged["fr-PO"] = append(merged["fr-PO"], po)
				p, o, po = summarize.MergedPrecision(sums["REMI Ĉpr"], gold)
				merged["pr-P"] = append(merged["pr-P"], p)
				merged["pr-O"] = append(merged["pr-O"], o)
				merged["pr-PO"] = append(merged["pr-PO"], po)
			}
		}
	}

	var rows []Table3Row
	for _, m := range methods {
		r := Table3Row{Method: m}
		r.Top5PO, r.Top5POStd = stats.MeanStd(quality[m]["5PO"])
		r.Top5O, r.Top5OStd = stats.MeanStd(quality[m]["5O"])
		r.Top10PO, r.Top10POStd = stats.MeanStd(quality[m]["10PO"])
		r.Top10O, r.Top10OStd = stats.MeanStd(quality[m]["10O"])
		rows = append(rows, r)
	}
	mergedRows := []Table3Merged{
		{Metric: "Ĉfr", P: stats.Mean(merged["fr-P"]), O: stats.Mean(merged["fr-O"]), PO: stats.Mean(merged["fr-PO"])},
		{Metric: "Ĉpr", P: stats.Mean(merged["pr-P"]), O: stats.Mean(merged["pr-O"]), PO: stats.Mean(merged["pr-PO"])},
	}
	return rows, mergedRows
}
