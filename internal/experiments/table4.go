package experiments

import (
	"runtime"
	"time"

	"github.com/remi-kb/remi/internal/amie"
	"github.com/remi-kb/remi/internal/core"
)

// Table4Config parameterizes the runtime comparison (Section 4.2).
type Table4Config struct {
	Sets    int           // entity sets per KB (paper: 100)
	Timeout time.Duration // per-set timeout (paper: 2h on the full KBs)
	Workers int           // P-REMI / AMIE+ threads (0 = NumCPU)
	Seed    int64
	// SkipAmie drops the AMIE+ columns (useful for quick runs; AMIE+
	// dominates the total runtime exactly as in the paper).
	SkipAmie bool
}

// DefaultTable4Config is sized for a laptop run: fewer sets and tighter
// timeouts than the paper's server experiment, same structure.
func DefaultTable4Config() Table4Config {
	return Table4Config{Sets: 30, Timeout: 10 * time.Second, Seed: 404}
}

// Table4Row is one (dataset, language) line of Table 4.
type Table4Row struct {
	Dataset  string
	Language string

	Solutions int // sets for which an RE was found (by REMI)

	AmieSec       float64
	AmieTimeouts  int
	RemiSec       float64
	RemiTimeouts  int
	PRemiSec      float64
	PRemiTimeouts int

	// Average speed-ups of P-REMI over AMIE+ and over REMI (per-set
	// geometric-free arithmetic mean of ratios, as "avg speed-up").
	SpeedupVsAmie float64
	SpeedupVsRemi float64
	// MaxSpeedupVsRemi tracks the best observed ratio (the paper reports a
	// 0.003x–197x range).
	MaxSpeedupVsRemi float64
	// QueueShare is the fraction of P-REMI time spent building and sorting
	// the priority queue (the paper reports it jumping from 0.39% to 9.1%
	// on DBpedia when extending the language).
	QueueShare float64
}

// Table4 runs the laptop-sized default comparison.
func Table4(lab *Lab) []Table4Row {
	return Table4With(lab, DefaultTable4Config())
}

// Table4With reproduces the runtime evaluation: for each KB and language
// bias, the same entity sets are mined with AMIE+ (surrogate-head rule
// mining), sequential REMI and P-REMI, reporting total times, timeouts,
// solution counts and speed-ups.
func Table4With(lab *Lab, cfg Table4Config) []Table4Row {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	var rows []Table4Row
	for _, env := range []*Env{lab.DBpedia(), lab.Wikidata()} {
		sets := SampleSets(env, cfg.Sets, cfg.Seed, 0)
		for _, lang := range []core.Language{core.StandardLanguage, core.ExtendedLanguage} {
			row := Table4Row{Dataset: env.Data.Name, Language: lang.String(), MaxSpeedupVsRemi: 0}
			var speedAmie, speedRemi []float64
			var queueTime, totalPRemi time.Duration

			for _, set := range sets {
				// Sequential REMI.
				seqCfg := core.DefaultConfig()
				seqCfg.Language = lang
				seqCfg.Timeout = cfg.Timeout
				seq := core.NewMiner(env.KB, env.EstFr, seqCfg)
				t0 := time.Now()
				rs, err := seq.Mine(set.IDs)
				remiDur := time.Since(t0)
				if err != nil {
					continue
				}
				row.RemiSec += remiDur.Seconds()
				if rs.Stats.TimedOut {
					row.RemiTimeouts++
				}
				if rs.Found() {
					row.Solutions++
				}

				// P-REMI.
				parCfg := seqCfg
				parCfg.Workers = cfg.Workers
				par := core.NewMiner(env.KB, env.EstFr, parCfg)
				t0 = time.Now()
				rp, err := par.Mine(set.IDs)
				premiDur := time.Since(t0)
				if err != nil {
					continue
				}
				row.PRemiSec += premiDur.Seconds()
				if rp.Stats.TimedOut {
					row.PRemiTimeouts++
				}
				queueTime += rp.Stats.QueueBuild
				totalPRemi += premiDur
				if premiDur > 0 {
					r := remiDur.Seconds() / premiDur.Seconds()
					speedRemi = append(speedRemi, r)
					if r > row.MaxSpeedupVsRemi {
						row.MaxSpeedupVsRemi = r
					}
				}

				// AMIE+.
				if !cfg.SkipAmie {
					aCfg := amie.DefaultConfig()
					aCfg.Workers = cfg.Workers
					aCfg.Timeout = cfg.Timeout
					if lang == core.StandardLanguage {
						aCfg.MaxLen = 3 // head + up to 2 bound atoms ≈ standard conjunctions
					}
					am := amie.NewMiner(env.KB, env.PromFr, aCfg)
					t0 = time.Now()
					ar := am.Mine(set.IDs)
					amieDur := time.Since(t0)
					row.AmieSec += amieDur.Seconds()
					if ar.TimedOut {
						row.AmieTimeouts++
					}
					if premiDur > 0 {
						speedAmie = append(speedAmie, amieDur.Seconds()/premiDur.Seconds())
					}
				}
			}
			row.SpeedupVsAmie = mean(speedAmie)
			row.SpeedupVsRemi = mean(speedRemi)
			if totalPRemi > 0 {
				row.QueueShare = queueTime.Seconds() / totalPRemi.Seconds()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
