package experiments

import (
	"time"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/stats"
	"github.com/remi-kb/remi/internal/study"
)

func rdfIRI(iri string) rdf.Term { return rdf.NewIRI(iri) }

// Table2Config parameterizes the first user study (Section 4.1.1).
type Table2Config struct {
	Sets         int // entity sets (paper: 24)
	UsersPerSet  int // simulated respondents per set (paper: ~2 → 44/48 answers)
	Seed         int64
	CandidateCap int // queue cap guard for pathological sets
}

// DefaultTable2Config mirrors the paper's study size.
func DefaultTable2Config() Table2Config {
	return Table2Config{Sets: 24, UsersPerSet: 2, Seed: 202, CandidateCap: 4096}
}

// Table2Row is one line of Table 2.
type Table2Row struct {
	Metric    string // "Ĉfr" or "Ĉpr"
	Responses int
	P1, P1Std float64
	P2, P2Std float64
	P3, P3Std float64
}

// Table2 reproduces the evaluation of Ĉ: for each entity set, the common
// subgraph expressions are ranked by Ĉ (line 2 of Algorithm 1); the shown
// candidates are the top 3, the worst ranked, and a random one; simulated
// users rank the candidates by perceived simplicity and precision@k compares
// the two rankings.
func Table2(lab *Lab) []Table2Row {
	return Table2With(lab, DefaultTable2Config())
}

// Table2With runs the study with explicit parameters.
func Table2With(lab *Lab, cfg Table2Config) []Table2Row {
	env := lab.DBpedia()
	perc := study.NewPerception(env.KB, env.Data.TruePop)

	var rows []Table2Row
	for _, variant := range []struct {
		name string
		est  *complexity.Estimator
	}{{"Ĉfr", env.EstFr}, {"Ĉpr", env.EstPr}} {
		cohort := study.NewCohort(perc, cfg.Seed)
		// Entity sets are sampled among the top 5% most frequent of each
		// class so that enough subgraph expressions exist to rank.
		sets := SampleSets(env, cfg.Sets, cfg.Seed+7, 0.05)
		var p1s, p2s, p3s []float64
		responses := 0
		rng := newSeededRand(cfg.Seed + 31)
		for _, set := range sets {
			miner := core.NewMiner(env.KB, variant.est, minerConfig(cfg.CandidateCap))
			cands, costs := miner.RankedCandidates(set.IDs)
			if len(cands) < 5 {
				continue
			}
			// Top 3 by Ĉ + worst ranked + a random one (Section 4.1.1).
			pick := []int{0, 1, 2, len(cands) - 1}
			mid := 3
			if len(cands) > 5 {
				mid = 3 + rng.Intn(len(cands)-4)
			}
			pick = append(pick, mid)
			shown := make([]expr.Subgraph, len(pick))
			shownCost := make([]float64, len(pick))
			for i, j := range pick {
				shown[i] = cands[j]
				shownCost[i] = costs[j]
			}
			cRank := rankByCost(shownCost)
			for u := 0; u < cfg.UsersPerSet; u++ {
				user := cohort.NewUser()
				uRank := user.RankSubgraphs(shown)
				p1s = append(p1s, stats.PrecisionAtK(cRank, uRank, 1))
				p2s = append(p2s, stats.PrecisionAtK(cRank, uRank, 2))
				p3s = append(p3s, stats.PrecisionAtK(cRank, uRank, 3))
				responses++
			}
		}
		row := Table2Row{Metric: variant.name, Responses: responses}
		row.P1, row.P1Std = stats.MeanStd(p1s)
		row.P2, row.P2Std = stats.MeanStd(p2s)
		row.P3, row.P3Std = stats.MeanStd(p3s)
		rows = append(rows, row)
	}
	return rows
}

func minerConfig(cap int) core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxCandidates = cap
	cfg.Timeout = 30 * time.Second
	return cfg
}

func newSeededRand(seed int64) *randSource {
	return &randSource{state: uint64(seed)*6364136223846793005 + 1}
}

// randSource is a tiny deterministic PRNG (splitmix-style) so experiment
// sampling stays stable across Go versions.
type randSource struct{ state uint64 }

func (r *randSource) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *randSource) Intn(n int) int { return int(r.next() % uint64(n)) }

func rankByCost(costs []float64) []int {
	idx := make([]int, len(costs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && costs[idx[j]] < costs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
