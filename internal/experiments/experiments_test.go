package experiments

import (
	"testing"
	"time"
)

// testLab returns a small lab shared by the tests in this file.
func testLab() *Lab { return NewLab(42, 0.08) }

func TestTable2Small(t *testing.T) {
	lab := testLab()
	cfg := Table2Config{Sets: 6, UsersPerSet: 2, Seed: 202, CandidateCap: 2048}
	rows := Table2With(lab, cfg)
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Responses == 0 {
			t.Fatalf("%s: no responses", r.Metric)
		}
		for _, p := range []float64{r.P1, r.P2, r.P3} {
			if p < 0 || p > 1 {
				t.Fatalf("%s: precision out of range: %+v", r.Metric, r)
			}
		}
		// The paper's headline shape: p@3 ≥ p@1 (users and Ĉ agree more on
		// the top-3 set than on the single best).
		if r.P3 < r.P1-0.3 {
			t.Errorf("%s: p@3 (%f) unexpectedly below p@1 (%f)", r.Metric, r.P3, r.P1)
		}
	}
}

func TestSection412Small(t *testing.T) {
	lab := testLab()
	cfg := MAPConfig{Sets: 5, UsersPerSet: 2, Seed: 412, MaxAlts: 4}
	res := Section412With(lab, cfg)
	if res.Answers == 0 {
		t.Fatal("no answers collected")
	}
	if res.MAP < 0 || res.MAP > 1 {
		t.Fatalf("MAP out of range: %+v", res)
	}
}

func TestSection413Small(t *testing.T) {
	lab := testLab()
	cfg := ScoreConfig{PerClass: 2, UsersPerRE: 2, Seed: 413}
	res := Section413With(lab, cfg)
	if res.REs == 0 || res.Answers == 0 {
		t.Fatalf("no REs graded: %+v", res)
	}
	if res.Mean < 1 || res.Mean > 5 {
		t.Fatalf("mean grade out of scale: %+v", res)
	}
}

func TestTable3Small(t *testing.T) {
	lab := testLab()
	cfg := Table3Config{Entities: 10, Experts: 3, Seed: 303}
	rows, merged := Table3With(lab, cfg)
	if len(rows) != 4 {
		t.Fatalf("expected 4 method rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Top5PO < 0 || r.Top5PO > 5 || r.Top10PO < 0 || r.Top10PO > 10 {
			t.Fatalf("quality out of range: %+v", r)
		}
		if r.Top10O < r.Top5O-0.01 {
			t.Errorf("%s: top-10 quality below top-5 (%f < %f)", r.Method, r.Top10O, r.Top5O)
		}
	}
	if len(merged) != 2 {
		t.Fatalf("expected merged rows for both metrics")
	}
	for _, m := range merged {
		for _, v := range []float64{m.P, m.O, m.PO} {
			if v < 0 || v > 1 {
				t.Fatalf("merged precision out of range: %+v", m)
			}
		}
	}
}

func TestTable4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime comparison in -short mode")
	}
	lab := testLab()
	cfg := Table4Config{Sets: 4, Timeout: 3 * time.Second, Workers: 4, Seed: 404}
	rows := Table4With(lab, cfg)
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows (2 KBs × 2 languages), got %d", len(rows))
	}
	for _, r := range rows {
		if r.RemiSec <= 0 || r.PRemiSec <= 0 {
			t.Fatalf("missing runtimes: %+v", r)
		}
		if r.AmieSec <= 0 {
			t.Fatalf("missing AMIE runtime: %+v", r)
		}
	}
}

func TestEq1Fits(t *testing.T) {
	lab := testLab()
	rows := Eq1Fits(lab, 10)
	if len(rows) != 4 {
		t.Fatalf("expected 4 fit rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Predicates == 0 {
			t.Fatalf("%s/%s: no predicates fitted", r.Dataset, r.Metric)
		}
		if r.AvgR2 < 0.5 || r.AvgR2 > 1.0 {
			t.Errorf("%s/%s: avg R² = %f outside the power-law regime", r.Dataset, r.Metric, r.AvgR2)
		}
	}
}

func TestSearchSpaceCensus(t *testing.T) {
	lab := testLab()
	rows := SearchSpaceCensus(lab, 6, 32)
	if len(rows) != 3 {
		t.Fatalf("expected 3 census rows, got %d", len(rows))
	}
	if rows[0].Subgraphs == 0 {
		t.Fatal("empty census")
	}
	// Growth must be positive in both steps; the 2-variable step must
	// dominate the 3-atom step (the paper: +270% vs +40%).
	if rows[1].GrowthPct <= 0 || rows[2].GrowthPct <= 0 {
		t.Fatalf("expected positive growth: %+v", rows)
	}
	if rows[2].GrowthPct < rows[1].GrowthPct {
		t.Errorf("second variable (+%.0f%%) should outgrow third atom (+%.0f%%)",
			rows[2].GrowthPct, rows[1].GrowthPct)
	}
}

func TestSampleSetsProportions(t *testing.T) {
	lab := testLab()
	env := lab.DBpedia()
	sets := SampleSets(env, 200, 99, 0)
	count := map[int]int{}
	for _, s := range sets {
		count[len(s.IDs)]++
		if len(s.IDs) == 0 || len(s.IDs) > 3 {
			t.Fatalf("bad set size %d", len(s.IDs))
		}
	}
	if count[1] < count[2] || count[2] < count[3] {
		t.Errorf("size proportions off: %v (want 50/30/20 shape)", count)
	}
}
