// Package experiments wires the full reproduction pipeline: it materializes
// the synthetic DBpedia-like and Wikidata-like datasets, builds their
// prominence stores and estimators, and implements one entry point per
// table/figure of the paper (see DESIGN.md's per-experiment index). Both the
// remi-bench command and the repository-level benchmarks call into this
// package so that printed tables and testing.B benchmarks share one
// implementation.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
)

// Lab owns lazily-built datasets and derived structures.
type Lab struct {
	Seed  int64
	Scale float64

	dbOnce sync.Once
	db     *Env
	wdOnce sync.Once
	wd     *Env
}

// Env bundles one dataset with its indexed KB, prominence stores and
// estimators for both metrics.
type Env struct {
	Data   *datagen.Dataset
	KB     *kb.KB
	PromFr *prominence.Store
	PromPr *prominence.Store
	EstFr  *complexity.Estimator
	EstPr  *complexity.Estimator
}

// NewLab creates a lab; Scale <= 0 defaults to 0.25, which keeps every
// experiment laptop-sized while exercising all code paths.
func NewLab(seed int64, scale float64) *Lab {
	if scale <= 0 {
		scale = 0.25
	}
	return &Lab{Seed: seed, Scale: scale}
}

func buildEnv(d *datagen.Dataset) *Env {
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		panic(fmt.Sprintf("experiments: building %s: %v", d.Name, err))
	}
	promFr := prominence.Build(k, prominence.Fr)
	promPr := prominence.Build(k, prominence.Pr)
	return &Env{
		Data:   d,
		KB:     k,
		PromFr: promFr,
		PromPr: promPr,
		EstFr:  complexity.New(k, promFr, complexity.Compressed),
		EstPr:  complexity.New(k, promPr, complexity.Compressed),
	}
}

// DBpedia returns the DBpedia-like environment, building it on first use.
func (l *Lab) DBpedia() *Env {
	l.dbOnce.Do(func() {
		l.db = buildEnv(datagen.DBpediaLike(datagen.Config{Seed: l.Seed, Scale: l.Scale}))
	})
	return l.db
}

// Wikidata returns the Wikidata-like environment.
func (l *Lab) Wikidata() *Env {
	l.wdOnce.Do(func() {
		l.wd = buildEnv(datagen.WikidataLike(datagen.Config{Seed: l.Seed + 1, Scale: l.Scale}))
	})
	return l.wd
}

// EvalClasses returns the short class names used by the qualitative
// evaluation for each dataset (Section 4.1: Person, Settlement, Album∪Film
// and Organization on DBpedia; Company, City, Film and Human on Wikidata).
func EvalClasses(datasetName string) []string {
	if datasetName == "wikidata-like" {
		return []string{"Company", "City", "Film", "Human"}
	}
	return []string{"Person", "Settlement", "Album", "Film", "Organization"}
}

// EntitySet is one mining task: entities of the same class.
type EntitySet struct {
	Class string
	IRIs  []string
	IDs   []kb.EntID
}

// SampleSets draws entity sets from the evaluation classes following the
// paper's Table 4 proportions: 50% singletons, 30% pairs, 20% triples, all
// members sharing a class. popularityBias > 0 restricts sampling to the top
// fraction of each class ranking (Table 2 uses the top 5%).
func SampleSets(env *Env, n int, seed int64, popularityBias float64) []EntitySet {
	rng := rand.New(rand.NewSource(seed))
	classes := EvalClasses(env.Data.Name)
	var sets []EntitySet
	for i := 0; i < n; i++ {
		size := 1
		switch r := rng.Float64(); {
		case r < 0.5:
			size = 1
		case r < 0.8:
			size = 2
		default:
			size = 3
		}
		class := classes[rng.Intn(len(classes))]
		members := env.Data.Members[class]
		pool := len(members)
		if popularityBias > 0 {
			pool = int(float64(len(members)) * popularityBias)
			if pool < size+2 {
				pool = size + 2
			}
			if pool > len(members) {
				pool = len(members)
			}
		}
		seen := map[int]bool{}
		set := EntitySet{Class: class}
		for len(set.IRIs) < size && len(seen) < pool {
			j := rng.Intn(pool)
			if seen[j] {
				continue
			}
			seen[j] = true
			iri := members[j]
			id, ok := env.KB.EntityID(rdfIRI(iri))
			if !ok {
				continue
			}
			set.IRIs = append(set.IRIs, iri)
			set.IDs = append(set.IDs, id)
		}
		if len(set.IDs) == size {
			sets = append(sets, set)
		} else {
			i-- // resample
		}
	}
	return sets
}

// TopOfClass returns the n most frequent entities of a class (generator
// order is popularity order).
func TopOfClass(env *Env, class string, n int) []kb.EntID {
	members := env.Data.Members[class]
	if n > len(members) {
		n = len(members)
	}
	out := make([]kb.EntID, 0, n)
	for _, iri := range members[:n] {
		if id, ok := env.KB.EntityID(rdfIRI(iri)); ok {
			out = append(out, id)
		}
	}
	return out
}

// SortedCopy returns a sorted copy of ids.
func SortedCopy(ids []kb.EntID) []kb.EntID {
	out := append([]kb.EntID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
