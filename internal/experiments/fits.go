package experiments

import (
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/kb"
)

// FitRow reports the Eq. 1 power-law fit quality for one (dataset, metric)
// pair; the paper reports average R² of 0.85 (DBpedia, fr), 0.88 (Wikidata,
// fr) and 0.91 (DBpedia, pr).
type FitRow struct {
	Dataset    string
	Metric     string
	AvgR2      float64
	Predicates int // predicates with enough distinct objects to fit
}

// Eq1Fits measures how well log-rank correlates with log-frequency across
// predicates, the correlation REMI exploits to compress its conditional
// rankings (Section 3.5.3). minPoints filters predicates with too few
// distinct ranked objects for a meaningful fit.
func Eq1Fits(lab *Lab, minPoints int) []FitRow {
	if minPoints <= 0 {
		minPoints = 20
	}
	var rows []FitRow
	db, wd := lab.DBpedia(), lab.Wikidata()
	for _, x := range []struct {
		env    *Env
		metric string
		avgFn  func() (float64, int)
	}{
		{db, "fr", func() (float64, int) { return db.PromFr.AverageFitR2(minPoints) }},
		{db, "pr", func() (float64, int) { return db.PromPr.AverageFitR2(minPoints) }},
		{wd, "fr", func() (float64, int) { return wd.PromFr.AverageFitR2(minPoints) }},
		{wd, "pr", func() (float64, int) { return wd.PromPr.AverageFitR2(minPoints) }},
	} {
		avg, n := x.avgFn()
		rows = append(rows, FitRow{Dataset: x.env.Data.Name, Metric: x.metric, AvgR2: avg, Predicates: n})
	}
	return rows
}

// CensusRow is one language-bias census line for the Section 3.2
// observations.
type CensusRow struct {
	Label        string
	MaxAtoms     int
	MaxExtraVars int
	Subgraphs    int
	// GrowthPct is the growth relative to the previous row (the paper
	// reports +40% for the third atom and +270% for the second variable).
	GrowthPct float64
}

// SearchSpaceCensus counts the subgraph expressions REMI must handle under
// increasingly permissive biases over a sample of entities.
func SearchSpaceCensus(lab *Lab, entities int, seed int64) []CensusRow {
	env := lab.DBpedia()
	sets := SampleSets(env, entities, seed, 0.05)
	var ids []kb.EntID
	for _, s := range sets {
		ids = append(ids, s.IDs[0])
	}
	biases := []core.CensusBias{
		{MaxAtoms: 2, MaxExtraVars: 1},
		{MaxAtoms: 3, MaxExtraVars: 1},
		{MaxAtoms: 3, MaxExtraVars: 2},
	}
	reports := core.RunCensus(env.KB, ids, biases, 0.05)
	labels := []string{"≤2 atoms, 1 var", "≤3 atoms, 1 var (REMI)", "≤3 atoms, 2 vars"}
	rows := make([]CensusRow, len(reports))
	for i, r := range reports {
		rows[i] = CensusRow{
			Label:        labels[i],
			MaxAtoms:     r.Bias.MaxAtoms,
			MaxExtraVars: r.Bias.MaxExtraVars,
			Subgraphs:    r.Total,
		}
		if i > 0 && rows[i-1].Subgraphs > 0 {
			rows[i].GrowthPct = 100 * (float64(r.Total) - float64(rows[i-1].Subgraphs)) / float64(rows[i-1].Subgraphs)
		}
	}
	return rows
}
