package zipf

import (
	"math"
	"math/rand"
	"testing"
)

func TestSamplerRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewSampler(rng, 1.1, 50)
	if z.N() != 50 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		k := z.Next()
		if k < 0 || k >= 50 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestSamplerSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewSampler(rng, 1.2, 100)
	counts := make([]int, 100)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 9 roughly by (10/1)^1.2 ≈ 16.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 8 || ratio > 32 {
		t.Fatalf("rank0/rank9 ratio = %f, want ≈ 16", ratio)
	}
	// Monotone head.
	for i := 1; i < 5; i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("counts not decreasing at %d: %d > %d", i, counts[i], counts[i-1])
		}
	}
}

func TestSamplerMatchesTheoreticalCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := 1.0
	n := 20
	z := NewSampler(rng, s, n)
	draws := 100000
	counts := make([]float64, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	norm := 0.0
	for k := 0; k < n; k++ {
		norm += Weight(s, k)
	}
	for k := 0; k < n; k++ {
		want := Weight(s, k) / norm
		got := counts[k] / float64(draws)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d: got %f want %f", k, got, want)
		}
	}
}

func TestWeight(t *testing.T) {
	if Weight(1, 0) != 1 {
		t.Fatal("Weight(1,0) != 1")
	}
	if math.Abs(Weight(1, 1)-0.5) > 1e-12 {
		t.Fatal("Weight(1,1) != 1/2")
	}
	if Weight(2, 1) != 0.25 {
		t.Fatal("Weight(2,1) != 1/4")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewSampler(rand.New(rand.NewSource(7)), 1.05, 30)
	b := NewSampler(rand.New(rand.NewSource(7)), 1.05, 30)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fn := range []func(){
		func() { NewSampler(rng, 0, 10) },
		func() { NewSampler(rng, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
