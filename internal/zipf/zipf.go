// Package zipf provides seeded power-law samplers for the synthetic
// DBpedia-like and Wikidata-like datasets. The paper's complexity model rests
// on the empirical observation that concept frequencies in KBs follow a
// power law (Section 3.5.3, Eq. 1); the generators in internal/datagen use
// this package to reproduce that regime.
package zipf

import (
	"math"
	"math/rand"
)

// Sampler draws values in [0, n) with P(k) ∝ 1/(k+1)^s, i.e. rank-0 items
// are the most popular. It precomputes the CDF for O(log n) sampling, making
// the distribution exactly Zipfian (unlike rejection-based samplers) and
// fully deterministic for a given rand source.
type Sampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewSampler builds a Zipf sampler over n ranks with exponent s > 0.
func NewSampler(rng *rand.Rand, s float64, n int) *Sampler {
	if n <= 0 {
		panic("zipf: n must be positive")
	}
	if s <= 0 {
		panic("zipf: exponent must be positive")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1.0 / math.Pow(float64(k+1), s)
		cdf[k] = acc
	}
	for k := range cdf {
		cdf[k] /= acc
	}
	return &Sampler{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Sampler) N() int { return len(z.cdf) }

// Next draws a rank in [0, N()).
func (z *Sampler) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weight returns the unnormalized popularity weight of rank k, useful as a
// ground-truth prominence signal for the simulated user studies.
func Weight(s float64, k int) float64 {
	return 1.0 / math.Pow(float64(k+1), s)
}
