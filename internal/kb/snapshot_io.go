package kb

// KB snapshots: zero-copy serialization of a built KB into the sectioned
// container of internal/kb/snapshot. WriteSnapshot persists everything the
// accessors read — the dictionary string table (plus its term-order
// permutation, so Lookup needs no rebuilt hash map), the kind array,
// predicate names, per-predicate CSR indexes concatenated into shared
// arenas, the adjacency arena and the frequency statistics. OpenSnapshot
// maps the file and casts the sections straight into the []EntID/[]uint32
// slices the binary searches walk: cold start costs page-in I/O plus one
// checksum pass instead of N-Triples parsing, deduplication and the global
// (p,s,o) sort. Datasets are packed once (kbgen -snapshot, System.
// SaveSnapshot) and opened many times.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"unsafe"

	"github.com/remi-kb/remi/internal/hdt"
	"github.com/remi-kb/remi/internal/kb/snapshot"
	"github.com/remi-kb/remi/internal/rdf"
)

// Section ids of the KB snapshot layout (format-stable; see the package
// comment of internal/kb/snapshot for the container framing).
//
// Format version 2 replaced the raw term table (secTermOffs + secTermBlob)
// with front-coded term blocks (secTermRank + secTermFC + secTermFCOff) and
// stopped writing the three sections that are exact functions of the pso CSR
// arrays (secAdjOff, secAdjArena, secPairs — see derived.go). Version-1
// images keep all their sections and remain fully readable.
const (
	secMeta       snapshot.SectionID = 1  // []uint64: counts and special predicate ids
	secKinds      snapshot.SectionID = 2  // []rdf.Kind, one per entity
	secTermOffs   snapshot.SectionID = 3  // v1: []uint64, len nEnt+1: term blob boundaries
	secTermBlob   snapshot.SectionID = 4  // v1: term values, concatenated
	secTermSorted snapshot.SectionID = 5  // []rdf.ID: ids in ascending term order
	secPredOffs   snapshot.SectionID = 6  // []uint64, len nPred+1: name blob boundaries
	secPredBlob   snapshot.SectionID = 7  // predicate names, concatenated
	secBaseOf     snapshot.SectionID = 8  // []PredID: inverse -> base mapping
	secEntFreq    snapshot.SectionID = 9  // []uint32: base-fact occurrences
	secAdjOff     snapshot.SectionID = 10 // v1: []uint32, len nEnt+1
	secAdjArena   snapshot.SectionID = 11 // v1: []PO
	secPredCounts snapshot.SectionID = 12 // []uint32, 3 per predicate: nPairs, nPsoKey, nPosKey
	secPairs      snapshot.SectionID = 13 // v1: []Pair, all predicates concatenated
	secPsoKey     snapshot.SectionID = 14 // []EntID arena
	secPsoOff     snapshot.SectionID = 15 // []uint32 arena (per-predicate runs of nPsoKey+1)
	secPsoVal     snapshot.SectionID = 16 // []EntID arena
	secPosKey     snapshot.SectionID = 17 // []EntID arena
	secPosOff     snapshot.SectionID = 18 // []uint32 arena (per-predicate runs of nPosKey+1)
	secPosVal     snapshot.SectionID = 19 // []EntID arena
	secTermRank   snapshot.SectionID = 20 // v2: []uint32, rank[id-1] = position in term order
	secTermFC     snapshot.SectionID = 21 // v2: front-coded serialized terms, ascending term order
	secTermFCOff  snapshot.SectionID = 22 // v2: []uint64 block start offsets + final end offset
)

// metaWords is the number of uint64 fields in secMeta for format version 1.
// Readers accept longer metas (future fields append; old readers ignore).
const metaWords = 6

// WriteSnapshot serializes the KB in the current (version 2) format: the
// dictionary becomes front-coded serialized-term blocks plus the rank
// permutation (no raw blob, no per-entity offset table), and the pair lists
// and adjacency arena are not written at all — a reader derives them from the
// pso CSR on first use. The CSR arenas are handed to the container as views
// over the live index arrays wherever the in-memory layout is already
// contiguous; only the per-predicate arrays are concatenated into shared
// arenas (a pack-once copy).
func (k *KB) WriteSnapshot(w io.Writer) error {
	sw := snapshot.NewWriter()
	k.addCommonSections(sw)

	// Dictionary, v2 layout: terms serialized with their kind prefix and
	// front-coded in ascending term order. Decode(id) walks one 16-entry
	// block at rank[id-1]; Lookup binary-searches block heads.
	sorted := k.dict.SortedByTerm()
	rank := make([]uint32, len(k.kind))
	var fcb hdt.FCBuilder
	for r, id := range sorted {
		rank[id-1] = uint32(r)
		fcb.Append(hdt.SerializeTerm(k.dict.Decode(id)))
	}
	blob, blockOffs, _ := fcb.Finish()
	sw.Add(secTermRank, snapshot.Bytes(rank))
	sw.Add(secTermFC, blob)
	sw.Add(secTermFCOff, snapshot.Bytes(blockOffs))

	_, err := sw.WriteTo(w)
	return err
}

// WriteSnapshotLegacy serializes the KB in the version-1 format: raw term
// blob with per-entity offsets, and the pair lists plus adjacency arena
// stored eagerly. Kept for downgrade exports to deployments still running a
// v1-only reader (and as the old side of the format-equivalence tests);
// images are ~2x larger than WriteSnapshot's.
func (k *KB) WriteSnapshotLegacy(w io.Writer) error {
	k.ensurePairs()
	k.ensureAdjacency()
	sw := snapshot.NewWriter()
	sw.SetVersion(1, 1)
	k.addCommonSections(sw)

	// Dictionary, v1 layout: concatenated values + boundary offsets.
	nEnt := len(k.kind)
	termOffs := make([]uint64, nEnt+1)
	values := make([]string, nEnt)
	total := 0
	for i := 0; i < nEnt; i++ {
		values[i] = k.dict.Decode(rdf.ID(i + 1)).Value
		total += len(values[i])
		termOffs[i+1] = uint64(total)
	}
	termBlob := make([]byte, 0, total)
	for _, v := range values {
		termBlob = append(termBlob, v...)
	}
	sw.Add(secTermOffs, snapshot.Bytes(termOffs))
	sw.Add(secTermBlob, termBlob)

	// Derived sections v1 stores eagerly.
	sw.Add(secAdjOff, snapshot.Bytes(k.adjOff))
	sw.Add(secAdjArena, snapshot.Bytes(k.adjArena))
	pairs := make([]Pair, 0, k.nFacts)
	for i := range k.preds {
		pairs = append(pairs, k.preds[i].pairs...)
	}
	sw.Add(secPairs, snapshot.Bytes(pairs))

	_, err := sw.WriteTo(w)
	return err
}

// addCommonSections adds every section shared by the v1 and v2 layouts.
func (k *KB) addCommonSections(sw *snapshot.Writer) {
	nEnt := len(k.kind)
	nPred := len(k.predNames)

	meta := []uint64{
		uint64(nEnt), uint64(nPred), uint64(k.nBase),
		uint64(k.nFacts), uint64(k.typePred), uint64(k.lblPred),
	}
	sw.Add(secMeta, snapshot.Bytes(meta))
	sw.Add(secKinds, snapshot.Bytes(k.kind))
	sw.Add(secTermSorted, snapshot.Bytes(k.dict.SortedByTerm()))

	predOffs := make([]uint64, nPred+1)
	total := 0
	for i, name := range k.predNames {
		total += len(name)
		predOffs[i+1] = uint64(total)
	}
	predBlob := make([]byte, 0, total)
	for _, name := range k.predNames {
		predBlob = append(predBlob, name...)
	}
	sw.Add(secPredOffs, snapshot.Bytes(predOffs))
	sw.Add(secPredBlob, predBlob)

	sw.Add(secBaseOf, snapshot.Bytes(k.baseOf))
	sw.Add(secEntFreq, snapshot.Bytes(k.entFreq))

	// Per-predicate CSR indexes: three counts per predicate, then each of
	// the six arrays concatenated across predicates in predicate order.
	counts := make([]uint32, 0, nPred*3)
	var nPairs, nPsoKeys, nPosKeys int
	for i := range k.preds {
		ix := &k.preds[i]
		counts = append(counts, uint32(len(ix.psoVal)), uint32(len(ix.psoKey)), uint32(len(ix.posKey)))
		nPairs += len(ix.psoVal)
		nPsoKeys += len(ix.psoKey)
		nPosKeys += len(ix.posKey)
	}
	psoKey := make([]EntID, 0, nPsoKeys)
	psoOff := make([]uint32, 0, nPsoKeys+nPred)
	psoVal := make([]EntID, 0, nPairs)
	posKey := make([]EntID, 0, nPosKeys)
	posOff := make([]uint32, 0, nPosKeys+nPred)
	posVal := make([]EntID, 0, nPairs)
	for i := range k.preds {
		ix := &k.preds[i]
		psoKey = append(psoKey, ix.psoKey...)
		psoOff = append(psoOff, ix.psoOff...)
		psoVal = append(psoVal, ix.psoVal...)
		posKey = append(posKey, ix.posKey...)
		posOff = append(posOff, ix.posOff...)
		posVal = append(posVal, ix.posVal...)
	}
	sw.Add(secPredCounts, snapshot.Bytes(counts))
	sw.Add(secPsoKey, snapshot.Bytes(psoKey))
	sw.Add(secPsoOff, snapshot.Bytes(psoOff))
	sw.Add(secPsoVal, snapshot.Bytes(psoVal))
	sw.Add(secPosKey, snapshot.Bytes(posKey))
	sw.Add(secPosOff, snapshot.Bytes(posOff))
	sw.Add(secPosVal, snapshot.Bytes(posVal))
}

// WriteSnapshotFile writes the snapshot to path crash-safely: the bytes go
// to a temp file in the same directory, are fsynced, and only then rename
// into place. A reader (a replica pulling from a shared snapshot dir, a
// concurrent kbgen) therefore sees either the previous complete image or
// the new complete image — never a torn half-write.
func (k *KB) WriteSnapshotFile(path string) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := k.WriteSnapshot(f); err != nil {
		return fail(err)
	}
	// The rename only makes the name durable; Sync makes the bytes durable
	// first, so a crash between the two cannot leave a named empty file.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SnapshotOptions tunes OpenSnapshotWith.
type SnapshotOptions struct {
	// NoMmap forces the portable load path: one contiguous read into a
	// single aligned heap arena instead of an mmap view.
	NoMmap bool
}

// OpenSnapshot opens a KB snapshot written by WriteSnapshot. On unix the
// file is mmap'd and the KB's index slices alias the mapping directly.
// The mapping is refcounted: the returned KB holds one reference, derived
// KBs (ApplyPatch) take their own, and KB.Close releases — the mapping is
// reclaimed when the last holder closes, so reload- and compaction-heavy
// servers do not accumulate dead mappings. Because accessors (Objects,
// Facts, AdjacencyOf, ...) hand out slice views the garbage collector
// cannot trace back to the KB, Close is an explicit promise that no such
// view is still live; a KB that is never closed pins its mapping for the
// process lifetime, which remains the safe default for embedders.
// SnapshotOptions.NoMmap instead uses a single heap arena, traced (and
// freed) like any other allocation.
func OpenSnapshot(path string) (*KB, error) {
	return OpenSnapshotWith(path, SnapshotOptions{})
}

// OpenSnapshotWith is OpenSnapshot with explicit options.
func OpenSnapshotWith(path string, opts SnapshotOptions) (*KB, error) {
	r, err := snapshot.Open(path, snapshot.Options{NoMmap: opts.NoMmap})
	if err != nil {
		return nil, err
	}
	k, err := fromSnapshotReader(r)
	if err != nil {
		r.Close()
		return nil, fmt.Errorf("kb: snapshot %s: %w", path, err)
	}
	k.src = r
	return k, nil
}

// IsSnapshotFile reports whether path starts with the snapshot magic
// (format sniffing for loaders that accept .nt, .hdt and snapshots alike).
func IsSnapshotFile(path string) bool { return snapshot.SniffFile(path) }

// secView fetches a section and casts it, enforcing an exact element count
// when wantLen >= 0.
func secView[T any](r *snapshot.Reader, id snapshot.SectionID, name string, wantLen int) ([]T, error) {
	b, ok := r.Section(id)
	if !ok {
		return nil, fmt.Errorf("missing %s section", name)
	}
	v, err := snapshot.View[T](b)
	if err != nil {
		return nil, fmt.Errorf("%s section: %w", name, err)
	}
	if wantLen >= 0 && len(v) != wantLen {
		return nil, fmt.Errorf("%s section: %d elements, want %d", name, len(v), wantLen)
	}
	return v, nil
}

// checkAscending validates that ids ascend strictly — the invariant every
// binary search in the accessors depends on. Like the frozen-dictionary
// permutation check, this exists because an out-of-order array in a
// well-checksummed image (future/buggy writer) would not crash: it would
// make lookups silently miss existing facts.
func checkAscending(name string, ids []EntID) error {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			return fmt.Errorf("%s: not strictly ascending at %d", name, i)
		}
	}
	return nil
}

// checkRunsAscending validates that every CSR value run (vals sliced by the
// off boundaries) ascends strictly.
func checkRunsAscending(name string, off []uint32, vals []EntID) error {
	for r := 1; r < len(off); r++ {
		if err := checkAscending(name, vals[off[r-1]:off[r]]); err != nil {
			return err
		}
	}
	return nil
}

// checkOffsets validates a CSR-style offset run: monotone non-decreasing,
// starting at first and ending at last.
func checkOffsets[T uint32 | uint64](name string, offs []T, first, last uint64) error {
	if len(offs) == 0 || uint64(offs[0]) != first {
		return fmt.Errorf("%s: bad initial offset", name)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return fmt.Errorf("%s: offsets not monotone at %d", name, i)
		}
	}
	if uint64(offs[len(offs)-1]) != last {
		return fmt.Errorf("%s: final offset %d, want %d", name, offs[len(offs)-1], last)
	}
	return nil
}

// blobString returns the [lo,hi) window of blob as a string aliasing the
// underlying image bytes (no copy; the image is immutable for the KB's
// lifetime).
func blobString(blob []byte, lo, hi uint64) string {
	if lo == hi {
		return ""
	}
	return unsafe.String(&blob[lo], hi-lo)
}

// fromSnapshotReader reconstructs a KB over an opened snapshot image. The
// index arenas — everything the mining hot path binary-searches — are
// zero-copy views; the per-predicate bookkeeping (predicate index map, id
// list, slice headers) is small.
//
// Version 2 images get a fully lazy dictionary: the front-coded term blocks
// stay in the image, Decode/Lookup work block-at-a-time, and open allocates
// no O(entities) term structure — open cost is the container checksum pass
// plus page-in. Version 1 images keep the eager path: the dictionary's
// []rdf.Term table is filled in one linear pass (string headers only; the
// bytes stay in the image), and the stored pair + adjacency sections are
// viewed directly.
func fromSnapshotReader(r *snapshot.Reader) (*KB, error) {
	meta, err := secView[uint64](r, secMeta, "meta", -1)
	if err != nil {
		return nil, err
	}
	if len(meta) < metaWords {
		return nil, fmt.Errorf("meta section: %d words, want >= %d", len(meta), metaWords)
	}
	nEnt := int(meta[0])
	nPred := int(meta[1])
	nFacts := int(meta[3])
	if uint64(nEnt) != meta[0] || uint64(nPred) != meta[1] || uint64(nFacts) != meta[3] {
		return nil, fmt.Errorf("meta section: counts overflow int")
	}
	v2 := r.Version() >= 2

	kinds, err := secView[rdf.Kind](r, secKinds, "kinds", nEnt)
	if err != nil {
		return nil, err
	}
	sorted, err := secView[rdf.ID](r, secTermSorted, "term order", nEnt)
	if err != nil {
		return nil, err
	}
	var dict *rdf.Dictionary
	if v2 {
		rank, err := secView[uint32](r, secTermRank, "term ranks", nEnt)
		if err != nil {
			return nil, err
		}
		fcBlob, ok := r.Section(secTermFC)
		if !ok {
			return nil, fmt.Errorf("missing front-coded term section")
		}
		blocks := (nEnt + hdt.BlockSize - 1) / hdt.BlockSize
		fcOffs, err := secView[uint64](r, secTermFCOff, "term block offsets", blocks+1)
		if err != nil {
			return nil, err
		}
		set, err := hdt.NewFCSet(fcBlob, fcOffs, nEnt)
		if err != nil {
			return nil, err
		}
		// Block heads must ascend in term order and agree with the kind
		// table: a cheap n/16 spot check standing in for the full O(n)
		// order validation the lazy open deliberately skips. (An
		// out-of-order array would not crash — it would make lookups
		// silently miss existing terms.)
		var prev rdf.Term
		for b := 0; b < blocks; b++ {
			head, err := set.TermAt(b * hdt.BlockSize)
			if err != nil {
				return nil, fmt.Errorf("term block %d: %w", b, err)
			}
			if b > 0 && prev.Compare(head) >= 0 {
				return nil, fmt.Errorf("term blocks: heads not ascending at block %d", b)
			}
			if id := sorted[b*hdt.BlockSize]; id == 0 || int(id) > nEnt {
				return nil, fmt.Errorf("term order: id %d out of range", id)
			} else if kinds[id-1] != head.Kind {
				return nil, fmt.Errorf("term blocks: head kind mismatch at block %d", b)
			}
			prev = head
		}
		dict, err = rdf.NewLazyDictionary(&fcTerms{set: set}, sorted, rank)
		if err != nil {
			return nil, err
		}
	} else {
		termOffs, err := secView[uint64](r, secTermOffs, "term offsets", nEnt+1)
		if err != nil {
			return nil, err
		}
		termBlob, ok := r.Section(secTermBlob)
		if !ok {
			return nil, fmt.Errorf("missing term blob section")
		}
		if err := checkOffsets("term offsets", termOffs, 0, uint64(len(termBlob))); err != nil {
			return nil, err
		}
		terms := make([]rdf.Term, nEnt)
		for i := range terms {
			terms[i] = rdf.Term{Kind: kinds[i], Value: blobString(termBlob, termOffs[i], termOffs[i+1])}
		}
		dict, err = rdf.NewFrozenDictionary(terms, sorted)
		if err != nil {
			return nil, err
		}
	}

	predOffs, err := secView[uint64](r, secPredOffs, "predicate offsets", nPred+1)
	if err != nil {
		return nil, err
	}
	predBlob, ok := r.Section(secPredBlob)
	if !ok {
		return nil, fmt.Errorf("missing predicate blob section")
	}
	if err := checkOffsets("predicate offsets", predOffs, 0, uint64(len(predBlob))); err != nil {
		return nil, err
	}
	baseOf, err := secView[PredID](r, secBaseOf, "baseOf", nPred)
	if err != nil {
		return nil, err
	}
	for i, b := range baseOf {
		if int(b) > nPred {
			return nil, fmt.Errorf("baseOf section: predicate %d maps to unknown base %d", i+1, b)
		}
	}
	entFreq, err := secView[uint32](r, secEntFreq, "entity frequencies", nEnt)
	if err != nil {
		return nil, err
	}
	var adjOff []uint32
	var adjArena []PO
	var pairs []Pair
	if !v2 {
		adjOff, err = secView[uint32](r, secAdjOff, "adjacency offsets", nEnt+1)
		if err != nil {
			return nil, err
		}
		adjArena, err = secView[PO](r, secAdjArena, "adjacency arena", nFacts)
		if err != nil {
			return nil, err
		}
		if err := checkOffsets("adjacency offsets", adjOff, 0, uint64(nFacts)); err != nil {
			return nil, err
		}
	}

	counts, err := secView[uint32](r, secPredCounts, "predicate counts", nPred*3)
	if err != nil {
		return nil, err
	}
	var nPairs, nPsoKeys, nPosKeys int
	for p := 0; p < nPred; p++ {
		nPairs += int(counts[p*3])
		nPsoKeys += int(counts[p*3+1])
		nPosKeys += int(counts[p*3+2])
	}
	if nPairs != nFacts {
		return nil, fmt.Errorf("predicate counts: %d pairs, meta says %d facts", nPairs, nFacts)
	}
	if !v2 {
		pairs, err = secView[Pair](r, secPairs, "pairs", nPairs)
		if err != nil {
			return nil, err
		}
	}
	psoKey, err := secView[EntID](r, secPsoKey, "pso keys", nPsoKeys)
	if err != nil {
		return nil, err
	}
	psoOff, err := secView[uint32](r, secPsoOff, "pso offsets", nPsoKeys+nPred)
	if err != nil {
		return nil, err
	}
	psoVal, err := secView[EntID](r, secPsoVal, "pso values", nPairs)
	if err != nil {
		return nil, err
	}
	posKey, err := secView[EntID](r, secPosKey, "pos keys", nPosKeys)
	if err != nil {
		return nil, err
	}
	posOff, err := secView[uint32](r, secPosOff, "pos offsets", nPosKeys+nPred)
	if err != nil {
		return nil, err
	}
	posVal, err := secView[EntID](r, secPosVal, "pos values", nPairs)
	if err != nil {
		return nil, err
	}

	k := &KB{
		dict:     dict,
		kind:     kinds,
		baseOf:   baseOf,
		nFacts:   nFacts,
		nBase:    int(meta[2]),
		entFreq:  entFreq,
		adjOff:   adjOff,
		adjArena: adjArena,
		typePred: PredID(meta[4]),
		lblPred:  PredID(meta[5]),
	}
	if !v2 {
		k.pairsReady.Store(true)
		k.adjReady.Store(true)
	}
	if int(k.typePred) > nPred || int(k.lblPred) > nPred {
		return nil, fmt.Errorf("meta section: special predicate id out of range")
	}

	k.predNames = make([]string, nPred)
	k.predIdx = make(map[string]PredID, nPred)
	k.predIDs = make([]PredID, nPred)
	for i := 0; i < nPred; i++ {
		name := blobString(predBlob, predOffs[i], predOffs[i+1])
		k.predNames[i] = name
		k.predIdx[name] = PredID(i + 1)
		k.predIDs[i] = PredID(i + 1)
	}

	// Carve each predicate's CSR index out of the shared arenas. The stored
	// per-predicate offset runs are relative (packCSR starts every run at
	// zero), so slicing alone reconstructs the exact in-memory layout.
	k.preds = make([]predIndex, nPred)
	var cPair, cPsoKey, cPsoOff, cPosKey, cPosOff int
	for p := 0; p < nPred; p++ {
		np := int(counts[p*3])
		nsk := int(counts[p*3+1])
		nok := int(counts[p*3+2])
		ix := &k.preds[p]
		if !v2 {
			ix.pairs = pairs[cPair : cPair+np : cPair+np]
		}
		ix.psoKey = psoKey[cPsoKey : cPsoKey+nsk : cPsoKey+nsk]
		ix.psoOff = psoOff[cPsoOff : cPsoOff+nsk+1 : cPsoOff+nsk+1]
		ix.psoVal = psoVal[cPair : cPair+np : cPair+np]
		ix.posKey = posKey[cPosKey : cPosKey+nok : cPosKey+nok]
		ix.posOff = posOff[cPosOff : cPosOff+nok+1 : cPosOff+nok+1]
		ix.posVal = posVal[cPair : cPair+np : cPair+np]
		if err := checkOffsets(fmt.Sprintf("pso offsets (predicate %d)", p+1), ix.psoOff, 0, uint64(np)); err != nil {
			return nil, err
		}
		if err := checkOffsets(fmt.Sprintf("pos offsets (predicate %d)", p+1), ix.posOff, 0, uint64(np)); err != nil {
			return nil, err
		}
		if err := checkAscending(fmt.Sprintf("pso keys (predicate %d)", p+1), ix.psoKey); err != nil {
			return nil, err
		}
		if err := checkAscending(fmt.Sprintf("pos keys (predicate %d)", p+1), ix.posKey); err != nil {
			return nil, err
		}
		if err := checkRunsAscending(fmt.Sprintf("pso values (predicate %d)", p+1), ix.psoOff, ix.psoVal); err != nil {
			return nil, err
		}
		if err := checkRunsAscending(fmt.Sprintf("pos values (predicate %d)", p+1), ix.posOff, ix.posVal); err != nil {
			return nil, err
		}
		// Facts(p) consumers assume the pair list is (S,O)-sorted and
		// duplicate-free (e.g. the Closed2/Closed3 adjacent-subject dedup).
		// v2 derives pairs from the pso arrays, whose key/run checks above
		// establish the same invariant.
		for i := 1; i < np && !v2; i++ {
			a, b := ix.pairs[i-1], ix.pairs[i]
			if a.S > b.S || (a.S == b.S && a.O >= b.O) {
				return nil, fmt.Errorf("pairs (predicate %d): not (S,O)-sorted at %d", p+1, i)
			}
		}
		cPair += np
		cPsoKey += nsk
		cPsoOff += nsk + 1
		cPosKey += nok
		cPosOff += nok + 1
	}
	// Adjacency runs must ascend by (P,O) — the enumerator walks them
	// assuming predicate-grouped order. (v2: no stored arena; the derivation
	// in derived.go produces this order by construction.)
	for e := 1; e < len(adjOff); e++ {
		run := adjArena[adjOff[e-1]:adjOff[e]]
		for i := 1; i < len(run); i++ {
			a, b := run[i-1], run[i]
			if a.P > b.P || (a.P == b.P && a.O >= b.O) {
				return nil, fmt.Errorf("adjacency (entity %d): not (P,O)-sorted at %d", e, i)
			}
		}
	}
	return k, nil
}
