package kb

// Streaming KB construction: external-sort ingestion for inputs whose raw
// triple slice does not fit comfortably in memory (DBpedia-class N-Triples
// dumps). The in-memory Builder holds every parsed triple until Build;
// BuildStreaming instead dictionary-encodes each triple on arrival into a
// fixed-size buffer of 12-byte (p,s,o) records, spills sorted deduplicated
// runs to temp files when the buffer fills, and k-way merges the runs twice:
//
//	pass A  counts base facts and entity frequencies (the prominence input)
//	pass B  builds each predicate's CSR index from its merged (s,o) run and
//	        collects the inverse-materialization pairs for prominent objects
//
// Only one predicate's pair list is in memory at a time during pass B, and
// the pair lists + adjacency arena of the result are left to lazy derivation
// (derived.go), so peak memory is the dictionary plus the final CSR arrays —
// never the full triple slice. The output is indistinguishable from the
// in-memory build: the same dedup, the same (p,s,o) global order, the same
// first-touch inverse-predicate ids, element-identical indexes and therefore
// byte-identical snapshots (asserted by tests and the kb_scale bench phase).

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"github.com/remi-kb/remi/internal/rdf"
)

// borrowedSource is implemented by sources (like *rdf.Reader) whose
// ReadBorrowed yields triples with term values that may alias an internal
// buffer, valid only until the next read. Safe here because the builder
// copies every term into its own storage before reading again.
type borrowedSource interface {
	ReadBorrowed() (rdf.Triple, error)
}

// TripleSource yields triples one at a time, returning io.EOF after the
// last; *rdf.Reader implements it.
type TripleSource interface {
	Read() (rdf.Triple, error)
}

// StreamConfig tunes BuildStreamingWith.
type StreamConfig struct {
	// MaxBufferedTriples is the spill threshold: at most this many encoded
	// triples are held before a sorted run is written to disk. Zero means
	// DefaultMaxBufferedTriples. Tests use tiny values to force multi-run
	// merges on small inputs.
	MaxBufferedTriples int
	// TmpDir receives the run files (removed on return); empty means the
	// system temp dir.
	TmpDir string
}

// DefaultMaxBufferedTriples bounds the encoded-triple buffer at 4M records
// (48 MB), a small fraction of what the triples' CSR indexes will occupy.
const DefaultMaxBufferedTriples = 4 << 20

// BuildStreaming builds a KB from a triple stream with bounded buffering;
// see BuildStreamingWith.
func BuildStreaming(src TripleSource, opts Options) (*KB, error) {
	return BuildStreamingWith(src, opts, StreamConfig{})
}

// BuildStreamingWith builds a KB from a triple stream without ever holding
// the full triple list in memory, spilling sorted runs to cfg.TmpDir and
// merging them. The result is element-identical to
// FromTriples(allTriples, opts) — same ids, same indexes, byte-identical
// snapshots.
func BuildStreamingWith(src TripleSource, opts Options, cfg StreamConfig) (*KB, error) {
	maxBuf := cfg.MaxBufferedTriples
	if maxBuf <= 0 {
		maxBuf = DefaultMaxBufferedTriples
	}

	// Ingest: encode terms and predicates in arrival order (identical
	// first-touch id assignment to Builder.Add), spill sorted runs.
	dict := rdf.NewDictionary()
	predIdx := make(map[string]PredID)
	var predNames []string
	buf := make([]triple, 0, min(maxBuf, 1<<16))
	var runs []*os.File
	cleanup := func() {
		for _, f := range runs {
			f.Close()
			os.Remove(f.Name())
		}
	}
	defer cleanup()

	spill := func() error {
		sortDedupTriples(&buf)
		f, err := os.CreateTemp(cfg.TmpDir, "kb-stream-run-*")
		if err != nil {
			return err
		}
		runs = append(runs, f)
		w := newRunWriter(f)
		for _, tr := range buf {
			w.write(tr)
		}
		if err := w.flush(); err != nil {
			return fmt.Errorf("kb: spill run: %w", err)
		}
		buf = buf[:0]
		return nil
	}

	// Every term is copied into builder-owned storage (the dictionary
	// clones on insert, predicates are cloned below) before the next read,
	// so prefer a source's borrowed-read path when it offers one: for
	// *rdf.Reader that skips the per-line string allocation, which is
	// otherwise half the allocation bill of the whole build.
	read := src.Read
	if bs, ok := src.(borrowedSource); ok {
		read = bs.ReadBorrowed
	}
	for {
		tr, err := read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if tr.P.Kind != rdf.IRI {
			return nil, fmt.Errorf("kb: predicate must be an IRI: %s", tr)
		}
		if tr.S.Kind == rdf.Literal {
			return nil, fmt.Errorf("kb: literal subject: %s", tr)
		}
		p, ok := predIdx[tr.P.Value]
		if !ok {
			name := strings.Clone(tr.P.Value)
			predNames = append(predNames, name)
			p = PredID(len(predNames))
			predIdx[name] = p
		}
		s := EntID(dict.Encode(tr.S))
		o := EntID(dict.Encode(tr.O))
		buf = append(buf, triple{s, p, o})
		if len(buf) >= maxBuf {
			if err := spill(); err != nil {
				return nil, err
			}
		}
	}
	if len(runs) > 0 && len(buf) > 0 {
		if err := spill(); err != nil {
			return nil, err
		}
	}
	// Single-run case: the whole (deduplicated) input fit in the buffer;
	// iterate it in place, no disk round-trip.
	if len(runs) == 0 {
		sortDedupTriples(&buf)
	}

	nPred := len(predNames)
	k := &KB{
		dict:      dict,
		predNames: predNames,
		predIdx:   predIdx,
		baseOf:    make([]PredID, nPred),
	}
	terms := dict.Terms()
	k.kind = make([]rdf.Kind, len(terms))
	for i, t := range terms {
		k.kind[i] = t.Kind
	}

	// Pass A: base-fact count and entity frequencies over the merged,
	// globally deduplicated stream.
	k.entFreq = make([]uint32, len(terms))
	err := eachMerged(runs, buf, func(tr triple) error {
		k.nBase++
		k.entFreq[tr.s-1]++
		k.entFreq[tr.o-1]++
		return nil
	})
	if err != nil {
		return nil, err
	}

	var prominent *EntSet
	if opts.InverseTopFraction > 0 && len(terms) > 0 {
		prominent = NewEntSet(prominentIDs(k.entFreq, opts.InverseTopFraction), len(terms))
	}

	// Pass B: per-predicate CSR builds. The merged stream arrives in
	// (p,s,o) order, so each predicate's pairs form one contiguous sorted
	// run; inverse pairs are collected per inverse predicate (first-touch
	// assignment in base order, exactly like Builder.Build) and indexed
	// after the base predicates, preserving the global predicate order.
	k.preds = make([]predIndex, nPred)
	inv := make([]PredID, nPred)
	var invPairs [][]Pair // invPairs[g] belongs to predicate nPred+g+1
	scratch := make([]Pair, 0, 1<<12)
	var curPred PredID
	finish := func() {
		if curPred != 0 {
			k.preds[curPred-1] = indexFromSortedRun(scratch)
			k.nFacts += len(scratch)
		}
		scratch = scratch[:0]
	}
	err = eachMerged(runs, buf, func(tr triple) error {
		if tr.p != curPred {
			finish()
			curPred = tr.p
		}
		scratch = append(scratch, Pair{S: tr.s, O: tr.o})
		if prominent != nil && k.kind[tr.o-1] != rdf.Literal && prominent.Contains(tr.o) {
			ip := inv[tr.p-1]
			if ip == 0 {
				name := k.predNames[tr.p-1] + InverseMarker
				k.predNames = append(k.predNames, name)
				k.baseOf = append(k.baseOf, tr.p)
				ip = PredID(len(k.predNames))
				k.predIdx[name] = ip
				inv[tr.p-1] = ip
				invPairs = append(invPairs, nil)
			}
			invPairs[int(ip)-nPred-1] = append(invPairs[int(ip)-nPred-1], Pair{S: tr.o, O: tr.s})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	finish()

	k.preds = append(k.preds, make([]predIndex, len(invPairs))...)
	for g, pairs := range invPairs {
		slices.SortFunc(pairs, cmpPairSO)
		k.preds[nPred+g] = indexFromSortedRun(pairs)
		k.nFacts += len(pairs)
		invPairs[g] = nil
	}

	// The pair lists and adjacency arena stay lazy (derived.go): the
	// snapshot-packing path never needs them, and a mining process derives
	// them once on first use.
	k.predIDs = make([]PredID, len(k.predNames))
	for i := range k.predIDs {
		k.predIDs[i] = PredID(i + 1)
	}
	if opts.TypePredicate != "" {
		k.typePred = k.predIdx[opts.TypePredicate]
	}
	if opts.LabelPredicate != "" {
		k.lblPred = k.predIdx[opts.LabelPredicate]
	}
	return k, nil
}

// indexFromSortedRun packs one predicate's (s,o)-sorted pair run into both
// CSR orientations without retaining the input slice (unlike indexFromPairs,
// so the caller can reuse its scratch buffer and the pair list stays lazy).
func indexFromSortedRun(pairs []Pair) predIndex {
	var ix predIndex
	ix.psoKey, ix.psoOff, ix.psoVal = packCSR(pairs, false)
	byObject := make([]Pair, len(pairs))
	copy(byObject, pairs)
	slices.SortFunc(byObject, func(a, b Pair) int {
		if a.O != b.O {
			return int(a.O) - int(b.O)
		}
		return int(a.S) - int(b.S)
	})
	ix.posKey, ix.posOff, ix.posVal = packCSR(byObject, true)
	return ix
}

// sortDedupTriples sorts a run by (p,s,o) and removes adjacent duplicates
// in place.
func sortDedupTriples(buf *[]triple) {
	b := *buf
	slices.SortFunc(b, cmpTriple)
	out := b[:0]
	for i, tr := range b {
		if i == 0 || tr != b[i-1] {
			out = append(out, tr)
		}
	}
	*buf = out
}

func cmpTriple(a, b triple) int {
	if a.p != b.p {
		return int(a.p) - int(b.p)
	}
	if a.s != b.s {
		return int(a.s) - int(b.s)
	}
	return int(a.o) - int(b.o)
}

// runRecordSize is the on-disk size of one encoded triple: three uint32s
// (p, s, o), little-endian.
const runRecordSize = 12

// runWriter buffers encoded triples into a run file.
type runWriter struct {
	f   *os.File
	buf []byte
	err error
}

func newRunWriter(f *os.File) *runWriter {
	return &runWriter{f: f, buf: make([]byte, 0, 1<<16)}
}

func (w *runWriter) write(tr triple) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(tr.p))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(tr.s))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(tr.o))
	if len(w.buf) >= 1<<16-runRecordSize {
		_, w.err = w.f.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *runWriter) flush() error {
	if w.err == nil && len(w.buf) > 0 {
		_, w.err = w.f.Write(w.buf)
		w.buf = w.buf[:0]
	}
	return w.err
}

// runReader streams a run file back with its own read buffer.
type runReader struct {
	f    *os.File
	buf  []byte
	pos  int
	fill int
	cur  triple
	done bool
}

func newRunReader(f *os.File) (*runReader, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	r := &runReader{f: f, buf: make([]byte, 1<<16)}
	if err := r.advance(); err != nil {
		return nil, err
	}
	return r, nil
}

// advance loads the next record into cur, setting done at EOF. A trailing
// partial record is corruption (runs are written whole), not a clean end.
func (r *runReader) advance() error {
	if r.fill-r.pos < runRecordSize {
		n := copy(r.buf, r.buf[r.pos:r.fill])
		r.pos, r.fill = 0, n
		for r.fill < runRecordSize {
			m, err := r.f.Read(r.buf[r.fill:])
			r.fill += m
			if err == io.EOF {
				if r.fill == 0 {
					r.done = true
					return nil
				}
				if r.fill < runRecordSize {
					return fmt.Errorf("kb: truncated run file %s", r.f.Name())
				}
				break
			}
			if err != nil {
				return err
			}
		}
	}
	b := r.buf[r.pos:]
	r.cur = triple{
		p: PredID(binary.LittleEndian.Uint32(b[0:])),
		s: EntID(binary.LittleEndian.Uint32(b[4:])),
		o: EntID(binary.LittleEndian.Uint32(b[8:])),
	}
	r.pos += runRecordSize
	return nil
}

// runHeap is a min-heap of run readers keyed by their current record; the
// k-way merge pops the global minimum and re-pushes the advanced reader.
type runHeap []*runReader

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return cmpTriple(h[i].cur, h[j].cur) < 0 }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() (x any)      { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

// eachMerged yields the globally merged, deduplicated (p,s,o)-ordered triple
// stream: either the single in-memory run, or a k-way merge of the spilled
// run files. Each call restarts from the beginning (the files are re-read).
func eachMerged(runs []*os.File, mem []triple, f func(triple) error) error {
	if len(runs) == 0 {
		for _, tr := range mem {
			if err := f(tr); err != nil {
				return err
			}
		}
		return nil
	}
	h := make(runHeap, 0, len(runs))
	for _, rf := range runs {
		r, err := newRunReader(rf)
		if err != nil {
			return err
		}
		if !r.done {
			h = append(h, r)
		}
	}
	heap.Init(&h)
	var last triple
	first := true
	for len(h) > 0 {
		r := h[0]
		tr := r.cur
		if err := r.advance(); err != nil {
			return err
		}
		if r.done {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
		// Runs are deduplicated individually; the same triple can still
		// appear in several runs, so dedup across the merge too.
		if first || tr != last {
			if err := f(tr); err != nil {
				return err
			}
			last, first = tr, false
		}
	}
	return nil
}
