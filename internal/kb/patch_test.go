package kb

import (
	"path/filepath"
	"testing"

	"github.com/remi-kb/remi/internal/rdf"
)

// patchTestKB builds a small KB with two predicates and no inverses.
func patchTestKB(t *testing.T) *KB {
	t.Helper()
	return buildTest(t, Options{},
		[3]string{"paris", "capitalOf", "france"},
		[3]string{"paris", "cityIn", "france"},
		[3]string{"lyon", "cityIn", "france"},
		[3]string{"berlin", "capitalOf", "germany"},
	)
}

func TestApplyPatchEmptyReturnsIndependentCopy(t *testing.T) {
	k := patchTestKB(t)
	k2, err := k.ApplyPatch(Patch{})
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k {
		t.Fatal("empty patch returned the base KB itself")
	}
	if k2.NumBaseFacts() != k.NumBaseFacts() || k2.NumEntities() != k.NumEntities() {
		t.Fatalf("empty patch changed counts: %d/%d vs %d/%d",
			k2.NumBaseFacts(), k2.NumEntities(), k.NumBaseFacts(), k.NumEntities())
	}
	if err := k2.Close(); err != nil {
		t.Fatal(err)
	}
	// The base must still answer queries after the copy is closed.
	if !k.HasFact(k.MustPredicateID("http://e/cityIn"), k.MustEntityID("http://e/lyon"), k.MustEntityID("http://e/france")) {
		t.Fatal("base KB broken after closing derived copy")
	}
}

func TestApplyPatchAddAndRetract(t *testing.T) {
	k := patchTestKB(t)
	cityIn := k.MustPredicateID("http://e/cityIn")
	lyon := k.MustEntityID("http://e/lyon")
	france := k.MustEntityID("http://e/france")
	germany := k.MustEntityID("http://e/germany")

	k2, err := k.ApplyPatch(Patch{
		Adds: map[PredID][]Pair{cityIn: {{S: lyon, O: germany}}},
		Dels: map[PredID][]Pair{cityIn: {{S: lyon, O: france}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !k2.HasFact(cityIn, lyon, germany) || k2.HasFact(cityIn, lyon, france) {
		t.Fatal("patch edits not reflected")
	}
	// Base untouched.
	if k.HasFact(cityIn, lyon, germany) || !k.HasFact(cityIn, lyon, france) {
		t.Fatal("base KB mutated by ApplyPatch")
	}
	if k2.NumBaseFacts() != k.NumBaseFacts() {
		t.Fatalf("nBase = %d, want %d", k2.NumBaseFacts(), k.NumBaseFacts())
	}
	// Frequencies moved with the facts: france lost one occurrence, germany
	// gained one, lyon is unchanged (one del, one add).
	if got := k2.EntityFreq(france); got != k.EntityFreq(france)-1 {
		t.Fatalf("EntityFreq(france) = %d", got)
	}
	if got := k2.EntityFreq(germany); got != k.EntityFreq(germany)+1 {
		t.Fatalf("EntityFreq(germany) = %d", got)
	}
	if got := k2.EntityFreq(lyon); got != k.EntityFreq(lyon) {
		t.Fatalf("EntityFreq(lyon) = %d", got)
	}
	// Adjacency and reverse index track the change.
	if subj := k2.Subjects(cityIn, germany); len(subj) != 1 || subj[0] != lyon {
		t.Fatalf("Subjects(cityIn, germany) = %v", subj)
	}
	adj := k2.AdjacencyOf(lyon)
	if len(adj) != 1 || adj[0] != (PO{P: cityIn, O: germany}) {
		t.Fatalf("AdjacencyOf(lyon) = %v", adj)
	}
}

func TestApplyPatchNewTermsAndPredicates(t *testing.T) {
	k := patchTestKB(t)
	nEnt := EntID(k.NumEntities())
	nPred := PredID(k.NumPredicates())
	paris := k.MustEntityID("http://e/paris")

	k2, err := k.ApplyPatch(Patch{
		ExtraTerms: []rdf.Term{rdf.NewIRI("http://e/seine"), rdf.NewLiteral("2.2M")},
		ExtraPreds: []string{"http://e/population", "http://e/riverOf"},
		Adds: map[PredID][]Pair{
			nPred + 1: {{S: paris, O: nEnt + 2}}, // population(paris, "2.2M")
			nPred + 2: {{S: nEnt + 1, O: paris}}, // riverOf(seine, paris)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seine := k2.MustEntityID("http://e/seine")
	if seine != nEnt+1 {
		t.Fatalf("seine id = %d, want %d", seine, nEnt+1)
	}
	pop := k2.MustPredicateID("http://e/population")
	riv := k2.MustPredicateID("http://e/riverOf")
	lit, ok := k2.EntityID(rdf.NewLiteral("2.2M"))
	if !ok || !k2.IsLiteral(lit) {
		t.Fatalf("literal term missing or wrong kind (id %d)", lit)
	}
	if !k2.HasFact(pop, paris, lit) || !k2.HasFact(riv, seine, paris) {
		t.Fatal("facts on new predicates missing")
	}
	if got := k2.NumBaseFacts(); got != k.NumBaseFacts()+2 {
		t.Fatalf("NumBaseFacts = %d, want %d", got, k.NumBaseFacts()+2)
	}
	if got := k2.EntityFreq(seine); got != 1 {
		t.Fatalf("EntityFreq(seine) = %d", got)
	}
	adj := k2.AdjacencyOf(seine)
	if len(adj) != 1 || adj[0] != (PO{P: riv, O: paris}) {
		t.Fatalf("AdjacencyOf(seine) = %v", adj)
	}
	// The base dictionary must not resolve the new term.
	if _, ok := k.EntityID(rdf.NewIRI("http://e/seine")); ok {
		t.Fatal("base dictionary grew")
	}
}

func TestApplyPatchRejectsInvariantViolations(t *testing.T) {
	k := patchTestKB(t)
	cityIn := k.MustPredicateID("http://e/cityIn")
	lyon := k.MustEntityID("http://e/lyon")
	france := k.MustEntityID("http://e/france")
	germany := k.MustEntityID("http://e/germany")

	cases := []struct {
		name string
		p    Patch
	}{
		{"add of existing fact", Patch{Adds: map[PredID][]Pair{cityIn: {{S: lyon, O: france}}}}},
		{"retract of absent fact", Patch{Dels: map[PredID][]Pair{cityIn: {{S: lyon, O: germany}}}}},
		{"retract past end of run", Patch{Dels: map[PredID][]Pair{cityIn: {{S: 1 << 20, O: 1}}}}},
		{"predicate id out of range", Patch{Adds: map[PredID][]Pair{PredID(99): {{S: lyon, O: france}}}}},
		{"del on new predicate", Patch{ExtraPreds: []string{"http://e/x"}, Dels: map[PredID][]Pair{PredID(k.NumPredicates() + 1): {{S: lyon, O: france}}}}},
		{"entity id out of range", Patch{Adds: map[PredID][]Pair{cityIn: {{S: lyon, O: EntID(99)}}}}},
		{"duplicate new predicate name", Patch{ExtraPreds: []string{"http://e/cityIn"}}},
		{"duplicate new term", Patch{ExtraTerms: []rdf.Term{rdf.NewIRI("http://e/lyon")}}},
	}
	for _, tc := range cases {
		if _, err := k.ApplyPatch(tc.p); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	cityOk := k.HasFact(cityIn, lyon, france)
	if !cityOk {
		t.Fatal("base KB damaged by rejected patches")
	}
}

func TestApplyPatchSharesUntouchedIndexes(t *testing.T) {
	k := patchTestKB(t)
	capOf := k.MustPredicateID("http://e/capitalOf")
	cityIn := k.MustPredicateID("http://e/cityIn")
	lyon := k.MustEntityID("http://e/lyon")
	germany := k.MustEntityID("http://e/germany")

	k2, err := k.ApplyPatch(Patch{Adds: map[PredID][]Pair{cityIn: {{S: lyon, O: germany}}}})
	if err != nil {
		t.Fatal(err)
	}
	// capitalOf was untouched: its index arrays must be shared, not copied.
	if &k.preds[capOf-1].psoVal[0] != &k2.preds[capOf-1].psoVal[0] {
		t.Fatal("untouched predicate index was copied")
	}
	// cityIn was touched: it must have been rebuilt.
	if &k.preds[cityIn-1].psoVal[0] == &k2.preds[cityIn-1].psoVal[0] {
		t.Fatal("touched predicate index still shared with base")
	}
}

func TestApplyPatchSnapshotRefCounting(t *testing.T) {
	k := patchTestKB(t)
	path := filepath.Join(t.TempDir(), "kb.snap")
	if err := k.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	base, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.MappingRefs(); got != 1 {
		t.Fatalf("MappingRefs after open = %d", got)
	}
	cityIn := base.MustPredicateID("http://e/cityIn")
	lyon := base.MustEntityID("http://e/lyon")
	germany := base.MustEntityID("http://e/germany")
	derived, err := base.ApplyPatch(Patch{Adds: map[PredID][]Pair{cityIn: {{S: lyon, O: germany}}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := derived.MappingRefs(); got != 2 {
		t.Fatalf("MappingRefs after derive = %d", got)
	}
	// Closing the base must not invalidate the derived KB: it holds its own
	// reference on the image its shared index slices alias.
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	if !derived.HasFact(cityIn, lyon, germany) {
		t.Fatal("derived KB broken after base close")
	}
	if got := derived.MappingRefs(); got != 1 {
		t.Fatalf("MappingRefs after base close = %d", got)
	}
	if err := derived.Close(); err != nil {
		t.Fatal(err)
	}
	if got := derived.MappingRefs(); got != 0 {
		t.Fatalf("MappingRefs after final close = %d", got)
	}
	// Double close is a no-op.
	if err := derived.Close(); err != nil {
		t.Fatal(err)
	}
}
