// Package delta implements the mutable overlay of the live-KB layer: a
// per-predicate add/retract edit set over an immutable base KB. The overlay
// is the in-memory twin of the write-ahead log — the server replays WAL
// records into an Overlay at boot and applies acked mutations to it at
// runtime — and materializes into a queryable *kb.KB through
// kb.(*KB).ApplyPatch, so mining over a mutated KB runs against the same
// CSR machinery (and produces the same answers) as mining over a freshly
// parsed KB holding the same facts.
//
// # Semantics
//
// Mutations are idempotent upserts and retracts: upserting a fact that is
// already present, or retracting one that is absent, is a no-op rather than
// an error. Idempotence is what makes at-least-once WAL replay safe — a
// crash between fsync and the in-memory apply means the record is replayed
// on the next boot, and replaying an already-applied batch changes nothing.
//
// # Inverse predicates
//
// The base KB materializes inverse predicates p⁻¹ for prominent objects
// (Section 4 of the paper). The overlay keeps that structure coherent under
// a frozen-prominence policy: an added or retracted fact p(s,o) is mirrored
// into p⁻¹(o,s) exactly when the base has an inverse for p, o is not a
// literal, and o already appears as the subject of some inverse fact in the
// base (i.e. o was in the prominent set when the base was built). Entities
// that only become prominent through live mutations gain their inverses at
// the next full rebuild, not incrementally — prominence is a global ranking
// and recomputing it per mutation would defeat the point of a delta layer.
// New predicates introduced through the overlay get no inverse until a
// rebuild for the same reason.
//
// # Concurrency
//
// An Overlay is not safe for concurrent use. The server serializes all
// mutations per KB and serves reads from materialized (immutable) KBs, so
// the overlay itself is only ever touched under the mutation lock.
package delta

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// ErrInvalidOp wraps every Validate rejection, so callers (the HTTP admin
// plane) can distinguish a caller error from an infrastructure failure.
var ErrInvalidOp = errors.New("invalid mutation")

// Op is a single mutation: an upsert (Retract=false) or retract
// (Retract=true) of the fact P(S,O).
type Op struct {
	Retract bool
	S, P, O rdf.Term
}

// String renders the op for error messages and logs.
func (op Op) String() string {
	verb := "upsert"
	if op.Retract {
		verb = "retract"
	}
	return fmt.Sprintf("%s %s %s %s", verb, op.S, op.P, op.O)
}

// Overlay is a mutable edit set over an immutable base KB. The zero value
// is not usable; construct with New.
type Overlay struct {
	base      *kb.KB
	baseEnts  int
	basePreds int

	// Terms and predicates minted by the overlay, in id order: newTerms[i]
	// has id baseEnts+i+1, newPreds[i] has id basePreds+i+1.
	newTerms  []rdf.Term
	newTermID map[rdf.Term]kb.EntID
	newPreds  []string
	newPredID map[string]kb.PredID

	// adds[p] and dels[p] are (S,O)-sorted and disjoint: a pair is never in
	// both, adds are absent from the base, dels are present in it.
	adds map[kb.PredID][]kb.Pair
	dels map[kb.PredID][]kb.Pair

	// inv maps each base predicate to its materialized inverse (when one
	// exists); invSubj holds the entities appearing as subject of at least
	// one inverse fact in the base — the frozen prominent-set proxy that
	// gates mirroring.
	inv     map[kb.PredID]kb.PredID
	invSubj map[kb.EntID]bool
}

// New returns an empty overlay over base. The base must stay reachable and
// unchanged for the overlay's lifetime.
func New(base *kb.KB) *Overlay {
	ov := &Overlay{
		base:      base,
		baseEnts:  base.NumEntities(),
		basePreds: base.NumPredicates(),
		newTermID: make(map[rdf.Term]kb.EntID),
		newPredID: make(map[string]kb.PredID),
		adds:      make(map[kb.PredID][]kb.Pair),
		dels:      make(map[kb.PredID][]kb.Pair),
		inv:       make(map[kb.PredID]kb.PredID),
		invSubj:   make(map[kb.EntID]bool),
	}
	for _, p := range base.Predicates() {
		bp := base.BaseOf(p)
		if bp == 0 {
			continue
		}
		ov.inv[bp] = p
		for _, pr := range base.Facts(p) {
			ov.invSubj[pr.S] = true
		}
	}
	return ov
}

// Base returns the KB the overlay edits.
func (ov *Overlay) Base() *kb.KB { return ov.base }

// PendingAdds returns the number of facts added over the base (inverse
// mirrors included); PendingDels the number retracted from it.
func (ov *Overlay) PendingAdds() int { return pairCount(ov.adds) }

// PendingDels returns the number of base facts retracted by the overlay.
func (ov *Overlay) PendingDels() int { return pairCount(ov.dels) }

// NewTerms returns the number of terms minted by the overlay.
func (ov *Overlay) NewTerms() int { return len(ov.newTerms) }

// NewPreds returns the number of predicates minted by the overlay.
func (ov *Overlay) NewPreds() int { return len(ov.newPreds) }

func pairCount(m map[kb.PredID][]kb.Pair) int {
	n := 0
	for _, prs := range m {
		n += len(prs)
	}
	return n
}

// Validate checks a batch of ops against the rules of the data model
// without mutating the overlay: P must be an IRI and must not name (or
// look like) an inverse predicate — inverse facts are derived, never
// asserted — and S must not be a literal. It returns the first violation.
// A batch that validates cleanly is guaranteed to apply without error,
// which is what lets the server ack a WAL record before applying it.
func (ov *Overlay) Validate(ops []Op) error {
	for i, op := range ops {
		if op.P.Kind != rdf.IRI {
			return fmt.Errorf("%w: op %d (%s): predicate must be an IRI", ErrInvalidOp, i, op)
		}
		if strings.Contains(op.P.Value, kb.InverseMarker) {
			return fmt.Errorf("%w: op %d (%s): predicate names an inverse; mutate the base predicate instead", ErrInvalidOp, i, op)
		}
		if p, ok := ov.predID(op.P.Value, false); ok && int(p) <= ov.basePreds && ov.base.IsInverse(p) {
			return fmt.Errorf("%w: op %d (%s): predicate is a materialized inverse; mutate the base predicate instead", ErrInvalidOp, i, op)
		}
		if op.S.Kind == rdf.Literal {
			return fmt.Errorf("%w: op %d (%s): subject must not be a literal", ErrInvalidOp, i, op)
		}
	}
	return nil
}

// Apply validates ops and folds them into the overlay. It returns the
// number of ops that changed state (idempotent re-applications are counted
// as applied but change nothing). On a validation error the overlay is
// untouched: validation is a pure pre-pass and mutation is infallible.
func (ov *Overlay) Apply(ops []Op) (changed int, err error) {
	if err := ov.Validate(ops); err != nil {
		return 0, err
	}
	for _, op := range ops {
		if ov.applyOne(op) {
			changed++
		}
	}
	return changed, nil
}

func (ov *Overlay) applyOne(op Op) bool {
	if op.Retract {
		s, ok1 := ov.entID(op.S, false)
		p, ok2 := ov.predID(op.P.Value, false)
		o, ok3 := ov.entID(op.O, false)
		if !ok1 || !ok2 || !ok3 || !ov.HasFact(p, s, o) {
			return false // unknown term or absent fact: retract is a no-op
		}
		ov.delFact(p, s, o)
		if ip, ok := ov.inv[p]; ok && op.O.Kind != rdf.Literal && ov.invSubj[o] && ov.HasFact(ip, o, s) {
			ov.delFact(ip, o, s)
		}
		return true
	}
	s, _ := ov.entID(op.S, true)
	p, _ := ov.predID(op.P.Value, true)
	o, _ := ov.entID(op.O, true)
	if ov.HasFact(p, s, o) {
		return false
	}
	ov.addFact(p, s, o)
	if ip, ok := ov.inv[p]; ok && op.O.Kind != rdf.Literal && ov.invSubj[o] && !ov.HasFact(ip, o, s) {
		ov.addFact(ip, o, s)
	}
	return true
}

// entID resolves a term against base dictionary then overlay-minted terms,
// minting a new id when alloc is set.
func (ov *Overlay) entID(t rdf.Term, alloc bool) (kb.EntID, bool) {
	if id, ok := ov.base.EntityID(t); ok {
		return id, true
	}
	if id, ok := ov.newTermID[t]; ok {
		return id, true
	}
	if !alloc {
		return 0, false
	}
	ov.newTerms = append(ov.newTerms, t)
	id := kb.EntID(ov.baseEnts + len(ov.newTerms))
	ov.newTermID[t] = id
	return id, true
}

func (ov *Overlay) predID(name string, alloc bool) (kb.PredID, bool) {
	if p, ok := ov.base.PredicateID(name); ok {
		return p, true
	}
	if p, ok := ov.newPredID[name]; ok {
		return p, true
	}
	if !alloc {
		return 0, false
	}
	ov.newPreds = append(ov.newPreds, name)
	p := kb.PredID(ov.basePreds + len(ov.newPreds))
	ov.newPredID[name] = p
	return p, true
}

// addFact records p(s,o) as present: a pending retract is cancelled,
// otherwise the pair joins the add set. Caller guarantees the fact is
// currently absent from the merged view.
func (ov *Overlay) addFact(p kb.PredID, s, o kb.EntID) {
	if i, ok := searchPair(ov.dels[p], s, o); ok {
		ov.dels[p] = slices.Delete(ov.dels[p], i, i+1)
		if len(ov.dels[p]) == 0 {
			delete(ov.dels, p)
		}
		return
	}
	i, _ := searchPair(ov.adds[p], s, o)
	ov.adds[p] = slices.Insert(ov.adds[p], i, kb.Pair{S: s, O: o})
}

// delFact records p(s,o) as absent: a pending add is cancelled, otherwise
// the pair (a base fact) joins the del set. Caller guarantees the fact is
// currently present in the merged view.
func (ov *Overlay) delFact(p kb.PredID, s, o kb.EntID) {
	if i, ok := searchPair(ov.adds[p], s, o); ok {
		ov.adds[p] = slices.Delete(ov.adds[p], i, i+1)
		if len(ov.adds[p]) == 0 {
			delete(ov.adds, p)
		}
		return
	}
	i, _ := searchPair(ov.dels[p], s, o)
	ov.dels[p] = slices.Insert(ov.dels[p], i, kb.Pair{S: s, O: o})
}

// searchPair binary-searches a (S,O)-sorted pair list.
func searchPair(ps []kb.Pair, s, o kb.EntID) (int, bool) {
	return slices.BinarySearchFunc(ps, kb.Pair{S: s, O: o}, func(a, b kb.Pair) int {
		if a.S != b.S {
			return int(a.S) - int(b.S)
		}
		return int(a.O) - int(b.O)
	})
}

// inBase reports whether (p, s, o) all fall inside the base id spaces —
// overlay-minted ids have no base index entries at all.
func (ov *Overlay) inBase(p kb.PredID, s, o kb.EntID) bool {
	return int(p) <= ov.basePreds && int(s) <= ov.baseEnts && int(o) <= ov.baseEnts
}

// HasFact reports whether p(s,o) holds in the merged base+delta view.
func (ov *Overlay) HasFact(p kb.PredID, s, o kb.EntID) bool {
	if _, ok := searchPair(ov.adds[p], s, o); ok {
		return true
	}
	if _, ok := searchPair(ov.dels[p], s, o); ok {
		return false
	}
	return ov.inBase(p, s, o) && ov.base.HasFact(p, s, o)
}

// subjRun returns the slice of a (S,O)-sorted pair list with subject s.
func subjRun(ps []kb.Pair, s kb.EntID) []kb.Pair {
	lo, _ := searchPair(ps, s, 0)
	hi := lo
	for hi < len(ps) && ps[hi].S == s {
		hi++
	}
	return ps[lo:hi]
}

// Objects returns the sorted objects o with p(s,o) in the merged view.
// When the delta does not touch the run, the base's zero-copy view is
// returned; otherwise a fresh slice is allocated.
func (ov *Overlay) Objects(p kb.PredID, s kb.EntID) []kb.EntID {
	var base []kb.EntID
	if int(p) <= ov.basePreds && int(s) <= ov.baseEnts {
		base = ov.base.Objects(p, s)
	}
	ad := subjRun(ov.adds[p], s)
	dl := subjRun(ov.dels[p], s)
	if len(ad) == 0 && len(dl) == 0 {
		return base
	}
	out := make([]kb.EntID, 0, len(base)+len(ad)-len(dl))
	i, a, d := 0, 0, 0
	for i < len(base) || a < len(ad) {
		if i < len(base) && d < len(dl) && base[i] == dl[d].O {
			i++
			d++
			continue
		}
		if a < len(ad) && (i >= len(base) || ad[a].O < base[i]) {
			out = append(out, ad[a].O)
			a++
		} else {
			out = append(out, base[i])
			i++
		}
	}
	return out
}

// Subjects returns the sorted subjects s with p(s,o) in the merged view.
// The delta sides are scanned linearly: add/del sets are bounded by the
// WAL between compactions, the base side stays a CSR run lookup.
func (ov *Overlay) Subjects(p kb.PredID, o kb.EntID) []kb.EntID {
	var base []kb.EntID
	if int(p) <= ov.basePreds && int(o) <= ov.baseEnts {
		base = ov.base.Subjects(p, o)
	}
	var ad, dl []kb.EntID
	for _, pr := range ov.adds[p] {
		if pr.O == o {
			ad = append(ad, pr.S)
		}
	}
	for _, pr := range ov.dels[p] {
		if pr.O == o {
			dl = append(dl, pr.S)
		}
	}
	if len(ad) == 0 && len(dl) == 0 {
		return base
	}
	out := make([]kb.EntID, 0, len(base)+len(ad)-len(dl))
	i, a, d := 0, 0, 0
	for i < len(base) || a < len(ad) {
		if i < len(base) && d < len(dl) && base[i] == dl[d] {
			i++
			d++
			continue
		}
		if a < len(ad) && (i >= len(base) || ad[a] < base[i]) {
			out = append(out, ad[a])
			a++
		} else {
			out = append(out, base[i])
			i++
		}
	}
	return out
}

// ObjFreq returns the merged conditional frequency fr(o|p).
func (ov *Overlay) ObjFreq(p kb.PredID, o kb.EntID) int {
	n := 0
	if int(p) <= ov.basePreds && int(o) <= ov.baseEnts {
		n = ov.base.ObjFreq(p, o)
	}
	for _, pr := range ov.adds[p] {
		if pr.O == o {
			n++
		}
	}
	for _, pr := range ov.dels[p] {
		if pr.O == o {
			n--
		}
	}
	return n
}

// AdjacencyOf returns the merged (predicate, object) adjacency of e,
// sorted by (P,O). Untouched entities get the base's zero-copy view.
func (ov *Overlay) AdjacencyOf(e kb.EntID) []kb.PO {
	var base []kb.PO
	if int(e) <= ov.baseEnts {
		base = ov.base.AdjacencyOf(e)
	}
	var ad, dl []kb.PO
	for _, p := range ov.touchedPreds() {
		for _, pr := range subjRun(ov.adds[p], e) {
			ad = append(ad, kb.PO{P: p, O: pr.O})
		}
		for _, pr := range subjRun(ov.dels[p], e) {
			dl = append(dl, kb.PO{P: p, O: pr.O})
		}
	}
	if len(ad) == 0 && len(dl) == 0 {
		return base
	}
	out := make([]kb.PO, 0, len(base)+len(ad)-len(dl))
	i, a, d := 0, 0, 0
	for i < len(base) || a < len(ad) {
		if i < len(base) && d < len(dl) && base[i] == dl[d] {
			i++
			d++
			continue
		}
		takeBase := a >= len(ad)
		if !takeBase && i < len(base) {
			b, x := base[i], ad[a]
			takeBase = b.P < x.P || (b.P == x.P && b.O < x.O)
		}
		if takeBase {
			out = append(out, base[i])
			i++
		} else {
			out = append(out, ad[a])
			a++
		}
	}
	return out
}

// touchedPreds returns the sorted predicate ids with pending edits.
func (ov *Overlay) touchedPreds() []kb.PredID {
	seen := make(map[kb.PredID]bool, len(ov.adds)+len(ov.dels))
	for p := range ov.adds {
		seen[p] = true
	}
	for p := range ov.dels {
		seen[p] = true
	}
	out := make([]kb.PredID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Empty reports whether the overlay records no pending fact edits. Minted
// terms whose facts were all retracted again do not count: they produce
// dictionary entries but no facts, and a compaction folds them away.
func (ov *Overlay) Empty() bool { return len(ov.adds) == 0 && len(ov.dels) == 0 }

// Materialize folds the overlay into a new immutable KB via ApplyPatch.
// The base is untouched and both KBs are independently closeable; the
// returned KB answers every accessor exactly as a freshly built KB holding
// the merged fact set would (modulo the frozen-prominence inverse policy
// above). The overlay remains usable and may keep accumulating edits.
func (ov *Overlay) Materialize() (*kb.KB, error) {
	p := kb.Patch{
		ExtraTerms: ov.newTerms,
		ExtraPreds: ov.newPreds,
	}
	if len(ov.adds) > 0 {
		p.Adds = make(map[kb.PredID][]kb.Pair, len(ov.adds))
		for pid, prs := range ov.adds {
			p.Adds[pid] = slices.Clone(prs)
		}
	}
	if len(ov.dels) > 0 {
		p.Dels = make(map[kb.PredID][]kb.Pair, len(ov.dels))
		for pid, prs := range ov.dels {
			p.Dels[pid] = slices.Clone(prs)
		}
	}
	return ov.base.ApplyPatch(p)
}
