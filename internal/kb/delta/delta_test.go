package delta

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func tr(s, p string, o rdf.Term) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: o}
}

func build(t *testing.T, frac float64, trs []rdf.Triple) *kb.KB {
	t.Helper()
	k, err := kb.FromTriples(trs, kb.Options{InverseTopFraction: frac})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// tripleKey is a term-level fact identity, independent of dictionary ids.
func tripleKey(t rdf.Triple) string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// dumpBaseFacts decodes every non-inverse fact of k back to terms.
func dumpBaseFacts(k *kb.KB) []string {
	var out []string
	for _, p := range k.Predicates() {
		if k.IsInverse(p) {
			continue
		}
		name := rdf.NewIRI(k.PredicateName(p))
		for _, pr := range k.Facts(p) {
			out = append(out, tripleKey(rdf.Triple{S: k.Term(pr.S), P: name, O: k.Term(pr.O)}))
		}
	}
	sort.Strings(out)
	return out
}

// dumpAllFacts includes materialized inverse facts, with the inverse
// predicate's display name as the predicate term.
func dumpAllFacts(k *kb.KB) []string {
	var out []string
	for _, p := range k.Predicates() {
		name := rdf.NewIRI(k.PredicateName(p))
		for _, pr := range k.Facts(p) {
			out = append(out, tripleKey(rdf.Triple{S: k.Term(pr.S), P: name, O: k.Term(pr.O)}))
		}
	}
	sort.Strings(out)
	return out
}

// assertGoldenEquivalent checks that got answers every accessor the way the
// freshly built want does, comparing term-wise so dictionary id layouts are
// free to differ.
func assertGoldenEquivalent(t *testing.T, got, want *kb.KB) {
	t.Helper()
	if g, w := dumpAllFacts(got), dumpAllFacts(want); !slices.Equal(g, w) {
		t.Fatalf("fact sets differ:\n got: %v\nwant: %v", g, w)
	}
	if got.NumBaseFacts() != want.NumBaseFacts() {
		t.Fatalf("NumBaseFacts = %d, want %d", got.NumBaseFacts(), want.NumBaseFacts())
	}
	// Per-entity statistics and adjacency, keyed by term.
	for _, e := range want.Entities(nil) {
		term := want.Term(e)
		ge, ok := got.EntityID(term)
		if !ok {
			t.Fatalf("entity %s missing from mutated KB", term)
		}
		if got.EntityFreq(ge) != want.EntityFreq(e) {
			t.Fatalf("EntityFreq(%s) = %d, want %d", term, got.EntityFreq(ge), want.EntityFreq(e))
		}
		gAdj, wAdj := decodeAdj(got, ge), decodeAdj(want, e)
		if !slices.Equal(gAdj, wAdj) {
			t.Fatalf("AdjacencyOf(%s):\n got %v\nwant %v", term, gAdj, wAdj)
		}
	}
	// Entities only the mutated KB knows (minted then fully retracted) must
	// be inert: no facts, no frequency.
	for _, e := range got.Entities(nil) {
		if _, ok := want.EntityID(got.Term(e)); !ok {
			if got.EntityFreq(e) != 0 || len(got.AdjacencyOf(e)) != 0 {
				t.Fatalf("orphan entity %s has facts", got.Term(e))
			}
		}
	}
	// Per-predicate reverse index agreement on every (p, o) seen in want.
	for _, p := range want.Predicates() {
		name := want.PredicateName(p)
		gp, ok := got.PredicateID(name)
		if !ok {
			t.Fatalf("predicate %s missing from mutated KB", name)
		}
		for _, pr := range want.Facts(p) {
			oTerm := want.Term(pr.O)
			gO, _ := got.EntityID(oTerm)
			if got.ObjFreq(gp, gO) != want.ObjFreq(p, pr.O) {
				t.Fatalf("ObjFreq(%s, %s) = %d, want %d", name, oTerm, got.ObjFreq(gp, gO), want.ObjFreq(p, pr.O))
			}
			gS := decodeEnts(got, got.Subjects(gp, gO))
			wS := decodeEnts(want, want.Subjects(p, pr.O))
			if !slices.Equal(gS, wS) {
				t.Fatalf("Subjects(%s, %s):\n got %v\nwant %v", name, oTerm, gS, wS)
			}
		}
	}
}

func decodeAdj(k *kb.KB, e kb.EntID) []string {
	out := make([]string, 0, len(k.AdjacencyOf(e)))
	for _, po := range k.AdjacencyOf(e) {
		out = append(out, k.PredicateName(po.P)+" "+k.Term(po.O).String())
	}
	sort.Strings(out)
	return out
}

func decodeEnts(k *kb.KB, es []kb.EntID) []string {
	out := make([]string, 0, len(es))
	for _, e := range es {
		out = append(out, k.Term(e).String())
	}
	sort.Strings(out)
	return out
}

func baseTriples() []rdf.Triple {
	return []rdf.Triple{
		tr("paris", "capitalOf", iri("france")),
		tr("paris", "cityIn", iri("france")),
		tr("lyon", "cityIn", iri("france")),
		tr("berlin", "capitalOf", iri("germany")),
		tr("berlin", "cityIn", iri("germany")),
		tr("paris", "label", lit("Paris")),
	}
}

func TestOverlayGoldenEquivalence(t *testing.T) {
	base := build(t, 0, baseTriples())
	ov := New(base)

	ops := []Op{
		// Plain add, add minting a new entity, add minting a new predicate.
		{S: iri("lyon"), P: iri("capitalOf"), O: iri("gaul")},
		{S: iri("seine"), P: iri("riverOf"), O: iri("paris")},
		// Literal object.
		{S: iri("lyon"), P: iri("label"), O: lit("Lyon")},
		// Retract a base fact.
		{Retract: true, S: iri("berlin"), P: iri("cityIn"), O: iri("germany")},
		// Idempotent duplicate upsert and retract of an absent fact.
		{S: iri("paris"), P: iri("cityIn"), O: iri("france")},
		{Retract: true, S: iri("madrid"), P: iri("cityIn"), O: iri("spain")},
		// Add then retract within the same delta (net no-op).
		{S: iri("oslo"), P: iri("cityIn"), O: iri("norway")},
		{Retract: true, S: iri("oslo"), P: iri("cityIn"), O: iri("norway")},
		// Retract then re-add a base fact (net no-op).
		{Retract: true, S: iri("paris"), P: iri("capitalOf"), O: iri("france")},
		{S: iri("paris"), P: iri("capitalOf"), O: iri("france")},
	}
	changed, err := ov.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 8 { // all but the duplicate upsert and the absent retract
		t.Fatalf("changed = %d, want 8", changed)
	}

	mutated, err := ov.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	wantTriples := append(baseTriples()[:4:4], // drops berlin-cityIn-germany
		baseTriples()[5],
		tr("lyon", "capitalOf", iri("gaul")),
		tr("seine", "riverOf", iri("paris")),
		tr("lyon", "label", lit("Lyon")),
	)
	want := build(t, 0, wantTriples)
	assertGoldenEquivalent(t, mutated, want)

	if g, w := dumpBaseFacts(mutated), dumpBaseFacts(want); !slices.Equal(g, w) {
		t.Fatalf("base fact sets differ:\n got %v\nwant %v", g, w)
	}
}

func TestOverlayRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ents := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	preds := []string{"p", "q", "r"}

	var baseTrs []rdf.Triple
	seen := map[string]rdf.Triple{}
	for i := 0; i < 40; i++ {
		x := tr(ents[rng.Intn(len(ents))], preds[rng.Intn(len(preds))], iri(ents[rng.Intn(len(ents))]))
		if _, dup := seen[tripleKey(x)]; !dup {
			seen[tripleKey(x)] = x
			baseTrs = append(baseTrs, x)
		}
	}
	base := build(t, 0, baseTrs)
	ov := New(base)

	// effective mirrors what the overlay should hold.
	effective := map[string]rdf.Triple{}
	for k, v := range seen {
		effective[k] = v
	}

	for round := 0; round < 6; round++ {
		var ops []Op
		for i := 0; i < 15; i++ {
			x := tr(ents[rng.Intn(len(ents))], preds[rng.Intn(len(preds))], iri(ents[rng.Intn(len(ents))]))
			retract := rng.Intn(2) == 0
			ops = append(ops, Op{Retract: retract, S: x.S, P: x.P, O: x.O})
			if retract {
				delete(effective, tripleKey(x))
			} else {
				effective[tripleKey(x)] = x
			}
		}
		if _, err := ov.Apply(ops); err != nil {
			t.Fatal(err)
		}

		mutated, err := ov.Materialize()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		wantTrs := make([]rdf.Triple, 0, len(effective))
		for _, x := range effective {
			wantTrs = append(wantTrs, x)
		}
		want := build(t, 0, wantTrs)
		assertGoldenEquivalent(t, mutated, want)
	}
}

func TestOverlayInverseMirroring(t *testing.T) {
	// InverseTopFraction 1.0: every entity is prominent, so every non-literal
	// object gets a materialized inverse fact in the base.
	base := build(t, 1.0, baseTriples())
	capOf := base.MustPredicateID("http://e/capitalOf")
	invCapOf, ok := base.PredicateID("http://e/capitalOf" + kb.InverseMarker)
	if !ok {
		t.Fatal("base has no inverse for capitalOf")
	}
	ov := New(base)

	// france appears as an inverse subject in the base, so a new fact with
	// it as object must be mirrored.
	if _, err := ov.Apply([]Op{{S: iri("lyon"), P: iri("capitalOf"), O: iri("france")}}); err != nil {
		t.Fatal(err)
	}
	lyon := base.MustEntityID("http://e/lyon")
	france := base.MustEntityID("http://e/france")
	if !ov.HasFact(capOf, lyon, france) || !ov.HasFact(invCapOf, france, lyon) {
		t.Fatal("mirror fact missing from overlay view")
	}
	mutated, err := ov.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !mutated.HasFact(invCapOf, france, lyon) {
		t.Fatal("mirror fact missing from materialized KB")
	}

	// Retract removes both directions.
	if _, err := ov.Apply([]Op{{Retract: true, S: iri("lyon"), P: iri("capitalOf"), O: iri("france")}}); err != nil {
		t.Fatal(err)
	}
	if ov.HasFact(capOf, lyon, france) || ov.HasFact(invCapOf, france, lyon) {
		t.Fatal("retract left a direction behind")
	}
	if !ov.Empty() {
		t.Fatal("overlay not back to empty after symmetric ops")
	}

	// A brand-new object entity was not prominent at build time: no mirror
	// under the frozen-prominence policy.
	if _, err := ov.Apply([]Op{{S: iri("lyon"), P: iri("capitalOf"), O: iri("atlantis")}}); err != nil {
		t.Fatal(err)
	}
	m2, err := ov.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	atlantis := m2.MustEntityID("http://e/atlantis")
	if m2.Subjects(invCapOf, atlantis) != nil && len(m2.Subjects(invCapOf, atlantis)) != 0 {
		t.Fatal("unexpected mirror for non-prominent new entity")
	}
	gl, _ := m2.EntityID(rdf.NewIRI("http://e/lyon"))
	if len(m2.Subjects(invCapOf, atlantis)) != 0 || !m2.HasFact(capOf, gl, atlantis) {
		t.Fatal("frozen-prominence policy violated")
	}
}

func TestOverlayValidation(t *testing.T) {
	base := build(t, 1.0, baseTriples())
	ov := New(base)

	cases := []struct {
		name string
		op   Op
	}{
		{"literal subject", Op{S: lit("x"), P: iri("p"), O: iri("y")}},
		{"literal predicate", Op{S: iri("x"), P: lit("p"), O: iri("y")}},
		{"blank predicate", Op{S: iri("x"), P: rdf.NewBlank("b"), O: iri("y")}},
		{"existing inverse predicate", Op{S: iri("france"), P: iri("capitalOf" + kb.InverseMarker), O: iri("paris")}},
		{"inverse-looking new predicate", Op{S: iri("x"), P: iri("nope" + kb.InverseMarker), O: iri("y")}},
	}
	for _, tc := range cases {
		if _, err := ov.Apply([]Op{tc.op}); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if !ov.Empty() || ov.NewTerms() != 0 || ov.NewPreds() != 0 {
		t.Fatal("rejected batch left state behind")
	}

	// A batch with one bad op applies nothing.
	batch := []Op{
		{S: iri("lyon"), P: iri("capitalOf"), O: iri("gaul")},
		{S: lit("bad"), P: iri("p"), O: iri("y")},
	}
	if _, err := ov.Apply(batch); err == nil {
		t.Fatal("mixed batch accepted")
	}
	if !ov.Empty() {
		t.Fatal("mixed batch partially applied")
	}
}

func TestOverlayMergedAccessorsMatchMaterialized(t *testing.T) {
	base := build(t, 0, baseTriples())
	ov := New(base)
	ops := []Op{
		{S: iri("lyon"), P: iri("capitalOf"), O: iri("gaul")},
		{S: iri("seine"), P: iri("riverOf"), O: iri("paris")},
		{Retract: true, S: iri("paris"), P: iri("cityIn"), O: iri("france")},
		{S: iri("marseille"), P: iri("cityIn"), O: iri("france")},
	}
	if _, err := ov.Apply(ops); err != nil {
		t.Fatal(err)
	}
	m, err := ov.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Overlay ids and materialized ids coincide by construction (same
	// allocation order), so the views can be compared directly.
	for _, p := range m.Predicates() {
		for _, pr := range m.Facts(p) {
			if !ov.HasFact(p, pr.S, pr.O) {
				t.Fatalf("overlay missing fact %d(%d,%d)", p, pr.S, pr.O)
			}
			if got, want := ov.Objects(p, pr.S), m.Objects(p, pr.S); !slices.Equal(got, want) {
				t.Fatalf("Objects(%d,%d) = %v, want %v", p, pr.S, got, want)
			}
			if got, want := ov.Subjects(p, pr.O), m.Subjects(p, pr.O); !slices.Equal(got, want) {
				t.Fatalf("Subjects(%d,%d) = %v, want %v", p, pr.O, got, want)
			}
			if got, want := ov.ObjFreq(p, pr.O), m.ObjFreq(p, pr.O); got != want {
				t.Fatalf("ObjFreq(%d,%d) = %d, want %d", p, pr.O, got, want)
			}
		}
	}
	for e := kb.EntID(1); int(e) <= m.NumEntities(); e++ {
		if got, want := ov.AdjacencyOf(e), m.AdjacencyOf(e); !slices.Equal(got, want) {
			t.Fatalf("AdjacencyOf(%d) = %v, want %v", e, got, want)
		}
	}
	// The retracted base fact must be absent from both views.
	cityIn := base.MustPredicateID("http://e/cityIn")
	paris := base.MustEntityID("http://e/paris")
	france := base.MustEntityID("http://e/france")
	if ov.HasFact(cityIn, paris, france) || m.HasFact(cityIn, paris, france) {
		t.Fatal("retracted fact still visible")
	}
}

func TestOverlayReplayIdempotence(t *testing.T) {
	// Applying the same batch twice — the at-least-once WAL replay case —
	// must be equivalent to applying it once.
	base := build(t, 0, baseTriples())
	batch := []Op{
		{S: iri("lyon"), P: iri("capitalOf"), O: iri("gaul")},
		{Retract: true, S: iri("berlin"), P: iri("cityIn"), O: iri("germany")},
		{S: iri("paris"), P: iri("label"), O: lit("Ville Lumière")},
	}

	once := New(base)
	if _, err := once.Apply(batch); err != nil {
		t.Fatal(err)
	}
	twice := New(base)
	for i := 0; i < 2; i++ {
		if _, err := twice.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	m1, err := once.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := twice.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if g, w := dumpAllFacts(m2), dumpAllFacts(m1); !slices.Equal(g, w) {
		t.Fatalf("replayed overlay diverged:\n got %v\nwant %v", g, w)
	}
	if twice.PendingAdds() != once.PendingAdds() || twice.PendingDels() != once.PendingDels() {
		t.Fatal("pending counts diverged under replay")
	}
}

func TestOverlayStatsCounters(t *testing.T) {
	base := build(t, 0, baseTriples())
	ov := New(base)
	if !ov.Empty() || ov.Base() != base {
		t.Fatal("fresh overlay not empty")
	}
	ops := []Op{
		{S: iri("x1"), P: iri("newp"), O: iri("x2")},
		{Retract: true, S: iri("paris"), P: iri("cityIn"), O: iri("france")},
	}
	changed, err := ov.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 2 {
		t.Fatalf("changed = %d", changed)
	}
	if ov.PendingAdds() != 1 || ov.PendingDels() != 1 || ov.NewTerms() != 2 || ov.NewPreds() != 1 {
		t.Fatalf("stats: adds=%d dels=%d terms=%d preds=%d",
			ov.PendingAdds(), ov.PendingDels(), ov.NewTerms(), ov.NewPreds())
	}
	if fmt.Sprint(ops[0]) == "" {
		t.Fatal("op string empty")
	}
}
