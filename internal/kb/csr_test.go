package kb

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/remi-kb/remi/internal/rdf"
)

// refIndex is a deliberately naive map-based index built from the same
// triples as the KB under test — the layout the CSR arrays replaced. The
// property tests assert that every CSR accessor answers identically.
type refIndex struct {
	pso map[[2]uint64][]EntID
	pos map[[2]uint64][]EntID
	adj map[EntID][]PO
}

func buildRef(k *KB) *refIndex {
	ref := &refIndex{
		pso: make(map[[2]uint64][]EntID),
		pos: make(map[[2]uint64][]EntID),
		adj: make(map[EntID][]PO),
	}
	for _, p := range k.Predicates() {
		for _, pr := range k.Facts(p) {
			ref.pso[[2]uint64{uint64(p), uint64(pr.S)}] = append(ref.pso[[2]uint64{uint64(p), uint64(pr.S)}], pr.O)
			ref.pos[[2]uint64{uint64(p), uint64(pr.O)}] = append(ref.pos[[2]uint64{uint64(p), uint64(pr.O)}], pr.S)
			ref.adj[pr.S] = append(ref.adj[pr.S], PO{P: p, O: pr.O})
		}
	}
	// Facts are sorted by (S,O) per predicate and predicates ascend, so the
	// pso lists and adjacency lists arrive sorted; pos lists need a sort.
	for key, s := range ref.pos {
		ids := s
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			}
		}
		ref.pos[key] = ids
	}
	return ref
}

func eqIDs(a, b []EntID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstRef exhaustively compares the KB's CSR answers with the map
// reference over every (predicate, entity) combination plus out-of-KB probes.
func checkAgainstRef(t *testing.T, k *KB) {
	t.Helper()
	ref := buildRef(k)
	n := EntID(k.NumEntities())
	for _, p := range k.Predicates() {
		wantTotal := 0
		for e := EntID(1); e <= n+2; e++ { // +2: probe ids beyond the universe
			objs := k.Objects(p, e)
			if want := ref.pso[[2]uint64{uint64(p), uint64(e)}]; !eqIDs(objs, want) {
				t.Fatalf("Objects(%d,%d) = %v, want %v", p, e, objs, want)
			}
			subj := k.Subjects(p, e)
			if want := ref.pos[[2]uint64{uint64(p), uint64(e)}]; !eqIDs(subj, want) {
				t.Fatalf("Subjects(%d,%d) = %v, want %v", p, e, subj, want)
			}
			if got, want := k.ObjFreq(p, e), len(ref.pos[[2]uint64{uint64(p), uint64(e)}]); got != want {
				t.Fatalf("ObjFreq(%d,%d) = %d, want %d", p, e, got, want)
			}
			wantTotal += len(objs)
			for _, o := range objs {
				if !k.HasFact(p, e, o) {
					t.Fatalf("HasFact(%d,%d,%d) = false for an indexed fact", p, e, o)
				}
			}
			// Negative probes around every run.
			if k.HasFact(p, e, 0) {
				t.Fatalf("HasFact with object 0 must be false")
			}
			if k.HasFact(p, e, n+7) {
				t.Fatalf("HasFact invented an out-of-universe object")
			}
		}
		if wantTotal != k.PredFreq(p) {
			t.Fatalf("PredFreq(%d) = %d, runs sum to %d", p, k.PredFreq(p), wantTotal)
		}
	}
	for e := EntID(1); e <= n+2; e++ {
		adj := k.AdjacencyOf(e)
		want := ref.adj[e]
		if len(adj) != len(want) {
			t.Fatalf("AdjacencyOf(%d) len = %d, want %d", e, len(adj), len(want))
		}
		for i := range adj {
			if adj[i] != want[i] {
				t.Fatalf("AdjacencyOf(%d)[%d] = %+v, want %+v", e, i, adj[i], want[i])
			}
		}
	}
	if k.AdjacencyOf(0) != nil {
		t.Fatal("AdjacencyOf(0) must be nil")
	}
}

// randomKB builds a KB from nTriples random triples over small id spaces so
// collisions (duplicate facts, shared subjects/objects, hub entities) are
// frequent.
func randomKB(t *testing.T, rng *rand.Rand, nTriples, nEnt, nPred int, invFrac float64) *KB {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < nTriples; i++ {
		s := fmt.Sprintf("e%d", rng.Intn(nEnt))
		p := fmt.Sprintf("p%d", rng.Intn(nPred))
		o := fmt.Sprintf("e%d", rng.Intn(nEnt))
		if err := b.Add(rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(Options{InverseTopFraction: invFrac})
}

// TestCSRMatchesMapReference is the property test of the CSR relayout:
// across many random KBs (with and without inverse materialization), every
// index accessor must answer exactly like a map-based reference built from
// the same fact lists.
func TestCSRMatchesMapReference(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		invFrac := 0.0
		if seed%2 == 1 {
			invFrac = 0.2
		}
		k := randomKB(t, rng, 60+rng.Intn(400), 4+rng.Intn(40), 1+rng.Intn(8), invFrac)
		checkAgainstRef(t, k)
	}
}

// TestCSREmptyKB covers the degenerate layouts.
func TestCSREmptyKB(t *testing.T) {
	k := NewBuilder().Build(Options{})
	if k.NumFacts() != 0 || k.NumPredicates() != 0 {
		t.Fatal("empty KB not empty")
	}
	if k.AdjacencyOf(1) != nil {
		t.Fatal("adjacency of unknown entity must be nil")
	}
	if len(k.Predicates()) != 0 {
		t.Fatal("Predicates on empty KB")
	}
}

// FuzzCSRIndexes drives the same equivalence check from fuzzed triple
// streams: each byte triple (s, p, o) becomes one fact over tiny id spaces,
// maximizing run collisions.
func FuzzCSRIndexes(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 2, 7, 1, 7})
	f.Add([]byte{3, 1, 3, 3, 1, 3, 2, 0, 1, 9, 2, 9, 4, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		b := NewBuilder()
		for i := 0; i+2 < len(data); i += 3 {
			s := fmt.Sprintf("e%d", data[i]%13)
			p := fmt.Sprintf("p%d", data[i+1]%5)
			o := fmt.Sprintf("e%d", data[i+2]%13)
			if err := b.Add(rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}); err != nil {
				t.Fatal(err)
			}
		}
		k := b.Build(Options{InverseTopFraction: float64(data[0]%3) * 0.15})
		checkAgainstRef(t, k)
	})
}
