// Package kb implements the in-memory knowledge-base layer REMI queries:
// dictionary-encoded facts with subject/object indexes per predicate,
// materialized inverse predicates for prominent objects (Section 4 of the
// paper), per-entity adjacency lists for the subgraph-expression enumerator,
// and the frequency statistics that feed the prominence rankings.
package kb

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"github.com/remi-kb/remi/internal/rdf"
)

// EntID identifies an entity or literal; PredID identifies a predicate.
// Both are 1-based; zero means "none".
type EntID uint32

// PredID identifies a predicate (1-based; zero means "none").
type PredID uint32

// PO is a (predicate, object) pair in an entity's adjacency list.
type PO struct {
	P PredID
	O EntID
}

// Pair is a (subject, object) fact of some predicate.
type Pair struct {
	S, O EntID
}

// KB is an immutable, fully indexed knowledge base. Build one with a Builder.
// All methods are safe for concurrent use once built.
type KB struct {
	dict *rdf.Dictionary // entities and literals
	kind []rdf.Kind      // kind[e-1] caches dict.Decode(e).Kind

	predNames []string // predNames[p-1]
	predIdx   map[string]PredID
	baseOf    []PredID // baseOf[p-1] != 0 when p is an inverse predicate

	facts    [][]Pair           // facts[p-1] sorted by (S,O)
	pso      map[uint64][]EntID // (p,s) -> objects, sorted
	pos      map[uint64][]EntID // (p,o) -> subjects, sorted
	subjAdj  map[EntID][]PO     // subject -> (p,o) sorted by (P,O)
	nBase    int                // number of non-inverse facts
	entFreq  []uint32           // occurrences of entity in base facts (s or o)
	typePred PredID
	lblPred  PredID

	// promMu guards promMemo, the per-fraction memo of ProminentEntities:
	// every miner construction asks for the same top slice of the frequency
	// ranking, and re-sorting all entities per request is pure waste.
	promMu   sync.Mutex
	promMemo map[float64]map[EntID]bool
}

func pkey(p PredID, e EntID) uint64 { return uint64(p)<<32 | uint64(e) }

// NumEntities returns the number of distinct entities and literals.
func (k *KB) NumEntities() int { return k.dict.Len() }

// NumPredicates returns the number of predicates, including materialized
// inverse predicates.
func (k *KB) NumPredicates() int { return len(k.predNames) }

// NumFacts returns the number of stored facts including inverse
// materializations; NumBaseFacts counts only the original assertions.
func (k *KB) NumFacts() int {
	n := 0
	for _, f := range k.facts {
		n += len(f)
	}
	return n
}

// NumBaseFacts returns the number of original (non-inverse) assertions.
func (k *KB) NumBaseFacts() int { return k.nBase }

// Term returns the RDF term for an entity id.
func (k *KB) Term(e EntID) rdf.Term { return k.dict.Decode(rdf.ID(e)) }

// EntityID resolves a term to its id.
func (k *KB) EntityID(t rdf.Term) (EntID, bool) {
	id, ok := k.dict.Lookup(t)
	return EntID(id), ok
}

// MustEntityID resolves an IRI string to an entity id, panicking if absent
// (intended for tests and examples).
func (k *KB) MustEntityID(iri string) EntID {
	id, ok := k.EntityID(rdf.NewIRI(iri))
	if !ok {
		panic(fmt.Sprintf("kb: unknown entity %q", iri))
	}
	return id
}

// Kind returns the RDF kind of entity e.
func (k *KB) Kind(e EntID) rdf.Kind { return k.kind[e-1] }

// IsBlank reports whether e is a blank node.
func (k *KB) IsBlank(e EntID) bool { return k.kind[e-1] == rdf.Blank }

// IsLiteral reports whether e is a literal.
func (k *KB) IsLiteral(e EntID) bool { return k.kind[e-1] == rdf.Literal }

// PredicateName returns the display name for p; inverse predicates carry a
// trailing ⁻¹ marker on their base name.
func (k *KB) PredicateName(p PredID) string { return k.predNames[p-1] }

// PredicateID resolves a predicate IRI string.
func (k *KB) PredicateID(name string) (PredID, bool) {
	p, ok := k.predIdx[name]
	return p, ok
}

// MustPredicateID resolves a predicate IRI string, panicking if absent.
func (k *KB) MustPredicateID(name string) PredID {
	p, ok := k.predIdx[name]
	if !ok {
		panic(fmt.Sprintf("kb: unknown predicate %q", name))
	}
	return p
}

// BaseOf returns the base predicate if p is an inverse predicate, and 0
// otherwise.
func (k *KB) BaseOf(p PredID) PredID { return k.baseOf[p-1] }

// IsInverse reports whether p is a materialized inverse predicate.
func (k *KB) IsInverse(p PredID) bool { return k.baseOf[p-1] != 0 }

// Predicates returns all predicate ids (1..NumPredicates).
func (k *KB) Predicates() []PredID {
	out := make([]PredID, len(k.predNames))
	for i := range out {
		out[i] = PredID(i + 1)
	}
	return out
}

// Objects returns the sorted objects o with p(s,o) ∈ K. The returned slice
// is shared; callers must not modify it.
func (k *KB) Objects(p PredID, s EntID) []EntID { return k.pso[pkey(p, s)] }

// Subjects returns the sorted subjects s with p(s,o) ∈ K. The returned slice
// is shared; callers must not modify it.
func (k *KB) Subjects(p PredID, o EntID) []EntID { return k.pos[pkey(p, o)] }

// HasFact reports whether p(s,o) ∈ K.
func (k *KB) HasFact(p PredID, s, o EntID) bool {
	objs := k.pso[pkey(p, s)]
	i := sort.Search(len(objs), func(i int) bool { return objs[i] >= o })
	return i < len(objs) && objs[i] == o
}

// Facts returns the sorted (subject, object) pairs of predicate p. The
// returned slice is shared; callers must not modify it.
func (k *KB) Facts(p PredID) []Pair { return k.facts[p-1] }

// PredFreq returns the number of facts of predicate p.
func (k *KB) PredFreq(p PredID) int { return len(k.facts[p-1]) }

// ObjFreq returns the conditional frequency fr(o|p) = |{s : p(s,o) ∈ K}|,
// the quantity Eq. 1 of the paper maps to a rank.
func (k *KB) ObjFreq(p PredID, o EntID) int { return len(k.pos[pkey(p, o)]) }

// EntityFreq returns the number of base facts in which e occurs (as subject
// or object), the fr prominence measure of Section 3.1.
func (k *KB) EntityFreq(e EntID) int { return int(k.entFreq[e-1]) }

// AdjacencyOf returns the (predicate, object) pairs with e as subject,
// including materialized inverse predicates, sorted by (P,O). The returned
// slice is shared; callers must not modify it.
func (k *KB) AdjacencyOf(e EntID) []PO { return k.subjAdj[e] }

// TypePredicate returns the id of the rdf:type-like predicate (0 if none).
func (k *KB) TypePredicate() PredID { return k.typePred }

// LabelPredicate returns the id of the rdfs:label-like predicate (0 if none).
func (k *KB) LabelPredicate() PredID { return k.lblPred }

// Types returns the classes of e via the type predicate.
func (k *KB) Types(e EntID) []EntID {
	if k.typePred == 0 {
		return nil
	}
	return k.Objects(k.typePred, e)
}

// Label returns a human-readable name for e: its label-predicate value when
// available, otherwise the local name of its term.
func (k *KB) Label(e EntID) string {
	if k.lblPred != 0 {
		if os := k.Objects(k.lblPred, e); len(os) > 0 {
			return k.Term(os[0]).LocalName()
		}
	}
	return k.Term(e).LocalName()
}

// ProminentEntities returns the set of entities in the top `frac` fraction
// of the entity-frequency ranking (e.g. 0.05 for the pruning heuristic of
// Section 3.5.2, 0.01 for inverse materialization). At least one entity is
// returned for positive fractions when the KB is non-empty. Results are
// memoized per fraction (the KB is immutable); callers must treat the
// returned map as read-only.
func (k *KB) ProminentEntities(frac float64) map[EntID]bool {
	n := k.dict.Len()
	if n == 0 || frac <= 0 {
		return map[EntID]bool{}
	}
	k.promMu.Lock()
	defer k.promMu.Unlock()
	if m, ok := k.promMemo[frac]; ok {
		return m
	}
	type ef struct {
		e EntID
		f uint32
	}
	all := make([]ef, n)
	for i := 0; i < n; i++ {
		all[i] = ef{EntID(i + 1), k.entFreq[i]}
	}
	slices.SortFunc(all, func(a, b ef) int {
		if a.f != b.f {
			return int(b.f) - int(a.f)
		}
		return int(a.e) - int(b.e)
	})
	top := int(float64(n) * frac)
	if top < 1 {
		top = 1
	}
	if top > n {
		top = n
	}
	out := make(map[EntID]bool, top)
	for _, x := range all[:top] {
		out[x.e] = true
	}
	if k.promMemo == nil {
		k.promMemo = make(map[float64]map[EntID]bool)
	}
	k.promMemo[frac] = out
	return out
}

// Entities returns all entity ids whose term satisfies keep (nil keeps all).
func (k *KB) Entities(keep func(rdf.Term) bool) []EntID {
	out := make([]EntID, 0, k.dict.Len())
	for i, t := range k.dict.Terms() {
		if keep == nil || keep(t) {
			out = append(out, EntID(i+1))
		}
	}
	return out
}

// InstancesOf returns the entities whose type includes class c.
func (k *KB) InstancesOf(c EntID) []EntID {
	if k.typePred == 0 {
		return nil
	}
	return k.Subjects(k.typePred, c)
}
