// Package kb implements the in-memory knowledge-base layer REMI queries:
// dictionary-encoded facts with subject/object indexes per predicate,
// materialized inverse predicates for prominent objects (Section 4 of the
// paper), per-entity adjacency lists for the subgraph-expression enumerator,
// and the frequency statistics that feed the prominence rankings.
package kb

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/remi-kb/remi/internal/kb/snapshot"
	"github.com/remi-kb/remi/internal/rdf"
)

// EntID identifies an entity or literal; PredID identifies a predicate.
// Both are 1-based; zero means "none".
type EntID uint32

// PredID identifies a predicate (1-based; zero means "none").
type PredID uint32

// PO is a (predicate, object) pair in an entity's adjacency list.
type PO struct {
	P PredID
	O EntID
}

// Pair is a (subject, object) fact of some predicate.
type Pair struct {
	S, O EntID
}

// KB is an immutable, fully indexed knowledge base. Build one with a Builder.
// All methods are safe for concurrent use once built. The fact indexes are
// flat CSR layouts (see csr.go): every read-path accessor is a binary search
// over contiguous arrays returning slice views, with no map lookups.
type KB struct {
	dict *rdf.Dictionary // entities and literals
	kind []rdf.Kind      // kind[e-1] caches dict.Decode(e).Kind

	predNames []string // predNames[p-1]
	predIdx   map[string]PredID
	predIDs   []PredID // 1..NumPredicates, built once (see Predicates)
	baseOf    []PredID // baseOf[p-1] != 0 when p is an inverse predicate

	preds    []predIndex // preds[p-1]: CSR pso/pos indexes + fact list
	adjOff   []uint32    // adjacency run boundaries, indexed by EntID
	adjArena []PO        // flat (p,o) runs, each sorted by (P,O)
	nFacts   int         // total facts including inverse materializations
	nBase    int         // number of non-inverse facts
	entFreq  []uint32    // occurrences of entity in base facts (s or o)
	typePred PredID
	lblPred  PredID

	// pairsReady/adjReady report whether the per-predicate pair lists and
	// the adjacency arena are populated. Built KBs and v1 snapshots carry
	// them eagerly; v2 snapshots omit both sections (they are exactly
	// reconstructible from the CSR arenas, together ~40% of the file) and
	// derive them on first use under deriveMu. Readers load the flag before
	// touching the fields, so the one-time fill publishes safely.
	pairsReady atomic.Bool
	adjReady   atomic.Bool
	deriveMu   sync.Mutex

	// promMu guards the per-fraction memos of ProminentSet and its map
	// adapter: every miner construction asks for the same top slice of the
	// frequency ranking, and re-sorting all entities per request is pure
	// waste.
	promMu      sync.Mutex
	promMemo    map[float64]*EntSet
	promMapMemo map[float64]map[EntID]bool

	// src is the snapshot image this KB's index slices alias, when the KB
	// was opened from one (nil for built KBs). The KB holds one reference;
	// Close releases it. A derived KB sharing any of this KB's arrays
	// (ApplyPatch) takes its own reference.
	src *snapshot.Reader
}

// Close releases the KB's reference on its backing snapshot image, if any.
// After the last reference drops, every slice an accessor ever returned
// becomes invalid — callers close a KB only once nothing can still be
// reading it (the server retires swapped-out generations after a grace
// period for exactly this reason). Closing a built (non-snapshot) KB or
// closing twice is a no-op.
func (k *KB) Close() error {
	if k == nil || k.src == nil {
		return nil
	}
	src := k.src
	k.src = nil
	return src.Close()
}

// MappingRefs reports the reference count on the KB's backing snapshot
// image (0 for built KBs) — introspection for tests and stats.
func (k *KB) MappingRefs() int {
	if k.src == nil {
		return 0
	}
	return k.src.Refs()
}

// NumEntities returns the number of distinct entities and literals.
func (k *KB) NumEntities() int { return k.dict.Len() }

// NumPredicates returns the number of predicates, including materialized
// inverse predicates.
func (k *KB) NumPredicates() int { return len(k.predNames) }

// NumFacts returns the number of stored facts including inverse
// materializations; NumBaseFacts counts only the original assertions.
func (k *KB) NumFacts() int { return k.nFacts }

// NumBaseFacts returns the number of original (non-inverse) assertions.
func (k *KB) NumBaseFacts() int { return k.nBase }

// Term returns the RDF term for an entity id.
func (k *KB) Term(e EntID) rdf.Term { return k.dict.Decode(rdf.ID(e)) }

// EntityID resolves a term to its id.
func (k *KB) EntityID(t rdf.Term) (EntID, bool) {
	id, ok := k.dict.Lookup(t)
	return EntID(id), ok
}

// MustEntityID resolves an IRI string to an entity id, panicking if absent
// (intended for tests and examples).
func (k *KB) MustEntityID(iri string) EntID {
	id, ok := k.EntityID(rdf.NewIRI(iri))
	if !ok {
		panic(fmt.Sprintf("kb: unknown entity %q", iri))
	}
	return id
}

// Kind returns the RDF kind of entity e.
func (k *KB) Kind(e EntID) rdf.Kind { return k.kind[e-1] }

// IsBlank reports whether e is a blank node.
func (k *KB) IsBlank(e EntID) bool { return k.kind[e-1] == rdf.Blank }

// IsLiteral reports whether e is a literal.
func (k *KB) IsLiteral(e EntID) bool { return k.kind[e-1] == rdf.Literal }

// PredicateName returns the display name for p; inverse predicates carry a
// trailing ⁻¹ marker on their base name.
func (k *KB) PredicateName(p PredID) string { return k.predNames[p-1] }

// PredicateID resolves a predicate IRI string.
func (k *KB) PredicateID(name string) (PredID, bool) {
	p, ok := k.predIdx[name]
	return p, ok
}

// MustPredicateID resolves a predicate IRI string, panicking if absent.
func (k *KB) MustPredicateID(name string) PredID {
	p, ok := k.predIdx[name]
	if !ok {
		panic(fmt.Sprintf("kb: unknown predicate %q", name))
	}
	return p
}

// BaseOf returns the base predicate if p is an inverse predicate, and 0
// otherwise.
func (k *KB) BaseOf(p PredID) PredID { return k.baseOf[p-1] }

// IsInverse reports whether p is a materialized inverse predicate.
func (k *KB) IsInverse(p PredID) bool { return k.baseOf[p-1] != 0 }

// Predicates returns all predicate ids (1..NumPredicates). The slice is
// built once at load time and shared across calls: callers must treat it as
// read-only (every current caller only ranges over it).
func (k *KB) Predicates() []PredID { return k.predIDs }

// Objects returns the sorted objects o with p(s,o) ∈ K. The returned slice
// is a view into the CSR value arena; callers must not modify it.
func (k *KB) Objects(p PredID, s EntID) []EntID {
	ix := &k.preds[p-1]
	return run(ix.psoKey, ix.psoOff, ix.psoVal, s)
}

// Subjects returns the sorted subjects s with p(s,o) ∈ K. The returned slice
// is a view into the CSR value arena; callers must not modify it.
func (k *KB) Subjects(p PredID, o EntID) []EntID {
	ix := &k.preds[p-1]
	return run(ix.posKey, ix.posOff, ix.posVal, o)
}

// HasFact reports whether p(s,o) ∈ K: a binary search for s's run in the
// pso index, then a binary search for o within the run.
func (k *KB) HasFact(p PredID, s, o EntID) bool {
	objs := k.Objects(p, s)
	i := searchIDs(objs, o)
	return i < len(objs) && objs[i] == o
}

// Facts returns the sorted (subject, object) pairs of predicate p. The
// returned slice is shared; callers must not modify it. For v2
// snapshot-backed KBs the pair lists are derived from the CSR indexes on
// first call (one linear pass over all predicates).
func (k *KB) Facts(p PredID) []Pair {
	k.ensurePairs()
	return k.preds[p-1].pairs
}

// PredFreq returns the number of facts of predicate p.
func (k *KB) PredFreq(p PredID) int { return len(k.preds[p-1].psoVal) }

// ObjFreq returns the conditional frequency fr(o|p) = |{s : p(s,o) ∈ K}|,
// the quantity Eq. 1 of the paper maps to a rank. It reads a run length
// from two adjacent CSR offsets without touching the value arena.
func (k *KB) ObjFreq(p PredID, o EntID) int {
	ix := &k.preds[p-1]
	return runLen(ix.posKey, ix.posOff, o)
}

// EntityFreq returns the number of base facts in which e occurs (as subject
// or object), the fr prominence measure of Section 3.1.
func (k *KB) EntityFreq(e EntID) int { return int(k.entFreq[e-1]) }

// AdjacencyOf returns the (predicate, object) pairs with e as subject,
// including materialized inverse predicates, sorted by (P,O). The returned
// slice is a constant-time view into the adjacency arena; callers must not
// modify it. For v2 snapshot-backed KBs the arena is rebuilt from the CSR
// indexes on the first call (one counting pass plus one placement pass).
func (k *KB) AdjacencyOf(e EntID) []PO {
	k.ensureAdjacency()
	if e == 0 || int(e) >= len(k.adjOff) {
		return nil
	}
	return k.adjArena[k.adjOff[e-1]:k.adjOff[e]]
}

// TypePredicate returns the id of the rdf:type-like predicate (0 if none).
func (k *KB) TypePredicate() PredID { return k.typePred }

// LabelPredicate returns the id of the rdfs:label-like predicate (0 if none).
func (k *KB) LabelPredicate() PredID { return k.lblPred }

// Types returns the classes of e via the type predicate (one CSR run
// lookup; the old map layout recomputed a packed hash key per call).
func (k *KB) Types(e EntID) []EntID {
	if k.typePred == 0 {
		return nil
	}
	return k.Objects(k.typePred, e)
}

// Label returns a human-readable name for e: its label-predicate value when
// available, otherwise the local name of its term.
func (k *KB) Label(e EntID) string {
	if k.lblPred != 0 {
		if os := k.Objects(k.lblPred, e); len(os) > 0 {
			return k.Term(os[0]).LocalName()
		}
	}
	return k.Term(e).LocalName()
}

// ProminentSet returns the set of entities in the top `frac` fraction of
// the entity-frequency ranking (e.g. 0.05 for the pruning heuristic of
// Section 3.5.2, 0.01 for inverse materialization) as a dense bitmap set.
// At least one entity is returned for positive fractions when the KB is
// non-empty. Results are memoized per fraction (the KB is immutable); the
// returned set is shared and immutable.
func (k *KB) ProminentSet(frac float64) *EntSet {
	n := k.dict.Len()
	if n == 0 || frac <= 0 {
		return nil
	}
	k.promMu.Lock()
	defer k.promMu.Unlock()
	if s, ok := k.promMemo[frac]; ok {
		return s
	}
	s := NewEntSet(prominentIDs(k.entFreq, frac), n)
	if k.promMemo == nil {
		k.promMemo = make(map[float64]*EntSet)
	}
	k.promMemo[frac] = s
	return s
}

// ProminentEntities is the legacy map view of ProminentSet, kept for API
// compatibility. Results are memoized per fraction; callers must treat the
// returned map as read-only.
func (k *KB) ProminentEntities(frac float64) map[EntID]bool {
	s := k.ProminentSet(frac)
	if s == nil {
		return map[EntID]bool{}
	}
	k.promMu.Lock()
	defer k.promMu.Unlock()
	if m, ok := k.promMapMemo[frac]; ok {
		return m
	}
	m := s.Map()
	if k.promMapMemo == nil {
		k.promMapMemo = make(map[float64]map[EntID]bool)
	}
	k.promMapMemo[frac] = m
	return m
}

// prominentIDs selects the top frac fraction of the entity-frequency
// ranking (ties broken by ascending id, at least one entity for positive
// fractions). It is shared by ProminentSet and the streaming builder's
// inverse-materialization decision, which must match the in-memory build
// exactly.
func prominentIDs(entFreq []uint32, frac float64) []EntID {
	n := len(entFreq)
	type ef struct {
		e EntID
		f uint32
	}
	all := make([]ef, n)
	for i := 0; i < n; i++ {
		all[i] = ef{EntID(i + 1), entFreq[i]}
	}
	slices.SortFunc(all, func(a, b ef) int {
		if a.f != b.f {
			return int(b.f) - int(a.f)
		}
		return int(a.e) - int(b.e)
	})
	top := int(float64(n) * frac)
	if top < 1 {
		top = 1
	}
	if top > n {
		top = n
	}
	ids := make([]EntID, top)
	for i, x := range all[:top] {
		ids[i] = x.e
	}
	return ids
}

// Entities returns all entity ids (ascending) whose term satisfies keep
// (nil keeps all). Terms are visited with the dictionary's streaming
// iterator, so a lazy snapshot-backed dictionary never materializes its
// term table.
func (k *KB) Entities(keep func(rdf.Term) bool) []EntID {
	out := make([]EntID, 0, k.dict.Len())
	k.dict.EachTerm(func(id rdf.ID, t rdf.Term) bool {
		if keep == nil || keep(t) {
			out = append(out, EntID(id))
		}
		return true
	})
	slices.Sort(out)
	return out
}

// InstancesOf returns the entities whose type includes class c.
func (k *KB) InstancesOf(c EntID) []EntID {
	if k.typePred == 0 {
		return nil
	}
	return k.Subjects(k.typePred, c)
}
