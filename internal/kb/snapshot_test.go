package kb

// Snapshot round-trip property tests: a Builder-built KB and its
// snapshot-reopened twin must be observationally identical on every
// accessor, under both the mmap and the heap-fallback load path; damaged
// images must be rejected.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/remi-kb/remi/internal/rdf"
)

// reopen writes k to a temp snapshot file and opens it with the given load
// path.
func reopen(t testing.TB, k *KB, noMmap bool) *KB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "kb.snap")
	if err := k.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if !IsSnapshotFile(path) {
		t.Fatal("IsSnapshotFile must recognize a written snapshot")
	}
	got, err := OpenSnapshotWith(path, SnapshotOptions{NoMmap: noMmap})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// checkSameKB asserts the two KBs agree on every accessor the miner and the
// facade use: dictionary (both directions), kinds, predicates, CSR indexes,
// adjacency, frequencies and the special predicates.
func checkSameKB(t testing.TB, want, got *KB) {
	t.Helper()
	if got.NumEntities() != want.NumEntities() || got.NumPredicates() != want.NumPredicates() ||
		got.NumFacts() != want.NumFacts() || got.NumBaseFacts() != want.NumBaseFacts() {
		t.Fatalf("counts differ: ents %d/%d preds %d/%d facts %d/%d base %d/%d",
			got.NumEntities(), want.NumEntities(), got.NumPredicates(), want.NumPredicates(),
			got.NumFacts(), want.NumFacts(), got.NumBaseFacts(), want.NumBaseFacts())
	}
	if got.TypePredicate() != want.TypePredicate() || got.LabelPredicate() != want.LabelPredicate() {
		t.Fatalf("special predicates differ")
	}
	n := EntID(want.NumEntities())
	for e := EntID(1); e <= n; e++ {
		if got.Term(e) != want.Term(e) {
			t.Fatalf("Term(%d) = %v, want %v", e, got.Term(e), want.Term(e))
		}
		if got.Kind(e) != want.Kind(e) {
			t.Fatalf("Kind(%d) differs", e)
		}
		if got.EntityFreq(e) != want.EntityFreq(e) {
			t.Fatalf("EntityFreq(%d) = %d, want %d", e, got.EntityFreq(e), want.EntityFreq(e))
		}
		// Dictionary reverse direction, including the frozen binary search.
		id, ok := got.EntityID(want.Term(e))
		if !ok || id != e {
			t.Fatalf("EntityID(%v) = %d,%v, want %d", want.Term(e), id, ok, e)
		}
	}
	if _, ok := got.EntityID(rdf.NewIRI("http://nowhere.example/absent")); ok {
		t.Fatal("EntityID resolved an absent term")
	}
	for _, p := range want.Predicates() {
		if got.PredicateName(p) != want.PredicateName(p) {
			t.Fatalf("PredicateName(%d) differs", p)
		}
		if got.BaseOf(p) != want.BaseOf(p) {
			t.Fatalf("BaseOf(%d) differs", p)
		}
		if id, ok := got.PredicateID(want.PredicateName(p)); !ok || id != p {
			t.Fatalf("PredicateID(%q) = %d,%v", want.PredicateName(p), id, ok)
		}
		if got.PredFreq(p) != want.PredFreq(p) {
			t.Fatalf("PredFreq(%d) differs", p)
		}
		wantFacts, gotFacts := want.Facts(p), got.Facts(p)
		if len(wantFacts) != len(gotFacts) {
			t.Fatalf("Facts(%d) len differs", p)
		}
		for i := range wantFacts {
			if wantFacts[i] != gotFacts[i] {
				t.Fatalf("Facts(%d)[%d] differs", p, i)
			}
		}
		for e := EntID(1); e <= n+2; e++ {
			if !eqIDs(got.Objects(p, e), want.Objects(p, e)) {
				t.Fatalf("Objects(%d,%d) differs", p, e)
			}
			if !eqIDs(got.Subjects(p, e), want.Subjects(p, e)) {
				t.Fatalf("Subjects(%d,%d) differs", p, e)
			}
			if got.ObjFreq(p, e) != want.ObjFreq(p, e) {
				t.Fatalf("ObjFreq(%d,%d) differs", p, e)
			}
			for _, o := range want.Objects(p, e) {
				if !got.HasFact(p, e, o) {
					t.Fatalf("HasFact(%d,%d,%d) lost", p, e, o)
				}
			}
			if got.HasFact(p, e, n+7) {
				t.Fatalf("HasFact(%d,%d,out-of-universe) invented", p, e)
			}
		}
	}
	for e := EntID(0); e <= n+2; e++ {
		wa, ga := want.AdjacencyOf(e), got.AdjacencyOf(e)
		if len(wa) != len(ga) {
			t.Fatalf("AdjacencyOf(%d) len differs", e)
		}
		for i := range wa {
			if wa[i] != ga[i] {
				t.Fatalf("AdjacencyOf(%d)[%d] differs", e, i)
			}
		}
	}
	// Derived statistics must agree too (ProminentSet is recomputed from the
	// persisted frequency array on the reopened KB).
	for _, frac := range []float64{0.01, 0.1, 0.5} {
		ws, gs := want.ProminentSet(frac), got.ProminentSet(frac)
		if ws.Card() != gs.Card() {
			t.Fatalf("ProminentSet(%v) card %d, want %d", frac, gs.Card(), ws.Card())
		}
		for e := EntID(1); e <= n; e++ {
			if ws.Contains(e) != gs.Contains(e) {
				t.Fatalf("ProminentSet(%v) membership differs at %d", frac, e)
			}
		}
	}
}

// TestSnapshotRoundTripRandom is the round-trip property test across many
// random KBs, covering both load paths and inverse materialization.
func TestSnapshotRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		invFrac := 0.0
		if seed%2 == 1 {
			invFrac = 0.2
		}
		k := randomKB(t, rng, 60+rng.Intn(400), 4+rng.Intn(40), 1+rng.Intn(8), invFrac)
		checkSameKB(t, k, reopen(t, k, seed%3 == 0))
	}
}

// TestSnapshotRoundTripLiterals exercises literal objects, blank nodes,
// labels/types and non-ASCII term values through the blob encoding.
func TestSnapshotRoundTripLiterals(t *testing.T) {
	b := NewBuilder()
	add := func(s, p rdf.Term, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.Triple{S: s, P: rdf.NewIRI("http://x/p/" + p.Value), O: o}); err != nil {
			t.Fatal(err)
		}
	}
	paris := rdf.NewIRI("http://x/r/Paris")
	bn := rdf.NewBlank("b0")
	add(paris, rdf.NewIRI("label"), rdf.NewLiteral(`Paris"@fr`))
	add(paris, rdf.NewIRI("pop"), rdf.NewLiteral(`2140526"^^<http://www.w3.org/2001/XMLSchema#integer>`))
	add(paris, rdf.NewIRI("type"), rdf.NewIRI("http://x/c/Villeé"))
	add(bn, rdf.NewIRI("near"), paris)
	add(paris, rdf.NewIRI("motto"), rdf.NewLiteral("")) // empty term value
	k := b.Build(Options{
		TypePredicate:  "http://x/p/type",
		LabelPredicate: "http://x/p/label",
	})
	for _, noMmap := range []bool{false, true} {
		got := reopen(t, k, noMmap)
		checkSameKB(t, k, got)
		if got.Label(got.MustEntityID("http://x/r/Paris")) != k.Label(k.MustEntityID("http://x/r/Paris")) {
			t.Fatal("Label differs after reopen")
		}
	}
}

// TestSnapshotEmptyKB covers the degenerate image.
func TestSnapshotEmptyKB(t *testing.T) {
	k := NewBuilder().Build(Options{})
	got := reopen(t, k, false)
	checkSameKB(t, k, got)
}

// TestSnapshotRepack writes a snapshot FROM a snapshot-opened KB (the
// pack-a-frozen-dictionary path, which reuses the persisted term-order
// permutation instead of re-sorting) and checks the second generation is
// still identical to the original builder KB.
func TestSnapshotRepack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := randomKB(t, rng, 300, 30, 6, 0.2)
	once := reopen(t, k, false)
	twice := reopen(t, once, true)
	checkSameKB(t, k, twice)
}

// TestSnapshotMmapVsHeapEquivalence opens the same image both ways and
// diffs them against each other (not just against the builder KB).
func TestSnapshotMmapVsHeapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	k := randomKB(t, rng, 500, 40, 7, 0.15)
	path := filepath.Join(t.TempDir(), "kb.snap")
	if err := k.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	mm, err := OpenSnapshotWith(path, SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := OpenSnapshotWith(path, SnapshotOptions{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSameKB(t, mm, hp)
	checkAgainstRef(t, mm)
	checkAgainstRef(t, hp)
}

// TestSnapshotRejectsDamage corrupts a valid KB snapshot in targeted ways;
// every mutation must fail OpenSnapshot instead of yielding a broken KB.
func TestSnapshotRejectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := randomKB(t, rng, 200, 20, 4, 0.2)
	var buf bytes.Buffer
	if err := k.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	dir := t.TempDir()
	tryOpen := func(name string, mut []byte) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenSnapshot(path)
		return err
	}
	if err := tryOpen("ok.snap", img); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	for _, cut := range []int{0, 4, 63, 64, len(img) / 3, len(img) - 1} {
		if tryOpen(fmt.Sprintf("trunc%d.snap", cut), img[:cut]) == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
	for trial := 0; trial < 64; trial++ {
		mut := append([]byte(nil), img...)
		mut[64+rng.Intn(len(mut)-64)] ^= 1 << rng.Intn(8)
		if tryOpen(fmt.Sprintf("flip%d.snap", trial), mut) == nil {
			t.Fatal("bit flip in payload accepted")
		}
	}
	junk := append([]byte("JUNKFILE"), img[8:]...)
	if tryOpen("junk.snap", junk) == nil {
		t.Fatal("wrong magic accepted")
	}
	if IsSnapshotFile(filepath.Join(dir, "junk.snap")) {
		t.Fatal("IsSnapshotFile accepted wrong magic")
	}
}

// FuzzSnapshotRoundTrip drives the round trip from fuzzed triple streams,
// mirroring FuzzCSRIndexes: every KB the builder accepts must survive the
// snapshot round trip bit-exactly.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 2, 7, 1, 7}, false)
	f.Add([]byte{3, 1, 3, 3, 1, 3, 2, 0, 1, 9, 2, 9, 4, 1, 4}, true)
	f.Fuzz(func(t *testing.T, data []byte, noMmap bool) {
		if len(data) < 3 {
			t.Skip()
		}
		b := NewBuilder()
		for i := 0; i+2 < len(data); i += 3 {
			s := fmt.Sprintf("e%d", data[i]%13)
			p := fmt.Sprintf("p%d", data[i+1]%5)
			o := fmt.Sprintf("e%d", data[i+2]%13)
			if err := b.Add(rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}); err != nil {
				t.Fatal(err)
			}
		}
		k := b.Build(Options{InverseTopFraction: 0.25})
		checkSameKB(t, k, reopen(t, k, noMmap))
	})
}
