package kb

// The v2 snapshot's lazy term table is the point of the format: opening a
// snapshot must not allocate any structure proportional to the number of
// entities (the v1 reader built an O(entities) term slice plus offsets up
// front). This pins the property with a two-point scaling measurement.

import (
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
)

func TestSnapshotOpenAllocIndependentOfEntities(t *testing.T) {
	openAlloc := func(nTriples, nEnt int) (entities int, allocBytes int64) {
		rng := rand.New(rand.NewSource(11))
		k := randomKB(t, rng, nTriples, nEnt, 12, 0)
		path := filepath.Join(t.TempDir(), "kb.snap")
		if err := k.WriteSnapshotFile(path); err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		got, err := OpenSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&m1)
		ents := got.NumEntities()
		if err := got.Close(); err != nil {
			t.Fatal(err)
		}
		return ents, int64(m1.TotalAlloc - m0.TotalAlloc)
	}

	smallEnts, smallAlloc := openAlloc(4_000, 2_000)
	bigEnts, bigAlloc := openAlloc(80_000, 40_000)
	if bigEnts < 10*smallEnts {
		t.Fatalf("test setup: entity counts too close to measure scaling (%d vs %d)", smallEnts, bigEnts)
	}
	// A term table would cost at least a string header (16 bytes) per
	// entity; a lazy open pays nothing that grows with the dictionary.
	perEntity := float64(bigAlloc-smallAlloc) / float64(bigEnts-smallEnts)
	if perEntity > 4 {
		t.Fatalf("OpenSnapshot allocates %.1f bytes per entity (%d ents → %dB, %d ents → %dB); the term table is supposed to be lazy",
			perEntity, smallEnts, smallAlloc, bigEnts, bigAlloc)
	}
}
