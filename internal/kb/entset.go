package kb

import "math/bits"

// EntSet is an immutable dense set of entity ids backed by a flat bitmap
// (one bit per entity of the KB's universe, the same word layout as
// internal/bitseq). It replaces map[EntID]bool on membership-heavy paths —
// the prominence probe inside the subgraph enumerator fires once per
// adjacency edge, and a bitmap test is one shift and one AND against a word
// array that fits in cache, versus a hash and bucket walk per probe.
//
// A nil *EntSet behaves as the empty set, so callers can probe an optional
// set without a nil check.
type EntSet struct {
	words []uint64
	card  int
}

// NewEntSet builds a set over a 1-based universe of n entities from a list
// of member ids (duplicates are allowed and collapse).
func NewEntSet(ids []EntID, universe int) *EntSet {
	s := &EntSet{words: make([]uint64, (universe+63)/64)}
	for _, e := range ids {
		i := int(e) - 1
		if i < 0 || i >= universe {
			continue
		}
		w := &s.words[i/64]
		bit := uint64(1) << (uint(i) % 64)
		if *w&bit == 0 {
			*w |= bit
			s.card++
		}
	}
	return s
}

// EntSetFromMap builds a set from the map form (the legacy representation
// still returned by KB.ProminentEntities for API compatibility).
func EntSetFromMap(m map[EntID]bool, universe int) *EntSet {
	ids := make([]EntID, 0, len(m))
	for e, ok := range m {
		if ok {
			ids = append(ids, e)
		}
	}
	return NewEntSet(ids, universe)
}

// Contains reports whether e is in the set. Safe on a nil receiver.
func (s *EntSet) Contains(e EntID) bool {
	if s == nil {
		return false
	}
	i := int(e) - 1
	if i < 0 || i >= len(s.words)*64 {
		return false
	}
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Card returns the number of members. Safe on a nil receiver.
func (s *EntSet) Card() int {
	if s == nil {
		return 0
	}
	return s.card
}

// Map materializes the set as a map[EntID]bool — the adapter for callers
// that still speak the legacy map form. Each call allocates a fresh map.
func (s *EntSet) Map() map[EntID]bool {
	out := make(map[EntID]bool, s.Card())
	if s == nil {
		return out
	}
	for wi, w := range s.words {
		base := wi * 64
		for w != 0 {
			out[EntID(base+bits.TrailingZeros64(w)+1)] = true
			w &= w - 1
		}
	}
	return out
}
