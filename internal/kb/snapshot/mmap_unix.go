//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and private. The page-aligned base
// plus the format's 8-byte section alignment make every typed view cast
// valid.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmap(data []byte) error { return syscall.Munmap(data) }
