// Package snapshot implements the on-disk container behind KB snapshots: a
// versioned, checksummed binary image made of 8-byte-aligned sections with a
// section directory. The KB layer serializes its flat CSR arenas into
// sections once ("pack once"); OpenSnapshot then maps the file (mmap on unix,
// one contiguous aligned read elsewhere) and hands back byte views that the
// caller casts directly into the typed slices its accessors binary-search —
// cold start becomes O(page-in) I/O instead of O(parse + sort) CPU.
//
// File layout (all integers little-endian, written natively on LE hosts and
// guarded by a byte-order mark):
//
//	[0..64)            fixed header (magic, versions, BOM, size, CRC, dir)
//	[64..64+24·n)      directory: n entries of {id u32, pad u32, off u64, len u64}
//	[...]              section payloads, each 8-byte aligned, zero padded
//
// Version negotiation is two-sided: the header carries both the writer's
// format version and the minimum reader version able to parse the file. A
// reader accepts any file whose minReader is not newer than the reader
// itself, ignoring unknown section ids (forward compatibility), and rejects
// files older than its own floor (backward compatibility). The CRC-64 of
// everything after the header is verified on open, so truncated or corrupted
// images are rejected before any section is interpreted.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"unsafe"
)

// Magic is the 8-byte file signature; the trailing newline guards against
// text-mode mangling, mirroring the GOHDT magic.
const Magic = "REMISNP\n"

const (
	// Version is the format version this package writes by default. Version
	// 2 replaced the raw term blob + per-entity offset table with
	// front-coded term blocks and dropped the sections derivable from the
	// CSR arenas; version-1 readers cannot interpret that layout, so v2
	// files carry minReader = 2.
	Version = 2
	// MinReaderVersion is the oldest reader able to parse files we write by
	// default; recorded in the header so future writers can extend the
	// format without stranding old readers (they skip unknown sections)
	// until a layout change truly requires a cut-off.
	MinReaderVersion = 2
	// oldestSupported is the oldest file version this reader still accepts:
	// v1 images remain fully readable.
	oldestSupported = 1
)

// headerSize is the fixed byte length of the file header.
const headerSize = 64

// byteOrderMark is stored natively; a reader on a host with different
// endianness sees the bytes reversed and rejects the file instead of
// silently misreading every integer.
const byteOrderMark uint32 = 0x01020304

// dirEntrySize is the byte length of one directory entry.
const dirEntrySize = 24

// SectionID names one section of a snapshot. IDs are format-stable;
// readers ignore ids they do not know.
type SectionID uint32

// crcTable is the ECMA polynomial table shared by writer and reader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

type section struct {
	id   SectionID
	data []byte
}

// Writer assembles a snapshot from named sections. Sections are written in
// Add order; the payload slices are retained (not copied) until WriteTo.
type Writer struct {
	sections  []section
	version   uint32
	minReader uint32
}

// NewWriter returns an empty snapshot writer stamping the current default
// (Version, MinReaderVersion) pair.
func NewWriter() *Writer { return &Writer{version: Version, minReader: MinReaderVersion} }

// SetVersion overrides the header's format/min-reader pair, for writers
// emitting an older layout on purpose (compatibility exports and the
// old-vs-new format tests). It does not change what sections are written —
// the caller owns layout/version consistency.
func (w *Writer) SetVersion(version, minReader uint32) {
	w.version = version
	w.minReader = minReader
}

// Add appends one section. The data slice is retained until WriteTo; callers
// must not mutate it in between. Duplicate ids are a programming error and
// surface at WriteTo.
func (w *Writer) Add(id SectionID, data []byte) {
	w.sections = append(w.sections, section{id: id, data: data})
}

var zeroPad [8]byte

// WriteTo writes the snapshot image: header, directory, then each section
// 8-byte aligned. The payload CRC covers everything after the header, so the
// directory and padding are integrity-checked too.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	seen := make(map[SectionID]bool, len(w.sections))
	for _, s := range w.sections {
		if seen[s.id] {
			return 0, fmt.Errorf("snapshot: duplicate section id %d", s.id)
		}
		seen[s.id] = true
	}

	// Lay out the directory and section offsets.
	dir := make([]byte, dirEntrySize*len(w.sections))
	off := uint64(headerSize) + uint64(len(dir)) // dir length is a multiple of 8
	for i, s := range w.sections {
		e := dir[i*dirEntrySize:]
		binary.LittleEndian.PutUint32(e[0:], uint32(s.id))
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		off = align8(off + uint64(len(s.data)))
	}
	fileSize := off

	// CRC over the payload region exactly as it will appear on disk.
	crc := crc64.Update(0, crcTable, dir)
	for _, s := range w.sections {
		crc = crc64.Update(crc, crcTable, s.data)
		if pad := align8(uint64(len(s.data))) - uint64(len(s.data)); pad > 0 {
			crc = crc64.Update(crc, crcTable, zeroPad[:pad])
		}
	}

	var hdr [headerSize]byte
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], w.version)
	binary.LittleEndian.PutUint32(hdr[12:], w.minReader)
	*(*uint32)(unsafe.Pointer(&hdr[16])) = byteOrderMark // native order: the BOM check
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(w.sections)))
	binary.LittleEndian.PutUint64(hdr[24:], fileSize)
	binary.LittleEndian.PutUint64(hdr[32:], crc)
	binary.LittleEndian.PutUint64(hdr[40:], headerSize)

	bw := bufio.NewWriterSize(out, 1<<20)
	n := int64(0)
	write := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	if err := write(dir); err != nil {
		return n, err
	}
	for _, s := range w.sections {
		if err := write(s.data); err != nil {
			return n, err
		}
		if pad := align8(uint64(len(s.data))) - uint64(len(s.data)); pad > 0 {
			if err := write(zeroPad[:pad]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// View reinterprets a section's bytes as a []T without copying. T must be a
// fixed-size type whose in-memory layout matches the on-disk layout (the KB
// uses uint32-derived ids and 8-byte pair structs). The byte length must be
// an exact multiple of the element size and the base pointer must satisfy
// T's alignment — both hold by construction for sections of an 8-aligned
// image, so a failure indicates a corrupt directory.
func View[T any](b []byte) ([]T, error) {
	var t T
	sz := int(unsafe.Sizeof(t))
	if sz == 0 {
		return nil, fmt.Errorf("snapshot: zero-size view element")
	}
	if len(b) == 0 {
		return nil, nil
	}
	if len(b)%sz != 0 {
		return nil, fmt.Errorf("snapshot: section length %d not a multiple of element size %d", len(b), sz)
	}
	p := unsafe.Pointer(&b[0])
	if al := uintptr(unsafe.Alignof(t)); uintptr(p)%al != 0 {
		return nil, fmt.Errorf("snapshot: section misaligned for element alignment %d", al)
	}
	return unsafe.Slice((*T)(p), len(b)/sz), nil
}

// Bytes is the writer-side inverse of View: it reinterprets a typed slice as
// its raw bytes without copying, for handing live arenas to Writer.Add.
func Bytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(t)))
}
