//go:build !unix

package snapshot

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("snapshot: mmap unsupported on this platform")

// mmapFile always fails on platforms without unix mmap; Open falls back to
// the single contiguous aligned read.
func mmapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

func munmap([]byte) error { return nil }
