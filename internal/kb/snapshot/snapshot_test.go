package snapshot

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeImage assembles a small multi-section snapshot and returns its bytes.
func writeImage(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.Add(7, []byte("hello"))             // odd length: forces padding
	w.Add(3, Bytes([]uint64{1, 2, 3}))    // aligned payload
	w.Add(9, nil)                         // empty section
	w.Add(5, Bytes([]uint32{9, 8, 7, 6})) // 16 bytes
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// alignedCopy duplicates an image into an 8-byte aligned buffer so FromBytes
// views stay valid.
func alignedCopy(img []byte) []byte {
	buf := make([]uint64, (len(img)+7)/8)
	out := Bytes(buf)[:len(img)]
	copy(out, img)
	return out
}

func TestWriterReaderRoundTrip(t *testing.T) {
	img := alignedCopy(writeImage(t))
	r, err := FromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != Version {
		t.Fatalf("version = %d, want %d", r.Version(), Version)
	}
	if got, ok := r.Section(7); !ok || string(got) != "hello" {
		t.Fatalf("section 7 = %q, %v", got, ok)
	}
	u64s, err := View[uint64](mustSection(t, r, 3))
	if err != nil || len(u64s) != 3 || u64s[2] != 3 {
		t.Fatalf("section 3 view = %v, %v", u64s, err)
	}
	if got, ok := r.Section(9); !ok || len(got) != 0 {
		t.Fatalf("empty section = %v, %v", got, ok)
	}
	u32s, err := View[uint32](mustSection(t, r, 5))
	if err != nil || len(u32s) != 4 || u32s[0] != 9 {
		t.Fatalf("section 5 view = %v, %v", u32s, err)
	}
	if _, ok := r.Section(42); ok {
		t.Fatal("unknown section must be absent")
	}
}

func mustSection(t *testing.T, r *Reader, id SectionID) []byte {
	t.Helper()
	b, ok := r.Section(id)
	if !ok {
		t.Fatalf("missing section %d", id)
	}
	return b
}

func TestOpenFileMmapAndHeap(t *testing.T) {
	img := writeImage(t)
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if !SniffFile(path) {
		t.Fatal("SniffFile must recognize a snapshot")
	}
	for _, noMmap := range []bool{false, true} {
		r, err := Open(path, Options{NoMmap: noMmap})
		if err != nil {
			t.Fatalf("NoMmap=%v: %v", noMmap, err)
		}
		if noMmap && r.Mapped() {
			t.Fatal("NoMmap ignored")
		}
		if got := mustSection(t, r, 7); string(got) != "hello" {
			t.Fatalf("NoMmap=%v: section 7 = %q", noMmap, got)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRejectBadMagic(t *testing.T) {
	img := alignedCopy(writeImage(t))
	copy(img, "NOTASNAP")
	if _, err := FromBytes(img); err == nil {
		t.Fatal("bad magic accepted")
	}
	if SniffFile(filepath.Join(t.TempDir(), "missing")) {
		t.Fatal("SniffFile on missing file")
	}
}

func TestRejectTruncation(t *testing.T) {
	img := writeImage(t)
	for _, cut := range []int{len(img) - 1, len(img) / 2, headerSize + 3, 10, 0} {
		if _, err := FromBytes(alignedCopy(img[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestRejectCorruption(t *testing.T) {
	img := writeImage(t)
	// Any flipped bit in the payload region (directory, padding, sections)
	// must be caught by the CRC.
	for off := headerSize; off < len(img); off++ {
		mut := alignedCopy(img)
		mut[off] ^= 0x40
		if _, err := FromBytes(mut); err == nil {
			t.Fatalf("payload corruption at offset %d accepted", off)
		}
	}
	// Validated header fields: byte-order mark, section count, file size,
	// CRC, directory offset. (The version pair has its own negotiation
	// semantics and the trailing reserved bytes are don't-care by design.)
	for off := 16; off < 48; off++ {
		mut := alignedCopy(img)
		mut[off] ^= 0x40
		if _, err := FromBytes(mut); err == nil {
			t.Fatalf("header corruption at offset %d accepted", off)
		}
	}
}

func TestVersionNegotiation(t *testing.T) {
	// Rewriting header fields invalidates nothing in the payload CRC (it
	// only covers data after the header), so no re-checksum is needed.
	img := writeImage(t)

	// A future version whose minReader is still within range must open.
	fwd := alignedCopy(img)
	binary.LittleEndian.PutUint32(fwd[8:], Version+5)
	binary.LittleEndian.PutUint32(fwd[12:], MinReaderVersion)
	r, err := FromBytes(fwd)
	if err != nil {
		t.Fatalf("forward-compatible file rejected: %v", err)
	}
	if r.Version() != Version+5 {
		t.Fatalf("version = %d", r.Version())
	}

	// A future version that declares it needs a newer reader must not.
	hard := alignedCopy(img)
	binary.LittleEndian.PutUint32(hard[8:], Version+5)
	binary.LittleEndian.PutUint32(hard[12:], Version+5)
	if _, err := FromBytes(hard); err == nil {
		t.Fatal("file requiring a newer reader accepted")
	}

	// A pre-historic version must be rejected.
	old := alignedCopy(img)
	binary.LittleEndian.PutUint32(old[8:], 0)
	binary.LittleEndian.PutUint32(old[12:], 0)
	if _, err := FromBytes(old); err == nil {
		t.Fatal("obsolete version accepted")
	}
}

func TestViewChecks(t *testing.T) {
	if _, err := View[uint64](make([]byte, 12)); err == nil {
		t.Fatal("ragged length accepted")
	}
	v, err := View[uint32](nil)
	if err != nil || v != nil {
		t.Fatalf("empty view = %v, %v", v, err)
	}
	b := Bytes([]uint32{1, 2})
	if len(b) != 8 {
		t.Fatalf("Bytes length = %d", len(b))
	}
	if _, err := View[uint32](b[:8]); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	w := NewWriter()
	w.Add(1, []byte("a"))
	w.Add(1, []byte("b"))
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("duplicate section id accepted")
	}
}
