package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sync/atomic"
	"unsafe"
)

// Options tunes Open.
type Options struct {
	// NoMmap forces the portable load path: one contiguous read of the whole
	// file into a single 8-byte-aligned heap arena. The default on unix is a
	// read-only mmap, which makes open time proportional to page-in I/O.
	NoMmap bool
}

// Reader is an opened snapshot: the raw image plus its parsed directory.
// Section views alias the image, so the Reader must outlive every slice
// derived from it.
//
// Lifetime is refcounted: Open/FromBytes return a Reader holding one
// reference, Ref takes another, and each Close releases one — the image
// is unmapped when the count reaches zero. A component that derives
// long-lived views from the image (a KB carved out of its sections) must
// hold a reference for as long as those views are reachable.
type Reader struct {
	data     []byte
	mapped   bool // data is an mmap region (needs munmap on release)
	version  uint32
	sections map[SectionID][]byte
	refs     atomic.Int32
}

// ErrBadMagic reports a file that is not a snapshot at all (as opposed to a
// damaged or incompatible one); callers sniffing formats test for it.
var ErrBadMagic = fmt.Errorf("snapshot: bad magic")

// SniffFile reports whether path starts with the snapshot magic. Any I/O
// problem reads as "not a snapshot"; the definitive errors surface on Open.
func SniffFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var got [8]byte
	if _, err := io.ReadFull(f, got[:]); err != nil {
		return false
	}
	return string(got[:]) == Magic
}

// Open maps (or reads) the snapshot at path and validates its header,
// checksum and directory. On success the returned Reader serves zero-copy
// section views until Close.
func Open(path string, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("snapshot: %s: file too small (%d bytes)", path, size)
	}

	var data []byte
	mapped := false
	if !opts.NoMmap {
		if m, err := mmapFile(f, int(size)); err == nil {
			data, mapped = m, true
		}
		// Mapping failures (exotic filesystems, platforms without mmap) fall
		// through to the portable read below rather than failing the open.
	}
	if data == nil {
		// Portable fallback: one contiguous read into a single heap arena.
		// The arena is allocated as []uint64 so its base is 8-byte aligned
		// and every section view cast stays valid.
		buf := make([]uint64, (size+7)/8)
		data = unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), size)
		if _, err := io.ReadFull(f, data); err != nil {
			return nil, fmt.Errorf("snapshot: %s: short read: %w", path, err)
		}
	}

	r := &Reader{data: data, mapped: mapped}
	r.refs.Store(1)
	if err := r.parse(); err != nil {
		r.Close()
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return r, nil
}

// FromBytes parses an in-memory snapshot image (tests and in-process
// round-trips). data must be 8-byte aligned for zero-copy views; images
// produced by Writer.WriteTo into an aligned buffer qualify.
func FromBytes(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapshot: image too small (%d bytes)", len(data))
	}
	r := &Reader{data: data}
	r.refs.Store(1)
	if err := r.parse(); err != nil {
		return nil, err
	}
	return r, nil
}

// parse validates the header, payload CRC and directory.
func (r *Reader) parse() error {
	hdr := r.data[:headerSize]
	if string(hdr[0:8]) != Magic {
		return fmt.Errorf("%w %q", ErrBadMagic, hdr[0:8])
	}
	if bom := *(*uint32)(unsafe.Pointer(&hdr[16])); bom != byteOrderMark {
		return fmt.Errorf("snapshot: byte order mismatch (file written on a host with different endianness)")
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	minReader := binary.LittleEndian.Uint32(hdr[12:])
	switch {
	case version < oldestSupported:
		return fmt.Errorf("snapshot: file version %d predates oldest supported version %d; re-pack the KB", version, oldestSupported)
	case minReader > Version:
		return fmt.Errorf("snapshot: file version %d requires reader version >= %d (this reader: %d)", version, minReader, Version)
	}
	nSections := binary.LittleEndian.Uint32(hdr[20:])
	fileSize := binary.LittleEndian.Uint64(hdr[24:])
	wantCRC := binary.LittleEndian.Uint64(hdr[32:])
	dirOff := binary.LittleEndian.Uint64(hdr[40:])
	if fileSize != uint64(len(r.data)) {
		return fmt.Errorf("snapshot: truncated: header says %d bytes, have %d", fileSize, len(r.data))
	}
	if dirOff != headerSize {
		return fmt.Errorf("snapshot: unexpected directory offset %d", dirOff)
	}
	dirEnd := dirOff + uint64(nSections)*dirEntrySize
	if dirEnd > fileSize {
		return fmt.Errorf("snapshot: directory (%d sections) exceeds file size", nSections)
	}
	// The payload CRC covers directory, sections and padding alike: any flip
	// or truncation after the header is caught here, before any section is
	// interpreted. This is a sequential pass at memory bandwidth — still far
	// from the parse+sort cost the snapshot replaces.
	if got := crc64.Checksum(r.data[headerSize:], crcTable); got != wantCRC {
		return fmt.Errorf("snapshot: checksum mismatch (corrupt image): %016x != %016x", got, wantCRC)
	}
	r.version = version
	r.sections = make(map[SectionID][]byte, nSections)
	for i := uint64(0); i < uint64(nSections); i++ {
		e := r.data[dirOff+i*dirEntrySize:]
		id := SectionID(binary.LittleEndian.Uint32(e[0:]))
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off%8 != 0 || off < dirEnd || off > fileSize || length > fileSize-off {
			return fmt.Errorf("snapshot: section %d out of bounds (off %d, len %d)", id, off, length)
		}
		if _, dup := r.sections[id]; dup {
			return fmt.Errorf("snapshot: duplicate section id %d", id)
		}
		r.sections[id] = r.data[off : off+length : off+length]
	}
	return nil
}

// Version returns the file's format version.
func (r *Reader) Version() uint32 { return r.version }

// Mapped reports whether the image is an mmap region (false: heap arena).
func (r *Reader) Mapped() bool { return r.mapped }

// Size returns the image size in bytes.
func (r *Reader) Size() int { return len(r.data) }

// Section returns the raw bytes of a section (nil, false when absent).
// The slice aliases the image: it is valid until Close and must be treated
// as read-only.
func (r *Reader) Section(id SectionID) ([]byte, bool) {
	b, ok := r.sections[id]
	return b, ok
}

// Ref takes one additional reference on the image and returns r for
// chaining. Every Ref must be balanced by one Close. Taking a reference
// on an already-released Reader is a caller bug; callers share readers by
// Ref-ing before handing them off, never after.
func (r *Reader) Ref() *Reader {
	if r.refs.Add(1) <= 1 {
		panic("snapshot: Ref on released reader")
	}
	return r
}

// Refs reports the current reference count (introspection for tests and
// stats; racing against concurrent Ref/Close is inherently approximate).
func (r *Reader) Refs() int { return int(r.refs.Load()) }

// Close releases one reference. When the count reaches zero the image is
// released: every section view (and any slice cast from one) becomes
// invalid, and for mmap images touching them afterwards faults. Extra
// Closes beyond the count are no-ops.
func (r *Reader) Close() error {
	for {
		n := r.refs.Load()
		if n <= 0 {
			return nil // already released; tolerate double close
		}
		if !r.refs.CompareAndSwap(n, n-1) {
			continue
		}
		if n > 1 {
			return nil
		}
		break
	}
	data := r.data
	r.data, r.sections = nil, nil
	if r.mapped && data != nil {
		r.mapped = false
		return munmap(data)
	}
	return nil
}
