package kb

import (
	"fmt"
	"sort"

	"github.com/remi-kb/remi/internal/rdf"
)

// InverseMarker is appended to a predicate name to form the display name of
// its materialized inverse.
const InverseMarker = "⁻¹"

// Options configures KB construction.
type Options struct {
	// InverseTopFraction materializes inverse facts p⁻¹(o,s) for every fact
	// p(s,o) whose object o ranks in this top fraction of the entity
	// frequency ranking, following Section 4 of the paper ("we materialized
	// the inverse facts for all objects o among the top 1% most frequent
	// entities"). Zero disables inverse materialization.
	InverseTopFraction float64
	// TypePredicate and LabelPredicate name the rdf:type / rdfs:label
	// equivalents of the dataset (full IRI strings).
	TypePredicate  string
	LabelPredicate string
}

// DefaultOptions mirrors the experimental setup of the paper.
func DefaultOptions() Options {
	return Options{
		InverseTopFraction: 0.01,
		TypePredicate:      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
		LabelPredicate:     "http://www.w3.org/2000/01/rdf-schema#label",
	}
}

// Builder accumulates triples and produces an indexed KB.
type Builder struct {
	dict      *rdf.Dictionary
	predNames []string
	predIdx   map[string]PredID
	triples   []triple
}

type triple struct {
	s EntID
	p PredID
	o EntID
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		dict:    rdf.NewDictionary(),
		predIdx: make(map[string]PredID),
	}
}

// Add inserts one triple. Predicates must be IRIs; literal subjects are
// rejected.
func (b *Builder) Add(tr rdf.Triple) error {
	if tr.P.Kind != rdf.IRI {
		return fmt.Errorf("kb: predicate must be an IRI: %s", tr)
	}
	if tr.S.Kind == rdf.Literal {
		return fmt.Errorf("kb: literal subject: %s", tr)
	}
	p, ok := b.predIdx[tr.P.Value]
	if !ok {
		b.predNames = append(b.predNames, tr.P.Value)
		p = PredID(len(b.predNames))
		b.predIdx[tr.P.Value] = p
	}
	s := EntID(b.dict.Encode(tr.S))
	o := EntID(b.dict.Encode(tr.O))
	b.triples = append(b.triples, triple{s, p, o})
	return nil
}

// AddAll inserts a batch of triples, stopping at the first error.
func (b *Builder) AddAll(trs []rdf.Triple) error {
	for _, tr := range trs {
		if err := b.Add(tr); err != nil {
			return err
		}
	}
	return nil
}

// Build indexes the accumulated triples. The Builder must not be reused
// afterwards.
func (b *Builder) Build(opts Options) *KB {
	k := &KB{
		dict:      b.dict,
		predNames: b.predNames,
		predIdx:   b.predIdx,
		baseOf:    make([]PredID, len(b.predNames)),
		pso:       make(map[uint64][]EntID),
		pos:       make(map[uint64][]EntID),
		subjAdj:   make(map[EntID][]PO),
	}
	// Cache term kinds.
	terms := b.dict.Terms()
	k.kind = make([]rdf.Kind, len(terms))
	for i, t := range terms {
		k.kind[i] = t.Kind
	}
	// Dedup base triples.
	sort.Slice(b.triples, func(i, j int) bool {
		a, c := b.triples[i], b.triples[j]
		if a.p != c.p {
			return a.p < c.p
		}
		if a.s != c.s {
			return a.s < c.s
		}
		return a.o < c.o
	})
	base := b.triples[:0]
	for i, tr := range b.triples {
		if i == 0 || tr != b.triples[i-1] {
			base = append(base, tr)
		}
	}
	k.nBase = len(base)

	// Base frequencies (before inverse materialization so the prominence
	// signal reflects the original KB only).
	k.entFreq = make([]uint32, len(terms))
	for _, tr := range base {
		k.entFreq[tr.s-1]++
		k.entFreq[tr.o-1]++
	}

	// Inverse materialization for prominent objects.
	all := base
	if opts.InverseTopFraction > 0 {
		prominent := k.ProminentEntities(opts.InverseTopFraction)
		inv := make([]PredID, len(b.predNames)) // base p -> inverse id, lazily
		var extra []triple
		for _, tr := range base {
			// RDF compliance: inverses are only defined for entity objects
			// (footnote 3 of the paper).
			if k.kind[tr.o-1] == rdf.Literal || !prominent[tr.o] {
				continue
			}
			ip := inv[tr.p-1]
			if ip == 0 {
				name := k.predNames[tr.p-1] + InverseMarker
				k.predNames = append(k.predNames, name)
				k.baseOf = append(k.baseOf, tr.p)
				ip = PredID(len(k.predNames))
				k.predIdx[name] = ip
				inv[tr.p-1] = ip
			}
			extra = append(extra, triple{s: tr.o, p: ip, o: tr.s})
		}
		all = append(all, extra...)
	}

	// Per-predicate fact lists and the pso/pos/adjacency indexes.
	k.facts = make([][]Pair, len(k.predNames))
	sort.Slice(all, func(i, j int) bool {
		a, c := all[i], all[j]
		if a.p != c.p {
			return a.p < c.p
		}
		if a.s != c.s {
			return a.s < c.s
		}
		return a.o < c.o
	})
	for _, tr := range all {
		k.facts[tr.p-1] = append(k.facts[tr.p-1], Pair{S: tr.s, O: tr.o})
		k.pso[pkey(tr.p, tr.s)] = append(k.pso[pkey(tr.p, tr.s)], tr.o)
		k.pos[pkey(tr.p, tr.o)] = append(k.pos[pkey(tr.p, tr.o)], tr.s)
		k.subjAdj[tr.s] = append(k.subjAdj[tr.s], PO{P: tr.p, O: tr.o})
	}
	for key := range k.pos {
		s := k.pos[key]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	for e := range k.subjAdj {
		adj := k.subjAdj[e]
		sort.Slice(adj, func(i, j int) bool {
			if adj[i].P != adj[j].P {
				return adj[i].P < adj[j].P
			}
			return adj[i].O < adj[j].O
		})
	}

	if opts.TypePredicate != "" {
		k.typePred = k.predIdx[opts.TypePredicate]
	}
	if opts.LabelPredicate != "" {
		k.lblPred = k.predIdx[opts.LabelPredicate]
	}
	return k
}

// FromTriples builds a KB directly from parsed triples.
func FromTriples(trs []rdf.Triple, opts Options) (*KB, error) {
	b := NewBuilder()
	if err := b.AddAll(trs); err != nil {
		return nil, err
	}
	return b.Build(opts), nil
}
