package kb

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/remi-kb/remi/internal/rdf"
)

// InverseMarker is appended to a predicate name to form the display name of
// its materialized inverse.
const InverseMarker = "⁻¹"

// Options configures KB construction.
type Options struct {
	// InverseTopFraction materializes inverse facts p⁻¹(o,s) for every fact
	// p(s,o) whose object o ranks in this top fraction of the entity
	// frequency ranking, following Section 4 of the paper ("we materialized
	// the inverse facts for all objects o among the top 1% most frequent
	// entities"). Zero disables inverse materialization.
	InverseTopFraction float64
	// TypePredicate and LabelPredicate name the rdf:type / rdfs:label
	// equivalents of the dataset (full IRI strings).
	TypePredicate  string
	LabelPredicate string
}

// DefaultOptions mirrors the experimental setup of the paper.
func DefaultOptions() Options {
	return Options{
		InverseTopFraction: 0.01,
		TypePredicate:      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
		LabelPredicate:     "http://www.w3.org/2000/01/rdf-schema#label",
	}
}

// Builder accumulates triples and produces an indexed KB.
type Builder struct {
	dict      *rdf.Dictionary
	predNames []string
	predIdx   map[string]PredID
	triples   []triple
}

type triple struct {
	s EntID
	p PredID
	o EntID
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		dict:    rdf.NewDictionary(),
		predIdx: make(map[string]PredID),
	}
}

// Add inserts one triple. Predicates must be IRIs; literal subjects are
// rejected.
func (b *Builder) Add(tr rdf.Triple) error {
	if tr.P.Kind != rdf.IRI {
		return fmt.Errorf("kb: predicate must be an IRI: %s", tr)
	}
	if tr.S.Kind == rdf.Literal {
		return fmt.Errorf("kb: literal subject: %s", tr)
	}
	p, ok := b.predIdx[tr.P.Value]
	if !ok {
		b.predNames = append(b.predNames, tr.P.Value)
		p = PredID(len(b.predNames))
		b.predIdx[tr.P.Value] = p
	}
	s := EntID(b.dict.Encode(tr.S))
	o := EntID(b.dict.Encode(tr.O))
	b.triples = append(b.triples, triple{s, p, o})
	return nil
}

// AddAll inserts a batch of triples, stopping at the first error.
func (b *Builder) AddAll(trs []rdf.Triple) error {
	for _, tr := range trs {
		if err := b.Add(tr); err != nil {
			return err
		}
	}
	return nil
}

// Build indexes the accumulated triples. The Builder must not be reused
// afterwards. The CSR indexes (see csr.go) are built once here: one global
// (p,s,o) sort fixes the pso orientation and the adjacency arena order for
// free; the pos orientation needs one extra per-predicate sort, which is
// fanned across a worker pool alongside the adjacency fill.
func (b *Builder) Build(opts Options) *KB {
	k := &KB{
		dict:      b.dict,
		predNames: b.predNames,
		predIdx:   b.predIdx,
		baseOf:    make([]PredID, len(b.predNames)),
	}
	// Cache term kinds.
	terms := b.dict.Terms()
	k.kind = make([]rdf.Kind, len(terms))
	for i, t := range terms {
		k.kind[i] = t.Kind
	}
	// Dedup base triples.
	sort.Slice(b.triples, func(i, j int) bool {
		a, c := b.triples[i], b.triples[j]
		if a.p != c.p {
			return a.p < c.p
		}
		if a.s != c.s {
			return a.s < c.s
		}
		return a.o < c.o
	})
	base := b.triples[:0]
	for i, tr := range b.triples {
		if i == 0 || tr != b.triples[i-1] {
			base = append(base, tr)
		}
	}
	k.nBase = len(base)

	// Base frequencies (before inverse materialization so the prominence
	// signal reflects the original KB only).
	k.entFreq = make([]uint32, len(terms))
	for _, tr := range base {
		k.entFreq[tr.s-1]++
		k.entFreq[tr.o-1]++
	}

	// Inverse materialization for prominent objects.
	all := base
	if opts.InverseTopFraction > 0 {
		prominent := k.ProminentSet(opts.InverseTopFraction)
		inv := make([]PredID, len(b.predNames)) // base p -> inverse id, lazily
		var extra []triple
		for _, tr := range base {
			// RDF compliance: inverses are only defined for entity objects
			// (footnote 3 of the paper).
			if k.kind[tr.o-1] == rdf.Literal || !prominent.Contains(tr.o) {
				continue
			}
			ip := inv[tr.p-1]
			if ip == 0 {
				name := k.predNames[tr.p-1] + InverseMarker
				k.predNames = append(k.predNames, name)
				k.baseOf = append(k.baseOf, tr.p)
				ip = PredID(len(k.predNames))
				k.predIdx[name] = ip
				inv[tr.p-1] = ip
			}
			extra = append(extra, triple{s: tr.o, p: ip, o: tr.s})
		}
		all = append(all, extra...)
	}

	sort.Slice(all, func(i, j int) bool {
		a, c := all[i], all[j]
		if a.p != c.p {
			return a.p < c.p
		}
		if a.s != c.s {
			return a.s < c.s
		}
		return a.o < c.o
	})
	k.nFacts = len(all)
	k.buildIndexes(all)
	k.pairsReady.Store(true)
	k.adjReady.Store(true)

	k.predIDs = make([]PredID, len(k.predNames))
	for i := range k.predIDs {
		k.predIDs[i] = PredID(i + 1)
	}
	if opts.TypePredicate != "" {
		k.typePred = k.predIdx[opts.TypePredicate]
	}
	if opts.LabelPredicate != "" {
		k.lblPred = k.predIdx[opts.LabelPredicate]
	}
	return k
}

// buildIndexes packs the (p,s,o)-sorted fact list into the CSR indexes.
// Per-predicate work (the pos re-sort is the expensive part) is distributed
// over a worker pool; the adjacency arena is filled concurrently on the
// calling goroutine since it reads `all` across predicate boundaries.
func (k *KB) buildIndexes(all []triple) {
	nPred := len(k.predNames)
	k.preds = make([]predIndex, nPred)

	// Predicate run boundaries within the sorted fact list.
	starts := make([]int, nPred+1)
	for i := range starts {
		starts[i] = -1
	}
	for i, tr := range all {
		if starts[tr.p-1] < 0 {
			starts[tr.p-1] = i
		}
	}
	starts[nPred] = len(all)
	for i := nPred - 1; i >= 0; i-- {
		if starts[i] < 0 {
			starts[i] = starts[i+1]
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > nPred {
		workers = nPred
	}
	if workers < 1 {
		workers = 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				p := int(atomic.AddInt64(&next, 1) - 1)
				if p >= nPred {
					return
				}
				k.preds[p] = buildPredIndex(all[starts[p]:starts[p+1]])
			}
		}()
	}
	k.buildAdjacency(all)
	wg.Wait()
}

// buildPredIndex packs one predicate's (s,o)-sorted triple run into both CSR
// orientations.
func buildPredIndex(run []triple) predIndex {
	var ix predIndex
	ix.pairs = make([]Pair, len(run))
	for i, tr := range run {
		ix.pairs[i] = Pair{S: tr.s, O: tr.o}
	}
	ix.psoKey, ix.psoOff, ix.psoVal = packCSR(ix.pairs, false)
	byObject := make([]Pair, len(ix.pairs))
	copy(byObject, ix.pairs)
	slices.SortFunc(byObject, func(a, b Pair) int {
		if a.O != b.O {
			return int(a.O) - int(b.O)
		}
		return int(a.S) - int(b.S)
	})
	ix.posKey, ix.posOff, ix.posVal = packCSR(byObject, true)
	return ix
}

// buildAdjacency fills the flat adjacency arena with one counting pass and
// one placement pass. Because `all` is sorted by (p,s,o), each subject's run
// receives its entries in ascending (P,O) order — no per-entity sort needed.
func (k *KB) buildAdjacency(all []triple) {
	n := len(k.kind)
	k.adjOff = make([]uint32, n+1)
	for _, tr := range all {
		k.adjOff[tr.s]++
	}
	for i := 1; i <= n; i++ {
		k.adjOff[i] += k.adjOff[i-1]
	}
	k.adjArena = make([]PO, len(all))
	cur := make([]uint32, n)
	copy(cur, k.adjOff[:n])
	for _, tr := range all {
		pos := cur[tr.s-1]
		cur[tr.s-1]++
		k.adjArena[pos] = PO{P: tr.p, O: tr.o}
	}
}

// FromTriples builds a KB directly from parsed triples.
func FromTriples(trs []rdf.Triple, opts Options) (*KB, error) {
	b := NewBuilder()
	if err := b.AddAll(trs); err != nil {
		return nil, err
	}
	return b.Build(opts), nil
}
