package kb

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"github.com/remi-kb/remi/internal/kb/snapshot"
	"github.com/remi-kb/remi/internal/rdf"
)

// sliceSource adapts a triple slice to TripleSource.
type sliceSource struct {
	trs []rdf.Triple
	i   int
}

func (s *sliceSource) Read() (rdf.Triple, error) {
	if s.i >= len(s.trs) {
		return rdf.Triple{}, io.EOF
	}
	tr := s.trs[s.i]
	s.i++
	return tr, nil
}

// genStreamTriples produces a deterministic mix of entity and literal
// objects across several predicates, with deliberate duplicates.
func genStreamTriples(n int, seed int64) []rdf.Triple {
	rng := rand.New(rand.NewSource(seed))
	ent := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://ex.org/e%d", i)) }
	out := make([]rdf.Triple, 0, n)
	for len(out) < n {
		s := ent(rng.Intn(40))
		p := rdf.NewIRI(fmt.Sprintf("http://ex.org/p%d", rng.Intn(6)))
		var o rdf.Term
		if rng.Intn(5) == 0 {
			o = rdf.NewLiteral(fmt.Sprintf("lit-%d", rng.Intn(20)))
		} else {
			o = ent(rng.Intn(40))
		}
		out = append(out, rdf.Triple{S: s, P: p, O: o})
		if rng.Intn(4) == 0 && len(out) < n {
			out = append(out, out[len(out)-1]) // duplicate
		}
	}
	return out
}

func snapshotBytes(t *testing.T, k *KB, legacy bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if legacy {
		err = k.WriteSnapshotLegacy(&buf)
	} else {
		err = k.WriteSnapshot(&buf)
	}
	if err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	return buf.Bytes()
}

func TestBuildStreamingMatchesInMemory(t *testing.T) {
	trs := genStreamTriples(3000, 7)
	mem, err := FromTriples(trs, DefaultOptions())
	if err != nil {
		t.Fatalf("FromTriples: %v", err)
	}

	for _, cfg := range []StreamConfig{
		{}, // single in-memory run
		{MaxBufferedTriples: 64, TmpDir: t.TempDir()}, // many spilled runs
		{MaxBufferedTriples: 7, TmpDir: t.TempDir()},  // tiny runs, heavy merge
	} {
		name := fmt.Sprintf("maxBuf=%d", cfg.MaxBufferedTriples)
		t.Run(name, func(t *testing.T) {
			st, err := BuildStreamingWith(&sliceSource{trs: trs}, DefaultOptions(), cfg)
			if err != nil {
				t.Fatalf("BuildStreamingWith: %v", err)
			}
			if st.NumFacts() != mem.NumFacts() || st.NumBaseFacts() != mem.NumBaseFacts() ||
				st.NumEntities() != mem.NumEntities() || st.NumPredicates() != mem.NumPredicates() {
				t.Fatalf("counts differ: streamed (%d facts, %d base, %d ents, %d preds), in-memory (%d, %d, %d, %d)",
					st.NumFacts(), st.NumBaseFacts(), st.NumEntities(), st.NumPredicates(),
					mem.NumFacts(), mem.NumBaseFacts(), mem.NumEntities(), mem.NumPredicates())
			}
			// The strong equivalence check: pack-once images must be
			// byte-identical, in both format versions (legacy exercises the
			// lazily derived pair lists and adjacency arena too).
			if !bytes.Equal(snapshotBytes(t, st, false), snapshotBytes(t, mem, false)) {
				t.Errorf("v2 snapshot bytes differ between streamed and in-memory builds")
			}
			if !bytes.Equal(snapshotBytes(t, st, true), snapshotBytes(t, mem, true)) {
				t.Errorf("legacy snapshot bytes differ between streamed and in-memory builds")
			}
			// Spot-check accessors (post-derivation).
			for _, p := range mem.Predicates() {
				if mem.PredicateName(p) != st.PredicateName(p) {
					t.Fatalf("predicate %d name mismatch", p)
				}
				mf, sf := mem.Facts(p), st.Facts(p)
				if len(mf) != len(sf) {
					t.Fatalf("predicate %d: %d vs %d facts", p, len(mf), len(sf))
				}
				for i := range mf {
					if mf[i] != sf[i] {
						t.Fatalf("predicate %d: fact %d differs: %v vs %v", p, i, mf[i], sf[i])
					}
				}
			}
			for e := EntID(1); int(e) <= mem.NumEntities(); e++ {
				ma, sa := mem.AdjacencyOf(e), st.AdjacencyOf(e)
				if len(ma) != len(sa) {
					t.Fatalf("entity %d: adjacency %d vs %d", e, len(ma), len(sa))
				}
				for i := range ma {
					if ma[i] != sa[i] {
						t.Fatalf("entity %d: adjacency %d differs", e, i)
					}
				}
			}
		})
	}
}

func TestBuildStreamingRejectsBadTriples(t *testing.T) {
	lit := rdf.NewLiteral("x")
	iri := rdf.NewIRI("http://ex.org/a")
	cases := []rdf.Triple{
		{S: lit, P: rdf.NewIRI("http://ex.org/p"), O: iri}, // literal subject
		{S: iri, P: lit, O: iri},                           // literal predicate
	}
	for _, tr := range cases {
		if _, err := BuildStreaming(&sliceSource{trs: []rdf.Triple{tr}}, DefaultOptions()); err == nil {
			t.Errorf("expected error for %v", tr)
		}
	}
}

func TestSnapshotRoundTripLazyV2(t *testing.T) {
	trs := genStreamTriples(1500, 11)
	mem, err := FromTriples(trs, DefaultOptions())
	if err != nil {
		t.Fatalf("FromTriples: %v", err)
	}
	dir := t.TempDir()
	v2Path := dir + "/kb.v2.snap"
	v1Path := dir + "/kb.v1.snap"
	f, err := os.Create(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f, err = os.Create(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.WriteSnapshotLegacy(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st1, _ := os.Stat(v1Path)
	st2, _ := os.Stat(v2Path)
	if st2.Size() >= st1.Size() {
		t.Errorf("v2 snapshot (%d bytes) not smaller than legacy (%d bytes)", st2.Size(), st1.Size())
	}

	k2, err := OpenSnapshot(v2Path)
	if err != nil {
		t.Fatalf("open v2: %v", err)
	}
	defer k2.Close()
	k1, err := OpenSnapshot(v1Path)
	if err != nil {
		t.Fatalf("open v1: %v", err)
	}
	defer k1.Close()

	for _, k := range []*KB{k1, k2} {
		if k.NumFacts() != mem.NumFacts() || k.NumEntities() != mem.NumEntities() {
			t.Fatalf("counts differ after round-trip")
		}
		// Dictionary equivalence both directions.
		for e := EntID(1); int(e) <= mem.NumEntities(); e++ {
			want := mem.Term(e)
			if got := k.Term(e); got != want {
				t.Fatalf("entity %d decodes to %v, want %v", e, got, want)
			}
			id, ok := k.EntityID(want)
			if !ok || id != e {
				t.Fatalf("lookup of %v: got (%d,%v), want (%d,true)", want, id, ok, e)
			}
		}
		if _, ok := k.EntityID(rdf.NewIRI("http://ex.org/absent")); ok {
			t.Fatalf("lookup of absent term succeeded")
		}
		// Derived arrays equal the eager ones.
		for _, p := range mem.Predicates() {
			mf, kf := mem.Facts(p), k.Facts(p)
			if len(mf) != len(kf) {
				t.Fatalf("predicate %d: %d vs %d facts", p, len(mf), len(kf))
			}
			for i := range mf {
				if mf[i] != kf[i] {
					t.Fatalf("predicate %d fact %d differs", p, i)
				}
			}
		}
		for e := EntID(1); int(e) <= mem.NumEntities(); e++ {
			ma, ka := mem.AdjacencyOf(e), k.AdjacencyOf(e)
			if len(ma) != len(ka) {
				t.Fatalf("entity %d adjacency length differs", e)
			}
			for i := range ma {
				if ma[i] != ka[i] {
					t.Fatalf("entity %d adjacency %d differs", e, i)
				}
			}
		}
		// Entities must enumerate every id without materializing terms.
		if got := len(k.Entities(nil)); got != mem.NumEntities() {
			t.Fatalf("Entities: %d ids, want %d", got, mem.NumEntities())
		}
	}
}

func TestSnapshotVersionNegotiation(t *testing.T) {
	trs := genStreamTriples(200, 3)
	mem, err := FromTriples(trs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// A file demanding a future reader must be rejected.
	var buf bytes.Buffer
	sw := snapshot.NewWriter()
	sw.SetVersion(99, 99)
	sw.Add(1, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if _, err := sw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	future := dir + "/future.snap"
	if err := os.WriteFile(future, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(future); err == nil {
		t.Fatalf("opening a minReader=99 snapshot succeeded")
	}

	// A legacy v1 file written by this code must still open.
	v1 := dir + "/v1.snap"
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.WriteSnapshotLegacy(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	k, err := OpenSnapshot(v1)
	if err != nil {
		t.Fatalf("open v1: %v", err)
	}
	k.Close()
}
