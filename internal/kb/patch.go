package kb

// Patch materialization: the KB-side half of the live-KB delta layer
// (internal/kb/delta). A Patch is a resolved, dictionary-encoded edit set;
// ApplyPatch folds it into a new KB copy-on-write. The design goal is the
// LSM property the ROADMAP asks for: per-predicate granularity means a
// mutation batch touching two predicates re-packs two CSR indexes and the
// adjacency arena, while every untouched predicate's index arrays — the
// overwhelming majority of a real KB — are shared with the base by slice
// header. The base KB itself is never modified; old generations keep
// serving byte-identical answers while the new one is assembled.

import (
	"fmt"
	"maps"
	"slices"

	"github.com/remi-kb/remi/internal/rdf"
)

// Patch is an edit set against the base KB it was built for, already
// dictionary-encoded and normalized by the producer (the delta overlay):
//
//   - ExtraTerms are new terms absent from the base dictionary; they take
//     ids NumEntities+1.. in order.
//   - ExtraPreds are new predicate names (base predicates, no inverses);
//     they take ids NumPredicates+1.. in order.
//   - Adds[p] is (S,O)-sorted, duplicate-free and disjoint from the base
//     facts of p; Dels[p] is (S,O)-sorted and every pair is a base fact.
//
// ApplyPatch re-validates the membership invariants during its merges (a
// violated one returns an error rather than a corrupt KB), but sortedness
// is trusted.
type Patch struct {
	ExtraTerms []rdf.Term
	ExtraPreds []string
	Adds       map[PredID][]Pair
	Dels       map[PredID][]Pair
}

// Empty reports whether the patch changes nothing.
func (p *Patch) Empty() bool {
	return len(p.ExtraTerms) == 0 && len(p.ExtraPreds) == 0 && len(p.Adds) == 0 && len(p.Dels) == 0
}

// cmpPairSO orders pairs by (S,O) — the Facts/pso order.
func cmpPairSO(a, b Pair) int {
	if a.S != b.S {
		return int(a.S) - int(b.S)
	}
	return int(a.O) - int(b.O)
}

// indexFromPairs packs a (S,O)-sorted, duplicate-free pair list into both
// CSR orientations (the patch-side counterpart of buildPredIndex).
func indexFromPairs(pairs []Pair) predIndex {
	var ix predIndex
	ix.pairs = pairs
	ix.psoKey, ix.psoOff, ix.psoVal = packCSR(pairs, false)
	byObject := make([]Pair, len(pairs))
	copy(byObject, pairs)
	slices.SortFunc(byObject, func(a, b Pair) int {
		if a.O != b.O {
			return int(a.O) - int(b.O)
		}
		return int(a.S) - int(b.S)
	})
	ix.posKey, ix.posOff, ix.posVal = packCSR(byObject, true)
	return ix
}

// mergePairs folds sorted add/del lists into a sorted base pair list,
// verifying membership as it goes: an add that already exists or a del
// that doesn't is an invariant violation and errors out.
func mergePairs(base, adds, dels []Pair, label string) ([]Pair, error) {
	out := make([]Pair, 0, len(base)+len(adds)-len(dels))
	i, a, d := 0, 0, 0
	for i < len(base) || a < len(adds) {
		if i < len(base) && d < len(dels) {
			switch c := cmpPairSO(base[i], dels[d]); {
			case c == 0:
				i++
				d++
				continue
			case c > 0:
				return nil, fmt.Errorf("kb: patch %s: retract of absent fact (%d,%d)", label, dels[d].S, dels[d].O)
			}
		}
		takeBase := a >= len(adds)
		if !takeBase && i < len(base) {
			c := cmpPairSO(base[i], adds[a])
			if c == 0 {
				return nil, fmt.Errorf("kb: patch %s: add of existing fact (%d,%d)", label, adds[a].S, adds[a].O)
			}
			takeBase = c < 0
		}
		if takeBase {
			out = append(out, base[i])
			i++
		} else {
			out = append(out, adds[a])
			a++
		}
	}
	if d != len(dels) {
		return nil, fmt.Errorf("kb: patch %s: retract of absent fact (%d,%d)", label, dels[d].S, dels[d].O)
	}
	return out, nil
}

// ApplyPatch returns a new KB equal to k with the patch folded in. k is
// unchanged and keeps serving; the result shares every index array the
// patch does not touch. The result always owns an independent reference
// on any backing snapshot image, so closing either KB is safe regardless
// of order. An empty patch returns a shallow, independently closeable
// copy.
func (k *KB) ApplyPatch(p Patch) (*KB, error) {
	// The merges below read the base's pair lists and adjacency arena;
	// derive them first if this KB came from a v2 snapshot (one-time linear
	// pass, already paid by any KB that has served mining traffic).
	k.ensurePairs()
	k.ensureAdjacency()
	nEnt := len(k.kind)
	nEnt2 := nEnt + len(p.ExtraTerms)
	nPred := len(k.predNames)
	nPred2 := nPred + len(p.ExtraPreds)

	// Range-check every edit before any allocation depends on it.
	totalAdds, totalDels := 0, 0
	checkPairs := func(m map[PredID][]Pair, allowNewPreds bool) error {
		for pid, prs := range m {
			if pid == 0 || int(pid) > nPred2 || (!allowNewPreds && int(pid) > nPred) {
				return fmt.Errorf("kb: patch: predicate id %d out of range", pid)
			}
			for _, pr := range prs {
				if pr.S == 0 || int(pr.S) > nEnt2 || pr.O == 0 || int(pr.O) > nEnt2 {
					return fmt.Errorf("kb: patch: entity id out of range in (%d,%d)", pr.S, pr.O)
				}
			}
		}
		return nil
	}
	if err := checkPairs(p.Adds, true); err != nil {
		return nil, err
	}
	if err := checkPairs(p.Dels, false); err != nil {
		return nil, err
	}
	for _, prs := range p.Adds {
		totalAdds += len(prs)
	}
	for _, prs := range p.Dels {
		totalDels += len(prs)
	}

	// Dictionary and kind table: extended views sharing the base lookup
	// structures; untouched when no terms are added.
	dict2, kind2 := k.dict, k.kind
	if len(p.ExtraTerms) > 0 {
		var err error
		dict2, err = rdf.ExtendDictionary(k.dict, p.ExtraTerms)
		if err != nil {
			return nil, err
		}
		kind2 = make([]rdf.Kind, nEnt2)
		copy(kind2, k.kind)
		for i, t := range p.ExtraTerms {
			kind2[nEnt+i] = t.Kind
		}
	}

	// Predicate tables.
	predNames2, predIdx2, predIDs2, baseOf2 := k.predNames, k.predIdx, k.predIDs, k.baseOf
	if len(p.ExtraPreds) > 0 {
		predIdx2 = maps.Clone(k.predIdx)
		predNames2 = append(append(make([]string, 0, nPred2), k.predNames...), p.ExtraPreds...)
		baseOf2 = append(append(make([]PredID, 0, nPred2), k.baseOf...), make([]PredID, len(p.ExtraPreds))...)
		for i, name := range p.ExtraPreds {
			if _, dup := predIdx2[name]; dup {
				return nil, fmt.Errorf("kb: patch: predicate %q already exists", name)
			}
			predIdx2[name] = PredID(nPred + i + 1)
		}
		predIDs2 = make([]PredID, nPred2)
		for i := range predIDs2 {
			predIDs2[i] = PredID(i + 1)
		}
	}

	// Per-predicate CSR indexes: clone the slice of headers, rebuild only
	// the touched entries.
	preds2 := make([]predIndex, nPred2)
	copy(preds2, k.preds)
	isInverse := func(pid PredID) bool { return int(pid) <= nPred && k.baseOf[pid-1] != 0 }
	touched := make(map[PredID]bool, len(p.Adds)+len(p.Dels))
	for pid := range p.Adds {
		touched[pid] = true
	}
	for pid := range p.Dels {
		touched[pid] = true
	}
	for pid := range touched {
		adds, dels := p.Adds[pid], p.Dels[pid]
		if int(pid) > nPred {
			preds2[pid-1] = indexFromPairs(slices.Clone(adds))
			continue
		}
		merged, err := mergePairs(k.preds[pid-1].pairs, adds, dels, predNames2[pid-1])
		if err != nil {
			return nil, err
		}
		preds2[pid-1] = indexFromPairs(merged)
	}

	// Base-fact statistics: inverse predicates hold mirrored facts only,
	// so they contribute to neither nBase nor the prominence frequencies.
	nBase2 := k.nBase
	entFreq2 := k.entFreq
	if totalAdds+totalDels > 0 || len(p.ExtraTerms) > 0 {
		entFreq2 = make([]uint32, nEnt2)
		copy(entFreq2, k.entFreq)
		for pid, prs := range p.Adds {
			if isInverse(pid) {
				continue
			}
			nBase2 += len(prs)
			for _, pr := range prs {
				entFreq2[pr.S-1]++
				entFreq2[pr.O-1]++
			}
		}
		for pid, prs := range p.Dels {
			if isInverse(pid) {
				continue
			}
			nBase2 -= len(prs)
			for _, pr := range prs {
				if entFreq2[pr.S-1] == 0 || entFreq2[pr.O-1] == 0 {
					return nil, fmt.Errorf("kb: patch: frequency underflow retracting (%d,%d)", pr.S, pr.O)
				}
				entFreq2[pr.S-1]--
				entFreq2[pr.O-1]--
			}
		}
	}

	// Adjacency: one merged counting-free pass. Bucketing the edits by
	// subject in ascending predicate order keeps each per-subject list
	// (P,O)-sorted for free, so the per-entity merge is linear.
	adjOff2, adjArena2 := k.adjOff, k.adjArena
	if totalAdds+totalDels > 0 || len(p.ExtraTerms) > 0 {
		pids := make([]PredID, 0, len(touched))
		for pid := range touched {
			pids = append(pids, pid)
		}
		slices.Sort(pids)
		addPO := make(map[EntID][]PO)
		delPO := make(map[EntID][]PO)
		for _, pid := range pids {
			for _, pr := range p.Adds[pid] {
				addPO[pr.S] = append(addPO[pr.S], PO{P: pid, O: pr.O})
			}
			for _, pr := range p.Dels[pid] {
				delPO[pr.S] = append(delPO[pr.S], PO{P: pid, O: pr.O})
			}
		}
		adjOff2 = make([]uint32, nEnt2+1)
		adjArena2 = make([]PO, 0, len(k.adjArena)+totalAdds-totalDels)
		for e := 1; e <= nEnt2; e++ {
			var baseRun []PO
			if e <= nEnt {
				baseRun = k.adjArena[k.adjOff[e-1]:k.adjOff[e]]
			}
			ad, dl := addPO[EntID(e)], delPO[EntID(e)]
			if len(ad) == 0 && len(dl) == 0 {
				adjArena2 = append(adjArena2, baseRun...)
			} else {
				i, a, d := 0, 0, 0
				for i < len(baseRun) || a < len(ad) {
					if i < len(baseRun) && d < len(dl) && baseRun[i] == dl[d] {
						i++
						d++
						continue
					}
					takeBase := a >= len(ad)
					if !takeBase && i < len(baseRun) {
						b, x := baseRun[i], ad[a]
						takeBase = b.P < x.P || (b.P == x.P && b.O < x.O)
					}
					if takeBase {
						adjArena2 = append(adjArena2, baseRun[i])
						i++
					} else {
						adjArena2 = append(adjArena2, ad[a])
						a++
					}
				}
			}
			adjOff2[e] = uint32(len(adjArena2))
		}
	}

	k2 := &KB{
		dict:      dict2,
		kind:      kind2,
		predNames: predNames2,
		predIdx:   predIdx2,
		predIDs:   predIDs2,
		baseOf:    baseOf2,
		preds:     preds2,
		adjOff:    adjOff2,
		adjArena:  adjArena2,
		nFacts:    k.nFacts + totalAdds - totalDels,
		nBase:     nBase2,
		entFreq:   entFreq2,
		typePred:  k.typePred,
		lblPred:   k.lblPred,
	}
	k2.pairsReady.Store(true)
	k2.adjReady.Store(true)
	if k.src != nil {
		// The new KB aliases arrays inside the base's snapshot image (at
		// minimum every untouched predicate index), so it holds its own
		// reference for its own lifetime.
		k2.src = k.src.Ref()
	}
	return k2, nil
}
