package kb

import (
	"testing"

	"github.com/remi-kb/remi/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func buildTest(t *testing.T, opts Options, triples ...[3]string) *KB {
	t.Helper()
	b := NewBuilder()
	for _, tr := range triples {
		if err := b.Add(rdf.Triple{S: iri(tr[0]), P: iri(tr[1]), O: iri(tr[2])}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(opts)
}

func TestBasicIndexes(t *testing.T) {
	k := buildTest(t, Options{},
		[3]string{"paris", "capitalOf", "france"},
		[3]string{"paris", "cityIn", "france"},
		[3]string{"lyon", "cityIn", "france"},
		[3]string{"berlin", "capitalOf", "germany"},
	)
	capOf := k.MustPredicateID("http://e/capitalOf")
	cityIn := k.MustPredicateID("http://e/cityIn")
	paris := k.MustEntityID("http://e/paris")
	france := k.MustEntityID("http://e/france")
	lyon := k.MustEntityID("http://e/lyon")

	if got := k.Objects(capOf, paris); len(got) != 1 || got[0] != france {
		t.Fatalf("Objects(capitalOf, paris) = %v", got)
	}
	subj := k.Subjects(cityIn, france)
	if len(subj) != 2 {
		t.Fatalf("Subjects(cityIn, france) = %v", subj)
	}
	if !k.HasFact(cityIn, lyon, france) {
		t.Fatal("HasFact missed an existing fact")
	}
	if k.HasFact(capOf, lyon, france) {
		t.Fatal("HasFact invented a fact")
	}
	if k.PredFreq(cityIn) != 2 || k.PredFreq(capOf) != 2 {
		t.Fatal("PredFreq wrong")
	}
	if k.ObjFreq(cityIn, france) != 2 {
		t.Fatalf("ObjFreq = %d", k.ObjFreq(cityIn, france))
	}
	// france occurs in 3 base facts.
	if k.EntityFreq(france) != 3 {
		t.Fatalf("EntityFreq(france) = %d", k.EntityFreq(france))
	}
}

func TestDuplicateFactsCollapse(t *testing.T) {
	k := buildTest(t, Options{},
		[3]string{"a", "p", "b"},
		[3]string{"a", "p", "b"},
		[3]string{"a", "p", "b"},
	)
	if k.NumBaseFacts() != 1 {
		t.Fatalf("NumBaseFacts = %d", k.NumBaseFacts())
	}
}

func TestAdjacencySorted(t *testing.T) {
	k := buildTest(t, Options{},
		[3]string{"x", "q", "b"},
		[3]string{"x", "p", "c"},
		[3]string{"x", "p", "a"},
	)
	x := k.MustEntityID("http://e/x")
	adj := k.AdjacencyOf(x)
	if len(adj) != 3 {
		t.Fatalf("adjacency size %d", len(adj))
	}
	for i := 1; i < len(adj); i++ {
		if adj[i-1].P > adj[i].P || (adj[i-1].P == adj[i].P && adj[i-1].O > adj[i].O) {
			t.Fatal("adjacency not sorted by (P,O)")
		}
	}
}

func TestInverseMaterialization(t *testing.T) {
	// "hub" is the most frequent entity; with a 34% fraction only it gets
	// inverse facts.
	k := buildTest(t, Options{InverseTopFraction: 0.34},
		[3]string{"a", "links", "hub"},
		[3]string{"b", "links", "hub"},
		[3]string{"c", "links", "hub"},
		[3]string{"a", "links", "b"},
	)
	inv, ok := k.PredicateID("http://e/links" + InverseMarker)
	if !ok {
		t.Fatal("inverse predicate missing")
	}
	if !k.IsInverse(inv) || k.BaseOf(inv) != k.MustPredicateID("http://e/links") {
		t.Fatal("inverse bookkeeping wrong")
	}
	hub := k.MustEntityID("http://e/hub")
	a := k.MustEntityID("http://e/a")
	if !k.HasFact(inv, hub, a) {
		t.Fatal("inverse fact for prominent object missing")
	}
	b := k.MustEntityID("http://e/b")
	if k.HasFact(inv, b, a) {
		t.Fatal("inverse fact materialized for non-prominent object")
	}
	// Base frequencies must not count inverse facts.
	if k.EntityFreq(hub) != 3 {
		t.Fatalf("EntityFreq(hub) = %d want 3", k.EntityFreq(hub))
	}
}

func TestInverseSkipsLiterals(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(rdf.Triple{S: iri("a"), P: iri("name"), O: rdf.NewLiteral("X")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(rdf.Triple{S: iri("b"), P: iri("name"), O: rdf.NewLiteral("X")}); err != nil {
		t.Fatal(err)
	}
	k := b.Build(Options{InverseTopFraction: 1.0})
	if _, ok := k.PredicateID("http://e/name" + InverseMarker); ok {
		t.Fatal("inverse predicate created for literal-only objects")
	}
}

func TestTypeAndLabel(t *testing.T) {
	b := NewBuilder()
	typeIRI := "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	labelIRI := "http://www.w3.org/2000/01/rdf-schema#label"
	b.Add(rdf.Triple{S: iri("paris"), P: rdf.NewIRI(typeIRI), O: iri("City")})
	b.Add(rdf.Triple{S: iri("paris"), P: rdf.NewIRI(labelIRI), O: rdf.NewLiteral("Paris")})
	k := b.Build(DefaultOptions())
	paris := k.MustEntityID("http://e/paris")
	if k.Label(paris) != "Paris" {
		t.Fatalf("Label = %q", k.Label(paris))
	}
	types := k.Types(paris)
	if len(types) != 1 || types[0] != k.MustEntityID("http://e/City") {
		t.Fatalf("Types = %v", types)
	}
	city := k.MustEntityID("http://e/City")
	inst := k.InstancesOf(city)
	if len(inst) != 1 || inst[0] != paris {
		t.Fatalf("InstancesOf = %v", inst)
	}
}

func TestProminentEntities(t *testing.T) {
	k := buildTest(t, Options{},
		[3]string{"a", "p", "hub"},
		[3]string{"b", "p", "hub"},
		[3]string{"c", "p", "hub"},
		[3]string{"d", "p", "e"},
	)
	top := k.ProminentEntities(0.01) // at least one survives
	hub := k.MustEntityID("http://e/hub")
	if !top[hub] || len(top) != 1 {
		t.Fatalf("ProminentEntities = %v", top)
	}
	if len(k.ProminentEntities(0)) != 0 {
		t.Fatal("zero fraction should be empty")
	}
	all := k.ProminentEntities(1.0)
	if len(all) != k.NumEntities() {
		t.Fatalf("full fraction: %d of %d", len(all), k.NumEntities())
	}
}

func TestBuilderRejections(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(rdf.Triple{S: rdf.NewLiteral("x"), P: iri("p"), O: iri("o")}); err == nil {
		t.Fatal("literal subject accepted")
	}
	if err := b.Add(rdf.Triple{S: iri("s"), P: rdf.NewBlank("b"), O: iri("o")}); err == nil {
		t.Fatal("blank predicate accepted")
	}
}

func TestKindCaching(t *testing.T) {
	b := NewBuilder()
	b.Add(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewLiteral("lit")})
	b.Add(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewBlank("bn")})
	k := b.Build(Options{})
	lit, _ := k.EntityID(rdf.NewLiteral("lit"))
	bn, _ := k.EntityID(rdf.NewBlank("bn"))
	if !k.IsLiteral(lit) || k.IsBlank(lit) {
		t.Fatal("literal kind wrong")
	}
	if !k.IsBlank(bn) || k.IsLiteral(bn) {
		t.Fatal("blank kind wrong")
	}
}

func TestFromTriples(t *testing.T) {
	k, err := FromTriples([]rdf.Triple{
		{S: iri("a"), P: iri("p"), O: iri("b")},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k.NumBaseFacts() != 1 || k.NumPredicates() != 1 {
		t.Fatal("FromTriples built wrong KB")
	}
}
