package kb

// CSR (compressed sparse row) fact indexes. The KB used to keep its
// per-(predicate,key) posting lists in hash maps (pso/pos keyed by a packed
// uint64, subjAdj keyed by EntID). Every probe on the mining hot path — an
// Objects lookup per atom, a HasFact per closed-shape test, an AdjacencyOf
// per enumerated entity — paid a hash, a bucket walk and a pointer chase.
// The layout below replaces all of that with immutable flat arrays built
// once at load time:
//
//	predIndex (one per predicate)
//	  psoKey ─┐  distinct subjects, ascending
//	  psoOff ─┼─ psoVal[psoOff[i]:psoOff[i+1]] = objects of psoKey[i]
//	  psoVal ─┘  the O column of the (S,O)-sorted fact list
//	  posKey/posOff/posVal: the same, keyed by object over the S column
//
//	adjacency (one arena for the whole KB)
//	  adjOff ──  indexed by EntID: adjArena[adjOff[e-1]:adjOff[e]]
//	  adjArena   flat []PO runs, each sorted by (P,O)
//
// A lookup is now a binary search over a contiguous key array (cache-line
// friendly, no hashing) returning a slice view into the value arena, and the
// per-entity adjacency is a constant-time offset pair. HasFact is a second
// binary search inside the returned run. ObjFreq reads a run length from two
// adjacent offsets without touching the values at all.

// predIndex holds both CSR orientations of one predicate's facts.
type predIndex struct {
	pairs  []Pair   // sorted by (S,O); backs Facts and PredFreq
	psoKey []EntID  // distinct subjects, ascending
	psoOff []uint32 // len(psoKey)+1 run boundaries into psoVal
	psoVal []EntID  // objects grouped by subject, each run ascending
	posKey []EntID  // distinct objects, ascending
	posOff []uint32 // len(posKey)+1 run boundaries into posVal
	posVal []EntID  // subjects grouped by object, each run ascending
}

// searchIDs returns the position of key in the ascending slice keys, or the
// insertion point when absent (a hand-rolled sort.Search without the closure
// indirection — this sits under every index probe).
func searchIDs(keys []EntID, key EntID) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// run returns the CSR value run of key, or nil when the key has no facts.
func run(keys []EntID, off []uint32, vals []EntID, key EntID) []EntID {
	i := searchIDs(keys, key)
	if i < len(keys) && keys[i] == key {
		return vals[off[i]:off[i+1]]
	}
	return nil
}

// runLen returns the length of the CSR run of key without touching the
// value arena.
func runLen(keys []EntID, off []uint32, key EntID) int {
	i := searchIDs(keys, key)
	if i < len(keys) && keys[i] == key {
		return int(off[i+1] - off[i])
	}
	return 0
}

// packCSR packs one orientation of a predicate's fact list into a CSR run
// index. pairs must already be sorted by the key column (S when byObject is
// false, O when true), then by the value column.
func packCSR(pairs []Pair, byObject bool) (keys []EntID, off []uint32, vals []EntID) {
	n := len(pairs)
	key := func(p Pair) EntID { return p.S }
	val := func(p Pair) EntID { return p.O }
	if byObject {
		key, val = val, key
	}
	distinct := 0
	for i := range pairs {
		if i == 0 || key(pairs[i]) != key(pairs[i-1]) {
			distinct++
		}
	}
	keys = make([]EntID, 0, distinct)
	off = make([]uint32, 0, distinct+1)
	vals = make([]EntID, n)
	for i, p := range pairs {
		if i == 0 || key(p) != key(pairs[i-1]) {
			keys = append(keys, key(p))
			off = append(off, uint32(i))
		}
		vals[i] = val(p)
	}
	off = append(off, uint32(n))
	return keys, off, vals
}
