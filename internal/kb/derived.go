package kb

// Derived arrays: the per-predicate pair lists and the per-entity adjacency
// arena are exact functions of the CSR pso indexes, so the v2 snapshot
// format does not store them (they were ~40% of the v1 file). Built KBs and
// v1 snapshots still populate them eagerly; a v2-backed KB reconstructs each
// on first use, outside OpenSnapshot, so opening stays O(page-in) and
// mining-only processes that never touch Facts/AdjacencyOf never pay.
//
// Reconstruction replays the same visit order the in-memory Build uses —
// predicates ascending, subjects ascending within a predicate, objects
// ascending within a subject — so the derived arrays are element-identical
// to eagerly built ones (the format-equivalence tests assert this).

// ensurePairs and ensureAdjacency make the derived arrays present, deriving
// them at most once.
func (k *KB) ensurePairs() {
	if !k.pairsReady.Load() {
		k.derivePairs()
	}
}

func (k *KB) ensureAdjacency() {
	if !k.adjReady.Load() {
		k.deriveAdjacency()
	}
}

// derivePairs fills preds[p].pairs for every predicate from the pso CSR
// arrays: one shared arena sized to the total fact count, sliced per
// predicate.
func (k *KB) derivePairs() {
	k.deriveMu.Lock()
	defer k.deriveMu.Unlock()
	if k.pairsReady.Load() {
		return
	}
	arena := make([]Pair, 0, k.nFacts)
	for p := range k.preds {
		ix := &k.preds[p]
		start := len(arena)
		for i, s := range ix.psoKey {
			for _, o := range ix.psoVal[ix.psoOff[i]:ix.psoOff[i+1]] {
				arena = append(arena, Pair{S: EntID(s), O: EntID(o)})
			}
		}
		ix.pairs = arena[start:len(arena):len(arena)]
	}
	k.pairsReady.Store(true)
}

// deriveAdjacency rebuilds adjOff/adjArena from the pso CSR arrays: a
// counting pass over subject degrees, a prefix sum, then a placement pass in
// (p, s, o) order so every per-subject run comes out sorted by (P,O).
func (k *KB) deriveAdjacency() {
	k.deriveMu.Lock()
	defer k.deriveMu.Unlock()
	if k.adjReady.Load() {
		return
	}
	n := k.dict.Len()
	adjOff := make([]uint32, n+1)
	for p := range k.preds {
		ix := &k.preds[p]
		for i, s := range ix.psoKey {
			adjOff[s] += ix.psoOff[i+1] - ix.psoOff[i]
		}
	}
	for i := 1; i <= n; i++ {
		adjOff[i] += adjOff[i-1]
	}
	arena := make([]PO, k.nFacts)
	cur := make([]uint32, n)
	copy(cur, adjOff[:n])
	for p := range k.preds {
		ix := &k.preds[p]
		for i, s := range ix.psoKey {
			for _, o := range ix.psoVal[ix.psoOff[i]:ix.psoOff[i+1]] {
				pos := cur[s-1]
				cur[s-1]++
				arena[pos] = PO{P: PredID(p + 1), O: EntID(o)}
			}
		}
	}
	k.adjOff = adjOff
	k.adjArena = arena
	k.adjReady.Store(true)
}
