package kb

// fcTerms adapts a front-coded term set (internal/hdt) to the rdf.LazyTerms
// interface backing a lazy dictionary. The set's entries are serialized terms
// in ascending term order, typically aliasing an mmap'd snapshot section, so
// no per-entity structure exists in the heap: Decode walks one 16-entry block
// and Lookup binary-searches block heads.
//
// Decode errors surface as panics rather than error returns: the bytes sit
// behind the snapshot container's CRC-64, so a malformed entry means a writer
// bug (or memory corruption), not bad user input — the same contract as
// hdt.CompareSerializedTerm.

import (
	"fmt"

	"github.com/remi-kb/remi/internal/hdt"
	"github.com/remi-kb/remi/internal/rdf"
)

type fcTerms struct {
	set *hdt.FCSet
}

func (f *fcTerms) Len() int { return f.set.Len() }

func (f *fcTerms) TermAtRank(rank int) rdf.Term {
	t, err := f.set.TermAt(rank)
	if err != nil {
		panic(fmt.Sprintf("kb: corrupt front-coded term block: %v", err))
	}
	return t
}

func (f *fcTerms) RankOf(t rdf.Term) (int, bool) {
	i, found, err := f.set.Search(func(serialized []byte) int {
		return hdt.CompareSerializedTerm(serialized, t)
	})
	if err != nil {
		panic(fmt.Sprintf("kb: corrupt front-coded term block: %v", err))
	}
	return i, found
}

func (f *fcTerms) EachTerm(fn func(rank int, t rdf.Term) bool) {
	err := f.set.Each(func(i int, serialized []byte) bool {
		t, derr := hdt.DeserializeTerm(serialized)
		if derr != nil {
			panic(fmt.Sprintf("kb: corrupt front-coded term block: %v", derr))
		}
		return fn(i, t)
	})
	if err != nil {
		panic(fmt.Sprintf("kb: corrupt front-coded term block: %v", err))
	}
}
