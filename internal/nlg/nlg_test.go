package nlg

import (
	"strings"
	"testing"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

func setup(t testing.TB) (*kb.KB, *Verbalizer) {
	t.Helper()
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0.10
	k, err := d.BuildKB(opts)
	if err != nil {
		t.Fatal(err)
	}
	return k, New(k)
}

func pid(t testing.TB, k *kb.KB, name string) kb.PredID {
	t.Helper()
	p, ok := k.PredicateID("http://tiny.demo/ontology/" + name)
	if !ok {
		t.Fatalf("missing predicate %s", name)
	}
	return p
}

func eid(t testing.TB, k *kb.KB, name string) kb.EntID {
	t.Helper()
	e, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + name))
	if !ok {
		t.Fatalf("missing entity %s", name)
	}
	return e
}

func TestSplitCamel(t *testing.T) {
	cases := map[string]string{
		"officialLanguage": "official language",
		"cityIn":           "city in",
		"capital":          "capital",
		"langFamily":       "lang family",
	}
	for in, want := range cases {
		if got := splitCamel(in); got != want {
			t.Errorf("splitCamel(%q) = %q want %q", in, got, want)
		}
	}
}

func TestAtomVerbalization(t *testing.T) {
	k, v := setup(t)
	g := expr.NewAtom1(pid(t, k, "cityIn"), eid(t, k, "France"))
	got := v.Subgraph(g)
	if got != "the city in of x is France" {
		t.Fatalf("got %q", got)
	}
}

func TestInverseVerbalization(t *testing.T) {
	k, v := setup(t)
	inv, ok := k.PredicateID("http://tiny.demo/ontology/capital" + kb.InverseMarker)
	if !ok {
		t.Skip("no inverse capital in this build")
	}
	g := expr.NewAtom1(inv, eid(t, k, "France"))
	got := v.Subgraph(g)
	if got != "x is the capital of France" {
		t.Fatalf("got %q", got)
	}
}

func TestPathVerbalization(t *testing.T) {
	k, v := setup(t)
	g := expr.NewPath(pid(t, k, "mayor"), pid(t, k, "party"), eid(t, k, "Socialist"))
	got := v.Subgraph(g)
	if !strings.Contains(got, "mayor of x") || !strings.Contains(got, "party Socialist") {
		t.Fatalf("got %q", got)
	}
}

func TestClosedVerbalization(t *testing.T) {
	k, v := setup(t)
	g := expr.NewClosed2(pid(t, k, "cityIn"), pid(t, k, "belongedTo"))
	got := v.Subgraph(g)
	if !strings.Contains(got, "is also its") {
		t.Fatalf("got %q", got)
	}
}

func TestExpressionVerbalization(t *testing.T) {
	k, v := setup(t)
	e := expr.Expression{
		expr.NewAtom1(pid(t, k, "in"), eid(t, k, "SouthAmerica")),
		expr.NewPath(pid(t, k, "officialLanguage"), pid(t, k, "langFamily"), eid(t, k, "Germanic")),
	}
	got := v.Expression(e)
	if !strings.HasPrefix(got, "x is the entity such that") {
		t.Fatalf("got %q", got)
	}
	if !strings.Contains(got, ", and ") {
		t.Fatalf("missing conjunction: %q", got)
	}
	if v.Expression(nil) != "anything" {
		t.Fatal("empty expression verbalization")
	}
}

func TestEntityNameUsesLabel(t *testing.T) {
	k, v := setup(t)
	if v.EntityName(eid(t, k, "Paris")) != "Paris" {
		t.Fatal("label not used")
	}
}

func TestPathStarVerbalization(t *testing.T) {
	k, v := setup(t)
	g := expr.NewPathStar(
		pid(t, k, "cityIn"),
		pid(t, k, "capital"), eid(t, k, "Paris"),
		pid(t, k, "officialLanguage"), eid(t, k, "French"),
	)
	got := v.Subgraph(g)
	if !strings.Contains(got, " and ") {
		t.Fatalf("got %q", got)
	}
}
