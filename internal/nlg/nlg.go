// Package nlg verbalizes referring expressions into English, the manual
// step of the paper's user studies ("we manually translated the subgraph
// expressions to natural language statements in the shortest possible way
// by using the textual descriptions of the concepts"). Predicates are
// verbalized by splitting their local camel-case names; entities use their
// rdfs:label when available.
package nlg

import (
	"strings"
	"unicode"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
)

// Verbalizer renders expressions against one KB.
type Verbalizer struct {
	K *kb.KB
}

// New returns a verbalizer for k.
func New(k *kb.KB) *Verbalizer { return &Verbalizer{K: k} }

// PredWords converts a predicate id to space-separated lowercase words,
// stripping namespaces and splitting camel case ("officialLanguage" →
// "official language"). Inverse predicates keep their marker handling in
// Subgraph.
func (v *Verbalizer) PredWords(p kb.PredID) (words string, inverse bool) {
	name := v.K.PredicateName(p)
	if strings.HasSuffix(name, kb.InverseMarker) {
		inverse = true
		name = strings.TrimSuffix(name, kb.InverseMarker)
	}
	if i := strings.LastIndexAny(name, "#/"); i >= 0 && i+1 < len(name) {
		name = name[i+1:]
	}
	return splitCamel(name), inverse
}

func splitCamel(s string) string {
	var b strings.Builder
	for i, r := range s {
		if unicode.IsUpper(r) && i > 0 {
			b.WriteByte(' ')
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

// EntityName returns the label (or local name) of an entity.
func (v *Verbalizer) EntityName(e kb.EntID) string { return v.K.Label(e) }

// Subgraph verbalizes one subgraph expression with x as the subject.
func (v *Verbalizer) Subgraph(g expr.Subgraph) string {
	switch g.Shape {
	case expr.Atom1:
		w, inv := v.PredWords(g.P0)
		if inv {
			return "x is the " + w + " of " + v.EntityName(g.I0)
		}
		return "the " + w + " of x is " + v.EntityName(g.I0)
	case expr.Path:
		w0, inv0 := v.PredWords(g.P0)
		w1, inv1 := v.PredWords(g.P1)
		head := "the " + w0 + " of x"
		if inv0 {
			head = "something x is the " + w0 + " of"
		}
		if inv1 {
			return head + " is the " + w1 + " of " + v.EntityName(g.I1)
		}
		return head + " has " + w1 + " " + v.EntityName(g.I1)
	case expr.PathStar:
		w0, inv0 := v.PredWords(g.P0)
		w1, _ := v.PredWords(g.P1)
		w2, _ := v.PredWords(g.P2)
		head := "the " + w0 + " of x"
		if inv0 {
			head = "something x is the " + w0 + " of"
		}
		return head + " has " + w1 + " " + v.EntityName(g.I1) +
			" and " + w2 + " " + v.EntityName(g.I2)
	case expr.Closed2:
		w0, _ := v.PredWords(g.P0)
		w1, _ := v.PredWords(g.P1)
		return "the " + w0 + " of x is also its " + w1
	case expr.Closed3:
		w0, _ := v.PredWords(g.P0)
		w1, _ := v.PredWords(g.P1)
		w2, _ := v.PredWords(g.P2)
		return "the " + w0 + " of x is also its " + w1 + " and its " + w2
	default:
		return g.Format(v.K)
	}
}

// Expression verbalizes a full referring expression as a sentence.
func (v *Verbalizer) Expression(e expr.Expression) string {
	if len(e) == 0 {
		return "anything"
	}
	parts := make([]string, len(e))
	for i, g := range e {
		parts[i] = v.Subgraph(g)
	}
	switch len(parts) {
	case 1:
		return "x is the entity such that " + parts[0]
	default:
		return "x is the entity such that " + strings.Join(parts[:len(parts)-1], ", ") +
			", and " + parts[len(parts)-1]
	}
}
