package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, s := MeanStd(xs)
	if m != 5 {
		t.Fatalf("mean = %f", m)
	}
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("std = %f", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases wrong")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R² = %f", fit.R2)
	}
	if got := fit.Eval(10); math.Abs(got-21) > 1e-12 {
		t.Fatalf("Eval(10) = %f", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 3*x-2+rng.NormFloat64()*0.1)
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.05 || fit.R2 < 0.99 {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestRankDescending(t *testing.T) {
	ranks := RankDescending([]float64{0.5, 2.0, 1.0})
	want := []int{3, 1, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v", ranks)
		}
	}
	// Ties break by index.
	ranks = RankDescending([]float64{1, 1, 1})
	for i, r := range ranks {
		if r != i+1 {
			t.Fatalf("tie ranks = %v", ranks)
		}
	}
}

func TestRankDescendingIsPermutation(t *testing.T) {
	f := func(ws []float64) bool {
		ranks := RankDescending(ws)
		seen := make(map[int]bool)
		for _, r := range ranks {
			if r < 1 || r > len(ws) || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	b := []int{3, 2, 9, 8, 7}
	if got := PrecisionAtK(a, b, 1); got != 0 {
		t.Fatalf("p@1 = %f", got)
	}
	if got := PrecisionAtK(a, b, 2); got != 0.5 {
		t.Fatalf("p@2 = %f", got)
	}
	if got := PrecisionAtK(a, b, 3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("p@3 = %f", got)
	}
	if PrecisionAtK(a, b, 0) != 0 {
		t.Fatal("p@0 should be 0")
	}
}

func TestAveragePrecisionSingle(t *testing.T) {
	r := []string{"b", "a", "c"}
	if got := AveragePrecisionSingle(r, "a"); got != 0.5 {
		t.Fatalf("AP = %f", got)
	}
	if got := AveragePrecisionSingle(r, "z"); got != 0 {
		t.Fatalf("AP(absent) = %f", got)
	}
	if got := AveragePrecisionSingle(r, "b"); got != 1 {
		t.Fatalf("AP(first) = %f", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median = %f", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}
