// Package stats provides the small statistical toolkit used by the
// reproduction: descriptive statistics, simple linear regression with R²
// (Equation 1 of the paper fits log-rank against log-frequency), and ranking
// helpers shared by the prominence and evaluation modules.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both the mean and the standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Linear is a fitted line y ≈ Slope*x + Intercept with its coefficient of
// determination R2.
type Linear struct {
	Slope, Intercept, R2 float64
	N                    int
}

// FitLinear performs ordinary least squares on the point set (xs, ys).
// It returns an error when fewer than two distinct x values are provided.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Linear{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² = 1 - SSres/SStot.
	meanY := sy / n
	ssTot, ssRes := 0.0, 0.0
	for i := range xs {
		fit := slope*xs[i] + intercept
		ssRes += (ys[i] - fit) * (ys[i] - fit)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Linear{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// Eval returns the fitted value at x.
func (l Linear) Eval(x float64) float64 { return l.Slope*x + l.Intercept }

// RankDescending returns, for each index i of weights, its 1-based rank when
// sorting by descending weight. Ties are broken by index for determinism
// (lower index ranks first), matching a stable sort of the input.
func RankDescending(weights []float64) []int {
	idx := make([]int, len(weights))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return weights[idx[a]] > weights[idx[b]] })
	ranks := make([]int, len(weights))
	for pos, i := range idx {
		ranks[i] = pos + 1
	}
	return ranks
}

// PrecisionAtK computes |topK(a) ∩ topK(b)| / k where a and b are rankings
// given as ordered slices of item identifiers (best first).
func PrecisionAtK[T comparable](a, b []T, k int) float64 {
	if k <= 0 {
		return 0
	}
	ka, kb := k, k
	if ka > len(a) {
		ka = len(a)
	}
	if kb > len(b) {
		kb = len(b)
	}
	set := make(map[T]struct{}, ka)
	for _, x := range a[:ka] {
		set[x] = struct{}{}
	}
	inter := 0
	for _, x := range b[:kb] {
		if _, ok := set[x]; ok {
			inter++
		}
	}
	return float64(inter) / float64(k)
}

// AveragePrecisionSingle returns the average precision of a ranking when a
// single item is relevant: 1/position of the relevant item (0 if absent).
func AveragePrecisionSingle[T comparable](ranking []T, relevant T) float64 {
	for i, x := range ranking {
		if x == relevant {
			return 1.0 / float64(i+1)
		}
	}
	return 0
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted))) - 1)
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
