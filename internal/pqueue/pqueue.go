// Package pqueue provides a generic min-priority queue used by REMI to
// process subgraph expressions in ascending order of estimated Kolmogorov
// complexity (line 2 of Algorithm 1 in the paper).
package pqueue

import "container/heap"

// Queue is a min-heap keyed by a float64 priority. The zero value is an
// empty, usable queue. Queue is not safe for concurrent use; P-REMI guards
// its shared queue with a mutex at the call site.
type Queue[T any] struct {
	h innerHeap[T]
}

type item[T any] struct {
	value    T
	priority float64
	seq      uint64 // insertion order tiebreak for determinism
}

type innerHeap[T any] struct {
	items []item[T]
	seq   uint64
}

func (h innerHeap[T]) Len() int { return len(h.items) }
func (h innerHeap[T]) Less(i, j int) bool {
	if h.items[i].priority != h.items[j].priority {
		return h.items[i].priority < h.items[j].priority
	}
	return h.items[i].seq < h.items[j].seq
}
func (h innerHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *innerHeap[T]) Push(x any)   { h.items = append(h.items, x.(item[T])) }
func (h *innerHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Push inserts value with the given priority.
func (q *Queue[T]) Push(value T, priority float64) {
	q.h.seq++
	heap.Push(&q.h, item[T]{value: value, priority: priority, seq: q.h.seq})
}

// Pop removes and returns the minimum-priority value.
func (q *Queue[T]) Pop() (T, float64, bool) {
	if len(q.h.items) == 0 {
		var zero T
		return zero, 0, false
	}
	it := heap.Pop(&q.h).(item[T])
	return it.value, it.priority, true
}

// Peek returns the minimum-priority value without removing it.
func (q *Queue[T]) Peek() (T, float64, bool) {
	if len(q.h.items) == 0 {
		var zero T
		return zero, 0, false
	}
	return q.h.items[0].value, q.h.items[0].priority, true
}

// Len returns the number of queued values.
func (q *Queue[T]) Len() int { return len(q.h.items) }

// Drain pops every element in priority order.
func (q *Queue[T]) Drain() []T {
	out := make([]T, 0, q.Len())
	for {
		v, _, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
