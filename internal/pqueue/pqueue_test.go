package pqueue

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPopOrder(t *testing.T) {
	var q Queue[string]
	q.Push("c", 3)
	q.Push("a", 1)
	q.Push("b", 2)
	for _, want := range []string{"a", "b", "c"} {
		v, _, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("got %q want %q", v, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestTiesPreserveInsertionOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i, 1.0)
	}
	for i := 0; i < 10; i++ {
		v, _, _ := q.Pop()
		if v != i {
			t.Fatalf("tie order broken: got %d want %d", v, i)
		}
	}
}

func TestPeek(t *testing.T) {
	var q Queue[string]
	if _, _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
	q.Push("x", 5)
	q.Push("y", 1)
	v, p, ok := q.Peek()
	if !ok || v != "y" || p != 1 {
		t.Fatalf("peek = %q %f", v, p)
	}
	if q.Len() != 2 {
		t.Fatal("peek consumed an element")
	}
}

func TestDrain(t *testing.T) {
	var q Queue[int]
	rng := rand.New(rand.NewSource(1))
	var want []float64
	for i := 0; i < 100; i++ {
		p := rng.Float64()
		q.Push(i, p)
		want = append(want, p)
	}
	sort.Float64s(want)
	got := q.Drain()
	if len(got) != 100 || q.Len() != 0 {
		t.Fatalf("drain returned %d items, %d left", len(got), q.Len())
	}
}

func TestHeapProperty(t *testing.T) {
	f := func(priorities []float64) bool {
		var q Queue[int]
		for i, p := range priorities {
			q.Push(i, p)
		}
		last := math.Inf(-1)
		for {
			_, p, ok := q.Pop()
			if !ok {
				return true
			}
			if p < last {
				return false
			}
			last = p
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
