package summarize

import (
	"testing"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

type env struct {
	k    *kb.KB
	prom *prominence.Store
	est  *complexity.Estimator
	pop  map[string]float64
}

func setup(t testing.TB) env {
	t.Helper()
	d := datagen.DBpediaLike(datagen.Config{Seed: 5, Scale: 0.06})
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	return env{k: k, prom: prom, est: complexity.New(k, prom, complexity.Compressed), pop: d.TruePop}
}

func (e env) person1(t testing.TB) kb.EntID {
	t.Helper()
	id, ok := e.k.EntityID(rdf.NewIRI("http://dbpedia.demo/resource/Person_1"))
	if !ok {
		t.Fatal("Person_1 missing")
	}
	return id
}

func checkSummary(t *testing.T, e env, s Summary, size int) {
	t.Helper()
	if len(s) == 0 || len(s) > size {
		t.Fatalf("summary size %d (max %d)", len(s), size)
	}
	for _, pair := range s {
		if pair.P == e.k.TypePredicate() || pair.P == e.k.LabelPredicate() {
			t.Fatal("summary includes type/label")
		}
		if e.k.IsInverse(pair.P) {
			t.Fatal("summary includes an inverse predicate")
		}
		if e.k.IsBlank(pair.O) {
			t.Fatal("summary includes a blank node")
		}
		if e.k.ObjFreq(pair.P, pair.O) == 0 {
			t.Fatal("summary pair is not a fact")
		}
	}
}

func TestFACESLike(t *testing.T) {
	e := setup(t)
	p1 := e.person1(t)
	s := FACESLike(e.k, e.prom, p1, 5)
	checkSummary(t, e, s, 5)
	// Diversity: the first picks should not repeat predicates while other
	// groups remain.
	seen := map[kb.PredID]bool{}
	for i, pair := range s {
		if seen[pair.P] && i < 3 {
			t.Fatalf("FACES repeated predicate %d at position %d", pair.P, i)
		}
		seen[pair.P] = true
	}
}

func TestLinkSUMLike(t *testing.T) {
	e := setup(t)
	p1 := e.person1(t)
	pr := prominence.PageRank(e.k, 0.85, 20, 1e-9)
	s := LinkSUMLike(e.k, pr, p1, 5)
	checkSummary(t, e, s, 5)
	// Uniqueness: no object repeats.
	seen := map[kb.EntID]bool{}
	for _, pair := range s {
		if seen[pair.O] {
			t.Fatal("LinkSUM repeated an object")
		}
		seen[pair.O] = true
	}
	// Ordering: descending PageRank.
	for i := 1; i < len(s); i++ {
		if pr[s[i].O-1] > pr[s[i-1].O-1] {
			t.Fatal("LinkSUM not sorted by PageRank")
		}
	}
}

func TestREMITop(t *testing.T) {
	e := setup(t)
	p1 := e.person1(t)
	s := REMITop(e.k, e.est, p1, 5)
	checkSummary(t, e, s, 5)
	// Ordering: ascending Ĉ.
	var last float64 = -1
	for _, pair := range s {
		c := e.est.Subgraph(exprAtom(pair))
		if c < last {
			t.Fatal("REMITop not sorted by Ĉ")
		}
		last = c
	}
}

func TestSimulateExpertsShape(t *testing.T) {
	e := setup(t)
	p1 := e.person1(t)
	gold := SimulateExperts(e.k, e.pop, p1, 5, 7, 99)
	if len(gold.PerExpert) != 7 {
		t.Fatalf("%d experts", len(gold.PerExpert))
	}
	for _, ref := range gold.PerExpert {
		if len(ref) == 0 || len(ref) > 5 {
			t.Fatalf("reference size %d", len(ref))
		}
	}
	// Determinism.
	gold2 := SimulateExperts(e.k, e.pop, p1, 5, 7, 99)
	for i := range gold.PerExpert {
		for j := range gold.PerExpert[i] {
			if gold.PerExpert[i][j] != gold2.PerExpert[i][j] {
				t.Fatal("gold standard not deterministic")
			}
		}
	}
}

func TestQualityMetrics(t *testing.T) {
	gold := Gold{PerExpert: []Summary{
		{{P: 1, O: 10}, {P: 2, O: 20}},
		{{P: 1, O: 10}, {P: 3, O: 30}},
	}}
	s := Summary{{P: 1, O: 10}, {P: 9, O: 20}}
	// PO overlap: expert1 shares (1,10) → 1; expert2 shares (1,10) → 1; avg 1.
	if got := QualityPO(s, gold); got != 1 {
		t.Fatalf("QualityPO = %f", got)
	}
	// O overlap: expert1 shares {10, 20} → 2; expert2 shares {10} → 1; avg 1.5.
	if got := QualityO(s, gold); got != 1.5 {
		t.Fatalf("QualityO = %f", got)
	}
	p, o, po := MergedPrecision(s, gold)
	// preds {1,2,3}: s has 1 (yes), 9 (no) → 0.5; objects {10,20,30}: 10,20 → 1.0;
	// pairs: (1,10) yes, (9,20) no → 0.5.
	if p != 0.5 || o != 1.0 || po != 0.5 {
		t.Fatalf("merged = %f %f %f", p, o, po)
	}
}

func TestQualityEmptyGold(t *testing.T) {
	if QualityPO(Summary{{P: 1, O: 1}}, Gold{}) != 0 || QualityO(nil, Gold{}) != 0 {
		t.Fatal("empty gold should score 0")
	}
	p, o, po := MergedPrecision(nil, Gold{})
	if p != 0 || o != 0 || po != 0 {
		t.Fatal("empty summary precision should be 0")
	}
}

func exprAtom(p Pair) expr.Subgraph {
	return expr.NewAtom1(p.P, p.O)
}
