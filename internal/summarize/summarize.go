// Package summarize implements the entity-summarization evaluation of
// Section 4.1.4: FACES-style and LinkSUM-style baseline summarizers, a
// simulated expert gold standard (substituting for the 7-expert FACES/
// LinkSUM benchmark, DESIGN.md substitution 4), the published quality
// metric (average overlap with the reference summaries at the object and
// predicate–object levels), and the merged-gold precision measures.
package summarize

import (
	"math/rand"
	"sort"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
)

// Pair is one predicate–object feature of an entity summary.
type Pair struct {
	P kb.PredID
	O kb.EntID
}

// Summary is an ordered list of predicate–object pairs describing an entity.
type Summary []Pair

// candidates returns the summarizable facts of e: direct facts excluding
// rdf:type, labels, inverse predicates and blank objects (matching the
// paper's compliance filtering).
func candidates(k *kb.KB, e kb.EntID) []Pair {
	var out []Pair
	for _, po := range k.AdjacencyOf(e) {
		if po.P == k.TypePredicate() || po.P == k.LabelPredicate() || k.IsInverse(po.P) {
			continue
		}
		if k.IsBlank(po.O) {
			continue
		}
		out = append(out, Pair{po.P, po.O})
	}
	return out
}

// FACESLike summarizes e with diversity-aware selection: facts are grouped
// by predicate (a proxy for FACES' incremental hierarchical conceptual
// clustering of semantically close features) and the summary round-robins
// across groups picking the most prominent object from each.
func FACESLike(k *kb.KB, prom *prominence.Store, e kb.EntID, size int) Summary {
	cands := candidates(k, e)
	groups := make(map[kb.PredID][]Pair)
	var order []kb.PredID
	for _, c := range cands {
		if _, ok := groups[c.P]; !ok {
			order = append(order, c.P)
		}
		groups[c.P] = append(groups[c.P], c)
	}
	// Within each group, most prominent object first.
	for _, p := range order {
		g := groups[p]
		sort.SliceStable(g, func(i, j int) bool {
			return prom.EntityScore(g[i].O) > prom.EntityScore(g[j].O)
		})
	}
	// Groups with more prominent best members come first in the round-robin.
	sort.SliceStable(order, func(i, j int) bool {
		return prom.EntityScore(groups[order[i]][0].O) > prom.EntityScore(groups[order[j]][0].O)
	})
	var out Summary
	for round := 0; len(out) < size; round++ {
		advanced := false
		for _, p := range order {
			if round < len(groups[p]) {
				out = append(out, groups[p][round])
				advanced = true
				if len(out) == size {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

// LinkSUMLike summarizes e by link analysis: objects are scored with
// PageRank (uniqueness enforced by keeping a single fact per object), and
// the top-scoring pairs are reported without a diversity constraint.
func LinkSUMLike(k *kb.KB, pagerank []float64, e kb.EntID, size int) Summary {
	cands := candidates(k, e)
	seen := make(map[kb.EntID]bool)
	var uniq []Pair
	for _, c := range cands {
		if seen[c.O] {
			continue
		}
		seen[c.O] = true
		uniq = append(uniq, c)
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		return pagerank[uniq[i].O-1] > pagerank[uniq[j].O-1]
	})
	if len(uniq) > size {
		uniq = uniq[:size]
	}
	return Summary(uniq)
}

// REMITop summarizes e with REMI's machinery as in Section 4.1.4: the top
// `size` subgraph expressions in the standard language bias (single bound
// atoms), ranked by Ĉ, excluding rdf:type and inverse predicates.
func REMITop(k *kb.KB, est *complexity.Estimator, e kb.EntID, size int) Summary {
	opts := core.EnumerateOptions{
		Language: core.StandardLanguage,
		SkipPredicate: func(p kb.PredID) bool {
			return p == k.TypePredicate() || p == k.LabelPredicate() || k.IsInverse(p)
		},
	}
	subs := core.SubgraphsOf(k, e, opts)
	type scored struct {
		pair Pair
		cost float64
	}
	var sc []scored
	for _, g := range subs {
		sc = append(sc, scored{Pair{g.P0, g.I0}, est.Subgraph(g)})
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].cost < sc[j].cost })
	var out Summary
	for i := 0; i < len(sc) && i < size; i++ {
		out = append(out, sc[i].pair)
	}
	return out
}

// Gold is a set of reference summaries, one per simulated expert.
type Gold struct {
	PerExpert []Summary
}

// SimulateExperts builds a gold standard for e: each expert greedily picks
// `size` pairs maximizing a noisy mix of prominence (the latent ground
// truth), uniqueness (rarity of the object under its predicate) and
// diversity (predicate variety), the selection criteria reported for the
// FACES/LinkSUM benchmark.
func SimulateExperts(k *kb.KB, truePop map[string]float64, e kb.EntID, size, nExperts int, seed int64) Gold {
	cands := candidates(k, e)
	rng := rand.New(rand.NewSource(seed))
	var gold Gold
	maxPop := 0.0
	for _, v := range truePop {
		if v > maxPop {
			maxPop = v
		}
	}
	if maxPop == 0 {
		maxPop = 1
	}
	for x := 0; x < nExperts; x++ {
		wProm := 0.8 + 0.4*rng.Float64()
		wUniq := 0.4 + 0.4*rng.Float64()
		wDiv := 0.6 + 0.6*rng.Float64()
		noise := make([]float64, len(cands))
		for i := range noise {
			noise[i] = rng.NormFloat64() * 0.15
		}
		used := make([]bool, len(cands))
		predCount := make(map[kb.PredID]int)
		var sum Summary
		for len(sum) < size {
			best, bestScore := -1, -1e18
			for i, c := range cands {
				if used[i] {
					continue
				}
				pop := truePop[k.Term(c.O).Value] / maxPop
				uniq := 1.0 / float64(1+k.ObjFreq(c.P, c.O))
				div := 1.0 / float64(1+predCount[c.P])
				score := wProm*pop + wUniq*uniq + wDiv*div + noise[i]
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			if best < 0 {
				break
			}
			used[best] = true
			predCount[cands[best].P]++
			sum = append(sum, cands[best])
		}
		gold.PerExpert = append(gold.PerExpert, sum)
	}
	return gold
}

// QualityPO is the benchmark's quality metric at the predicate–object
// level: the average overlap between s and each reference summary.
func QualityPO(s Summary, gold Gold) float64 {
	if len(gold.PerExpert) == 0 {
		return 0
	}
	in := make(map[Pair]bool, len(s))
	for _, p := range s {
		in[p] = true
	}
	total := 0.0
	for _, ref := range gold.PerExpert {
		n := 0
		for _, p := range ref {
			if in[p] {
				n++
			}
		}
		total += float64(n)
	}
	return total / float64(len(gold.PerExpert))
}

// QualityO is the quality metric at the object level.
func QualityO(s Summary, gold Gold) float64 {
	if len(gold.PerExpert) == 0 {
		return 0
	}
	in := make(map[kb.EntID]bool, len(s))
	for _, p := range s {
		in[p.O] = true
	}
	total := 0.0
	for _, ref := range gold.PerExpert {
		seen := make(map[kb.EntID]bool)
		n := 0
		for _, p := range ref {
			if in[p.O] && !seen[p.O] {
				seen[p.O] = true
				n++
			}
		}
		total += float64(n)
	}
	return total / float64(len(gold.PerExpert))
}

// MergedPrecision merges the per-expert references into one pool and
// returns the precision of s at the predicate (P), object (O) and
// predicate–object (PO) levels — the Section 4.1.4 in-text measure (the
// paper reports 0.53 / 0.62 / 0.31 for Ĉfr).
func MergedPrecision(s Summary, gold Gold) (p, o, po float64) {
	if len(s) == 0 {
		return 0, 0, 0
	}
	preds := make(map[kb.PredID]bool)
	objs := make(map[kb.EntID]bool)
	pairs := make(map[Pair]bool)
	for _, ref := range gold.PerExpert {
		for _, pr := range ref {
			preds[pr.P] = true
			objs[pr.O] = true
			pairs[pr] = true
		}
	}
	var np, no, npo int
	for _, pr := range s {
		if preds[pr.P] {
			np++
		}
		if objs[pr.O] {
			no++
		}
		if pairs[pr] {
			npo++
		}
	}
	n := float64(len(s))
	return float64(np) / n, float64(no) / n, float64(npo) / n
}
