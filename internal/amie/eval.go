package amie

import (
	"github.com/remi-kb/remi/internal/kb"
)

// evaluator answers conjunctive queries over the KB by backtracking joins,
// the workhorse behind support and confidence computation.
type evaluator struct {
	k *kb.KB
}

// matchesWithX reports whether the body has at least one match with the
// head variable bound to t.
func (ev evaluator) matchesWithX(r Rule, t kb.EntID) bool {
	binding := make([]kb.EntID, r.NumVars) // 0 = unbound
	binding[0] = t
	return ev.backtrack(r.Body, binding, nil)
}

// xBindings returns the distinct bindings of the head variable x that
// satisfy the body. limit > 0 stops early once more than limit bindings are
// found (enough to reject confidence thresholds cheaply); the returned
// slice is sorted.
func (ev evaluator) xBindings(r Rule, limit int, abort func() bool) []kb.EntID {
	seen := make(map[kb.EntID]struct{})
	binding := make([]kb.EntID, r.NumVars)
	// Enumerate candidate x values from the most selective atom mentioning x.
	cands := ev.xCandidates(r)
	for _, x := range cands {
		if abort != nil && abort() {
			break
		}
		if _, dup := seen[x]; dup {
			continue
		}
		binding[0] = x
		for i := 1; i < len(binding); i++ {
			binding[i] = 0
		}
		if ev.backtrack(r.Body, binding, abort) {
			seen[x] = struct{}{}
			if limit > 0 && len(seen) > limit {
				break
			}
		}
	}
	out := make([]kb.EntID, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sortIDs(out)
	return out
}

// varBindings returns up to limit distinct values variable v takes across
// the matches of the body with x bound to t.
func (ev evaluator) varBindings(r Rule, v VarID, t kb.EntID, limit int) []kb.EntID {
	if v == 0 {
		return []kb.EntID{t}
	}
	binding := make([]kb.EntID, r.NumVars)
	binding[0] = t
	seen := make(map[kb.EntID]struct{})
	ev.enumerate(r.Body, binding, func() bool {
		if val := binding[v]; val != 0 {
			seen[val] = struct{}{}
		}
		return limit <= 0 || len(seen) < limit
	})
	out := make([]kb.EntID, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sortIDs(out)
	return out
}

// enumerate visits every full match of the atoms, invoking emit at each;
// emit returning false stops the enumeration (enumerate then returns
// false as well, propagating the stop upward).
func (ev evaluator) enumerate(atoms []Atom, binding []kb.EntID, emit func() bool) bool {
	if len(atoms) == 0 {
		return emit()
	}
	bestIdx, bestCands := -1, []kb.EntID(nil)
	bestFull := -1
	for i, a := range atoms {
		s, sBound := resolve(a.S, binding)
		o, oBound := resolve(a.O, binding)
		switch {
		case sBound && oBound:
			if !ev.k.HasFact(a.P, s, o) {
				return true // dead branch; enumeration itself continues
			}
			bestFull = i
		case sBound:
			c := ev.k.Objects(a.P, s)
			if bestIdx < 0 || len(c) < len(bestCands) {
				bestIdx, bestCands = i, c
			}
		case oBound:
			c := ev.k.Subjects(a.P, o)
			if bestIdx < 0 || len(c) < len(bestCands) {
				bestIdx, bestCands = i, c
			}
		}
	}
	if bestFull >= 0 {
		return ev.enumerate(removeAtom(atoms, bestFull), binding, emit)
	}
	if bestIdx < 0 {
		a := atoms[0]
		rest := removeAtom(atoms, 0)
		for _, pr := range ev.k.Facts(a.P) {
			if undo, ok := bind(a, pr.S, pr.O, binding); ok {
				cont := ev.enumerate(rest, binding, emit)
				unbind(undo, binding)
				if !cont {
					return false
				}
			}
		}
		return true
	}
	a := atoms[bestIdx]
	rest := removeAtom(atoms, bestIdx)
	s, sBound := resolve(a.S, binding)
	o, _ := resolve(a.O, binding)
	for _, cand := range bestCands {
		var undo [2]VarID
		var ok bool
		if sBound {
			undo, ok = bind(a, s, cand, binding)
		} else {
			undo, ok = bind(a, cand, o, binding)
		}
		if ok {
			cont := ev.enumerate(rest, binding, emit)
			unbind(undo, binding)
			if !cont {
				return false
			}
		}
	}
	return true
}

func sortIDs(ids []kb.EntID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// xCandidates enumerates possible x values from the cheapest body atom that
// mentions x directly; when no atom mentions x with a constant companion,
// it falls back to the subjects/objects of an x-atom's predicate.
func (ev evaluator) xCandidates(r Rule) []kb.EntID {
	bestCost := int(^uint(0) >> 1)
	var best []kb.EntID
	record := func(c []kb.EntID) {
		if len(c) < bestCost {
			bestCost = len(c)
			best = c
		}
	}
	for _, a := range r.Body {
		switch {
		case a.S.IsVar && a.S.Var == 0 && !a.O.IsVar:
			record(ev.k.Subjects(a.P, a.O.Const))
		case a.O.IsVar && a.O.Var == 0 && !a.S.IsVar:
			record(ev.k.Objects(a.P, a.S.Const))
		}
	}
	if best != nil {
		return best
	}
	// Fall back to all subjects (or objects) of a predicate mentioning x.
	for _, a := range r.Body {
		if a.S.IsVar && a.S.Var == 0 {
			return ev.distinctSubjects(a.P)
		}
		if a.O.IsVar && a.O.Var == 0 {
			return ev.distinctObjects(a.P)
		}
	}
	return nil
}

func (ev evaluator) distinctSubjects(p kb.PredID) []kb.EntID {
	var out []kb.EntID
	for _, pr := range ev.k.Facts(p) {
		if len(out) == 0 || out[len(out)-1] != pr.S {
			out = append(out, pr.S)
		}
	}
	return out
}

func (ev evaluator) distinctObjects(p kb.PredID) []kb.EntID {
	seen := make(map[kb.EntID]struct{})
	var out []kb.EntID
	for _, pr := range ev.k.Facts(p) {
		if _, dup := seen[pr.O]; !dup {
			seen[pr.O] = struct{}{}
			out = append(out, pr.O)
		}
	}
	sortIDs(out)
	return out
}

// backtrack extends the partial variable binding until every atom is
// satisfied, choosing the most-bound pending atom first.
func (ev evaluator) backtrack(atoms []Atom, binding []kb.EntID, abort func() bool) bool {
	if len(atoms) == 0 {
		return true
	}
	if abort != nil && abort() {
		return false
	}
	// Pick the atom with the fewest candidate extensions.
	bestIdx, bestCands := -1, []kb.EntID(nil)
	bestFull := -1
	for i, a := range atoms {
		s, sBound := resolve(a.S, binding)
		o, oBound := resolve(a.O, binding)
		switch {
		case sBound && oBound:
			// Fully bound: test immediately.
			if !ev.k.HasFact(a.P, s, o) {
				return false
			}
			bestFull = i
		case sBound:
			c := ev.k.Objects(a.P, s)
			if bestIdx < 0 || len(c) < len(bestCands) {
				bestIdx, bestCands = i, c
			}
		case oBound:
			c := ev.k.Subjects(a.P, o)
			if bestIdx < 0 || len(c) < len(bestCands) {
				bestIdx, bestCands = i, c
			}
		}
	}
	if bestFull >= 0 {
		rest := removeAtom(atoms, bestFull)
		return ev.backtrack(rest, binding, abort)
	}
	if bestIdx < 0 {
		// No atom touches a bound variable: pick the first and enumerate its
		// predicate facts (happens only for disconnected bodies, which the
		// refinement operators do not generate, but stay safe).
		a := atoms[0]
		rest := removeAtom(atoms, 0)
		for _, pr := range ev.k.Facts(a.P) {
			if undo, ok := bind(a, pr.S, pr.O, binding); ok {
				if ev.backtrack(rest, binding, abort) {
					unbind(undo, binding)
					return true
				}
				unbind(undo, binding)
			}
		}
		return false
	}
	a := atoms[bestIdx]
	rest := removeAtom(atoms, bestIdx)
	s, sBound := resolve(a.S, binding)
	o, _ := resolve(a.O, binding)
	for _, cand := range bestCands {
		var undo [2]VarID
		var ok bool
		if sBound {
			undo, ok = bind(a, s, cand, binding)
		} else {
			undo, ok = bind(a, cand, o, binding)
		}
		if ok {
			if ev.backtrack(rest, binding, abort) {
				unbind(undo, binding)
				return true
			}
			unbind(undo, binding)
		}
	}
	return false
}

// resolve returns the constant an argument stands for and whether it is
// bound (constants are always bound; variables when binding[v] != 0).
func resolve(a Arg, binding []kb.EntID) (kb.EntID, bool) {
	if !a.IsVar {
		return a.Const, true
	}
	v := binding[a.Var]
	return v, v != 0
}

// bind unifies atom a with the values (s, o), updating binding in place.
// It returns the variables it newly bound (for unbind) and whether the
// unification succeeded. On failure the binding is left unchanged.
func bind(a Atom, s, o kb.EntID, binding []kb.EntID) (undo [2]VarID, ok bool) {
	undo = [2]VarID{-1, -1}
	if a.S.IsVar {
		switch binding[a.S.Var] {
		case 0:
			binding[a.S.Var] = s
			undo[0] = a.S.Var
		case s:
		default:
			return undo, false
		}
	} else if a.S.Const != s {
		return undo, false
	}
	if a.O.IsVar {
		switch binding[a.O.Var] {
		case 0:
			binding[a.O.Var] = o
			undo[1] = a.O.Var
		case o:
		default:
			unbind(undo, binding)
			return [2]VarID{-1, -1}, false
		}
	} else if a.O.Const != o {
		unbind(undo, binding)
		return [2]VarID{-1, -1}, false
	}
	return undo, true
}

// unbind reverses a successful bind.
func unbind(undo [2]VarID, binding []kb.EntID) {
	if undo[0] >= 0 {
		binding[undo[0]] = 0
	}
	if undo[1] >= 0 {
		binding[undo[1]] = 0
	}
}

func removeAtom(atoms []Atom, i int) []Atom {
	out := make([]Atom, 0, len(atoms)-1)
	out = append(out, atoms[:i]...)
	return append(out, atoms[i+1:]...)
}
