package amie

import (
	"strings"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

func tinyKB(t testing.TB) (*kb.KB, *prominence.Store) {
	t.Helper()
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0 // AMIE explores raw facts; keep the KB lean
	k, err := d.BuildKB(opts)
	if err != nil {
		t.Fatal(err)
	}
	return k, prominence.Build(k, prominence.Fr)
}

func entID(t testing.TB, k *kb.KB, name string) kb.EntID {
	t.Helper()
	id, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + name))
	if !ok {
		t.Fatalf("missing entity %s", name)
	}
	return id
}

func TestRuleClosed(t *testing.T) {
	// ψ(x) ⇐ p(x, C): closed (x appears in head + body).
	r1 := Rule{Body: []Atom{{P: 1, S: V(0), O: C(5)}}, NumVars: 1}
	if !r1.Closed() {
		t.Fatal("instantiated single atom should be closed")
	}
	// ψ(x) ⇐ p(x, y): y appears once → not closed.
	r2 := Rule{Body: []Atom{{P: 1, S: V(0), O: V(1)}}, NumVars: 2}
	if r2.Closed() {
		t.Fatal("dangling variable should not be closed")
	}
	// ψ(x) ⇐ p(x,y) ∧ q(y, C): closed.
	r3 := Rule{Body: []Atom{{P: 1, S: V(0), O: V(1)}, {P: 2, S: V(1), O: C(9)}}, NumVars: 2}
	if !r3.Closed() {
		t.Fatal("path rule should be closed")
	}
}

func TestRuleKeyVariableRenaming(t *testing.T) {
	// p(x,y) ∧ q(y,C) with different variable numbering must share a key.
	a := Rule{Body: []Atom{{P: 1, S: V(0), O: V(1)}, {P: 2, S: V(1), O: C(9)}}, NumVars: 2}
	b := Rule{Body: []Atom{{P: 2, S: V(2), O: C(9)}, {P: 1, S: V(0), O: V(2)}}, NumVars: 3}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	// Different constants must differ.
	c := Rule{Body: []Atom{{P: 1, S: V(0), O: V(1)}, {P: 2, S: V(1), O: C(8)}}, NumVars: 2}
	if a.Key() == c.Key() {
		t.Fatal("keys collide for different constants")
	}
}

func TestEvaluatorMatches(t *testing.T) {
	k, _ := tinyKB(t)
	ev := evaluator{k: k}
	cityIn, _ := k.PredicateID("http://tiny.demo/ontology/cityIn")
	france := entID(t, k, "France")
	paris := entID(t, k, "Paris")
	berlin := entID(t, k, "Berlin")

	r := Rule{Body: []Atom{{P: cityIn, S: V(0), O: C(france)}}, NumVars: 1}
	if !ev.matchesWithX(r, paris) {
		t.Fatal("paris should match cityIn(x, France)")
	}
	if ev.matchesWithX(r, berlin) {
		t.Fatal("berlin should not match")
	}
	xs := ev.xBindings(r, 0, nil)
	if len(xs) != 4 { // Paris, Rennes, Nantes, Lyon, Marseille → 5? see tiny.go
		// TinyGeo has 5 French cities; assert exact count from the KB.
		want := len(k.Subjects(cityIn, france))
		if len(xs) != want {
			t.Fatalf("xBindings = %d want %d", len(xs), want)
		}
	}
}

func TestEvaluatorJoinRule(t *testing.T) {
	k, _ := tinyKB(t)
	ev := evaluator{k: k}
	mayor, _ := k.PredicateID("http://tiny.demo/ontology/mayor")
	party, _ := k.PredicateID("http://tiny.demo/ontology/party")
	socialist := entID(t, k, "Socialist")
	rennes := entID(t, k, "Rennes")
	lyon := entID(t, k, "Lyon")

	r := Rule{Body: []Atom{
		{P: mayor, S: V(0), O: V(1)},
		{P: party, S: V(1), O: C(socialist)},
	}, NumVars: 2}
	if !ev.matchesWithX(r, rennes) {
		t.Fatal("rennes has a socialist mayor")
	}
	if ev.matchesWithX(r, lyon) {
		t.Fatal("lyon's mayor is conservative")
	}
	xs := ev.xBindings(r, 0, nil)
	if len(xs) != 2 {
		t.Fatalf("xBindings = %v want {Rennes, Nantes}", xs)
	}
}

func TestVarBindings(t *testing.T) {
	k, _ := tinyKB(t)
	ev := evaluator{k: k}
	mayor, _ := k.PredicateID("http://tiny.demo/ontology/mayor")
	rennes := entID(t, k, "Rennes")
	r := Rule{Body: []Atom{{P: mayor, S: V(0), O: V(1)}}, NumVars: 2}
	vals := ev.varBindings(r, 1, rennes, 0)
	if len(vals) != 1 {
		t.Fatalf("varBindings = %v", vals)
	}
}

func TestMineSingleEntity(t *testing.T) {
	k, prom := tinyKB(t)
	m := NewMiner(k, prom, Config{MaxLen: 3, AllowConstants: true, Workers: 2, Timeout: 30 * time.Second})
	paris := entID(t, k, "Paris")
	res := m.Mine([]kb.EntID{paris})
	if len(res.Rules) == 0 {
		t.Fatal("AMIE found no RE for Paris")
	}
	if res.Best == nil {
		t.Fatal("no best rule")
	}
	// Every reported rule must bind exactly {paris}.
	ev := evaluator{k: k}
	for _, r := range res.Rules {
		xs := ev.xBindings(r, 0, nil)
		if len(xs) != 1 || xs[0] != paris {
			t.Fatalf("rule %s binds %v, not exactly paris", r.Format(k), xs)
		}
	}
}

func TestMinePairAgainstREMIExample(t *testing.T) {
	k, prom := tinyKB(t)
	m := NewMiner(k, prom, Config{MaxLen: 4, AllowConstants: true, Workers: 4, Timeout: 60 * time.Second})
	guyana := entID(t, k, "Guyana")
	suriname := entID(t, k, "Suriname")
	res := m.Mine([]kb.EntID{guyana, suriname})
	if len(res.Rules) == 0 {
		t.Fatal("AMIE found no RE for {Guyana, Suriname}")
	}
	// The language-family rule must be among the output.
	found := false
	for _, r := range res.Rules {
		s := r.Format(k)
		if strings.Contains(s, "langFamily") && strings.Contains(s, "Germanic") {
			found = true
			break
		}
	}
	if !found {
		t.Error("the Germanic-language rule is missing from AMIE's output")
	}
}

func TestMineRespectsTimeout(t *testing.T) {
	k, prom := tinyKB(t)
	m := NewMiner(k, prom, Config{MaxLen: 4, AllowConstants: true, Timeout: time.Nanosecond})
	paris := entID(t, k, "Paris")
	res := m.Mine([]kb.EntID{paris})
	if !res.TimedOut {
		t.Fatal("nanosecond timeout not reported")
	}
}

func TestMineEmptyTargets(t *testing.T) {
	k, prom := tinyKB(t)
	m := NewMiner(k, prom, DefaultConfig())
	if res := m.Mine(nil); len(res.Rules) != 0 {
		t.Fatal("rules for empty target set")
	}
}

func TestRuleBits(t *testing.T) {
	k, prom := tinyKB(t)
	cityIn, _ := k.PredicateID("http://tiny.demo/ontology/cityIn")
	france := entID(t, k, "France")
	short := Rule{Body: []Atom{{P: cityIn, S: V(0), O: C(france)}}, NumVars: 1}
	long := Rule{Body: []Atom{
		{P: cityIn, S: V(0), O: C(france)},
		{P: cityIn, S: V(1), O: C(france)},
	}, NumVars: 2}
	if RuleBits(k, prom, short) >= RuleBits(k, prom, long) {
		t.Fatal("longer rule should cost more bits")
	}
	if RuleBits(k, nil, short) != 1 {
		t.Fatal("nil prominence should degrade to atom count")
	}
}

func TestRefineOperators(t *testing.T) {
	k, prom := tinyKB(t)
	m := NewMiner(k, prom, Config{MaxLen: 4, AllowConstants: true})
	guyana := entID(t, k, "Guyana")
	suriname := entID(t, k, "Suriname")
	tgt := []kb.EntID{guyana, suriname}
	ev := evaluator{k: k}

	// Refine the open rule ψ(x) ⇐ officialLanguage(x, y).
	off, _ := k.PredicateID("http://tiny.demo/ontology/officialLanguage")
	r := Rule{Body: []Atom{{P: off, S: V(0), O: V(1)}}, NumVars: 2}
	children := m.refine(r, tgt, ev, time.Time{})
	if len(children) == 0 {
		t.Fatal("no refinements produced")
	}
	var dangling, closing, instantiated int
	for _, c := range children {
		last := c.Body[len(c.Body)-1]
		switch {
		case !last.S.IsVar || !last.O.IsVar:
			instantiated++
		case c.NumVars > r.NumVars:
			dangling++
		default:
			closing++
		}
	}
	if dangling == 0 || closing == 0 || instantiated == 0 {
		t.Fatalf("operator mix: %d dangling, %d closing, %d instantiated",
			dangling, closing, instantiated)
	}
	// The langFamily instantiation must be among the children: the Germanic
	// family is reachable from both targets through y.
	fam, _ := k.PredicateID("http://tiny.demo/ontology/langFamily")
	germanic := entID(t, k, "Germanic")
	found := false
	for _, c := range children {
		last := c.Body[len(c.Body)-1]
		if last.P == fam && !last.O.IsVar && last.O.Const == germanic {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("langFamily(y, Germanic) instantiation missing")
	}
}

func TestMineParallelMatchesSequential(t *testing.T) {
	k, prom := tinyKB(t)
	paris := entID(t, k, "Paris")
	seq := NewMiner(k, prom, Config{MaxLen: 3, AllowConstants: true, Workers: 1, Timeout: time.Minute})
	par := NewMiner(k, prom, Config{MaxLen: 3, AllowConstants: true, Workers: 8, Timeout: time.Minute})
	rs := seq.Mine([]kb.EntID{paris})
	rp := par.Mine([]kb.EntID{paris})
	if len(rs.Rules) != len(rp.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(rs.Rules), len(rp.Rules))
	}
	keys := map[string]bool{}
	for _, r := range rs.Rules {
		keys[r.Key()] = true
	}
	for _, r := range rp.Rules {
		if !keys[r.Key()] {
			t.Fatalf("parallel found extra rule %s", r.Format(k))
		}
	}
}
