// Package amie implements the AMIE+ baseline of the paper's runtime
// evaluation (Section 4.2.1): a breadth-first Horn-rule miner in the style
// of Galárraga et al. (VLDBJ 2015). RE mining for a target set T is encoded
// as mining rules ψ(x, True) ⇐ body over a surrogate predicate ψ with facts
// ψ(t, True) for all t ∈ T; thresholds support = |T| and confidence = 1.0
// force the body to match exactly T, so each surviving body is a referring
// expression.
//
// The implementation reproduces the structural traits that drive AMIE's
// runtime behaviour: breadth-first refinement with dangling, closing and
// instantiation operators, closed-rule output, monotone support pruning,
// parallel refinement — and the well-known sensitivity to constants in
// atoms that the paper measures ("AMIE+ is optimized for rules without
// constant arguments, thus its performance is heavily affected when bound
// variables are allowed in atoms").
package amie

import (
	"fmt"
	"sort"
	"strings"

	"github.com/remi-kb/remi/internal/kb"
)

// VarID names a rule variable; 0 is the head variable x.
type VarID int8

// Arg is an atom argument: a variable or an entity constant.
type Arg struct {
	IsVar bool
	Var   VarID
	Const kb.EntID
}

// V returns a variable argument.
func V(v VarID) Arg { return Arg{IsVar: true, Var: v} }

// C returns a constant argument.
func C(c kb.EntID) Arg { return Arg{Const: c} }

// Atom is one body atom p(S, O).
type Atom struct {
	P kb.PredID
	S Arg
	O Arg
}

// Rule is a Horn rule ψ(x, True) ⇐ Body. NumVars counts the distinct
// variables (head variable included).
type Rule struct {
	Body    []Atom
	NumVars int8
}

// Len returns the rule length counted as in AMIE: head atom plus body atoms.
func (r Rule) Len() int { return 1 + len(r.Body) }

// Closed reports whether every variable appears at least twice across the
// head and body (the head variable x appears once in the head, so it needs
// one body occurrence; every other variable needs two body occurrences).
func (r Rule) Closed() bool {
	occ := make([]int, r.NumVars)
	for _, a := range r.Body {
		if a.S.IsVar {
			occ[a.S.Var]++
		}
		if a.O.IsVar {
			occ[a.O.Var]++
		}
	}
	for v := 0; v < int(r.NumVars); v++ {
		need := 2
		if v == 0 {
			need = 1 // the head atom provides the other occurrence of x
		}
		if occ[v] < need {
			return false
		}
	}
	return true
}

// clone returns a deep copy with one extra atom of capacity.
func (r Rule) clone() Rule {
	body := make([]Atom, len(r.Body), len(r.Body)+1)
	copy(body, r.Body)
	return Rule{Body: body, NumVars: r.NumVars}
}

// withAtom returns r extended by a.
func (r Rule) withAtom(a Atom, numVars int8) Rule {
	nr := r.clone()
	nr.Body = append(nr.Body, a)
	if numVars > nr.NumVars {
		nr.NumVars = numVars
	}
	return nr
}

// Key returns a canonical string for duplicate detection: atoms are sorted
// and variables renamed in order of first appearance (the head variable
// keeps its identity).
func (r Rule) Key() string {
	atoms := make([]string, len(r.Body))
	rename := map[VarID]int{0: 0}
	// Sort body first on a rename-independent projection for stability.
	idx := make([]int, len(r.Body))
	for i := range idx {
		idx[i] = i
	}
	proj := func(a Atom) string {
		s := "v"
		if !a.S.IsVar {
			s = fmt.Sprintf("c%d", a.S.Const)
		} else if a.S.Var == 0 {
			s = "x"
		}
		o := "v"
		if !a.O.IsVar {
			o = fmt.Sprintf("c%d", a.O.Const)
		} else if a.O.Var == 0 {
			o = "x"
		}
		return fmt.Sprintf("%d(%s,%s)", a.P, s, o)
	}
	sort.Slice(idx, func(i, j int) bool { return proj(r.Body[idx[i]]) < proj(r.Body[idx[j]]) })
	argKey := func(a Arg) string {
		if !a.IsVar {
			return fmt.Sprintf("c%d", a.Const)
		}
		if a.Var == 0 {
			return "x"
		}
		n, ok := rename[a.Var]
		if !ok {
			n = len(rename)
			rename[a.Var] = n
		}
		return fmt.Sprintf("y%d", n)
	}
	for i, bi := range idx {
		a := r.Body[bi]
		atoms[i] = fmt.Sprintf("%d(%s,%s)", a.P, argKey(a.S), argKey(a.O))
	}
	return strings.Join(atoms, "&")
}

// Format renders the rule body with names resolved against k.
func (r Rule) Format(k *kb.KB) string {
	parts := make([]string, len(r.Body))
	argStr := func(a Arg) string {
		if !a.IsVar {
			return k.Term(a.Const).LocalName()
		}
		if a.Var == 0 {
			return "x"
		}
		return fmt.Sprintf("y%d", a.Var)
	}
	for i, a := range r.Body {
		name := k.PredicateName(a.P)
		if j := strings.LastIndexAny(name, "#/"); j >= 0 && j+1 < len(name) {
			name = name[j+1:]
		}
		parts[i] = fmt.Sprintf("%s(%s, %s)", name, argStr(a.S), argStr(a.O))
	}
	return strings.Join(parts, " ∧ ")
}
