package amie

import (
	"math"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
)

// RuleBits prices a rule body in bits with the same ranking philosophy as
// REMI's Ĉfr (Section 4.2.1: "AMIE+ does not define a complexity score for
// rules... thus we use Ĉfr to rank AMIE's output"): each atom pays the log
// rank of its predicate, object constants pay their conditional rank under
// the predicate (Eq. 1 compressed), and subject constants pay their global
// prominence rank. prom == nil degrades to atom count (longer = costlier).
func RuleBits(k *kb.KB, prom *prominence.Store, r Rule) float64 {
	if prom == nil {
		return float64(len(r.Body))
	}
	bits := 0.0
	for _, a := range r.Body {
		bits += math.Log2(float64(prom.PredicateRank(a.P)))
		if !a.O.IsVar {
			bits += prom.EstimatedLogRank(a.P, a.O.Const)
		}
		if !a.S.IsVar {
			bits += math.Log2(float64(prom.GlobalEntityRank(a.S.Const)))
		}
	}
	return bits
}
