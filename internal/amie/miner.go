package amie

import (
	"sort"
	"sync"
	"time"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
)

// Config tunes the miner.
type Config struct {
	// MaxLen is the maximum rule length counted as head + body atoms; the
	// paper sets l = 4 so bodies have up to 3 atoms.
	MaxLen int
	// AllowConstants enables the instantiation operator (bound objects).
	// REs require it; it is the main driver of AMIE's slowdown.
	AllowConstants bool
	// Workers parallelizes the refinement of each BFS level.
	Workers int
	// Timeout bounds the whole mining call; zero means no limit.
	Timeout time.Duration
	// MaxRules stops after this many REs are found (0 = unlimited).
	MaxRules int
}

// DefaultConfig mirrors the paper's AMIE+ setup for RE mining.
func DefaultConfig() Config {
	return Config{MaxLen: 4, AllowConstants: true, Workers: 1}
}

// Result reports the outcome of an AMIE+ RE-mining run.
type Result struct {
	// Rules are the rule bodies matching exactly the target set (support
	// = |T|, confidence = 1.0), i.e. referring expressions.
	Rules []Rule
	// Best is the least complex rule according to the ranking estimator
	// passed to Mine (nil when no rule was found).
	Best *Rule
	// BestBits is the Ĉfr-style cost of Best.
	BestBits float64
	// Explored counts refined candidate rules; TimedOut reports truncation.
	Explored int
	TimedOut bool
}

// Miner runs AMIE+ RE mining over one KB.
type Miner struct {
	K    *kb.KB
	Prom *prominence.Store // for ranking output by Ĉfr (Section 4.2.1)
	cfg  Config
}

// NewMiner builds an AMIE+ baseline miner. prom may be nil, in which case
// rules are ranked by length then lexicographic key.
func NewMiner(k *kb.KB, prom *prominence.Store, cfg Config) *Miner {
	if cfg.MaxLen <= 1 {
		cfg.MaxLen = DefaultConfig().MaxLen
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Miner{K: k, Prom: prom, cfg: cfg}
}

// Mine searches breadth-first for rule bodies matching exactly the targets.
func (m *Miner) Mine(targets []kb.EntID) *Result {
	res := &Result{}
	if len(targets) == 0 {
		return res
	}
	tset := make(map[kb.EntID]bool, len(targets))
	tgt := append([]kb.EntID(nil), targets...)
	sort.Slice(tgt, func(i, j int) bool { return tgt[i] < tgt[j] })
	for _, t := range tgt {
		tset[t] = true
	}

	var deadline time.Time
	if m.cfg.Timeout > 0 {
		deadline = time.Now().Add(m.cfg.Timeout)
	}
	ev := evaluator{k: m.K}

	// Level 0: single-atom bodies mentioning x.
	frontier := m.initialRules(tgt)
	seen := make(map[string]struct{})
	var mu sync.Mutex

	for len(frontier) > 0 {
		if m.expired(deadline) {
			res.TimedOut = true
			break
		}
		var accepted []Rule // rules passing the support threshold, to refine
		var quality []Rule  // rules that are REs

		process := func(r Rule) {
			if m.expired(deadline) {
				return
			}
			mu.Lock()
			key := r.Key()
			if _, dup := seen[key]; dup {
				mu.Unlock()
				return
			}
			seen[key] = struct{}{}
			res.Explored++
			mu.Unlock()

			// Support: every target must match (threshold = |T|, monotone).
			for _, t := range tgt {
				if !ev.matchesWithX(r, t) {
					return
				}
			}
			mu.Lock()
			accepted = append(accepted, r)
			mu.Unlock()

			// Confidence 1.0 requires bindings(x) == T exactly; closedness
			// is AMIE's output constraint.
			if !r.Closed() {
				return
			}
			abort := func() bool { return m.expired(deadline) }
			bindings := ev.xBindings(r, len(tgt), abort)
			if len(bindings) != len(tgt) {
				return
			}
			for i := range bindings {
				if bindings[i] != tgt[i] {
					return
				}
			}
			mu.Lock()
			quality = append(quality, r)
			mu.Unlock()
		}

		m.forEach(frontier, process)
		res.Rules = append(res.Rules, quality...)
		if m.cfg.MaxRules > 0 && len(res.Rules) >= m.cfg.MaxRules {
			break
		}

		// Refine the accepted frontier breadth-first.
		var next []Rule
		for _, r := range accepted {
			if r.Len() >= m.cfg.MaxLen {
				continue
			}
			next = append(next, m.refine(r, tgt, ev, deadline)...)
		}
		frontier = next
	}

	m.rankOutput(res)
	return res
}

func (m *Miner) expired(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// forEach fans rule processing out over the configured workers.
func (m *Miner) forEach(rules []Rule, fn func(Rule)) {
	if m.cfg.Workers <= 1 || len(rules) < 2 {
		for _, r := range rules {
			fn(r)
		}
		return
	}
	ch := make(chan Rule)
	var wg sync.WaitGroup
	for w := 0; w < m.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ch {
				fn(r)
			}
		}()
	}
	for _, r := range rules {
		ch <- r
	}
	close(ch)
	wg.Wait()
}

// initialRules seeds the BFS with single-atom bodies p(x, y), p(y, x),
// and — when constants are allowed — p(x, C) for constants C reachable from
// every target.
func (m *Miner) initialRules(tgt []kb.EntID) []Rule {
	var out []Rule
	for _, p := range m.K.Predicates() {
		out = append(out,
			Rule{Body: []Atom{{P: p, S: V(0), O: V(1)}}, NumVars: 2},
			Rule{Body: []Atom{{P: p, S: V(1), O: V(0)}}, NumVars: 2},
		)
		if m.cfg.AllowConstants {
			for _, c := range m.commonObjects(p, tgt) {
				out = append(out, Rule{Body: []Atom{{P: p, S: V(0), O: C(c)}}, NumVars: 1})
			}
			for _, c := range m.commonSubjects(p, tgt) {
				out = append(out, Rule{Body: []Atom{{P: p, S: C(c), O: V(0)}}, NumVars: 1})
			}
		}
	}
	return out
}

// commonObjects lists constants o with p(t,o) for every target t.
func (m *Miner) commonObjects(p kb.PredID, tgt []kb.EntID) []kb.EntID {
	cur := append([]kb.EntID(nil), m.K.Objects(p, tgt[0])...)
	for _, t := range tgt[1:] {
		cur = intersect(cur, m.K.Objects(p, t))
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// commonSubjects lists constants s with p(s,t) for every target t.
func (m *Miner) commonSubjects(p kb.PredID, tgt []kb.EntID) []kb.EntID {
	cur := append([]kb.EntID(nil), m.K.Subjects(p, tgt[0])...)
	for _, t := range tgt[1:] {
		cur = intersect(cur, m.K.Subjects(p, t))
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func intersect(a, b []kb.EntID) []kb.EntID {
	var out []kb.EntID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// refine applies AMIE's three operators to r: add a dangling atom (one
// fresh variable), add a closing atom (two existing variables), and add an
// instantiated atom (existing variable + constant).
func (m *Miner) refine(r Rule, tgt []kb.EntID, ev evaluator, deadline time.Time) []Rule {
	var out []Rule
	preds := m.K.Predicates()
	nv := r.NumVars

	// Dangling and closing atoms.
	for v := VarID(0); v < VarID(nv); v++ {
		for _, p := range preds {
			fresh := VarID(nv)
			out = append(out,
				r.withAtom(Atom{P: p, S: V(v), O: V(fresh)}, nv+1),
				r.withAtom(Atom{P: p, S: V(fresh), O: V(v)}, nv+1),
			)
			for w := VarID(0); w < VarID(nv); w++ {
				if w == v {
					continue
				}
				out = append(out, r.withAtom(Atom{P: p, S: V(v), O: V(w)}, nv))
			}
		}
		if m.expired(deadline) {
			return out
		}
	}

	// Instantiated atoms: bind a fresh object/subject to constants that keep
	// all targets matching (AMIE+'s instantiation of dangling atoms).
	if m.cfg.AllowConstants {
		for v := VarID(0); v < VarID(nv); v++ {
			for _, p := range preds {
				for _, c := range m.instantiationCandidates(r, v, p, false, tgt, ev, deadline) {
					out = append(out, r.withAtom(Atom{P: p, S: V(v), O: C(c)}, nv))
				}
				for _, c := range m.instantiationCandidates(r, v, p, true, tgt, ev, deadline) {
					out = append(out, r.withAtom(Atom{P: p, S: C(c), O: V(v)}, nv))
				}
				if m.expired(deadline) {
					return out
				}
			}
		}
	}
	return out
}

// instantiationCandidates proposes constants for p(v, C) (or p(C, v) when
// reversed) such that each target still has a body match. It enumerates, per
// target, the reachable values of v and the associated constants, keeping
// the intersection across targets.
func (m *Miner) instantiationCandidates(r Rule, v VarID, p kb.PredID, reversed bool,
	tgt []kb.EntID, ev evaluator, deadline time.Time) []kb.EntID {

	var common map[kb.EntID]bool
	for ti, t := range tgt {
		if m.expired(deadline) {
			return nil
		}
		cands := make(map[kb.EntID]bool)
		// Enumerate bindings of v compatible with x = t, then the constants
		// adjacent to each such binding via p.
		for _, val := range ev.varBindings(r, v, t, 64) {
			if reversed {
				for _, c := range m.K.Subjects(p, val) {
					cands[c] = true
				}
			} else {
				for _, c := range m.K.Objects(p, val) {
					cands[c] = true
				}
			}
		}
		if ti == 0 {
			common = cands
		} else {
			for c := range common {
				if !cands[c] {
					delete(common, c)
				}
			}
		}
		if len(common) == 0 {
			return nil
		}
	}
	out := make([]kb.EntID, 0, len(common))
	for c := range common {
		out = append(out, c)
	}
	sortIDs(out)
	return out
}

// rankOutput orders the found rules by the Ĉfr-style cost the paper uses to
// pick AMIE's best answer, and fills Best/BestBits.
func (m *Miner) rankOutput(res *Result) {
	if len(res.Rules) == 0 {
		return
	}
	cost := func(r Rule) float64 { return RuleBits(m.K, m.Prom, r) }
	sort.SliceStable(res.Rules, func(i, j int) bool {
		ci, cj := cost(res.Rules[i]), cost(res.Rules[j])
		if ci != cj {
			return ci < cj
		}
		return res.Rules[i].Key() < res.Rules[j].Key()
	})
	res.Best = &res.Rules[0]
	res.BestBits = cost(res.Rules[0])
}
