// Package sparql renders referring expressions as SPARQL SELECT queries,
// the "query generation in KBs" application the paper names for REMI's
// output (Sections 1 and 6). The generated query returns exactly the
// binding set of the expression; materialized inverse predicates are
// rewritten back to their base predicate with swapped argument positions,
// so queries run against the original (non-materialized) RDF data.
package sparql

import (
	"fmt"
	"strings"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// Query renders e as a SPARQL SELECT query over k's vocabulary. The root
// variable is ?x; each subgraph expression contributes its own existential
// variable ?yN when needed.
func Query(k *kb.KB, e expr.Expression) string {
	var b strings.Builder
	b.WriteString("SELECT DISTINCT ?x WHERE {\n")
	for i, g := range e {
		writeSubgraph(k, &b, g, i)
	}
	b.WriteString("}")
	return b.String()
}

// triplePattern writes one pattern, unfolding inverse predicates: for a
// materialized p⁻¹ the subject and object swap and the base predicate is
// used, keeping the query valid on the original data.
func triplePattern(k *kb.KB, b *strings.Builder, s string, p kb.PredID, o string) {
	if base := k.BaseOf(p); base != 0 {
		fmt.Fprintf(b, "  %s <%s> %s .\n", o, k.PredicateName(base), s)
		return
	}
	fmt.Fprintf(b, "  %s <%s> %s .\n", s, k.PredicateName(p), o)
}

// term renders an entity as a SPARQL term.
func term(k *kb.KB, e kb.EntID) string {
	t := k.Term(e)
	switch t.Kind {
	case rdf.IRI:
		return "<" + t.Value + ">"
	case rdf.Blank:
		return "_:" + t.Value
	default:
		return t.String() // quoted literal with datatype/lang kept verbatim
	}
}

func writeSubgraph(k *kb.KB, b *strings.Builder, g expr.Subgraph, idx int) {
	y := fmt.Sprintf("?y%d", idx)
	switch g.Shape {
	case expr.Atom1:
		triplePattern(k, b, "?x", g.P0, term(k, g.I0))
	case expr.Path:
		triplePattern(k, b, "?x", g.P0, y)
		triplePattern(k, b, y, g.P1, term(k, g.I1))
	case expr.PathStar:
		triplePattern(k, b, "?x", g.P0, y)
		triplePattern(k, b, y, g.P1, term(k, g.I1))
		triplePattern(k, b, y, g.P2, term(k, g.I2))
	case expr.Closed2:
		triplePattern(k, b, "?x", g.P0, y)
		triplePattern(k, b, "?x", g.P1, y)
	case expr.Closed3:
		triplePattern(k, b, "?x", g.P0, y)
		triplePattern(k, b, "?x", g.P1, y)
		triplePattern(k, b, "?x", g.P2, y)
	}
}

// Execute runs the generated query semantics directly against the KB (a
// convenience for tests and offline validation: full SPARQL engines are out
// of scope, but the expression evaluator computes the same answer set).
func Execute(k *kb.KB, e expr.Expression) []kb.EntID {
	ev := expr.NewEvaluator(k, 1024)
	return ev.ExpressionBindings(e).Slice()
}
