package sparql

import (
	"strings"
	"testing"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

func setup(t testing.TB) *kb.KB {
	t.Helper()
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0.10
	k, err := d.BuildKB(opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAtomQuery(t *testing.T) {
	k := setup(t)
	cityIn := k.MustPredicateID("http://tiny.demo/ontology/cityIn")
	france := k.MustEntityID("http://tiny.demo/resource/France")
	q := Query(k, expr.Expression{expr.NewAtom1(cityIn, france)})
	want := "SELECT DISTINCT ?x WHERE {\n  ?x <http://tiny.demo/ontology/cityIn> <http://tiny.demo/resource/France> .\n}"
	if q != want {
		t.Fatalf("got:\n%s\nwant:\n%s", q, want)
	}
}

func TestInverseFolding(t *testing.T) {
	k := setup(t)
	inv, ok := k.PredicateID("http://tiny.demo/ontology/capital" + kb.InverseMarker)
	if !ok {
		t.Fatal("no inverse capital predicate")
	}
	france := k.MustEntityID("http://tiny.demo/resource/France")
	q := Query(k, expr.Expression{expr.NewAtom1(inv, france)})
	if !strings.Contains(q, "<http://tiny.demo/resource/France> <http://tiny.demo/ontology/capital> ?x") {
		t.Fatalf("inverse not folded:\n%s", q)
	}
	if strings.Contains(q, kb.InverseMarker) {
		t.Fatalf("inverse marker leaked:\n%s", q)
	}
}

func TestPathAndClosedQueries(t *testing.T) {
	k := setup(t)
	mayor := k.MustPredicateID("http://tiny.demo/ontology/mayor")
	party := k.MustPredicateID("http://tiny.demo/ontology/party")
	cityIn := k.MustPredicateID("http://tiny.demo/ontology/cityIn")
	soc := k.MustEntityID("http://tiny.demo/resource/Socialist")

	q := Query(k, expr.Expression{expr.NewPath(mayor, party, soc)})
	if !strings.Contains(q, "?x <http://tiny.demo/ontology/mayor> ?y0") ||
		!strings.Contains(q, "?y0 <http://tiny.demo/ontology/party> <http://tiny.demo/resource/Socialist>") {
		t.Fatalf("path query wrong:\n%s", q)
	}

	q = Query(k, expr.Expression{expr.NewClosed2(cityIn, mayor)})
	if strings.Count(q, "?y0") != 2 {
		t.Fatalf("closed query must reuse the shared variable:\n%s", q)
	}
}

func TestMultiSubgraphVariablesDistinct(t *testing.T) {
	k := setup(t)
	mayor := k.MustPredicateID("http://tiny.demo/ontology/mayor")
	party := k.MustPredicateID("http://tiny.demo/ontology/party")
	off := k.MustPredicateID("http://tiny.demo/ontology/officialLanguage")
	fam := k.MustPredicateID("http://tiny.demo/ontology/langFamily")
	soc := k.MustEntityID("http://tiny.demo/resource/Socialist")
	ger := k.MustEntityID("http://tiny.demo/resource/Germanic")

	q := Query(k, expr.Expression{
		expr.NewPath(mayor, party, soc),
		expr.NewPath(off, fam, ger),
	})
	if !strings.Contains(q, "?y0") || !strings.Contains(q, "?y1") {
		t.Fatalf("subgraph variables must be distinct:\n%s", q)
	}
}

func TestLiteralObjectsQuoted(t *testing.T) {
	b := kb.NewBuilder()
	b.Add(rdf.Triple{S: rdf.NewIRI("http://e/s"), P: rdf.NewIRI("http://e/p"), O: rdf.NewLiteral("42")})
	k := b.Build(kb.Options{})
	p := k.MustPredicateID("http://e/p")
	lit, _ := k.EntityID(rdf.NewLiteral("42"))
	q := Query(k, expr.Expression{expr.NewAtom1(p, lit)})
	if !strings.Contains(q, `"42"`) {
		t.Fatalf("literal not quoted:\n%s", q)
	}
}

// TestExecuteMatchesEvaluator: the generated query's semantics (computed by
// Execute) must equal the expression evaluator's bindings.
func TestExecuteMatchesEvaluator(t *testing.T) {
	k := setup(t)
	in := k.MustPredicateID("http://tiny.demo/ontology/in")
	off := k.MustPredicateID("http://tiny.demo/ontology/officialLanguage")
	fam := k.MustPredicateID("http://tiny.demo/ontology/langFamily")
	sa := k.MustEntityID("http://tiny.demo/resource/SouthAmerica")
	ger := k.MustEntityID("http://tiny.demo/resource/Germanic")

	e := expr.Expression{
		expr.NewAtom1(in, sa),
		expr.NewPath(off, fam, ger),
	}
	got := Execute(k, e)
	if len(got) != 2 {
		t.Fatalf("query answers = %d, want 2 (Guyana, Suriname)", len(got))
	}
}
