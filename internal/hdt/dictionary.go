package hdt

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/remi-kb/remi/internal/rdf"
)

// dictionary is the four-section HDT dictionary. Term identifiers follow the
// HDT convention:
//
//	subject id  s ∈ [1, |shared|]                    -> shared[s-1]
//	subject id  s ∈ (|shared|, |shared|+|subjects|]  -> subjects[s-|shared|-1]
//	object  id  o ∈ [1, |shared|]                    -> shared[o-1]
//	object  id  o ∈ (|shared|, |shared|+|objects|]   -> objects[o-|shared|-1]
//	predicate p ∈ [1, |predicates|]                  -> predicates[p-1]
//
// Each section is sorted by the serialized term representation so it can be
// front-coded on disk.
type dictionary struct {
	shared, subjects, objects, predicates []rdf.Term

	sharedIdx, subjIdx, objIdx, predIdx map[rdf.Term]uint32
}

func buildDictionary(triples []rdf.Triple) (*dictionary, error) {
	subjSet := make(map[rdf.Term]struct{})
	objSet := make(map[rdf.Term]struct{})
	predSet := make(map[rdf.Term]struct{})
	for _, tr := range triples {
		if tr.S.Kind == rdf.Literal {
			return nil, fmt.Errorf("hdt: literal subject in %s", tr)
		}
		if tr.P.Kind != rdf.IRI {
			return nil, fmt.Errorf("hdt: non-IRI predicate in %s", tr)
		}
		subjSet[tr.S] = struct{}{}
		objSet[tr.O] = struct{}{}
		predSet[tr.P] = struct{}{}
	}
	d := &dictionary{}
	for t := range subjSet {
		if _, ok := objSet[t]; ok {
			d.shared = append(d.shared, t)
		} else {
			d.subjects = append(d.subjects, t)
		}
	}
	for t := range objSet {
		if _, ok := subjSet[t]; !ok {
			d.objects = append(d.objects, t)
		}
	}
	for t := range predSet {
		d.predicates = append(d.predicates, t)
	}
	sortSection(d.shared)
	sortSection(d.subjects)
	sortSection(d.objects)
	sortSection(d.predicates)
	d.buildIndexes()
	return d, nil
}

func sortSection(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool {
		return bytes.Compare(serializeTerm(ts[i]), serializeTerm(ts[j])) < 0
	})
}

func (d *dictionary) buildIndexes() {
	d.sharedIdx = make(map[rdf.Term]uint32, len(d.shared))
	for i, t := range d.shared {
		d.sharedIdx[t] = uint32(i + 1)
	}
	d.subjIdx = make(map[rdf.Term]uint32, len(d.subjects))
	for i, t := range d.subjects {
		d.subjIdx[t] = uint32(len(d.shared) + i + 1)
	}
	d.objIdx = make(map[rdf.Term]uint32, len(d.objects))
	for i, t := range d.objects {
		d.objIdx[t] = uint32(len(d.shared) + i + 1)
	}
	d.predIdx = make(map[rdf.Term]uint32, len(d.predicates))
	for i, t := range d.predicates {
		d.predIdx[t] = uint32(i + 1)
	}
}

func (d *dictionary) numSubjects() int   { return len(d.shared) + len(d.subjects) }
func (d *dictionary) numObjects() int    { return len(d.shared) + len(d.objects) }
func (d *dictionary) numPredicates() int { return len(d.predicates) }

func (d *dictionary) subjectID(t rdf.Term) (uint32, bool) {
	if id, ok := d.sharedIdx[t]; ok {
		return id, true
	}
	id, ok := d.subjIdx[t]
	return id, ok
}

func (d *dictionary) objectID(t rdf.Term) (uint32, bool) {
	if id, ok := d.sharedIdx[t]; ok {
		return id, true
	}
	id, ok := d.objIdx[t]
	return id, ok
}

func (d *dictionary) predicateID(t rdf.Term) (uint32, bool) {
	id, ok := d.predIdx[t]
	return id, ok
}

func (d *dictionary) subjectTerm(id uint32) rdf.Term {
	if int(id) <= len(d.shared) {
		return d.shared[id-1]
	}
	return d.subjects[int(id)-len(d.shared)-1]
}

func (d *dictionary) objectTerm(id uint32) rdf.Term {
	if int(id) <= len(d.shared) {
		return d.shared[id-1]
	}
	return d.objects[int(id)-len(d.shared)-1]
}

func (d *dictionary) predicateTerm(id uint32) rdf.Term {
	return d.predicates[id-1]
}

// serializeTerm renders a term as a kind-prefixed byte string, the canonical
// form used for section sorting and front coding.
func serializeTerm(t rdf.Term) []byte {
	out := make([]byte, 0, len(t.Value)+1)
	switch t.Kind {
	case rdf.IRI:
		out = append(out, 'I')
	case rdf.Literal:
		out = append(out, 'L')
	case rdf.Blank:
		out = append(out, 'B')
	}
	return append(out, t.Value...)
}

func deserializeTerm(b []byte) (rdf.Term, error) {
	if len(b) == 0 {
		return rdf.Term{}, fmt.Errorf("hdt: empty serialized term")
	}
	v := string(b[1:])
	switch b[0] {
	case 'I':
		return rdf.NewIRI(v), nil
	case 'L':
		return rdf.NewLiteral(v), nil
	case 'B':
		return rdf.NewBlank(v), nil
	default:
		return rdf.Term{}, fmt.Errorf("hdt: unknown term kind byte %q", b[0])
	}
}
