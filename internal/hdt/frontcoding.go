package hdt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/remi-kb/remi/internal/rdf"
)

// Front coding compresses a sorted string section by storing, for every
// string except block heads, only the length of the prefix shared with its
// predecessor plus the remaining suffix. Blocks of blockSize strings keep
// random access cheap while achieving most of the compression.
const blockSize = 16

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// writeSection front-codes a sorted term section.
func writeSection(w *bufio.Writer, terms []rdf.Term) error {
	if err := writeUvarint(w, uint64(len(terms))); err != nil {
		return err
	}
	var prev []byte
	for i, t := range terms {
		cur := serializeTerm(t)
		if i%blockSize == 0 {
			if err := writeUvarint(w, uint64(len(cur))); err != nil {
				return err
			}
			if _, err := w.Write(cur); err != nil {
				return err
			}
		} else {
			common := commonPrefix(prev, cur)
			if err := writeUvarint(w, uint64(common)); err != nil {
				return err
			}
			if err := writeUvarint(w, uint64(len(cur)-common)); err != nil {
				return err
			}
			if _, err := w.Write(cur[common:]); err != nil {
				return err
			}
		}
		prev = cur
	}
	return nil
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// readSection decodes a section written by writeSection.
func readSection(r *bufio.Reader) ([]rdf.Term, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("hdt: unreasonable section size %d", n)
	}
	terms := make([]rdf.Term, 0, n)
	var prev []byte
	for i := uint64(0); i < n; i++ {
		var cur []byte
		if i%blockSize == 0 {
			l, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			cur = make([]byte, l)
			if _, err := io.ReadFull(r, cur); err != nil {
				return nil, err
			}
		} else {
			common, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			suffixLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if common > uint64(len(prev)) {
				return nil, fmt.Errorf("hdt: corrupt front coding (prefix %d > prev %d)", common, len(prev))
			}
			cur = make([]byte, common+suffixLen)
			copy(cur, prev[:common])
			if _, err := io.ReadFull(r, cur[common:]); err != nil {
				return nil, err
			}
		}
		t, err := deserializeTerm(cur)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		prev = cur
	}
	return terms, nil
}
