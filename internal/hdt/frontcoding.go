package hdt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/remi-kb/remi/internal/rdf"
)

// Front coding compresses a sorted string section by storing, for every
// string except block heads, only the length of the prefix shared with its
// predecessor plus the remaining suffix. Blocks of blockSize strings keep
// random access cheap while achieving most of the compression.
const blockSize = 16

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// writeSection front-codes a sorted term section.
func writeSection(w *bufio.Writer, terms []rdf.Term) error {
	if err := writeUvarint(w, uint64(len(terms))); err != nil {
		return err
	}
	var prev []byte
	for i, t := range terms {
		cur := serializeTerm(t)
		if i%blockSize == 0 {
			if err := writeUvarint(w, uint64(len(cur))); err != nil {
				return err
			}
			if _, err := w.Write(cur); err != nil {
				return err
			}
		} else {
			common := commonPrefix(prev, cur)
			if err := writeUvarint(w, uint64(common)); err != nil {
				return err
			}
			if err := writeUvarint(w, uint64(len(cur)-common)); err != nil {
				return err
			}
			if _, err := w.Write(cur[common:]); err != nil {
				return err
			}
		}
		prev = cur
	}
	return nil
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// BlockSize is the front-coding block length: random access decodes at most
// BlockSize-1 delta entries after one block head.
const BlockSize = blockSize

// SerializeTerm renders a term as a kind-prefixed byte string ('I'/'L'/'B' +
// value), the canonical form used for front coding. Note the byte order of
// the kind prefixes differs from rdf.Term.Compare's kind order; use
// CompareSerializedTerm, never bytes.Compare, to order serialized terms
// consistently with live ones.
func SerializeTerm(t rdf.Term) []byte { return serializeTerm(t) }

// DeserializeTerm reverses SerializeTerm.
func DeserializeTerm(b []byte) (rdf.Term, error) { return deserializeTerm(b) }

// CompareSerializedTerm orders a serialized term against a live term using
// rdf.Term.Compare semantics (IRI < Literal < Blank, then value bytes),
// without allocating. It panics on an unknown kind prefix: callers hand it
// checksummed snapshot data, where a malformed entry indicates a writer bug,
// not an input error.
func CompareSerializedTerm(b []byte, t rdf.Term) int {
	if len(b) == 0 {
		panic("hdt: empty serialized term")
	}
	var kind rdf.Kind
	switch b[0] {
	case 'I':
		kind = rdf.IRI
	case 'L':
		kind = rdf.Literal
	case 'B':
		kind = rdf.Blank
	default:
		panic(fmt.Sprintf("hdt: unknown term kind byte %q", b[0]))
	}
	if kind != t.Kind {
		if kind < t.Kind {
			return -1
		}
		return 1
	}
	rest, v := b[1:], t.Value
	n := len(rest)
	if len(v) < n {
		n = len(v)
	}
	for i := 0; i < n; i++ {
		if rest[i] != v[i] {
			if rest[i] < v[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(rest) < len(v):
		return -1
	case len(rest) > len(v):
		return 1
	}
	return 0
}

// FCBuilder accumulates serialized terms — appended in the order they will
// be searched in — into a front-coded blob plus block start offsets, the
// random-access layout FCSet reads. Unlike writeSection it carries no count
// prefix: blob and offsets are stored as separate snapshot sections.
type FCBuilder struct {
	blob []byte
	offs []uint64
	prev []byte
	n    int
}

// Append front-codes one serialized term.
func (fb *FCBuilder) Append(cur []byte) {
	if fb.n%blockSize == 0 {
		fb.offs = append(fb.offs, uint64(len(fb.blob)))
		fb.blob = binary.AppendUvarint(fb.blob, uint64(len(cur)))
		fb.blob = append(fb.blob, cur...)
	} else {
		common := commonPrefix(fb.prev, cur)
		fb.blob = binary.AppendUvarint(fb.blob, uint64(common))
		fb.blob = binary.AppendUvarint(fb.blob, uint64(len(cur)-common))
		fb.blob = append(fb.blob, cur[common:]...)
	}
	fb.prev = append(fb.prev[:0], cur...)
	fb.n++
}

// Finish returns the blob, the block offsets (one per block plus a final
// entry equal to len(blob)), and the entry count.
func (fb *FCBuilder) Finish() (blob []byte, blockOffs []uint64, n int) {
	fb.offs = append(fb.offs, uint64(len(fb.blob)))
	return fb.blob, fb.offs, fb.n
}

// FCSet is a read-only random-access view over a front-coded blob produced
// by FCBuilder, typically aliasing an mmap'd snapshot section. No per-entry
// offset table exists or is built: entry access decodes within one block,
// and Search binary-searches block heads before walking a single block.
type FCSet struct {
	blob []byte
	offs []uint64
	n    int
}

// NewFCSet validates the block-offset structure (count, monotonicity,
// bounds) against the blob and entry count. The slices are retained.
func NewFCSet(blob []byte, blockOffs []uint64, n int) (*FCSet, error) {
	blocks := (n + blockSize - 1) / blockSize
	if len(blockOffs) != blocks+1 {
		return nil, fmt.Errorf("hdt: front-coded set of %d entries needs %d block offsets, got %d", n, blocks+1, len(blockOffs))
	}
	if blocks > 0 && blockOffs[0] != 0 {
		return nil, fmt.Errorf("hdt: front-coded set first block offset %d, want 0", blockOffs[0])
	}
	for i := 1; i < len(blockOffs); i++ {
		if blockOffs[i] < blockOffs[i-1] {
			return nil, fmt.Errorf("hdt: front-coded block offsets not monotonic at %d", i)
		}
	}
	if blockOffs[len(blockOffs)-1] != uint64(len(blob)) {
		return nil, fmt.Errorf("hdt: front-coded block offsets end at %d, want blob size %d", blockOffs[len(blockOffs)-1], len(blob))
	}
	return &FCSet{blob: blob, offs: blockOffs, n: n}, nil
}

// Len returns the number of entries.
func (s *FCSet) Len() int { return s.n }

// TermAt decodes entry i.
func (s *FCSet) TermAt(i int) (rdf.Term, error) {
	b, err := s.entryAt(i, nil)
	if err != nil {
		return rdf.Term{}, err
	}
	return deserializeTerm(b)
}

// entryAt returns the serialized bytes of entry i, reusing scratch when it
// has capacity. The returned slice is only valid until the next call with
// the same scratch.
func (s *FCSet) entryAt(i int, scratch []byte) ([]byte, error) {
	if i < 0 || i >= s.n {
		return nil, fmt.Errorf("hdt: front-coded entry %d out of range (%d entries)", i, s.n)
	}
	block := i / blockSize
	c := blockCursor{data: s.blob[s.offs[block]:s.offs[block+1]]}
	cur, err := c.head(scratch)
	if err != nil {
		return nil, err
	}
	for k := 0; k < i%blockSize; k++ {
		cur, err = c.next(cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// Search locates the entry for which cmp returns 0, where cmp receives a
// serialized entry and reports its order relative to the target (negative
// when the entry sorts before the target). Entries must have been appended
// in an order consistent with cmp. It returns the entry index and whether an
// exact match was found.
func (s *FCSet) Search(cmp func(serialized []byte) int) (int, bool, error) {
	blocks := len(s.offs) - 1
	lo, hi := 0, blocks
	var scratch []byte
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := blockCursor{data: s.blob[s.offs[mid]:s.offs[mid+1]]}
		head, err := c.head(scratch)
		if err != nil {
			return 0, false, err
		}
		scratch = head
		if cmp(head) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is now the first block whose head sorts after the target; the
	// target, if present, lives in the previous block.
	block := lo - 1
	if block < 0 {
		return 0, false, nil
	}
	c := blockCursor{data: s.blob[s.offs[block]:s.offs[block+1]]}
	cur, err := c.head(scratch)
	if err != nil {
		return 0, false, err
	}
	limit := s.n - block*blockSize
	if limit > blockSize {
		limit = blockSize
	}
	for k := 0; k < limit; k++ {
		if k > 0 {
			cur, err = c.next(cur)
			if err != nil {
				return 0, false, err
			}
		}
		switch c := cmp(cur); {
		case c == 0:
			return block*blockSize + k, true, nil
		case c > 0:
			return block*blockSize + k, false, nil
		}
	}
	return block*blockSize + limit, false, nil
}

// Each calls f with every entry index and its serialized bytes — valid only
// for the duration of the call — until f returns false. One sequential
// decode pass, far cheaper than n TermAt calls.
func (s *FCSet) Each(f func(i int, serialized []byte) bool) error {
	var cur []byte
	for block := 0; block*blockSize < s.n; block++ {
		c := blockCursor{data: s.blob[s.offs[block]:s.offs[block+1]]}
		limit := s.n - block*blockSize
		if limit > blockSize {
			limit = blockSize
		}
		var err error
		for k := 0; k < limit; k++ {
			if k == 0 {
				cur, err = c.head(cur)
			} else {
				cur, err = c.next(cur)
			}
			if err != nil {
				return err
			}
			if !f(block*blockSize+k, cur) {
				return nil
			}
		}
	}
	return nil
}

// blockCursor decodes front-coded entries within a single block.
type blockCursor struct {
	data []byte
	pos  int
}

func (c *blockCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("hdt: corrupt front-coded block (bad uvarint at %d)", c.pos)
	}
	c.pos += n
	return v, nil
}

func (c *blockCursor) head(scratch []byte) ([]byte, error) {
	l, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(c.pos)+l > uint64(len(c.data)) {
		return nil, fmt.Errorf("hdt: corrupt front-coded block (head length %d overruns block)", l)
	}
	cur := append(scratch[:0], c.data[c.pos:c.pos+int(l)]...)
	c.pos += int(l)
	return cur, nil
}

func (c *blockCursor) next(prev []byte) ([]byte, error) {
	common, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	suffixLen, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if common > uint64(len(prev)) {
		return nil, fmt.Errorf("hdt: corrupt front coding (prefix %d > prev %d)", common, len(prev))
	}
	if uint64(c.pos)+suffixLen > uint64(len(c.data)) {
		return nil, fmt.Errorf("hdt: corrupt front-coded block (suffix %d overruns block)", suffixLen)
	}
	cur := append(prev[:common], c.data[c.pos:c.pos+int(suffixLen)]...)
	c.pos += int(suffixLen)
	return cur, nil
}

// readSection decodes a section written by writeSection.
func readSection(r *bufio.Reader) ([]rdf.Term, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("hdt: unreasonable section size %d", n)
	}
	terms := make([]rdf.Term, 0, n)
	var prev []byte
	for i := uint64(0); i < n; i++ {
		var cur []byte
		if i%blockSize == 0 {
			l, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			cur = make([]byte, l)
			if _, err := io.ReadFull(r, cur); err != nil {
				return nil, err
			}
		} else {
			common, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			suffixLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if common > uint64(len(prev)) {
				return nil, fmt.Errorf("hdt: corrupt front coding (prefix %d > prev %d)", common, len(prev))
			}
			cur = make([]byte, common+suffixLen)
			copy(cur, prev[:common])
			if _, err := io.ReadFull(r, cur[common:]); err != nil {
				return nil, err
			}
		}
		t, err := deserializeTerm(cur)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		prev = cur
	}
	return terms, nil
}
