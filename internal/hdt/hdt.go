// Package hdt implements a compact binary storage format for RDF graphs
// modeled after HDT (Header–Dictionary–Triples, Fernández et al., JWS 2013),
// which the paper uses as its on-disk KB representation (Section 3.5.1).
//
// The format stores a four-section front-coded dictionary (terms shared
// between subject and object positions, subject-only terms, object-only
// terms, and predicates) and the triples as bitmap-encoded adjacency lists
// in SPO order, augmented with object and predicate indexes so that all
// eight triple patterns can be answered without decompression. Like the
// libraries the paper builds on, this package resolves bindings for single
// atoms p(X,Y); join operators live in upper layers (internal/kb).
package hdt

import (
	"fmt"
	"sort"

	"github.com/remi-kb/remi/internal/bitseq"
	"github.com/remi-kb/remi/internal/rdf"
)

// HDT is an immutable, queryable RDF graph in HDT-style layout.
type HDT struct {
	dict *dictionary

	// Bitmap triples (SPO order).
	// seqP[i] is the predicate of the i-th (subject,predicate) pair; pairs are
	// grouped by subject and bitP marks the last pair of each subject.
	seqP *bitseq.LogArray
	bitP *bitseq.Bits
	// seqO[i] is the object of the i-th triple, grouped by (s,p) pair; bitO
	// marks the last object of each pair.
	seqO *bitseq.LogArray
	bitO *bitseq.Bits

	// Object index: for object o, positions in seqO holding o.
	objPos   *bitseq.LogArray
	objBit   *bitseq.Bits // marks last position of each object's list
	objFirst []uint32     // object id -> index of its first entry in objPos lists, built at load

	// Predicate index: for predicate p, positions in seqP holding p.
	predPos   *bitseq.LogArray
	predBit   *bitseq.Bits
	predFirst []uint32

	nTriples int
}

// Build constructs an HDT graph from triples. Duplicate triples are merged.
func Build(triples []rdf.Triple) (*HDT, error) {
	dict, err := buildDictionary(triples)
	if err != nil {
		return nil, err
	}
	enc := make([]encTriple, len(triples))
	for i, tr := range triples {
		s, ok := dict.subjectID(tr.S)
		if !ok {
			return nil, fmt.Errorf("hdt: subject %s missing from dictionary", tr.S)
		}
		p, ok := dict.predicateID(tr.P)
		if !ok {
			return nil, fmt.Errorf("hdt: predicate %s missing from dictionary", tr.P)
		}
		o, ok := dict.objectID(tr.O)
		if !ok {
			return nil, fmt.Errorf("hdt: object %s missing from dictionary", tr.O)
		}
		enc[i] = encTriple{s, p, o}
	}
	sort.Slice(enc, func(i, j int) bool {
		a, b := enc[i], enc[j]
		if a.s != b.s {
			return a.s < b.s
		}
		if a.p != b.p {
			return a.p < b.p
		}
		return a.o < b.o
	})
	// Dedup.
	w := 0
	for i := range enc {
		if i == 0 || enc[i] != enc[i-1] {
			enc[w] = enc[i]
			w++
		}
	}
	enc = enc[:w]

	h := &HDT{dict: dict, nTriples: len(enc)}
	h.buildBitmapTriples(enc)
	h.buildObjectIndex(enc)
	h.buildPredicateIndex()
	return h, nil
}

type encTriple struct{ s, p, o uint32 }

func (h *HDT) buildBitmapTriples(enc []encTriple) {
	maxP := uint64(h.dict.numPredicates())
	maxO := uint64(h.dict.numObjects())

	var preds, objs []uint64
	bitP := &bitseq.Bits{}
	bitO := &bitseq.Bits{}

	// Every subject in 1..maxSubjectID must have an adjacency list; Build
	// guarantees each subject id appears in at least one triple because ids
	// were assigned from the triples themselves.
	for i := 0; i < len(enc); {
		s := enc[i].s
		for i < len(enc) && enc[i].s == s {
			p := enc[i].p
			preds = append(preds, uint64(p))
			for i < len(enc) && enc[i].s == s && enc[i].p == p {
				objs = append(objs, uint64(enc[i].o))
				bitO.Append(false)
				i++
			}
			bitO.Set(bitO.Len()-1, true) // last object of the pair
			bitP.Append(false)
		}
		bitP.Set(bitP.Len()-1, true) // last pair of the subject
	}
	bitP.Build()
	bitO.Build()

	h.seqP = bitseq.NewLogArray(bitseq.WidthFor(maxP), len(preds))
	for i, v := range preds {
		h.seqP.Set(i, v)
	}
	h.seqO = bitseq.NewLogArray(bitseq.WidthFor(maxO), len(objs))
	for i, v := range objs {
		h.seqO.Set(i, v)
	}
	h.bitP = bitP
	h.bitO = bitO
}

func (h *HDT) buildObjectIndex(enc []encTriple) {
	nObj := h.dict.numObjects()
	counts := make([]uint32, nObj+1)
	for i := 0; i < h.seqO.Len(); i++ {
		counts[h.seqO.Get(i)]++
	}
	positions := make([]uint64, h.seqO.Len())
	offsets := make([]uint32, nObj+2)
	for o := 1; o <= nObj; o++ {
		offsets[o+1] = offsets[o] + counts[o]
	}
	fill := append([]uint32(nil), offsets[:nObj+1]...)
	for i := 0; i < h.seqO.Len(); i++ {
		o := h.seqO.Get(i)
		positions[fill[o]] = uint64(i)
		fill[o]++
	}
	h.objPos = bitseq.FromSlice(positions)
	bit := &bitseq.Bits{}
	for o := 1; o <= nObj; o++ {
		n := int(counts[o])
		for k := 0; k < n; k++ {
			bit.Append(k == n-1)
		}
	}
	bit.Build()
	h.objBit = bit
	h.objFirst = offsets
}

func (h *HDT) buildPredicateIndex() {
	nPred := h.dict.numPredicates()
	counts := make([]uint32, nPred+1)
	for i := 0; i < h.seqP.Len(); i++ {
		counts[h.seqP.Get(i)]++
	}
	positions := make([]uint64, h.seqP.Len())
	offsets := make([]uint32, nPred+2)
	for p := 1; p <= nPred; p++ {
		offsets[p+1] = offsets[p] + counts[p]
	}
	fill := append([]uint32(nil), offsets[:nPred+1]...)
	for i := 0; i < h.seqP.Len(); i++ {
		p := h.seqP.Get(i)
		positions[fill[p]] = uint64(i)
		fill[p]++
	}
	h.predPos = bitseq.FromSlice(positions)
	bit := &bitseq.Bits{}
	for p := 1; p <= nPred; p++ {
		n := int(counts[p])
		for k := 0; k < n; k++ {
			bit.Append(k == n-1)
		}
	}
	bit.Build()
	h.predBit = bit
	h.predFirst = offsets
}

// NumTriples returns the number of distinct triples stored.
func (h *HDT) NumTriples() int { return h.nTriples }

// NumShared, NumSubjects, NumObjects and NumPredicates expose the dictionary
// section sizes (shared counts terms used in both subject and object roles).
func (h *HDT) NumShared() int     { return len(h.dict.shared) }
func (h *HDT) NumSubjects() int   { return h.dict.numSubjects() }
func (h *HDT) NumObjects() int    { return h.dict.numObjects() }
func (h *HDT) NumPredicates() int { return h.dict.numPredicates() }

// pair bookkeeping -----------------------------------------------------------

// subjectPairRange returns the half-open range [from, to) of pair positions
// in seqP that belong to subject s (1-based id).
func (h *HDT) subjectPairRange(s uint32) (int, int) {
	from := 0
	if s > 1 {
		from = h.bitP.Select1(int(s-1)) + 1
	}
	to := h.bitP.Select1(int(s)) + 1
	return from, to
}

// pairObjectRange returns the half-open range [from, to) of object positions
// in seqO belonging to pair index j (0-based).
func (h *HDT) pairObjectRange(j int) (int, int) {
	from := 0
	if j > 0 {
		from = h.bitO.Select1(j) + 1
	}
	to := h.bitO.Select1(j+1) + 1
	return from, to
}

// pairSubject returns the subject id owning pair index j.
func (h *HDT) pairSubject(j int) uint32 {
	return uint32(h.bitP.Rank1(j)) + 1
}

// objectPosToPair maps a position in seqO to its (s,p) pair index.
func (h *HDT) objectPosToPair(pos int) int {
	return h.bitO.Rank1(pos)
}
