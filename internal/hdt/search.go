package hdt

import (
	"github.com/remi-kb/remi/internal/rdf"
)

// Any is the wildcard term for Search patterns.
var Any = rdf.Term{}

func isAny(t rdf.Term) bool { return t.Value == "" && t.Kind == rdf.IRI }

// Search returns all triples matching the pattern (s, p, o), where Any acts
// as a wildcard in any position. All eight binding combinations are
// supported; bound-subject and bound-object patterns use the bitmap indexes,
// predicate-only patterns use the predicate index, and the fully unbound
// pattern enumerates the store.
func (h *HDT) Search(s, p, o rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	h.ForEach(s, p, o, func(tr rdf.Triple) bool {
		out = append(out, tr)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern.
func (h *HDT) Count(s, p, o rdf.Term) int {
	n := 0
	h.ForEach(s, p, o, func(rdf.Triple) bool {
		n++
		return true
	})
	return n
}

// ForEach streams triples matching the pattern to fn; returning false from
// fn stops the iteration early.
func (h *HDT) ForEach(s, p, o rdf.Term, fn func(rdf.Triple) bool) {
	switch {
	case !isAny(s):
		h.forEachBySubject(s, p, o, fn)
	case !isAny(o):
		h.forEachByObject(p, o, fn)
	case !isAny(p):
		h.forEachByPredicate(p, fn)
	default:
		h.forEachAll(fn)
	}
}

func (h *HDT) forEachBySubject(s, p, o rdf.Term, fn func(rdf.Triple) bool) {
	sid, ok := h.dict.subjectID(s)
	if !ok {
		return
	}
	var pid uint32
	if !isAny(p) {
		if pid, ok = h.dict.predicateID(p); !ok {
			return
		}
	}
	var oid uint32
	if !isAny(o) {
		if oid, ok = h.dict.objectID(o); !ok {
			return
		}
	}
	from, to := h.subjectPairRange(sid)
	for j := from; j < to; j++ {
		pj := uint32(h.seqP.Get(j))
		if pid != 0 && pj != pid {
			continue
		}
		of, ot := h.pairObjectRange(j)
		for pos := of; pos < ot; pos++ {
			oj := uint32(h.seqO.Get(pos))
			if oid != 0 && oj != oid {
				continue
			}
			if !fn(rdf.Triple{S: s, P: h.dict.predicateTerm(pj), O: h.dict.objectTerm(oj)}) {
				return
			}
		}
	}
}

func (h *HDT) forEachByObject(p, o rdf.Term, fn func(rdf.Triple) bool) {
	oid, ok := h.dict.objectID(o)
	if !ok {
		return
	}
	var pid uint32
	if !isAny(p) {
		if pid, ok = h.dict.predicateID(p); !ok {
			return
		}
	}
	from := int(h.objFirst[oid])
	to := int(h.objFirst[oid+1])
	for k := from; k < to; k++ {
		pos := int(h.objPos.Get(k))
		j := h.objectPosToPair(pos)
		pj := uint32(h.seqP.Get(j))
		if pid != 0 && pj != pid {
			continue
		}
		sj := h.pairSubject(j)
		if !fn(rdf.Triple{S: h.dict.subjectTerm(sj), P: h.dict.predicateTerm(pj), O: o}) {
			return
		}
	}
}

func (h *HDT) forEachByPredicate(p rdf.Term, fn func(rdf.Triple) bool) {
	pid, ok := h.dict.predicateID(p)
	if !ok {
		return
	}
	from := int(h.predFirst[pid])
	to := int(h.predFirst[pid+1])
	for k := from; k < to; k++ {
		j := int(h.predPos.Get(k))
		sj := h.pairSubject(j)
		of, ot := h.pairObjectRange(j)
		for pos := of; pos < ot; pos++ {
			oj := uint32(h.seqO.Get(pos))
			if !fn(rdf.Triple{S: h.dict.subjectTerm(sj), P: p, O: h.dict.objectTerm(oj)}) {
				return
			}
		}
	}
}

func (h *HDT) forEachAll(fn func(rdf.Triple) bool) {
	for j := 0; j < h.seqP.Len(); j++ {
		sj := h.pairSubject(j)
		pj := uint32(h.seqP.Get(j))
		of, ot := h.pairObjectRange(j)
		for pos := of; pos < ot; pos++ {
			oj := uint32(h.seqO.Get(pos))
			if !fn(rdf.Triple{S: h.dict.subjectTerm(sj), P: h.dict.predicateTerm(pj), O: h.dict.objectTerm(oj)}) {
				return
			}
		}
	}
}

// Triples decodes and returns every stored triple in SPO order.
func (h *HDT) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, h.nTriples)
	h.forEachAll(func(tr rdf.Triple) bool {
		out = append(out, tr)
		return true
	})
	return out
}
