package hdt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/remi-kb/remi/internal/bitseq"
)

// magic identifies the file format and version.
var magic = []byte("GOHDT1\n")

// Save writes the graph in the binary HDT-style format.
func (h *HDT) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	// Header: triple count.
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(h.nTriples))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// Dictionary: four front-coded sections.
	if err := writeSection(bw, h.dict.shared); err != nil {
		return err
	}
	if err := writeSection(bw, h.dict.subjects); err != nil {
		return err
	}
	if err := writeSection(bw, h.dict.objects); err != nil {
		return err
	}
	if err := writeSection(bw, h.dict.predicates); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Triples: bitmap + sequence pairs. The indexes are rebuilt at load time
	// (cheap relative to I/O) so only the core encoding is stored.
	if _, err := h.bitP.WriteTo(w); err != nil {
		return err
	}
	if _, err := h.seqP.WriteTo(w); err != nil {
		return err
	}
	if _, err := h.bitO.WriteTo(w); err != nil {
		return err
	}
	if _, err := h.seqO.WriteTo(w); err != nil {
		return err
	}
	return nil
}

// Load reads a graph written by Save and rebuilds its query indexes.
func Load(r io.Reader) (*HDT, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, err
	}
	if string(got) != string(magic) {
		return nil, fmt.Errorf("hdt: bad magic %q", got)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	nTriples := int(binary.LittleEndian.Uint64(hdr[:]))

	d := &dictionary{}
	var err error
	if d.shared, err = readSection(br); err != nil {
		return nil, fmt.Errorf("hdt: shared section: %w", err)
	}
	if d.subjects, err = readSection(br); err != nil {
		return nil, fmt.Errorf("hdt: subjects section: %w", err)
	}
	if d.objects, err = readSection(br); err != nil {
		return nil, fmt.Errorf("hdt: objects section: %w", err)
	}
	if d.predicates, err = readSection(br); err != nil {
		return nil, fmt.Errorf("hdt: predicates section: %w", err)
	}
	d.buildIndexes()

	h := &HDT{dict: d, nTriples: nTriples}
	if h.bitP, err = bitseq.ReadBits(br); err != nil {
		return nil, fmt.Errorf("hdt: bitP: %w", err)
	}
	if h.seqP, err = bitseq.ReadLogArray(br); err != nil {
		return nil, fmt.Errorf("hdt: seqP: %w", err)
	}
	if h.bitO, err = bitseq.ReadBits(br); err != nil {
		return nil, fmt.Errorf("hdt: bitO: %w", err)
	}
	if h.seqO, err = bitseq.ReadLogArray(br); err != nil {
		return nil, fmt.Errorf("hdt: seqO: %w", err)
	}
	if h.seqO.Len() != nTriples {
		return nil, fmt.Errorf("hdt: triple count mismatch: header %d vs data %d", nTriples, h.seqO.Len())
	}
	// Rebuild the object and predicate indexes from the decoded sequences.
	enc := h.decodeAllEnc()
	h.buildObjectIndex(enc)
	h.buildPredicateIndex()
	return h, nil
}

// decodeAllEnc reconstructs the sorted encoded triple list from the bitmap
// representation (used to rebuild the secondary indexes after Load).
func (h *HDT) decodeAllEnc() []encTriple {
	out := make([]encTriple, 0, h.nTriples)
	for j := 0; j < h.seqP.Len(); j++ {
		s := h.pairSubject(j)
		p := uint32(h.seqP.Get(j))
		from, to := h.pairObjectRange(j)
		for pos := from; pos < to; pos++ {
			out = append(out, encTriple{s, p, uint32(h.seqO.Get(pos))})
		}
	}
	return out
}

// SaveFile writes the graph to path.
func (h *HDT) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := h.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*HDT, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
