package hdt

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/remi-kb/remi/internal/rdf"
)

func randomTriples(seed int64, n int) []rdf.Triple {
	rng := rand.New(rand.NewSource(seed))
	var out []rdf.Triple
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://e/s%d", rng.Intn(30)))
		p := rdf.NewIRI(fmt.Sprintf("http://e/p%d", rng.Intn(8)))
		var o rdf.Term
		switch rng.Intn(3) {
		case 0:
			o = rdf.NewIRI(fmt.Sprintf("http://e/s%d", rng.Intn(30))) // shared
		case 1:
			o = rdf.NewLiteral(fmt.Sprintf("lit%d", rng.Intn(20)))
		default:
			o = rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(5)))
		}
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	return out
}

func sortedUnique(ts []rdf.Triple) []rdf.Triple {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	var out []rdf.Triple
	for i, tr := range ts {
		if i == 0 || tr != ts[i-1] {
			out = append(out, tr)
		}
	}
	return out
}

func TestBuildPreservesTriples(t *testing.T) {
	in := randomTriples(1, 500)
	h, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedUnique(append([]rdf.Triple(nil), in...))
	got := sortedUnique(h.Triples())
	if len(got) != len(want) {
		t.Fatalf("triple count %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("triple %d: %v want %v", i, got[i], want[i])
		}
	}
	if h.NumTriples() != len(want) {
		t.Fatalf("NumTriples = %d want %d", h.NumTriples(), len(want))
	}
}

// naiveMatch filters triples by pattern for cross-checking Search.
func naiveMatch(ts []rdf.Triple, s, p, o rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	for _, tr := range ts {
		if !isAny(s) && tr.S != s {
			continue
		}
		if !isAny(p) && tr.P != p {
			continue
		}
		if !isAny(o) && tr.O != o {
			continue
		}
		out = append(out, tr)
	}
	return sortedUnique(out)
}

func TestSearchAllPatternsAgainstNaive(t *testing.T) {
	in := randomTriples(2, 800)
	h, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	unique := sortedUnique(append([]rdf.Triple(nil), in...))

	subjects := []rdf.Term{rdf.NewIRI("http://e/s3"), rdf.NewIRI("http://e/s7"), rdf.NewBlank("b1"), rdf.NewIRI("http://absent")}
	preds := []rdf.Term{rdf.NewIRI("http://e/p0"), rdf.NewIRI("http://e/p5"), rdf.NewIRI("http://absent")}
	objects := []rdf.Term{rdf.NewIRI("http://e/s3"), rdf.NewLiteral("lit3"), rdf.NewBlank("b2"), rdf.NewIRI("http://absent")}

	check := func(s, p, o rdf.Term) {
		t.Helper()
		want := naiveMatch(unique, s, p, o)
		got := sortedUnique(h.Search(s, p, o))
		if len(got) != len(want) {
			t.Fatalf("pattern (%v,%v,%v): %d results want %d", s, p, o, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pattern (%v,%v,%v): result %d = %v want %v", s, p, o, i, got[i], want[i])
			}
		}
	}

	for _, s := range append(subjects, Any) {
		for _, p := range append(preds, Any) {
			for _, o := range append(objects, Any) {
				check(s, p, o)
			}
		}
	}
}

func TestCount(t *testing.T) {
	in := randomTriples(3, 300)
	h, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Count(Any, Any, Any); got != h.NumTriples() {
		t.Fatalf("Count(any) = %d want %d", got, h.NumTriples())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	in := randomTriples(4, 700)
	h, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumTriples() != h.NumTriples() {
		t.Fatalf("NumTriples %d want %d", h2.NumTriples(), h.NumTriples())
	}
	a, b := sortedUnique(h.Triples()), sortedUnique(h2.Triples())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs after reload", i)
		}
	}
	// Queries must work identically after reload.
	p := rdf.NewIRI("http://e/p1")
	if got, want := len(h2.Search(Any, p, Any)), len(h.Search(Any, p, Any)); got != want {
		t.Fatalf("predicate search after reload: %d want %d", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an hdt file at all"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildRejectsLiteralSubject(t *testing.T) {
	_, err := Build([]rdf.Triple{{S: rdf.NewLiteral("x"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://o")}})
	if err == nil {
		t.Fatal("expected error for literal subject")
	}
}

func TestDictionarySections(t *testing.T) {
	in := []rdf.Triple{
		{S: rdf.NewIRI("http://e/both"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/objOnly")},
		{S: rdf.NewIRI("http://e/subjOnly"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/both")},
	}
	h, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumShared() != 1 {
		t.Fatalf("NumShared = %d want 1", h.NumShared())
	}
	if h.NumSubjects() != 2 || h.NumObjects() != 2 || h.NumPredicates() != 1 {
		t.Fatalf("sections: %d subj %d obj %d pred", h.NumSubjects(), h.NumObjects(), h.NumPredicates())
	}
}

func TestFrontCodingLongSharedPrefixes(t *testing.T) {
	var in []rdf.Triple
	for i := 0; i < 200; i++ {
		in = append(in, rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://very.long.namespace.example.org/resource/Entity_%04d", i)),
			P: rdf.NewIRI("http://very.long.namespace.example.org/ontology/linksTo"),
			O: rdf.NewIRI(fmt.Sprintf("http://very.long.namespace.example.org/resource/Entity_%04d", (i+1)%200)),
		})
	}
	h, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := len(buf.Bytes())
	// The 200 entities share a 55-byte prefix; front coding should keep the
	// file well under the raw string size.
	var rawStrings int
	for _, tr := range in {
		rawStrings += len(tr.S.Value) + len(tr.P.Value) + len(tr.O.Value)
	}
	if raw >= rawStrings {
		t.Fatalf("file size %d not smaller than raw strings %d", raw, rawStrings)
	}
	h2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumTriples() != h.NumTriples() {
		t.Fatal("reload mismatch")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	in := randomTriples(9, 400)
	h, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	h.ForEach(Any, Any, Any, func(rdf.Triple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}
