package study

import (
	"testing"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

func setup(t testing.TB) (*kb.KB, *Perception) {
	t.Helper()
	d := datagen.TinyGeo()
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return k, NewPerception(k, d.TruePop)
}

func entity(t testing.TB, k *kb.KB, name string) kb.EntID {
	t.Helper()
	id, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + name))
	if !ok {
		t.Fatalf("missing %s", name)
	}
	return id
}

func pred(t testing.TB, k *kb.KB, name string) kb.PredID {
	t.Helper()
	p, ok := k.PredicateID("http://tiny.demo/ontology/" + name)
	if !ok {
		t.Fatalf("missing predicate %s", name)
	}
	return p
}

func TestTrueBitsPrefersProminentEntities(t *testing.T) {
	k, p := setup(t)
	capital := pred(t, k, "capital")
	// France has TruePop 1.0; Bolivia has none (falls back to 10 bits).
	france := entity(t, k, "France")
	bolivia := entity(t, k, "Bolivia")
	gFrance := expr.NewAtom1(capital, france)
	gBolivia := expr.NewAtom1(capital, bolivia)
	if p.TrueBits(gFrance) >= p.TrueBits(gBolivia) {
		t.Fatal("prominent entity should be cheaper to recall")
	}
}

func TestTrueBitsPenalizesLongShapes(t *testing.T) {
	k, p := setup(t)
	mayor := pred(t, k, "mayor")
	party := pred(t, k, "party")
	socialist := entity(t, k, "Socialist")
	atom := expr.NewAtom1(party, socialist)
	path := expr.NewPath(mayor, party, socialist)
	if p.TrueBits(path) <= p.TrueBits(atom) {
		t.Fatal("path should carry structural penalties over the single atom")
	}
}

func TestExpressionBitsAdditive(t *testing.T) {
	k, p := setup(t)
	in := pred(t, k, "in")
	sa := entity(t, k, "SouthAmerica")
	g := expr.NewAtom1(in, sa)
	e := expr.Expression{g, g}
	if got, want := p.TrueExpressionBits(e), 2*p.TrueBits(g); got != want {
		t.Fatalf("expression bits %f want %f", got, want)
	}
}

func TestUserDeterminism(t *testing.T) {
	k, p := setup(t)
	in := pred(t, k, "in")
	sa := entity(t, k, "SouthAmerica")
	g := expr.NewAtom1(in, sa)

	c1 := NewCohort(p, 7)
	c2 := NewCohort(p, 7)
	u1, u2 := c1.NewUser(), c2.NewUser()
	if u1.PerceivedSubgraph(g) != u2.PerceivedSubgraph(g) {
		t.Fatal("same seeds should produce the same perception")
	}
}

func TestTypeAffinity(t *testing.T) {
	k, p := setup(t)
	typeP := k.TypePredicate()
	if typeP == 0 {
		t.Fatal("tiny KB has no type predicate")
	}
	city := entity(t, k, "Paris") // any entity; we need the class object
	types := k.Types(city)
	if len(types) == 0 {
		t.Fatal("paris has no type")
	}
	gType := expr.NewAtom1(typeP, types[0])

	cohort := NewCohort(p, 3)
	noAffinity := NewCohort(p, 3)
	noAffinity.TypeAffinity = 1.0
	// Same seed, same noise draw: the affinity user must see fewer bits.
	a := cohort.NewUser().PerceivedSubgraph(gType)
	b := noAffinity.NewUser().PerceivedSubgraph(gType)
	if a >= b {
		t.Fatalf("type affinity should lower perceived complexity (%f vs %f)", a, b)
	}
}

func TestRankSubgraphsIsPermutation(t *testing.T) {
	k, p := setup(t)
	in := pred(t, k, "in")
	capital := pred(t, k, "capital")
	cands := []expr.Subgraph{
		expr.NewAtom1(in, entity(t, k, "SouthAmerica")),
		expr.NewAtom1(capital, entity(t, k, "Paris")),
		expr.NewAtom1(in, entity(t, k, "Europe")),
	}
	u := NewCohort(p, 5).NewUser()
	order := u.RankSubgraphs(cands)
	if len(order) != len(cands) {
		t.Fatalf("rank size %d", len(order))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if i < 0 || i >= len(cands) || seen[i] {
			t.Fatalf("bad permutation %v", order)
		}
		seen[i] = true
	}
}

func TestGradeInScale(t *testing.T) {
	k, p := setup(t)
	capital := pred(t, k, "capital")
	france := entity(t, k, "France")
	e := expr.Expression{expr.NewAtom1(capital, france)}
	cohort := NewCohort(p, 11)
	for i := 0; i < 100; i++ {
		g := cohort.NewUser().Grade(e)
		if g < 1 || g > 5 {
			t.Fatalf("grade %d out of scale", g)
		}
	}
}

func TestGradePrefersSimple(t *testing.T) {
	k, p := setup(t)
	capital := pred(t, k, "capital")
	mayor := pred(t, k, "mayor")
	party := pred(t, k, "party")
	france := entity(t, k, "France")
	socialist := entity(t, k, "Socialist")

	simple := expr.Expression{expr.NewAtom1(capital, france)}
	complexE := expr.Expression{
		expr.NewPath(mayor, party, socialist),
		expr.NewAtom1(capital, france),
		expr.NewPath(mayor, party, socialist),
	}
	cohort := NewCohort(p, 13)
	var sumSimple, sumComplex float64
	for i := 0; i < 200; i++ {
		sumSimple += float64(cohort.NewUser().Grade(simple))
		sumComplex += float64(cohort.NewUser().Grade(complexE))
	}
	if sumSimple <= sumComplex {
		t.Fatalf("simple descriptions should grade higher (%f vs %f)", sumSimple/200, sumComplex/200)
	}
}

func TestPreferAgreesWithBitsOnAverage(t *testing.T) {
	k, p := setup(t)
	capital := pred(t, k, "capital")
	mayor := pred(t, k, "mayor")
	party := pred(t, k, "party")
	simple := expr.Expression{expr.NewAtom1(capital, entity(t, k, "France"))}
	complexE := expr.Expression{
		expr.NewPath(mayor, party, entity(t, k, "Socialist")),
		expr.NewAtom1(capital, entity(t, k, "France")),
	}
	cohort := NewCohort(p, 17)
	prefs := 0
	for i := 0; i < 200; i++ {
		if cohort.NewUser().Prefer(simple, complexE) {
			prefs++
		}
	}
	if prefs < 120 {
		t.Fatalf("only %d/200 users prefer the simpler RE", prefs)
	}
}
