// Package study simulates the user cohorts of the paper's qualitative
// evaluation (Sections 4.1.1–4.1.3). The original studies asked computer
// science students, researchers and university staff to rank descriptions by
// simplicity, grade their interestingness, and choose between variants; this
// reproduction replaces the humans with seeded simulated users (see
// DESIGN.md, substitution 3).
//
// Each simulated user perceives a latent "true" intuitiveness of a
// description — derived from the generator's hidden popularity ground truth
// rather than from REMI's own rankings — distorted by per-user lognormal
// noise, plus the type-predicate affinity the paper observed ("people
// usually deem the predicate type the simplest whereas REMI often ranks it
// second or third").
package study

import (
	"math"
	"math/rand"
	"sort"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
)

// Perception is the shared ground-truth model users perceive through noise.
type Perception struct {
	K *kb.KB
	// TruePop maps entity IRIs to latent popularity weights (the
	// generator's hidden ground truth).
	TruePop map[string]float64
	// PredFamiliarity maps predicate ids to a familiarity weight; built by
	// NewPerception from KB frequencies (users know common relations).
	PredFamiliarity []float64

	maxPop  float64
	maxPred float64
}

// NewPerception precomputes the perception model over k.
func NewPerception(k *kb.KB, truePop map[string]float64) *Perception {
	p := &Perception{K: k, TruePop: truePop}
	for _, v := range truePop {
		if v > p.maxPop {
			p.maxPop = v
		}
	}
	if p.maxPop == 0 {
		p.maxPop = 1
	}
	p.PredFamiliarity = make([]float64, k.NumPredicates())
	for i := range p.PredFamiliarity {
		f := float64(k.PredFreq(kb.PredID(i + 1)))
		p.PredFamiliarity[i] = f
		if f > p.maxPred {
			p.maxPred = f
		}
	}
	if p.maxPred == 0 {
		p.maxPred = 1
	}
	return p
}

// entityBits is the ground-truth effort of recalling an entity: popular
// concepts cost few bits; entities without ground truth (literals, blanks)
// cost a flat 10 bits.
func (p *Perception) entityBits(e kb.EntID) float64 {
	t := p.K.Term(e)
	if pop, ok := p.TruePop[t.Value]; ok && pop > 0 {
		return math.Log2(p.maxPop/pop) + 1
	}
	return 10
}

// predBits is the ground-truth effort of recalling a predicate.
func (p *Perception) predBits(pr kb.PredID) float64 {
	base := pr
	if b := p.K.BaseOf(pr); b != 0 {
		base = b
	}
	f := p.PredFamiliarity[base-1]
	if f <= 0 {
		return 8
	}
	return math.Log2(p.maxPred/f) + 1
}

// TrueBits scores a subgraph expression's ground-truth cognitive effort:
// predicate and entity recall effort plus structural penalties for extra
// atoms and existential variables (Section 3.2: longer expressions and
// additional variables make comprehension more effortful).
func (p *Perception) TrueBits(g expr.Subgraph) float64 {
	const atomPenalty = 1.5
	const varPenalty = 2.0
	bits := p.predBits(g.P0)
	switch g.Shape {
	case expr.Atom1:
		bits += p.entityBits(g.I0)
	case expr.Path:
		bits += p.predBits(g.P1) + p.entityBits(g.I1)
	case expr.PathStar:
		bits += p.predBits(g.P1) + p.entityBits(g.I1) + p.predBits(g.P2) + p.entityBits(g.I2)
	case expr.Closed2:
		bits += p.predBits(g.P1)
	case expr.Closed3:
		bits += p.predBits(g.P1) + p.predBits(g.P2)
	}
	bits += atomPenalty * float64(g.Atoms()-1)
	bits += varPenalty * float64(g.Shape.ExtraVariables())
	return bits
}

// TrueExpressionBits scores a full expression.
func (p *Perception) TrueExpressionBits(e expr.Expression) float64 {
	s := 0.0
	for _, g := range e {
		s += p.TrueBits(g)
	}
	return s
}

// User is one simulated participant.
type User struct {
	rng *rand.Rand
	// Sigma is the lognormal noise on perceived bits.
	Sigma float64
	// TypeAffinity scales down the perceived complexity of plain
	// type(x, Class) atoms (users deem the type predicate the simplest).
	TypeAffinity float64
	p            *Perception
}

// Cohort produces users with independent seeded randomness.
type Cohort struct {
	P     *Perception
	Sigma float64
	// TypeAffinity < 1 makes type atoms look simpler to users than their
	// frequency suggests; the paper's first study motivates ~0.45.
	TypeAffinity float64
	rng          *rand.Rand
}

// NewCohort builds a cohort with the default behavioral parameters.
func NewCohort(p *Perception, seed int64) *Cohort {
	return &Cohort{P: p, Sigma: 0.35, TypeAffinity: 0.45, rng: rand.New(rand.NewSource(seed))}
}

// NewUser draws a fresh participant.
func (c *Cohort) NewUser() *User {
	return &User{
		rng:          rand.New(rand.NewSource(c.rng.Int63())),
		Sigma:        c.Sigma,
		TypeAffinity: c.TypeAffinity,
		p:            c.P,
	}
}

// PerceivedSubgraph is the user's noisy simplicity judgment of g (lower =
// simpler).
func (u *User) PerceivedSubgraph(g expr.Subgraph) float64 {
	bits := u.p.TrueBits(g)
	if g.Shape == expr.Atom1 && u.p.K.TypePredicate() != 0 && g.P0 == u.p.K.TypePredicate() {
		bits *= u.TypeAffinity
	}
	return bits * math.Exp(u.rng.NormFloat64()*u.Sigma)
}

// PerceivedExpression is the noisy judgment of a full expression.
func (u *User) PerceivedExpression(e expr.Expression) float64 {
	s := 0.0
	for _, g := range e {
		s += u.PerceivedSubgraph(g)
	}
	return s * math.Exp(u.rng.NormFloat64()*u.Sigma*0.5)
}

// RankSubgraphs returns the indices of candidates ordered from simplest to
// most complex according to the user.
func (u *User) RankSubgraphs(cands []expr.Subgraph) []int {
	scores := make([]float64, len(cands))
	for i, g := range cands {
		scores[i] = u.PerceivedSubgraph(g)
	}
	return rankAsc(scores)
}

// RankExpressions orders full candidate REs from simplest to most complex.
func (u *User) RankExpressions(cands []expr.Expression) []int {
	scores := make([]float64, len(cands))
	for i, e := range cands {
		scores[i] = u.PerceivedExpression(e)
	}
	return rankAsc(scores)
}

func rankAsc(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	return idx
}

// Grade maps an RE to the 1–5 interestingness scale of Section 4.1.3.
// Users reward compact descriptions built from familiar concepts and
// penalize convoluted or obscure ones; the thresholds are calibrated so a
// two-concept description of prominent entities scores ~4 and a three-atom
// chain through unknown entities scores ~1.
func (u *User) Grade(e expr.Expression) int {
	bits := u.PerceivedExpression(e)
	grade := 5.5 - bits/4.5
	grade += u.rng.NormFloat64() * 0.6
	g := int(math.Round(grade))
	if g < 1 {
		g = 1
	}
	if g > 5 {
		g = 5
	}
	return g
}

// Prefer reports whether the user finds a simpler than b.
func (u *User) Prefer(a, b expr.Expression) bool {
	return u.PerceivedExpression(a) < u.PerceivedExpression(b)
}
