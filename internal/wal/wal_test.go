package wal

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/remi-kb/remi/internal/server/faults"
)

// openT fails the test on error and closes the log at cleanup.
func openT(t *testing.T, path string) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func appendAll(t *testing.T, l *Log, payloads ...[]byte) {
	t.Helper()
	for i, p := range payloads {
		if err := l.Append(context.Background(), p); err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
	}
}

func samplePayloads() [][]byte {
	return [][]byte{
		[]byte(`{"op":"upsert","n":1}`),
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 300),
		[]byte(`{"op":"retract","term":"<http://example.org/e>"}`),
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.wal")
	l, rec := openT(t, path)
	if len(rec.Records) != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("fresh log recovered %d records, %d dropped bytes", len(rec.Records), rec.DroppedBytes)
	}
	want := samplePayloads()
	appendAll(t, l, want...)
	if l.Records() != int64(len(want)) {
		t.Fatalf("Records() = %d, want %d", l.Records(), len(want))
	}
	size := l.Size()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, path)
	if rec2.DroppedBytes != 0 {
		t.Fatalf("clean log dropped %d bytes on replay", rec2.DroppedBytes)
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec2.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(rec2.Records[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, rec2.Records[i], want[i])
		}
	}
	if l2.Size() != size {
		t.Fatalf("Size() after replay = %d, want %d", l2.Size(), size)
	}
}

func TestTruncateResetsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.wal")
	l, _ := openT(t, path)
	appendAll(t, l, samplePayloads()...)
	if err := l.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if l.Size() != 0 || l.Records() != 0 {
		t.Fatalf("after Truncate: size=%d records=%d", l.Size(), l.Records())
	}
	appendAll(t, l, []byte("after"))
	l.Close()
	_, rec := openT(t, path)
	if len(rec.Records) != 1 || string(rec.Records[0]) != "after" {
		t.Fatalf("replay after truncate = %q", rec.Records)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	l, _ := openT(t, filepath.Join(t.TempDir(), "kb.wal"))
	err := l.Append(context.Background(), make([]byte, MaxRecordBytes+1))
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append: %v, want ErrRecordTooLarge", err)
	}
}

// TestTornTailTruncated crashes "mid-append" by hand: valid records
// followed by a partial frame. Replay must recover the prefix, truncate
// the tail, and leave the log appendable.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.wal")
	l, _ := openT(t, path)
	want := samplePayloads()
	appendAll(t, l, want...)
	goodSize := l.Size()
	l.Close()

	for _, tail := range [][]byte{
		{0x05},                                // torn length field
		{0x05, 0, 0, 0, 0xAA, 0xBB},           // torn header
		{0x05, 0, 0, 0, 1, 2, 3, 4, 'h', 'i'}, // full header, short payload
	} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(tail)
		f.Close()

		l2, rec := openT(t, path)
		if len(rec.Records) != len(want) {
			t.Fatalf("tail %v: replayed %d records, want %d", tail, len(rec.Records), len(want))
		}
		if rec.DroppedBytes != int64(len(tail)) {
			t.Fatalf("tail %v: dropped %d bytes, want %d", tail, rec.DroppedBytes, len(tail))
		}
		if l2.Size() != goodSize {
			t.Fatalf("tail %v: size %d, want %d", tail, l2.Size(), goodSize)
		}
		l2.Close()
		if st, _ := os.Stat(path); st.Size() != goodSize {
			t.Fatalf("tail %v: file not truncated: %d bytes", tail, st.Size())
		}
	}
}

// TestLargeRecordStreamedReplay covers frames larger than the bounded
// replay buffer: a payload spanning several bufio fills must round-trip
// intact, and a torn tail promising more bytes than the file holds must be
// truncated back to the last consistent boundary.
func TestLargeRecordStreamedReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.wal")
	l, _ := openT(t, path)
	big := bytes.Repeat([]byte{0xC7}, 3<<20) // 3 MB > the 1 MB replay buffer
	want := [][]byte{[]byte("head"), big, []byte("tail")}
	appendAll(t, l, want...)
	goodSize := l.Size()
	l.Close()

	l2, rec := openT(t, path)
	if rec.DroppedBytes != 0 || len(rec.Records) != len(want) {
		t.Fatalf("clean replay: %d records, %d dropped", len(rec.Records), rec.DroppedBytes)
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d corrupted by streamed replay", i)
		}
	}
	l2.Close()

	// A header promising a 2 MB payload with only 1000 bytes behind it:
	// torn mid-payload, below MaxRecordBytes, spanning buffer refills.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:], 2<<20)
	binary.LittleEndian.PutUint32(hdr[4:], 0xDEADBEEF)
	f.Write(hdr[:])
	f.Write(bytes.Repeat([]byte{1}, 1000))
	f.Close()

	l3, rec3 := openT(t, path)
	if len(rec3.Records) != len(want) {
		t.Fatalf("torn big tail: replayed %d records, want %d", len(rec3.Records), len(want))
	}
	if rec3.DroppedBytes != headerSize+1000 {
		t.Fatalf("torn big tail: dropped %d bytes, want %d", rec3.DroppedBytes, headerSize+1000)
	}
	if l3.Size() != goodSize {
		t.Fatalf("torn big tail: size %d, want %d", l3.Size(), goodSize)
	}
	l3.Close()
	if st, _ := os.Stat(path); st.Size() != goodSize {
		t.Fatalf("torn big tail: file not truncated: %d bytes", st.Size())
	}
}

// TestBitFlipSweep flips every bit of a small log, one at a time, and
// asserts replay never panics and always recovers a consistent prefix of
// the original records.
func TestBitFlipSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.wal")
	l, _ := openT(t, path)
	want := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("g")}
	appendAll(t, l, want...)
	l.Close()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for pos := 0; pos < len(orig); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), orig...)
			mut[pos] ^= 1 << bit
			p := filepath.Join(dir, "flip.wal")
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			l2, rec, err := Open(p)
			if err != nil {
				t.Fatalf("flip %d.%d: Open: %v", pos, bit, err)
			}
			assertPrefix(t, fmt.Sprintf("flip %d.%d", pos, bit), rec.Records, want)
			l2.Close()

			// Recovery must be stable: a second open of the truncated
			// file replays the same records and drops nothing.
			l3, rec2, err := Open(p)
			if err != nil {
				t.Fatalf("flip %d.%d: reopen: %v", pos, bit, err)
			}
			if rec2.DroppedBytes != 0 || len(rec2.Records) != len(rec.Records) {
				t.Fatalf("flip %d.%d: recovery not idempotent: %d records, %d dropped",
					pos, bit, len(rec2.Records), rec2.DroppedBytes)
			}
			l3.Close()
		}
	}
}

// TestTruncationSweep cuts the log at every byte length and asserts each
// cut recovers a consistent prefix.
func TestTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.wal")
	l, _ := openT(t, path)
	want := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("g")}
	appendAll(t, l, want...)
	l.Close()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(orig); cut++ {
		p := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(p, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(p)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		assertPrefix(t, fmt.Sprintf("cut %d", cut), rec.Records, want)
		// A cut exactly on a record boundary must lose nothing.
		if wholeRecords := boundaryCount(orig, cut); wholeRecords >= 0 && len(rec.Records) != wholeRecords {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), wholeRecords)
		}
		l2.Close()
	}
}

// boundaryCount returns how many whole records fit exactly in cut bytes,
// or -1 when cut is not a record boundary of the original file.
func boundaryCount(orig []byte, cut int) int {
	off, n := 0, 0
	for off < cut {
		if cut-off < headerSize {
			return -1
		}
		recLen := int(orig[off]) | int(orig[off+1])<<8 | int(orig[off+2])<<16 | int(orig[off+3])<<24
		off += headerSize + recLen
		n++
	}
	if off != cut {
		return -1
	}
	return n
}

func assertPrefix(t *testing.T, label string, got, want [][]byte) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: recovered %d records from a %d-record log", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: record %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

func TestTornFaultRefusesAndRecovers(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "kb.wal")
	l, _ := openT(t, path)
	appendAll(t, l, []byte("acked-1"), []byte("acked-2"))

	boom := errors.New("disk died mid-write")
	disarm := faults.Arm(faults.WalTorn, faults.Injection{Err: boom})
	if err := l.Append(context.Background(), []byte("never-acked")); !errors.Is(err, boom) {
		t.Fatalf("torn append: %v, want %v", err, boom)
	}
	disarm()
	if faults.Hits(faults.WalTorn) != 0 { // disarmed points report 0
		t.Fatalf("Hits after disarm = %d", faults.Hits(faults.WalTorn))
	}

	// The handle is dead: the torn bytes are on disk and only a reopen
	// may touch the file again.
	if err := l.Append(context.Background(), []byte("x")); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after torn: %v, want ErrLogFailed", err)
	}
	l.Close()

	l2, rec := openT(t, path)
	if len(rec.Records) != 2 || rec.DroppedBytes == 0 {
		t.Fatalf("recovery after torn append: %d records, %d dropped", len(rec.Records), rec.DroppedBytes)
	}
	appendAll(t, l2, []byte("acked-3"))
	l2.Close()
	_, rec2 := openT(t, path)
	if len(rec2.Records) != 3 || string(rec2.Records[2]) != "acked-3" {
		t.Fatalf("replay after recovery = %q", rec2.Records)
	}
}

func TestSyncFaultLeavesLogUsable(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "kb.wal")
	l, _ := openT(t, path)
	appendAll(t, l, []byte("acked-1"))

	boom := errors.New("fsync: no space left on device")
	disarm := faults.Arm(faults.WalSync, faults.Injection{Err: boom})
	if err := l.Append(context.Background(), []byte("unacked")); !errors.Is(err, boom) {
		t.Fatalf("sync-failed append: %v, want %v", err, boom)
	}
	disarm()

	// Unlike a torn write the frame is intact, so the log keeps working
	// and replay sees a consistent sequence (the unacked record simply
	// was never promised).
	appendAll(t, l, []byte("acked-2"))
	l.Close()
	_, rec := openT(t, path)
	if len(rec.Records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(rec.Records))
	}
	if string(rec.Records[0]) != "acked-1" || string(rec.Records[2]) != "acked-2" {
		t.Fatalf("replay = %q", rec.Records)
	}
}

// FuzzReplay feeds arbitrary bytes to Open as a log file: it must never
// panic, and recovery must be idempotent (a second open drops nothing).
func FuzzReplay(f *testing.F) {
	l, _, err := Open(filepath.Join(f.TempDir(), "seed.wal"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range samplePayloads() {
		l.Append(context.Background(), p)
	}
	seed, _ := os.ReadFile(l.Path())
	l.Close()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l1, rec1, err := Open(path)
		if err != nil {
			t.Skipf("open: %v", err)
		}
		l1.Close()
		l2, rec2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if rec2.DroppedBytes != 0 || len(rec2.Records) != len(rec1.Records) {
			t.Fatalf("recovery not idempotent: first %d records, second %d records (%d dropped)",
				len(rec1.Records), len(rec2.Records), rec2.DroppedBytes)
		}
	})
}

// FuzzRecordRoundTrip appends an arbitrary payload and replays it back.
func FuzzRecordRoundTrip(f *testing.F) {
	for _, p := range samplePayloads() {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		path := filepath.Join(t.TempDir(), "rt.wal")
		l, _, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(context.Background(), payload); err != nil {
			if errors.Is(err, ErrRecordTooLarge) {
				return
			}
			t.Fatal(err)
		}
		l.Close()
		_, rec, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], payload) {
			t.Fatalf("round trip = %q, want %q", rec.Records, payload)
		}
	})
}
