// Package wal implements the write-ahead log that makes live KB mutations
// durable: an append-only file of length-prefixed, CRC-checked records
// where an append is acknowledged only after fsync returns.
//
// The recovery contract is the whole point of the format. Open replays the
// longest consistent prefix of the file — every record whose frame is
// complete and whose checksum matches — and truncates whatever follows
// (a torn tail from a crash mid-append, a corrupt record from bit rot)
// instead of refusing to start. Because an append is only acknowledged
// after fsync, everything acknowledged is in that prefix; everything in
// the truncated tail was never acknowledged, so dropping it loses nothing
// the caller was promised.
//
// Record frame: a 4-byte little-endian payload length, a 4-byte
// little-endian IEEE CRC32 of the payload, then the payload bytes.
// Payload semantics belong to the caller; the log stores opaque bytes.
package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"github.com/remi-kb/remi/internal/server/faults"
)

// headerSize is the per-record frame overhead: length + CRC32.
const headerSize = 8

// MaxRecordBytes caps a single record's payload. It exists to reject
// corrupt appends, not to size anything: admin mutation batches are
// orders of magnitude smaller.
const MaxRecordBytes = 64 << 20

// ErrLogFailed marks a log that hit an unrecoverable append failure (a
// torn write whose tail is on disk, a rollback that itself failed). The
// log refuses further appends; reopening the path runs recovery and
// yields a clean log.
var ErrLogFailed = errors.New("wal: log failed, reopen to recover")

// ErrRecordTooLarge rejects an Append payload above MaxRecordBytes.
var ErrRecordTooLarge = errors.New("wal: record exceeds size cap")

// Recovery reports what Open found: the replayed payloads (the longest
// consistent prefix of the file) and how many trailing bytes were
// truncated as torn or corrupt.
type Recovery struct {
	// Records holds the payload of every recovered record, in append
	// order.
	Records [][]byte
	// DroppedBytes counts the torn/corrupt tail bytes Open truncated;
	// zero for a clean log.
	DroppedBytes int64
}

// Log is an append-only write-ahead log bound to one file. Appends are
// serialized internally; one Log per path, one writer per Log.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64 // validated length: every byte below it is consistent
	records int64
	failed  bool
}

// Open opens (creating if absent) the log at path, replays its records
// and truncates any torn or corrupt tail so the file ends at the last
// consistent record. The returned Recovery holds the replayed payloads;
// the caller applies them before appending anything new.
func Open(path string) (*Log, *Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	fileSize := st.Size()

	// Replay streams frame by frame through a bounded reader: peak memory
	// during recovery is one record, not the whole file (a compaction-starved
	// log can be far larger than RAM would like). A short read at a frame
	// boundary is a torn tail; any other read error aborts the open — it is
	// an I/O fault, not corruption, and truncating on it would destroy data.
	rec := &Recovery{}
	br := bufio.NewReaderSize(f, 1<<20)
	var off int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // clean end or torn header
			}
			f.Close()
			return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n > MaxRecordBytes || off+headerSize+n > fileSize {
			break // length corrupt or frame torn mid-payload
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // file shrank under us; treat as torn
			}
			f.Close()
			return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // payload corrupt; everything after is untrusted
		}
		rec.Records = append(rec.Records, payload)
		off += headerSize + n
	}
	rec.DroppedBytes = fileSize - off
	if rec.DroppedBytes > 0 {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return &Log{f: f, path: path, size: int64(off), records: int64(len(rec.Records))}, rec, nil
}

// Append writes one record and syncs it to stable storage. A nil return
// is the acknowledgement: the record survives any crash after this point.
// A non-nil return promises nothing either way — the record may or may
// not surface on replay, which is correct exactly because the caller must
// not report the mutation as applied.
func (l *Log) Append(ctx context.Context, payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal %s: %w (%d bytes)", l.path, ErrRecordTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed {
		return fmt.Errorf("wal %s: %w", l.path, ErrLogFailed)
	}

	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)

	if err := faults.Fire(ctx, faults.WalTorn); err != nil {
		// Crash mid-append: a strict prefix of the frame reaches the disk
		// and the process "dies". The in-process handle refuses further
		// appends — only a reopen (which truncates the torn tail) may
		// write here again.
		torn := frame[:headerSize+len(payload)/2]
		l.f.Write(torn)
		l.f.Sync()
		l.failed = true
		return fmt.Errorf("wal %s: append: %w", l.path, err)
	}

	if _, err := l.f.Write(frame); err != nil {
		// Roll the file back to the last consistent record so the next
		// append lands on a clean boundary; if even that fails, the log
		// is done until reopened.
		if l.f.Truncate(l.size) != nil {
			l.failed = true
		} else if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
			l.failed = true
		}
		return fmt.Errorf("wal %s: write: %w", l.path, err)
	}

	err := faults.Fire(ctx, faults.WalSync)
	if err == nil {
		err = l.f.Sync()
	}
	// The frame is intact on disk either way, so the offset stays
	// consistent; on a sync failure the record simply was never
	// acknowledged, and replay surfacing it is as correct as not.
	l.size += int64(len(frame))
	l.records++
	if err != nil {
		return fmt.Errorf("wal %s: sync: %w", l.path, err)
	}
	return nil
}

// Truncate discards every record — called after a compaction has folded
// the log's contents into a durable snapshot. The truncation itself is
// synced before returning.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal %s: truncate: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.failed = true
		return fmt.Errorf("wal %s: seek: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal %s: sync: %w", l.path, err)
	}
	l.size, l.records, l.failed = 0, 0, false
	return nil
}

// Size reports the consistent byte length of the log.
func (l *Log) Size() int64 { l.mu.Lock(); defer l.mu.Unlock(); return l.size }

// Records reports how many records the log holds (replayed + appended).
func (l *Log) Records() int64 { l.mu.Lock(); defer l.mu.Unlock(); return l.records }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the file handle. It does not sync: every acknowledged
// append already did.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	l.failed = true
	return err
}
