package core

import "github.com/remi-kb/remi/internal/expr"

// EventKind classifies search-trace events (used by the Figure 1
// walk-through example and the algorithm tests).
type EventKind int

const (
	// EventVisit fires when a node of the search tree is tested.
	EventVisit EventKind = iota
	// EventRE fires when the tested expression is a referring expression.
	EventRE
	// EventPruneSide fires when later siblings are skipped after an RE.
	EventPruneSide
	// EventPruneCost fires when a branch is abandoned because its minimum
	// cost already exceeds the incumbent solution.
	EventPruneCost
	// EventNewBest fires when the incumbent solution improves.
	EventNewBest
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventVisit:
		return "visit"
	case EventRE:
		return "re"
	case EventPruneSide:
		return "prune-side"
	case EventPruneCost:
		return "prune-cost"
	case EventNewBest:
		return "new-best"
	default:
		return "event"
	}
}

// Event is one step of the DFS exploration.
type Event struct {
	Kind       EventKind
	Expression expr.Expression
	Cost       float64
}

// TraceFunc receives search events; it must not retain the expression
// beyond the call unless it copies it (Miner already passes clones).
type TraceFunc func(Event)

// EventMask selects which event kinds a TraceFunc receives. The zero mask
// delivers everything (the historical behavior); build narrower masks with
// MaskOf. Masked-out events are suppressed before the per-event expression
// Clone, so a progress-only subscriber (say, EventNewBest for a streaming
// client) costs no per-node allocations on the search hot path.
type EventMask uint32

// MaskOf builds the mask delivering exactly the given kinds.
func MaskOf(kinds ...EventKind) EventMask {
	var m EventMask
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// Wants reports whether the mask delivers events of kind k (the zero mask
// delivers all kinds).
func (m EventMask) Wants(k EventKind) bool {
	return m == 0 || m&(1<<uint(k)) != 0
}
