package core

import (
	"math"
	"testing"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
)

// TestLiteralAlg2CanBeSuboptimal documents the single-consumption behavior
// of the verbatim Algorithm 2 (see DESIGN.md §6.1): when ρ1∧ρ2 is not an RE
// but both ρ1∧ρ2∧ρ3 and ρ1∧ρ3 are, the linear scan finds the former and
// cannot go back for the cheaper latter. The tree-complete DFS finds the
// optimum. The test constructs exactly that configuration and asserts the
// tree DFS is never worse — and that when the pathology triggers, the two
// variants disagree in the expected direction.
func TestLiteralAlg2CanBeSuboptimal(t *testing.T) {
	// Targets T = {a}. Candidate subexpressions (by increasing cost):
	//   ρ1 = p(x, v)  matches {a, b, c}
	//   ρ2 = q(x, w)  matches {a, b}
	//   ρ3 = r(x, u)  matches {a, d}
	// ρ1∧ρ2 = {a,b} (not RE); ρ1∧ρ2∧ρ3 = {a} (RE); ρ1∧ρ3 = {a} (RE, cheaper).
	// Costs must order Ĉ(ρ1) ≤ Ĉ(ρ2) ≤ Ĉ(ρ3): give p more facts than q, and
	// q more than r.
	k := buildSmall(t, [][3]string{
		{"a", "p", "v"}, {"b", "p", "v"}, {"c", "p", "v"},
		{"x1", "p", "z1"}, {"x2", "p", "z2"}, // pad p's frequency
		{"a", "q", "w"}, {"b", "q", "w"},
		{"x1", "q", "z3"}, // pad q
		{"a", "r", "u"}, {"d", "r", "u"},
	})
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)
	a := k.MustEntityID("http://e/a")

	mine := func(literal bool) *Result {
		cfg := DefaultConfig()
		cfg.ProminentCutoff = 0 // keep every candidate
		cfg.LiteralAlg2 = literal
		m := NewMiner(k, est, cfg)
		res, err := m.Mine([]kb.EntID{a})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	tree := mine(false)
	lit := mine(true)
	if !tree.Found() || !lit.Found() {
		t.Fatalf("both variants must find an RE (tree %v, literal %v)", tree.Found(), lit.Found())
	}
	if tree.Bits > lit.Bits+1e-9 {
		t.Fatalf("tree DFS (%f bits, %s) worse than literal Alg2 (%f bits, %s)",
			tree.Bits, tree.Expression.Format(k), lit.Bits, lit.Expression.Format(k))
	}
	// The optimum here uses 2 subgraph expressions at most (ρ_x alone could
	// be an RE via q/r single atoms; verify the tree result is a strict RE).
	ev := expr.NewEvaluator(k, 64)
	if !ev.IsRE(tree.Expression, []kb.EntID{a}) {
		t.Fatalf("tree result not an RE: %s", tree.Expression.Format(k))
	}
	if math.IsInf(tree.Bits, 1) {
		t.Fatal("tree result has infinite cost")
	}
}

// TestQueueOrderAblation: with an unsorted queue the result must still be
// Ĉ-minimal (the cost bound guarantees it), only slower — this pins the
// correctness half of the queue-order ablation.
func TestQueueOrderAblation(t *testing.T) {
	k, est := tinySetup(t)
	targets := []kb.EntID{mustID(t, k, "Guyana"), mustID(t, k, "Suriname")}

	sorted := DefaultConfig()
	unsorted := DefaultConfig()
	unsorted.UnsortedQueue = true

	rs, err := NewMiner(k, est, sorted).Mine(targets)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := NewMiner(k, est, unsorted).Mine(targets)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Found() != ru.Found() {
		t.Fatal("queue order changed feasibility")
	}
	if rs.Found() && math.Abs(rs.Bits-ru.Bits) > 1e-9 {
		t.Fatalf("queue order changed the optimum: %f vs %f", rs.Bits, ru.Bits)
	}
}

// TestCacheDisabledStillCorrect pins the cache ablation's correctness half.
func TestCacheDisabledStillCorrect(t *testing.T) {
	k, est := tinySetup(t)
	targets := []kb.EntID{mustID(t, k, "Rennes"), mustID(t, k, "Nantes")}

	withCache := DefaultConfig()
	noCache := DefaultConfig()
	noCache.CacheSize = -1

	rc, err := NewMiner(k, est, withCache).Mine(targets)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := NewMiner(k, est, noCache).Mine(targets)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Found() != rn.Found() || math.Abs(rc.Bits-rn.Bits) > 1e-9 {
		t.Fatal("cache changed the result")
	}
	if rn.Stats.CacheHits != 0 {
		t.Fatalf("disabled cache reported %d hits", rn.Stats.CacheHits)
	}
}
