package core

import (
	"strings"
	"testing"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// buildSmall constructs a KB from triples given as [s p o] triplets; objects
// starting with "_" become blank nodes, with `"` literals.
func buildSmall(t testing.TB, triples [][3]string) *kb.KB {
	t.Helper()
	b := kb.NewBuilder()
	term := func(v string) rdf.Term {
		switch {
		case strings.HasPrefix(v, "_"):
			return rdf.NewBlank(v[1:])
		case strings.HasPrefix(v, `"`):
			return rdf.NewLiteral(v[1:])
		default:
			return rdf.NewIRI("http://e/" + v)
		}
	}
	for _, tr := range triples {
		if err := b.Add(rdf.Triple{S: term(tr[0]), P: rdf.NewIRI("http://e/" + tr[1]), O: term(tr[2])}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(kb.Options{})
}

// TestShapesTable1 verifies the enumerator produces exactly the shapes of
// Table 1 on a KB crafted to exhibit each.
func TestShapesTable1(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"t", "p", "y"},
		{"y", "q", "i1"},
		{"y", "r", "i2"},
		{"t", "p2", "y"},
		{"t", "p3", "y"},
	})
	tID := k.MustEntityID("http://e/t")
	counts := SubgraphCounts(k, tID, EnumerateOptions{Language: ExtendedLanguage})

	// Atom1: p(t,y), p2(t,y), p3(t,y) → 3.
	if counts[expr.Atom1] != 3 {
		t.Errorf("Atom1 = %d want 3", counts[expr.Atom1])
	}
	// Paths: {p,p2,p3}(x,·) × {q(y,i1), r(y,i2)} → 6.
	if counts[expr.Path] != 6 {
		t.Errorf("Path = %d want 6", counts[expr.Path])
	}
	// Path+star: {p,p2,p3} × {q-i1 with r-i2} → 3.
	if counts[expr.PathStar] != 3 {
		t.Errorf("PathStar = %d want 3", counts[expr.PathStar])
	}
	// Closed2: pairs of {p,p2,p3} → 3; Closed3: 1.
	if counts[expr.Closed2] != 3 {
		t.Errorf("Closed2 = %d want 3", counts[expr.Closed2])
	}
	if counts[expr.Closed3] != 1 {
		t.Errorf("Closed3 = %d want 1", counts[expr.Closed3])
	}
}

func TestStandardLanguageOnlyAtoms(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"t", "p", "y"}, {"y", "q", "i1"},
	})
	tID := k.MustEntityID("http://e/t")
	subs := SubgraphsOf(k, tID, EnumerateOptions{Language: StandardLanguage})
	for _, g := range subs {
		if g.Shape != expr.Atom1 {
			t.Fatalf("standard language produced %v", g.Shape)
		}
	}
	if len(subs) != 1 {
		t.Fatalf("got %d atoms, want 1", len(subs))
	}
}

// TestBlankNodeHandling: atoms with blank objects are skipped, but paths
// through blank nodes ("hiding" them) are derived (Section 3.5.2).
func TestBlankNodeHandling(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"t", "career", "_b1"},
		{"_b1", "team", "acme"},
		{"_b1", "other", "_b2"}, // blank tail must not appear
	})
	tID := k.MustEntityID("http://e/t")
	subs := SubgraphsOf(k, tID, EnumerateOptions{Language: ExtendedLanguage})
	var atoms, paths int
	for _, g := range subs {
		switch g.Shape {
		case expr.Atom1:
			atoms++
		case expr.Path:
			paths++
			if k.IsBlank(g.I1) {
				t.Fatal("blank node leaked into a path tail")
			}
		}
	}
	if atoms != 0 {
		t.Fatalf("blank-object atom derived (%d)", atoms)
	}
	if paths != 1 {
		t.Fatalf("hidden-blank path count = %d want 1 (career→team→acme)", paths)
	}
}

// TestProminentCutoffBlocksExpansion: atoms whose object is in the
// prominent set are not expanded into multi-atom shapes.
func TestProminentCutoffBlocksExpansion(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"t", "p", "hub"},
		{"hub", "q", "i1"},
	})
	tID := k.MustEntityID("http://e/t")
	hub := k.MustEntityID("http://e/hub")

	withCutoff := SubgraphsOf(k, tID, EnumerateOptions{
		Language:  ExtendedLanguage,
		Prominent: kb.EntSetFromMap(map[kb.EntID]bool{hub: true}, k.NumEntities()),
	})
	for _, g := range withCutoff {
		if g.Shape == expr.Path {
			t.Fatalf("path derived through a prominent object: %+v", g)
		}
	}
	without := SubgraphsOf(k, tID, EnumerateOptions{Language: ExtendedLanguage})
	foundPath := false
	for _, g := range without {
		if g.Shape == expr.Path {
			foundPath = true
		}
	}
	if !foundPath {
		t.Fatal("path missing without the cutoff")
	}
}

// TestLiteralTailsExcluded: literals may be Atom1 objects but never path or
// star tails.
func TestLiteralTailsExcluded(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"t", "p", "y"},
		{"y", "label", `"some name`},
		{"t", "pop", `"12345`},
	})
	tID := k.MustEntityID("http://e/t")
	subs := SubgraphsOf(k, tID, EnumerateOptions{Language: ExtendedLanguage})
	var atomLits, pathCount int
	for _, g := range subs {
		switch g.Shape {
		case expr.Atom1:
			if k.IsLiteral(g.I0) {
				atomLits++
			}
		case expr.Path, expr.PathStar:
			pathCount++
		}
	}
	if atomLits != 1 {
		t.Fatalf("literal Atom1 count = %d want 1", atomLits)
	}
	if pathCount != 0 {
		t.Fatalf("literal-tailed paths derived: %d", pathCount)
	}
}

func TestSkipPredicate(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"t", "keep", "a"},
		{"t", "drop", "b"},
	})
	tID := k.MustEntityID("http://e/t")
	drop := k.MustPredicateID("http://e/drop")
	subs := SubgraphsOf(k, tID, EnumerateOptions{
		Language:      ExtendedLanguage,
		SkipPredicate: func(p kb.PredID) bool { return p == drop },
	})
	for _, g := range subs {
		if g.P0 == drop || g.P1 == drop || g.P2 == drop {
			t.Fatalf("skipped predicate appeared: %+v", g)
		}
	}
	if len(subs) != 1 {
		t.Fatalf("got %d subgraphs want 1", len(subs))
	}
}

// TestCommonSubgraphsIntersection: only subgraphs holding for every target
// survive.
func TestCommonSubgraphsIntersection(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"a", "p", "v"}, {"a", "q", "w"},
		{"b", "p", "v"}, {"b", "r", "u"},
	})
	a := k.MustEntityID("http://e/a")
	bID := k.MustEntityID("http://e/b")
	common := CommonSubgraphs(k, []kb.EntID{a, bID}, EnumerateOptions{Language: ExtendedLanguage})
	if len(common) != 1 {
		t.Fatalf("common = %d want 1 (p(x,v))", len(common))
	}
	if common[0].Shape != expr.Atom1 || common[0].P0 != k.MustPredicateID("http://e/p") {
		t.Fatalf("wrong common subgraph %+v", common[0])
	}
}

// TestSelfLoopSkipped: p(t, t) must not be expanded into paths through t
// itself.
func TestSelfLoopSkipped(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"t", "p", "t"},
		{"t", "q", "other"},
	})
	tID := k.MustEntityID("http://e/t")
	subs := SubgraphsOf(k, tID, EnumerateOptions{Language: ExtendedLanguage})
	for _, g := range subs {
		if g.Shape == expr.Path && g.P0 == k.MustPredicateID("http://e/p") && g.P1 == g.P0 {
			t.Fatalf("self-loop expanded: %+v", g)
		}
	}
}

// TestMaxStarsPerPathCap bounds the quadratic star derivation.
func TestMaxStarsPerPathCap(t *testing.T) {
	triples := [][3]string{{"t", "p", "y"}}
	tails := []string{"a", "b", "c", "d", "e", "f"}
	for i, o := range tails {
		triples = append(triples, [3]string{"y", "q" + tails[i], o})
	}
	k := buildSmall(t, triples)
	tID := k.MustEntityID("http://e/t")

	unbounded := SubgraphCounts(k, tID, EnumerateOptions{Language: ExtendedLanguage})
	if unbounded[expr.PathStar] != 15 { // C(6,2)
		t.Fatalf("unbounded stars = %d want 15", unbounded[expr.PathStar])
	}
	capped := SubgraphCounts(k, tID, EnumerateOptions{Language: ExtendedLanguage, MaxStarsPerPath: 4})
	if capped[expr.PathStar] > 4 {
		t.Fatalf("capped stars = %d want ≤ 4", capped[expr.PathStar])
	}
}

// TestCensusMonotone: widening the bias never shrinks the census.
func TestCensusMonotone(t *testing.T) {
	d := datagen.TinyGeo()
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	paris, _ := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/Paris"))
	c2 := Census(k, paris, CensusBias{MaxAtoms: 2, MaxExtraVars: 1}, nil)
	c3 := Census(k, paris, CensusBias{MaxAtoms: 3, MaxExtraVars: 1}, nil)
	c3v2 := Census(k, paris, CensusBias{MaxAtoms: 3, MaxExtraVars: 2}, nil)
	if !(c2 <= c3 && c3 <= c3v2) {
		t.Fatalf("census not monotone: %d %d %d", c2, c3, c3v2)
	}
}

// TestFigure1TraceSequence replays the Figure 1 exploration and checks the
// structural properties of the event stream: the queue is visited in
// ascending cost order at the top level, an RE event always follows a visit
// of the same expression, and the final best equals the cheapest RE seen.
func TestFigure1TraceSequence(t *testing.T) {
	k, est := tinySetup(t)
	cfg := DefaultConfig()
	var events []Event
	cfg.Trace = func(e Event) { events = append(events, e) }
	m := NewMiner(k, est, cfg)

	rennes, _ := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/Rennes"))
	nantes, _ := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/Nantes"))
	res, err := m.Mine([]kb.EntID{rennes, nantes})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("no RE")
	}

	bestSeen := -1.0
	minRE := -1.0
	var lastVisitKey string
	for _, ev := range events {
		switch ev.Kind {
		case EventVisit:
			lastVisitKey = ev.Expression.Key()
		case EventRE:
			if ev.Expression.Key() != lastVisitKey {
				t.Fatal("RE event without a matching visit")
			}
			if minRE < 0 || ev.Cost < minRE {
				minRE = ev.Cost
			}
		case EventNewBest:
			if bestSeen >= 0 && ev.Cost >= bestSeen {
				t.Fatal("best did not improve monotonically")
			}
			bestSeen = ev.Cost
		}
	}
	if bestSeen < 0 {
		t.Fatal("no best event")
	}
	if res.Bits != bestSeen || res.Bits != minRE {
		t.Fatalf("final %f, best event %f, min RE %f", res.Bits, bestSeen, minRE)
	}
}
