package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/remi-kb/remi/internal/bindset"
	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
)

// ErrNoTargets is returned when Mine is called with an empty target set.
var ErrNoTargets = errors.New("core: no target entities")

// Config tunes the miner. Start from DefaultConfig.
type Config struct {
	Language Language
	// ProminentCutoff is the fraction of top-frequency entities whose atoms
	// are not expanded (Section 3.5.2; the paper uses 5%).
	ProminentCutoff float64
	// CacheSize is the LRU capacity (in binding sets) of the query cache.
	CacheSize int
	// Timeout bounds one Mine call; zero means no limit. It composes with
	// the context passed to MineContext: the search stops at whichever of
	// the two ends first, and both are reported as Stats.TimedOut.
	Timeout time.Duration
	// Workers is the number of P-REMI threads; values <= 1 select the
	// sequential REMI.
	Workers int
	// MaxCandidates caps the priority queue as a safety valve (0 = no cap;
	// candidates are cost-sorted first, so the cheapest survive).
	MaxCandidates int
	// LiteralAlg2 switches DFS-REMI to the literal, single-consumption
	// pseudocode of Algorithm 2 instead of the tree-complete DFS that the
	// Figure 1 narrative describes (see DESIGN.md); kept for ablations.
	LiteralAlg2 bool
	// MaxStarsPerPath caps star derivations per intermediate entity.
	MaxStarsPerPath int
	// UnsortedQueue skips the cost sort of the priority queue (line 2 of
	// Algorithm 1) and explores candidates in enumeration order. The result
	// is still the least complex RE (the cost bound guarantees it), but the
	// DFS prunings lose their power — kept for the queue-order ablation.
	UnsortedQueue bool
	// MaxExceptions relaxes the unambiguity constraint (the paper's §6
	// future work: "relax the unambiguity constraint to mine REs with
	// exceptions"): a returned expression must still match every target but
	// may match up to MaxExceptions extra entities. Zero mines strict REs.
	MaxExceptions int
	// TopK asks the miner to keep the K least complex REs instead of only
	// the best one (Result.Solutions). Values <= 1 mine a single solution
	// with full pruning; K > 1 relaxes side pruning so that diverse
	// alternatives survive (used by the Section 4.1.2 study, which shows
	// users several REs encountered during search-space traversal).
	TopK int
	// ParallelQueueMinProbes is the floor on candidate·extra-target HoldsFor
	// probes below which buildQueue stays sequential: under it, the
	// goroutine fan-out costs more than it saves. Zero selects the built-in
	// default (4096), which was tuned on a 1-CPU container where the
	// parallel path never engages at benchmark scale — deployments on
	// many-core machines should re-tune this against their own workload
	// (lower it to engage the fan-out earlier). Negative values disable the
	// parallel queue build outright. The queue is byte-identical either way;
	// only the build time changes.
	ParallelQueueMinProbes int
	// Trace receives search events when non-nil (used by the Figure 1
	// walk-through); honored by the sequential miner only.
	Trace TraceFunc
	// TraceMask narrows which event kinds Trace receives; the zero mask
	// delivers everything. Progress-only subscribers (e.g. streaming
	// clients that just want EventNewBest) should set a narrow mask: the
	// miner skips the per-event expression Clone for masked-out kinds, so
	// a narrow mask keeps the per-node hot path allocation-free.
	TraceMask EventMask
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		Language:        ExtendedLanguage,
		ProminentCutoff: 0.05,
		CacheSize:       1 << 16,
		Workers:         1,
	}
}

// Stats describes one Mine run.
type Stats struct {
	Candidates  int           // size of the priority queue (line 2, Alg. 1)
	QueueBuild  time.Duration // phase 1: enumeration + sorting
	Search      time.Duration // phase 2: DFS exploration
	RETests     uint64        // expression evaluations against the KB
	Visited     uint64        // search-tree nodes visited
	PrunedDepth uint64        // prunings by depth
	PrunedSide  uint64        // side prunings
	PrunedCost  uint64        // cost-bound prunings (Ĉ(e') ≥ Ĉ(best))
	// TimedOut reports that the search stopped early, whether because
	// Config.Timeout elapsed or because the caller's context was cancelled.
	TimedOut bool
	// CacheHits and CacheMisses come from the evaluator's query cache. The
	// evaluator is shared by every P-REMI worker, so per-worker Stats carry
	// zeros here; Mine fills both fields once from the shared evaluator
	// after the search.
	CacheHits   uint64
	CacheMisses uint64
}

// add merges per-worker stats. CacheHits/CacheMisses are merged too for
// completeness, although per-worker values are always zero (see the field
// comment): the shared evaluator is the single source of cache truth.
func (s *Stats) add(o *Stats) {
	s.RETests += o.RETests
	s.Visited += o.Visited
	s.PrunedDepth += o.PrunedDepth
	s.PrunedSide += o.PrunedSide
	s.PrunedCost += o.PrunedCost
	s.TimedOut = s.TimedOut || o.TimedOut
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Result is the outcome of a Mine call.
type Result struct {
	// Expression is the least complex RE found, or nil when no RE exists
	// for the targets in the KB (the ⊤ outcome of Algorithm 1).
	Expression expr.Expression
	// Bits is Ĉ(Expression) (infinite when Expression is nil).
	Bits float64
	// Solutions holds the Config.TopK least complex REs found, best first
	// (Solutions[0] corresponds to Expression).
	Solutions []Solution
	Stats     Stats
}

// Found reports whether an RE was found.
func (r *Result) Found() bool { return len(r.Expression) > 0 }

// Solution pairs a found RE with its complexity.
type Solution struct {
	Expression expr.Expression
	Bits       float64
}

// bound is the set of best solutions found so far, shared by every
// exploration thread in P-REMI ("the least complex solution e can be read
// and written by all threads", Section 3.4). With k > 1 it keeps the k
// cheapest distinct REs.
type bound struct {
	mu   sync.Mutex
	k    int
	sols []Solution
	keys map[string]bool
}

func newBound(k int) *bound {
	if k < 1 {
		k = 1
	}
	return &bound{k: k} // keys is made lazily on the first insert
}

// Cost returns the pruning threshold: the cost of the k-th best solution,
// or +Inf while fewer than k solutions are known.
func (b *bound) Cost() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.sols) < b.k {
		return complexity.Infinite
	}
	return b.sols[len(b.sols)-1].Bits
}

// Offer inserts e when it improves the solution set; duplicates (same set of
// subgraph expressions) are ignored. The expression is cloned only when it
// is actually inserted, so callers can pass their live DFS prefix without
// paying an allocation for offers that lose on cost or are duplicates.
func (b *bound) Offer(e expr.Expression, cost float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.sols) >= b.k && cost >= b.sols[len(b.sols)-1].Bits {
		return false
	}
	if b.k == 1 {
		// Single-solution fast path: the cost gate above already rejected
		// everything not strictly better than the incumbent, so a duplicate
		// expression (same set, same cost) can never get here — no need to
		// compute and store canonical keys at all.
		if len(b.sols) == 0 {
			b.sols = append(b.sols, Solution{})
		}
		b.sols[0] = Solution{Expression: e.Clone(), Bits: cost}
		return true
	}
	key := e.Key()
	if b.keys[key] {
		return false
	}
	if b.keys == nil {
		b.keys = make(map[string]bool)
	}
	b.keys[key] = true
	pos := sort.Search(len(b.sols), func(i int) bool { return b.sols[i].Bits > cost })
	b.sols = append(b.sols, Solution{})
	copy(b.sols[pos+1:], b.sols[pos:])
	b.sols[pos] = Solution{Expression: e.Clone(), Bits: cost}
	if len(b.sols) > b.k {
		drop := b.sols[len(b.sols)-1]
		delete(b.keys, drop.Expression.Key())
		b.sols = b.sols[:len(b.sols)-1]
	}
	return pos == 0
}

func (b *bound) Get() (expr.Expression, float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.sols) == 0 {
		return nil, complexity.Infinite
	}
	return b.sols[0].Expression, b.sols[0].Bits
}

// All returns the solution set, best first.
func (b *bound) All() []Solution {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Solution(nil), b.sols...)
}

// Miner mines referring expressions over one KB with one complexity
// estimator. Construct with NewMiner; safe for concurrent Mine calls.
type Miner struct {
	K   *kb.KB
	Est *complexity.Estimator
	Ev  *expr.Evaluator
	cfg Config

	prominent *kb.EntSet
}

// NewMiner assembles a miner from its parts.
func NewMiner(k *kb.KB, est *complexity.Estimator, cfg Config) *Miner {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultConfig().CacheSize
	}
	m := &Miner{
		K:   k,
		Est: est,
		Ev:  expr.NewEvaluator(k, cfg.CacheSize),
		cfg: cfg,
	}
	if cfg.Workers > 1 {
		// P-REMI workers share the evaluator and hammer the same queue-head
		// subgraphs on a cold cache: coalesce concurrent misses so each
		// binding set is computed once. Sequential REMI skips the (small)
		// per-miss overhead.
		m.Ev.EnableCoalescing()
	}
	if cfg.ProminentCutoff > 0 {
		m.prominent = k.ProminentSet(cfg.ProminentCutoff)
	}
	return m
}

// Config returns the miner configuration.
func (m *Miner) Config() Config { return m.cfg }

// scored pairs a candidate subgraph expression with its Ĉ cost.
type scored struct {
	g    expr.Subgraph
	cost float64
}

// queueBlock is the number of candidate indices a queue-build worker claims
// per round. parallelQueueMinProbes is the default floor on
// candidate·extra-target HoldsFor probes below which the goroutine fan-out
// costs more than it saves (overridable per miner via
// Config.ParallelQueueMinProbes); parallelQueueMinCands additionally lets
// giant single-target queues parallelize their Ĉ scoring even with no
// filter work (scoring a warm estimator cache is a ~20ns lock-free load, so
// only very large queues pay for the fan there).
const (
	queueBlock             = 256
	parallelQueueMinProbes = 4096
	parallelQueueMinCands  = 1 << 16
)

// queueBufs holds the queue-build working storage: the enumerated candidate
// slice and the scored queue. Both die with the Mine call that produced
// them, so they are pooled — on a warm miner the queue build's only
// steady-state allocations are table growth inside the pooled structures.
type queueBufs struct {
	cands []expr.Subgraph
	out   []scored
	costs []float64
	keep  []bool
}

var queueBufPool = sync.Pool{New: func() any { return &queueBufs{} }}

func getQueueBufs() *queueBufs   { return queueBufPool.Get().(*queueBufs) }
func putQueueBufs(qb *queueBufs) { queueBufPool.Put(qb) }

// buildQueue computes and cost-sorts the common subgraph expressions
// (lines 1–2 of Algorithm 1). The candidate set comes from one SubgraphsOf
// enumeration of the first target; the common-ness filter and Ĉ scoring of
// each candidate are independent, so on large queues they are fanned across
// a worker pool in index blocks. Results are written into position-aligned
// arrays and compacted in enumeration order, so the queue is byte-identical
// to the sequential build regardless of scheduling.
func (m *Miner) buildQueue(ctx context.Context, targets []kb.EntID, qb *queueBufs) ([]scored, bool) {
	return m.buildQueueShared(ctx, targets, qb, nil)
}

// buildQueueShared is buildQueue with an optional batch cache (nil outside
// MineBatch; see buildQueueBatch for the shared path).
func (m *Miner) buildQueueShared(ctx context.Context, targets []kb.EntID, qb *queueBufs, bc *batchCache) ([]scored, bool) {
	if bc != nil {
		return m.buildQueueBatch(ctx, targets, qb, bc)
	}
	cands := appendSubgraphsOf(qb.cands[:0], m.K, targets[0], m.enumerateOptions())
	qb.cands = cands
	out, timedOut := m.scoreQueue(ctx, cands, targets[1:], qb)
	if timedOut {
		return nil, true
	}
	return m.truncateQueue(out), false
}

// enumerateOptions is the miner's fixed candidate-enumeration setup.
func (m *Miner) enumerateOptions() EnumerateOptions {
	return EnumerateOptions{
		Language:        m.cfg.Language,
		Prominent:       m.prominent,
		MaxStarsPerPath: m.cfg.MaxStarsPerPath,
		// Labels are names, not descriptions: an RE built on rdfs:label
		// would be circular ("the entity labelled Paris"), so the label
		// predicate never enters the language.
		SkipPredID: m.K.LabelPredicate(),
	}
}

// truncateQueue applies the MaxCandidates safety valve (the queue is
// cost-sorted first in the default configuration, so the cheapest survive).
func (m *Miner) truncateQueue(out []scored) []scored {
	if m.cfg.MaxCandidates > 0 && len(out) > m.cfg.MaxCandidates {
		out = out[:m.cfg.MaxCandidates]
	}
	return out
}

// buildQueueBatch builds the queue through the MineBatch sharing cache.
// Two layers are memoized, both immutable and both byte-identical to what
// the unshared build computes. (1) Finished queues per normalized target
// set: an exact repeat costs nothing. (2) The scored, cost-sorted candidate
// list per first (minimum-id) target — the untruncated queue of {anchor}.
// A set sharing its anchor with an earlier set of the batch reduces to
// filtering that list by its remaining targets: enumeration, Ĉ scoring and
// the sort are all skipped, because common(T) = common({anchor}) filtered
// by the rest, and filtering a deterministically sorted list commutes with
// sorting the filtered one. This is the shared "one pass" of per-KB
// queue-prep work that makes a batch cheaper than N independent calls when
// a caller disambiguates overlapping candidate sets.
func (m *Miner) buildQueueBatch(ctx context.Context, targets []kb.EntID, qb *queueBufs, bc *batchCache) ([]scored, bool) {
	if q, ok := bc.getQueue(targets); ok {
		return q, false
	}
	base, ok := bc.getAnchor(targets[0])
	if !ok {
		cands := appendSubgraphsOf(qb.cands[:0], m.K, targets[0], m.enumerateOptions())
		qb.cands = cands
		all, timedOut := m.scoreQueue(ctx, cands, nil, qb)
		if timedOut {
			return nil, true
		}
		// Escape the pooled buffer: the cached list must survive this call.
		base = append([]scored(nil), all...)
		bc.putAnchor(targets[0], base)
	}
	rest := targets[1:]
	out := qb.out[:0]
	for i := range base {
		if i%1024 == 0 && expired(ctx) {
			return nil, true
		}
		if !holdsForAll(m.K, base[i].g, rest) {
			continue
		}
		out = append(out, base[i])
	}
	qb.out = out
	out = append([]scored(nil), m.truncateQueue(out)...)
	bc.putQueue(targets, out)
	return out, false
}

// scoreQueue filters the enumerated candidates down to those common to the
// extra targets and scores the survivors, fanning large queues across a
// worker pool, then cost-sorts the result (unless the queue-order ablation
// is on). The returned slice aliases qb's pooled storage.
func (m *Miner) scoreQueue(ctx context.Context, cands []expr.Subgraph, rest []kb.EntID, qb *queueBufs) ([]scored, bool) {
	var out []scored
	probes := len(cands) * len(rest)
	minProbes := m.cfg.ParallelQueueMinProbes
	if minProbes == 0 {
		minProbes = parallelQueueMinProbes
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && minProbes > 0 &&
		(probes >= minProbes || len(cands) >= parallelQueueMinCands) {
		var timedOut bool
		if out, timedOut = m.scoreQueueParallel(ctx, cands, rest, workers, qb); timedOut {
			return nil, true
		}
	} else {
		out = qb.out[:0]
		for i, g := range cands {
			if i%1024 == 0 && expired(ctx) {
				return nil, true
			}
			if !holdsForAll(m.K, g, rest) {
				continue
			}
			out = append(out, scored{g: g, cost: m.Est.Subgraph(g)})
		}
		qb.out = out
	}
	if !m.cfg.UnsortedQueue {
		slices.SortFunc(out, func(a, b scored) int {
			// Ĉ values are non-negative (log2 of 1-based ranks), so their
			// IEEE-754 bit patterns order identically to the floats — one
			// integer compare instead of two float branches.
			ca, cb := math.Float64bits(a.cost), math.Float64bits(b.cost)
			if ca != cb {
				if ca < cb {
					return -1
				}
				return 1
			}
			return expr.Compare(a.g, b.g)
		})
	}
	return out, false
}

// scoreQueueParallel filters and scores the enumerated candidates across a
// worker pool. Workers claim fixed-size index blocks off an atomic cursor
// and write cost/keep into arrays aligned with cands, so the compacted
// result preserves enumeration order exactly — the queue is deterministic
// for any GOMAXPROCS.
func (m *Miner) scoreQueueParallel(ctx context.Context, cands []expr.Subgraph, rest []kb.EntID, workers int, qb *queueBufs) ([]scored, bool) {
	if max := (len(cands) + queueBlock - 1) / queueBlock; workers > max {
		workers = max
	}
	if cap(qb.costs) < len(cands) {
		qb.costs = make([]float64, len(cands))
		qb.keep = make([]bool, len(cands))
	}
	costs := qb.costs[:len(cands)]
	keep := qb.keep[:len(cands)]
	for i := range keep {
		keep[i] = false
	}
	var next int64
	var bail atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, queueBlock)) - queueBlock
				if lo >= len(cands) || bail.Load() {
					return
				}
				if expired(ctx) {
					bail.Store(true)
					return
				}
				hi := lo + queueBlock
				if hi > len(cands) {
					hi = len(cands)
				}
				for i := lo; i < hi; i++ {
					g := cands[i]
					if !holdsForAll(m.K, g, rest) {
						continue
					}
					costs[i] = m.Est.Subgraph(g)
					keep[i] = true
				}
			}
		}()
	}
	wg.Wait()
	if bail.Load() {
		return nil, true
	}
	out := qb.out[:0]
	for i, g := range cands {
		if keep[i] {
			out = append(out, scored{g: g, cost: costs[i]})
		}
	}
	qb.out = out
	return out, false
}

// expired reports whether the search context has ended — by cancellation
// (client disconnect) or by deadline (Config.Timeout, a caller deadline, or
// both); the miner treats the two identically. The deadline is also checked
// against the wall clock directly: ctx.Err() turns non-nil only once the
// runtime timer has fired, which can lag a sub-millisecond timeout.
func expired(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	d, ok := ctx.Deadline()
	return ok && time.Now().After(d)
}

// RankedCandidates exposes lines 1–2 of Algorithm 1: the subgraph
// expressions common to the targets in ascending Ĉ order together with
// their costs. The qualitative evaluation (Table 2) ranks these directly.
func (m *Miner) RankedCandidates(targets []kb.EntID) ([]expr.Subgraph, []float64) {
	tgt := expr.SortIDs(append([]kb.EntID(nil), targets...))
	qb := getQueueBufs()
	defer putQueueBufs(qb)
	queue, _ := m.buildQueue(context.Background(), tgt, qb)
	gs := make([]expr.Subgraph, len(queue))
	costs := make([]float64, len(queue))
	for i, s := range queue {
		gs[i] = s.g
		costs[i] = s.cost
	}
	return gs, costs
}

// Mine returns the least complex RE for the targets, running REMI
// (Algorithm 1) or P-REMI (Section 3.4) depending on Config.Workers.
// Duplicate targets are allowed and collapse into a set.
func (m *Miner) Mine(targets []kb.EntID) (*Result, error) {
	return m.MineContext(context.Background(), targets)
}

// MineContext is Mine with a caller-controlled context: when ctx is
// cancelled or its deadline passes, the search (queue build, sequential DFS
// and every P-REMI worker alike) stops at its next periodic check and the
// best solution found so far is returned with Stats.TimedOut set, exactly
// as if Config.Timeout had elapsed. A non-zero Config.Timeout still
// applies, layered onto ctx, so whichever limit fires first stops the run.
func (m *Miner) MineContext(ctx context.Context, targets []kb.EntID) (*Result, error) {
	if len(targets) == 0 {
		return nil, ErrNoTargets
	}
	return m.mineSet(ctx, normalizeTargets(targets), nil)
}

// normalizeTargets sorts a copy of targets and collapses duplicates, the
// canonical form every search (and every batch dedup key) runs on.
func normalizeTargets(targets []kb.EntID) []kb.EntID {
	tgt := expr.SortIDs(append([]kb.EntID(nil), targets...))
	w := 1
	for i := 1; i < len(tgt); i++ {
		if tgt[i] != tgt[i-1] {
			tgt[w] = tgt[i]
			w++
		}
	}
	return tgt[:w]
}

// mineSet runs one search over a normalized (sorted, duplicate-free,
// non-empty) target set. Config.Timeout is applied here, per set, so each
// set of a batch gets its own budget. bc is nil outside MineBatch.
func (m *Miner) mineSet(ctx context.Context, tgt []kb.EntID, bc *batchCache) (*Result, error) {
	if m.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.Timeout)
		defer cancel()
	}
	res := &Result{Bits: complexity.Infinite}
	// Cache counters are reported per set as deltas of the evaluator's
	// cumulative stats: on a fresh miner the delta is the total, and inside
	// a serial batch the per-set values partition the evaluator totals
	// exactly. Sets running concurrently observe overlapping windows, so
	// their per-set values may attribute neighbors' lookups (bounded by the
	// pool width); callers needing exact batch totals should measure the
	// evaluator delta across the whole MineBatch call, as the facade does.
	_, hits0, misses0 := m.Ev.Stats()
	// The queue and its candidate buffer are pooled: they die with this
	// call (everything escaping into res is cloned), so the search borrows
	// them and returns them on exit.
	qb := getQueueBufs()
	defer putQueueBufs(qb)
	t0 := time.Now()
	queue, timedOut := m.buildQueueShared(ctx, tgt, qb, bc)
	res.Stats.QueueBuild = time.Since(t0)
	res.Stats.Candidates = len(queue)
	if timedOut {
		res.Stats.TimedOut = true
		return res, nil
	}

	t1 := time.Now()
	if m.cfg.Workers > 1 {
		m.mineParallel(ctx, queue, tgt, res)
	} else {
		m.mineSequential(ctx, queue, tgt, res)
	}
	res.Stats.Search = time.Since(t1)
	_, hits1, misses1 := m.Ev.Stats()
	res.Stats.CacheHits, res.Stats.CacheMisses = hits1-hits0, misses1-misses0
	if res.Found() {
		res.Bits = m.Est.Expression(res.Expression)
	}
	return res, nil
}

// solvableSuffixes computes, for every queue index i, whether the subtree
// rooted at queue[i] can contain an RE at all: the most specific expression
// available from index i on is the conjunction of all of queue[i:], whose
// binding set is the running intersection ("suffix floor") of the candidate
// binding sets. Since every candidate's bindings contain T, the floor
// contains T, and the subtree holds an RE iff the floor equals T exactly.
// Floors grow with i, so the result is monotone: true up to some index,
// false afterwards. This implements line 8 of Algorithm 1 exactly but ahead
// of time, avoiding an exponential exploration of hopeless subtrees.
// Two facts make the sweep cheap. First, can is monotone (floors only
// shrink as i decreases), so the moment one floor reaches the limit every
// earlier index is solvable too and the remaining intersections are skipped
// outright. Second, once the floor is small it usually stabilizes — most
// candidates' bindings are supersets of it — so the sweep verifies
// stability in batches: bindset.IntersectMany intersects the current floor
// against a window of upcoming candidates in one word-at-a-time pass, and
// only a window that actually shrinks the floor falls back to chaining from
// the shrink point. The computed can values are bit-identical to the plain
// right-to-left chain.
func (m *Miner) solvableSuffixes(ctx context.Context, queue []scored, targets []kb.EntID) ([]bool, bool) {
	can := make([]bool, len(queue))
	if len(queue) == 0 {
		return can, false
	}
	limit := len(targets) + m.cfg.MaxExceptions
	sc := getScratch()
	defer putScratch(sc)
	sfx := sc.suffix()

	floor := m.Ev.Bindings(queue[len(queue)-1].g)
	i := len(queue) - 1
	if floor.Card() <= limit {
		for ; i >= 0; i-- {
			can[i] = true
		}
		return can, false
	}
	i--
	cur := 0    // index of the scratch array NOT holding the live floor
	window := 1 // adaptive batch width: doubles on stable rounds
	for i >= 0 {
		if expired(ctx) {
			return can, true
		}
		n := window
		if n > i+1 {
			n = i + 1
		}
		arr := sfx[cur]
		for j := 0; j < n; j++ {
			arr.bind[j] = m.Ev.Bindings(queue[i-j].g)
		}
		bindset.IntersectMany(arr.ptrs[:n], floor, arr.bind[:n])
		shrunk := false
		for j := 0; j < n; j++ {
			idx := i - j
			if arr.sets[j].Card() == floor.Card() {
				// The candidate's bindings contain the floor: the chained
				// floor at idx is still `floor`, which exceeds the limit.
				can[idx] = false
				continue
			}
			// First shrink in the window: the products after it were taken
			// against the now-stale floor, so restart chaining from here
			// with the new floor (which lives in the array just written —
			// the next round writes the other one).
			floor = arr.sets[j]
			cur ^= 1
			window = 1
			shrunk = true
			if floor.Card() <= limit {
				for t := idx; t >= 0; t-- {
					can[t] = true
				}
				return can, false
			}
			can[idx] = false
			i = idx - 1
			break
		}
		if !shrunk {
			i -= n
			if window < childBatch {
				window *= 2
			}
		}
	}
	return can, false
}

// mineSequential is Algorithm 1: dequeue subgraph expressions in ascending
// Ĉ order and explore the subtree rooted at each.
func (m *Miner) mineSequential(ctx context.Context, queue []scored, targets []kb.EntID, res *Result) {
	bnd := newBound(m.cfg.TopK)
	st := &res.Stats

	canSolve, timedOut := m.solvableSuffixes(ctx, queue, targets)
	if timedOut {
		st.TimedOut = true
		return
	}

	sc := getScratch()
	defer putScratch(sc)
	for i := range queue {
		if expired(ctx) {
			st.TimedOut = true
			break
		}
		// Line 8 of Algorithm 1: the exploration rooted at queue[i] conjoins
		// it with every later candidate; when even the full conjunction
		// cannot pin down T, neither this subtree nor any later one (their
		// floors are supersets) holds an RE.
		if !canSolve[i] {
			break
		}
		// Any expression prefixed with queue[i] costs at least queue[i].cost;
		// once that exceeds the incumbent, later prefixes cannot improve.
		if queue[i].cost >= bnd.Cost() {
			st.PrunedCost += uint64(len(queue) - i)
			break
		}
		if m.cfg.LiteralAlg2 {
			m.dfsRemiLiteral(ctx, queue, i, targets, sc, bnd, st)
			continue
		}
		// Room for a handful of conjuncts up front: the DFS extends the
		// prefix in place (append + reslice), so a roomy root buffer makes
		// typical descents allocation-free.
		prefix := append(make(expr.Expression, 0, 8), queue[i].g)
		m.dfsRemi(ctx, prefix, queue[i].cost, m.Ev.Bindings(queue[i].g), queue, i+1, targets, 0, sc, bnd, st)
	}
	res.Expression, _ = bnd.Get()
	res.Solutions = bnd.All()
}

// dfsRemi performs the depth-first exploration of conjunctions described in
// Section 3.3 (the tree of Figure 1): the children of a prefix extend it
// with strictly later queue elements. It applies pruning by depth (stop
// descending after an RE), side pruning (skip costlier siblings after an
// RE), the live cost bound shared with the other P-REMI workers (Algorithm
// 3, line 6), and redundant-conjunct pruning (a child whose subgraph
// expression does not shrink the binding set is dominated by a cheaper
// sibling chain). Bindings are threaded down the recursion so each node
// costs one set intersection instead of re-evaluating the conjunction; the
// child intersections are computed in adaptive windows by the batch kernel
// (bindset.IntersectMany) into the per-depth scratch batch of sc, so a node
// in steady state performs zero heap allocations. depth is the scratch
// level this node's children write to. It returns the cheapest RE cost
// discovered in this subtree and whether any RE was found.
func (m *Miner) dfsRemi(ctx context.Context, prefix expr.Expression, prefixCost float64, bindings bindset.Set,
	queue []scored, from int, targets []kb.EntID, depth int, sc *dfsScratch, bnd *bound, st *Stats) (float64, bool) {

	st.Visited++
	st.RETests++
	m.trace(EventVisit, prefix, prefixCost)
	// The RE test: bindings ⊇ T holds by construction (every queue element
	// is common to the targets), so exactness reduces to a size check; with
	// MaxExceptions > 0 up to that many extra entities are tolerated.
	if bindings.Card() <= len(targets)+m.cfg.MaxExceptions {
		m.trace(EventRE, prefix, prefixCost)
		if bnd.Offer(prefix, prefixCost) {
			m.trace(EventNewBest, prefix, prefixCost)
		}
		// Descendants only add cost: pruning by depth.
		st.PrunedDepth++
		return prefixCost, true
	}

	subtreeMin := math.Inf(1)
	found := false
	lvl := sc.batch(depth)
	i := from
	// The batch window is adaptive: it starts at one child and doubles each
	// time a full window is processed without a pruning break, so nodes
	// whose children die to side or cost pruning almost immediately never
	// pay for speculative intersections, while long sibling scans converge
	// to full-width word-at-a-time batches.
	win := 1
outer:
	for i < len(queue) {
		// Gather a window of children currently under the shared bound and
		// intersect the prefix bindings against all of them in one batch
		// kernel call (word-at-a-time for bitmap prefixes). The queue is
		// cost-ascending in the default configuration, so the window ends
		// exactly where cost pruning would stop the scan.
		bound := bnd.Cost()
		n := 0
		for n < win && i+n < len(queue) && prefixCost+queue[i+n].cost < bound {
			lvl.bind[n] = m.Ev.Bindings(queue[i+n].g)
			n++
		}
		if n == 0 {
			// This child and every later sibling meets or exceeds the
			// incumbent: cost pruning (the P-DFS-REMI backtracking rule).
			st.PrunedCost += uint64(len(queue) - i)
			if m.traceWants(EventPruneCost) {
				m.trace(EventPruneCost, append(prefix.Clone(), queue[i].g), prefixCost+queue[i].cost)
			}
			break
		}
		bindset.IntersectMany(lvl.ptrs[:n], bindings, lvl.bind[:n])
		for j := 0; j < n; j++ {
			idx := i + j
			if st.Visited%256 == 0 && expired(ctx) {
				st.TimedOut = true
				break outer
			}
			childCost := prefixCost + queue[idx].cost
			if childCost >= bnd.Cost() {
				// The bound improved mid-window: cost pruning, exactly where
				// the unbatched scan would have stopped.
				st.PrunedCost += uint64(len(queue) - idx)
				if m.traceWants(EventPruneCost) {
					m.trace(EventPruneCost, append(prefix.Clone(), queue[idx].g), childCost)
				}
				break outer
			}
			childBindings := lvl.ptrs[j]
			if childBindings.Card() == bindings.Card() {
				// The conjunct changed nothing: everything below this child
				// is dominated by the same expressions without it.
				continue
			}
			if childBindings.Card() < len(targets) {
				// Impossible: common candidates always retain T; defensive.
				continue
			}
			child := append(prefix, queue[idx].g)
			c, f := m.dfsRemi(ctx, child, childCost, *childBindings, queue, idx+1, targets, depth+1, sc, bnd, st)
			prefix = child[:len(prefix)]
			if f {
				found = true
				if c < subtreeMin {
					subtreeMin = c
				}
				// Side pruning: when the RE costs no more than the child
				// prefix itself (the child was the RE), every later sibling
				// — and everything below it — is at least as complex. With
				// TopK > 1 siblings may hold wanted alternatives, so only
				// the cost bound applies there.
				if c <= childCost && m.topK() == 1 {
					st.PrunedSide += uint64(len(queue) - idx - 1)
					m.trace(EventPruneSide, child, c)
					break outer
				}
			}
		}
		i += n
		if win < childBatch {
			win *= 2
		}
	}
	return subtreeMin, found
}

// dfsRemiLiteral is the verbatim Algorithm 2 of the paper: a single linear
// scan over the remaining queue with a stack, double-popping when an RE is
// found. It can return a slightly suboptimal RE in rare configurations (see
// DESIGN.md) and exists for ablation experiments. It reports whether any RE
// was found during the scan. The stack carries its binding sets
// incrementally — a push costs one scratch intersection with the new
// conjunct instead of re-evaluating the whole conjunction.
func (m *Miner) dfsRemiLiteral(ctx context.Context, queue []scored, rho int, targets []kb.EntID,
	sc *dfsScratch, bnd *bound, st *Stats) bool {

	var stack []scored
	cur := expr.Expression(nil)
	curCost := 0.0
	found := false
	var binds []bindset.Set // binds[d] = bindings of cur[:d+1]

	push := func(s scored) {
		stack = append(stack, s)
		cur = append(cur, s.g)
		curCost += s.cost
		d := len(stack) - 1
		gb := m.Ev.Bindings(s.g)
		if d == 0 {
			binds = append(binds, gb)
			return
		}
		lvl := sc.level(d)
		lvl.IntersectInto(binds[d-1], gb)
		binds = append(binds, *lvl)
	}
	pop := func() {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur = cur[:len(cur)-1]
		curCost -= s.cost
		binds = binds[:len(binds)-1]
	}

	for i := rho; i < len(queue); i++ {
		if expired(ctx) {
			st.TimedOut = true
			break
		}
		push(queue[i])
		st.Visited++
		st.RETests++
		m.trace(EventVisit, cur, curCost)
		if binds[len(binds)-1].Card() <= len(targets)+m.cfg.MaxExceptions {
			found = true
			m.trace(EventRE, cur, curCost)
			if bnd.Offer(cur, curCost) {
				m.trace(EventNewBest, cur, curCost)
			}
			pop() // pruning by depth
			st.PrunedDepth++
			if len(stack) == 0 {
				// The second pop of Algorithm 2 removes ⊤: exploration done.
				return found
			}
			pop() // side pruning
			st.PrunedSide++
		}
	}
	return found
}

func (m *Miner) topK() int {
	if m.cfg.TopK < 1 {
		return 1
	}
	return m.cfg.TopK
}

// traceWants reports whether a trace event of this kind would be delivered.
// Call sites that must allocate to build the traced expression (the prune
// events clone the prefix themselves) check it before paying that cost.
func (m *Miner) traceWants(kind EventKind) bool {
	return m.cfg.Trace != nil && m.cfg.TraceMask.Wants(kind)
}

func (m *Miner) trace(kind EventKind, e expr.Expression, cost float64) {
	if !m.traceWants(kind) {
		return
	}
	m.cfg.Trace(Event{Kind: kind, Expression: e.Clone(), Cost: cost})
}
