package core

import (
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// CensusBias describes a language-bias configuration for the search-space
// census behind the Section 3.2 observations ("a second additional variable
// increases by more than 270% the number of subgraph expressions... while
// increasing the number of atoms from 2 to 3 with one additional variable
// leads to an increase of 40%").
type CensusBias struct {
	MaxAtoms     int // 2 or 3
	MaxExtraVars int // 1 or 2
}

// Census counts the distinct subgraph expressions of entity t under the
// given bias. One-extra-variable shapes reuse the Table 1 enumerator;
// two-variable shapes add length-3 chains p0(x,y) ∧ p1(y,z) ∧ p2(z,I2),
// the canonical 2-variable subgraph expression rooted at x.
func Census(k *kb.KB, t kb.EntID, bias CensusBias, prominent *kb.EntSet) int {
	opts := EnumerateOptions{Language: ExtendedLanguage, Prominent: prominent}
	subs := SubgraphsOf(k, t, opts)
	count := 0
	for _, g := range subs {
		if g.Atoms() <= bias.MaxAtoms {
			count++
		}
	}
	if bias.MaxExtraVars >= 2 && bias.MaxAtoms >= 3 {
		count += countChains(k, t, prominent)
	}
	return count
}

// countChains counts distinct two-hop chains p0(x,y) ∧ p1(y,z) ∧ p2(z,I2)
// reachable from t. The first hop applies the same blank-node and
// prominence pruning as the one-variable enumerator; the second hop is
// unpruned — the Section 3.2 census measures the cost of the hypothetical
// two-variable language, for which no pruning heuristic is established
// (this is exactly why REMI's bias stops at one additional variable).
func countChains(k *kb.KB, t kb.EntID, prominent *kb.EntSet) int {
	type chain struct {
		p0, p1, p2 kb.PredID
		i2         kb.EntID
	}
	seen := make(map[chain]struct{})
	for _, po := range k.AdjacencyOf(t) {
		y := po.O
		if k.IsLiteral(y) || y == t {
			continue
		}
		if !k.IsBlank(y) && prominent.Contains(y) {
			continue
		}
		for _, p1o := range k.AdjacencyOf(y) {
			z := p1o.O
			if k.IsLiteral(z) || z == t || z == y {
				continue
			}
			for _, p2o := range k.AdjacencyOf(z) {
				if k.Kind(p2o.O) != rdf.IRI {
					continue
				}
				seen[chain{po.P, p1o.P, p2o.P, p2o.O}] = struct{}{}
			}
		}
	}
	return len(seen)
}

// CensusReport is the outcome of a search-space census over a set of
// entities.
type CensusReport struct {
	Bias  CensusBias
	Total int
}

// RunCensus sums Census over the entities for each bias, reproducing the
// growth percentages of Section 3.2.
func RunCensus(k *kb.KB, entities []kb.EntID, biases []CensusBias, prominentCutoff float64) []CensusReport {
	var prominent *kb.EntSet
	if prominentCutoff > 0 {
		prominent = k.ProminentSet(prominentCutoff)
	}
	out := make([]CensusReport, len(biases))
	for i, b := range biases {
		total := 0
		for _, t := range entities {
			total += Census(k, t, b, prominent)
		}
		out[i] = CensusReport{Bias: b, Total: total}
	}
	return out
}

// SubgraphCounts tallies the enumeration output by shape, used by the
// Table 1 verification test and the enumeration benchmarks.
func SubgraphCounts(k *kb.KB, t kb.EntID, opts EnumerateOptions) map[expr.Shape]int {
	out := make(map[expr.Shape]int)
	for _, g := range SubgraphsOf(k, t, opts) {
		out[g.Shape]++
	}
	return out
}
