package core

import (
	"sync"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
)

// sgTable is an open-addressing hash set of expr.Subgraph used by the
// enumerator's dedup. The generic map[expr.Subgraph]struct{} it replaces
// paid interface hashing, bucket overflow chains and a fresh allocation per
// SubgraphsOf call; this table is a flat slot array with linear probing,
// recycled through a sync.Pool so steady-state enumeration allocates nothing
// for dedup. Occupancy is tracked by a per-slot epoch stamp rather than by
// clearing the 32-byte slots: reset is then one counter bump, so a pooled
// table grown by a hub entity does not charge a quarter-megabyte memclr to
// every later enumeration.
type sgTable struct {
	slots []expr.Subgraph
	gen   []uint32 // slot i is live iff gen[i] == epoch
	epoch uint32
	n     int
}

const sgMinCap = 256 // power of two; enough for a typical entity's subgraphs

// sgHash is the shared subgraph hash (see expr.Subgraph.Hash).
func sgHash(g expr.Subgraph) uint64 { return g.Hash() }

// add inserts g and reports whether it was absent (i.e. newly inserted).
func (t *sgTable) add(g expr.Subgraph) bool {
	if len(t.slots) == 0 {
		t.slots = make([]expr.Subgraph, sgMinCap)
		t.gen = make([]uint32, sgMinCap)
		t.epoch = 1
	} else if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := sgHash(g) & mask
	for {
		if t.gen[i] != t.epoch {
			t.slots[i] = g
			t.gen[i] = t.epoch
			t.n++
			return true
		}
		if t.slots[i] == g {
			return false
		}
		i = (i + 1) & mask
	}
}

func (t *sgTable) grow() {
	oldSlots, oldGen := t.slots, t.gen
	t.slots = make([]expr.Subgraph, 2*len(oldSlots))
	t.gen = make([]uint32, 2*len(oldSlots))
	mask := uint64(len(t.slots) - 1)
	for oi, g := range oldSlots {
		if oldGen[oi] != t.epoch {
			continue
		}
		i := sgHash(g) & mask
		for t.gen[i] == t.epoch {
			i = (i + 1) & mask
		}
		t.slots[i] = g
		t.gen[i] = t.epoch
	}
}

// reset empties the table for reuse in O(1): bumping the epoch invalidates
// every stamp. On the (2³²-rare) wraparound the stamps are cleared for real
// so stale epochs can never read as live.
func (t *sgTable) reset() {
	t.n = 0
	t.epoch++
	if t.epoch == 0 {
		clear(t.gen)
		t.epoch = 1
	}
}

// enumScratch bundles the per-SubgraphsOf scratch: the dedup table plus the
// reusable buffers that replace the per-call tails slice and byObject map.
type enumScratch struct {
	table sgTable
	tails []kb.PO
	byObj []kb.PO
	ys    []kb.EntID
}

var enumPool = sync.Pool{New: func() any { return &enumScratch{} }}

func getEnumScratch() *enumScratch { return enumPool.Get().(*enumScratch) }

func putEnumScratch(sc *enumScratch) {
	sc.table.reset()
	enumPool.Put(sc)
}
