package core

import (
	"context"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/kb"
)

// TestMineContextCancelledObserved: an already-cancelled context must stop
// both the sequential and the parallel miner promptly, reported as a
// timeout (cancellation and deadline are unified).
func TestMineContextCancelledObserved(t *testing.T) {
	k, est, d := dbpediaEnv(t)
	id, _ := k.EntityID(rdfIRI(d.Members["Person"][0]))
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		m := NewMiner(k, est, cfg)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		res, err := m.MineContext(ctx, []kb.EntID{id})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.TimedOut {
			t.Fatalf("workers=%d: cancellation not observed", workers)
		}
		if time.Since(start) > 10*time.Second {
			t.Fatalf("workers=%d: cancelled mine did not return promptly", workers)
		}
	}
}

// TestMineContextDeadlineMidSearch: a context deadline firing mid-run must
// stop the search like Config.Timeout does, on both paths, even when a much
// larger Config.Timeout is also set (whichever limit fires first wins).
func TestMineContextDeadlineMidSearch(t *testing.T) {
	k, est, d := dbpediaEnv(t)
	id, _ := k.EntityID(rdfIRI(d.Members["Person"][0]))
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Timeout = time.Hour
		m := NewMiner(k, est, cfg)
		ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
		start := time.Now()
		res, err := m.MineContext(ctx, []kb.EntID{id})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.TimedOut {
			t.Fatalf("workers=%d: context deadline not honored", workers)
		}
		if time.Since(start) > 10*time.Second {
			t.Fatalf("workers=%d: context deadline not prompt", workers)
		}
	}
}

// TestMineContextCancelMidDFS cancels from inside the search itself (via
// the trace hook, honored by the sequential miner) so the cancellation is
// guaranteed to arrive while the DFS is running.
func TestMineContextCancelMidDFS(t *testing.T) {
	k, est, d := dbpediaEnv(t)
	id, _ := k.EntityID(rdfIRI(d.Members["Person"][0]))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	visits := 0
	cfg := DefaultConfig()
	cfg.Trace = func(e Event) {
		if e.Kind == EventVisit {
			if visits++; visits == 3 {
				cancel()
			}
		}
	}
	m := NewMiner(k, est, cfg)
	res, err := m.MineContext(ctx, []kb.EntID{id})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TimedOut {
		t.Fatal("mid-DFS cancellation not observed")
	}
	if visits < 3 {
		t.Fatalf("search never reached the cancellation point (%d visits)", visits)
	}
}

// TestMineContextBackgroundUnlimited: a background context with no
// Config.Timeout must not report a timeout.
func TestMineContextBackgroundUnlimited(t *testing.T) {
	k, est, d := dbpediaEnv(t)
	id, _ := k.EntityID(rdfIRI(d.Members["Settlement"][0]))
	m := NewMiner(k, est, DefaultConfig())
	res, err := m.MineContext(context.Background(), []kb.EntID{id})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TimedOut {
		t.Fatal("unbounded run reported a timeout")
	}
}
