package core

import (
	"sync"

	"github.com/remi-kb/remi/internal/bindset"
)

// childBatch is the fan-out of the batch intersection kernel: the DFS child
// loop and the solvable-suffix sweep hand bindset.IntersectMany up to this
// many candidate sets per call, so bitmap prefixes are ANDed word-at-a-time
// across the whole window.
const childBatch = 8

// batchSets is one depth level of DFS scratch: childBatch reusable result
// sets plus the stable pointer/header arrays IntersectMany and the gather
// loop need, kept here so a steady-state search node performs zero heap
// allocations.
type batchSets struct {
	sets [childBatch]bindset.Set
	ptrs [childBatch]*bindset.Set // ptrs[i] == &sets[i], wired once
	bind [childBatch]bindset.Set  // gathered candidate binding-set headers
}

func newBatchSets() *batchSets {
	b := &batchSets{}
	for i := range b.sets {
		b.ptrs[i] = &b.sets[i]
	}
	return b
}

// dfsScratch holds the per-exploration scratch binding sets that make the
// DFS allocation-free in steady state: one batch of reusable sets per depth
// level. A node at depth d intersects its (parent-owned) binding set with a
// window of candidates into level d's batch slots; its children write only
// levels > d, and a later window reuses level d after the subtree returns,
// so no two live sets ever share a buffer. Each P-REMI worker owns one
// dfsScratch — scratch is never shared across goroutines — and finished
// searches return their scratch to a per-miner pool, so repeated Mine calls
// reuse warm buffers instead of reallocating them.
type dfsScratch struct {
	levels []*batchSets
	// sfx is the ping-pong pair of batch levels used by the solvable-suffix
	// sweep: the running floor lives in a slot of the most recently written
	// array while IntersectMany fills the other, so no live buffer is ever
	// an operand of the kernel writing it.
	sfx [2]*batchSets
}

// scratchPool recycles dfsScratch values across Mine calls and workers. The
// pooled sets keep their buffers, so a warmed-up miner allocates nothing
// for scratch on subsequent searches.
var scratchPool = sync.Pool{New: func() any { return &dfsScratch{} }}

func getScratch() *dfsScratch   { return scratchPool.Get().(*dfsScratch) }
func putScratch(sc *dfsScratch) { scratchPool.Put(sc) }

// batch returns the scratch batch of depth d, growing the pool on first
// use. After the first descent to depth d the slots' buffers are reused, so
// the steady-state cost of a search node is a buffer-to-buffer batch
// intersection and zero allocations.
func (sc *dfsScratch) batch(d int) *batchSets {
	for len(sc.levels) <= d {
		sc.levels = append(sc.levels, newBatchSets())
	}
	return sc.levels[d]
}

// level returns the first scratch set of depth d (the single-set view used
// by the literal Algorithm 2 scan, which pushes one conjunct per depth).
func (sc *dfsScratch) level(d int) *bindset.Set {
	return &sc.batch(d).sets[0]
}

// suffix returns the ping-pong batch pair of the solvable-suffix sweep.
func (sc *dfsScratch) suffix() [2]*batchSets {
	if sc.sfx[0] == nil {
		sc.sfx[0], sc.sfx[1] = newBatchSets(), newBatchSets()
	}
	return sc.sfx
}
