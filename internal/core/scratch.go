package core

import (
	"sync"

	"github.com/remi-kb/remi/internal/bindset"
)

// dfsScratch holds the per-exploration scratch binding sets that make the
// DFS allocation-free in steady state: one reusable set per depth level.
// A node at depth d intersects its (parent-owned) binding set with a
// candidate's into level d; its children write only levels > d, and a later
// sibling reuses level d after the subtree returns, so no two live sets ever
// share a buffer. Each P-REMI worker owns one dfsScratch — scratch is never
// shared across goroutines — and finished searches return their scratch to
// a per-miner pool, so repeated Mine calls reuse warm buffers instead of
// reallocating them.
type dfsScratch struct {
	levels []*bindset.Set
	// floors are the ping-pong pair used by the solvable-suffix sweep.
	floors [2]bindset.Set
}

// scratchPool recycles dfsScratch values across Mine calls and workers. The
// pooled sets keep their buffers, so a warmed-up miner allocates nothing
// for scratch on subsequent searches.
var scratchPool = sync.Pool{New: func() any { return &dfsScratch{} }}

func getScratch() *dfsScratch   { return scratchPool.Get().(*dfsScratch) }
func putScratch(sc *dfsScratch) { scratchPool.Put(sc) }

// level returns the scratch set of depth d, growing the pool on first use.
// After the first descent to depth d the set's buffers are reused, so the
// steady-state cost of a search node is one buffer-to-buffer intersection
// and zero allocations.
func (sc *dfsScratch) level(d int) *bindset.Set {
	for len(sc.levels) <= d {
		sc.levels = append(sc.levels, new(bindset.Set))
	}
	return sc.levels[d]
}
