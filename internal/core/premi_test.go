package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

func rdfIRI(iri string) rdf.Term { return rdf.NewIRI(iri) }

// dbpediaEnv builds a small DBpedia-like environment for stress tests.
func dbpediaEnv(t testing.TB) (*kb.KB, *complexity.Estimator, *datagen.Dataset) {
	t.Helper()
	d := datagen.DBpediaLike(datagen.Config{Seed: 21, Scale: 0.05})
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	return k, complexity.New(k, prom, complexity.Compressed), d
}

// TestPREMIMatchesREMIOnSynthetic compares solution costs over many random
// target sets on a realistic KB, across worker counts.
func TestPREMIMatchesREMIOnSynthetic(t *testing.T) {
	k, est, d := dbpediaEnv(t)
	rng := rand.New(rand.NewSource(31))
	classes := []string{"Person", "Settlement", "Film", "Organization"}

	for round := 0; round < 12; round++ {
		class := classes[rng.Intn(len(classes))]
		members := d.Members[class]
		size := 1 + rng.Intn(2)
		var targets []kb.EntID
		for len(targets) < size {
			iri := members[rng.Intn(len(members))]
			id, ok := k.EntityID(rdfIRI(iri))
			if !ok {
				continue
			}
			dup := false
			for _, x := range targets {
				if x == id {
					dup = true
				}
			}
			if !dup {
				targets = append(targets, id)
			}
		}

		seqCfg := DefaultConfig()
		seqCfg.Timeout = 20 * time.Second
		seq := NewMiner(k, est, seqCfg)
		rs, err := seq.Mine(targets)
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{2, runtime.NumCPU()} {
			parCfg := seqCfg
			parCfg.Workers = workers
			par := NewMiner(k, est, parCfg)
			rp, err := par.Mine(targets)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Found() != rp.Found() {
				t.Fatalf("round %d (%d workers): found %v vs %v for %v",
					round, workers, rs.Found(), rp.Found(), targets)
			}
			if rs.Found() && math.Abs(rs.Bits-rp.Bits) > 1e-9 {
				t.Fatalf("round %d (%d workers): %f bits (%s) vs %f bits (%s)",
					round, workers, rs.Bits, rs.Expression.Format(k), rp.Bits, rp.Expression.Format(k))
			}
		}
	}
}

// TestPREMINoSolutionSignal: when no RE exists, P-REMI must also conclude ⊤
// (exercising the noSolutionFloor signalling).
func TestPREMINoSolutionSignal(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"a", "p", "v"}, {"b", "p", "v"}, {"c", "p", "v"},
		{"a", "q", "w"}, {"b", "q", "w"}, {"c", "q", "w"},
	})
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)
	cfg := DefaultConfig()
	cfg.Workers = 4
	m := NewMiner(k, est, cfg)
	a := k.MustEntityID("http://e/a")
	b := k.MustEntityID("http://e/b")
	res, err := m.Mine([]kb.EntID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("impossible RE found: %v", res.Expression.Format(k))
	}
}

// TestPREMITopK: parallel top-k returns distinct solutions sorted by cost.
func TestPREMITopK(t *testing.T) {
	k, est, d := dbpediaEnv(t)
	id, ok := k.EntityID(rdfIRI(d.Members["Person"][0]))
	if !ok {
		t.Fatal("Person_1 missing")
	}
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.TopK = 4
	cfg.Timeout = 20 * time.Second
	m := NewMiner(k, est, cfg)
	res, err := m.Mine([]kb.EntID{id})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Skip("no RE for this entity at this scale")
	}
	seen := map[string]bool{}
	last := -1.0
	for _, sol := range res.Solutions {
		key := sol.Expression.Key()
		if seen[key] {
			t.Fatal("duplicate solution in top-k")
		}
		seen[key] = true
		if sol.Bits < last {
			t.Fatal("solutions not sorted by cost")
		}
		last = sol.Bits
	}
}

// TestTimeoutHonored: a microscopic timeout must terminate quickly and be
// reported.
func TestTimeoutHonored(t *testing.T) {
	k, est, d := dbpediaEnv(t)
	id, _ := k.EntityID(rdfIRI(d.Members["Person"][0]))
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Timeout = time.Microsecond
		m := NewMiner(k, est, cfg)
		start := time.Now()
		res, err := m.Mine([]kb.EntID{id})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.TimedOut {
			t.Fatalf("workers=%d: timeout not reported", workers)
		}
		if time.Since(start) > 10*time.Second {
			t.Fatalf("workers=%d: timeout not honored", workers)
		}
	}
}

// TestExceptionsAtCoreLevel: MaxExceptions accepts supersets within budget
// and never misses targets.
func TestExceptionsAtCoreLevel(t *testing.T) {
	k := buildSmall(t, [][3]string{
		{"a", "p", "v"}, {"b", "p", "v"}, {"c", "p", "v"},
	})
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)
	cfg := DefaultConfig()
	cfg.MaxExceptions = 1
	m := NewMiner(k, est, cfg)
	a := k.MustEntityID("http://e/a")
	b := k.MustEntityID("http://e/b")
	res, err := m.Mine([]kb.EntID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("relaxed mining found nothing")
	}
	// The expression must still cover both targets.
	ev := m.Ev
	bindings := ev.ExpressionBindings(res.Expression).Slice()
	cover := map[kb.EntID]bool{}
	for _, x := range bindings {
		cover[x] = true
	}
	if !cover[a] || !cover[b] {
		t.Fatal("relaxed RE lost a target")
	}
	if len(bindings) > 3 {
		t.Fatalf("too many exceptions: %d bindings", len(bindings))
	}
}

// TestDuplicateTargetsCollapse: Mine must treat duplicated targets as a set.
func TestDuplicateTargetsCollapse(t *testing.T) {
	k, est := tinySetup(t)
	paris := mustID(t, k, "Paris")
	m := NewMiner(k, est, DefaultConfig())
	r1, err := m.Mine([]kb.EntID{paris, paris, paris})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Mine([]kb.EntID{paris})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Found() != r2.Found() || math.Abs(r1.Bits-r2.Bits) > 1e-12 {
		t.Fatal("duplicate targets changed the result")
	}
}
