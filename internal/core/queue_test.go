package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/remi-kb/remi/internal/bindset"
	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// queueTestMiner builds a miner over a random Zipf-ish KB that is large
// enough to cross the parallel queue-build threshold.
func queueTestMiner(t *testing.T, seed int64) (*Miner, []kb.EntID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := kb.NewBuilder()
	e := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://q/e%d", i)) }
	p := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://q/p%d", i)) }
	const nEnt, nPred, nFacts = 400, 12, 6000
	for i := 0; i < nFacts; i++ {
		// Square the draw so low ids act as hubs, giving the targets a rich
		// shared neighborhood (many common candidates).
		s := rng.Intn(nEnt)
		o := rng.Intn(nEnt) * rng.Intn(nEnt) / nEnt
		if err := b.Add(rdf.Triple{S: e(s), P: p(rng.Intn(nPred)), O: e(o)}); err != nil {
			t.Fatal(err)
		}
	}
	k := b.Build(kb.Options{InverseTopFraction: 0.05})
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)
	m := NewMiner(k, est, DefaultConfig())
	targets := []kb.EntID{k.MustEntityID("http://q/e1"), k.MustEntityID("http://q/e2")}
	return m, targets
}

// TestParallelQueueBuildDeterministic asserts the contract the parallel
// queue build must keep for the golden mining tests to stay byte-identical:
// the same queue, in the same order, for every worker-pool width. Run with
// `go test -cpu 1,4,8` to cover the GOMAXPROCS values the pool keys on;
// the test additionally forces the extremes itself.
func TestParallelQueueBuildDeterministic(t *testing.T) {
	m, targets := queueTestMiner(t, 7)

	build := func() []scored {
		// Each build gets its own buffers: the three queues are compared
		// against each other after all builds complete.
		q, timedOut := m.buildQueue(context.Background(), targets, &queueBufs{})
		if timedOut {
			t.Fatal("queue build timed out without a deadline")
		}
		return q
	}

	prev := runtime.GOMAXPROCS(1)
	seq := build()
	runtime.GOMAXPROCS(8)
	par := build()
	runtime.GOMAXPROCS(prev)
	cur := build()

	if len(seq) == 0 {
		t.Fatal("empty queue: the fixture lost its common candidates")
	}
	for name, q := range map[string][]scored{"gomaxprocs=8": par, "ambient": cur} {
		if len(q) != len(seq) {
			t.Fatalf("%s: queue len %d, want %d", name, len(q), len(seq))
		}
		for i := range q {
			if q[i].g != seq[i].g || q[i].cost != seq[i].cost {
				t.Fatalf("%s: queue[%d] = (%v, %f), want (%v, %f)",
					name, i, q[i].g, q[i].cost, seq[i].g, seq[i].cost)
			}
		}
	}
}

// TestParallelQueueMinProbesKnob covers the Config override of the fan-out
// floor: the queue must stay byte-identical across "always parallel"
// (floor 1), the default floor, and "parallel disabled" (negative floor).
func TestParallelQueueMinProbesKnob(t *testing.T) {
	m, targets := queueTestMiner(t, 13)
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	buildWith := func(minProbes int) []scored {
		cfg := m.cfg
		cfg.ParallelQueueMinProbes = minProbes
		mm := NewMiner(m.K, m.Est, cfg)
		q, timedOut := mm.buildQueue(context.Background(), targets, &queueBufs{})
		if timedOut {
			t.Fatal("queue build timed out without a deadline")
		}
		return q
	}
	want := buildWith(-1) // sequential reference
	if len(want) == 0 {
		t.Fatal("empty queue: the fixture lost its common candidates")
	}
	for _, minProbes := range []int{0, 1} {
		got := buildWith(minProbes)
		if len(got) != len(want) {
			t.Fatalf("minProbes=%d: queue len %d, want %d", minProbes, len(got), len(want))
		}
		for i := range got {
			if got[i].g != want[i].g || got[i].cost != want[i].cost {
				t.Fatalf("minProbes=%d: queue[%d] differs", minProbes, i)
			}
		}
	}
}

// TestParallelQueueBuildMatchesSequentialFilter cross-checks the fan-out
// against the plain CommonSubgraphs + score loop it replaced.
func TestParallelQueueBuildMatchesSequentialFilter(t *testing.T) {
	m, targets := queueTestMiner(t, 11)
	opts := EnumerateOptions{Language: m.cfg.Language, Prominent: m.prominent, SkipPredID: m.K.LabelPredicate()}
	want := CommonSubgraphs(m.K, targets, opts)
	got, _ := m.buildQueue(context.Background(), targets, &queueBufs{})
	if m.cfg.UnsortedQueue {
		t.Fatal("fixture must use the sorted queue")
	}
	// buildQueue sorts; compare as sets with exact costs.
	wantCost := make(map[expr.Subgraph]float64, len(want))
	for _, g := range want {
		wantCost[g] = m.Est.Subgraph(g)
	}
	if len(got) != len(want) {
		t.Fatalf("queue has %d candidates, sequential filter %d", len(got), len(want))
	}
	for _, s := range got {
		c, ok := wantCost[s.g]
		if !ok {
			t.Fatalf("queue holds %v, absent from the sequential filter", s.g)
		}
		if c != s.cost {
			t.Fatalf("cost mismatch for %v: %f vs %f", s.g, s.cost, c)
		}
	}
}

// TestSolvableSuffixesMatchesNaiveChain is the white-box equivalence test
// for the batched, early-exiting suffix sweep: its can vector must be
// bit-identical to the naive right-to-left running intersection it
// optimizes.
func TestSolvableSuffixesMatchesNaiveChain(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m, targets := queueTestMiner(t, 20+seed)
		queue, _ := m.buildQueue(context.Background(), targets, &queueBufs{})
		if len(queue) == 0 {
			continue
		}
		got, timedOut := m.solvableSuffixes(context.Background(), queue, targets)
		if timedOut {
			t.Fatal("unexpected timeout")
		}
		limit := len(targets) + m.cfg.MaxExceptions
		var floor bindset.Set
		want := make([]bool, len(queue))
		for i := len(queue) - 1; i >= 0; i-- {
			b := m.Ev.Bindings(queue[i].g)
			if i == len(queue)-1 {
				floor = b
			} else {
				floor = bindset.Intersect(floor, b)
			}
			want[i] = floor.Card() <= limit
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: can[%d] = %v, want %v", seed, i, got[i], want[i])
			}
		}
	}
}
