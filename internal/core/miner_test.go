package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// tinySetup builds the TinyGeo KB with its estimator.
func tinySetup(t testing.TB) (*kb.KB, *complexity.Estimator) {
	t.Helper()
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0.10 // scale the paper's 1% to the ~100-entity KB
	k, err := d.BuildKB(opts)
	if err != nil {
		t.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	return k, complexity.New(k, prom, complexity.Exact)
}

func mustID(t testing.TB, k *kb.KB, iri string) kb.EntID {
	t.Helper()
	id, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + iri))
	if !ok {
		t.Fatalf("entity %q missing", iri)
	}
	return id
}

func TestMineParisCapital(t *testing.T) {
	k, est := tinySetup(t)
	m := NewMiner(k, est, DefaultConfig())
	paris := mustID(t, k, "Paris")
	res, err := m.Mine([]kb.EntID{paris})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("no RE found for Paris")
	}
	// Whatever the exact RE, it must be an RE: bindings == {paris}.
	got := expr.Bindings(k, res.Expression[0])
	for _, g := range res.Expression[1:] {
		got = expr.IntersectSorted(got, expr.Bindings(k, g))
	}
	if len(got) != 1 || got[0] != paris {
		t.Fatalf("result %s is not an RE for paris: %v", res.Expression.Format(k), got)
	}
}

// TestMineGuyanaSuriname reproduces the Section 2.2 example: the only RE for
// {Guyana, Suriname} needs the language-family path.
func TestMineGuyanaSuriname(t *testing.T) {
	k, est := tinySetup(t)
	m := NewMiner(k, est, DefaultConfig())
	guyana := mustID(t, k, "Guyana")
	suriname := mustID(t, k, "Suriname")
	res, err := m.Mine([]kb.EntID{guyana, suriname})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("no RE found for {Guyana, Suriname}")
	}
	s := res.Expression.Format(k)
	if !strings.Contains(s, "langFamily") || !strings.Contains(s, "Germanic") {
		t.Errorf("expected the Germanic-language RE, got %s", s)
	}
	ev := expr.NewEvaluator(k, 64)
	if !ev.IsRE(res.Expression, []kb.EntID{guyana, suriname}) {
		t.Fatalf("result %s is not exact", s)
	}
}

// TestMineRennesNantes exercises the Figure 1 entity pair.
func TestMineRennesNantes(t *testing.T) {
	k, est := tinySetup(t)
	m := NewMiner(k, est, DefaultConfig())
	rennes := mustID(t, k, "Rennes")
	nantes := mustID(t, k, "Nantes")
	res, err := m.Mine([]kb.EntID{rennes, nantes})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("no RE for {Rennes, Nantes}")
	}
	ev := expr.NewEvaluator(k, 64)
	if !ev.IsRE(res.Expression, []kb.EntID{rennes, nantes}) {
		t.Fatalf("result %s not exact", res.Expression.Format(k))
	}
	// belongedTo(x, Brittany) identifies exactly these two cities in TinyGeo.
	if s := res.Expression.Format(k); !strings.Contains(s, "Brittany") {
		t.Logf("note: miner chose %s (valid, complexity-minimal under Ĉ)", s)
	}
}

func TestMineNoTargets(t *testing.T) {
	k, est := tinySetup(t)
	m := NewMiner(k, est, DefaultConfig())
	if _, err := m.Mine(nil); err == nil {
		t.Fatal("expected ErrNoTargets")
	}
}

func TestMineNoSolution(t *testing.T) {
	// Two entities with no common subgraph expression at all: a city and a
	// language share nothing in TinyGeo... actually both have type facts; use
	// entities of different classes whose only common subexpression (none)
	// cannot separate them. Paris and Berlin share type City and placement
	// structure but no discriminating common expression that excludes London
	// may still exist; build a custom KB instead to be precise.
	b := kb.NewBuilder()
	add := func(s, p, o string) {
		b.Add(rdf.Triple{S: rdf.NewIRI("http://e/" + s), P: rdf.NewIRI("http://e/" + p), O: rdf.NewIRI("http://e/" + o)})
	}
	// a and b are twins: every fact of a has a mirror for b AND for c, so
	// {a, b} can never be separated from c.
	add("a", "p", "v")
	add("b", "p", "v")
	add("c", "p", "v")
	k := b.Build(kb.Options{})
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)
	m := NewMiner(k, est, DefaultConfig())

	ida, _ := k.EntityID(rdf.NewIRI("http://e/a"))
	idb, _ := k.EntityID(rdf.NewIRI("http://e/b"))
	res, err := m.Mine([]kb.EntID{ida, idb})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("found impossible RE %v", res.Expression)
	}
	if !math.IsInf(res.Bits, 1) {
		t.Fatal("no-solution result should have infinite bits")
	}
}

// bruteForce finds the true minimum-cost RE over all subsets (by cost order)
// of the candidate subgraph expressions, for small instances. Targets are
// sorted to mirror Mine, so both search the same candidate queue (the
// enumeration origin affects which paths the prominence heuristic prunes).
func bruteForce(m *Miner, targets []kb.EntID) (expr.Expression, float64) {
	targets = expr.SortIDs(append([]kb.EntID(nil), targets...))
	queue, _ := m.buildQueue(context.Background(), targets, &queueBufs{})
	var best expr.Expression
	bestCost := math.Inf(1)
	n := len(queue)
	if n > 16 {
		n = 16 // cap for tractability; tests keep instances small
	}
	for mask := 1; mask < 1<<n; mask++ {
		var e expr.Expression
		cost := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				e = append(e, queue[i].g)
				cost += queue[i].cost
			}
		}
		if cost >= bestCost {
			continue
		}
		if m.Ev.IsRE(e, targets) {
			best, bestCost = e, cost
		}
	}
	return best, bestCost
}

func TestOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	preds := []string{"p", "q", "r", "s"}
	for round := 0; round < 40; round++ {
		b := kb.NewBuilder()
		for i := 0; i < 35; i++ {
			b.Add(rdf.Triple{
				S: rdf.NewIRI("http://e/" + names[rng.Intn(len(names))]),
				P: rdf.NewIRI("http://e/" + preds[rng.Intn(len(preds))]),
				O: rdf.NewIRI("http://e/" + names[rng.Intn(len(names))]),
			})
		}
		k := b.Build(kb.Options{})
		prom := prominence.Build(k, prominence.Fr)
		est := complexity.New(k, prom, complexity.Exact)
		cfg := DefaultConfig()
		cfg.MaxCandidates = 16
		m := NewMiner(k, est, cfg)

		nTargets := 1 + rng.Intn(2)
		targets := make([]kb.EntID, 0, nTargets)
		seen := map[kb.EntID]bool{}
		for len(targets) < nTargets {
			id := kb.EntID(rng.Intn(k.NumEntities()) + 1)
			if !seen[id] {
				seen[id] = true
				targets = append(targets, id)
			}
		}

		res, err := m.Mine(targets)
		if err != nil {
			t.Fatal(err)
		}
		wantExpr, wantCost := bruteForce(m, targets)
		if (wantExpr == nil) != (res.Expression == nil) {
			t.Fatalf("round %d: existence disagrees: got %v, brute force %v (targets %v)",
				round, res.Expression, wantExpr, targets)
		}
		if wantExpr != nil && math.Abs(res.Bits-wantCost) > 1e-9 {
			t.Fatalf("round %d: cost %f (expr %s) vs brute force %f (%s)",
				round, res.Bits, res.Expression.Format(k), wantCost, wantExpr.Format(k))
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	k, est := tinySetup(t)
	seqCfg := DefaultConfig()
	parCfg := DefaultConfig()
	parCfg.Workers = 4

	targetSets := [][]string{
		{"Paris"}, {"Rennes", "Nantes"}, {"Guyana", "Suriname"},
		{"Berlin"}, {"France"}, {"Lyon"}, {"Einstein"}, {"Paris", "Berlin", "London"},
	}
	for _, names := range targetSets {
		var targets []kb.EntID
		for _, n := range names {
			targets = append(targets, mustID(t, k, n))
		}
		seq := NewMiner(k, est, seqCfg)
		par := NewMiner(k, est, parCfg)
		rs, err := seq.Mine(targets)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := par.Mine(targets)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Found() != rp.Found() {
			t.Fatalf("%v: sequential found=%v parallel found=%v", names, rs.Found(), rp.Found())
		}
		if rs.Found() && math.Abs(rs.Bits-rp.Bits) > 1e-9 {
			t.Fatalf("%v: sequential %f bits (%s) vs parallel %f bits (%s)",
				names, rs.Bits, rs.Expression.Format(k), rp.Bits, rp.Expression.Format(k))
		}
	}
}

func TestLiteralAlg2FindsREs(t *testing.T) {
	k, est := tinySetup(t)
	cfg := DefaultConfig()
	cfg.LiteralAlg2 = true
	m := NewMiner(k, est, cfg)
	for _, names := range [][]string{{"Paris"}, {"Rennes", "Nantes"}, {"Guyana", "Suriname"}} {
		var targets []kb.EntID
		for _, n := range names {
			targets = append(targets, mustID(t, k, n))
		}
		res, err := m.Mine(targets)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found() {
			t.Fatalf("literal Alg2 found nothing for %v", names)
		}
		ev := expr.NewEvaluator(k, 64)
		if !ev.IsRE(res.Expression, expr.SortIDs(targets)) {
			t.Fatalf("literal Alg2 returned a non-RE for %v: %s", names, res.Expression.Format(k))
		}
	}
}

func TestStandardLanguageRestriction(t *testing.T) {
	k, est := tinySetup(t)
	cfg := DefaultConfig()
	cfg.Language = StandardLanguage
	m := NewMiner(k, est, cfg)
	paris := mustID(t, k, "Paris")
	res, err := m.Mine([]kb.EntID{paris})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("standard language found nothing for Paris")
	}
	for _, g := range res.Expression {
		if g.Shape != expr.Atom1 {
			t.Fatalf("standard language produced shape %v", g.Shape)
		}
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	k, est := tinySetup(t)
	cfg := DefaultConfig()
	var events []Event
	cfg.Trace = func(e Event) { events = append(events, e) }
	m := NewMiner(k, est, cfg)
	rennes := mustID(t, k, "Rennes")
	nantes := mustID(t, k, "Nantes")
	if _, err := m.Mine([]kb.EntID{rennes, nantes}); err != nil {
		t.Fatal(err)
	}
	var visits, res, bests int
	for _, e := range events {
		switch e.Kind {
		case EventVisit:
			visits++
		case EventRE:
			res++
		case EventNewBest:
			bests++
		}
	}
	if visits == 0 || res == 0 || bests == 0 {
		t.Fatalf("trace incomplete: %d visits %d REs %d bests", visits, res, bests)
	}
}

// TestTraceMaskFiltersKinds checks that a narrow TraceMask delivers exactly
// the selected kinds (and as many of them as the unmasked trace would).
func TestTraceMaskFiltersKinds(t *testing.T) {
	k, est := tinySetup(t)
	targets := []kb.EntID{mustID(t, k, "Rennes"), mustID(t, k, "Nantes")}

	countKinds := func(mask EventMask) map[EventKind]int {
		cfg := DefaultConfig()
		cfg.TraceMask = mask
		got := make(map[EventKind]int)
		cfg.Trace = func(e Event) {
			if e.Expression == nil {
				t.Fatalf("traced event %v carries no expression", e.Kind)
			}
			got[e.Kind]++
		}
		m := NewMiner(k, est, cfg)
		if _, err := m.Mine(targets); err != nil {
			t.Fatal(err)
		}
		return got
	}

	full := countKinds(0)
	if full[EventVisit] == 0 || full[EventNewBest] == 0 {
		t.Fatalf("unmasked trace incomplete: %v", full)
	}
	masked := countKinds(MaskOf(EventNewBest))
	if len(masked) != 1 || masked[EventNewBest] != full[EventNewBest] {
		t.Fatalf("MaskOf(EventNewBest) delivered %v, want exactly %d new-best events",
			masked, full[EventNewBest])
	}
}

func TestEventMaskWants(t *testing.T) {
	var zero EventMask
	for _, k := range []EventKind{EventVisit, EventRE, EventPruneSide, EventPruneCost, EventNewBest} {
		if !zero.Wants(k) {
			t.Fatalf("zero mask must deliver %v", k)
		}
	}
	m := MaskOf(EventVisit, EventPruneCost)
	if !m.Wants(EventVisit) || !m.Wants(EventPruneCost) {
		t.Fatal("mask dropped a selected kind")
	}
	if m.Wants(EventRE) || m.Wants(EventNewBest) || m.Wants(EventPruneSide) {
		t.Fatal("mask delivered an unselected kind")
	}
}

func TestMinerStats(t *testing.T) {
	k, est := tinySetup(t)
	m := NewMiner(k, est, DefaultConfig())
	paris := mustID(t, k, "Paris")
	res, err := m.Mine([]kb.EntID{paris})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates == 0 || res.Stats.Visited == 0 || res.Stats.RETests == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}
