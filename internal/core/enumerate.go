// Package core implements the paper's primary contribution: the REMI and
// P-REMI algorithms (Section 3.3 and 3.4) that mine the most intuitive
// referring expression for a set of target entities, together with the
// subgraph-expression enumeration, its pruning heuristics (Section 3.5.2)
// and the search-space census used for the Section 3.2 observations.
package core

import (
	"slices"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// Language selects the RE language bias.
type Language int

const (
	// StandardLanguage is the state-of-the-art bias: conjunctions of bound
	// atoms p(x, I) only.
	StandardLanguage Language = iota
	// ExtendedLanguage is REMI's bias (Table 1): subgraph expressions with
	// at most one additional existential variable and three atoms.
	ExtendedLanguage
)

// String names the language bias as in Table 4.
func (l Language) String() string {
	if l == StandardLanguage {
		return "standard"
	}
	return "remi"
}

// EnumerateOptions tunes the subgraphs-expressions routine.
type EnumerateOptions struct {
	Language Language
	// Prominent is the set of entities in the top fraction of the frequency
	// ranking (Section 3.5.2 uses 5%): atoms with such objects are not
	// expanded into multi-atom subgraph expressions. The dense bitmap set
	// makes the per-edge probe a shift and an AND (build one with
	// kb.ProminentSet, or kb.EntSetFromMap for a legacy map). Nil keeps all.
	Prominent *kb.EntSet
	// SkipPredicate drops subgraph expressions using the predicate (used by
	// the entity-summarization evaluation to exclude rdf:type and inverse
	// predicates, Section 4.1.4). Nil keeps all.
	SkipPredicate func(kb.PredID) bool
	// SkipPredID drops one predicate by id with an inline compare instead
	// of an indirect call — the miner uses it for the label predicate,
	// which is checked once per adjacency edge on the queue-build hot path.
	// Zero skips none; it composes with SkipPredicate.
	SkipPredID kb.PredID
	// MaxStarsPerPath caps the number of path+star extensions derived per
	// intermediate entity to keep pathological hubs tractable. Zero means
	// no cap.
	MaxStarsPerPath int
}

// SubgraphsOf enumerates every subgraph expression of entity t in the
// configured language (the subgraphs-expressions routine of Section 3.3,
// with the blank-node and prominence pruning of Section 3.5.2). Results are
// deduplicated but not ordered. Dedup runs on a pooled open-addressing
// table (see sgset.go), so a steady-state call allocates only the returned
// slice.
func SubgraphsOf(k *kb.KB, t kb.EntID, opts EnumerateOptions) []expr.Subgraph {
	adj := k.AdjacencyOf(t)
	return appendSubgraphsOf(make([]expr.Subgraph, 0, 2*len(adj)), k, t, opts)
}

// appendSubgraphsOf is SubgraphsOf appending into a caller-provided buffer,
// so the miner's queue build can reuse a pooled candidate slice across Mine
// calls instead of allocating one per search.
func appendSubgraphsOf(out []expr.Subgraph, k *kb.KB, t kb.EntID, opts EnumerateOptions) []expr.Subgraph {
	adj := k.AdjacencyOf(t)
	skip := opts.SkipPredicate
	skipID := opts.SkipPredID
	drop := func(p kb.PredID) bool { return p == skipID || (skip != nil && skip(p)) }

	// Single atoms p0(x, I0). Blank-node objects are skipped by conception
	// (they are anonymous, hence irrelevant in a description). The adjacency
	// is duplicate-free and no multi-atom shape can collide with an Atom1,
	// so single atoms bypass the dedup table entirely.
	for _, po := range adj {
		if drop(po.P) {
			continue
		}
		if k.IsBlank(po.O) {
			continue
		}
		out = append(out, expr.NewAtom1(po.P, po.O))
	}
	if opts.Language == StandardLanguage {
		return out
	}

	sc := getEnumScratch()
	defer putEnumScratch(sc)
	seen := &sc.table
	dedupOff := false
	add := func(g expr.Subgraph) {
		if dedupOff {
			out = append(out, g)
			return
		}
		if seen.add(g) {
			out = append(out, g)
		}
	}

	// Path and path+star shapes: expand p0(x,y) through intermediate y.
	// Paths "hiding" blank nodes are always derived; objects among the most
	// prominent entities are not expanded (their single atom is already
	// cheap). Literals cannot be expanded.
	//
	// Two path (or path+star) expressions can only collide when they share
	// p0 and come from different intermediates; the adjacency is sorted by
	// (P,O), so edges sharing a predicate form contiguous runs, and a run
	// with a single expandable intermediate — the common case in Zipf-shaped
	// KBs — emits its expressions straight to the output, bypassing the
	// dedup table (the enumeration order, hence the output, is unchanged).
	ys := sc.ys[:0]
	for ri := 0; ri < len(adj); {
		rj := ri + 1
		for rj < len(adj) && adj[rj].P == adj[ri].P {
			rj++
		}
		p0 := adj[ri].P
		if drop(p0) {
			ri = rj
			continue
		}
		ys = ys[:0]
		for e := ri; e < rj; e++ {
			y := adj[e].O
			if k.IsLiteral(y) || y == t {
				continue
			}
			if !k.IsBlank(y) && opts.Prominent.Contains(y) {
				continue
			}
			ys = append(ys, y)
		}
		dedupOff = len(ys) == 1
		for _, y := range ys {
			yAdj := k.AdjacencyOf(y)
			// Collect the expandable (p1, I1) atoms of y once. Tail constants
			// of multi-atom subgraph expressions are entities (blank nodes
			// are irrelevant by conception and literal tails — labels, counts
			// — do not name concepts a user would recognize through a join).
			tails := sc.tails[:0]
			for _, t1 := range yAdj {
				if drop(t1.P) {
					continue
				}
				if k.Kind(t1.O) != rdf.IRI {
					continue
				}
				tails = append(tails, t1)
			}
			sc.tails = tails
			for _, t1 := range tails {
				add(expr.NewPath(p0, t1.P, t1.O))
			}
			starBudget := opts.MaxStarsPerPath
			for i := 0; i < len(tails); i++ {
				for j := i + 1; j < len(tails); j++ {
					add(expr.NewPathStar(p0, tails[i].P, tails[i].O, tails[j].P, tails[j].O))
					if starBudget > 0 {
						starBudget--
						if starBudget == 0 {
							i = len(tails) // stop both loops
							break
						}
					}
				}
			}
		}
		dedupOff = false
		ri = rj
	}
	sc.ys = ys

	// Closed shapes: predicates of t sharing an object y. The adjacency is
	// re-sorted by (O,P) into pooled scratch so object groups are contiguous
	// runs — no per-call map.
	byObj := append(sc.byObj[:0], adj...)
	if skip != nil || skipID != 0 {
		w := 0
		for _, po := range byObj {
			if !drop(po.P) {
				byObj[w] = po
				w++
			}
		}
		byObj = byObj[:w]
	}
	slices.SortFunc(byObj, func(a, b kb.PO) int {
		if a.O != b.O {
			return int(a.O) - int(b.O)
		}
		return int(a.P) - int(b.P)
	})
	sc.byObj = byObj
	for lo := 0; lo < len(byObj); {
		hi := lo + 1
		for hi < len(byObj) && byObj[hi].O == byObj[lo].O {
			hi++
		}
		// The run is sorted by P already (adjacency order is (P,O), re-sorted
		// (O,P) above), matching the sorted predicate lists of the old map
		// grouping.
		if hi-lo >= 2 {
			preds := byObj[lo:hi]
			for i := 0; i < len(preds); i++ {
				for j := i + 1; j < len(preds); j++ {
					add(expr.NewClosed2(preds[i].P, preds[j].P))
					for l := j + 1; l < len(preds); l++ {
						add(expr.NewClosed3(preds[i].P, preds[j].P, preds[l].P))
					}
				}
			}
		}
		lo = hi
	}
	return out
}

// CommonSubgraphs enumerates the subgraph expressions common to all target
// entities (line 1 of Algorithm 1): the subgraphs of the first target
// filtered by a match test on every other target. The miner's queue build
// runs the same filter fanned across a worker pool (see buildQueue); this
// sequential form is kept for callers that want the plain routine.
func CommonSubgraphs(k *kb.KB, targets []kb.EntID, opts EnumerateOptions) []expr.Subgraph {
	if len(targets) == 0 {
		return nil
	}
	cands := SubgraphsOf(k, targets[0], opts)
	if len(targets) == 1 {
		return cands
	}
	out := cands[:0]
	for _, g := range cands {
		if holdsForAll(k, g, targets[1:]) {
			out = append(out, g)
		}
	}
	return out
}

// holdsForAll reports whether g matches every entity of rest.
func holdsForAll(k *kb.KB, g expr.Subgraph, rest []kb.EntID) bool {
	for _, t := range rest {
		if !expr.HoldsFor(k, g, t) {
			return false
		}
	}
	return true
}
