// Package core implements the paper's primary contribution: the REMI and
// P-REMI algorithms (Section 3.3 and 3.4) that mine the most intuitive
// referring expression for a set of target entities, together with the
// subgraph-expression enumeration, its pruning heuristics (Section 3.5.2)
// and the search-space census used for the Section 3.2 observations.
package core

import (
	"sort"

	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// Language selects the RE language bias.
type Language int

const (
	// StandardLanguage is the state-of-the-art bias: conjunctions of bound
	// atoms p(x, I) only.
	StandardLanguage Language = iota
	// ExtendedLanguage is REMI's bias (Table 1): subgraph expressions with
	// at most one additional existential variable and three atoms.
	ExtendedLanguage
)

// String names the language bias as in Table 4.
func (l Language) String() string {
	if l == StandardLanguage {
		return "standard"
	}
	return "remi"
}

// EnumerateOptions tunes the subgraphs-expressions routine.
type EnumerateOptions struct {
	Language Language
	// Prominent is the set of entities in the top fraction of the frequency
	// ranking (Section 3.5.2 uses 5%): atoms with such objects are not
	// expanded into multi-atom subgraph expressions.
	Prominent map[kb.EntID]bool
	// SkipPredicate drops subgraph expressions using the predicate (used by
	// the entity-summarization evaluation to exclude rdf:type and inverse
	// predicates, Section 4.1.4). Nil keeps all.
	SkipPredicate func(kb.PredID) bool
	// MaxStarsPerPath caps the number of path+star extensions derived per
	// intermediate entity to keep pathological hubs tractable. Zero means
	// no cap.
	MaxStarsPerPath int
}

// SubgraphsOf enumerates every subgraph expression of entity t in the
// configured language (the subgraphs-expressions routine of Section 3.3,
// with the blank-node and prominence pruning of Section 3.5.2). Results are
// deduplicated but not ordered.
func SubgraphsOf(k *kb.KB, t kb.EntID, opts EnumerateOptions) []expr.Subgraph {
	adjLen := len(k.AdjacencyOf(t))
	seen := make(map[expr.Subgraph]struct{}, 2*adjLen)
	out := make([]expr.Subgraph, 0, 2*adjLen)
	add := func(g expr.Subgraph) {
		if _, dup := seen[g]; !dup {
			seen[g] = struct{}{}
			out = append(out, g)
		}
	}
	skip := opts.SkipPredicate

	adj := k.AdjacencyOf(t)

	// Single atoms p0(x, I0). Blank-node objects are skipped by conception
	// (they are anonymous, hence irrelevant in a description).
	for _, po := range adj {
		if skip != nil && skip(po.P) {
			continue
		}
		if k.IsBlank(po.O) {
			continue
		}
		add(expr.NewAtom1(po.P, po.O))
	}
	if opts.Language == StandardLanguage {
		return out
	}

	// Path and path+star shapes: expand p0(x,y) through intermediate y.
	// Paths "hiding" blank nodes are always derived; objects among the most
	// prominent entities are not expanded (their single atom is already
	// cheap). Literals cannot be expanded.
	for _, po := range adj {
		if skip != nil && skip(po.P) {
			continue
		}
		y := po.O
		if k.IsLiteral(y) || y == t {
			continue
		}
		if !k.IsBlank(y) && opts.Prominent != nil && opts.Prominent[y] {
			continue
		}
		yAdj := k.AdjacencyOf(y)
		// Collect the expandable (p1, I1) atoms of y once. Tail constants of
		// multi-atom subgraph expressions are entities (blank nodes are
		// irrelevant by conception and literal tails — labels, counts — do
		// not name concepts a user would recognize through a join).
		tails := make([]kb.PO, 0, len(yAdj))
		for _, t1 := range yAdj {
			if skip != nil && skip(t1.P) {
				continue
			}
			if k.Kind(t1.O) != rdf.IRI {
				continue
			}
			tails = append(tails, t1)
		}
		for _, t1 := range tails {
			add(expr.NewPath(po.P, t1.P, t1.O))
		}
		starBudget := opts.MaxStarsPerPath
		for i := 0; i < len(tails); i++ {
			for j := i + 1; j < len(tails); j++ {
				add(expr.NewPathStar(po.P, tails[i].P, tails[i].O, tails[j].P, tails[j].O))
				if starBudget > 0 {
					starBudget--
					if starBudget == 0 {
						i = len(tails) // stop both loops
						break
					}
				}
			}
		}
	}

	// Closed shapes: predicates of t sharing an object y.
	byObject := make(map[kb.EntID][]kb.PredID)
	for _, po := range adj {
		if skip != nil && skip(po.P) {
			continue
		}
		byObject[po.O] = append(byObject[po.O], po.P)
	}
	for _, preds := range byObject {
		if len(preds) < 2 {
			continue
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		for i := 0; i < len(preds); i++ {
			for j := i + 1; j < len(preds); j++ {
				add(expr.NewClosed2(preds[i], preds[j]))
				for l := j + 1; l < len(preds); l++ {
					add(expr.NewClosed3(preds[i], preds[j], preds[l]))
				}
			}
		}
	}
	return out
}

// CommonSubgraphs enumerates the subgraph expressions common to all target
// entities (line 1 of Algorithm 1): the subgraphs of the first target
// filtered by a match test on every other target.
func CommonSubgraphs(k *kb.KB, targets []kb.EntID, opts EnumerateOptions) []expr.Subgraph {
	if len(targets) == 0 {
		return nil
	}
	cands := SubgraphsOf(k, targets[0], opts)
	if len(targets) == 1 {
		return cands
	}
	out := cands[:0]
	for _, g := range cands {
		common := true
		for _, t := range targets[1:] {
			if !expr.HoldsFor(k, g, t) {
				common = false
				break
			}
		}
		if common {
			out = append(out, g)
		}
	}
	return out
}
