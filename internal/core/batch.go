package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/remi-kb/remi/internal/kb"
)

// ErrMinePanic wraps a panic recovered from one set's search inside
// MineBatch: the batch's worker goroutines run outside any server-side
// recovery, so an unrecovered panic there would kill the whole process
// instead of failing one set. Test with errors.Is.
var ErrMinePanic = errors.New("core: mining run panicked")

// BatchOutcome is the result of one target set within a MineBatch call.
// Outcomes are positional: MineBatch returns exactly one per input set, in
// input order.
type BatchOutcome struct {
	// Result is the mining result (nil when Err is set). Sets that repeat
	// inside the batch share one *Result; treat it as immutable.
	Result *Result
	// Err isolates per-set failures (currently only ErrNoTargets for an
	// empty set): one bad set never fails the batch.
	Err error
	// Deduplicated marks a set that was served by an identical earlier set
	// of the same batch instead of its own search.
	Deduplicated bool
}

// batchCache shares the expensive queue-prep work across the sets of one
// MineBatch call: scored, cost-sorted candidate lists keyed by first
// (minimum-id) target and finished queues keyed by the normalized target
// set (see buildQueueBatch). Both maps hold immutable values, so a hit
// returns exactly the bytes the unshared build would have produced. Values
// are computed outside the lock: two workers racing on one key may both
// compute, but the results are identical and last-write-wins, which keeps
// the hot path free of per-key wait channels.
type batchCache struct {
	mu      sync.Mutex
	anchors map[kb.EntID][]scored
	queues  map[string][]scored

	anchorHits, queueHits int // shared-work counters (read by tests)
}

func newBatchCache() *batchCache {
	return &batchCache{
		anchors: make(map[kb.EntID][]scored),
		queues:  make(map[string][]scored),
	}
}

// setKey packs a normalized target set into a map key (4 bytes per id; ids
// are sorted and duplicate-free, so equal sets and only equal sets collide).
func setKey(ids []kb.EntID) string {
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

func (bc *batchCache) getQueue(tgt []kb.EntID) ([]scored, bool) {
	key := setKey(tgt)
	bc.mu.Lock()
	defer bc.mu.Unlock()
	q, ok := bc.queues[key]
	if ok {
		bc.queueHits++
	}
	return q, ok
}

func (bc *batchCache) putQueue(tgt []kb.EntID, q []scored) {
	key := setKey(tgt)
	bc.mu.Lock()
	bc.queues[key] = q
	bc.mu.Unlock()
}

func (bc *batchCache) getAnchor(t kb.EntID) ([]scored, bool) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	c, ok := bc.anchors[t]
	if ok {
		bc.anchorHits++
	}
	return c, ok
}

func (bc *batchCache) putAnchor(t kb.EntID, c []scored) {
	bc.mu.Lock()
	bc.anchors[t] = c
	bc.mu.Unlock()
}

// hits returns the shared-work counters (anchor-list and whole-queue hits).
func (bc *batchCache) hits() (anchors, queues int) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.anchorHits, bc.queueHits
}

// MineBatch mines many target sets in one call, sharing one pass of the
// per-KB work that N independent MineContext calls would repeat: the
// evaluator's binding-set cache is warm across sets (striped, with per-key
// miss coalescing when sets run concurrently), the estimator's Ĉ memo is
// reused, identical sets collapse onto a single search, and sets sharing
// their first (minimum-id) target share the candidate enumeration feeding
// buildQueue. Results are byte-identical to per-set MineContext calls — the
// shared caches only memoize deterministic computations — and come back in
// input order, one outcome per set.
//
// concurrency bounds the worker pool fanning sets; values <= 0 pick
// GOMAXPROCS, 1 mines the sets serially. Per-set isolation holds throughout:
// Config.Timeout budgets each set separately, an empty set yields
// ErrNoTargets in its own outcome, and only cancelling ctx stops the whole
// batch (each still-running set then returns its partial result with
// Stats.TimedOut set, like MineContext).
//
// MineBatch may enable evaluator miss coalescing (when concurrency > 1), so
// it must not run concurrently with other Mine calls on the same Miner;
// facade callers construct a Miner per batch.
func (m *Miner) MineBatch(ctx context.Context, sets [][]kb.EntID, concurrency int) []BatchOutcome {
	return m.MineBatchEach(ctx, sets, concurrency, nil)
}

// MineBatchEach is MineBatch with per-set completion delivery: each is
// invoked once per input slot, as soon as that slot's outcome is known, and
// the returned slice still holds every outcome in input order. Invocations
// are serialized (never concurrent with each other), so the callback may
// write to shared state without its own locking; the slots of one collapsed
// search (in-batch repeats) are delivered back-to-back. Streaming servers
// use this to push entries to clients while later sets are still mining. A
// nil each makes it exactly MineBatch.
func (m *Miner) MineBatchEach(ctx context.Context, sets [][]kb.EntID, concurrency int, each func(slot int, o BatchOutcome)) []BatchOutcome {
	out := make([]BatchOutcome, len(sets))
	if len(sets) == 0 {
		return out
	}

	// Collapse identical sets: one search per distinct normalized set, its
	// outcome shared by every slot that asked for it.
	type job struct {
		tgt   []kb.EntID
		slots []int
	}
	var jobs []*job
	byKey := make(map[string]*job, len(sets))
	for i, set := range sets {
		if len(set) == 0 {
			out[i] = BatchOutcome{Err: ErrNoTargets}
			if each != nil {
				// No workers are running yet: empty-set outcomes stream out
				// before any search starts, with no lock needed.
				each(i, out[i])
			}
			continue
		}
		tgt := normalizeTargets(set)
		key := setKey(tgt)
		if j, ok := byKey[key]; ok {
			j.slots = append(j.slots, i)
			continue
		}
		j := &job{tgt: tgt, slots: []int{i}}
		byKey[key] = j
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return out
	}
	if concurrency < 1 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > len(jobs) {
		concurrency = len(jobs)
	}
	if concurrency > 1 {
		// Concurrent sets share the evaluator: stripe the cache and coalesce
		// per-key misses so parallel sets hammering the same queue-head
		// subgraphs compute each binding set once. Idempotent when the miner
		// already runs P-REMI workers.
		m.Ev.EnableCoalescing()
	}

	bc := newBatchCache()
	var eachMu sync.Mutex // serializes each() across worker goroutines
	run := func(j *job) {
		res, err := func() (res *Result, err error) {
			// One set's panic fails its own outcome, not the process (and
			// not its batch neighbors): these goroutines are the server's
			// only mining path with no recovery above them.
			defer func() {
				if p := recover(); p != nil {
					res, err = nil, fmt.Errorf("%w: %v", ErrMinePanic, p)
				}
			}()
			return m.mineSet(ctx, j.tgt, bc)
		}()
		eachMu.Lock()
		for si, slot := range j.slots {
			out[slot] = BatchOutcome{Result: res, Err: err, Deduplicated: si > 0}
			if each != nil {
				each(slot, out[slot])
			}
		}
		eachMu.Unlock()
	}
	if concurrency == 1 {
		for _, j := range jobs {
			run(j)
		}
		return out
	}
	work := make(chan *job)
	var wg sync.WaitGroup
	wg.Add(concurrency)
	for w := 0; w < concurrency; w++ {
		go func() {
			defer wg.Done()
			for j := range work {
				run(j)
			}
		}()
	}
	for _, j := range jobs {
		work <- j
	}
	close(work)
	wg.Wait()
	return out
}
