package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/kb"
)

// batchFixtureSets builds a workload over the queueTestMiner KB shaped like
// the batch use case: overlapping candidate sets (shared minimum-id anchor),
// an exact repeat, a singleton and an empty set.
func batchFixtureSets(t *testing.T, m *Miner) [][]kb.EntID {
	t.Helper()
	ids := make([]kb.EntID, 0, 16)
	for i := 1; i <= 16; i++ {
		ids = append(ids, m.K.MustEntityID(fmt.Sprintf("http://q/e%d", i)))
	}
	ids = normalizeTargets(ids)
	if len(ids) < 13 {
		t.Fatalf("fixture KB lost entities: %d left", len(ids))
	}
	return [][]kb.EntID{
		{ids[0], ids[5]},
		{ids[0], ids[5], ids[9]}, // superset: shares the enumeration anchor
		{ids[0], ids[7]},         // sibling: same anchor, different rest
		{ids[5], ids[0]},         // repeat of set 0 in another order
		{},                       // per-set failure, must not fail the batch
		{ids[3]},
		{ids[3], ids[12]},
		{ids[1], ids[2]},
	}
}

// TestMineBatchGoldenEquivalence is the batch-vs-sequential golden contract:
// MineBatch over N sets must produce results identical — expressions, bits,
// alternatives, queue sizes — to N independent MineContext calls on fresh
// miners, for every pool width. Run with `go test -race -cpu 1,4,8` to
// exercise the GOMAXPROCS values the shared evaluator stripes key on.
func TestMineBatchGoldenEquivalence(t *testing.T) {
	ref, _ := queueTestMiner(t, 31)
	sets := batchFixtureSets(t, ref)

	type golden struct {
		found  bool
		expr   string
		bits   float64
		nsols  int
		ncands int
	}
	want := make([]*golden, len(sets))
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		mm := NewMiner(ref.K, ref.Est, ref.cfg)
		res, err := mm.MineContext(context.Background(), set)
		if err != nil {
			t.Fatalf("sequential set %d: %v", i, err)
		}
		want[i] = &golden{
			found:  res.Found(),
			expr:   res.Expression.Format(ref.K),
			bits:   res.Bits,
			nsols:  len(res.Solutions),
			ncands: res.Stats.Candidates,
		}
	}

	for _, conc := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("concurrency=%d", conc), func(t *testing.T) {
			m := NewMiner(ref.K, ref.Est, ref.cfg)
			outs := m.MineBatch(context.Background(), sets, conc)
			if len(outs) != len(sets) {
				t.Fatalf("got %d outcomes for %d sets", len(outs), len(sets))
			}
			for i, o := range outs {
				if want[i] == nil {
					if !errors.Is(o.Err, ErrNoTargets) {
						t.Fatalf("set %d: err = %v, want ErrNoTargets", i, o.Err)
					}
					continue
				}
				if o.Err != nil {
					t.Fatalf("set %d: unexpected error %v", i, o.Err)
				}
				res := o.Result
				if res.Found() != want[i].found {
					t.Fatalf("set %d: found = %v, want %v", i, res.Found(), want[i].found)
				}
				if got := res.Expression.Format(ref.K); got != want[i].expr {
					t.Fatalf("set %d: expression %q, want %q", i, got, want[i].expr)
				}
				if res.Found() && res.Bits != want[i].bits {
					t.Fatalf("set %d: bits %v, want %v", i, res.Bits, want[i].bits)
				}
				if len(res.Solutions) != want[i].nsols {
					t.Fatalf("set %d: %d solutions, want %d", i, len(res.Solutions), want[i].nsols)
				}
				if res.Stats.Candidates != want[i].ncands {
					t.Fatalf("set %d: %d candidates, want %d", i, res.Stats.Candidates, want[i].ncands)
				}
			}
			// The repeat (set 3) must share set 0's search, not rerun it.
			if outs[3].Result != outs[0].Result || !outs[3].Deduplicated {
				t.Fatalf("repeated set not deduplicated: %+v", outs[3])
			}
			if outs[0].Deduplicated {
				t.Fatal("first occurrence marked deduplicated")
			}
		})
	}
}

// TestMineBatchSharesQueueWork white-boxes the batch cache: sets sharing
// their first target must reuse its scored anchor list (skipping
// enumeration, scoring and the sort), an identical set must reuse the
// finished queue — and the shared path must still produce the exact queue
// the unshared build computes.
func TestMineBatchSharesQueueWork(t *testing.T) {
	m, _ := queueTestMiner(t, 37)
	sets := batchFixtureSets(t, m)

	bc := newBatchCache()
	for _, set := range sets {
		if len(set) == 0 {
			continue
		}
		if _, err := m.mineSet(context.Background(), normalizeTargets(set), bc); err != nil {
			t.Fatal(err)
		}
	}
	anchorHits, queueHits := bc.hits()
	// Sets 1 and 2 share set 0's anchor; set 6 shares set 5's.
	if anchorHits < 3 {
		t.Fatalf("anchor-list hits = %d, want >= 3", anchorHits)
	}
	// Set 3 repeats set 0 exactly.
	if queueHits < 1 {
		t.Fatalf("queue hits = %d, want >= 1", queueHits)
	}

	// Cached queues must be byte-identical to the unshared build.
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		tgt := normalizeTargets(set)
		cached, ok := bc.getQueue(tgt)
		if !ok {
			t.Fatalf("set %d: no cached queue", i)
		}
		plain, timedOut := m.buildQueue(context.Background(), tgt, &queueBufs{})
		if timedOut {
			t.Fatalf("set %d: unshared build timed out", i)
		}
		if len(cached) != len(plain) {
			t.Fatalf("set %d: cached queue len %d, unshared %d", i, len(cached), len(plain))
		}
		for j := range cached {
			if cached[j].g != plain[j].g || cached[j].cost != plain[j].cost {
				t.Fatalf("set %d: queue[%d] differs between cached and unshared build", i, j)
			}
		}
	}
}

// TestMineBatchPerSetTimeout: Config.Timeout budgets each set separately —
// a timed-out set reports TimedOut in its own stats without erroring the
// batch or its neighbors.
func TestMineBatchPerSetTimeout(t *testing.T) {
	m, _ := queueTestMiner(t, 41)
	cfg := m.cfg
	cfg.Timeout = time.Nanosecond
	mm := NewMiner(m.K, m.Est, cfg)
	sets := batchFixtureSets(t, m)
	outs := mm.MineBatch(context.Background(), sets, 2)
	for i, o := range outs {
		if len(sets[i]) == 0 {
			if !errors.Is(o.Err, ErrNoTargets) {
				t.Fatalf("set %d: err = %v, want ErrNoTargets", i, o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("set %d: err = %v, want partial result", i, o.Err)
		}
		if !o.Result.Stats.TimedOut {
			t.Fatalf("set %d: 1ns budget did not time out", i)
		}
	}
}

// TestMineBatchCancelledContext: cancelling the batch context stops every
// set; outcomes are partial results flagged TimedOut, mirroring MineContext.
func TestMineBatchCancelledContext(t *testing.T) {
	m, _ := queueTestMiner(t, 43)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sets := batchFixtureSets(t, m)
	outs := m.MineBatch(ctx, sets, 4)
	for i, o := range outs {
		if len(sets[i]) == 0 {
			continue
		}
		if o.Err != nil {
			t.Fatalf("set %d: err = %v", i, o.Err)
		}
		if !o.Result.Stats.TimedOut {
			t.Fatalf("set %d: cancelled batch did not mark TimedOut", i)
		}
	}
}

// TestMineBatchPerSetCacheCounters: per-set cache stats are deltas of the
// shared evaluator's counters, not cumulative snapshots — across a serial
// batch they partition the evaluator totals exactly, so a server summing
// them per run cannot overcount.
func TestMineBatchPerSetCacheCounters(t *testing.T) {
	m, _ := queueTestMiner(t, 53)
	sets := batchFixtureSets(t, m)
	outs := m.MineBatch(context.Background(), sets, 1)
	_, hits, misses := m.Ev.Stats()
	var sumHits, sumMisses uint64
	seen := make(map[*Result]bool)
	for i, o := range outs {
		if o.Err != nil || seen[o.Result] {
			continue
		}
		seen[o.Result] = true
		st := o.Result.Stats
		if st.CacheHits > hits || st.CacheMisses > misses {
			t.Fatalf("set %d reports more cache traffic (%d/%d) than the whole evaluator (%d/%d)",
				i, st.CacheHits, st.CacheMisses, hits, misses)
		}
		sumHits += st.CacheHits
		sumMisses += st.CacheMisses
	}
	if sumHits != hits || sumMisses != misses {
		t.Fatalf("per-set cache counters sum to %d/%d, evaluator reports %d/%d",
			sumHits, sumMisses, hits, misses)
	}
	if misses == 0 {
		t.Fatal("fixture exercised no cache misses")
	}
}

// TestMineBatchPanicIsolation: a panic inside a batch worker (here forced
// with a nil estimator, which the queue scoring dereferences) becomes an
// ErrMinePanic outcome on each affected set instead of killing the process
// — MineBatch's pool goroutines are the one mining path with no recovery
// above them. Recovery is per job, so a panicking set cannot take its
// batch neighbors down either.
func TestMineBatchPanicIsolation(t *testing.T) {
	m, _ := queueTestMiner(t, 59)
	sets := batchFixtureSets(t, m)
	mm := NewMiner(m.K, nil, m.cfg)
	outs := mm.MineBatch(context.Background(), sets, 2)
	for i, o := range outs {
		if len(sets[i]) == 0 {
			if !errors.Is(o.Err, ErrNoTargets) {
				t.Fatalf("empty set %d: err = %v", i, o.Err)
			}
			continue
		}
		if !errors.Is(o.Err, ErrMinePanic) {
			t.Fatalf("set %d: err = %v, want ErrMinePanic", i, o.Err)
		}
	}
}

// TestMineBatchEachStreams: the per-set callback fires exactly once per
// slot, serialized, with the same outcome the returned slice reports — the
// contract streaming handlers rely on to push entries while the batch still
// runs. In-batch repeats must arrive back-to-back after their original.
func TestMineBatchEachStreams(t *testing.T) {
	m, _ := queueTestMiner(t, 61)
	sets := batchFixtureSets(t, m)
	for _, conc := range []int{1, 4} {
		t.Run(fmt.Sprintf("concurrency=%d", conc), func(t *testing.T) {
			mm := NewMiner(m.K, m.Est, m.cfg)
			var order []int
			got := make(map[int]BatchOutcome)
			outs := mm.MineBatchEach(context.Background(), sets, conc, func(slot int, o BatchOutcome) {
				// Serialized delivery: plain map/slice writes must be safe.
				if _, dup := got[slot]; dup {
					t.Errorf("slot %d delivered twice", slot)
				}
				got[slot] = o
				order = append(order, slot)
			})
			if len(got) != len(sets) {
				t.Fatalf("callback fired for %d slots, want %d", len(got), len(sets))
			}
			for i, o := range outs {
				if got[i] != o {
					t.Fatalf("slot %d: callback outcome %+v != returned %+v", i, got[i], o)
				}
			}
			// Set 3 repeats set 0: its delivery must directly follow set 0's.
			for pos, slot := range order {
				if slot == 0 {
					if pos+1 >= len(order) || order[pos+1] != 3 {
						t.Fatalf("repeat slot 3 not delivered right after slot 0: order %v", order)
					}
				}
			}
			if !got[3].Deduplicated || got[3].Result != got[0].Result {
				t.Fatalf("repeat slot not shared: %+v", got[3])
			}
		})
	}
}

// TestMineBatchEmpty covers the zero-set batch.
func TestMineBatchEmpty(t *testing.T) {
	m, _ := queueTestMiner(t, 47)
	if outs := m.MineBatch(context.Background(), nil, 4); len(outs) != 0 {
		t.Fatalf("got %d outcomes for an empty batch", len(outs))
	}
}
