package core

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
)

// mineParallel is P-REMI (Section 3.4): multiple workers concurrently
// dequeue subgraph expressions from the priority queue and explore the
// subtrees rooted at them. It preserves REMI's logic with the paper's three
// differences:
//
//  1. the least complex solution is shared by all threads (the bound),
//  2. a thread whose exploration rooted at ρi exhausts without a solution
//     signals every thread rooted at ρj (j > i) to stop, because any RE
//     prefixed with a costlier subgraph expression would imply one in ρi's
//     subtree,
//  3. before testing an expression each thread checks the shared bound and
//     backtracks past nodes that can no longer improve on it (implemented
//     as the live cost pruning inside dfsRemi).
func (m *Miner) mineParallel(ctx context.Context, queue []scored, targets []kb.EntID, res *Result) {
	workers := m.cfg.Workers
	if workers > len(queue) && len(queue) > 0 {
		workers = len(queue)
	}
	if workers < 1 {
		workers = 1
	}

	bnd := newBound(m.topK())
	canSolve, timedOut := m.solvableSuffixes(ctx, queue, targets)
	if timedOut {
		res.Stats.TimedOut = true
		return
	}
	var next int64                       // atomic: next queue index to claim
	noSolutionFloor := int64(len(queue)) // atomic: lowest index proven solution-free
	perWorker := make([]Stats, workers)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			st := &perWorker[w]
			sc := getScratch() // per-worker scratch: never shared while held
			defer putScratch(sc)
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(queue)) {
					return
				}
				if i > atomic.LoadInt64(&noSolutionFloor) {
					return // difference 2: a cheaper subtree proved emptiness
				}
				if !canSolve[i] {
					return // suffix floor: no RE can exist from here on
				}
				if expired(ctx) {
					st.TimedOut = true
					return
				}
				if queue[i].cost >= bnd.Cost() {
					return // every remaining prefix is at least as complex
				}
				prefix := append(make(expr.Expression, 0, 8), queue[i].g)
				_, found := m.dfsRemi(ctx, prefix, queue[i].cost, m.Ev.Bindings(queue[i].g),
					queue, int(i)+1, targets, 0, sc, bnd, st)
				if !found && !st.TimedOut && bnd.Cost() == complexity.Infinite {
					// The subtree was explored exhaustively (no bound existed
					// to prune it) and contains no RE: anything rooted at a
					// costlier subgraph expression is superfluous.
					for {
						cur := atomic.LoadInt64(&noSolutionFloor)
						if i >= cur || atomic.CompareAndSwapInt64(&noSolutionFloor, cur, i) {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for w := range perWorker {
		res.Stats.add(&perWorker[w])
	}
	res.Expression, _ = bnd.Get()
	res.Solutions = bnd.All()
}
