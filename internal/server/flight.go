package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"

	remi "github.com/remi-kb/remi"
)

// errMinePanic marks a recovered panic from a mining run; the handlers map
// it to a 500.
var errMinePanic = errors.New("mining run panicked")

// runSafely converts a panic in the shared mining run into an error for the
// waiters: the run executes in a detached goroutine, outside net/http's
// per-connection recovery, so an unrecovered panic there would kill the
// whole server. The stack is logged server-side; clients only see the
// panic value.
func runSafely(ctx context.Context, fn func(ctx context.Context) (*remi.Result, error)) (res *remi.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			log.Printf("server: mining run panicked: %v\n%s", p, debug.Stack())
			res, err = nil, fmt.Errorf("%w: %v", errMinePanic, p)
		}
	}()
	return fn(ctx)
}

// flight is one in-flight mining run that concurrent identical queries
// attach to instead of starting their own.
type flight struct {
	done    chan struct{} // closed when the run finishes; res/err are then set
	res     *remi.Result
	err     error
	waiters int                // guarded by the owning group's mu
	cancel  context.CancelFunc // cancels the run's context
}

// flightGroup deduplicates concurrent mining runs by query key, in the
// spirit of singleflight but context-aware: the shared run is cancelled
// only when every attached request has gone away, so one impatient client
// cannot kill a run other clients are still waiting on.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do executes fn for key, sharing a single execution among concurrent
// callers with the same key. joined reports whether this caller attached to
// a run somebody else started. When the caller's ctx ends first, do returns
// ctx.Err() immediately; if the caller was the last one attached, the
// shared run's context is cancelled so the miner stops too.
func (g *flightGroup) do(ctx context.Context, key string,
	fn func(ctx context.Context) (*remi.Result, error)) (res *remi.Result, joined bool, err error) {

	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f, ok := g.m[key]
	if ok {
		f.waiters++
		joined = true
	} else {
		// The run's context is deliberately detached from any single
		// request: it lives as long as at least one waiter does.
		runCtx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		g.m[key] = f
		go func() {
			r, e := runSafely(runCtx, fn)
			g.mu.Lock()
			if g.m[key] == f {
				delete(g.m, key)
			}
			g.mu.Unlock()
			f.res, f.err = r, e
			close(f.done)
			cancel()
		}()
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.res, joined, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		if last && g.m[key] == f {
			// New arrivals must not join a run that is about to be
			// cancelled.
			delete(g.m, key)
		}
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, joined, ctx.Err()
	}
}
