package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/server/faults"
	"github.com/remi-kb/remi/internal/server/jobs"
)

// This file is the chaos suite: every test arms a faults.Point, drives the
// server through its public HTTP surface, and asserts the documented
// degraded behavior — not just "no crash" but the specific containment the
// operations story promises (last-known-good serving, watchdog kills,
// bounded event logs, quota vs saturation rejections, graceful drain).

// chaosServer is tinyServer plus a faults.Reset cleanup registered to run
// before the server's Close, so an armed Block can never wedge shutdown
// even when the test fails mid-way.
func chaosServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := tinyServer(t, opts)
	t.Cleanup(faults.Reset) // LIFO: runs before s.Close
	return s
}

// kbStats reads the default KB's entry from /v1/stats.
func kbStats(t *testing.T, h http.Handler) KBInfo {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body.String())
	}
	return decode[StatsResponse](t, rec).KBs[DefaultKBName]
}

func fullStats(t *testing.T, h http.Handler) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body.String())
	}
	return decode[StatsResponse](t, rec)
}

// TestChaosReloadLastKnownGood is the reload-containment contract: a failed
// reload — source unopenable, or corrupt after reading — must leave the old
// generation serving byte-identical results, count into reload_failures,
// and quarantine the source; a later successful reload clears the
// quarantine and bumps the generation.
func TestChaosReloadLastKnownGood(t *testing.T) {
	for _, tc := range []struct {
		name  string
		point faults.Point
	}{
		{"open error", faults.ReloadOpen},
		{"corrupt source", faults.ReloadCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := chaosServer(t, Options{
				DefaultTimeout: 10 * time.Second,
				ReloadBackoff:  40 * time.Millisecond,
			})
			h := s.Handler()
			mine := func() string {
				rec := postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
				if rec.Code != http.StatusOK {
					t.Fatalf("mine: %d %s", rec.Code, rec.Body.String())
				}
				return rec.Body.String()
			}
			mine() // populate the result cache
			before := mine()
			g0 := kbStats(t, h).Generation

			disarm := faults.Arm(tc.point, faults.Injection{Err: errors.New("injected reload fault")})
			reload := func() error {
				return s.ReloadKB(DefaultKBName, func() (*remi.System, error) { return tinySys, nil })
			}
			err := reload()
			if err == nil {
				t.Fatal("armed reload did not fail")
			}
			if !strings.Contains(err.Error(), "still serving generation") {
				t.Fatalf("reload error does not name the surviving generation: %v", err)
			}
			if got := faults.Hits(tc.point); got != 1 {
				t.Fatalf("fault point fired %d times, want 1", got)
			}

			// The golden assertion: the exact bytes served before the failed
			// reload keep coming (same generation, same cache, same result).
			if after := mine(); after != before {
				t.Fatalf("degraded serving changed bytes:\nbefore: %s\nafter:  %s", before, after)
			}
			info := kbStats(t, h)
			if info.Generation != g0 {
				t.Fatalf("generation moved across a failed reload: %d -> %d", g0, info.Generation)
			}
			if info.ReloadFailures != 1 {
				t.Fatalf("reload_failures = %d, want 1", info.ReloadFailures)
			}
			if info.QuarantinedForMS <= 0 {
				t.Fatal("failed reload did not quarantine the source")
			}

			// While quarantined, even a healthy reload is refused.
			disarm()
			if err := reload(); !errors.Is(err, errReloadQuarantined) {
				t.Fatalf("reload during quarantine: %v, want quarantine refusal", err)
			}
			waitFor(t, func() bool { return kbStats(t, h).QuarantinedForMS == 0 })
			if err := reload(); err != nil {
				t.Fatalf("reload after quarantine expiry: %v", err)
			}
			info = kbStats(t, h)
			if info.Generation != g0+1 || info.LastGoodGeneration != g0+1 {
				t.Fatalf("successful reload: generation %d / last good %d, want %d",
					info.Generation, info.LastGoodGeneration, g0+1)
			}
			if info.QuarantinedForMS != 0 {
				t.Fatal("successful reload left the source quarantined")
			}
		})
	}
}

// TestChaosReloadBackoffDoubles pins the exponential part of the reload
// quarantine: consecutive failures double the window (the durations are
// embedded in the reload errors, so the test reads them back exactly).
func TestChaosReloadBackoffDoubles(t *testing.T) {
	s := chaosServer(t, Options{ReloadBackoff: 40 * time.Millisecond})
	h := s.Handler()
	defer faults.Arm(faults.ReloadOpen, faults.Injection{Err: errors.New("boom")})()
	reload := func() error {
		return s.ReloadKB(DefaultKBName, func() (*remi.System, error) { return tinySys, nil })
	}
	err := reload()
	if err == nil || !strings.Contains(err.Error(), "retry in 40ms") {
		t.Fatalf("first failure backoff: %v, want retry in 40ms", err)
	}
	waitFor(t, func() bool { return kbStats(t, h).QuarantinedForMS == 0 })
	err = reload()
	if err == nil || !strings.Contains(err.Error(), "retry in 80ms") {
		t.Fatalf("second failure backoff: %v, want retry in 80ms", err)
	}
}

// TestChaosReloadSlowDoesNotBlockServing: while a reload crawls (cold page
// cache, slow disk), requests keep being served by the old generation —
// mining never waits on the reload path.
func TestChaosReloadSlowDoesNotBlockServing(t *testing.T) {
	s := chaosServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	defer faults.Arm(faults.ReloadSlow, faults.Injection{Delay: 400 * time.Millisecond})()

	reloadDone := make(chan error, 1)
	go func() {
		reloadDone <- s.ReloadKB(DefaultKBName, func() (*remi.System, error) { return tinySys, nil })
	}()
	t0 := time.Now()
	rec := postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Nantes"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mine during slow reload: %d %s", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(t0); elapsed >= 350*time.Millisecond {
		t.Fatalf("mining waited %v on a slow reload", elapsed)
	}
	if err := <-reloadDone; err != nil {
		t.Fatalf("slow reload failed: %v", err)
	}
}

// TestChaosWatchdogKillsStuckMine: a mining run that wedges and stops
// checking its context is failed by the watchdog with a 504, its worker
// slot is freed, and the pool keeps serving.
func TestChaosWatchdogKillsStuckMine(t *testing.T) {
	s := chaosServer(t, Options{
		DefaultTimeout: 50 * time.Millisecond,
		WatchdogGrace:  40 * time.Millisecond,
	})
	h := s.Handler()
	disarm := faults.Arm(faults.JobStuck, faults.Injection{Block: true})

	rec := postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("stuck mine: %d %s, want 504", rec.Code, rec.Body.String())
	}
	if er := decode[ErrorResponse](t, rec); !strings.Contains(er.Error, "watchdog") {
		t.Fatalf("stuck mine error %q does not name the watchdog", er.Error)
	}
	st := fullStats(t, h)
	if st.Jobs.WatchdogKills < 1 {
		t.Fatalf("watchdog_kills = %d, want >= 1", st.Jobs.WatchdogKills)
	}

	// The slot was handed off: with the fault disarmed the pool serves again.
	disarm()
	rec = postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Nantes"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mine after watchdog kill: %d %s", rec.Code, rec.Body.String())
	}
}

// TestChaosWatchdogFailedJobDocument pins the async face of a watchdog
// kill: the job document reports state "failed", the watchdog error, and
// the 504 the blocking endpoint would have answered.
func TestChaosWatchdogFailedJobDocument(t *testing.T) {
	s := chaosServer(t, Options{
		DefaultTimeout: 50 * time.Millisecond,
		WatchdogGrace:  40 * time.Millisecond,
	})
	h := s.Handler()
	defer faults.Arm(faults.JobStuck, faults.Injection{Block: true})()

	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", rec.Code, rec.Body.String())
	}
	id := decode[JobResponse](t, rec).ID
	var doc JobResponse
	waitFor(t, func() bool {
		r2 := httptest.NewRecorder()
		h.ServeHTTP(r2, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
		doc = decode[JobResponse](t, r2)
		return doc.State == "failed"
	})
	if doc.Status != http.StatusGatewayTimeout {
		t.Fatalf("watchdog-failed job status = %d, want 504", doc.Status)
	}
	if !strings.Contains(doc.Error, "watchdog") {
		t.Fatalf("watchdog-failed job error %q does not name the watchdog", doc.Error)
	}
}

// TestChaosMinePanicContained: an evaluator bug (panic inside a pool run)
// becomes a 500 for the waiter; the pool and the process survive and the
// next request is served normally. The batch face delivers the panic as
// per-entry 500s without failing the whole endpoint.
func TestChaosMinePanicContained(t *testing.T) {
	s := chaosServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	disarm := faults.Arm(faults.MinePanic, faults.Injection{Panic: "injected evaluator bug"})

	rec := postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked mine: %d %s, want 500", rec.Code, rec.Body.String())
	}
	if er := decode[ErrorResponse](t, rec); !strings.Contains(er.Error, "panicked") {
		t.Fatalf("panicked mine error %q does not say so", er.Error)
	}
	brec := postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: [][]string{{tinyNS + "Nantes"}}})
	if brec.Code != http.StatusOK {
		t.Fatalf("batch with panicking phase: %d %s", brec.Code, brec.Body.String())
	}
	br := decode[BatchMineResponse](t, brec)
	if len(br.Results) != 1 || br.Results[0].Status != http.StatusInternalServerError {
		t.Fatalf("batch entry after panic: %+v, want per-entry 500", br.Results)
	}

	disarm()
	rec = postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mine after contained panic: %d %s", rec.Code, rec.Body.String())
	}
}

// retryAfterSecs parses the Retry-After header, failing on absence: every
// 429 must tell the client when to come back, and never "0 seconds".
func retryAfterSecs(t *testing.T, rec *httptest.ResponseRecorder) int {
	t.Helper()
	v := rec.Header().Get("Retry-After")
	if v == "" {
		t.Fatal("429 without a Retry-After header")
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("unparsable Retry-After %q", v)
	}
	return n
}

// TestChaosQuotaVsSaturation separates the two 429s: a quota rejection
// names the client and derives Retry-After from that client's own deficit;
// a saturation rejection talks about the shared queue and still honors the
// 1-second Retry-After floor. Other clients sail through a neighbor's
// exhausted quota.
func TestChaosQuotaVsSaturation(t *testing.T) {
	t.Run("quota", func(t *testing.T) {
		s := chaosServer(t, Options{
			DefaultTimeout: 10 * time.Second,
			QuotaRate:      0.01, // ~100s per token: no refill mid-test
			QuotaBurst:     2,
		})
		h := s.Handler()
		mineAs := func(client string) *httptest.ResponseRecorder {
			req := newJSONRequest(t, "POST", "/v1/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
			req.Header.Set("X-Client-Id", client)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return rec
		}
		for i := 0; i < 2; i++ {
			if rec := mineAs("alice"); rec.Code != http.StatusOK {
				t.Fatalf("alice mine %d: %d %s", i, rec.Code, rec.Body.String())
			}
		}
		rec := mineAs("alice")
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("alice over quota: %d, want 429", rec.Code)
		}
		if secs := retryAfterSecs(t, rec); secs < 1 {
			t.Fatalf("quota Retry-After %ds, want >= 1", secs)
		}
		er := decode[ErrorResponse](t, rec)
		if !strings.Contains(er.Error, "quota exceeded") || !strings.Contains(er.Error, "alice") {
			t.Fatalf("quota error %q does not name the quota and the client", er.Error)
		}
		if rec := mineAs("bob"); rec.Code != http.StatusOK {
			t.Fatalf("bob behind alice's quota: %d %s", rec.Code, rec.Body.String())
		}
		st := fullStats(t, h)
		if st.Quota == nil || !st.Quota.Enabled || st.Quota.Rejected != 1 || st.Quota.Clients < 1 {
			t.Fatalf("quota stats %+v, want enabled with 1 rejection", st.Quota)
		}
	})

	t.Run("saturation", func(t *testing.T) {
		s := chaosServer(t, Options{
			DefaultTimeout: 10 * time.Second,
			JobWorkers:     1,
			JobQueueDepth:  1,
		})
		h := s.Handler()
		defer faults.Arm(faults.JobStuck, faults.Injection{Block: true, BlockCtx: true})()
		// Occupy the worker and the one queue slot with distinct queries,
		// waiting for the first to leave the queue for the worker.
		for i, target := range []string{"Rennes", "Nantes"} {
			rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + target}})
			if rec.Code != http.StatusAccepted {
				t.Fatalf("async fill %d: %d %s", i, rec.Code, rec.Body.String())
			}
			if i == 0 {
				waitFor(t, func() bool { return s.jobs.Snapshot().Queued == 0 })
			}
		}
		rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Paris"}})
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("saturated submit: %d %s, want 429", rec.Code, rec.Body.String())
		}
		if secs := retryAfterSecs(t, rec); secs < 1 {
			t.Fatalf("saturation Retry-After %ds, want the 1s floor", secs)
		}
		er := decode[ErrorResponse](t, rec)
		if !strings.Contains(er.Error, "saturated") || strings.Contains(er.Error, "quota") {
			t.Fatalf("saturation error %q must talk about the queue, not quotas", er.Error)
		}
	})
}

// TestChaosBatchPriorityReserve: with queue slots reserved for interactive
// work, batch submissions are shed while a single mine still gets in.
func TestChaosBatchPriorityReserve(t *testing.T) {
	s := chaosServer(t, Options{
		DefaultTimeout:     10 * time.Second,
		JobWorkers:         1,
		JobQueueDepth:      2,
		InteractiveReserve: 1,
	})
	h := s.Handler()
	defer faults.Arm(faults.JobStuck, faults.Injection{Block: true, BlockCtx: true})()

	// A stuck interactive run occupies the worker; one async batch phase
	// fills the unreserved queue slot; the next batch must be shed while an
	// interactive request still gets the reserved slot.
	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("interactive fill: %d %s", rec.Code, rec.Body.String())
	}
	waitFor(t, func() bool { return s.jobs.Snapshot().Queued == 0 })
	rec = postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Sets: [][]string{{tinyNS + "Nantes"}}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("batch fill: %d %s", rec.Code, rec.Body.String())
	}
	brec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Sets: [][]string{{tinyNS + "Paris"}}})
	if brec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch into reserved queue: %d %s, want 429", brec.Code, brec.Body.String())
	}
	irec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Vannes"}})
	if irec.Code != http.StatusAccepted {
		t.Fatalf("interactive into reserve: %d %s, want 202", irec.Code, irec.Body.String())
	}
	st := fullStats(t, h)
	if st.Jobs.RejectedBatch < 1 {
		t.Fatalf("rejected_batch = %d, want >= 1", st.Jobs.RejectedBatch)
	}
}

// TestChaosGracefulDrain: draining flips readiness (while liveness stays
// green), refuses new mining work with 503, lets in-flight jobs finish,
// and DrainWait returns once they have.
func TestChaosGracefulDrain(t *testing.T) {
	s := chaosServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	defer faults.Arm(faults.JobStuck, faults.Injection{Delay: 100 * time.Millisecond})()

	// An in-flight async job that outlives the drain flip.
	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", rec.Code, rec.Body.String())
	}
	id := decode[JobResponse](t, rec).ID

	get := func(path string) *httptest.ResponseRecorder {
		r := httptest.NewRecorder()
		h.ServeHTTP(r, httptest.NewRequest("GET", path, nil))
		return r
	}
	if r := get("/readyz"); r.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", r.Code)
	}
	s.StartDrain()
	if r := get("/healthz"); r.Code != http.StatusOK || !strings.Contains(r.Body.String(), `"draining":true`) {
		t.Fatalf("healthz during drain: %d %s, want 200 + draining", r.Code, r.Body.String())
	}
	if r := get("/readyz"); r.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", r.Code)
	}
	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/mine", MineRequest{Targets: []string{tinyNS + "Nantes"}}},
		{"/v1/mine:batch", BatchMineRequest{Sets: [][]string{{tinyNS + "Nantes"}}}},
		{"/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Nantes"}}},
		{"/v1/mine:stream", AsyncMineRequest{Targets: []string{tinyNS + "Nantes"}}},
	} {
		rec := postJSON(t, h, tc.path, tc.body)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: %d, want 503", tc.path, rec.Code)
		}
		if er := decode[ErrorResponse](t, rec); !strings.Contains(er.Error, "draining") {
			t.Fatalf("%s drain error %q does not say draining", tc.path, er.Error)
		}
	}
	// Reads still work mid-drain: the in-flight job is observable until done.
	if r := get("/v1/jobs/" + id); r.Code != http.StatusOK {
		t.Fatalf("job poll during drain: %d", r.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.DrainWait(ctx); err != nil {
		t.Fatalf("DrainWait: %v", err)
	}
	if r := get("/v1/jobs/" + id); decode[JobResponse](t, r).State != "done" {
		t.Fatalf("in-flight job did not finish across drain: %s", r.Body.String())
	}
	st := fullStats(t, h)
	if !st.Draining || st.Jobs == nil || !st.Jobs.Draining {
		t.Fatal("stats do not report draining")
	}
}

// TestChaosStreamStallBoundedLog: a stream consumer that stops reading must
// not grow the job's event log without bound. The log stays capped while
// the consumer is wedged, and once it resumes it receives one explicit
// truncation marker whose count, plus the events actually delivered,
// accounts for every event emitted.
func TestChaosStreamStallBoundedLog(t *testing.T) {
	s := chaosServer(t, Options{DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _ := s.jobs.External(jobs.SubmitOpts{
		Kind: jobKindMine, Meta: jobMeta{kb: DefaultKBName}, Retain: true, Detached: true,
	})
	j.Emit(streamProgress, StreamEvent{Event: streamProgress, Expression: "e0"})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first event: %v", sc.Err())
	}

	// Consumer "stops reading": every further send parks until disarmed.
	// One probe event first — once its send is parked (Hits >= 1), the
	// follower is pinned at a low cursor while the storm laps the log.
	disarm := faults.Arm(faults.StreamStall, faults.Injection{Block: true})
	j.Emit(streamProgress, StreamEvent{Event: streamProgress, Expression: "probe"})
	waitFor(t, func() bool { return faults.Hits(faults.StreamStall) >= 1 })
	const storm = 1200
	for i := 0; i < storm; i++ {
		j.Emit(streamProgress, StreamEvent{Event: streamProgress, Expression: fmt.Sprintf("e%d", i)})
	}
	disarm()
	j.Complete(nil, nil)
	const emitted = storm + 2 // e0 + probe + storm

	// Drain the stream: the marker plus delivered progress events must
	// account for everything emitted (nothing silently lost).
	progress, dropped, truncs := 1, 0, 0 // first event read above
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case streamProgress:
			progress++
		case streamTruncated:
			truncs++
			dropped += ev.Dropped
		case streamDone:
		default:
			t.Fatalf("unexpected stream event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if truncs != 1 || dropped <= 0 {
		t.Fatalf("got %d truncation markers dropping %d, want exactly 1 with a positive count", truncs, dropped)
	}
	if progress+dropped != emitted {
		t.Fatalf("accounting broken: %d delivered + %d dropped != %d emitted", progress, dropped, emitted)
	}
	if progress >= emitted {
		t.Fatal("log was not bounded: every event survived a stalled consumer")
	}
}
