package server

// Admin mutation plane for live KBs: POST /v1/kb/{name}/facts applies a
// mutation batch (acknowledged only after the WAL fsync), and
// POST /v1/admin/compile folds base+delta into a fresh snapshot and
// truncates the WAL. Both endpoints swap the KB's serving System through
// the same generation machinery as reloads, so every cache and in-flight
// dedup key of the old generation becomes unreachable the moment the
// mutation is acknowledged.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/kb/delta"
	"github.com/remi-kb/remi/internal/rdf"
)

// errNotLive rejects mutation-plane requests against a KB registered
// without a WAL-backed delta layer; mapped to a 409.
var errNotLive = errors.New("knowledge base is not live (no WAL-backed delta layer)")

// errCompacting rejects a compile while another compaction of the same KB
// is still running; mapped to a 409.
var errCompacting = errors.New("compaction already in progress")

// maxFactOps caps the ops of one mutation batch; the request body cap
// already bounds bytes, this bounds the per-op work (parse, validate,
// mirror) independently of op size.
const maxFactOps = 10000

// AddLiveKB registers a live (mutable) knowledge base under name: its
// current materialized System serves reads, and the admin mutation plane
// (POST /v1/kb/{name}/facts, POST /v1/admin/compile) is enabled for it.
func (s *Server) AddLiveKB(name string, live *remi.LiveKB) error {
	if err := s.AddKB(name, live.System()); err != nil {
		return err
	}
	return s.BindLive(name, live)
}

// BindLive attaches a live KB's mutation plane to an already-registered
// entry (used when the live KB is the server's default, which New
// registers before BindLive can run).
func (s *Server) BindLive(name string, live *remi.LiveKB) error {
	e, err := s.lookupKB(name)
	if err != nil {
		return err
	}
	e.live = live
	return nil
}

// retire schedules the Close of a swapped-out System after the configured
// grace period. With RetireGrace zero (the default) old generations are
// never closed — their mappings stay pinned for the process lifetime,
// which is always safe — so only deployments that opt in reclaim mappings.
// The grace must exceed the longest possible mining run (MaxTimeout plus
// watchdog slack): a run still holding the old System when it closes
// would read unmapped memory.
func (s *Server) retire(old *remi.System) {
	if old == nil || s.opts.RetireGrace <= 0 {
		return
	}
	time.AfterFunc(s.opts.RetireGrace, func() { _ = old.Close() })
}

// parseFactOps decodes the wire batch into delta ops: terms are N-Triples
// encoded, op is "upsert" (default) or "retract".
func parseFactOps(in []FactOp) ([]delta.Op, error) {
	ops := make([]delta.Op, len(in))
	for i, f := range in {
		switch f.Op {
		case "", "upsert":
		case "retract":
			ops[i].Retract = true
		default:
			return nil, fmt.Errorf("op %d: unknown op %q (upsert|retract)", i, f.Op)
		}
		var err error
		if ops[i].S, err = rdf.ParseTerm(f.S); err != nil {
			return nil, fmt.Errorf("op %d: subject: %w", i, err)
		}
		if ops[i].P, err = rdf.ParseTerm(f.P); err != nil {
			return nil, fmt.Errorf("op %d: predicate: %w", i, err)
		}
		if ops[i].O, err = rdf.ParseTerm(f.O); err != nil {
			return nil, fmt.Errorf("op %d: object: %w", i, err)
		}
	}
	return ops, nil
}

// handleFacts is POST /v1/kb/{name}/facts (and /v1/facts with a kb field):
// one durable mutation batch. The 200 is the ack — it is written only
// after the WAL fsync succeeded and the new generation is serving.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	s.cFacts.requests.Add(1)
	var q FactsRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, &s.cFacts, status, err)
		return
	}
	e, err := s.kbFromRequest(r, q.KB)
	if err != nil {
		s.writeError(w, &s.cFacts, errStatus(err), err)
		return
	}
	if e.live == nil {
		s.writeError(w, &s.cFacts, http.StatusConflict, fmt.Errorf("%w: %q", errNotLive, e.name))
		return
	}
	if len(q.Ops) == 0 {
		s.writeError(w, &s.cFacts, http.StatusBadRequest, errors.New("ops is required"))
		return
	}
	if len(q.Ops) > maxFactOps {
		s.writeError(w, &s.cFacts, http.StatusBadRequest,
			fmt.Errorf("%d ops exceed the batch limit of %d", len(q.Ops), maxFactOps))
		return
	}
	ops, err := parseFactOps(q.Ops)
	if err != nil {
		s.writeError(w, &s.cFacts, http.StatusBadRequest, err)
		return
	}
	// reloadMu serializes this swap against reloads and compactions of the
	// same KB, and orders concurrent mutation batches: the System swapped
	// in always reflects every batch acked before it.
	e.reloadMu.Lock()
	sys, changed, err := e.live.Apply(r.Context(), ops, requestIDOf(r))
	if err != nil {
		e.reloadMu.Unlock()
		status := http.StatusInternalServerError
		if errors.Is(err, delta.ErrInvalidOp) {
			status = http.StatusBadRequest
		}
		s.writeError(w, &s.cFacts, status, err)
		return
	}
	old := e.sys()
	e.swapIn(sys)
	gen := e.generation.Load()
	e.reloadMu.Unlock()
	s.retire(old)
	st := e.live.Stats()
	writeJSON(w, http.StatusOK, FactsResponse{
		KB:         e.name,
		Applied:    len(ops),
		Changed:    changed,
		Generation: gen,
		WalBytes:   st.WalBytes,
		WalRecords: st.WalRecords,
		RequestID:  requestIDOf(r),
	})
}

// handleCompile is POST /v1/admin/compile (and /v1/kb/{name}/admin/compile):
// fold base+delta into a new snapshot, truncate the WAL, swap the compacted
// generation in. Concurrent compiles of the same KB answer 409; a failed
// compaction changes nothing visible (the old generation keeps serving and
// the WAL still holds every acked mutation).
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.cCompile.requests.Add(1)
	var q CompileRequest
	if r.ContentLength != 0 {
		if tooLarge, err := decodeBody(w, r, &q); err != nil {
			status := http.StatusBadRequest
			if tooLarge {
				status = http.StatusRequestEntityTooLarge
			}
			s.writeError(w, &s.cCompile, status, err)
			return
		}
	}
	e, err := s.kbFromRequest(r, q.KB)
	if err != nil {
		s.writeError(w, &s.cCompile, errStatus(err), err)
		return
	}
	if e.live == nil {
		s.writeError(w, &s.cCompile, http.StatusConflict, fmt.Errorf("%w: %q", errNotLive, e.name))
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		s.writeError(w, &s.cCompile, http.StatusConflict, fmt.Errorf("%w for KB %q", errCompacting, e.name))
		return
	}
	defer e.compacting.Store(false)
	sys, err := e.live.Compact(r.Context())
	if err != nil {
		s.writeError(w, &s.cCompile, http.StatusInternalServerError, err)
		return
	}
	e.reloadMu.Lock()
	old := e.sys()
	e.swapIn(sys)
	gen := e.generation.Load()
	e.lastCompactionGen.Store(gen)
	e.reloadMu.Unlock()
	s.retire(old)
	st := e.live.Stats()
	writeJSON(w, http.StatusOK, CompileResponse{
		KB:          e.name,
		Generation:  gen,
		Compactions: st.Compactions,
		WalBytes:    st.WalBytes,
		RequestID:   requestIDOf(r),
	})
}
