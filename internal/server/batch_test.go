package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
)

// newJSONRequest builds a request without serving it, for tests that need
// to tweak the context first.
func newJSONRequest(t *testing.T, method, path string, body any) *http.Request {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewRequest(method, path, bytes.NewReader(buf))
}

// batchGoldenSets is the 8-set workload of the batch golden test: real
// sets, overlapping sets and one exact repeat.
func batchGoldenSets() [][]string {
	return [][]string{
		{tinyNS + "Rennes", tinyNS + "Nantes"},
		{tinyNS + "Paris"},
		{tinyNS + "Lyon"},
		{tinyNS + "Lyon", tinyNS + "Marseille"},
		{tinyNS + "Berlin", tinyNS + "Hamburg"},
		{tinyNS + "Brazil", tinyNS + "Argentina"},
		{tinyNS + "Nantes", tinyNS + "Rennes"}, // repeat of set 0, reordered
		{tinyNS + "Amsterdam"},
	}
}

// TestMineBatchGolden is the service-level acceptance contract: one
// /v1/mine:batch call with 8 target sets returns per-set results
// golden-identical to 8 sequential /v1/mine calls. Sequential and batch run
// on separate servers so the result cache of one cannot feed the other.
func TestMineBatchGolden(t *testing.T) {
	sets := batchGoldenSets()

	seq := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	seqH := seq.Handler()
	want := make([]MineResponse, len(sets))
	for i, targets := range sets {
		rec := postJSON(t, seqH, "/v1/mine", MineRequest{Targets: targets})
		if rec.Code != http.StatusOK {
			t.Fatalf("sequential set %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		want[i] = decode[MineResponse](t, rec)
	}

	batch := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	rec := postJSON(t, batch.Handler(), "/v1/mine:batch", BatchMineRequest{Sets: sets})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
	}
	out := decode[BatchMineResponse](t, rec)
	if len(out.Results) != len(sets) {
		t.Fatalf("batch returned %d results for %d sets", len(out.Results), len(sets))
	}
	for i := range sets {
		got := out.Results[i]
		if got.Error != "" || got.Response == nil {
			t.Fatalf("set %d: unexpected error entry %+v", i, got)
		}
		// Golden identity covers everything the search produces; stats and
		// the served-from flags legitimately differ (the batch shares one
		// evaluator and dedups the repeat).
		if got.Response.Found != want[i].Found ||
			!reflect.DeepEqual(got.Response.Solution, want[i].Solution) ||
			!reflect.DeepEqual(got.Response.Alternatives, want[i].Alternatives) ||
			!reflect.DeepEqual(got.Response.Exceptions, want[i].Exceptions) {
			t.Fatalf("set %d: batch result differs from sequential /v1/mine:\nbatch: %+v\nsequential: %+v",
				i, got.Response, want[i])
		}
	}
	if !out.Results[6].Response.Deduplicated {
		t.Fatal("repeated set not flagged deduplicated")
	}
	st := out.Stats
	if st.Sets != 8 || st.Mined != 7 || st.Deduplicated != 1 || st.Errors != 0 {
		t.Fatalf("batch stats: %+v", st)
	}
	if st.QueueBuildMS < 0 || st.SearchMS < 0 {
		t.Fatalf("negative phase totals: %+v", st)
	}
	if out.KB != DefaultKBName {
		t.Fatalf("batch KB = %q", out.KB)
	}
}

// TestMineBatchPerSetIsolation: bad sets occupy their own error entries —
// with per-set statuses — while the rest of the batch succeeds.
func TestMineBatchPerSetIsolation(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, MaxTargets: 3})
	rec := postJSON(t, s.Handler(), "/v1/mine:batch", BatchMineRequest{Sets: [][]string{
		{tinyNS + "Rennes", tinyNS + "Nantes"},
		{},                   // empty set
		{tinyNS + "Nowhere"}, // unknown entity
		{tinyNS + "Paris", tinyNS + "Lyon", tinyNS + "Berlin", tinyNS + "Hamburg"}, // over MaxTargets
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decode[BatchMineResponse](t, rec)
	if out.Results[0].Error != "" || !out.Results[0].Response.Found {
		t.Fatalf("healthy set failed: %+v", out.Results[0])
	}
	wantStatus := []int{0, http.StatusBadRequest, http.StatusNotFound, http.StatusBadRequest}
	for i := 1; i < 4; i++ {
		if out.Results[i].Error == "" || out.Results[i].Status != wantStatus[i] {
			t.Fatalf("set %d: %+v, want status %d", i, out.Results[i], wantStatus[i])
		}
	}
	if out.Stats.Errors != 3 || out.Stats.Mined != 1 {
		t.Fatalf("batch stats: %+v", out.Stats)
	}
}

// TestMineBatchUsesResultCache: sets already answered by /v1/mine are served
// from the completed-result LRU, and batch results prime the cache for
// later /v1/mine calls.
func TestMineBatchUsesResultCache(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Paris"}})
	runsBefore := s.mineRuns.Load()

	rec := postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: [][]string{
		{tinyNS + "Paris"},
		{tinyNS + "Lyon"},
	}})
	out := decode[BatchMineResponse](t, rec)
	if !out.Results[0].Response.Cached {
		t.Fatalf("previously mined set not served from cache: %+v", out.Results[0])
	}
	if out.Results[1].Response.Cached {
		t.Fatal("fresh set claimed cached")
	}
	if got := s.mineRuns.Load() - runsBefore; got != 1 {
		t.Fatalf("batch executed %d runs, want 1", got)
	}
	if out.Stats.Cached != 1 || out.Stats.Mined != 1 {
		t.Fatalf("batch stats: %+v", out.Stats)
	}

	// The batch-mined set now serves /v1/mine from cache.
	rec = postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Lyon"}})
	if res := decode[MineResponse](t, rec); !res.Cached {
		t.Fatal("batch result did not prime the cache for /v1/mine")
	}
}

// TestMineBatchValidation: batch-level failures are whole-request JSON
// errors.
func TestMineBatchValidation(t *testing.T) {
	s := tinyServer(t, Options{MaxBatchSets: 2})
	h := s.Handler()
	cases := []struct {
		name string
		body BatchMineRequest
		want int
	}{
		{"empty batch", BatchMineRequest{}, http.StatusBadRequest},
		{"oversized batch", BatchMineRequest{Sets: [][]string{
			{tinyNS + "Paris"}, {tinyNS + "Lyon"}, {tinyNS + "Berlin"},
		}}, http.StatusBadRequest},
		{"bad metric", BatchMineRequest{Sets: [][]string{{tinyNS + "Paris"}}, Metric: "xx"}, http.StatusBadRequest},
		{"unknown kb", BatchMineRequest{Sets: [][]string{{tinyNS + "Paris"}}, KB: "nope"}, http.StatusNotFound},
	}
	for _, tc := range cases {
		rec := postJSON(t, h, "/v1/mine:batch", tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		if decode[ErrorResponse](t, rec).Error == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}
}

// TestMineBatchCancelledContext: a batch whose client went away returns 499
// instead of a partial document nobody reads.
func TestMineBatchCancelledContext(t *testing.T) {
	s := tinyServer(t, Options{})
	s.mineBatchEach = func(ctx context.Context, sets [][]string, each func(int, remi.BatchEntry), opts ...remi.MineOption) (*remi.BatchResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	h := s.Handler()
	body := BatchMineRequest{Sets: [][]string{{tinyNS + "Paris"}}}
	req := newJSONRequest(t, "POST", "/v1/mine:batch", body)
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}
}

// TestMultiKBRouting: requests route by body field and path segment, stats
// are per KB, and swapping one KB invalidates only its cached results.
func TestMultiKBRouting(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	second, err := remi.GenerateDemo("tiny", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddKB("geo2", second); err != nil {
		t.Fatal(err)
	}
	if err := s.AddKB("geo2", second); err == nil {
		t.Fatal("duplicate KB name accepted")
	}
	if err := s.AddKB("bad/name", second); err == nil {
		t.Fatal("invalid KB name accepted")
	}
	h := s.Handler()
	body := MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}}

	// Same query on both KBs: separate cache keys, separate runs.
	viaField := MineRequest{Targets: body.Targets, KB: "geo2"}
	if rec := postJSON(t, h, "/v1/mine", viaField); rec.Code != http.StatusOK {
		t.Fatalf("kb field routing: %d: %s", rec.Code, rec.Body.String())
	}
	if rec := postJSON(t, h, "/v1/kb/geo2/mine", body); rec.Code != http.StatusOK {
		t.Fatalf("kb path routing: %d: %s", rec.Code, rec.Body.String())
	}
	// The second geo2 request was an exact repeat: served from cache.
	if runs := s.mineRuns.Load(); runs != 1 {
		t.Fatalf("runs = %d, want 1 (repeat served from cache)", runs)
	}
	if rec := postJSON(t, h, "/v1/mine", body); rec.Code != http.StatusOK {
		t.Fatalf("default KB: %d", rec.Code)
	}
	if runs := s.mineRuns.Load(); runs != 2 {
		t.Fatalf("runs = %d, want 2 (default KB has its own cache scope)", runs)
	}

	// Conflicting body/path names are rejected.
	if rec := postJSON(t, h, "/v1/kb/geo2/mine", MineRequest{Targets: body.Targets, KB: DefaultKBName}); rec.Code != http.StatusBadRequest {
		t.Fatalf("kb conflict: status %d", rec.Code)
	}
	// Unknown KB via path and field: 404 JSON.
	for _, req := range []func() *httptest.ResponseRecorder{
		func() *httptest.ResponseRecorder { return postJSON(t, h, "/v1/kb/nope/mine", body) },
		func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/v1/mine", MineRequest{Targets: body.Targets, KB: "nope"})
		},
	} {
		rec := req()
		if rec.Code != http.StatusNotFound {
			t.Fatalf("unknown kb: status %d", rec.Code)
		}
		if decode[ErrorResponse](t, rec).Error == "" {
			t.Fatal("unknown kb: missing JSON error")
		}
	}

	// Per-KB stats: global lists both, the scoped endpoint narrows to one.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	st := decode[StatsResponse](t, rec)
	if len(st.KBs) != 2 || !st.KBs[DefaultKBName].Default || st.KBs["geo2"].Default {
		t.Fatalf("global per-KB stats: %+v", st.KBs)
	}
	if st.KBs["geo2"].Requests == 0 {
		t.Fatalf("geo2 request counter not bumped: %+v", st.KBs["geo2"])
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/kb/geo2/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("per-KB stats: status %d", rec.Code)
	}
	kst := decode[KBStatsResponse](t, rec)
	if kst.Name != "geo2" || kst.Facts == 0 {
		t.Fatalf("per-KB stats: %+v", kst)
	}

	// Swapping geo2 invalidates only geo2's cache entries.
	if err := s.SwapKB("geo2", second); err != nil {
		t.Fatal(err)
	}
	if rec := postJSON(t, h, "/v1/mine", body); !decode[MineResponse](t, rec).Cached {
		t.Fatal("default KB cache entry lost to a geo2 swap")
	}
	runsBefore := s.mineRuns.Load()
	if rec := postJSON(t, h, "/v1/kb/geo2/mine", body); decode[MineResponse](t, rec).Cached {
		t.Fatal("geo2 cache entry survived its swap")
	}
	if s.mineRuns.Load() != runsBefore+1 {
		t.Fatal("geo2 query after swap did not re-run")
	}
	if err := s.SwapKB("nope", second); err == nil {
		t.Fatal("swap of unknown KB accepted")
	}
}

// TestMultiKBSummarizeAndDescribe: the kb field and path also route the
// other KB-scoped endpoints.
func TestMultiKBSummarizeAndDescribe(t *testing.T) {
	s := tinyServer(t, Options{})
	second, err := remi.GenerateDemo("tiny", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddKB("geo2", second); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := postJSON(t, h, "/v1/kb/geo2/summarize", SummarizeRequest{Entity: tinyNS + "Paris", Size: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("summarize via path: %d: %s", rec.Code, rec.Body.String())
	}
	rec = postJSON(t, h, "/v1/summarize", SummarizeRequest{Entity: tinyNS + "Paris", KB: "nope"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("summarize unknown kb: %d", rec.Code)
	}

	req := httptest.NewRequest("GET", "/v1/kb/geo2/describe?entity="+tinyNS+"Paris", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("describe via path: %d: %s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest("GET", "/v1/describe?entity="+tinyNS+"Paris&kb=nope", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("describe unknown kb: %d", rec.Code)
	}
}
