package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	if Armed() {
		t.Fatal("fresh package reports armed")
	}
	if err := Fire(context.Background(), ReloadOpen); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
	if Hits(ReloadOpen) != 0 {
		t.Fatal("disarmed point recorded hits")
	}
}

func TestArmErrAndDisarm(t *testing.T) {
	boom := errors.New("boom")
	disarm := Arm(ReloadOpen, Injection{Err: boom})
	defer disarm()
	if !Armed() {
		t.Fatal("not armed after Arm")
	}
	if err := Fire(context.Background(), ReloadOpen); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	// A different point stays silent.
	if err := Fire(context.Background(), MinePanic); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if got := Hits(ReloadOpen); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	disarm()
	if Armed() {
		t.Fatal("still armed after disarm")
	}
	if err := Fire(context.Background(), ReloadOpen); err != nil {
		t.Fatalf("Fire after disarm = %v", err)
	}
	disarm() // idempotent
}

func TestArmPanic(t *testing.T) {
	defer Arm(MinePanic, Injection{Panic: "kaboom"})()
	defer func() {
		if p := recover(); p != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", p)
		}
	}()
	_ = Fire(context.Background(), MinePanic)
	t.Fatal("Fire did not panic")
}

func TestBlockUnparksOnDisarm(t *testing.T) {
	disarm := Arm(JobStuck, Injection{Block: true})
	released := make(chan error, 1)
	go func() { released <- Fire(context.Background(), JobStuck) }()
	select {
	case err := <-released:
		t.Fatalf("blocked Fire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	disarm()
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("Fire after disarm = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fire stayed blocked after disarm")
	}
}

func TestBlockCtxUnparksOnContext(t *testing.T) {
	boom := errors.New("stuck")
	defer Arm(JobStuck, Injection{Block: true, BlockCtx: true, Err: boom})()
	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan error, 1)
	go func() { released <- Fire(ctx, JobStuck) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-released:
		if !errors.Is(err, boom) {
			t.Fatalf("Fire = %v, want stuck", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fire ignored the context")
	}
}

func TestDelayBoundedByContext(t *testing.T) {
	defer Arm(ReloadSlow, Injection{Delay: time.Hour})()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := Fire(ctx, ReloadSlow); err != nil {
		t.Fatalf("Fire = %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("delay ignored the context (took %v)", took)
	}
}

func TestRearmReplaces(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	d1 := Arm(ReloadCorrupt, Injection{Err: e1})
	d2 := Arm(ReloadCorrupt, Injection{Err: e2})
	defer d2()
	if err := Fire(context.Background(), ReloadCorrupt); !errors.Is(err, e2) {
		t.Fatalf("Fire = %v, want two", err)
	}
	// The stale disarm func must not remove the replacement.
	d1()
	if err := Fire(context.Background(), ReloadCorrupt); !errors.Is(err, e2) {
		t.Fatalf("Fire after stale disarm = %v, want two", err)
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	Arm(ReloadOpen, Injection{Err: errors.New("a")})
	Arm(StreamStall, Injection{Block: true})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = Fire(context.Background(), StreamStall)
	}()
	time.Sleep(5 * time.Millisecond)
	Reset()
	wg.Wait() // blocked Fire must unpark
	if Armed() {
		t.Fatal("armed after Reset")
	}
	if err := Fire(context.Background(), ReloadOpen); err != nil {
		t.Fatalf("Fire after Reset = %v", err)
	}
}
