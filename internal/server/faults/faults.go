// Package faults compiles named failure points into the serving stack so
// the chaos suite can prove degraded behavior instead of hoping for it:
// a test arms a point (an injected error, a panic, a delay, or a block
// that models wedged code), drives the server through its public surface,
// and asserts the documented containment — old-generation serving after a
// failed reload, a watchdog-killed stuck job, a bounded event log under a
// stalled stream consumer.
//
// Production pays one atomic load per failure point while nothing is
// armed: every entry into the package goes through Armed(), which reads a
// single counter and returns immediately at zero. Arming is test-only by
// convention (nothing in cmd/ or the handlers calls Arm), and Arm returns
// the disarm func so tests can defer it.
//
// The points are deliberately few and named after the failure they model,
// not after the code line they live on — call sites may move, the chaos
// suite's vocabulary should not.
package faults

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one failure point compiled into the serving stack.
type Point string

// The failure points of the serving stack. Each is documented with the
// degraded behavior the chaos suite asserts when it is armed.
const (
	// ReloadOpen fails a KB reload before the source is read: a missing
	// file, a permission error, a snapshot whose open fails. Degraded
	// behavior: the old generation keeps serving, the source is
	// quarantined with backoff.
	ReloadOpen Point = "reload.open"
	// ReloadCorrupt fails a KB reload after the source was read: a
	// corrupt or truncated snapshot payload, a parse error mid-file.
	// Degraded behavior: identical to ReloadOpen (the failure mode
	// differs, the containment must not).
	ReloadCorrupt Point = "reload.corrupt"
	// ReloadSlow delays a KB reload (slow disk, cold page cache).
	// Degraded behavior: serving continues on the old generation while
	// the reload runs; no request blocks on it.
	ReloadSlow Point = "reload.slow"
	// MinePanic panics inside a pool-executed mining run (an evaluator
	// bug). Degraded behavior: the waiter gets a 500, the process and the
	// pool survive.
	MinePanic Point = "mine.panic"
	// JobStuck wedges a pool-executed mining run (an evaluator loop that
	// stopped checking its context). Degraded behavior: the watchdog
	// fails the job with ErrWatchdogKilled and frees its worker slot.
	JobStuck Point = "job.stuck"
	// StreamStall wedges a streaming response mid-write (a consumer that
	// stopped reading while the kernel buffers filled). Degraded
	// behavior: the job's event log stays bounded and a late reader sees
	// an explicit truncation marker.
	StreamStall Point = "stream.stall"

	// ReplicaDown fails the router's forward to a key's primary replica (a
	// crashed process, a dropped connection). It fires only on the primary
	// attempt, so tests model "the primary is down" without taking the
	// whole fleet with it. Degraded behavior: the router retries onto the
	// next healthy replica in ring order and the client sees the same
	// answer it would have gotten from a healthy primary; after K
	// consecutive failures the replica's circuit breaker opens.
	ReplicaDown Point = "replica.down"
	// ReplicaSlow delays the router's forward to a key's primary replica
	// (a GC pause, a saturated node). Like ReplicaDown it fires only on
	// the primary attempt. Degraded behavior: a hedged second request
	// answers from another replica before the slow primary does.
	ReplicaSlow Point = "replica.slow"
	// FetchCorrupt corrupts a replica's snapshot pull after the bytes
	// arrive (a torn upload, bit rot on the wire). When armed with an
	// error, the puller flips a byte of the downloaded image, so the
	// checksum verification — not the injection — rejects it. Degraded
	// behavior: the pull quarantines with backoff and the replica keeps
	// serving its last-known-good generation.
	FetchCorrupt Point = "fetch.corrupt"
	// ProbeTimeout wedges or fails the router's /readyz probe of a
	// replica (a half-dead host that accepts connections but never
	// answers). Degraded behavior: the replica is marked unhealthy and
	// drops out of routing until a probe succeeds again.
	ProbeTimeout Point = "probe.timeout"

	// WalSync fails the fsync that would acknowledge a WAL append (a full
	// disk, a dying device). The record bytes may have reached the file,
	// but durability was never promised. Degraded behavior: the mutation
	// is refused (no ack), the in-memory KB is unchanged, and a later
	// replay may or may not surface the record — both are correct because
	// the client was never told it stuck.
	WalSync Point = "wal.sync"
	// WalTorn crashes an append mid-record: a prefix of the frame reaches
	// the disk and the process dies before the rest. Degraded behavior:
	// the mutation is refused (no ack) and the next boot's replay
	// truncates the torn tail, recovering exactly the acknowledged prefix
	// instead of refusing to start.
	WalTorn Point = "wal.torn"
	// CompactCrash crashes a compaction in its one dangerous window:
	// after the new snapshot is durable but before the WAL is truncated.
	// Degraded behavior: the next boot loads the snapshot and re-applies
	// the whole WAL; replay is idempotent, so already-folded records
	// converge and mining stays byte-identical.
	CompactCrash Point = "compact.crash"
	// DeltaApply fails a mutation while it is still being staged in
	// memory — malformed state detected before anything is written.
	// Degraded behavior: the request fails, and neither the WAL nor the
	// serving KB shows any trace of it.
	DeltaApply Point = "delta.apply"
)

// Injection describes what an armed point does when fired, in the order
// Fire applies them: Delay sleeps, Block parks, Panic panics, Err returns.
type Injection struct {
	// Err is returned by Fire (after Delay/Block) when non-nil.
	Err error
	// Panic is panicked with when non-nil.
	Panic any
	// Delay sleeps before anything else (a slow path, not a failed one).
	Delay time.Duration
	// Block parks Fire until the point is disarmed (a wedged path). With
	// BlockCtx set, the caller's context also unparks it — modelling code
	// that is slow but still cancellable.
	Block    bool
	BlockCtx bool
}

// injection is one armed point plus its release channel and hit counter.
type injection struct {
	Injection
	release chan struct{} // closed at disarm; unparks Block
	hits    atomic.Int64
}

var (
	// armed counts currently-armed points; the disarmed fast path of every
	// Fire is this single atomic load reading zero.
	armed  atomic.Int32
	mu     sync.Mutex
	points = make(map[Point]*injection)
)

// Armed reports whether any failure point is armed. It is the only check
// production code pays while the package is idle.
func Armed() bool { return armed.Load() != 0 }

// Arm installs inj at p and returns the func that disarms it (and unparks
// anything blocked on it). Arming an already-armed point replaces it.
// Test-only by convention.
func Arm(p Point, inj Injection) (disarm func()) {
	mu.Lock()
	defer mu.Unlock()
	if old, ok := points[p]; ok {
		close(old.release)
		armed.Add(-1)
	}
	in := &injection{Injection: inj, release: make(chan struct{})}
	points[p] = in
	armed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			defer mu.Unlock()
			if points[p] == in {
				delete(points, p)
				close(in.release)
				armed.Add(-1)
			}
		})
	}
}

// Reset disarms every point (test cleanup of last resort).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for p, in := range points {
		delete(points, p)
		close(in.release)
		armed.Add(-1)
	}
}

// Hits reports how many times p fired while armed (0 when never armed),
// so tests can assert a hook is actually wired into the path under test.
func Hits(p Point) int64 {
	mu.Lock()
	defer mu.Unlock()
	if in, ok := points[p]; ok {
		return in.hits.Load()
	}
	return 0
}

// Fire triggers p: a disarmed point returns nil after one atomic load; an
// armed one applies its Injection (delay, block, panic, error — in that
// order). ctx bounds Delay and (with BlockCtx) Block; pass
// context.Background() where no caller context exists.
func Fire(ctx context.Context, p Point) error {
	if armed.Load() == 0 {
		return nil
	}
	return fire(ctx, p)
}

// fire is the armed slow path, kept out of Fire so the fast path inlines.
func fire(ctx context.Context, p Point) error {
	mu.Lock()
	in := points[p]
	mu.Unlock()
	if in == nil {
		return nil
	}
	in.hits.Add(1)
	if in.Delay > 0 {
		t := time.NewTimer(in.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	if in.Block {
		if in.BlockCtx {
			select {
			case <-in.release:
			case <-ctx.Done():
			}
		} else {
			<-in.release
		}
	}
	if in.Panic != nil {
		panic(in.Panic)
	}
	return in.Err
}
