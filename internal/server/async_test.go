package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
)

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, h http.Handler, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, rec.Code, rec.Body.String())
		}
		jr := decode[JobResponse](t, rec)
		switch jr.State {
		case "done", "failed", "cancelled":
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, jr.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// parseNDJSON decodes a streamed NDJSON body into its events.
func parseNDJSON(t *testing.T, rec *httptest.ResponseRecorder) []StreamEvent {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q, want application/x-ndjson", ct)
	}
	var evs []StreamEvent
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	if len(evs) == 0 {
		t.Fatal("empty stream")
	}
	return evs
}

// expressionsOf flattens a response's solution and alternatives for
// order-sensitive equivalence checks.
func expressionsOf(r *MineResponse) []string {
	var out []string
	if r.Solution != nil {
		out = append(out, r.Solution.Expression)
	}
	for _, a := range r.Alternatives {
		out = append(out, a.Expression)
	}
	return out
}

// sameMineOutcome asserts two responses describe the same mining outcome:
// same found flag, same expressions in the same order, same exceptions
// (stats and serving flags are allowed to differ).
func sameMineOutcome(t *testing.T, label string, got, want *MineResponse) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: response presence differs: got %v, want %v", label, got, want)
	}
	if got == nil {
		return
	}
	if got.Found != want.Found {
		t.Fatalf("%s: found=%v, want %v", label, got.Found, want.Found)
	}
	if gx, wx := expressionsOf(got), expressionsOf(want); !reflect.DeepEqual(gx, wx) {
		t.Fatalf("%s: expressions %v, want %v", label, gx, wx)
	}
	if !reflect.DeepEqual(got.Exceptions, want.Exceptions) {
		t.Fatalf("%s: exceptions %v, want %v", label, got.Exceptions, want.Exceptions)
	}
}

// TestBatchJoinsSingleFlight is the unified-namespace regression test: a
// batch entry joins a single /v1/mine run already in flight — and a single
// request joins an in-flight batch member — so one evaluator pass serves
// both callers in either direction.
func TestBatchJoinsSingleFlight(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: -1})
	releaseMine := make(chan struct{})
	releaseBatch := make(chan struct{})
	var mineCalls, batchCalls atomic.Int32
	realMine := s.sys().MineContext
	realBatch := s.sys().MineBatchEach
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		mineCalls.Add(1)
		<-releaseMine
		return realMine(ctx, targets, opts...)
	}
	s.mineBatchEach = func(ctx context.Context, sets [][]string, each func(int, remi.BatchEntry), opts ...remi.MineOption) (*remi.BatchResult, error) {
		batchCalls.Add(1)
		<-releaseBatch
		return realBatch(ctx, sets, each, opts...)
	}
	h := s.Handler()

	// Direction 1: the single request runs, the batch entry joins it.
	targetsA := []string{tinyNS + "Rennes", tinyNS + "Nantes"}
	keyA := flightKeyOf(t, s, MineRequest{Targets: targetsA})
	var singleA, batchA *httptest.ResponseRecorder
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); singleA = postJSON(t, h, "/v1/mine", MineRequest{Targets: targetsA}) }()
	waitFor(t, func() bool {
		j, ok := s.jobs.Lookup(keyA)
		return ok && j.Refs() == 1
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		batchA = postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: [][]string{targetsA}})
	}()
	waitFor(t, func() bool {
		j, ok := s.jobs.Lookup(keyA)
		return ok && j.Refs() == 2
	})
	close(releaseMine)
	wg.Wait()

	if got := mineCalls.Load(); got != 1 {
		t.Fatalf("direction 1: %d mining runs, want 1 shared pass", got)
	}
	if got := batchCalls.Load(); got != 0 {
		t.Fatalf("direction 1: the joined batch entry started %d batch passes", got)
	}
	single := decode[MineResponse](t, singleA)
	if !single.Found || single.Deduplicated {
		t.Fatalf("single response wrong: %+v", single)
	}
	batch := decode[BatchMineResponse](t, batchA)
	if len(batch.Results) != 1 || batch.Results[0].Response == nil {
		t.Fatalf("batch response wrong: %s", batchA.Body.String())
	}
	if !batch.Results[0].Response.Deduplicated {
		t.Fatal("batch entry did not report joining the in-flight single run")
	}
	if batch.Stats.Deduplicated != 1 || batch.Stats.Mined != 0 {
		t.Fatalf("batch stats %+v, want 1 deduplicated / 0 mined", batch.Stats)
	}
	sameMineOutcome(t, "joined batch entry", batch.Results[0].Response, &single)

	// Direction 2: the batch member runs, the single request joins it.
	targetsB := []string{tinyNS + "Paris"}
	keyB := flightKeyOf(t, s, MineRequest{Targets: targetsB})
	var singleB, batchB *httptest.ResponseRecorder
	wg.Add(1)
	go func() {
		defer wg.Done()
		batchB = postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: [][]string{targetsB}})
	}()
	waitFor(t, func() bool {
		j, ok := s.jobs.Lookup(keyB)
		return ok && j.Refs() == 1
	})
	wg.Add(1)
	go func() { defer wg.Done(); singleB = postJSON(t, h, "/v1/mine", MineRequest{Targets: targetsB}) }()
	waitFor(t, func() bool {
		j, ok := s.jobs.Lookup(keyB)
		return ok && j.Refs() == 2
	})
	close(releaseBatch)
	wg.Wait()

	if got := batchCalls.Load(); got != 1 {
		t.Fatalf("direction 2: %d batch passes, want 1", got)
	}
	if got := mineCalls.Load(); got != 1 {
		t.Fatalf("direction 2: the joined single started a mining run (total %d)", got)
	}
	singleJoined := decode[MineResponse](t, singleB)
	if !singleJoined.Deduplicated {
		t.Fatal("single request did not report joining the in-flight batch member")
	}
	batchOwn := decode[BatchMineResponse](t, batchB)
	if batchOwn.Stats.Mined != 1 || batchOwn.Results[0].Response == nil {
		t.Fatalf("owning batch wrong: %s", batchB.Body.String())
	}
	sameMineOutcome(t, "joined single", &singleJoined, batchOwn.Results[0].Response)

	// Both joins are visible in the registry counters.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	st := decode[StatsResponse](t, rec)
	if st.Jobs == nil || st.Jobs.Joined != 2 {
		t.Fatalf("jobs stats = %+v, want 2 joins", st.Jobs)
	}
	if st.Mining.DedupedHits != 2 {
		t.Fatalf("deduped hits = %d, want 2", st.Mining.DedupedHits)
	}
}

// TestAsyncSinglePollGolden: submit-then-poll yields exactly the result the
// blocking endpoint answers for the same query.
func TestAsyncSinglePollGolden(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: -1})
	h := s.Handler()
	q := MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}, TopK: 3}
	blocking := decode[MineResponse](t, postJSON(t, h, "/v1/mine", q))
	if !blocking.Found {
		t.Fatal("blocking mine found nothing")
	}

	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: q.Targets, TopK: 3})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", rec.Code, rec.Body.String())
	}
	sub := decode[JobResponse](t, rec)
	if sub.ID == "" || sub.Kind != "mine" || sub.KB != DefaultKBName {
		t.Fatalf("bad submission document: %+v", sub)
	}
	jr := pollJob(t, h, sub.ID)
	if jr.State != "done" || jr.Error != "" {
		t.Fatalf("job ended %q (%s)", jr.State, jr.Error)
	}
	if jr.FinishedUnixNS == 0 || jr.StartedUnixNS == 0 {
		t.Fatalf("missing lifecycle timestamps: %+v", jr)
	}
	sameMineOutcome(t, "async+poll vs blocking", jr.Result, &blocking)
}

// asyncGoldenSets is a batch workload exercising every entry disposition:
// mined, repeated (deduplicated), invalid and unknown-entity sets.
func asyncGoldenSets() [][]string {
	return [][]string{
		{tinyNS + "Rennes", tinyNS + "Nantes"},
		{tinyNS + "Paris"},
		{tinyNS + "Nantes", tinyNS + "Rennes"}, // repeat of set 0 modulo order
		{},                                     // invalid: empty set
		{tinyNS + "Nowhere"},                   // unknown entity
	}
}

// sameBatchItems asserts two batch answers agree per index: same error text
// and status, same mining outcome, same dedup flags.
func sameBatchItems(t *testing.T, label string, got, want []BatchMineItem) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Error != w.Error || g.Status != w.Status {
			t.Fatalf("%s[%d]: error %q/%d, want %q/%d", label, i, g.Error, g.Status, w.Error, w.Status)
		}
		sameMineOutcome(t, label+"["+strconv.Itoa(i)+"]", g.Response, w.Response)
		if g.Response != nil && g.Response.Deduplicated != w.Response.Deduplicated {
			t.Fatalf("%s[%d]: deduplicated=%v, want %v", label, i, g.Response.Deduplicated, w.Response.Deduplicated)
		}
	}
}

// TestAsyncBatchPollGolden: an async batch polled to completion carries the
// same per-set answers as the blocking batch endpoint.
func TestAsyncBatchPollGolden(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: -1})
	h := s.Handler()
	sets := asyncGoldenSets()
	blocking := decode[BatchMineResponse](t, postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: sets}))
	if blocking.Stats.Mined != 2 || blocking.Stats.Deduplicated != 1 || blocking.Stats.Errors != 2 {
		t.Fatalf("unexpected blocking batch stats: %+v", blocking.Stats)
	}

	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Sets: sets})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", rec.Code, rec.Body.String())
	}
	sub := decode[JobResponse](t, rec)
	if sub.Kind != "mine_batch" {
		t.Fatalf("kind %q, want mine_batch", sub.Kind)
	}
	jr := pollJob(t, h, sub.ID)
	if jr.State != "done" || jr.Batch == nil {
		t.Fatalf("job ended %q without a batch document (%s)", jr.State, jr.Error)
	}
	sameBatchItems(t, "async batch", jr.Batch.Results, blocking.Results)
	if jr.Batch.Stats.Mined != blocking.Stats.Mined ||
		jr.Batch.Stats.Deduplicated != blocking.Stats.Deduplicated ||
		jr.Batch.Stats.Errors != blocking.Stats.Errors {
		t.Fatalf("async stats %+v, blocking %+v", jr.Batch.Stats, blocking.Stats)
	}
}

// TestMineStreamSingleGolden: the single-set stream emits progress events
// while the search runs and ends with the exact blocking result, over both
// NDJSON (default) and SSE (Accept-negotiated) framings.
func TestMineStreamSingleGolden(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: -1})
	h := s.Handler()
	q := MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}}
	blocking := decode[MineResponse](t, postJSON(t, h, "/v1/mine", q))
	if !blocking.Found {
		t.Fatal("blocking mine found nothing")
	}

	rec := postJSON(t, h, "/v1/mine:stream", AsyncMineRequest{Targets: q.Targets})
	evs := parseNDJSON(t, rec)
	last := evs[len(evs)-1]
	if last.Event != streamResult {
		t.Fatalf("last event %q, want result (events: %d)", last.Event, len(evs))
	}
	sameMineOutcome(t, "streamed result", last.Response, &blocking)
	progress := 0
	for _, ev := range evs[:len(evs)-1] {
		if ev.Event != streamProgress {
			t.Fatalf("unexpected event %q before the result", ev.Event)
		}
		if ev.Kind != "new_best" || ev.Expression == "" {
			t.Fatalf("malformed progress event: %+v", ev)
		}
		progress++
	}
	if progress == 0 {
		t.Fatal("found a solution but streamed no progress events")
	}
	// The last incumbent the search reported is the solution it returned.
	if got := evs[len(evs)-2].Expression; got != blocking.Solution.Expression {
		t.Fatalf("last progress %q, final solution %q", got, blocking.Solution.Expression)
	}

	// SSE framing: same events, text/event-stream framing.
	buf, _ := json.Marshal(AsyncMineRequest{Targets: q.Targets})
	req := httptest.NewRequest("POST", "/v1/mine:stream", strings.NewReader(string(buf)))
	req.Header.Set("Accept", "text/event-stream")
	sseRec := httptest.NewRecorder()
	h.ServeHTTP(sseRec, req)
	if sseRec.Code != http.StatusOK {
		t.Fatalf("sse status %d: %s", sseRec.Code, sseRec.Body.String())
	}
	if ct := sseRec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("sse Content-Type %q", ct)
	}
	var sseEvs []StreamEvent
	for _, line := range strings.Split(sseRec.Body.String(), "\n") {
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal([]byte(payload), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", payload, err)
		}
		sseEvs = append(sseEvs, ev)
	}
	if len(sseEvs) == 0 || sseEvs[len(sseEvs)-1].Event != streamResult {
		t.Fatalf("sse stream malformed: %d events", len(sseEvs))
	}
	sameMineOutcome(t, "sse result", sseEvs[len(sseEvs)-1].Response, &blocking)
}

// TestMineStreamBatchGolden: the batch stream emits one entry event per
// input set — each index exactly once — carrying the same answers as the
// blocking batch endpoint, then a done event with matching aggregates.
func TestMineStreamBatchGolden(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: -1})
	h := s.Handler()
	sets := asyncGoldenSets()
	blocking := decode[BatchMineResponse](t, postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: sets}))

	rec := postJSON(t, h, "/v1/mine:stream", AsyncMineRequest{Sets: sets})
	evs := parseNDJSON(t, rec)
	last := evs[len(evs)-1]
	if last.Event != streamDone || last.Stats == nil || last.KB != DefaultKBName {
		t.Fatalf("last event %+v, want done with stats", last)
	}
	streamed := make([]BatchMineItem, len(sets))
	seen := make([]bool, len(sets))
	for _, ev := range evs[:len(evs)-1] {
		if ev.Event != streamEntry || ev.Index == nil {
			t.Fatalf("unexpected event before done: %+v", ev)
		}
		i := *ev.Index
		if i < 0 || i >= len(sets) || seen[i] {
			t.Fatalf("entry index %d out of range or repeated", i)
		}
		seen[i] = true
		streamed[i] = BatchMineItem{Response: ev.Response, Error: ev.Error, Status: ev.Status}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("set %d never streamed", i)
		}
	}
	sameBatchItems(t, "streamed batch", streamed, blocking.Results)
	if last.Stats.Sets != blocking.Stats.Sets || last.Stats.Mined != blocking.Stats.Mined ||
		last.Stats.Deduplicated != blocking.Stats.Deduplicated || last.Stats.Errors != blocking.Stats.Errors {
		t.Fatalf("done stats %+v, blocking %+v", last.Stats, blocking.Stats)
	}
}

// TestMineSaturationShedsLoad: with the pool and queue full, further
// submissions answer 429 with a Retry-After hint, and the shed requests are
// visible in /v1/stats.
func TestMineSaturationShedsLoad(t *testing.T) {
	s := tinyServer(t, Options{JobWorkers: 1, JobQueueDepth: 1, ResultCache: -1})
	release := make(chan struct{})
	real := s.sys().MineContext
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return real(ctx, targets, opts...)
	}
	h := s.Handler()

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs[0] = postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
	}()
	waitFor(t, func() bool { return s.jobs.Snapshot().Running == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs[1] = postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Nantes"}})
	}()
	waitFor(t, func() bool { return s.jobs.Snapshot().Queued == 1 })

	// Worker busy, queue full: the third distinct query is shed.
	rec := postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Paris"}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, httptest.NewRequest("GET", "/v1/stats", nil))
	st := decode[StatsResponse](t, srec)
	if st.Jobs == nil {
		t.Fatal("stats missing the jobs section")
	}
	if st.Jobs.Workers != 1 || st.Jobs.QueueCapacity != 1 {
		t.Fatalf("pool shape %+v, want 1 worker / queue 1", st.Jobs)
	}
	if st.Jobs.Running != 1 || st.Jobs.Queued != 1 || st.Jobs.Rejected != 1 {
		t.Fatalf("jobs stats %+v, want running=1 queued=1 rejected=1", st.Jobs)
	}

	close(release)
	wg.Wait()
	for i, r := range recs {
		if r.Code != http.StatusOK {
			t.Fatalf("request %d: status %d after release: %s", i, r.Code, r.Body.String())
		}
	}
}

// TestJobCancelLifecycle drives DELETE /v1/jobs/{id} through every
// disposition: cancelling a queued job, a running job, double-cancelling
// (idempotent 200), and cancelling a finished job (409).
func TestJobCancelLifecycle(t *testing.T) {
	s := tinyServer(t, Options{JobWorkers: 1, ResultCache: -1})
	release := make(chan struct{})
	real := s.sys().MineContext
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return real(ctx, targets, opts...)
	}
	h := s.Handler()

	submit := func(target string) string {
		rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + target}})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		return decode[JobResponse](t, rec).ID
	}
	del := func(id string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/v1/jobs/"+id, nil))
		return rec
	}

	idA := submit("Rennes")
	waitFor(t, func() bool { return s.jobs.Snapshot().Running == 1 })
	idB := submit("Nantes") // the single worker is held: B queues

	// Cancel the queued job: it never runs.
	rec := del(idB)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel queued: status %d: %s", rec.Code, rec.Body.String())
	}
	jb := decode[JobResponse](t, rec)
	if jb.State != "cancelled" || jb.Status != http.StatusConflict || jb.Error == "" {
		t.Fatalf("cancelled job document: %+v", jb)
	}
	// Double-cancel is idempotent.
	if rec := del(idB); rec.Code != http.StatusOK {
		t.Fatalf("double cancel: status %d: %s", rec.Code, rec.Body.String())
	}
	// Cancel the running job: its context ends, the run's partial return is
	// discarded, and the job is terminally cancelled.
	if rec := del(idA); rec.Code != http.StatusOK {
		t.Fatalf("cancel running: status %d: %s", rec.Code, rec.Body.String())
	}
	if jr := pollJob(t, h, idA); jr.State != "cancelled" {
		t.Fatalf("running job ended %q, want cancelled", jr.State)
	}
	waitFor(t, func() bool {
		snap := s.jobs.Snapshot()
		return snap.Running == 0 && snap.Queued == 0
	})

	// A finished job is past cancelling: 409.
	close(release)
	idC := submit("Paris")
	if jr := pollJob(t, h, idC); jr.State != "done" {
		t.Fatalf("job C ended %q (%s)", jr.State, jr.Error)
	}
	rec = del(idC)
	if rec.Code != http.StatusConflict {
		t.Fatalf("cancel finished: status %d, want 409: %s", rec.Code, rec.Body.String())
	}
	if er := decode[ErrorResponse](t, rec); er.Error == "" {
		t.Fatal("409 without an error message")
	}

	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, httptest.NewRequest("GET", "/v1/stats", nil))
	if st := decode[StatsResponse](t, srec); st.Jobs.Cancelled < 2 {
		t.Fatalf("cancelled counter %d, want >= 2", st.Jobs.Cancelled)
	}
}

// TestJobStreamReplay: subscribing to a finished job replays its event log
// — the progress trail is not lost on late subscribers — and ends with a
// done event carrying the final job document.
func TestJobStreamReplay(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: -1})
	h := s.Handler()
	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
	}
	id := decode[JobResponse](t, rec).ID
	polled := pollJob(t, h, id)
	if polled.State != "done" || polled.Result == nil {
		t.Fatalf("job ended %q (%s)", polled.State, polled.Error)
	}

	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, httptest.NewRequest("GET", "/v1/jobs/"+id+"/stream", nil))
	evs := parseNDJSON(t, srec)
	last := evs[len(evs)-1]
	if last.Event != streamDone || last.Job == nil || last.Job.State != "done" {
		t.Fatalf("last event %+v, want done with the job document", last)
	}
	sameMineOutcome(t, "replayed job result", last.Job.Result, polled.Result)
	progress := 0
	for _, ev := range evs[:len(evs)-1] {
		if ev.Event != streamProgress {
			t.Fatalf("unexpected replayed event %q", ev.Event)
		}
		progress++
	}
	if progress == 0 {
		t.Fatal("no progress events were replayed")
	}
}

// TestJobStreamClientGone: a subscriber that disconnects mid-stream drops
// its reference without killing the retained job, which runs to completion
// and stays pollable.
func TestJobStreamClientGone(t *testing.T) {
	s := tinyServer(t, Options{ResultCache: -1})
	release := make(chan struct{})
	real := s.sys().MineContext
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return real(ctx, targets, opts...)
	}
	h := s.Handler()
	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
	}
	id := decode[JobResponse](t, rec).ID
	j, ok := s.jobs.Get(id)
	if !ok {
		t.Fatal("submitted job not in the registry")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		req := httptest.NewRequest("GET", "/v1/jobs/"+id+"/stream", nil).WithContext(ctx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	// The subscriber holds the job's only reference (async interest is
	// retention-based); then it disconnects.
	waitFor(t, func() bool { return j.Refs() == 1 })
	cancel()
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream handler did not return after the client left")
	}
	if refs := j.Refs(); refs != 0 {
		t.Fatalf("refs = %d after disconnect, want 0", refs)
	}

	// The retained job was not abandoned: it finishes and stays pollable.
	close(release)
	if jr := pollJob(t, h, id); jr.State != "done" || jr.Result == nil {
		t.Fatalf("job ended %q after subscriber left (%s)", jr.State, jr.Error)
	}
}

// TestAsyncCacheHitJob: a mine:async for an already-cached query still
// yields a pollable job — born done, carrying the cached result.
func TestAsyncCacheHitJob(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	q := MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}}
	blocking := decode[MineResponse](t, postJSON(t, h, "/v1/mine", q))
	runs := s.mineRuns.Load()

	rec := postJSON(t, h, "/v1/mine:async", AsyncMineRequest{Targets: q.Targets})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
	}
	sub := decode[JobResponse](t, rec)
	if sub.State != "done" || sub.Result == nil {
		t.Fatalf("cache-hit job not born done: %+v", sub)
	}
	sameMineOutcome(t, "cache-hit job", sub.Result, &blocking)
	if got := s.mineRuns.Load(); got != runs {
		t.Fatalf("cache hit started a mining run (%d -> %d)", runs, got)
	}
	// And it is pollable like any other job.
	if jr := pollJob(t, h, sub.ID); jr.State != "done" {
		t.Fatalf("poll after cache hit: state %q", jr.State)
	}
}

// TestBatchSaturationReleasesPlan: when the pool and queue are full, a
// batch carrying genuinely new sets cannot submit its phase job — the
// request sheds with 429 and the already-registered member jobs are
// released, retiring their flight keys instead of leaving them parked.
func TestBatchSaturationReleasesPlan(t *testing.T) {
	s := tinyServer(t, Options{JobWorkers: 1, JobQueueDepth: 1, ResultCache: -1})
	if names := s.KBNames(); len(names) != 1 || names[0] != DefaultKBName {
		t.Fatalf("KBNames = %v, want [%s]", names, DefaultKBName)
	}
	release := make(chan struct{})
	real := s.sys().MineContext
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return real(ctx, targets, opts...)
	}
	h := s.Handler()

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, 2)
	for i, name := range []string{"Rennes", "Nantes"} {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs[i] = postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + name}})
		}()
		want := i + 1
		waitFor(t, func() bool {
			st := s.jobs.Snapshot()
			return st.Running+st.Queued == want
		})
	}

	rec := postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: [][]string{{tinyNS + "Paris"}}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	key := flightKeyOf(t, s, MineRequest{Targets: []string{tinyNS + "Paris"}})
	waitFor(t, func() bool {
		_, ok := s.jobs.Lookup(key)
		return !ok
	})

	close(release)
	wg.Wait()
	for i, r := range recs {
		if r.Code != http.StatusOK {
			t.Fatalf("request %d: status %d after release: %s", i, r.Code, r.Body.String())
		}
	}
	// The shed batch left nothing behind: the same batch now mines cleanly.
	rec = postJSON(t, h, "/v1/mine:batch", BatchMineRequest{Sets: [][]string{{tinyNS + "Paris"}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch retry status %d: %s", rec.Code, rec.Body.String())
	}
	br := decode[BatchMineResponse](t, rec)
	if br.Stats.Mined != 1 || br.Results[0].Response == nil {
		t.Fatalf("batch retry did not mine: %+v", br.Stats)
	}
}
