package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/server/faults"
	"github.com/remi-kb/remi/internal/server/jobs"
)

// This file is the asynchronous face of the job subsystem:
//
//	POST /v1/mine:async    submit (single or batch) → 202 + job document
//	GET  /v1/jobs/{id}     poll a job (result inline once done)
//	DELETE /v1/jobs/{id}   cancel a job
//	GET  /v1/jobs/{id}/stream  replay + follow a job's event log
//	POST /v1/mine:stream   blocking submit, streamed response (NDJSON/SSE)
//
// Async and blocking requests share everything: the same validation, the
// same flight keys (an async job joins a blocking run in flight and vice
// versa), the same worker pool and admission control.

// jobResponse renders one job as its wire document.
func (s *Server) jobResponse(j *jobs.Job) *JobResponse {
	out := &JobResponse{ID: j.ID(), Kind: j.Kind()}
	if m, ok := j.Meta().(jobMeta); ok {
		out.KB = m.kb
		out.RequestID = m.requestID
	}
	created, started, finished := j.Times()
	out.CreatedUnixNS = created.UnixNano()
	if !started.IsZero() {
		out.StartedUnixNS = started.UnixNano()
	}
	if !finished.IsZero() {
		out.FinishedUnixNS = finished.UnixNano()
	}
	if v, err, ok := j.Result(); ok {
		switch {
		case err != nil:
			out.Error = err.Error()
			out.Status = errStatus(err)
		case j.Kind() == jobKindMineBatch:
			if br, ok := v.(*BatchMineResponse); ok {
				out.Batch = br
			}
		default:
			if res, ok := v.(*remi.Result); ok {
				out.Result = wireResult(res, false, false)
			}
		}
	}
	// State read after Result: once a result is visible the state is
	// terminal and stable, so the document cannot claim "running" with a
	// result attached.
	out.State = j.State().String()
	return out
}

// decodeAsync decodes and shape-checks a mine:async / mine:stream body.
func (s *Server) decodeAsync(w http.ResponseWriter, r *http.Request, c *counter) (*AsyncMineRequest, bool) {
	var q AsyncMineRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, c, status, err)
		return nil, false
	}
	if (len(q.Targets) == 0) == (len(q.Sets) == 0) {
		s.writeError(w, c, http.StatusBadRequest,
			errors.New("exactly one of targets (single mine) or sets (batch) is required"))
		return nil, false
	}
	return &q, true
}

func (s *Server) handleMineAsync(w http.ResponseWriter, r *http.Request) {
	s.cMineAsync.requests.Add(1)
	q, ok := s.decodeAsync(w, r, &s.cMineAsync)
	if !ok {
		return
	}
	if len(q.Sets) > 0 {
		s.asyncBatch(w, r, q)
		return
	}
	s.asyncSingle(w, r, q)
}

func (s *Server) asyncSingle(w http.ResponseWriter, r *http.Request, q *AsyncMineRequest) {
	if !s.admitMining(w, r, &s.cMineAsync, 1) {
		return
	}
	mq, status, err := s.prepareMine(r, q.single())
	if err != nil {
		s.writeError(w, &s.cMineAsync, status, err)
		return
	}
	if res, ok := s.cachedResult(mq.key); ok {
		// Uniform client workflow: a cache hit still yields a pollable job —
		// born done, unkeyed (nothing is in flight to join).
		j, _ := s.jobs.External(jobs.SubmitOpts{
			Kind: jobKindMine, Meta: jobMeta{kb: mq.e.name, requestID: mq.reqID}, Retain: true, Detached: true,
		})
		j.Complete(res, nil)
		writeJSON(w, http.StatusAccepted, s.jobResponse(j))
		return
	}
	j, _, err := s.submitMine(mq, true)
	if err != nil {
		if errors.Is(err, jobs.ErrSaturated) {
			s.shedLoad(w, &s.cMineAsync, err)
			return
		}
		s.writeError(w, &s.cMineAsync, errStatus(err), err)
		return
	}
	// The submitter's reference is dropped right away — retention, not
	// interest, keeps an async job alive.
	s.jobs.Release(j)
	writeJSON(w, http.StatusAccepted, s.jobResponse(j))
}

// batchKey derives the parent flight key of an async batch from its member
// keys, so two identical concurrent async batches share one job. Member
// keys are length-prefixed internally, so joining them cannot collide with
// a different partition of the same bytes; the prefix keeps the parent out
// of the single-mine key space.
func batchKey(p *batchPlan) string {
	var b strings.Builder
	b.WriteString("batch\x00")
	for _, k := range p.keyOf {
		b.WriteString(k)
		b.WriteByte('\x00')
	}
	return b.String()
}

func (s *Server) asyncBatch(w http.ResponseWriter, r *http.Request, q *AsyncMineRequest) {
	if !s.admitMining(w, r, &s.cMineAsync, len(q.Sets)) {
		return
	}
	bq := q.batch()
	p, status, err := s.buildBatchPlan(r, &bq)
	if err != nil {
		s.writeError(w, &s.cMineAsync, status, err)
		return
	}
	// The parent job is the client's handle: retained, completed by the
	// coordinator with the assembled batch document. An identical async
	// batch already in flight is joined instead of re-planned.
	parent, joined := s.jobs.External(jobs.SubmitOpts{
		Key:    batchKey(p),
		Kind:   jobKindMineBatch,
		Meta:   jobMeta{kb: p.e.name, requestID: p.reqID},
		Retain: true, Detached: true,
	})
	if joined {
		writeJSON(w, http.StatusAccepted, s.jobResponse(parent))
		return
	}
	if err := s.submitBatchJobs(p); err != nil {
		// Admission failed: finalize the parent so its flight key retires
		// and nothing dangles (it ages out with the TTL).
		parent.Complete(nil, err)
		if errors.Is(err, jobs.ErrSaturated) {
			s.shedLoad(w, &s.cMineAsync, err)
			return
		}
		s.writeError(w, &s.cMineAsync, errStatus(err), err)
		return
	}
	go s.runBatchCoordinator(parent, p)
	writeJSON(w, http.StatusAccepted, s.jobResponse(parent))
}

// entryEvent wires one batch entry as a stream event.
func entryEvent(i int, item BatchMineItem) StreamEvent {
	idx := i
	return StreamEvent{Event: streamEntry, Index: &idx,
		Response: item.Response, Error: item.Error, Status: item.Status}
}

// runBatchCoordinator drives an async batch off the request goroutine: it
// streams entry completions into the parent's event log, assembles the
// final batch document, and completes the parent. Waiting happens here —
// never on a pool worker — and under the parent's context, so cancelling
// the parent (DELETE /v1/jobs/{id}) abandons the members and, through
// them, the mining phase.
func (s *Server) runBatchCoordinator(parent *jobs.Job, p *batchPlan) {
	ctx := parent.Context()
	// Entries known before mining (validation failures, cache hits) stream
	// first, then member completions in finish order.
	for i := range p.items {
		if p.items[i].Response != nil || p.items[i].Error != "" {
			parent.Emit(streamEntry, entryEvent(i, p.items[i]))
		}
	}
	ctxErr := s.collectBatch(ctx, p, func(i int, item BatchMineItem) {
		p.fill(i, item)
		parent.Emit(streamEntry, entryEvent(i, item))
	})
	s.finishBatch(ctx, p)
	if ctxErr != nil {
		return // parent cancelled; Complete below would be a no-op anyway
	}
	for i := range p.items {
		if key := p.keyOf[i]; key != "" && p.firstOfKey[key] != i {
			parent.Emit(streamEntry, entryEvent(i, p.items[i]))
		}
	}
	parent.Complete(&BatchMineResponse{KB: p.e.name, Results: p.items, Stats: p.agg}, nil)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.cJobs.requests.Add(1)
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &s.cJobs, http.StatusNotFound,
			fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponse(j))
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	s.cJobs.requests.Add(1)
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &s.cJobs, http.StatusNotFound,
			fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	if prev, ok := s.jobs.Cancel(j); !ok && prev != jobs.StateCancelled {
		// Done or failed: too late to cancel. Cancelling a cancelled job is
		// idempotent and falls through to the 200 below.
		s.writeError(w, &s.cJobs, http.StatusConflict,
			fmt.Errorf("job %s already finished (%s)", j.ID(), prev))
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponse(j))
}

func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	s.cJobs.requests.Add(1)
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &s.cJobs, http.StatusNotFound,
			fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	// The subscriber's reference keeps the watched run from being abandoned
	// under it (a retained job would survive anyway; a joined blocking run
	// might not).
	s.jobs.Attach(j)
	defer s.jobs.Release(j)
	sw, ok := s.newStream(w, r, &s.cJobs)
	if !ok {
		return
	}
	if !s.followEvents(r.Context(), j, sw) {
		return // client went away mid-stream
	}
	sw.send(StreamEvent{Event: streamDone, Job: s.jobResponse(j)})
}

func (s *Server) handleMineStream(w http.ResponseWriter, r *http.Request) {
	s.cMineStream.requests.Add(1)
	q, ok := s.decodeAsync(w, r, &s.cMineStream)
	if !ok {
		return
	}
	if len(q.Sets) > 0 {
		s.streamBatch(w, r, q)
		return
	}
	s.streamSingle(w, r, q)
}

// streamSingle is the streaming twin of handleMine: progress events while
// the search runs, then the result (or an in-band error — the 200 status
// is already on the wire once streaming starts).
func (s *Server) streamSingle(w http.ResponseWriter, r *http.Request, q *AsyncMineRequest) {
	if !s.admitMining(w, r, &s.cMineStream, 1) {
		return
	}
	mq, status, err := s.prepareMine(r, q.single())
	if err != nil {
		s.writeError(w, &s.cMineStream, status, err)
		return
	}
	if res, ok := s.cachedResult(mq.key); ok {
		if sw, ok := s.newStream(w, r, &s.cMineStream); ok {
			sw.send(StreamEvent{Event: streamResult, Response: wireResult(res, false, true)})
		}
		return
	}
	j, joined, err := s.submitMine(mq, false)
	if err != nil {
		if errors.Is(err, jobs.ErrSaturated) {
			s.shedLoad(w, &s.cMineStream, err)
			return
		}
		s.writeError(w, &s.cMineStream, errStatus(err), err)
		return
	}
	if joined {
		s.dedupedHits.Add(1)
	}
	sw, ok := s.newStream(w, r, &s.cMineStream)
	if !ok {
		s.jobs.Release(j)
		return
	}
	if !s.followEvents(r.Context(), j, sw) {
		s.jobs.Release(j)
		return
	}
	// Finished: Wait returns immediately and drops our reference.
	v, err := s.jobs.Wait(r.Context(), j)
	if err != nil {
		sw.send(StreamEvent{Event: streamError, Error: err.Error(), Status: errStatus(err)})
		return
	}
	sw.send(StreamEvent{Event: streamResult, Response: wireResult(v.(*remi.Result), joined, false)})
}

// streamBatch is the streaming twin of handleMineBatch: one entry event per
// input set, emitted as each set finishes, then a done event with the
// aggregate stats.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, q *AsyncMineRequest) {
	if !s.admitMining(w, r, &s.cMineStream, len(q.Sets)) {
		return
	}
	bq := q.batch()
	p, status, err := s.buildBatchPlan(r, &bq)
	if err != nil {
		s.writeError(w, &s.cMineStream, status, err)
		return
	}
	if err := s.submitBatchJobs(p); err != nil {
		if errors.Is(err, jobs.ErrSaturated) {
			s.shedLoad(w, &s.cMineStream, err)
			return
		}
		s.writeError(w, &s.cMineStream, errStatus(err), err)
		return
	}
	sw, ok := s.newStream(w, r, &s.cMineStream)
	if !ok {
		s.releaseBatch(p)
		return
	}
	for i := range p.items {
		if p.items[i].Response != nil || p.items[i].Error != "" {
			sw.send(entryEvent(i, p.items[i]))
		}
	}
	ctxErr := s.collectBatch(r.Context(), p, func(i int, item BatchMineItem) {
		p.fill(i, item)
		sw.send(entryEvent(i, item))
	})
	s.finishBatch(r.Context(), p)
	if ctxErr != nil {
		return
	}
	for i := range p.items {
		if key := p.keyOf[i]; key != "" && p.firstOfKey[key] != i {
			sw.send(entryEvent(i, p.items[i]))
		}
	}
	sw.send(StreamEvent{Event: streamDone, KB: p.e.name, Stats: &p.agg})
}

// followEvents replays the job's event log onto the stream and follows it
// until the job finishes; false means the client's context ended first (or
// the client stopped reading).
func (s *Server) followEvents(ctx context.Context, j *jobs.Job, sw *streamWriter) bool {
	cursor := 0
	for {
		evs, next, finished, wake := j.EventsSince(cursor)
		cursor = next
		for _, ev := range evs {
			if ev.Type == jobs.EventTruncated {
				// A lapped follower learns about the gap in-band instead of
				// silently resuming mid-log.
				if n, ok := ev.Data.(int); ok {
					if !sw.send(StreamEvent{Event: streamTruncated, Dropped: n}) {
						return false
					}
				}
				continue
			}
			if se, ok := ev.Data.(StreamEvent); ok {
				if !sw.send(se) {
					return false
				}
			}
		}
		if finished {
			return true
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return false
		}
	}
}

// streamWriter writes a response as NDJSON lines (default) or SSE frames
// (Accept: text/event-stream), flushing per event so clients see progress
// live.
type streamWriter struct {
	w   http.ResponseWriter
	fl  http.Flusher
	sse bool
}

// newStream starts a streaming response; call it only once every failure
// that deserves a real HTTP status has been ruled out (after the first
// event, errors travel in-band).
func (s *Server) newStream(w http.ResponseWriter, r *http.Request, c *counter) (*streamWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, c, http.StatusInternalServerError,
			errors.New("streaming is unsupported by the underlying connection"))
		return nil, false
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &streamWriter{w: w, fl: fl, sse: sse}, true
}

// send writes one event; false reports a dead client.
func (sw *streamWriter) send(ev StreamEvent) bool {
	_ = faults.Fire(context.Background(), faults.StreamStall)
	payload, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	if sw.sse {
		if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", ev.Event, payload); err != nil {
			return false
		}
	} else {
		if _, err := sw.w.Write(append(payload, '\n')); err != nil {
			return false
		}
	}
	sw.fl.Flush()
	return true
}
