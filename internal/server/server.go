// Package server exposes loaded remi.Systems as a long-lived HTTP/JSON
// service: each knowledge base is loaded (or generated) once and registered
// under a name in the server's KB registry; the thread-safe Systems are
// shared across requests and routed by a `kb` request field or a
// /v1/kb/{name}/ path prefix (requests that name no KB use the default).
// Mining runs are tied to the request context — a client disconnect or
// deadline cancels the underlying search — concurrent identical queries are
// deduplicated onto a single in-flight run, and batches of target sets share
// one mining pass (POST /v1/mine:batch). Command remi-serve wraps this
// package in a binary.
package server

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/lru"
	"github.com/remi-kb/remi/internal/server/faults"
	"github.com/remi-kb/remi/internal/server/jobs"
)

// StatusClientClosedRequest is returned when the client went away before
// the mining run finished (nginx's non-standard 499).
const StatusClientClosedRequest = 499

// DefaultKBName is the registry name New gives its knowledge base; requests
// that name no KB route to the server's default entry.
const DefaultKBName = "default"

// ErrUnknownKB is wrapped when a request routes to a KB name absent from
// the registry; the handlers map it to a 404.
var ErrUnknownKB = errors.New("unknown knowledge base")

// errKBConflict marks a request whose body names one KB while its path
// routes to another; mapped to a 400.
var errKBConflict = errors.New("conflicting knowledge-base names")

// errDraining rejects new mining work while the server drains for
// shutdown; mapped to a 503 (the instance is going away — no Retry-After,
// the client should pick another replica).
var errDraining = errors.New("server is draining; not accepting new mining work")

// errQuotaExceeded rejects a request that overran its client's token
// bucket; mapped to a 429 whose Retry-After is derived from the client's
// own deficit, distinct from pool saturation.
var errQuotaExceeded = errors.New("client quota exceeded")

// errReloadQuarantined rejects a reload attempt while its KB source is
// quarantined after previous failures (exponential backoff).
var errReloadQuarantined = errors.New("KB source quarantined after failed reloads")

// ErrKBUnchanged is returned by a ReloadKB loader that found its source
// byte-identical to what is already serving (a replica's periodic snapshot
// refresh, most of the time). ReloadKB treats it as a benign no-op: the
// generation does not advance — so cached results stay valid — and any
// failure streak or quarantine is cleared, since the source proved
// reachable and consistent.
var ErrKBUnchanged = errors.New("KB source unchanged")

// Options tunes a Server. The zero value is usable: no default timeout, no
// caps beyond the built-in safety limits.
type Options struct {
	// DefaultTimeout bounds a mining run when the request does not carry
	// its own timeout_ms (0 = unbounded, unless MaxTimeout is set).
	DefaultTimeout time.Duration
	// MaxTimeout is the ceiling on any mining run: it clamps
	// request-supplied timeouts and also bounds runs that would otherwise
	// be unbounded, so no single request can hold a worker forever
	// (0 = no ceiling). Batch requests are budgeted per target set.
	MaxTimeout time.Duration
	// DefaultWorkers is the P-REMI parallelism used when the request does
	// not set workers (0 or 1 = sequential REMI).
	DefaultWorkers int
	// MaxWorkers clamps request-supplied worker counts (0 = no clamp).
	MaxWorkers int
	// MaxTargets caps the number of target IRIs per mine request — and per
	// target set of a batch request (0 = the built-in default of 64).
	MaxTargets int
	// MaxTopK clamps requested alternative counts (0 = the built-in 25).
	MaxTopK int
	// MaxExceptions clamps the requested exception budget so one request
	// cannot disable the miner's pruning outright (0 = the built-in 100).
	MaxExceptions int
	// MaxBatchSets caps the number of target sets per mine:batch request
	// (0 = the built-in default of 64).
	MaxBatchSets int
	// BatchWorkers bounds the worker pool a batch request fans its target
	// sets across (0 = the built-in default of 4).
	BatchWorkers int
	// ResultCache is the capacity (entries) of the LRU of completed mine
	// responses, keyed by the same normalized query key as the in-flight
	// dedup plus the KB name: a repeated identical query is served from
	// memory instead of re-running the search. 0 picks the built-in default
	// of 1024; negative disables the cache. Timed-out (partial) results are
	// never cached, and invalidation is scoped per KB: swapping one KB
	// (SwapKB/SIGHUP) bumps that KB's generation tag, so only its entries
	// become unreachable (they age out of the LRU) while other KBs keep
	// serving from cache.
	ResultCache int
	// JobWorkers is the worker pool executing mining jobs — every mining
	// request (blocking, batch, async, streaming) runs on it (0 = the
	// built-in default of 4).
	JobWorkers int
	// JobQueueDepth bounds how many admitted jobs may wait for a worker;
	// beyond it submissions are shed with 429 + Retry-After (0 = the
	// built-in default of 64).
	JobQueueDepth int
	// JobTTL is how long a finished async job stays pollable before the
	// garbage collector drops it (0 = the built-in default of 5m).
	JobTTL time.Duration
	// WatchdogGrace arms the job watchdog: a mining run that exceeds its
	// effective timeout by this much is failed with a distinct watchdog
	// error and its worker slot is freed, so a wedged evaluator cannot
	// starve the pool. 0 disables the watchdog (runs keep their own
	// timeouts but are never force-killed).
	WatchdogGrace time.Duration
	// InteractiveReserve reserves this many job-queue slots for
	// interactive submissions: batch mining is shed with 429 while only
	// the reserve remains free (0 = no reservation).
	InteractiveReserve int
	// QuotaRate enables per-client admission quotas: each client key (the
	// X-Client-Id header, else the remote IP) refills at this many mining
	// units per second (a single mine costs 1, a batch costs one per
	// target set). 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the bucket capacity per client (how much a client may
	// burst above its steady rate; 0 picks the built-in default of 10).
	QuotaBurst float64
	// ReloadBackoff is the quarantine after the first failed KB reload;
	// each consecutive failure doubles it up to ReloadBackoffMax
	// (defaults 1s and 5m). Tests shrink these to keep chaos runs fast.
	ReloadBackoff    time.Duration
	ReloadBackoffMax time.Duration
	// RetireGrace closes a swapped-out System (releasing its snapshot
	// mapping) this long after a swap replaced it. It must exceed the
	// longest possible mining run (MaxTimeout plus WatchdogGrace), or a run
	// still reading the old generation would touch unmapped memory.
	// 0 (the default) never closes old generations: their mappings stay
	// pinned for the process lifetime, which is always safe.
	RetireGrace time.Duration
}

const (
	defaultMaxTargets    = 64
	defaultMaxTopK       = 25
	defaultMaxExceptions = 100
	defaultMaxBatchSets  = 64
	defaultBatchWorkers  = 4
	defaultResultCache   = 1024
	defaultJobWorkers    = 4
	defaultJobQueue      = 64
	defaultJobTTL        = 5 * time.Minute
	defaultQuotaBurst    = 10
	defaultReloadBackoff = time.Second
	maxReloadBackoff     = 5 * time.Minute
	defaultSummary       = 5
	maxSummary           = 100
	// maxBodyBytes caps request bodies before decoding so an oversized
	// payload cannot balloon memory ahead of validation.
	maxBodyBytes = 1 << 20
)

// kbNameRE validates registry names: they appear in URL paths and cache
// keys, so they stay short and URL-safe.
var kbNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// ValidateKBName reports whether name is usable as a registry name.
// Commands should call it on user-supplied names before constructing a
// server, so a bad flag is an error message rather than a panic.
func ValidateKBName(name string) error {
	if !kbNameRE.MatchString(name) {
		return fmt.Errorf("invalid KB name %q (want [A-Za-z0-9._-]{1,64})", name)
	}
	return nil
}

type counter struct {
	requests atomic.Int64
	errors   atomic.Int64
}

func (c *counter) stats() EndpointStats {
	return EndpointStats{Requests: c.requests.Load(), Errors: c.errors.Load()}
}

// kbEntry is one registered knowledge base: its live System plus the
// generation tag that scopes cache invalidation to this KB.
type kbEntry struct {
	name   string
	sysPtr atomic.Pointer[remi.System]
	// generation counts swaps of this KB; it prefixes every cache and
	// flight key derived from it, so a reload makes the old entries — and
	// only this KB's — unreachable.
	generation atomic.Int64
	// requests counts requests routed to this KB (all endpoints).
	requests atomic.Int64

	// Last-known-good reload state. A failed reload leaves sysPtr and
	// generation untouched — the old System keeps serving byte-identical
	// results — and quarantines the source with exponential backoff.
	reloadMu        sync.Mutex   // serializes reloads of this KB
	failStreak      int          // consecutive failed reloads (guarded by reloadMu)
	reloadFailures  atomic.Int64 // total failed reloads since start
	lastGoodGen     atomic.Int64 // generation of the last successful load
	quarantineUntil atomic.Int64 // unix nanos; 0 = not quarantined

	// Live (mutable) KB state: nil for snapshot/file-backed entries. When
	// set, the admin mutation plane (facts, compile) operates on this KB.
	live              *remi.LiveKB
	compacting        atomic.Bool  // one compile at a time per KB
	lastCompactionGen atomic.Int64 // generation installed by the last compile
}

func (e *kbEntry) sys() *remi.System { return e.sysPtr.Load() }

// mineFunc abstracts System.MineContext so tests can substitute a
// controllable miner.
type mineFunc func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error)

// mineBatchEachFunc abstracts System.MineBatchEach for tests.
type mineBatchEachFunc func(ctx context.Context, sets [][]string, each func(int, remi.BatchEntry), opts ...remi.MineOption) (*remi.BatchResult, error)

// Server handles the REMI HTTP API. Create with New (optionally AddKB more
// knowledge bases) and mount Handler.
type Server struct {
	mu          sync.RWMutex
	kbs         map[string]*kbEntry
	defaultName string

	mine          mineFunc          // test override (nil in production)
	mineBatchEach mineBatchEachFunc // test override (nil in production)
	opts          Options
	started       time.Time
	// jobs is the unified execution subsystem: every mining run — blocking
	// single, batch entry, async, streaming — is a job in this registry,
	// sharing one flight-key namespace and one admission-controlled pool.
	jobs *jobs.Registry

	// quota is the per-client token-bucket layer (nil when disabled).
	quota         *quotaLimiter
	quotaRejected atomic.Int64

	// draining flips at StartDrain: readiness goes 503, mining endpoints
	// refuse new work, in-flight jobs keep running.
	draining atomic.Bool

	// results caches completed mine results by KB-name- and
	// generation-tagged query key (nil when disabled). A KB swap bumps that
	// KB's generation, which makes its cached keys — and its in-flight
	// dedup keys — unreachable without touching entries of other KBs.
	results *lru.Cache[string, *remi.Result]

	cMine       counter
	cFacts      counter
	cCompile    counter
	cMineBatch  counter
	cMineAsync  counter
	cMineStream counter
	cJobs       counter
	cSummarize  counter
	cDescribe   counter
	cStats      counter
	cHealth     counter
	cReady      counter
	cNotFound   counter

	mineRuns    atomic.Int64
	dedupedHits atomic.Int64

	aggMu   sync.Mutex
	agg     MiningStats
	lastRun *MineStats
	lastAt  time.Time
}

// New wraps a loaded System, registered under name (DefaultKBName when
// empty) as the server's default KB.
func New(sys *remi.System, opts Options) *Server { return NewNamed(DefaultKBName, sys, opts) }

// NewNamed is New with an explicit registry name for the default KB.
func NewNamed(name string, sys *remi.System, opts Options) *Server {
	if opts.MaxTargets <= 0 {
		opts.MaxTargets = defaultMaxTargets
	}
	if opts.MaxTopK <= 0 {
		opts.MaxTopK = defaultMaxTopK
	}
	if opts.MaxExceptions <= 0 {
		opts.MaxExceptions = defaultMaxExceptions
	}
	if opts.MaxBatchSets <= 0 {
		opts.MaxBatchSets = defaultMaxBatchSets
	}
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = defaultBatchWorkers
	}
	if opts.ResultCache == 0 {
		opts.ResultCache = defaultResultCache
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = defaultJobWorkers
	}
	if opts.JobQueueDepth <= 0 {
		opts.JobQueueDepth = defaultJobQueue
	}
	if opts.JobTTL <= 0 {
		opts.JobTTL = defaultJobTTL
	}
	if opts.QuotaBurst <= 0 {
		opts.QuotaBurst = defaultQuotaBurst
	}
	if opts.ReloadBackoff <= 0 {
		opts.ReloadBackoff = defaultReloadBackoff
	}
	if opts.ReloadBackoffMax <= 0 {
		opts.ReloadBackoffMax = maxReloadBackoff
	}
	if name == "" {
		name = DefaultKBName
	}
	s := &Server{opts: opts, started: time.Now(), kbs: make(map[string]*kbEntry), defaultName: name}
	if err := s.AddKB(name, sys); err != nil {
		// The only failure modes are an invalid or duplicate name; a bad
		// default name is a programming error, not a runtime condition.
		panic("server: " + err.Error())
	}
	if opts.ResultCache > 0 {
		s.results = lru.New[string, *remi.Result](opts.ResultCache)
	}
	s.jobs = jobs.New(jobs.Options{
		Workers:            opts.JobWorkers,
		QueueDepth:         opts.JobQueueDepth,
		TTL:                opts.JobTTL,
		WatchdogGrace:      opts.WatchdogGrace,
		InteractiveReserve: opts.InteractiveReserve,
	})
	if opts.QuotaRate > 0 {
		s.quota = newQuotaLimiter(opts.QuotaRate, opts.QuotaBurst)
	}
	return s
}

// Close stops the job subsystem: queued and running jobs are cancelled,
// workers drained. The HTTP handler must not serve requests afterwards.
func (s *Server) Close() { s.jobs.Close() }

// AddKB registers an additional knowledge base under name. Register every
// KB before the handler starts serving traffic; names must be URL-safe
// ([A-Za-z0-9._-], at most 64 bytes) and unique.
func (s *Server) AddKB(name string, sys *remi.System) error {
	if err := ValidateKBName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.kbs[name]; ok {
		return fmt.Errorf("KB %q already registered", name)
	}
	e := &kbEntry{name: name}
	e.sysPtr.Store(sys)
	s.kbs[name] = e
	return nil
}

// KBNames lists the registered knowledge bases (unordered).
func (s *Server) KBNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.kbs))
	for name := range s.kbs {
		names = append(names, name)
	}
	return names
}

// lookupKB returns the registry entry for name ("" = the default KB).
func (s *Server) lookupKB(name string) (*kbEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		name = s.defaultName
	}
	e := s.kbs[name]
	if e == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknownKB, name)
	}
	return e, nil
}

// kbFromRequest resolves the KB a request routes to: the /v1/kb/{kb}/ path
// segment, the request's kb field, the ?kb= query parameter, or the
// default KB, in that order. Any two sources that disagree are rejected
// rather than silently overridden — a client never gets answers from a KB
// other than the one it named.
func (s *Server) kbFromRequest(r *http.Request, bodyKB string) (*kbEntry, error) {
	name := ""
	for _, src := range []struct{ where, name string }{
		{"path", r.PathValue("kb")},
		{"body", bodyKB},
		{"query parameter", r.URL.Query().Get("kb")},
	} {
		switch {
		case src.name == "":
		case name == "":
			name = src.name
		case src.name != name:
			return nil, fmt.Errorf("%w: the %s names %q but the request routes to %q",
				errKBConflict, src.where, src.name, name)
		}
	}
	e, err := s.lookupKB(name)
	if err != nil {
		return nil, err
	}
	e.requests.Add(1)
	return e, nil
}

// sys returns the default KB's System (kept for embedders and tests of the
// single-KB configuration).
func (s *Server) sys() *remi.System {
	e, err := s.lookupKB("")
	if err != nil {
		return nil
	}
	return e.sys()
}

// mineContext routes to the test override when set, otherwise to the
// entry's current System.
func (s *Server) mineContext(e *kbEntry, ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
	if s.mine != nil {
		return s.mine(ctx, targets, opts...)
	}
	return e.sys().MineContext(ctx, targets, opts...)
}

// mineBatchEachContext routes to the test override when set, otherwise to
// the entry's current System.
func (s *Server) mineBatchEachContext(e *kbEntry, ctx context.Context, sets [][]string, each func(int, remi.BatchEntry), opts ...remi.MineOption) (*remi.BatchResult, error) {
	if s.mineBatchEach != nil {
		return s.mineBatchEach(ctx, sets, each, opts...)
	}
	return e.sys().MineBatchEach(ctx, sets, each, opts...)
}

// SwapSystem replaces the default knowledge base (see SwapKB).
func (s *Server) SwapSystem(sys *remi.System) {
	s.mu.RLock()
	name := s.defaultName
	s.mu.RUnlock()
	_ = s.SwapKB(name, sys)
}

// SwapKB replaces one registered knowledge base (a KB reload) and
// invalidates every cached result and in-flight dedup key scoped to it: the
// KB's generation tag changes, so runs and entries of the old System can no
// longer be reached, even by requests racing with the swap. Other KBs keep
// their cache entries.
func (s *Server) SwapKB(name string, sys *remi.System) error {
	e, err := s.lookupKB(name)
	if err != nil {
		return err
	}
	e.reloadMu.Lock()
	old := e.sys()
	e.swapIn(sys)
	e.reloadMu.Unlock()
	s.retire(old)
	return nil
}

// swapIn installs sys as the entry's live System: a successful load, so the
// generation advances, becomes the last known good one, and any reload
// quarantine is lifted. Callers hold e.reloadMu.
func (e *kbEntry) swapIn(sys *remi.System) {
	e.sysPtr.Store(sys)
	e.lastGoodGen.Store(e.generation.Add(1))
	e.failStreak = 0
	e.quarantineUntil.Store(0)
}

// ReloadKB replaces one registered knowledge base from a loader with
// last-known-good semantics: the loader runs first, and only a System it
// delivers without error is swapped in (SwapKB rules: the generation
// advances, the old cache entries become unreachable). A loader failure
// changes nothing visible — the old generation keeps serving the exact
// results it always did — and quarantines the source: further reload
// attempts are refused with errReloadQuarantined until an exponential
// backoff (ReloadBackoff, doubling per consecutive failure, capped at
// ReloadBackoffMax) has passed. Failures are counted per KB and surfaced
// as reload_failures / last_good_generation under /v1/stats.
func (s *Server) ReloadKB(name string, load func() (*remi.System, error)) error {
	e, err := s.lookupKB(name)
	if err != nil {
		return err
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	if until := e.quarantineUntil.Load(); until != 0 {
		if rem := time.Until(time.Unix(0, until)); rem > 0 {
			return fmt.Errorf("%w: KB %q retries in %s (%d consecutive failure(s))",
				errReloadQuarantined, name, rem.Round(time.Millisecond), e.failStreak)
		}
	}
	sys, err := s.loadGuarded(load)
	if errors.Is(err, ErrKBUnchanged) {
		// The source is fine and identical to what serves: no swap, no
		// generation bump (caches stay warm), and the streak resets.
		e.failStreak = 0
		e.quarantineUntil.Store(0)
		return nil
	}
	if err != nil {
		e.reloadFailures.Add(1)
		e.failStreak++
		backoff := s.opts.ReloadBackoff << (e.failStreak - 1)
		if backoff <= 0 || backoff > s.opts.ReloadBackoffMax {
			backoff = s.opts.ReloadBackoffMax
		}
		e.quarantineUntil.Store(time.Now().Add(backoff).UnixNano())
		return fmt.Errorf("reload of KB %q failed (still serving generation %d, retry in %s): %w",
			name, e.generation.Load(), backoff, err)
	}
	old := e.sys()
	e.swapIn(sys)
	s.retire(old)
	return nil
}

// loadGuarded runs a KB loader through the reload failure points: a slow
// source delays, an open failure aborts before the load, a corrupt source
// aborts after it. Disarmed, the three Fire calls are three atomic loads.
func (s *Server) loadGuarded(load func() (*remi.System, error)) (*remi.System, error) {
	ctx := context.Background()
	_ = faults.Fire(ctx, faults.ReloadSlow) // delay-only point
	if err := faults.Fire(ctx, faults.ReloadOpen); err != nil {
		return nil, fmt.Errorf("opening KB source: %w", err)
	}
	sys, err := load()
	if err != nil {
		return nil, err
	}
	if err := faults.Fire(ctx, faults.ReloadCorrupt); err != nil {
		return nil, fmt.Errorf("validating KB source: %w", err)
	}
	return sys, nil
}

// StartDrain begins graceful shutdown: readiness (/readyz) flips to 503 so
// load balancers stop routing here, mining endpoints refuse new work with
// 503, and the job subsystem stops admitting — while everything already
// in flight (queued and running jobs, open streams, pollable results)
// proceeds normally. Wait for quiescence with DrainWait, then Close.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.jobs.Drain()
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainWait blocks until every tracked job has finished or ctx ends.
func (s *Server) DrainWait(ctx context.Context) error { return s.jobs.DrainWait(ctx) }

// cacheKey tags a normalized query key with the KB it runs on and that KB's
// current generation.
func (s *Server) cacheKey(e *kbEntry, key string) string {
	return e.name + "#" + strconv.FormatInt(e.generation.Load(), 10) + "|" + key
}

// Handler returns the routing table of the service. Every endpoint is
// mounted twice — at its plain path (serving the KB the request names, or
// the default) and under /v1/kb/{kb}/ — and every non-2xx the mux itself
// would emit as plain text (unknown path, method mismatch) is routed
// through the same JSON error writer as handler-level failures.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		method, path string
		h            http.HandlerFunc
		c            *counter
	}{
		{"POST", "/v1/mine", s.handleMine, &s.cMine},
		{"POST", "/v1/facts", s.handleFacts, &s.cFacts},
		{"POST", "/v1/admin/compile", s.handleCompile, &s.cCompile},
		{"POST", "/v1/mine:batch", s.handleMineBatch, &s.cMineBatch},
		{"POST", "/v1/mine:async", s.handleMineAsync, &s.cMineAsync},
		{"POST", "/v1/mine:stream", s.handleMineStream, &s.cMineStream},
		{"POST", "/v1/summarize", s.handleSummarize, &s.cSummarize},
		{"GET", "/v1/describe", s.handleDescribe, &s.cDescribe},
		{"GET", "/v1/stats", s.handleStats, &s.cStats},
		{"GET", "/healthz", s.handleHealth, &s.cHealth},
		{"GET", "/readyz", s.handleReady, &s.cReady},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" "+rt.path, rt.h)
		// The method-less pattern catches every other verb on a known path:
		// without it the mux would answer with a plain-text 405.
		mux.HandleFunc(rt.path, s.methodNotAllowed(rt.c, rt.method))
		if rest, ok := strings.CutPrefix(rt.path, "/v1"); ok {
			kbPath := "/v1/kb/{kb}" + rest
			mux.HandleFunc(rt.method+" "+kbPath, rt.h)
			mux.HandleFunc(kbPath, s.methodNotAllowed(rt.c, rt.method))
		}
	}
	// Job lifecycle endpoints are global (a job id already pins its KB), and
	// /v1/jobs/{id} answers two verbs, so they sit outside the table.
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("/v1/jobs/{id}", s.methodNotAllowed(&s.cJobs, "GET, DELETE"))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("/v1/jobs/{id}/stream", s.methodNotAllowed(&s.cJobs, "GET"))
	// Everything else is an unknown endpoint: JSON 404 instead of the mux's
	// plain-text page, counted under the not_found pseudo-endpoint.
	mux.HandleFunc("/", s.handleNotFound)
	return s.withRequestEnvelope(mux)
}

// Cross-tier wire headers, mirrored by the cluster router: X-Request-Id is
// accepted from the caller (the router generates one) or minted here, and
// echoed on every response — job docs, stream events and error bodies
// carry it too, so a failure traces across tiers. X-Timeout-Budget-Ms is
// the caller's remaining deadline; honoring it here means a router retry
// never runs past what the client was promised.
const (
	headerRequestID     = "X-Request-Id"
	headerTimeoutBudget = "X-Timeout-Budget-Ms"
)

// withRequestEnvelope wraps the mux with the cross-tier request envelope:
// every request gets a request id (accepted or minted) visible to handlers
// via the request header and already stamped on the response, and an
// explicit timeout budget becomes the request context's deadline.
func (s *Server) withRequestEnvelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(headerRequestID)
		if id == "" {
			id = newRequestID()
			r.Header.Set(headerRequestID, id)
		}
		w.Header().Set(headerRequestID, id)
		if h := r.Header.Get(headerTimeoutBudget); h != "" {
			if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		next.ServeHTTP(w, r)
	})
}

// newRequestID is 8 random bytes hex-encoded — short enough for a log
// line, unique enough for a trace window.
func newRequestID() string {
	var b [8]byte
	_, _ = cryptorand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// requestIDOf reads the request's id; the envelope guarantees it is set.
func requestIDOf(r *http.Request) string { return r.Header.Get(headerRequestID) }

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.cNotFound.requests.Add(1)
	s.writeError(w, &s.cNotFound, http.StatusNotFound,
		fmt.Errorf("no such endpoint %s", r.URL.Path))
}

// methodNotAllowed rejects a known path hit with the wrong verb, counting
// it against the endpoint it belongs to.
func (s *Server) methodNotAllowed(c *counter, allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		w.Header().Set("Allow", allow)
		s.writeError(w, c, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s is not allowed on %s (allowed: %s)", r.Method, r.URL.Path, allow))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError maps an error to a status and JSON body, counting it. The
// request id rides along (the envelope stamped it on the response header
// before the handler ran) so a client can quote one token when reporting
// a cross-tier failure.
func (s *Server) writeError(w http.ResponseWriter, c *counter, status int, err error) {
	c.errors.Add(1)
	writeJSON(w, status, ErrorResponse{Error: err.Error(), RequestID: w.Header().Get(headerRequestID)})
}

// errStatus classifies request-processing errors.
func errStatus(err error) int {
	switch {
	case errors.Is(err, remi.ErrUnknownEntity):
		return http.StatusNotFound
	case errors.Is(err, ErrUnknownKB):
		return http.StatusNotFound
	case errors.Is(err, errKBConflict):
		return http.StatusBadRequest
	case errors.Is(err, remi.ErrEmptyTargetSet):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, jobs.ErrSaturated), errors.Is(err, errQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrDraining), errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrWatchdogKilled):
		return http.StatusGatewayTimeout
	case errors.Is(err, jobs.ErrCancelled), errors.Is(err, jobs.ErrClosed):
		return http.StatusConflict
	case errors.Is(err, jobs.ErrPanicked), errors.Is(err, remi.ErrMinePanicked),
		errors.Is(err, errBatchAborted):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// metricOptions canonicalizes a metric name and returns the matching facade
// options (shared by mine and summarize).
func metricOptions(metric string) (canonical string, opts []remi.MineOption, err error) {
	switch metric {
	case "", "fr":
		return "fr", nil, nil
	case "pr":
		return "pr", []remi.MineOption{remi.WithMetric(remi.MetricPr)}, nil
	default:
		return "", nil, fmt.Errorf("unknown metric %q (fr|pr)", metric)
	}
}

// mineOptions validates the request against the server limits and builds
// the facade options. It also rewrites the request's option fields to their
// effective canonical values (metric/language aliases resolved, defaults
// and clamps applied), so the dedup key built afterwards matches every
// semantically identical query.
func (s *Server) mineOptions(q *MineRequest) ([]remi.MineOption, error) {
	canonical, opts, err := metricOptions(q.Metric)
	if err != nil {
		return nil, err
	}
	q.Metric = canonical
	switch q.Language {
	case "", "remi", "extended":
		q.Language = "remi"
	case "standard":
		opts = append(opts, remi.WithLanguage(remi.LanguageStandard))
	default:
		return nil, fmt.Errorf("unknown language %q (remi|standard)", q.Language)
	}
	if q.Workers < 0 || q.TopK < 0 || q.Exceptions < 0 || q.TimeoutMS < 0 {
		return nil, errors.New("workers, top_k, exceptions and timeout_ms must be non-negative")
	}
	workers := q.Workers
	if workers == 0 {
		workers = s.opts.DefaultWorkers
	}
	if s.opts.MaxWorkers > 0 && workers > s.opts.MaxWorkers {
		workers = s.opts.MaxWorkers
	}
	if workers < 1 {
		workers = 1
	}
	q.Workers = workers
	if workers > 1 {
		opts = append(opts, remi.WithWorkers(workers))
	}
	if q.TopK > s.opts.MaxTopK {
		q.TopK = s.opts.MaxTopK
	}
	if q.TopK < 2 {
		q.TopK = 1 // 0 and 1 both mean "best solution only"
	} else {
		opts = append(opts, remi.WithTopK(q.TopK))
	}
	if q.Exceptions > s.opts.MaxExceptions {
		q.Exceptions = s.opts.MaxExceptions
	}
	if q.Exceptions > 0 {
		opts = append(opts, remi.WithExceptions(q.Exceptions))
	}
	timeout := s.opts.DefaultTimeout
	if q.TimeoutMS > 0 {
		timeout = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	if s.opts.MaxTimeout > 0 && (timeout <= 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	q.TimeoutMS = timeout.Milliseconds()
	if timeout > 0 {
		opts = append(opts, remi.WithTimeout(timeout))
	}
	return opts, nil
}

// decodeBody decodes a size-capped JSON request body, reporting whether the
// payload exceeded the cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (tooLarge bool, err error) {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		return errors.As(err, &maxErr), fmt.Errorf("decoding request: %w", err)
	}
	return false, nil
}

// mineQuery is a validated single-target-set mining request bound to its
// KB, carrying the facade options and the unified flight/cache key.
type mineQuery struct {
	e     *kbEntry
	q     MineRequest
	opts  []remi.MineOption
	key   string
	reqID string
}

// prepareMine validates an already-decoded MineRequest against the server
// limits, resolves its KB and builds the flight key. On error the returned
// status is the HTTP code to answer with.
func (s *Server) prepareMine(r *http.Request, q MineRequest) (*mineQuery, int, error) {
	e, err := s.kbFromRequest(r, q.KB)
	if err != nil {
		return nil, errStatus(err), err
	}
	q.KB = e.name
	q.normalize()
	if len(q.Targets) == 0 {
		return nil, http.StatusBadRequest, errors.New("targets is required")
	}
	if len(q.Targets) > s.opts.MaxTargets {
		return nil, http.StatusBadRequest,
			fmt.Errorf("%d targets exceed the limit of %d", len(q.Targets), s.opts.MaxTargets)
	}
	opts, err := s.mineOptions(&q)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return &mineQuery{e: e, q: q, opts: opts, key: s.cacheKey(e, q.key()), reqID: requestIDOf(r)}, 0, nil
}

// cachedResult consults the result LRU (nil-safe).
func (s *Server) cachedResult(key string) (*remi.Result, bool) {
	if s.results == nil {
		return nil, false
	}
	return s.results.Get(key)
}

// jobMeta travels with every job so poll and stream responses can report
// which KB the job ran against — and which request created it — without
// reaching back into the request.
type jobMeta struct {
	kb        string
	requestID string
}

// Job kinds, visible in poll responses.
const (
	jobKindMine       = "mine"
	jobKindMineBatch  = "mine_batch"
	jobKindBatchPhase = "batch_phase"
)

// submitMine admits one single-set mining run into the job subsystem under
// its flight key: concurrent identical queries — blocking, async, streaming
// or batch members alike — join the same job and share one evaluator pass.
// retain keeps the finished job pollable past the last waiter (async
// submissions); blocking callers let it drop with their interest.
func (s *Server) submitMine(mq *mineQuery, retain bool) (*jobs.Job, bool, error) {
	return s.jobs.Submit(jobs.SubmitOpts{
		Key:      mq.key,
		Kind:     jobKindMine,
		Meta:     jobMeta{kb: mq.e.name, requestID: mq.reqID},
		Retain:   retain,
		Deadline: s.jobDeadline(time.Duration(mq.q.TimeoutMS) * time.Millisecond),
		Run:      s.mineRun(mq),
	})
}

// jobDeadline converts a run's effective timeout into a watchdog deadline.
// With the watchdog disabled (no grace configured) every deadline is zero,
// so runs keep their cooperative timeouts but are never force-killed —
// exactly the pre-watchdog behavior.
func (s *Server) jobDeadline(timeout time.Duration) time.Duration {
	if s.opts.WatchdogGrace <= 0 {
		return 0
	}
	return timeout
}

// mineRun is the pool-executed body of a single-set mining job. Each new
// incumbent is emitted into the job's event log for streaming subscribers;
// the completed result feeds the stats aggregates and the result LRU exactly
// as the blocking path always did.
func (s *Server) mineRun(mq *mineQuery) jobs.RunFunc {
	return func(ctx context.Context, j *jobs.Job) (any, error) {
		// Chaos hooks: a wedged evaluator (ignores ctx until disarmed) and an
		// evaluator bug (panic → ErrPanicked → 500). One atomic load each
		// while disarmed.
		if err := faults.Fire(ctx, faults.JobStuck); err != nil {
			return nil, err
		}
		if err := faults.Fire(ctx, faults.MinePanic); err != nil {
			return nil, err
		}
		s.mineRuns.Add(1)
		opts := append(mq.opts[:len(mq.opts):len(mq.opts)], remi.WithProgress(func(p remi.Progress) {
			j.Emit(streamProgress, StreamEvent{Event: streamProgress,
				Kind: p.Kind, Expression: p.Expression, Bits: p.Bits})
		}))
		res, err := s.mineContext(mq.e, ctx, mq.q.Targets, opts...)
		if err == nil {
			s.recordRun(res, true)
			// Only complete searches are worth remembering: a timed-out run
			// holds whatever the deadline allowed, and a retry with more
			// budget deserves a fresh search.
			if s.results != nil && !res.Stats.TimedOut {
				s.results.Put(mq.key, res)
			}
		}
		return res, err
	}
}

// setRetryAfter writes a Retry-After header in whole seconds, rounded up
// and floored at 1 — "Retry-After: 0" invites an immediate retry storm, the
// opposite of what a shed response wants.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// shedLoad answers an admission-control rejection: 429 plus a Retry-After
// hint derived from the pool's average run time and current backlog.
func (s *Server) shedLoad(w http.ResponseWriter, c *counter, err error) {
	setRetryAfter(w, s.jobs.RetryAfter())
	s.writeError(w, c, http.StatusTooManyRequests, err)
}

// admitMining is the gate every mining endpoint passes before doing work:
// a draining server refuses with 503 (the instance is going away), then the
// client's quota bucket is charged units (1 per single mine, 1 per batch
// target set). A quota rejection answers 429 with a Retry-After derived
// from the client's own deficit — deliberately distinct from the pool-wide
// backlog estimate a saturation 429 carries.
func (s *Server) admitMining(w http.ResponseWriter, r *http.Request, c *counter, units int) bool {
	if s.draining.Load() {
		s.writeError(w, c, http.StatusServiceUnavailable, errDraining)
		return false
	}
	if s.quota == nil {
		return true
	}
	key := clientKey(r)
	ok, retry := s.quota.allow(key, float64(units))
	if ok {
		return true
	}
	s.quotaRejected.Add(1)
	setRetryAfter(w, retry)
	s.writeError(w, c, http.StatusTooManyRequests,
		fmt.Errorf("%w for client %q", errQuotaExceeded, key))
	return false
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.cMine.requests.Add(1)
	var q MineRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, &s.cMine, status, err)
		return
	}
	if !s.admitMining(w, r, &s.cMine, 1) {
		return
	}
	mq, status, err := s.prepareMine(r, q)
	if err != nil {
		s.writeError(w, &s.cMine, status, err)
		return
	}
	if res, ok := s.cachedResult(mq.key); ok {
		writeJSON(w, http.StatusOK, wireResult(res, false, true))
		return
	}
	j, joined, err := s.submitMine(mq, false)
	if err != nil {
		if errors.Is(err, jobs.ErrSaturated) {
			s.shedLoad(w, &s.cMine, err)
			return
		}
		s.writeError(w, &s.cMine, errStatus(err), err)
		return
	}
	if joined {
		s.dedupedHits.Add(1)
	}
	v, err := s.jobs.Wait(r.Context(), j)
	if err != nil {
		s.writeError(w, &s.cMine, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, wireResult(v.(*remi.Result), joined, false))
}

// recordRun folds one completed mining run into the aggregate stats.
// includeCache is false for batch entries: their per-set cache counters may
// attribute a concurrent neighbor's lookups, so the batch handler folds the
// exact whole-batch totals in separately (recordBatchCache) instead of
// summing the approximate per-set values.
func (s *Server) recordRun(res *remi.Result, includeCache bool) {
	st := wireStats(res.Stats)
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	s.agg.Candidates += int64(res.Stats.Candidates)
	s.agg.Visited += res.Stats.Visited
	s.agg.RETests += res.Stats.RETests
	if includeCache {
		s.agg.CacheHits += res.Stats.CacheHits
		s.agg.CacheMisses += res.Stats.CacheMisses
	}
	s.agg.TotalSearchMS += st.SearchMS
	s.agg.TotalQueueMS += st.QueueBuildMS
	if res.Stats.TimedOut {
		s.agg.TimedOut++
	}
	if res.Found {
		s.agg.SolutionsFound++
	}
	s.lastRun = &st
	s.lastAt = time.Now()
}

// recordBatchCache folds one batch's exact evaluator totals into the
// aggregate cache counters (see recordRun).
func (s *Server) recordBatchCache(hits, misses uint64) {
	s.aggMu.Lock()
	s.agg.CacheHits += hits
	s.agg.CacheMisses += misses
	s.aggMu.Unlock()
}

func (s *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	s.cSummarize.requests.Add(1)
	var q SummarizeRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, &s.cSummarize, status, err)
		return
	}
	e, err := s.kbFromRequest(r, q.KB)
	if err != nil {
		s.writeError(w, &s.cSummarize, errStatus(err), err)
		return
	}
	if q.Entity == "" {
		s.writeError(w, &s.cSummarize, http.StatusBadRequest, errors.New("entity is required"))
		return
	}
	if q.Size <= 0 {
		q.Size = defaultSummary
	}
	if q.Size > maxSummary {
		q.Size = maxSummary
	}
	_, opts, err := metricOptions(q.Metric)
	if err != nil {
		s.writeError(w, &s.cSummarize, http.StatusBadRequest, err)
		return
	}
	entries, err := e.sys().SummarizeContext(r.Context(), q.Entity, q.Size, opts...)
	if err != nil {
		s.writeError(w, &s.cSummarize, errStatus(err), err)
		return
	}
	out := SummarizeResponse{Entity: q.Entity, Features: make([]Feature, len(entries))}
	for i, en := range entries {
		out.Features[i] = Feature{Predicate: en.Predicate, Object: en.Object}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	s.cDescribe.requests.Add(1)
	e, err := s.kbFromRequest(r, "")
	if err != nil {
		s.writeError(w, &s.cDescribe, errStatus(err), err)
		return
	}
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		s.writeError(w, &s.cDescribe, http.StatusBadRequest, errors.New("query parameter entity is required"))
		return
	}
	label, err := e.sys().Describe(entity)
	if err != nil {
		s.writeError(w, &s.cDescribe, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, DescribeResponse{Entity: entity, Label: label})
}

// kbInfo snapshots one registry entry for the stats endpoints.
func (s *Server) kbInfo(e *kbEntry) KBInfo {
	sys := e.sys()
	info := KBInfo{
		Facts:              sys.NumFacts(),
		Entities:           sys.NumEntities(),
		Predicates:         sys.NumPredicates(),
		Generation:         e.generation.Load(),
		Requests:           e.requests.Load(),
		Default:            e.name == s.defaultName,
		ReloadFailures:     e.reloadFailures.Load(),
		LastGoodGeneration: e.lastGoodGen.Load(),
	}
	if e.live != nil {
		st := e.live.Stats()
		info.Live = true
		info.FactsApplied = st.FactsApplied
		info.WalBytes = st.WalBytes
		info.WalRecords = st.WalRecords
		info.RecoveryReplayed = st.RecoveryReplayed
		info.LastCompactionGeneration = e.lastCompactionGen.Load()
		info.PendingAdds = st.PendingAdds
		info.PendingDels = st.PendingDels
	}
	if until := e.quarantineUntil.Load(); until > 0 {
		// Ceiling, not truncation: while the reload path still refuses, the
		// stats must not claim the quarantine is over.
		if left := time.Until(time.Unix(0, until)); left > 0 {
			info.QuarantinedForMS = int64((left + time.Millisecond - 1) / time.Millisecond)
		}
	}
	return info
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.cStats.requests.Add(1)
	// /v1/kb/{kb}/stats (or ?kb=) narrows the response to one KB.
	if r.PathValue("kb") != "" || r.URL.Query().Get("kb") != "" {
		e, err := s.kbFromRequest(r, "")
		if err != nil {
			s.writeError(w, &s.cStats, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, KBStatsResponse{Name: e.name, KBInfo: s.kbInfo(e)})
		return
	}
	var out StatsResponse
	out.UptimeSeconds = time.Since(s.started).Seconds()
	out.KB.Facts = s.sys().NumFacts()
	out.KB.Entities = s.sys().NumEntities()
	out.KB.Predicates = s.sys().NumPredicates()
	s.mu.RLock()
	out.KBs = make(map[string]KBInfo, len(s.kbs))
	for name, e := range s.kbs {
		out.KBs[name] = s.kbInfo(e)
	}
	s.mu.RUnlock()
	out.Endpoints = map[string]EndpointStats{
		"mine":          s.cMine.stats(),
		"facts":         s.cFacts.stats(),
		"admin_compile": s.cCompile.stats(),
		"mine_batch":    s.cMineBatch.stats(),
		"mine_async":    s.cMineAsync.stats(),
		"mine_stream":   s.cMineStream.stats(),
		"jobs":          s.cJobs.stats(),
		"summarize":     s.cSummarize.stats(),
		"describe":      s.cDescribe.stats(),
		"stats":         s.cStats.stats(),
		"healthz":       s.cHealth.stats(),
		"readyz":        s.cReady.stats(),
		"not_found":     s.cNotFound.stats(),
	}
	js := s.jobs.Snapshot()
	out.Jobs = &JobsStats{
		Workers:       js.Workers,
		QueueCapacity: js.QueueCapacity,
		Queued:        js.Queued,
		Running:       js.Running,
		Tracked:       js.Tracked,
		Submitted:     js.Submitted,
		External:      js.External,
		Joined:        js.Joined,
		Rejected:      js.Rejected,
		Completed:     js.Completed,
		Failed:        js.Failed,
		Cancelled:     js.Cancelled,
		Expired:       js.Expired,
		AvgRunMS:      js.AvgRunMS,
		RejectedBatch: js.RejectedBatch,
		WatchdogKills: js.WatchdogKilled,
		Draining:      js.Draining,
	}
	out.Draining = s.draining.Load()
	if s.quota != nil {
		out.Quota = &QuotaStats{
			Enabled:    true,
			RatePerSec: s.quota.rate,
			Burst:      s.quota.burst,
			Clients:    s.quota.clients(),
			Rejected:   s.quotaRejected.Load(),
		}
	}
	s.aggMu.Lock()
	out.Mining = s.agg
	out.Mining.LastRun = s.lastRun
	if !s.lastAt.IsZero() {
		out.Mining.LastRunUnixNS = s.lastAt.UnixNano()
	}
	s.aggMu.Unlock()
	out.Mining.Runs = s.mineRuns.Load()
	out.Mining.DedupedHits = s.dedupedHits.Load()
	if s.results != nil {
		hits, misses := s.results.Stats()
		out.ResultCache = ResultCacheStats{
			Enabled: true,
			Size:    s.results.Len(),
			Hits:    hits,
			Misses:  misses,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealth is liveness: the process is up and can answer — always 200,
// draining or not. Orchestrators use it to decide whether to restart the
// process; routing decisions belong to /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.cHealth.requests.Add(1)
	s.mu.RLock()
	kbCount := len(s.kbs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"facts":    s.sys().NumFacts(),
		"entities": s.sys().NumEntities(),
		"kbs":      kbCount,
		"draining": s.draining.Load(),
	})
}

// handleReady is readiness: whether this instance should receive new
// traffic. Draining answers 503 so load balancers take it out of rotation
// while /healthz keeps reporting the process alive.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.cReady.requests.Add(1)
	if s.draining.Load() {
		s.writeError(w, &s.cReady, http.StatusServiceUnavailable, errDraining)
		return
	}
	// degraded: still correct to route to (last-known-good generations keep
	// serving), but at least one KB source is quarantined after failed
	// reloads — a router surfaces it so operators see staleness early.
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "degraded": s.anyQuarantined()})
}

// anyQuarantined reports whether any registered KB currently refuses
// reloads after failures (it keeps serving its last known good system).
func (s *Server) anyQuarantined() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	now := time.Now().UnixNano()
	for _, e := range s.kbs {
		if until := e.quarantineUntil.Load(); until != 0 && until > now {
			return true
		}
	}
	return false
}
