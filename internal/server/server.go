// Package server exposes a loaded remi.System as a long-lived HTTP/JSON
// service: the knowledge base is loaded (or generated) once, and the
// thread-safe System is shared across requests. Mining runs are tied to the
// request context — a client disconnect or deadline cancels the underlying
// search — and concurrent identical queries are deduplicated onto a single
// in-flight run. Command remi-serve wraps this package in a binary.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/lru"
)

// StatusClientClosedRequest is returned when the client went away before
// the mining run finished (nginx's non-standard 499).
const StatusClientClosedRequest = 499

// Options tunes a Server. The zero value is usable: no default timeout, no
// caps beyond the built-in safety limits.
type Options struct {
	// DefaultTimeout bounds a mining run when the request does not carry
	// its own timeout_ms (0 = unbounded, unless MaxTimeout is set).
	DefaultTimeout time.Duration
	// MaxTimeout is the ceiling on any mining run: it clamps
	// request-supplied timeouts and also bounds runs that would otherwise
	// be unbounded, so no single request can hold a worker forever
	// (0 = no ceiling).
	MaxTimeout time.Duration
	// DefaultWorkers is the P-REMI parallelism used when the request does
	// not set workers (0 or 1 = sequential REMI).
	DefaultWorkers int
	// MaxWorkers clamps request-supplied worker counts (0 = no clamp).
	MaxWorkers int
	// MaxTargets caps the number of target IRIs per mine request
	// (0 = the built-in default of 64).
	MaxTargets int
	// MaxTopK clamps requested alternative counts (0 = the built-in 25).
	MaxTopK int
	// MaxExceptions clamps the requested exception budget so one request
	// cannot disable the miner's pruning outright (0 = the built-in 100).
	MaxExceptions int
	// ResultCache is the capacity (entries) of the LRU of completed mine
	// responses, keyed by the same normalized query key as the in-flight
	// dedup: a repeated identical query is served from memory instead of
	// re-running the search. 0 picks the built-in default of 1024; negative
	// disables the cache. Timed-out (partial) results are never cached, and
	// the whole cache is invalidated when the KB is swapped (SwapSystem).
	ResultCache int
}

const (
	defaultMaxTargets    = 64
	defaultMaxTopK       = 25
	defaultMaxExceptions = 100
	defaultResultCache   = 1024
	defaultSummary       = 5
	maxSummary           = 100
	// maxBodyBytes caps request bodies before decoding so an oversized
	// payload cannot balloon memory ahead of validation.
	maxBodyBytes = 1 << 20
)

type counter struct {
	requests atomic.Int64
	errors   atomic.Int64
}

func (c *counter) stats() EndpointStats {
	return EndpointStats{Requests: c.requests.Load(), Errors: c.errors.Load()}
}

// mineFunc abstracts System.MineContext so tests can substitute a
// controllable miner.
type mineFunc func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error)

// Server handles the REMI HTTP API. Create with New and mount Handler.
type Server struct {
	sysPtr  atomic.Pointer[remi.System]
	mine    mineFunc
	opts    Options
	started time.Time
	flights flightGroup

	// results caches completed mine results by generation-tagged query key
	// (nil when disabled). generation is bumped by SwapSystem, which makes
	// every cached key — and every in-flight dedup key — unreachable, i.e.
	// a full invalidation on KB reload.
	results    *lru.Cache[string, *remi.Result]
	generation atomic.Int64

	cMine      counter
	cSummarize counter
	cDescribe  counter
	cStats     counter
	cHealth    counter

	mineRuns    atomic.Int64
	dedupedHits atomic.Int64

	aggMu   sync.Mutex
	agg     MiningStats
	lastRun *MineStats
	lastAt  time.Time
}

// New wraps a loaded System.
func New(sys *remi.System, opts Options) *Server {
	if opts.MaxTargets <= 0 {
		opts.MaxTargets = defaultMaxTargets
	}
	if opts.MaxTopK <= 0 {
		opts.MaxTopK = defaultMaxTopK
	}
	if opts.MaxExceptions <= 0 {
		opts.MaxExceptions = defaultMaxExceptions
	}
	if opts.ResultCache == 0 {
		opts.ResultCache = defaultResultCache
	}
	s := &Server{opts: opts, started: time.Now()}
	s.sysPtr.Store(sys)
	if opts.ResultCache > 0 {
		s.results = lru.New[string, *remi.Result](opts.ResultCache)
	}
	return s
}

// sys returns the currently served System.
func (s *Server) sys() *remi.System { return s.sysPtr.Load() }

// mineContext routes to the test override when set, otherwise to the
// current System.
func (s *Server) mineContext(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
	if s.mine != nil {
		return s.mine(ctx, targets, opts...)
	}
	return s.sys().MineContext(ctx, targets, opts...)
}

// SwapSystem replaces the served knowledge base (a KB reload) and fully
// invalidates the result cache: the generation tag in every cache and
// dedup key changes, so runs and entries of the old KB can no longer be
// reached, even by requests racing with the swap.
func (s *Server) SwapSystem(sys *remi.System) {
	s.sysPtr.Store(sys)
	s.generation.Add(1)
	if s.results != nil {
		s.results.Purge()
	}
}

// cacheKey tags a normalized query key with the current KB generation.
func (s *Server) cacheKey(key string) string {
	return strconv.FormatInt(s.generation.Load(), 10) + "|" + key
}

// Handler returns the routing table of the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mine", s.handleMine)
	mux.HandleFunc("POST /v1/summarize", s.handleSummarize)
	mux.HandleFunc("GET /v1/describe", s.handleDescribe)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError maps an error to a status and JSON body, counting it.
func (s *Server) writeError(w http.ResponseWriter, c *counter, status int, err error) {
	c.errors.Add(1)
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// errStatus classifies request-processing errors.
func errStatus(err error) int {
	switch {
	case errors.Is(err, remi.ErrUnknownEntity):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, errMinePanic):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// metricOptions canonicalizes a metric name and returns the matching facade
// options (shared by mine and summarize).
func metricOptions(metric string) (canonical string, opts []remi.MineOption, err error) {
	switch metric {
	case "", "fr":
		return "fr", nil, nil
	case "pr":
		return "pr", []remi.MineOption{remi.WithMetric(remi.MetricPr)}, nil
	default:
		return "", nil, fmt.Errorf("unknown metric %q (fr|pr)", metric)
	}
}

// mineOptions validates the request against the server limits and builds
// the facade options. It also rewrites the request's option fields to their
// effective canonical values (metric/language aliases resolved, defaults
// and clamps applied), so the dedup key built afterwards matches every
// semantically identical query.
func (s *Server) mineOptions(q *MineRequest) ([]remi.MineOption, error) {
	canonical, opts, err := metricOptions(q.Metric)
	if err != nil {
		return nil, err
	}
	q.Metric = canonical
	switch q.Language {
	case "", "remi", "extended":
		q.Language = "remi"
	case "standard":
		opts = append(opts, remi.WithLanguage(remi.LanguageStandard))
	default:
		return nil, fmt.Errorf("unknown language %q (remi|standard)", q.Language)
	}
	if q.Workers < 0 || q.TopK < 0 || q.Exceptions < 0 || q.TimeoutMS < 0 {
		return nil, errors.New("workers, top_k, exceptions and timeout_ms must be non-negative")
	}
	workers := q.Workers
	if workers == 0 {
		workers = s.opts.DefaultWorkers
	}
	if s.opts.MaxWorkers > 0 && workers > s.opts.MaxWorkers {
		workers = s.opts.MaxWorkers
	}
	if workers < 1 {
		workers = 1
	}
	q.Workers = workers
	if workers > 1 {
		opts = append(opts, remi.WithWorkers(workers))
	}
	if q.TopK > s.opts.MaxTopK {
		q.TopK = s.opts.MaxTopK
	}
	if q.TopK < 2 {
		q.TopK = 1 // 0 and 1 both mean "best solution only"
	} else {
		opts = append(opts, remi.WithTopK(q.TopK))
	}
	if q.Exceptions > s.opts.MaxExceptions {
		q.Exceptions = s.opts.MaxExceptions
	}
	if q.Exceptions > 0 {
		opts = append(opts, remi.WithExceptions(q.Exceptions))
	}
	timeout := s.opts.DefaultTimeout
	if q.TimeoutMS > 0 {
		timeout = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	if s.opts.MaxTimeout > 0 && (timeout <= 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	q.TimeoutMS = timeout.Milliseconds()
	if timeout > 0 {
		opts = append(opts, remi.WithTimeout(timeout))
	}
	return opts, nil
}

// decodeBody decodes a size-capped JSON request body, reporting whether the
// payload exceeded the cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (tooLarge bool, err error) {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		return errors.As(err, &maxErr), fmt.Errorf("decoding request: %w", err)
	}
	return false, nil
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.cMine.requests.Add(1)
	var q MineRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, &s.cMine, status, err)
		return
	}
	q.normalize()
	if len(q.Targets) == 0 {
		s.writeError(w, &s.cMine, http.StatusBadRequest, errors.New("targets is required"))
		return
	}
	if len(q.Targets) > s.opts.MaxTargets {
		s.writeError(w, &s.cMine, http.StatusBadRequest,
			fmt.Errorf("%d targets exceed the limit of %d", len(q.Targets), s.opts.MaxTargets))
		return
	}
	opts, err := s.mineOptions(&q)
	if err != nil {
		s.writeError(w, &s.cMine, http.StatusBadRequest, err)
		return
	}

	key := s.cacheKey(q.key())
	if s.results != nil {
		if res, ok := s.results.Get(key); ok {
			writeJSON(w, http.StatusOK, wireResult(res, false, true))
			return
		}
	}

	res, joined, err := s.flights.do(r.Context(), key, func(ctx context.Context) (*remi.Result, error) {
		s.mineRuns.Add(1)
		res, err := s.mineContext(ctx, q.Targets, opts...)
		if err == nil {
			s.recordRun(res)
			// Only complete searches are worth remembering: a timed-out run
			// holds whatever the deadline allowed, and a retry with more
			// budget deserves a fresh search.
			if s.results != nil && !res.Stats.TimedOut {
				s.results.Put(key, res)
			}
		}
		return res, err
	})
	if joined {
		s.dedupedHits.Add(1)
	}
	if err != nil {
		s.writeError(w, &s.cMine, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, wireResult(res, joined, false))
}

// recordRun folds one completed mining run into the aggregate stats.
func (s *Server) recordRun(res *remi.Result) {
	st := wireStats(res.Stats)
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	s.agg.Candidates += int64(res.Stats.Candidates)
	s.agg.Visited += res.Stats.Visited
	s.agg.RETests += res.Stats.RETests
	s.agg.CacheHits += res.Stats.CacheHits
	s.agg.CacheMisses += res.Stats.CacheMisses
	s.agg.TotalSearchMS += st.SearchMS
	s.agg.TotalQueueMS += st.QueueBuildMS
	if res.Stats.TimedOut {
		s.agg.TimedOut++
	}
	if res.Found {
		s.agg.SolutionsFound++
	}
	s.lastRun = &st
	s.lastAt = time.Now()
}

func (s *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	s.cSummarize.requests.Add(1)
	var q SummarizeRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, &s.cSummarize, status, err)
		return
	}
	if q.Entity == "" {
		s.writeError(w, &s.cSummarize, http.StatusBadRequest, errors.New("entity is required"))
		return
	}
	if q.Size <= 0 {
		q.Size = defaultSummary
	}
	if q.Size > maxSummary {
		q.Size = maxSummary
	}
	_, opts, err := metricOptions(q.Metric)
	if err != nil {
		s.writeError(w, &s.cSummarize, http.StatusBadRequest, err)
		return
	}
	entries, err := s.sys().SummarizeContext(r.Context(), q.Entity, q.Size, opts...)
	if err != nil {
		s.writeError(w, &s.cSummarize, errStatus(err), err)
		return
	}
	out := SummarizeResponse{Entity: q.Entity, Features: make([]Feature, len(entries))}
	for i, e := range entries {
		out.Features[i] = Feature{Predicate: e.Predicate, Object: e.Object}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	s.cDescribe.requests.Add(1)
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		s.writeError(w, &s.cDescribe, http.StatusBadRequest, errors.New("query parameter entity is required"))
		return
	}
	label, err := s.sys().Describe(entity)
	if err != nil {
		s.writeError(w, &s.cDescribe, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, DescribeResponse{Entity: entity, Label: label})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.cStats.requests.Add(1)
	var out StatsResponse
	out.UptimeSeconds = time.Since(s.started).Seconds()
	out.KB.Facts = s.sys().NumFacts()
	out.KB.Entities = s.sys().NumEntities()
	out.KB.Predicates = s.sys().NumPredicates()
	out.Endpoints = map[string]EndpointStats{
		"mine":      s.cMine.stats(),
		"summarize": s.cSummarize.stats(),
		"describe":  s.cDescribe.stats(),
		"stats":     s.cStats.stats(),
		"healthz":   s.cHealth.stats(),
	}
	s.aggMu.Lock()
	out.Mining = s.agg
	out.Mining.LastRun = s.lastRun
	if !s.lastAt.IsZero() {
		out.Mining.LastRunUnixNS = s.lastAt.UnixNano()
	}
	s.aggMu.Unlock()
	out.Mining.Runs = s.mineRuns.Load()
	out.Mining.DedupedHits = s.dedupedHits.Load()
	if s.results != nil {
		hits, misses := s.results.Stats()
		out.ResultCache = ResultCacheStats{
			Enabled: true,
			Size:    s.results.Len(),
			Hits:    hits,
			Misses:  misses,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.cHealth.requests.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"facts":    s.sys().NumFacts(),
		"entities": s.sys().NumEntities(),
	})
}
