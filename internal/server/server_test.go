package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
)

const tinyNS = "http://tiny.demo/resource/"

var (
	tinyOnce sync.Once
	tinySys  *remi.System
)

// tinyServer shares one generated tiny KB across tests (building it is the
// expensive part) but gives each test a fresh Server with fresh counters.
func tinyServer(t *testing.T, opts Options) *Server {
	t.Helper()
	tinyOnce.Do(func() {
		var err error
		tinySys, err = remi.GenerateDemo("tiny", 42, 0)
		if err != nil {
			t.Fatal(err)
		}
	})
	s := New(tinySys, opts)
	t.Cleanup(s.Close)
	return s
}

// flightKeyOf computes the unified flight/cache key a request would get,
// for tests poking the job registry directly.
func flightKeyOf(t *testing.T, s *Server, q MineRequest) string {
	t.Helper()
	q.normalize()
	if _, err := s.mineOptions(&q); err != nil {
		t.Fatal(err)
	}
	e, err := s.lookupKB("")
	if err != nil {
		t.Fatal(err)
	}
	return s.cacheKey(e, q.key())
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestMineHappyPath(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	rec := postJSON(t, h, "/v1/mine", MineRequest{
		Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decode[MineResponse](t, rec)
	if !out.Found || out.Solution == nil {
		t.Fatalf("no solution: %s", rec.Body.String())
	}
	if out.Solution.Expression == "" || out.Solution.NL == "" || out.Solution.SPARQL == "" {
		t.Fatalf("incomplete solution: %+v", out.Solution)
	}
	if out.Stats.Candidates == 0 || out.Stats.Visited == 0 {
		t.Fatalf("empty stats: %+v", out.Stats)
	}
	if out.Stats.TimedOut {
		t.Fatal("tiny mine timed out")
	}
}

func TestMineValidation(t *testing.T) {
	s := tinyServer(t, Options{})
	h := s.Handler()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown entity", MineRequest{Targets: []string{tinyNS + "Nowhere"}}, http.StatusNotFound},
		{"empty targets", MineRequest{}, http.StatusBadRequest},
		{"bad metric", MineRequest{Targets: []string{tinyNS + "Paris"}, Metric: "xx"}, http.StatusBadRequest},
		{"bad language", MineRequest{Targets: []string{tinyNS + "Paris"}, Language: "xx"}, http.StatusBadRequest},
		{"negative workers", MineRequest{Targets: []string{tinyNS + "Paris"}, Workers: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := postJSON(t, h, "/v1/mine", tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		out := decode[ErrorResponse](t, rec)
		if out.Error == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}

	req := httptest.NewRequest("POST", "/v1/mine", bytes.NewReader([]byte("{not json")))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", rec.Code)
	}
}

// TestMineCancelledRequest: a request whose context is cancelled mid-search
// returns promptly with 499, and the underlying miner run observes the
// cancellation (visible as a timed-out run in the aggregate stats).
func TestMineCancelledRequest(t *testing.T) {
	s := tinyServer(t, Options{})
	// Deterministic "long search": the job blocks until its context ends —
	// which the abandonment of the last waiter must provide — then runs the
	// real System under that cancelled context.
	started := make(chan struct{})
	real := s.sys().MineContext
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		close(started)
		<-ctx.Done()
		return real(ctx, targets, opts...)
	}
	h := s.Handler()

	buf, _ := json.Marshal(MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}})
	req := httptest.NewRequest("POST", "/v1/mine", bytes.NewReader(buf))
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	req = req.WithContext(ctx)
	// The client goes away once the pool is executing the search, so the
	// abandonment hits a *running* job (the queued case is covered by the
	// jobs package).
	go func() {
		<-started
		cancel()
	}()

	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled request took %v", took)
	}
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}

	// The mining goroutine finishes in the background; its run must have
	// observed the cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
		st := decode[StatsResponse](t, rec)
		if st.Mining.Runs >= 1 && st.Mining.TimedOut >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("miner never observed the cancellation: %+v", st.Mining)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMineDeduplicated: two concurrent identical queries share one mining
// run; the joining request is marked deduplicated.
func TestMineDeduplicated(t *testing.T) {
	s := tinyServer(t, Options{})
	release := make(chan struct{})
	var calls atomic.Int32
	real := s.sys().MineContext
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		calls.Add(1)
		<-release
		return real(ctx, targets, opts...)
	}
	h := s.Handler()
	// Same query, different target order: normalization must unify the key.
	bodies := []MineRequest{
		{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}},
		{Targets: []string{tinyNS + "Nantes", tinyNS + "Rennes"}},
	}

	key := flightKeyOf(t, s, MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}})
	recs := make([]*httptest.ResponseRecorder, 2)
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = postJSON(t, h, "/v1/mine", bodies[i])
		}(i)
		// Wait until request i holds a reference on the shared job before
		// starting the next, so the overlap is guaranteed.
		want := i + 1
		waitFor(t, func() bool {
			j, ok := s.jobs.Lookup(key)
			return ok && j.Refs() == want
		})
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("expected 1 shared mining run, got %d", got)
	}
	var deduped int
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		out := decode[MineResponse](t, rec)
		if !out.Found {
			t.Fatalf("request %d found nothing", i)
		}
		if out.Deduplicated {
			deduped++
		}
	}
	if deduped != 1 {
		t.Fatalf("expected exactly 1 deduplicated response, got %d", deduped)
	}
}

// TestDedupKeyCollisionResistance: a crafted IRI must not produce the same
// flight key as a different target list.
func TestDedupKeyCollisionResistance(t *testing.T) {
	a := MineRequest{Targets: []string{"http://x/a\nhttp://x/b"}}
	b := MineRequest{Targets: []string{"http://x/a", "http://x/b"}}
	a.normalize()
	b.normalize()
	if a.key() == b.key() {
		t.Fatal("crafted single target collides with a two-target query")
	}
}

// TestDedupKeyCanonicalization: a query spelling out the defaults shares a
// flight key with one that omits them.
func TestDedupKeyCanonicalization(t *testing.T) {
	s := tinyServer(t, Options{DefaultWorkers: 4, DefaultTimeout: time.Second})
	a := MineRequest{Targets: []string{tinyNS + "Paris"}}
	b := MineRequest{Targets: []string{tinyNS + "Paris"},
		Metric: "fr", Language: "extended", Workers: 4, TimeoutMS: 1000, TopK: 1}
	a.normalize()
	b.normalize()
	if _, err := s.mineOptions(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.mineOptions(&b); err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Fatalf("equivalent queries got different keys:\n%q\n%q", a.key(), b.key())
	}
}

// TestMineClampsExcessiveOptions: over-limit top_k and exceptions are
// clamped, not rejected, matching the workers/timeout behavior.
func TestMineClampsExcessiveOptions(t *testing.T) {
	s := tinyServer(t, Options{})
	q := MineRequest{Targets: []string{tinyNS + "Paris"}, TopK: 9999, Exceptions: 1 << 30}
	if _, err := s.mineOptions(&q); err != nil {
		t.Fatal(err)
	}
	if q.TopK != s.opts.MaxTopK {
		t.Fatalf("top_k clamped to %d, want %d", q.TopK, s.opts.MaxTopK)
	}
	if q.Exceptions != s.opts.MaxExceptions {
		t.Fatalf("exceptions clamped to %d, want %d", q.Exceptions, s.opts.MaxExceptions)
	}
}

// TestMineBodyTooLarge: an oversized request body is rejected before it is
// fully buffered.
func TestMineBodyTooLarge(t *testing.T) {
	s := tinyServer(t, Options{})
	h := s.Handler()
	big := bytes.Repeat([]byte("a"), maxBodyBytes+1024)
	body := append([]byte(`{"targets":["`), big...)
	body = append(body, []byte(`"]}`)...)
	req := httptest.NewRequest("POST", "/v1/mine", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want %d", rec.Code, http.StatusRequestEntityTooLarge)
	}
}

// TestMinePanicRecovered: a panic inside the shared mining run becomes a
// 500 for the waiters instead of killing the process.
func TestMinePanicRecovered(t *testing.T) {
	s := tinyServer(t, Options{})
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		panic("boom")
	}
	h := s.Handler()
	rec := postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Paris"}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decode[ErrorResponse](t, rec)
	if out.Error == "" {
		t.Fatal("missing error message")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSummarizeAndDescribe(t *testing.T) {
	s := tinyServer(t, Options{})
	h := s.Handler()

	rec := postJSON(t, h, "/v1/summarize", SummarizeRequest{Entity: tinyNS + "Paris", Size: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("summarize: status %d: %s", rec.Code, rec.Body.String())
	}
	sum := decode[SummarizeResponse](t, rec)
	if len(sum.Features) == 0 {
		t.Fatal("summarize returned no features")
	}
	for _, f := range sum.Features {
		if f.Predicate == "" || f.Object == "" {
			t.Fatalf("incomplete feature: %+v", f)
		}
	}

	rec = postJSON(t, h, "/v1/summarize", SummarizeRequest{Entity: tinyNS + "Nowhere"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("summarize unknown: status %d", rec.Code)
	}

	req := httptest.NewRequest("GET", "/v1/describe?entity="+tinyNS+"Paris", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("describe: status %d: %s", rec.Code, rec.Body.String())
	}
	desc := decode[DescribeResponse](t, rec)
	if desc.Label == "" {
		t.Fatal("describe returned no label")
	}

	req = httptest.NewRequest("GET", "/v1/describe?entity="+tinyNS+"Nowhere", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("describe unknown: status %d", rec.Code)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s := tinyServer(t, Options{})
	h := s.Handler()

	postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}})
	postJSON(t, h, "/v1/mine", MineRequest{Targets: []string{tinyNS + "Nowhere"}})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	st := decode[StatsResponse](t, rec)
	if st.KB.Facts == 0 || st.KB.Entities == 0 {
		t.Fatalf("stats missing KB sizes: %+v", st.KB)
	}
	mine := st.Endpoints["mine"]
	if mine.Requests != 2 || mine.Errors != 1 {
		t.Fatalf("mine counters: %+v", mine)
	}
	if st.Endpoints["healthz"].Requests != 1 {
		t.Fatalf("healthz counter: %+v", st.Endpoints["healthz"])
	}
	// Runs counts attempts: the successful mine and the unknown-entity one.
	if st.Mining.Runs != 2 || st.Mining.Visited == 0 || st.Mining.SolutionsFound != 1 {
		t.Fatalf("mining aggregates: %+v", st.Mining)
	}
	if st.Mining.LastRun == nil {
		t.Fatal("missing last run stats")
	}
}

// The ref-counted last-waiter cancellation contract now lives in the jobs
// registry; internal/server/jobs has the unit coverage
// (TestLastWaiterAbandonsRun and friends). The server-level tests here
// exercise it end-to-end through the HTTP handlers.

// TestMineResultCache: a repeated identical query is served from the
// completed-result LRU (marked cached, no new mining run), hit/miss counters
// surface in /v1/stats, and SwapSystem fully invalidates the cache.
func TestMineResultCache(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	body := MineRequest{Targets: []string{tinyNS + "Rennes", tinyNS + "Nantes"}}

	first := decode[MineResponse](t, postJSON(t, h, "/v1/mine", body))
	if !first.Found || first.Cached {
		t.Fatalf("first response wrong: %+v", first)
	}
	if runs := s.mineRuns.Load(); runs != 1 {
		t.Fatalf("runs after first = %d", runs)
	}

	// Same query, shuffled target order: normalization must make it a hit.
	shuffled := MineRequest{Targets: []string{tinyNS + "Nantes", tinyNS + "Rennes"}}
	second := decode[MineResponse](t, postJSON(t, h, "/v1/mine", shuffled))
	if !second.Cached {
		t.Fatalf("second response not cached: %+v", second)
	}
	if second.Solution == nil || second.Solution.Expression != first.Solution.Expression {
		t.Fatalf("cached solution differs: %+v vs %+v", second.Solution, first.Solution)
	}
	if runs := s.mineRuns.Load(); runs != 1 {
		t.Fatalf("cached hit started a run: runs = %d", runs)
	}

	stats := decode[StatsResponse](t, func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/v1/stats", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}())
	rc := stats.ResultCache
	if !rc.Enabled || rc.Size != 1 || rc.Hits != 1 || rc.Misses != 1 {
		t.Fatalf("result cache stats = %+v", rc)
	}

	// A KB reload invalidates everything: the same query mines again.
	s.SwapSystem(s.sys())
	third := decode[MineResponse](t, postJSON(t, h, "/v1/mine", body))
	if third.Cached {
		t.Fatal("cache survived SwapSystem")
	}
	if runs := s.mineRuns.Load(); runs != 2 {
		t.Fatalf("runs after swap = %d", runs)
	}
}

// TestMineResultCacheDisabled: a negative capacity turns the cache off.
func TestMineResultCacheDisabled(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: -1})
	h := s.Handler()
	body := MineRequest{Targets: []string{tinyNS + "Paris"}}
	for i := 0; i < 2; i++ {
		out := decode[MineResponse](t, postJSON(t, h, "/v1/mine", body))
		if out.Cached {
			t.Fatal("disabled cache served a response")
		}
	}
	if runs := s.mineRuns.Load(); runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
}

// TestMineResultCacheSkipsTimedOut: partial (timed-out) results must not be
// pinned in the cache — a retry deserves a fresh search.
func TestMineResultCacheSkipsTimedOut(t *testing.T) {
	s := tinyServer(t, Options{})
	s.mine = func(ctx context.Context, targets []string, opts ...remi.MineOption) (*remi.Result, error) {
		return &remi.Result{Stats: remi.MineStats{TimedOut: true}}, nil
	}
	h := s.Handler()
	body := MineRequest{Targets: []string{tinyNS + "Paris"}}
	for i := 0; i < 2; i++ {
		out := decode[MineResponse](t, postJSON(t, h, "/v1/mine", body))
		if out.Cached {
			t.Fatal("timed-out result was cached")
		}
	}
	if runs := s.mineRuns.Load(); runs != 2 {
		t.Fatalf("runs = %d, want 2 (no caching of partial results)", runs)
	}
}
