package server

import (
	"sort"
	"strconv"
	"strings"
	"time"

	remi "github.com/remi-kb/remi"
)

// MineRequest is the body of POST /v1/mine.
type MineRequest struct {
	// Targets are the entity IRIs to describe (required, deduplicated).
	Targets []string `json:"targets"`
	// KB routes the request to a registered knowledge base (optional; the
	// default KB when empty, and it must agree with a /v1/kb/{name}/ path).
	KB string `json:"kb,omitempty"`
	// Metric selects the prominence signal: "fr" (default) or "pr".
	Metric string `json:"metric,omitempty"`
	// Language selects the bias: "remi" (default) or "standard".
	Language string `json:"language,omitempty"`
	// Workers requests P-REMI parallelism (0 = server default).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the mining run; 0 uses the server default and values
	// above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TopK also returns the k-1 next-best expressions.
	TopK int `json:"top_k,omitempty"`
	// Exceptions relaxes unambiguity: up to n extra matches are tolerated.
	Exceptions int `json:"exceptions,omitempty"`
}

// normalize sorts and deduplicates the targets in place so that equal
// queries share one dedup key regardless of target order.
func (q *MineRequest) normalize() {
	sort.Strings(q.Targets)
	w := 0
	for i, t := range q.Targets {
		if i == 0 || t != q.Targets[w-1] {
			q.Targets[w] = t
			w++
		}
	}
	q.Targets = q.Targets[:w]
}

// key is the in-flight deduplication key: the sorted target IRIs plus every
// option that affects the result, so only truly identical queries share a
// mining run. Targets are length-prefixed so no crafted IRI (e.g. one
// containing a separator) can collide with a different target list.
func (q *MineRequest) key() string {
	var b strings.Builder
	for _, t := range q.Targets {
		b.WriteString(strconv.Itoa(len(t)))
		b.WriteByte(':')
		b.WriteString(t)
	}
	b.WriteString(q.Metric)
	b.WriteByte('|')
	b.WriteString(q.Language)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.Workers))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(q.TimeoutMS, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.TopK))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.Exceptions))
	return b.String()
}

// Solution is the wire form of remi.Solution.
type Solution struct {
	Expression string   `json:"expression"`
	Subgraphs  []string `json:"subgraphs,omitempty"`
	NL         string   `json:"nl"`
	SPARQL     string   `json:"sparql"`
	Bits       float64  `json:"bits"`
	Atoms      int      `json:"atoms"`
}

// MineStats is the wire form of remi.MineStats.
type MineStats struct {
	Candidates   int     `json:"candidates"`
	QueueBuildMS float64 `json:"queue_build_ms"`
	SearchMS     float64 `json:"search_ms"`
	Visited      uint64  `json:"visited"`
	RETests      uint64  `json:"re_tests"`
	TimedOut     bool    `json:"timed_out"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
}

// MineResponse is the body of a successful POST /v1/mine.
type MineResponse struct {
	Found bool `json:"found"`
	// Solution is present when Found.
	Solution     *Solution  `json:"solution,omitempty"`
	Alternatives []Solution `json:"alternatives,omitempty"`
	Exceptions   []string   `json:"exceptions,omitempty"`
	Stats        MineStats  `json:"stats"`
	// Deduplicated reports that this response was served by joining a mining
	// run already in flight for an identical query.
	Deduplicated bool `json:"deduplicated,omitempty"`
	// Cached reports that this response was served from the completed-result
	// LRU without running a search.
	Cached bool `json:"cached,omitempty"`
}

// SummarizeRequest is the body of POST /v1/summarize.
type SummarizeRequest struct {
	Entity string `json:"entity"`
	// KB routes the request to a registered knowledge base (optional).
	KB string `json:"kb,omitempty"`
	// Size is the number of features to return (default 5).
	Size   int    `json:"size,omitempty"`
	Metric string `json:"metric,omitempty"`
}

// BatchMineRequest is the body of POST /v1/mine:batch: many target sets
// mined in one shared pass. The option fields apply to every set (the
// timeout budgets each set separately).
type BatchMineRequest struct {
	// Sets are the target sets, one mining task each (required; capped by
	// the server's MaxBatchSets, each set by MaxTargets).
	Sets [][]string `json:"sets"`
	// KB routes the whole batch to a registered knowledge base (optional).
	KB         string `json:"kb,omitempty"`
	Metric     string `json:"metric,omitempty"`
	Language   string `json:"language,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	TopK       int    `json:"top_k,omitempty"`
	Exceptions int    `json:"exceptions,omitempty"`
}

// BatchMineItem is the outcome of one target set of a batch: exactly one of
// Response or Error is set. Error entries carry the HTTP status the same
// query would have received from /v1/mine.
type BatchMineItem struct {
	Response *MineResponse `json:"response,omitempty"`
	Error    string        `json:"error,omitempty"`
	Status   int           `json:"status,omitempty"`
}

// BatchMineStats aggregates one batch response.
type BatchMineStats struct {
	// Sets is the number of input sets; Mined counts the searches actually
	// executed (deduplicated, cached and failed sets run none).
	Sets         int `json:"sets"`
	Mined        int `json:"mined"`
	Deduplicated int `json:"deduplicated"`
	Cached       int `json:"cached"`
	Errors       int `json:"errors"`
	// QueueBuildMS and SearchMS sum the phase times of the executed
	// searches.
	QueueBuildMS float64 `json:"queue_build_ms"`
	SearchMS     float64 `json:"search_ms"`
	// CacheHits and CacheMisses are the exact evaluator totals across the
	// executed searches (the per-result stats carry per-set deltas, which
	// under a concurrent pool may attribute a neighbor's lookups).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// BatchMineResponse is the body of a successful POST /v1/mine:batch:
// results[i] answers sets[i].
type BatchMineResponse struct {
	KB      string          `json:"kb"`
	Results []BatchMineItem `json:"results"`
	Stats   BatchMineStats  `json:"stats"`
}

// SummarizeResponse is the body of a successful POST /v1/summarize.
type SummarizeResponse struct {
	Entity   string    `json:"entity"`
	Features []Feature `json:"features"`
}

// Feature is one predicate–object pair of an entity summary.
type Feature struct {
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
}

// DescribeResponse is the body of GET /v1/describe.
type DescribeResponse struct {
	Entity string `json:"entity"`
	Label  string `json:"label"`
}

// EndpointStats counts requests and errors for one endpoint.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// KBInfo describes one registered knowledge base.
type KBInfo struct {
	Facts      int   `json:"facts"`
	Entities   int   `json:"entities"`
	Predicates int   `json:"predicates"`
	Generation int64 `json:"generation"` // reloads since start
	Requests   int64 `json:"requests"`   // requests routed to this KB
	Default    bool  `json:"default,omitempty"`
	// ReloadFailures counts reloads that failed validation and were rolled
	// back; the entry kept serving LastGoodGeneration throughout.
	ReloadFailures     int64 `json:"reload_failures,omitempty"`
	LastGoodGeneration int64 `json:"last_good_generation,omitempty"`
	// QuarantinedForMS is the remaining reload-quarantine window after a
	// failed reload (0 when reloads are admitted).
	QuarantinedForMS int64 `json:"quarantined_for_ms,omitempty"`

	// Live KB fields (absent for snapshot/file-backed entries). FactsApplied
	// counts mutation ops acknowledged since boot; WalBytes/WalRecords size
	// the unfolded tail a crash would replay; RecoveryReplayed counts the
	// records replayed at the last boot; LastCompactionGeneration is the
	// generation installed by the most recent compile (0 = never compiled).
	Live                     bool  `json:"live,omitempty"`
	FactsApplied             int64 `json:"facts_applied,omitempty"`
	WalBytes                 int64 `json:"wal_bytes,omitempty"`
	WalRecords               int64 `json:"wal_records,omitempty"`
	RecoveryReplayed         int64 `json:"recovery_replayed,omitempty"`
	LastCompactionGeneration int64 `json:"last_compaction_generation,omitempty"`
	PendingAdds              int   `json:"pending_adds,omitempty"`
	PendingDels              int   `json:"pending_dels,omitempty"`
}

// FactOp is one mutation of a facts batch. Terms are N-Triples encoded
// (<iri>, "literal", _:blank); op is "upsert" (default) or "retract".
type FactOp struct {
	Op string `json:"op,omitempty"`
	S  string `json:"s"`
	P  string `json:"p"`
	O  string `json:"o"`
}

// FactsRequest is the body of POST /v1/kb/{name}/facts.
type FactsRequest struct {
	KB  string   `json:"kb,omitempty"` // alternative to the path form
	Ops []FactOp `json:"ops"`
}

// FactsResponse acknowledges a durable mutation batch: by the time a
// client reads it, the ops are fsynced in the WAL and the returned
// generation is serving them.
type FactsResponse struct {
	KB         string `json:"kb"`
	Applied    int    `json:"applied"` // ops accepted (including no-ops)
	Changed    int    `json:"changed"` // ops that altered the fact set
	Generation int64  `json:"generation"`
	WalBytes   int64  `json:"wal_bytes"`
	WalRecords int64  `json:"wal_records"`
	RequestID  string `json:"request_id,omitempty"`
}

// CompileRequest is the (optional) body of POST /v1/admin/compile.
type CompileRequest struct {
	KB string `json:"kb,omitempty"`
}

// CompileResponse reports a completed compaction: the WAL is truncated and
// the returned generation serves from the freshly folded snapshot.
type CompileResponse struct {
	KB          string `json:"kb"`
	Generation  int64  `json:"generation"`
	Compactions int64  `json:"compactions"`
	WalBytes    int64  `json:"wal_bytes"`
	RequestID   string `json:"request_id,omitempty"`
}

// KBStatsResponse is the body of GET /v1/kb/{name}/stats.
type KBStatsResponse struct {
	Name string `json:"name"`
	KBInfo
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// KB sizes the default knowledge base (kept for single-KB deployments;
	// KBs lists every registered one).
	KB struct {
		Facts      int `json:"facts"`
		Entities   int `json:"entities"`
		Predicates int `json:"predicates"`
	} `json:"kb"`
	KBs       map[string]KBInfo        `json:"kbs"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Mining    MiningStats              `json:"mining"`
	// ResultCache describes the completed-result LRU (all zeros with
	// enabled=false when the cache is turned off).
	ResultCache ResultCacheStats `json:"result_cache"`
	// Jobs describes the unified job subsystem every mining request runs
	// through: pool gauges, admission-control counters, lifecycle totals.
	Jobs *JobsStats `json:"jobs,omitempty"`
	// Draining reports that the server has stopped admitting mining work and
	// is waiting for in-flight jobs to finish (see /readyz).
	Draining bool `json:"draining,omitempty"`
	// Quota describes the per-client admission limiter (absent when off).
	Quota *QuotaStats `json:"quota,omitempty"`
}

// QuotaStats describes the per-client token-bucket limiter under /v1/stats.
type QuotaStats struct {
	Enabled    bool    `json:"enabled"`
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      float64 `json:"burst"`
	// Clients is the number of buckets currently tracked (clients seen
	// recently enough to still hold a deficit).
	Clients  int   `json:"clients"`
	Rejected int64 `json:"rejected"`
}

// JobsStats is the wire form of the job registry snapshot under /v1/stats.
type JobsStats struct {
	Workers       int `json:"workers"`
	QueueCapacity int `json:"queue_capacity"`
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	Tracked       int `json:"tracked"`
	// Submitted counts pool submissions, External the jobs executed outside
	// the pool (batch members), Joined the callers deduplicated onto an
	// in-flight job, Rejected the submissions shed with 429.
	Submitted int64 `json:"submitted"`
	External  int64 `json:"external"`
	Joined    int64 `json:"joined"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Expired counts finished jobs dropped by the TTL garbage collector.
	Expired  int64   `json:"expired"`
	AvgRunMS float64 `json:"avg_run_ms"`
	// RejectedBatch counts batch-priority submissions shed to keep the
	// interactive queue reserve free (included in Rejected).
	RejectedBatch int64 `json:"rejected_batch,omitempty"`
	// WatchdogKills counts jobs forcibly failed by the watchdog after
	// overrunning their deadline plus grace.
	WatchdogKills int64 `json:"watchdog_kills,omitempty"`
	// Draining reports the registry refuses new submissions.
	Draining bool `json:"draining,omitempty"`
}

// ResultCacheStats describes the completed-result LRU of /v1/mine.
type ResultCacheStats struct {
	Enabled bool   `json:"enabled"`
	Size    int    `json:"size"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// MiningStats aggregates the miner's MineStats across every run the server
// has executed, plus the stats of the most recent run.
type MiningStats struct {
	Runs           int64      `json:"runs"`
	DedupedHits    int64      `json:"deduped_hits"`
	TimedOut       int64      `json:"timed_out"`
	Candidates     int64      `json:"candidates"`
	Visited        uint64     `json:"visited"`
	RETests        uint64     `json:"re_tests"`
	CacheHits      uint64     `json:"cache_hits"`
	CacheMisses    uint64     `json:"cache_misses"`
	LastRun        *MineStats `json:"last_run,omitempty"`
	LastRunUnixNS  int64      `json:"last_run_unix_ns,omitempty"`
	TotalSearchMS  float64    `json:"total_search_ms"`
	TotalQueueMS   float64    `json:"total_queue_build_ms"`
	SolutionsFound int64      `json:"solutions_found"`
}

func wireStats(st remi.MineStats) MineStats {
	return MineStats{
		Candidates:   st.Candidates,
		QueueBuildMS: float64(st.QueueBuild) / float64(time.Millisecond),
		SearchMS:     float64(st.Search) / float64(time.Millisecond),
		Visited:      st.Visited,
		RETests:      st.RETests,
		TimedOut:     st.TimedOut,
		CacheHits:    st.CacheHits,
		CacheMisses:  st.CacheMisses,
	}
}

func wireSolution(s remi.Solution) Solution {
	return Solution{
		Expression: s.Expression,
		Subgraphs:  s.Subgraphs,
		NL:         s.NL,
		SPARQL:     s.SPARQL,
		Bits:       s.Bits,
		Atoms:      s.Atoms,
	}
}

func wireResult(res *remi.Result, deduped, cached bool) *MineResponse {
	out := &MineResponse{
		Found:        res.Found,
		Stats:        wireStats(res.Stats),
		Deduplicated: deduped,
		Cached:       cached,
		Exceptions:   res.Exceptions,
	}
	if res.Found {
		sol := wireSolution(res.Solution)
		out.Solution = &sol
		for _, alt := range res.Alternatives {
			out.Alternatives = append(out.Alternatives, wireSolution(alt))
		}
	}
	return out
}

// ErrorResponse is the body of every non-2xx response. RequestID echoes
// the X-Request-Id the request carried (or was assigned), so an error can
// be correlated across the router and replica tiers.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// AsyncMineRequest is the body of POST /v1/mine:async and /v1/mine:stream:
// exactly one of Targets (a single mining task) or Sets (a batch) must be
// present; the option fields mean what they mean on /v1/mine.
type AsyncMineRequest struct {
	Targets    []string   `json:"targets,omitempty"`
	Sets       [][]string `json:"sets,omitempty"`
	KB         string     `json:"kb,omitempty"`
	Metric     string     `json:"metric,omitempty"`
	Language   string     `json:"language,omitempty"`
	Workers    int        `json:"workers,omitempty"`
	TimeoutMS  int64      `json:"timeout_ms,omitempty"`
	TopK       int        `json:"top_k,omitempty"`
	Exceptions int        `json:"exceptions,omitempty"`
}

// single and batch convert the async body into the blocking request shapes.
func (q *AsyncMineRequest) single() MineRequest {
	return MineRequest{Targets: q.Targets, KB: q.KB, Metric: q.Metric, Language: q.Language,
		Workers: q.Workers, TimeoutMS: q.TimeoutMS, TopK: q.TopK, Exceptions: q.Exceptions}
}

func (q *AsyncMineRequest) batch() BatchMineRequest {
	return BatchMineRequest{Sets: q.Sets, KB: q.KB, Metric: q.Metric, Language: q.Language,
		Workers: q.Workers, TimeoutMS: q.TimeoutMS, TopK: q.TopK, Exceptions: q.Exceptions}
}

// JobResponse describes one job: the 202 body of /v1/mine:async, the poll
// body of GET /v1/jobs/{id}, and the final stream event payload. Exactly one
// of Result (kind "mine") or Batch (kind "mine_batch") is present once the
// job is done; Error and Status carry the outcome of a failed or cancelled
// job (Status is the HTTP code the blocking endpoint would have answered).
type JobResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Kind  string `json:"kind"`
	KB    string `json:"kb,omitempty"`
	// RequestID is the X-Request-Id of the request that created the job,
	// kept on the job doc so async failures trace back across tiers.
	RequestID      string             `json:"request_id,omitempty"`
	CreatedUnixNS  int64              `json:"created_unix_ns,omitempty"`
	StartedUnixNS  int64              `json:"started_unix_ns,omitempty"`
	FinishedUnixNS int64              `json:"finished_unix_ns,omitempty"`
	Error          string             `json:"error,omitempty"`
	Status         int                `json:"status,omitempty"`
	Result         *MineResponse      `json:"result,omitempty"`
	Batch          *BatchMineResponse `json:"batch,omitempty"`
}

// Stream event names: every line of an NDJSON stream (and every SSE event)
// is one StreamEvent whose Event field holds one of these.
const (
	// streamProgress reports a new best expression found by a running
	// single-set search (kind "new_best").
	streamProgress = "progress"
	// streamEntry delivers one finished batch entry: Index addresses the
	// input set, Response/Error/Status mirror BatchMineItem.
	streamEntry = "entry"
	// streamResult delivers the final result of a single-set stream.
	streamResult = "result"
	// streamError ends a stream whose run failed (the HTTP status is already
	// sent by then, so the error travels in-band).
	streamError = "error"
	// streamDone ends every stream: Job carries the final job document on
	// job streams; KB and Stats summarize a batch stream.
	streamDone = "done"
	// streamTruncated warns a follower that the job's bounded event log was
	// lapped before it caught up: Dropped counts the events it can no longer
	// see. The stream then resumes at the oldest retained event.
	streamTruncated = "truncated"
)

// StreamEvent is the wire form of one streamed event; fields are populated
// according to Event (see the stream event names).
type StreamEvent struct {
	Event      string          `json:"event"`
	Kind       string          `json:"kind,omitempty"`
	Expression string          `json:"expression,omitempty"`
	Bits       float64         `json:"bits,omitempty"`
	Index      *int            `json:"index,omitempty"`
	Response   *MineResponse   `json:"response,omitempty"`
	Error      string          `json:"error,omitempty"`
	Status     int             `json:"status,omitempty"`
	Job        *JobResponse    `json:"job,omitempty"`
	KB         string          `json:"kb,omitempty"`
	Stats      *BatchMineStats `json:"stats,omitempty"`
	// Dropped counts the log events lost to truncation (event "truncated").
	Dropped int `json:"dropped,omitempty"`
}
