package server

import (
	"sort"
	"strconv"
	"strings"
	"time"

	remi "github.com/remi-kb/remi"
)

// MineRequest is the body of POST /v1/mine.
type MineRequest struct {
	// Targets are the entity IRIs to describe (required, deduplicated).
	Targets []string `json:"targets"`
	// Metric selects the prominence signal: "fr" (default) or "pr".
	Metric string `json:"metric,omitempty"`
	// Language selects the bias: "remi" (default) or "standard".
	Language string `json:"language,omitempty"`
	// Workers requests P-REMI parallelism (0 = server default).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the mining run; 0 uses the server default and values
	// above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TopK also returns the k-1 next-best expressions.
	TopK int `json:"top_k,omitempty"`
	// Exceptions relaxes unambiguity: up to n extra matches are tolerated.
	Exceptions int `json:"exceptions,omitempty"`
}

// normalize sorts and deduplicates the targets in place so that equal
// queries share one dedup key regardless of target order.
func (q *MineRequest) normalize() {
	sort.Strings(q.Targets)
	w := 0
	for i, t := range q.Targets {
		if i == 0 || t != q.Targets[w-1] {
			q.Targets[w] = t
			w++
		}
	}
	q.Targets = q.Targets[:w]
}

// key is the in-flight deduplication key: the sorted target IRIs plus every
// option that affects the result, so only truly identical queries share a
// mining run. Targets are length-prefixed so no crafted IRI (e.g. one
// containing a separator) can collide with a different target list.
func (q *MineRequest) key() string {
	var b strings.Builder
	for _, t := range q.Targets {
		b.WriteString(strconv.Itoa(len(t)))
		b.WriteByte(':')
		b.WriteString(t)
	}
	b.WriteString(q.Metric)
	b.WriteByte('|')
	b.WriteString(q.Language)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.Workers))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(q.TimeoutMS, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.TopK))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.Exceptions))
	return b.String()
}

// Solution is the wire form of remi.Solution.
type Solution struct {
	Expression string   `json:"expression"`
	Subgraphs  []string `json:"subgraphs,omitempty"`
	NL         string   `json:"nl"`
	SPARQL     string   `json:"sparql"`
	Bits       float64  `json:"bits"`
	Atoms      int      `json:"atoms"`
}

// MineStats is the wire form of remi.MineStats.
type MineStats struct {
	Candidates   int     `json:"candidates"`
	QueueBuildMS float64 `json:"queue_build_ms"`
	SearchMS     float64 `json:"search_ms"`
	Visited      uint64  `json:"visited"`
	RETests      uint64  `json:"re_tests"`
	TimedOut     bool    `json:"timed_out"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
}

// MineResponse is the body of a successful POST /v1/mine.
type MineResponse struct {
	Found bool `json:"found"`
	// Solution is present when Found.
	Solution     *Solution  `json:"solution,omitempty"`
	Alternatives []Solution `json:"alternatives,omitempty"`
	Exceptions   []string   `json:"exceptions,omitempty"`
	Stats        MineStats  `json:"stats"`
	// Deduplicated reports that this response was served by joining a mining
	// run already in flight for an identical query.
	Deduplicated bool `json:"deduplicated,omitempty"`
	// Cached reports that this response was served from the completed-result
	// LRU without running a search.
	Cached bool `json:"cached,omitempty"`
}

// SummarizeRequest is the body of POST /v1/summarize.
type SummarizeRequest struct {
	Entity string `json:"entity"`
	// Size is the number of features to return (default 5).
	Size   int    `json:"size,omitempty"`
	Metric string `json:"metric,omitempty"`
}

// SummarizeResponse is the body of a successful POST /v1/summarize.
type SummarizeResponse struct {
	Entity   string    `json:"entity"`
	Features []Feature `json:"features"`
}

// Feature is one predicate–object pair of an entity summary.
type Feature struct {
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
}

// DescribeResponse is the body of GET /v1/describe.
type DescribeResponse struct {
	Entity string `json:"entity"`
	Label  string `json:"label"`
}

// EndpointStats counts requests and errors for one endpoint.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	KB            struct {
		Facts      int `json:"facts"`
		Entities   int `json:"entities"`
		Predicates int `json:"predicates"`
	} `json:"kb"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Mining    MiningStats              `json:"mining"`
	// ResultCache describes the completed-result LRU (all zeros with
	// enabled=false when the cache is turned off).
	ResultCache ResultCacheStats `json:"result_cache"`
}

// ResultCacheStats describes the completed-result LRU of /v1/mine.
type ResultCacheStats struct {
	Enabled bool   `json:"enabled"`
	Size    int    `json:"size"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// MiningStats aggregates the miner's MineStats across every run the server
// has executed, plus the stats of the most recent run.
type MiningStats struct {
	Runs           int64      `json:"runs"`
	DedupedHits    int64      `json:"deduped_hits"`
	TimedOut       int64      `json:"timed_out"`
	Candidates     int64      `json:"candidates"`
	Visited        uint64     `json:"visited"`
	RETests        uint64     `json:"re_tests"`
	CacheHits      uint64     `json:"cache_hits"`
	CacheMisses    uint64     `json:"cache_misses"`
	LastRun        *MineStats `json:"last_run,omitempty"`
	LastRunUnixNS  int64      `json:"last_run_unix_ns,omitempty"`
	TotalSearchMS  float64    `json:"total_search_ms"`
	TotalQueueMS   float64    `json:"total_queue_build_ms"`
	SolutionsFound int64      `json:"solutions_found"`
}

func wireStats(st remi.MineStats) MineStats {
	return MineStats{
		Candidates:   st.Candidates,
		QueueBuildMS: float64(st.QueueBuild) / float64(time.Millisecond),
		SearchMS:     float64(st.Search) / float64(time.Millisecond),
		Visited:      st.Visited,
		RETests:      st.RETests,
		TimedOut:     st.TimedOut,
		CacheHits:    st.CacheHits,
		CacheMisses:  st.CacheMisses,
	}
}

func wireSolution(s remi.Solution) Solution {
	return Solution{
		Expression: s.Expression,
		Subgraphs:  s.Subgraphs,
		NL:         s.NL,
		SPARQL:     s.SPARQL,
		Bits:       s.Bits,
		Atoms:      s.Atoms,
	}
}

func wireResult(res *remi.Result, deduped, cached bool) *MineResponse {
	out := &MineResponse{
		Found:        res.Found,
		Stats:        wireStats(res.Stats),
		Deduplicated: deduped,
		Cached:       cached,
		Exceptions:   res.Exceptions,
	}
	if res.Found {
		sol := wireSolution(res.Solution)
		out.Solution = &sol
		for _, alt := range res.Alternatives {
			out.Alternatives = append(out.Alternatives, wireSolution(alt))
		}
	}
	return out
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
