package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestHTTPErrorConformance is the table-driven contract every endpoint's
// error paths share: each case must answer with the expected status, a
// Content-Type of application/json and a decodable ErrorResponse carrying a
// message — including the responses the Go 1.22 mux would otherwise emit as
// plain text (unknown path, method mismatch). Each case also lands in an
// endpoint counter, asserted in bulk at the end.
func TestHTTPErrorConformance(t *testing.T) {
	s := tinyServer(t, Options{
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     time.Minute,
		MaxBatchSets:   4,
		MaxTargets:     3,
	})
	h := s.Handler()

	raw := func(method, path, body string) *http.Request {
		var r *http.Request
		if body == "" {
			r = httptest.NewRequest(method, path, nil)
		} else {
			r = httptest.NewRequest(method, path, strings.NewReader(body))
		}
		return r
	}
	oversized := func(pad string) string {
		return `{"targets":["` + strings.Repeat("a", maxBodyBytes+1024) + `"]` + pad + `}`
	}

	cases := []struct {
		name     string
		req      *http.Request
		want     int
		endpoint string // counter the case must land in
	}{
		// Malformed JSON on every decoding endpoint.
		{"mine malformed json", raw("POST", "/v1/mine", "{not json"), http.StatusBadRequest, "mine"},
		{"batch malformed json", raw("POST", "/v1/mine:batch", "{not json"), http.StatusBadRequest, "mine_batch"},
		{"summarize malformed json", raw("POST", "/v1/summarize", "{not json"), http.StatusBadRequest, "summarize"},
		// Validation failures.
		{"mine empty targets", raw("POST", "/v1/mine", `{"targets":[]}`), http.StatusBadRequest, "mine"},
		{"mine too many targets", raw("POST", "/v1/mine",
			`{"targets":["a","b","c","d"]}`), http.StatusBadRequest, "mine"},
		{"mine bad metric", raw("POST", "/v1/mine",
			`{"targets":["x"],"metric":"zz"}`), http.StatusBadRequest, "mine"},
		{"mine bad language", raw("POST", "/v1/mine",
			`{"targets":["x"],"language":"zz"}`), http.StatusBadRequest, "mine"},
		{"mine negative timeout", raw("POST", "/v1/mine",
			`{"targets":["x"],"timeout_ms":-5}`), http.StatusBadRequest, "mine"},
		{"batch empty", raw("POST", "/v1/mine:batch", `{"sets":[]}`), http.StatusBadRequest, "mine_batch"},
		{"batch oversized", raw("POST", "/v1/mine:batch",
			`{"sets":[["a"],["b"],["c"],["d"],["e"]]}`), http.StatusBadRequest, "mine_batch"},
		{"summarize empty entity", raw("POST", "/v1/summarize", `{}`), http.StatusBadRequest, "summarize"},
		{"describe no entity", raw("GET", "/v1/describe", ""), http.StatusBadRequest, "describe"},
		// Oversized bodies.
		{"mine body too large", raw("POST", "/v1/mine", oversized("")), http.StatusRequestEntityTooLarge, "mine"},
		{"batch body too large", raw("POST", "/v1/mine:batch",
			strings.Replace(oversized(""), "targets", "sets", 1)), http.StatusRequestEntityTooLarge, "mine_batch"},
		// Unknown entities.
		{"mine unknown entity", raw("POST", "/v1/mine",
			`{"targets":["`+tinyNS+`Nowhere"]}`), http.StatusNotFound, "mine"},
		{"summarize unknown entity", raw("POST", "/v1/summarize",
			`{"entity":"`+tinyNS+`Nowhere"}`), http.StatusNotFound, "summarize"},
		{"describe unknown entity", raw("GET", "/v1/describe?entity="+tinyNS+"Nowhere", ""), http.StatusNotFound, "describe"},
		// Unknown KBs, by field, query and path.
		{"mine unknown kb", raw("POST", "/v1/mine",
			`{"targets":["x"],"kb":"nope"}`), http.StatusNotFound, "mine"},
		{"batch unknown kb path", raw("POST", "/v1/kb/nope/mine:batch",
			`{"sets":[["x"]]}`), http.StatusNotFound, "mine_batch"},
		{"summarize unknown kb", raw("POST", "/v1/summarize",
			`{"entity":"x","kb":"nope"}`), http.StatusNotFound, "summarize"},
		{"describe unknown kb", raw("GET", "/v1/describe?entity=x&kb=nope", ""), http.StatusNotFound, "describe"},
		{"stats unknown kb", raw("GET", "/v1/kb/nope/stats", ""), http.StatusNotFound, "stats"},
		{"kb conflict", raw("POST", "/v1/kb/"+DefaultKBName+"/mine",
			`{"targets":["x"],"kb":"other"}`), http.StatusBadRequest, "mine"},
		{"kb query conflict", raw("POST", "/v1/mine?kb=other",
			`{"targets":["x"],"kb":"`+DefaultKBName+`"}`), http.StatusBadRequest, "mine"},
		// Method mismatches: JSON 405 with an Allow header, counted against
		// the endpoint they belong to.
		{"mine wrong method", raw("GET", "/v1/mine", ""), http.StatusMethodNotAllowed, "mine"},
		{"batch wrong method", raw("GET", "/v1/mine:batch", ""), http.StatusMethodNotAllowed, "mine_batch"},
		{"summarize wrong method", raw("DELETE", "/v1/summarize", ""), http.StatusMethodNotAllowed, "summarize"},
		{"describe wrong method", raw("POST", "/v1/describe", ""), http.StatusMethodNotAllowed, "describe"},
		{"stats wrong method", raw("POST", "/v1/stats", ""), http.StatusMethodNotAllowed, "stats"},
		{"health wrong method", raw("POST", "/healthz", ""), http.StatusMethodNotAllowed, "healthz"},
		{"ready wrong method", raw("POST", "/readyz", ""), http.StatusMethodNotAllowed, "readyz"},
		{"kb-scoped wrong method", raw("GET", "/v1/kb/"+DefaultKBName+"/mine", ""), http.StatusMethodNotAllowed, "mine"},
		// Async submission: malformed bodies and shape violations.
		{"async malformed json", raw("POST", "/v1/mine:async", "{not json"), http.StatusBadRequest, "mine_async"},
		{"async neither shape", raw("POST", "/v1/mine:async", `{}`), http.StatusBadRequest, "mine_async"},
		{"async both shapes", raw("POST", "/v1/mine:async",
			`{"targets":["x"],"sets":[["y"]]}`), http.StatusBadRequest, "mine_async"},
		{"async unknown kb", raw("POST", "/v1/mine:async",
			`{"targets":["x"],"kb":"nope"}`), http.StatusNotFound, "mine_async"},
		{"stream malformed json", raw("POST", "/v1/mine:stream", "{not json"), http.StatusBadRequest, "mine_stream"},
		{"stream neither shape", raw("POST", "/v1/mine:stream", `{}`), http.StatusBadRequest, "mine_stream"},
		{"stream unknown kb", raw("POST", "/v1/mine:stream",
			`{"targets":["x"],"kb":"nope"}`), http.StatusNotFound, "mine_stream"},
		{"stream batch unknown kb path", raw("POST", "/v1/kb/nope/mine:stream",
			`{"sets":[["x"]]}`), http.StatusNotFound, "mine_stream"},
		// Job lifecycle: unknown ids and wrong verbs.
		{"job get unknown", raw("GET", "/v1/jobs/nope", ""), http.StatusNotFound, "jobs"},
		{"job delete unknown", raw("DELETE", "/v1/jobs/nope", ""), http.StatusNotFound, "jobs"},
		{"job stream unknown", raw("GET", "/v1/jobs/nope/stream", ""), http.StatusNotFound, "jobs"},
		{"async wrong method", raw("GET", "/v1/mine:async", ""), http.StatusMethodNotAllowed, "mine_async"},
		{"stream wrong method", raw("GET", "/v1/mine:stream", ""), http.StatusMethodNotAllowed, "mine_stream"},
		{"jobs wrong method", raw("POST", "/v1/jobs/nope", ""), http.StatusMethodNotAllowed, "jobs"},
		{"job stream wrong method", raw("POST", "/v1/jobs/nope/stream", ""), http.StatusMethodNotAllowed, "jobs"},
		// Admin mutation plane. The default KB is not live, so well-formed
		// mutations 409; routing and shape errors hit first where applicable.
		{"facts malformed json", raw("POST", "/v1/facts", "{not json"), http.StatusBadRequest, "facts"},
		{"facts unknown kb", raw("POST", "/v1/kb/nope/facts",
			`{"ops":[{"s":"<a:s>","p":"<a:p>","o":"<a:o>"}]}`), http.StatusNotFound, "facts"},
		{"facts kb not live", raw("POST", "/v1/facts",
			`{"ops":[{"s":"<a:s>","p":"<a:p>","o":"<a:o>"}]}`), http.StatusConflict, "facts"},
		{"facts wrong method", raw("GET", "/v1/facts", ""), http.StatusMethodNotAllowed, "facts"},
		{"kb-scoped facts wrong method", raw("GET", "/v1/kb/"+DefaultKBName+"/facts", ""), http.StatusMethodNotAllowed, "facts"},
		{"compile malformed json", raw("POST", "/v1/admin/compile", "{not json"), http.StatusBadRequest, "admin_compile"},
		{"compile unknown kb", raw("POST", "/v1/admin/compile", `{"kb":"nope"}`), http.StatusNotFound, "admin_compile"},
		{"compile kb not live", raw("POST", "/v1/admin/compile", ""), http.StatusConflict, "admin_compile"},
		{"compile wrong method", raw("GET", "/v1/admin/compile", ""), http.StatusMethodNotAllowed, "admin_compile"},
		{"kb-scoped compile wrong method", raw("DELETE", "/v1/kb/"+DefaultKBName+"/admin/compile", ""), http.StatusMethodNotAllowed, "admin_compile"},
		// Unknown paths: JSON 404 under the not_found pseudo-endpoint.
		{"unknown path", raw("GET", "/v1/nope", ""), http.StatusNotFound, "not_found"},
		{"root path", raw("GET", "/", ""), http.StatusNotFound, "not_found"},
		{"deep unknown path", raw("POST", "/v1/kb/x/nope", ""), http.StatusNotFound, "not_found"},
	}

	wantCounts := map[string]*EndpointStats{}
	for _, tc := range cases {
		st := wantCounts[tc.endpoint]
		if st == nil {
			st = &EndpointStats{}
			wantCounts[tc.endpoint] = st
		}
		st.Requests++
		st.Errors++

		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, tc.req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
			continue
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.name, ct)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: body is not an ErrorResponse: %q", tc.name, rec.Body.String())
		} else if er.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		if rec.Code == http.StatusMethodNotAllowed && rec.Header().Get("Allow") == "" {
			t.Errorf("%s: 405 without an Allow header", tc.name)
		}
	}

	// Every case must be visible in the endpoint counters.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	st := decode[StatsResponse](t, rec)
	for name, want := range wantCounts {
		got := st.Endpoints[name]
		if name == "stats" {
			got.Requests-- // the readback itself
		}
		if got.Requests != want.Requests || got.Errors != want.Errors {
			t.Errorf("endpoint %q counters = %+v, want %+v", name, got, *want)
		}
	}
}

// TestMineTimeoutClamped: a request-supplied timeout above MaxTimeout is
// clamped (not rejected), an absent one picks the default, and an unbounded
// configuration is still capped by the ceiling.
func TestMineTimeoutClamped(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: time.Second, MaxTimeout: 2 * time.Second})
	cases := []struct {
		in   int64
		want int64
	}{
		{0, 1000},       // default
		{500, 500},      // under the ceiling: kept
		{3600000, 2000}, // clamped to MaxTimeout
	}
	for _, tc := range cases {
		q := MineRequest{Targets: []string{tinyNS + "Paris"}, TimeoutMS: tc.in}
		if _, err := s.mineOptions(&q); err != nil {
			t.Fatalf("timeout %d: %v", tc.in, err)
		}
		if q.TimeoutMS != tc.want {
			t.Errorf("timeout %d clamped to %d, want %d", tc.in, q.TimeoutMS, tc.want)
		}
	}
	// No default, only a ceiling: unbounded requests are still capped.
	s2 := tinyServer(t, Options{MaxTimeout: time.Second})
	q := MineRequest{Targets: []string{tinyNS + "Paris"}}
	if _, err := s2.mineOptions(&q); err != nil {
		t.Fatal(err)
	}
	if q.TimeoutMS != 1000 {
		t.Errorf("unbounded request got %dms, want the 1000ms ceiling", q.TimeoutMS)
	}
}

// TestSuccessResponsesAreJSON pins the happy-path Content-Type for every
// endpoint, completing the conformance picture.
func TestSuccessResponsesAreJSON(t *testing.T) {
	s := tinyServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	reqs := []*http.Request{
		newJSONRequest(t, "POST", "/v1/mine", MineRequest{Targets: []string{tinyNS + "Paris"}}),
		newJSONRequest(t, "POST", "/v1/mine:batch", BatchMineRequest{Sets: [][]string{{tinyNS + "Paris"}}}),
		newJSONRequest(t, "POST", "/v1/summarize", SummarizeRequest{Entity: tinyNS + "Paris"}),
		httptest.NewRequest("GET", "/v1/describe?entity="+tinyNS+"Paris", nil),
		httptest.NewRequest("GET", "/v1/stats", nil),
		httptest.NewRequest("GET", "/v1/kb/"+DefaultKBName+"/stats", nil),
		httptest.NewRequest("GET", "/healthz", nil),
		httptest.NewRequest("GET", "/readyz", nil),
	}
	for _, req := range reqs {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s %s: status %d: %s", req.Method, req.URL.Path, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type %q", req.Method, req.URL.Path, ct)
		}
	}
}

// FuzzMineKey proves the dedup/cache key is injective over normalized
// requests: two requests that differ after normalization must never share a
// key (a collision would hand one caller another query's mining result),
// and requests equal after normalization must share one (or the dedup stops
// working). The fuzzer drives both target lists and every option field.
func FuzzMineKey(f *testing.F) {
	f.Add("a", "b", "a", "b", "fr", "fr", 0, 0, int64(0), int64(0), 0, 0, 0, 0)
	f.Add("a\nb", "", "a", "b", "fr", "pr", 1, 2, int64(5), int64(5), 1, 1, 0, 0)
	f.Add("x", "x", "x", "", "", "", 4, 4, int64(1000), int64(1000), 3, 3, 2, 2)
	f.Add("12:ab", "", "1", "2:ab", "fr", "fr", 0, 0, int64(0), int64(0), 0, 0, 0, 0)
	f.Fuzz(func(t *testing.T, t1a, t1b, t2a, t2b, m1, m2 string,
		w1, w2 int, to1, to2 int64, k1, k2, e1, e2 int) {

		q1 := MineRequest{Targets: []string{t1a, t1b}, Metric: m1, Workers: w1, TimeoutMS: to1, TopK: k1, Exceptions: e1}
		q2 := MineRequest{Targets: []string{t2a, t2b}, Metric: m2, Workers: w2, TimeoutMS: to2, TopK: k2, Exceptions: e2}
		q1.normalize()
		q2.normalize()
		same := reflect.DeepEqual(q1, q2)
		k1s, k2s := q1.key(), q2.key()
		if same && k1s != k2s {
			t.Fatalf("equal normalized requests got distinct keys:\n%q\n%q", k1s, k2s)
		}
		if !same && k1s == k2s {
			t.Fatalf("distinct normalized requests collide on key %q:\n%+v\n%+v", k1s, q1, q2)
		}
	})
}

// TestMineKeyLengthPrefix pins the specific collision the key format
// defends against: a crafted IRI embedding another target list.
func TestMineKeyLengthPrefix(t *testing.T) {
	a := MineRequest{Targets: []string{"3:abc"}}
	b := MineRequest{Targets: []string{"abc"}}
	a.normalize()
	b.normalize()
	if a.key() == b.key() {
		t.Fatal("length-prefix bypass: crafted IRI collides with plain target")
	}
	if !bytes.Contains([]byte(a.key()), []byte("3:abc")) {
		t.Fatalf("unexpected key layout: %q", a.key())
	}
}
