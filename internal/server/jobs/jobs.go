// Package jobs is the unified execution subsystem of the REMI service:
// every mining run — blocking single mine, batch entry, async job,
// streaming request — becomes a Job in one Registry, so all of them share
// a single flight-key namespace (identical concurrent queries collapse
// onto one evaluator pass no matter which endpoint submitted them), one
// bounded worker pool with admission control and load-shedding, and one
// lifecycle: submit → queued → running → done/failed/cancelled, with
// TTL-based garbage collection for retained (async) jobs.
//
// Two execution styles cover every caller:
//
//   - Submit enqueues a RunFunc on the registry's worker pool. When the
//     bounded queue is full the submission is rejected with ErrSaturated —
//     the server turns that into 429 + Retry-After.
//   - External registers a job whose work happens elsewhere (a batch
//     phase completes its member entries as each set finishes mining);
//     the owner reports the outcome with Job.Complete.
//
// Interest in a job is reference-counted. Submit/External hand the caller
// one reference (unless Detached); Wait and Release drop it. When the last
// reference on an unretained, unfinished job goes away the job is
// abandoned: a queued job is cancelled outright, a running pool job has
// its context cancelled (and its key retired so new arrivals do not join a
// dying run) — exactly the context-aware singleflight semantics the
// server's old flightGroup provided, now shared by every mining path.
// Bind adds a structural reference: an unfinished batch member pins the
// phase job mining it, so the phase's context is cancelled only when every
// member has been completed, cancelled or abandoned.
//
// Pool-executed RunFuncs must never wait on other jobs: with a saturated
// pool, a running job waiting on a queued one deadlocks. Waiting belongs
// to handler and coordinator goroutines, which are not pool workers.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"time"
)

var (
	// ErrSaturated rejects a submission when the worker queue is full; the
	// server maps it to 429 with a Retry-After hint.
	ErrSaturated = errors.New("jobs: queue saturated")
	// ErrClosed rejects submissions to a closed registry.
	ErrClosed = errors.New("jobs: registry closed")
	// ErrCancelled is the terminal error of an explicitly cancelled job;
	// waiters receive it from Wait. Test with errors.Is.
	ErrCancelled = errors.New("jobs: job cancelled")
	// ErrPanicked wraps a panic recovered from a pool-executed RunFunc.
	ErrPanicked = errors.New("jobs: run panicked")
	// ErrWatchdogKilled is the terminal error of a job the watchdog failed
	// for exceeding its deadline plus grace. Distinct from ErrCancelled so
	// clients can tell "you cancelled it" from "it wedged and we shot it".
	ErrWatchdogKilled = errors.New("jobs: killed by watchdog")
	// ErrDraining rejects new submissions while the registry drains for
	// shutdown; the server maps it to 503.
	ErrDraining = errors.New("jobs: registry draining")
)

// Priority is a submission's admission class. Interactive submissions may
// use the whole queue; batch submissions are rejected early while the
// reserved interactive share is all that remains, so background batches
// cannot starve interactive traffic out of the queue.
type Priority int

const (
	PriorityInteractive Priority = iota
	PriorityBatch
)

// State is a job's lifecycle position.
type State int

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

// String names the state in the wire vocabulary of the jobs API.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Finished reports whether the state is terminal.
func (s State) Finished() bool { return s >= StateDone }

// RunFunc is the work of a pool-executed job. ctx is cancelled when the
// job's last reference goes away or the job is explicitly cancelled; the
// returned value/error become the job's outcome. The func may Emit events
// on j for streaming subscribers.
type RunFunc func(ctx context.Context, j *Job) (any, error)

// Options tunes a Registry.
type Options struct {
	// Workers is the pool size executing submitted jobs (default 4).
	Workers int
	// QueueDepth bounds how many submitted jobs may wait for a worker
	// beyond the ones running; a full queue rejects with ErrSaturated
	// (default 64).
	QueueDepth int
	// TTL is how long a finished job is retained for polling before the
	// garbage collector drops it (default 5m).
	TTL time.Duration
	// EventBuffer caps each job's event log; once full the oldest events
	// are dropped and a replay that spans the gap starts with a synthetic
	// EventTruncated marker (default 1024).
	EventBuffer int
	// WatchdogGrace is slack added to each job's deadline before the
	// watchdog fails it with ErrWatchdogKilled. Jobs without a deadline are
	// never watchdog-killed; grace zero means kill exactly at the deadline.
	WatchdogGrace time.Duration
	// InteractiveReserve is the number of queue slots batch-priority
	// submissions may not use (0 = no reservation). Clamped below
	// QueueDepth so batch work is never locked out entirely.
	InteractiveReserve int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.TTL <= 0 {
		o.TTL = 5 * time.Minute
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 1024
	}
	if o.InteractiveReserve < 0 {
		o.InteractiveReserve = 0
	}
	if o.InteractiveReserve >= o.QueueDepth {
		o.InteractiveReserve = o.QueueDepth - 1
	}
	return o
}

// Stats is a point-in-time snapshot of the registry, rendered by the
// server under /v1/stats.
type Stats struct {
	Workers       int
	QueueCapacity int
	Queued        int // jobs waiting for a worker
	Running       int // pool workers currently executing
	Tracked       int // jobs currently registered (any state)

	Submitted      int64 // pool submissions accepted
	External       int64 // externally-executed jobs registered
	Joined         int64 // callers deduplicated onto an in-flight job
	Rejected       int64 // submissions shed with ErrSaturated
	RejectedBatch  int64 // of Rejected: batch-priority kept out of the interactive reserve
	Completed      int64 // jobs finished in StateDone
	Failed         int64 // jobs finished in StateFailed
	Cancelled      int64 // jobs finished in StateCancelled (explicit or abandoned)
	Expired        int64 // finished jobs dropped by TTL GC
	WatchdogKilled int64 // jobs failed by the watchdog for exceeding deadline+grace

	Draining bool // Drain was called; new submissions are rejected

	AvgRunMS float64 // EWMA of pool job run time
}

// Registry owns the job table, the flight-key namespace and the worker
// pool. All methods are safe for concurrent use.
type Registry struct {
	opts Options

	mu       sync.Mutex
	byID     map[string]*Job
	byKey    map[string]*Job
	closed   bool
	draining bool

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	submitted, external, joined, rejected int64
	rejectedBatch, watchdogKilled         int64
	completed, failed, cancelled, expired int64
	running                               int
	avgRunNS                              float64
}

// New builds a registry and starts its worker pool and GC janitor. Call
// Close to stop them.
func New(opts Options) *Registry {
	opts = opts.withDefaults()
	r := &Registry{
		opts:  opts,
		byID:  make(map[string]*Job),
		byKey: make(map[string]*Job),
		queue: make(chan *Job, opts.QueueDepth),
		stop:  make(chan struct{}),
	}
	r.wg.Add(opts.Workers + 1)
	for i := 0; i < opts.Workers; i++ {
		go r.worker()
	}
	go r.janitor()
	return r
}

// Close stops the pool and the janitor and cancels every unfinished job so
// their waiters unblock. Submissions after Close fail with ErrClosed.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	for _, j := range r.byID {
		if !j.state.Finished() {
			r.finalizeLocked(j, StateCancelled, nil, ErrCancelled)
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// SubmitOpts describes a submission (pool-executed or external).
type SubmitOpts struct {
	// Key is the flight key: a non-empty key joins the caller onto an
	// in-flight job with the same key instead of creating a new one. The
	// empty key is never joinable.
	Key string
	// Kind labels the job for polling clients ("mine", "mine_batch", ...).
	Kind string
	// Meta is opaque caller data echoed by accessors; it must be immutable.
	Meta any
	// Retain keeps the job after it finishes, pollable by id until the TTL
	// expires, and exempts it from last-reference abandonment (retained
	// jobs are cancelled only explicitly or at Close). Joining a retained
	// caller onto an unretained in-flight job upgrades it to retained.
	Retain bool
	// Detached withholds the caller's reference: for fire-and-forget
	// submissions that rely on Retain (async handlers respond with the job
	// id and walk away).
	Detached bool
	// Priority is the admission class (default PriorityInteractive). Batch
	// submissions are shed while only the interactive reserve remains free.
	Priority Priority
	// Deadline bounds the job's run time: once it has been running for
	// Deadline plus the registry's WatchdogGrace, the watchdog cancels its
	// context and fails it with ErrWatchdogKilled. Zero means unbounded.
	Deadline time.Duration
	// Run is the pool-executed work; ignored by External.
	Run RunFunc
}

// Submit enqueues a pool-executed job, or joins an in-flight job sharing
// opts.Key. joined reports the latter. Unless opts.Detached, the caller
// holds a reference it must drop with Wait or Release. A full queue
// returns ErrSaturated without registering anything.
func (r *Registry) Submit(opts SubmitOpts) (j *Job, joined bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false, ErrClosed
	}
	if j := r.joinLocked(opts); j != nil {
		return j, true, nil
	}
	if r.draining {
		// Joining in-flight work above is still fine — it admits nothing new.
		return nil, false, ErrDraining
	}
	if opts.Priority == PriorityBatch && r.opts.InteractiveReserve > 0 &&
		len(r.queue) >= cap(r.queue)-r.opts.InteractiveReserve {
		// Only the reserved interactive share of the queue remains: shed the
		// batch submission early. Safe under r.mu because every enqueue holds
		// it — a concurrent dequeue can only make the queue shorter.
		r.rejected++
		r.rejectedBatch++
		return nil, false, ErrSaturated
	}
	j = r.newJobLocked(opts)
	select {
	case r.queue <- j:
	default:
		r.rejected++
		j.cancel()
		return nil, false, ErrSaturated
	}
	r.submitted++
	r.registerLocked(j, opts)
	return j, false, nil
}

// External registers a job whose work happens outside the pool; the owner
// must eventually call Complete (or Cancel) on it. Like Submit it joins an
// in-flight job sharing opts.Key; opts.Run is ignored. External jobs start
// in StateRunning: they represent work already admitted elsewhere.
func (r *Registry) External(opts SubmitOpts) (j *Job, joined bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		// A closed registry still hands out a job so callers keep a uniform
		// shape; it is born cancelled and every wait returns immediately.
		j = r.newJobLocked(opts)
		j.state = StateCancelled
		j.err = ErrCancelled
		j.finished = time.Now()
		close(j.done)
		j.cancel()
		return j, false
	}
	if j := r.joinLocked(opts); j != nil {
		return j, true
	}
	j = r.newJobLocked(opts)
	j.external = true
	j.state = StateRunning
	j.started = j.created
	r.external++
	r.registerLocked(j, opts)
	return j, false
}

// joinLocked attaches the caller to an in-flight job under opts.Key.
func (r *Registry) joinLocked(opts SubmitOpts) *Job {
	if opts.Key == "" {
		return nil
	}
	j := r.byKey[opts.Key]
	if j == nil {
		return nil
	}
	r.joined++
	if opts.Retain {
		j.retain = true
	}
	if !opts.Detached {
		j.refs++
	}
	return j
}

func (r *Registry) newJobLocked(opts SubmitOpts) *Job {
	j := &Job{
		id:       r.newIDLocked(),
		key:      opts.Key,
		kind:     opts.Kind,
		meta:     opts.Meta,
		retain:   opts.Retain,
		deadline: opts.Deadline,
		run:      opts.Run,
		r:        r,
		created:  time.Now(),
		done:     make(chan struct{}),
		wake:     make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	if !opts.Detached {
		j.refs = 1
	}
	return j
}

func (r *Registry) registerLocked(j *Job, opts SubmitOpts) {
	r.byID[j.id] = j
	if opts.Key != "" {
		r.byKey[opts.Key] = j
	}
}

func (r *Registry) newIDLocked() string {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("jobs: reading random id bytes: %v", err))
		}
		id := "j-" + hex.EncodeToString(b[:])
		if _, taken := r.byID[id]; !taken {
			return id
		}
	}
}

// Get returns the job registered under id.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	return j, ok
}

// Lookup returns the in-flight job holding the flight key, if any (used by
// tests asserting the unified namespace).
func (r *Registry) Lookup(key string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byKey[key]
	return j, ok
}

// Attach adds a reference to j (stream subscribers attach so the run they
// watch is not abandoned under them). Drop it with Release or Wait.
func (r *Registry) Attach(j *Job) {
	r.mu.Lock()
	j.refs++
	r.mu.Unlock()
}

// Release drops a reference without waiting.
func (r *Registry) Release(j *Job) {
	r.mu.Lock()
	r.decRefLocked(j)
	r.mu.Unlock()
}

// Bind makes an unfinished member job pin parent: parent gains a reference
// that is released when the member finishes (whichever way). Batch phases
// are bound this way by their member entries, so a phase keeps mining
// while any member still has an interested caller, and is abandoned when
// the last one goes.
func (r *Registry) Bind(member, parent *Job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if member.state.Finished() || parent.state.Finished() || member.parent != nil {
		return
	}
	member.parent = parent
	parent.refs++
}

// Wait blocks until j finishes or ctx ends, then drops the caller's
// reference. Once finished it returns the job's outcome (ErrCancelled for
// a cancelled job); on ctx expiry it returns ctx.Err(), and if the caller
// was j's last reference the job is abandoned (see package comment).
func (r *Registry) Wait(ctx context.Context, j *Job) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		select {
		case <-j.done:
			// Finished and cancelled at the same instant: prefer the result.
		default:
			r.Release(j)
			return nil, ctx.Err()
		}
	}
	r.mu.Lock()
	res, err := j.result, j.err
	r.decRefLocked(j)
	r.mu.Unlock()
	return res, err
}

// Cancel finalizes the job as cancelled: waiters unblock with
// ErrCancelled, a queued job never runs, a running job's context is
// cancelled (its RunFunc should return promptly; whatever it returns is
// discarded). Cancelling a finished job reports its terminal state with
// ok=false and changes nothing.
func (r *Registry) Cancel(j *Job) (prev State, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev = j.state
	if prev.Finished() {
		return prev, false
	}
	r.finalizeLocked(j, StateCancelled, nil, ErrCancelled)
	return prev, true
}

// decRefLocked drops one reference and abandons the job when nobody is
// left interested in an unfinished, unretained run.
func (r *Registry) decRefLocked(j *Job) {
	j.refs--
	if j.refs > 0 {
		return
	}
	switch {
	case j.state.Finished():
		if !j.retain {
			r.dropLocked(j)
		}
	case j.retain:
		// Retained jobs outlive their submitter by design.
	case j.state == StateQueued, j.external:
		// Nothing is executing: cancel outright. A queued job is skipped by
		// the worker that dequeues it; an external member's owner may still
		// Complete it later, which is then a no-op.
		r.finalizeLocked(j, StateCancelled, nil, ErrCancelled)
	default:
		// A running pool job: stop the work and retire the key so new
		// arrivals do not join a dying run, but let the worker record the
		// (partial) outcome it gets back.
		if j.key != "" && r.byKey[j.key] == j {
			delete(r.byKey, j.key)
		}
		j.cancel()
	}
}

// finalizeLocked moves j to a terminal state and wakes everything.
func (r *Registry) finalizeLocked(j *Job, state State, result any, err error) {
	if j.state.Finished() {
		return
	}
	j.state = state
	j.result, j.err = result, err
	j.finished = time.Now()
	j.expires = j.finished.Add(r.opts.TTL)
	switch state {
	case StateDone:
		r.completed++
	case StateFailed:
		r.failed++
	case StateCancelled:
		r.cancelled++
	}
	if j.key != "" && r.byKey[j.key] == j {
		delete(r.byKey, j.key)
	}
	close(j.done)
	j.notifyLocked()
	j.cancel()
	if p := j.parent; p != nil {
		j.parent = nil
		r.decRefLocked(p)
	}
	if j.refs <= 0 && !j.retain {
		r.dropLocked(j)
	}
}

func (r *Registry) dropLocked(j *Job) {
	delete(r.byID, j.id)
}

// worker executes queued jobs until Close. When the watchdog kills a job,
// it hands this worker's pool slot (and its WaitGroup slot) to a freshly
// spawned replacement; the stuck goroutine then retires silently if its
// RunFunc ever returns, so the Done accounting stays balanced whether or
// not the wedged code recovers.
func (r *Registry) worker() {
	handedOff := false
	defer func() {
		if !handedOff {
			r.wg.Done()
		}
	}()
	for {
		select {
		case <-r.stop:
			return
		case j := <-r.queue:
			if r.runJob(j) {
				handedOff = true
				return
			}
		}
	}
}

// runJob executes one dequeued job; it reports true when the watchdog
// killed the job mid-run, meaning this worker's slot was already handed to
// a replacement and the goroutine must retire without touching counters.
func (r *Registry) runJob(j *Job) (handedOff bool) {
	r.mu.Lock()
	if j.state.Finished() { // cancelled while queued
		r.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	r.running++
	j.notifyLocked()
	r.mu.Unlock()

	res, err := runSafely(j)

	r.mu.Lock()
	defer r.mu.Unlock()
	if j.wdKilled {
		// The watchdog already failed this job, decremented running and
		// started a replacement worker; the late result is discarded.
		return true
	}
	r.running--
	dur := time.Since(j.started)
	// EWMA of run time, feeding the Retry-After hint.
	if r.avgRunNS == 0 {
		r.avgRunNS = float64(dur)
	} else {
		r.avgRunNS = 0.8*r.avgRunNS + 0.2*float64(dur)
	}
	j.completeLocked(res, err)
	return false
}

// runSafely converts a RunFunc panic into a job failure: pool workers run
// outside net/http's per-connection recovery, so an unrecovered panic
// would kill the whole server. The stack is logged server-side.
func runSafely(j *Job) (res any, err error) {
	defer func() {
		if p := recover(); p != nil {
			log.Printf("jobs: %s run panicked: %v\n%s", j.id, p, debug.Stack())
			res, err = nil, fmt.Errorf("%w: %v", ErrPanicked, p)
		}
	}()
	return j.run(j.ctx, j)
}

// janitor drops finished jobs past their TTL and runs the watchdog scan.
func (r *Registry) janitor() {
	defer r.wg.Done()
	interval := r.opts.TTL / 2
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	// The watchdog needs ticks fine enough to notice a blown deadline soon
	// after grace expires, independent of how lazily the TTL sweep may run.
	if g := r.opts.WatchdogGrace; g > 0 {
		wd := g / 2
		if wd < 10*time.Millisecond {
			wd = 10 * time.Millisecond
		}
		if wd > time.Second {
			wd = time.Second
		}
		if wd < interval {
			interval = wd
		}
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-tick.C:
			r.mu.Lock()
			r.sweepLocked(now)
			r.watchdogLocked(now)
			r.mu.Unlock()
		}
	}
}

func (r *Registry) sweepLocked(now time.Time) {
	for id, j := range r.byID {
		if j.state.Finished() && now.After(j.expires) {
			delete(r.byID, id)
			r.expired++
		}
	}
}

// watchdogLocked fails every running job whose deadline plus grace has
// passed. For a pool-executed job the kill also frees the worker slot: the
// job's context is cancelled (finalize does that), running is decremented,
// and a replacement worker goroutine is spawned to take over the slot —
// without a wg.Add, because the stuck goroutine observes wdKilled when its
// RunFunc returns and retires without wg.Done (see worker). A RunFunc that
// ignores its context forever leaks one goroutine but no longer blocks the
// pool or Close.
func (r *Registry) watchdogLocked(now time.Time) {
	for _, j := range r.byID {
		if j.state != StateRunning || j.deadline <= 0 {
			continue
		}
		if now.Before(j.started.Add(j.deadline + r.opts.WatchdogGrace)) {
			continue
		}
		r.watchdogKilled++
		err := fmt.Errorf("%w: ran past %v deadline (+%v grace)",
			ErrWatchdogKilled, j.deadline, r.opts.WatchdogGrace)
		if !j.external {
			j.wdKilled = true
			r.running--
			go r.worker()
		}
		r.finalizeLocked(j, StateFailed, nil, err)
		log.Printf("jobs: watchdog killed %s (%s): %v", j.id, j.kind, err)
	}
}

// Drain stops admitting new submissions (they fail with ErrDraining) while
// queued and running jobs — and joins onto them — proceed normally. Part
// of graceful shutdown: Drain, then DrainWait, then Close.
func (r *Registry) Drain() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (r *Registry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// DrainWait blocks until every tracked job (queued, running, or external)
// has finished, or ctx ends — whichever comes first.
func (r *Registry) DrainWait(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if r.activeCount() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (r *Registry) activeCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, j := range r.byID {
		if !j.state.Finished() {
			n++
		}
	}
	return n
}

// Snapshot reports the registry's current gauges and counters.
func (r *Registry) Snapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Workers:        r.opts.Workers,
		QueueCapacity:  r.opts.QueueDepth,
		Queued:         len(r.queue),
		Running:        r.running,
		Tracked:        len(r.byID),
		Submitted:      r.submitted,
		External:       r.external,
		Joined:         r.joined,
		Rejected:       r.rejected,
		RejectedBatch:  r.rejectedBatch,
		Completed:      r.completed,
		Failed:         r.failed,
		Cancelled:      r.cancelled,
		Expired:        r.expired,
		WatchdogKilled: r.watchdogKilled,
		Draining:       r.draining,
		AvgRunMS:       r.avgRunNS / float64(time.Millisecond),
	}
}

// RetryAfter estimates how long a shed client should back off: the EWMA
// run time times the queue that would be ahead of it, clamped to [1s, 60s].
func (r *Registry) RetryAfter() time.Duration {
	r.mu.Lock()
	avg := time.Duration(r.avgRunNS)
	queued := len(r.queue)
	workers := r.opts.Workers
	r.mu.Unlock()
	if avg <= 0 {
		avg = time.Second
	}
	d := avg * time.Duration(queued+1) / time.Duration(workers)
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}
